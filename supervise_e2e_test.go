package bookleaf

// End-to-end tests of the supervision ladder (DESIGN.md §12): rank
// replacement from the in-memory Memento, transient epoch retry,
// retry-budget exhaustion with a final checkpoint, and online elastic
// repartitioning. They live in the package so they can arm the
// unexported fault-injection knobs.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bookleaf/internal/checkpoint"
	"bookleaf/internal/typhon"
)

// TestSuperviseReplacementSweep is the tentpole acceptance test: a
// persistent-looking single-rank fault (a rank panic — the goroutine is
// gone, so retrying the incarnation is pointless) at every supported
// schedule must complete via rank replacement with ZERO collective
// rollbacks, and the final state must match the unfaulted run bitwise:
// replacement restores from the collective's last in-memory Memento,
// which covers every evolving field including ghosts, so the replay is
// exact.
func TestSuperviseReplacementSweep(t *testing.T) {
	for _, ranks := range []int{2, 4, 7} {
		for _, overlap := range []bool{false, true} {
			name := fmt.Sprintf("ranks=%d/overlap=%v", ranks, overlap)
			t.Run(name, func(t *testing.T) {
				base := Config{
					Problem: "sod", NX: 64, NY: 4, MaxSteps: 20,
					Ranks: ranks, Overlap: overlap,
				}
				ref, err := runBoundedResult(t, base)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}

				cfg := base
				cfg.Supervise = &SuperviseConfig{Enabled: true}
				cfg.testFaultPlan = &typhon.FaultPlan{Faults: []typhon.Fault{
					{Rank: 1, Msg: 7, Kind: typhon.FaultPanic, Once: true},
				}}
				res, err := runBoundedResult(t, cfg)
				if err != nil {
					t.Fatalf("supervised run: %v", err)
				}

				if res.Replacements != 1 || res.SupRetries != 0 {
					t.Errorf("replacements=%d retries=%d, want 1/0 (panic goes straight to replacement)",
						res.Replacements, res.SupRetries)
				}
				if res.Rollbacks != 0 {
					t.Errorf("rollbacks=%d, want 0: replacement must not consume the rollback ladder",
						res.Rollbacks)
				}
				if res.Steps != ref.Steps || res.Time != ref.Time {
					t.Fatalf("steps/time (%d, %v) differ from unfaulted (%d, %v)",
						res.Steps, res.Time, ref.Steps, ref.Time)
				}
				for field, pair := range map[string][2][]float64{
					"rho": {res.Rho, ref.Rho}, "ein": {res.Ein, ref.Ein},
					"p": {res.P, ref.P},
					"u": {res.U, ref.U}, "v": {res.V, ref.V},
					"x": {res.X, ref.X}, "y": {res.Y, ref.Y},
				} {
					if i := firstDiff(pair[0], pair[1]); i >= 0 {
						t.Errorf("%s[%d] = %x, unfaulted %x", field, i, pair[0][i], pair[1][i])
					}
				}

				// The replaced rank's confirmed work is merged from its
				// retired registry and the replayed steps were only
				// pending (never confirmed) when the epoch died, so the
				// merged step counter is exact — no double counting.
				if got, want := res.Obs.Counters["steps_total"], int64(res.Steps*ranks); got != want {
					t.Errorf("merged steps_total = %d, want %d (replayed steps must not double-count)",
						got, want)
				}
				if got := res.Obs.Counters["supervise_replace_total"]; got != 1 {
					t.Errorf("supervise_replace_total = %d, want 1", got)
				}
				if res.Obs.Gauges["supervise_incarnation_rank1"] != 1 {
					t.Errorf("incarnation gauge = %v, want 1", res.Obs.Gauges["supervise_incarnation_rank1"])
				}
			})
		}
	}
}

// TestSuperviseTransientRetry: a one-shot truncated halo message is a
// transient communication fault — one epoch retry from the healthy
// point, no replacement, and a bitwise-identical answer.
func TestSuperviseTransientRetry(t *testing.T) {
	base := Config{Problem: "sod", NX: 64, NY: 4, MaxSteps: 20, Ranks: 4}
	ref, err := runBoundedResult(t, base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cfg := base
	cfg.Supervise = &SuperviseConfig{Enabled: true}
	cfg.testFaultPlan = &typhon.FaultPlan{Faults: []typhon.Fault{
		{Rank: 1, Msg: 5, Kind: typhon.FaultTruncate, Once: true},
	}}
	res, err := runBoundedResult(t, cfg)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if res.SupRetries != 1 || res.Replacements != 0 || res.Rollbacks != 0 {
		t.Errorf("retries=%d replacements=%d rollbacks=%d, want 1/0/0",
			res.SupRetries, res.Replacements, res.Rollbacks)
	}
	if res.Steps != ref.Steps {
		t.Fatalf("steps %d differ from unfaulted %d", res.Steps, ref.Steps)
	}
	for field, pair := range map[string][2][]float64{
		"rho": {res.Rho, ref.Rho}, "ein": {res.Ein, ref.Ein}, "u": {res.U, ref.U},
	} {
		if i := firstDiff(pair[0], pair[1]); i >= 0 {
			t.Errorf("%s[%d] = %x, unfaulted %x", field, i, pair[0][i], pair[1][i])
		}
	}
	if got := res.Obs.Counters["supervise_retry_total"]; got != 1 {
		t.Errorf("supervise_retry_total = %d, want 1", got)
	}
}

// TestSuperviseLadderExhaustion walks the full ladder to its last rung:
// a rank that panics on the same send in every incarnation (a Once-less
// fault re-fires each epoch — the model of a persistent hardware fault)
// is replaced once, drains the replacement budget, and the run aborts —
// leaving a valid, loadable checkpoint of the last healthy point behind.
func TestSuperviseLadderExhaustion(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "abort.ck")
	cfg := Config{
		Problem: "sod", NX: 64, NY: 4, MaxSteps: 20, Ranks: 4,
		Checkpoint: ck,
		Supervise:  &SuperviseConfig{Enabled: true},
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 1, Msg: 7, Kind: typhon.FaultPanic}, // every incarnation
		}},
	}
	err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("expected the ladder to exhaust and abort")
	}
	if !errors.Is(err, typhon.ErrAborted) {
		t.Fatalf("error does not match ErrAborted: %v", err)
	}
	var pe *typhon.RankPanicError
	if !errors.As(err, &pe) || pe.Rank != 1 {
		t.Fatalf("root cause is not rank 1's panic: %v", err)
	}

	// The abort path must leave a restartable dump: load it and run the
	// remaining steps without the fault.
	f, err := os.Open(ck)
	if err != nil {
		t.Fatalf("no final checkpoint written: %v", err)
	}
	snap, err := checkpoint.Read(f)
	f.Close()
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if snap.StepCount < 1 {
		t.Fatalf("checkpoint at step %d: the fleet made healthy progress before aborting", snap.StepCount)
	}
	resumed, err := runBoundedResult(t, Config{
		Problem: "sod", NX: 64, NY: 4, MaxSteps: 20, Ranks: 4, Resume: ck,
	})
	if err != nil {
		t.Fatalf("resume from the abort checkpoint: %v", err)
	}
	if resumed.Steps != 20 {
		t.Fatalf("resumed run stopped at step %d, want 20", resumed.Steps)
	}
}

// TestSuperviseForcedRepartition migrates a moving-mesh ALE run onto a
// fresh partition mid-flight — growing and shrinking the fleet — and
// requires the unperturbed answer back within the existing
// cross-decomposition tolerance. Changing the partition changes the
// per-rank gather order, whose last-bit round-off amplifies through the
// Noh shock — the same reason TestSmoothedALERankIndependent compares
// rank counts at 1e-4. The observed repartition drift is ~1e-9 over the
// remaining steps; 1e-6 pins it well inside the established bound while
// leaving round-off headroom. Conservation stays at round-off.
func TestSuperviseForcedRepartition(t *testing.T) {
	base := Config{
		Problem: "noh", NX: 16, NY: 16, MaxSteps: 24,
		Ranks: 4, ALE: "smoothed", ALEFreq: 2,
	}
	ref, err := runBoundedResult(t, base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for _, tc := range []struct {
		name     string
		newRanks int
	}{
		{"grow-4-to-7", 7},
		{"shrink-4-to-2", 2},
		{"same-count", 0}, // re-decompose the moved mesh on 4 ranks
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Supervise = &SuperviseConfig{
				Enabled:      true,
				RepartAtStep: 12,
				RepartRanks:  tc.newRanks,
				RanksMax:     8,
			}
			res, err := runBoundedResult(t, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Repartitions != 1 {
				t.Fatalf("repartitions = %d, want 1", res.Repartitions)
			}
			want := tc.newRanks
			if want == 0 {
				want = base.Ranks
			}
			if res.FinalRanks != want || res.Ranks != base.Ranks {
				t.Fatalf("ranks %d -> %d, want %d -> %d", res.Ranks, res.FinalRanks, base.Ranks, want)
			}
			if res.Steps != ref.Steps {
				t.Fatalf("steps %d differ from unperturbed %d", res.Steps, ref.Steps)
			}
			for field, pair := range map[string][2][]float64{
				"rho": {res.Rho, ref.Rho}, "ein": {res.Ein, ref.Ein},
				"u": {res.U, ref.U}, "v": {res.V, ref.V},
				"x": {res.X, ref.X}, "y": {res.Y, ref.Y},
			} {
				var d float64
				for i := range pair[0] {
					d = math.Max(d, math.Abs(pair[0][i]-pair[1][i]))
				}
				if d > 1e-6 {
					t.Errorf("%s drifts %.3e from the unperturbed run", field, d)
				}
			}
			if d := math.Abs(res.MassFinal - ref.MassFinal); d > 1e-12*ref.MassFinal {
				t.Errorf("mass differs by %v after repartition", d)
			}
			// The smoothed remap carries its own (deterministic) energy
			// drift; repartitioning must not add to it.
			if d := math.Abs(res.EnergyDrift() - ref.EnergyDrift()); d > 1e-9 {
				t.Errorf("repartition changed the energy audit by %v", d)
			}
			if got := res.Obs.Counters["supervise_repart_total"]; got != 1 {
				t.Errorf("supervise_repart_total = %d, want 1", got)
			}
		})
	}
}

// TestSuperviseOffIsInert: a nil or disabled Supervise block must leave
// the parallel driver exactly as it was — one epoch, faults fatal.
func TestSuperviseOffIsInert(t *testing.T) {
	cfg := Config{
		Problem: "sod", NX: 64, NY: 4, MaxSteps: 20, Ranks: 4,
		Supervise: &SuperviseConfig{Enabled: false},
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 1, Msg: 7, Kind: typhon.FaultPanic, Once: true},
		}},
	}
	err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("disabled supervision must not recover a rank panic")
	}
	var pe *typhon.RankPanicError
	if !errors.As(err, &pe) || pe.Rank != 1 {
		t.Fatalf("want rank 1's panic surfaced fatally, got: %v", err)
	}
}
