package bookleaf

import (
	"math"
	"sort"
)

// Centroids returns the final element centroid coordinates.
func (r *Result) Centroids() (cx, cy []float64) {
	cx = make([]float64, r.Mesh.NEl)
	cy = make([]float64, r.Mesh.NEl)
	for e := 0; e < r.Mesh.NEl; e++ {
		nd := &r.Mesh.ElNd[e]
		cx[e] = 0.25 * (r.X[nd[0]] + r.X[nd[1]] + r.X[nd[2]] + r.X[nd[3]])
		cy[e] = 0.25 * (r.Y[nd[0]] + r.Y[nd[1]] + r.Y[nd[2]] + r.Y[nd[3]])
	}
	return cx, cy
}

// XProfile returns element (x-centroid, field) pairs sorted by x —
// the 1-D profile of quasi-1-D problems (Sod, Saltzmann).
func (r *Result) XProfile(field []float64) (xs, vals []float64) {
	cx, _ := r.Centroids()
	idx := make([]int, len(cx))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cx[idx[a]] < cx[idx[b]] })
	xs = make([]float64, len(idx))
	vals = make([]float64, len(idx))
	for i, e := range idx {
		xs[i] = cx[e]
		vals[i] = field[e]
	}
	return xs, vals
}

// RadialProfile returns element (radius, field) pairs sorted by radius
// from the origin — the 1-D profile of radial problems (Noh, Sedov).
func (r *Result) RadialProfile(field []float64) (rs, vals []float64) {
	cx, cy := r.Centroids()
	idx := make([]int, len(cx))
	for i := range idx {
		idx[i] = i
	}
	rad := make([]float64, len(cx))
	for e := range cx {
		rad[e] = math.Hypot(cx[e], cy[e])
	}
	sort.Slice(idx, func(a, b int) bool { return rad[idx[a]] < rad[idx[b]] })
	rs = make([]float64, len(idx))
	vals = make([]float64, len(idx))
	for i, e := range idx {
		rs[i] = rad[e]
		vals[i] = field[e]
	}
	return rs, vals
}

// L1Error returns the mean absolute deviation between field values and
// a reference function evaluated at the element positions pos (e.g.
// x-centroid or radius).
func L1Error(pos, field []float64, ref func(float64) float64) float64 {
	var sum float64
	for i := range pos {
		sum += math.Abs(field[i] - ref(pos[i]))
	}
	return sum / float64(len(pos))
}
