package bookleaf

import (
	"fmt"
	"math"
	"testing"
)

// TestFuseBitwiseDeterminism is the acceptance test for the fused
// element passes: at every thread count, on both the synchronous and
// the overlapped halo schedule, the fused step must reproduce the
// unfused (paper-structure) step bit for bit. The fusion only merges
// loop bodies over the same per-element arithmetic — each element
// still sees exactly the operand sequence the unfused kernels gave it
// — so any drift here is a real reordering bug, not roundoff.
// FloorEnergy is the one chunk-order-summed diagnostic (compared with
// a tolerance, as in the thread-count determinism test).
func TestFuseBitwiseDeterminism(t *testing.T) {
	cases := []Config{
		{Problem: "noh", NX: 20, NY: 20, MaxSteps: 25},
		{Problem: "sod", NX: 64, NY: 4, MaxSteps: 25},
	}
	for _, base := range cases {
		t.Run(base.Problem, func(t *testing.T) {
			for _, overlap := range []bool{false, true} {
				for _, threads := range []int{1, 2, 4, 7} {
					cfg := base
					cfg.Threads = threads
					cfg.Overlap = overlap
					if overlap {
						cfg.Ranks = 2 // overlap needs halos; serial runs ignore it
					}
					label := fmt.Sprintf("overlap=%v threads=%d", overlap, threads)

					off := cfg
					off.NoFuse = true
					ref, err := Run(off)
					if err != nil {
						t.Fatalf("%s unfused: %v", label, err)
					}
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s fused: %v", label, err)
					}
					if res.Steps != ref.Steps || res.Time != ref.Time {
						t.Fatalf("%s: steps/time (%d, %v) differ from unfused (%d, %v)",
							label, res.Steps, res.Time, ref.Steps, ref.Time)
					}
					for name, pair := range map[string][2][]float64{
						"rho": {res.Rho, ref.Rho}, "ein": {res.Ein, ref.Ein},
						"p": {res.P, ref.P},
						"u": {res.U, ref.U}, "v": {res.V, ref.V},
						"x": {res.X, ref.X}, "y": {res.Y, ref.Y},
					} {
						if i := firstDiff(pair[0], pair[1]); i >= 0 {
							t.Errorf("%s: %s[%d] = %x, unfused %x",
								label, name, i, pair[0][i], pair[1][i])
						}
					}
					if res.EFinal != ref.EFinal {
						t.Errorf("%s: EFinal %x differs from unfused %x", label, res.EFinal, ref.EFinal)
					}
					if d := math.Abs(res.FloorEnergy - ref.FloorEnergy); d > 1e-12*math.Max(1, math.Abs(ref.FloorEnergy)) {
						t.Errorf("%s: FloorEnergy %v vs unfused %v", label, res.FloorEnergy, ref.FloorEnergy)
					}
				}
			}
		})
	}
}

// TestFuseTileInvariance: the tile width is a scheduling knob, not a
// numerical one — extreme widths (single cache line's worth of
// elements, one tile spanning everything) must not change a bit.
func TestFuseTileInvariance(t *testing.T) {
	base := Config{Problem: "noh", NX: 16, NY: 16, MaxSteps: 15, Threads: 4}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range []int{1, 7, 1 << 20} {
		cfg := base
		cfg.FuseTile = tile
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("tile=%d: %v", tile, err)
		}
		for name, pair := range map[string][2][]float64{
			"rho": {res.Rho, ref.Rho}, "u": {res.U, ref.U}, "x": {res.X, ref.X},
		} {
			if i := firstDiff(pair[0], pair[1]); i >= 0 {
				t.Errorf("tile=%d: %s[%d] = %x, default tiling %x",
					tile, name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

// TestFloat32AuxRuns: the float32 auxiliary-stream ablation is
// numerically perturbed by construction (forces see rounded corner
// masses and edge dampers), so the contract is looser: the run must
// complete, conserve energy to audit tolerance, and land near the
// float64 solution — while actually differing from it, or the ablation
// is silently wired to nothing.
func TestFloat32AuxRuns(t *testing.T) {
	base := Config{Problem: "sod", NX: 64, NY: 4, MaxSteps: 40}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Float32Aux = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("float32aux: %v", err)
	}
	if d := res.EnergyDrift(); math.Abs(d) > 1e-9 {
		t.Errorf("float32aux: energy drift %v above audit tolerance", d)
	}
	var maxRel float64
	for i := range res.Rho {
		rel := math.Abs(res.Rho[i]-ref.Rho[i]) / math.Max(1, math.Abs(ref.Rho[i]))
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-4 {
		t.Errorf("float32aux: max relative rho deviation %v from float64 run", maxRel)
	}
	if firstDiff(res.Rho, ref.Rho) < 0 {
		t.Error("float32aux run is bitwise-identical to float64 — ablation not wired")
	}
}
