module bookleaf

go 1.24
