package bookleaf_test

import (
	"fmt"
	"log"

	"bookleaf"
)

// ExampleRun runs a small Sod shock tube and reports the conservation
// audit — the minimal end-to-end use of the public API.
func ExampleRun() {
	res, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 50, NY: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reached t=%.2f\n", res.Time)
	fmt.Printf("mass conserved: %t\n", res.MassFinal == res.Mass0)
	fmt.Printf("energy drift below 1e-12: %t\n", res.EnergyDrift() < 1e-12)
	// Output:
	// reached t=0.25
	// mass conserved: true
	// energy drift below 1e-12: true
}
