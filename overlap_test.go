package bookleaf

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"bookleaf/internal/hydro"
	"bookleaf/internal/par"
	"bookleaf/internal/partition"
	"bookleaf/internal/setup"
	"bookleaf/internal/typhon"
)

// TestOverlapBitwiseDeterminism is the acceptance test for the
// overlapped halo schedule: at every rank count, overlap-on must
// reproduce overlap-off bit for bit. The schedule only reorders work
// across disjoint index sets — interior nodes read no ghost corner
// force, interior elements read no ghost node — so each per-entity
// update sees exactly the inputs the synchronous schedule gives it.
// FloorEnergy is the one chunk-order-summed diagnostic (compared with
// a tolerance, as in the thread-count determinism test).
func TestOverlapBitwiseDeterminism(t *testing.T) {
	cases := []Config{
		{Problem: "noh", NX: 20, NY: 20, MaxSteps: 25},
		{Problem: "sod", NX: 64, NY: 4, MaxSteps: 25},
	}
	for _, base := range cases {
		t.Run(base.Problem, func(t *testing.T) {
			for _, ranks := range []int{1, 2, 4, 7} {
				off := base
				off.Ranks = ranks
				ref, err := Run(off)
				if err != nil {
					t.Fatalf("ranks=%d overlap=off: %v", ranks, err)
				}
				on := base
				on.Ranks = ranks
				on.Overlap = true
				res, err := Run(on)
				if err != nil {
					t.Fatalf("ranks=%d overlap=on: %v", ranks, err)
				}
				if res.Steps != ref.Steps || res.Time != ref.Time {
					t.Fatalf("ranks=%d: steps/time (%d, %v) differ from sync (%d, %v)",
						ranks, res.Steps, res.Time, ref.Steps, ref.Time)
				}
				for name, pair := range map[string][2][]float64{
					"rho": {res.Rho, ref.Rho}, "ein": {res.Ein, ref.Ein},
					"p": {res.P, ref.P},
					"u": {res.U, ref.U}, "v": {res.V, ref.V},
					"x": {res.X, ref.X}, "y": {res.Y, ref.Y},
				} {
					if i := firstDiff(pair[0], pair[1]); i >= 0 {
						t.Errorf("ranks=%d: %s[%d] = %x, sync %x",
							ranks, name, i, pair[0][i], pair[1][i])
					}
				}
				if res.EFinal != ref.EFinal {
					t.Errorf("ranks=%d: EFinal %x differs from sync %x", ranks, res.EFinal, ref.EFinal)
				}
				if d := math.Abs(res.FloorEnergy - ref.FloorEnergy); d > 1e-12*math.Max(1, math.Abs(ref.FloorEnergy)) {
					t.Errorf("ranks=%d: FloorEnergy %v vs sync %v", ranks, res.FloorEnergy, ref.FloorEnergy)
				}
			}
		})
	}
}

// Overlap + ScatterAcc has no interior/boundary split and must be
// rejected up front, not silently mis-scheduled.
func TestOverlapRejectsScatterAcc(t *testing.T) {
	_, err := Run(Config{Problem: "sod", NX: 16, NY: 2, MaxSteps: 1, Ranks: 2, Overlap: true, ScatterAcc: true})
	if err == nil {
		t.Fatal("Overlap+ScatterAcc accepted")
	}
}

// A truncated halo message on the phased path surfaces at Finish —
// after the interior work already ran — as the same clean
// size-mismatch failure the blocking schedule reports.
func TestOverlapTruncatedHaloMessageFailsCleanly(t *testing.T) {
	err := runBounded(t, Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, Overlap: true,
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 2, Msg: 5, Kind: typhon.FaultTruncate},
		}},
	})
	if err == nil {
		t.Fatal("expected a size-mismatch error")
	}
	var sm *typhon.SizeMismatchError
	if !errors.As(err, &sm) || sm.From != 2 {
		t.Fatalf("root cause is not the truncated message from rank 2: %v", err)
	}
}

// A dropped message leaves the phased Finish blocked until the receive
// timeout aborts the communicator; no deadlock, timing-out rank as the
// root cause.
func TestOverlapDroppedHaloMessageTimesOut(t *testing.T) {
	err := runBounded(t, Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, Overlap: true,
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 1, Msg: 3, Kind: typhon.FaultDrop},
		}},
		testRecvTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	var to *typhon.TimeoutError
	if !errors.As(err, &to) || to.From != 1 {
		t.Fatalf("root cause is not a timeout waiting on rank 1: %v", err)
	}
}

// A corrupted ghost (NaN payload) delivered through the phased path is
// caught by the health sentinel and, with retries disabled, fails the
// run with non-finite context rather than propagating silently.
func TestOverlapCorruptedHaloMessageCaught(t *testing.T) {
	err := runBounded(t, Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, Overlap: true,
		RollbackEvery: -1, RetryBudget: -1,
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 1, Msg: 5, Kind: typhon.FaultCorrupt},
		}},
	})
	if err == nil {
		t.Fatal("expected a non-finite failure")
	}
	var nf *hydro.ErrNonFinite
	if !errors.As(err, &nf) {
		t.Fatalf("error lacks health context: %v", err)
	}
}

// A delayed message stalls the phased Finish briefly but the run still
// completes with correct physics.
func TestOverlapDelayedHaloMessageCompletes(t *testing.T) {
	base := Config{Problem: "sod", NX: 32, NY: 4, Ranks: 2, MaxSteps: 10}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Overlap = true
	cfg.testFaultPlan = &typhon.FaultPlan{Faults: []typhon.Fault{
		{Rank: 0, Msg: 2, Kind: typhon.FaultDelay, Delay: 20 * time.Millisecond},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if i := firstDiff(res.Rho, ref.Rho); i >= 0 {
		t.Errorf("rho[%d] = %x, want %x despite delay", i, res.Rho[i], ref.Rho[i])
	}
}

// --- stepCluster: a minimal multi-rank step driver for the allocation
// pin and BenchmarkParallelStep. It reproduces runParallel's
// communication schedule (dt MINLOC + the two Lagrangian halo points,
// blocking or phased) without checkpointing, probes or rollback, and
// steps on demand so the measurement loop controls exactly what runs.

const (
	ccStep = iota
	ccSave
	ccReset
	ccQuit
)

type stepCluster struct {
	nranks int
	req    []chan int
	done   chan error
	finish chan error
}

func startStepCluster(tb testing.TB, problem string, nx, ny, nranks int, overlap bool) *stepCluster {
	tb.Helper()
	p, err := setup.ByName(problem, nx, ny, 0)
	if err != nil {
		tb.Fatal(err)
	}
	part, err := partition.RCBMesh(p.Mesh, nranks)
	if err != nil {
		tb.Fatal(err)
	}
	subs, err := partition.Split(p.Mesh, part, nranks)
	if err != nil {
		tb.Fatal(err)
	}
	comm, err := typhon.NewComm(nranks)
	if err != nil {
		tb.Fatal(err)
	}
	cl := &stepCluster{
		nranks: nranks,
		req:    make([]chan int, nranks),
		done:   make(chan error, nranks),
		finish: make(chan error, 1),
	}
	for i := range cl.req {
		cl.req[i] = make(chan int)
	}
	go func() {
		cl.finish <- comm.Run(func(rk *typhon.Rank) {
			sm := subs[rk.ID()]
			lm := sm.M
			rho := make([]float64, lm.NEl)
			ein := make([]float64, lm.NEl)
			for i, ge := range lm.GlobalEl {
				rho[i] = p.Rho[ge]
				ein[i] = p.Ein[ge]
			}
			s, err := hydro.NewState(lm, p.Opt, rho, ein)
			if err != nil {
				panic(err) // test harness: surfaces as RankPanicError
			}
			p.ApplyVelocities(s)
			s.Pool = par.New(1)
			defer s.Pool.Close()
			elHalo := typhon.NewHalo(sm.ElSend, sm.ElRecv)
			ndHalo := typhon.NewHalo(sm.NdSend, sm.NdRecv)

			var commErr error
			hooks := &hydro.Hooks{
				ReduceDt: func(dt float64, e int) (float64, int) {
					if commErr != nil {
						return dt, -1
					}
					d, _, err := rk.AllReduceMinLoc(dt, -1)
					if err != nil {
						commErr = err
						return dt, -1
					}
					return d, -1
				},
			}
			if overlap {
				ffS, fwS := s.ForceHalo()
				peF := rk.NewExchange(elHalo, fwS, len(ffS))
				peV := rk.NewExchange(ndHalo, 1, 4)
				var pendF, pendV bool
				hooks.Band = lm.BoundaryBand()
				hooks.StartForces = func(st *hydro.State) {
					if commErr != nil {
						return
					}
					ff, _ := st.ForceHalo()
					if err := peF.Start(ff...); err != nil {
						commErr = err
					} else {
						pendF = true
					}
				}
				hooks.FinishForces = func(st *hydro.State) {
					if !pendF {
						return
					}
					pendF = false
					if err := peF.Finish(); err != nil {
						commErr = err
					}
				}
				hooks.StartVelocities = func(st *hydro.State) {
					if commErr != nil {
						return
					}
					if err := peV.Start(st.U, st.V, st.UBar, st.VBar); err != nil {
						commErr = err
					} else {
						pendV = true
					}
				}
				hooks.FinishVelocities = func(st *hydro.State) {
					if !pendV {
						return
					}
					pendV = false
					if err := peV.Finish(); err != nil {
						commErr = err
					}
				}
			} else {
				hooks.ExchangeForces = func(st *hydro.State) {
					if commErr != nil {
						return
					}
					ff, fw := st.ForceHalo()
					if err := rk.Exchange(elHalo, fw, ff...); err != nil {
						commErr = err
					}
				}
				hooks.ExchangeVelocities = func(st *hydro.State) {
					if commErr != nil {
						return
					}
					if err := rk.Exchange(ndHalo, 1, st.U, st.V, st.UBar, st.VBar); err != nil {
						commErr = err
					}
				}
			}

			var roll hydro.Memento
			for cmd := range cl.req[rk.ID()] {
				var err error
				switch cmd {
				case ccStep:
					_, err = s.Step(nil, hooks)
					if err == nil {
						err = commErr
					}
				case ccSave:
					s.Save(&roll)
				case ccReset:
					s.Load(&roll)
				case ccQuit:
					cl.done <- nil
					return
				}
				cl.done <- err
			}
		})
	}()
	return cl
}

// do issues one command to every rank and waits for all of them.
func (cl *stepCluster) do(tb testing.TB, cmd int) {
	for _, ch := range cl.req {
		ch <- cmd
	}
	var firstErr error
	for i := 0; i < cl.nranks; i++ {
		if err := <-cl.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		tb.Fatalf("cluster step: %v", firstErr)
	}
}

func (cl *stepCluster) stop(tb testing.TB) {
	cl.do(tb, ccQuit)
	if err := <-cl.finish; err != nil {
		tb.Fatal(err)
	}
}

// TestParallelStepZeroAllocs extends PR 2's intra-rank allocation pin
// to the distributed step: once the kernel arenas are warm and the
// exchange buffer pool is saturated, a full multi-rank Lagrangian step
// — kernels, dt reduction and both halo exchanges, blocking or phased
// — performs zero heap allocations across all rank goroutines
// (AllocsPerRun counts process-wide mallocs).
func TestParallelStepZeroAllocs(t *testing.T) {
	for _, nranks := range []int{2, 4} {
		for _, overlap := range []bool{false, true} {
			t.Run(fmt.Sprintf("ranks-%d/overlap-%v", nranks, overlap), func(t *testing.T) {
				cl := startStepCluster(t, "noh", 16, 16, nranks, overlap)
				defer cl.stop(t)
				for i := 0; i < 6; i++ { // warm arenas + saturate buffer pool
					cl.do(t, ccStep)
				}
				allocs := testing.AllocsPerRun(10, func() {
					cl.do(t, ccStep)
				})
				if allocs != 0 {
					t.Errorf("steady-state %d-rank step allocates %v times per run", nranks, allocs)
				}
			})
		}
	}
}

// BenchmarkParallelStep records the rank-scaling axis of the step cost
// (BENCH_step.json via make bench): one full Lagrangian step at 1, 2
// and 4 ranks with the blocking and the overlapped halo schedule. The
// state rolls back to a saved snapshot every 64 steps so arbitrarily
// long benchmark runs measure the same flow field.
func BenchmarkParallelStep(b *testing.B) {
	for _, nranks := range []int{1, 2, 4} {
		for _, mode := range []struct {
			name    string
			overlap bool
		}{{"overlap-off", false}, {"overlap-on", true}} {
			b.Run(fmt.Sprintf("ranks-%d/%s", nranks, mode.name), func(b *testing.B) {
				cl := startStepCluster(b, "noh", 20, 20, nranks, mode.overlap)
				defer cl.stop(b)
				for i := 0; i < 5; i++ {
					cl.do(b, ccStep)
				}
				cl.do(b, ccSave)
				steps := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if steps >= 64 {
						b.StopTimer()
						cl.do(b, ccReset)
						steps = 0
						b.StartTimer()
					}
					cl.do(b, ccStep)
					steps++
				}
			})
		}
	}
}
