package bookleaf

// Failure-injection tests live in the package itself so they can reach
// the unexported test knobs.

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"bookleaf/internal/hydro"
	"bookleaf/internal/typhon"
)

// A rank that hits a timestep collapse mid-run must bring the whole
// parallel run down cleanly — an error return, not a deadlock. The
// compensation protocol in runParallel keeps the halo-exchange schedule
// symmetric while the ranks agree to abort. RetryBudget is disabled so
// the collapse is immediately fatal.
func TestParallelFailurePropagatesCleanly(t *testing.T) {
	cfg := Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, RetryBudget: -1,
		testDtMin: 1e-3, // unreachably large once the shock forms
	}
	err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("expected a timestep-collapse error")
	}
	if !strings.Contains(err.Error(), "collapsed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// The same failure with the Eulerian remap active exercises the remap
// compensation path too.
func TestParallelFailureWithRemapCleanly(t *testing.T) {
	cfg := Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 3, ALE: "eulerian", RetryBudget: -1,
		testDtMin: 1e-3,
	}
	if err := runBounded(t, cfg); err == nil {
		t.Fatal("expected a timestep-collapse error")
	}
}

// With the retry budget enabled, a persistent collapse is retried with a
// halved timestep cap until the budget runs out, then still fails with
// the collapse as the root cause on every rank.
func TestParallelCollapseExhaustsRetryBudget(t *testing.T) {
	cfg := Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4,
		testDtMin: 1e-3,
	}
	err := runBounded(t, cfg)
	if err == nil {
		t.Fatal("expected a timestep-collapse error after retries")
	}
	if !strings.Contains(err.Error(), "collapsed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSerialFailureReportsStep(t *testing.T) {
	_, err := Run(Config{Problem: "sod", NX: 32, NY: 2, RetryBudget: -1, testDtMin: 1e-3})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "step") {
		t.Fatalf("error lacks step context: %v", err)
	}
}

// A single transient NaN — the kind a corrupted message or a marginal
// remap produces — must be absorbed by rollback-retry: the run restores
// the last rolling snapshot, halves the timestep cap and completes.
func TestSerialRollbackRecoversTransientNaN(t *testing.T) {
	injected := false
	res, err := Run(Config{
		Problem: "sod", NX: 32, NY: 2, MaxSteps: 25,
		testFault: func(rank, step int, s *hydro.State) {
			if step == 14 && !injected {
				injected = true
				s.Rho[3] = math.NaN()
			}
		},
	})
	if err != nil {
		t.Fatalf("transient NaN not recovered: %v", err)
	}
	if res.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", res.Rollbacks)
	}
	if res.Steps != 25 {
		t.Fatalf("run stopped at step %d", res.Steps)
	}
}

// A NaN that reappears on every retry exhausts the budget and aborts
// with the offending field, element and step in the error.
func TestSerialRollbackBudgetExhausts(t *testing.T) {
	res, err := Run(Config{
		Problem: "sod", NX: 32, NY: 2, MaxSteps: 25, RetryBudget: 2,
		testFault: func(rank, step int, s *hydro.State) {
			if step == 14 {
				s.Ein[5] = math.Inf(1)
			}
		},
	})
	if err == nil {
		t.Fatalf("persistent NaN completed: %+v", res)
	}
	var nf *hydro.ErrNonFinite
	if !errors.As(err, &nf) || nf.Field != "ein" || nf.Global != 5 {
		t.Fatalf("error lacks field/element context: %v", err)
	}
	if !strings.Contains(err.Error(), "step 14") {
		t.Fatalf("error lacks step context: %v", err)
	}
}

// Parallel flavour of the transient-NaN recovery: one rank trips the
// health sentinel, all ranks roll back collectively and the run
// completes with the rollback counted once.
func TestParallelRollbackRecoversTransientNaN(t *testing.T) {
	injected := false // only touched by rank 1's goroutine
	res, err := Run(Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, MaxSteps: 25,
		testFault: func(rank, step int, s *hydro.State) {
			if rank == 1 && step == 14 && !injected {
				injected = true
				s.U[2] = math.NaN()
			}
		},
	})
	if err != nil {
		t.Fatalf("transient NaN not recovered: %v", err)
	}
	if res.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", res.Rollbacks)
	}
	if res.Steps != 25 {
		t.Fatalf("run stopped at step %d", res.Steps)
	}
}

// Parallel budget exhaustion must end with the health error from the
// faulty rank, not a deadlock and not a peer's abort echo.
func TestParallelRollbackBudgetExhausts(t *testing.T) {
	err := runBounded(t, Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, MaxSteps: 25, RetryBudget: 2,
		testFault: func(rank, step int, s *hydro.State) {
			if rank == 2 && step == 14 {
				s.Rho[0] = math.NaN()
			}
		},
	})
	if err == nil {
		t.Fatal("persistent NaN completed")
	}
	var nf *hydro.ErrNonFinite
	if !errors.As(err, &nf) || nf.Field != "rho" {
		t.Fatalf("error lacks health context: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("error lacks rank context: %v", err)
	}
}

// An injected rank panic mid-exchange poisons the communicator: peers
// blocked in Recv or a reduction unwind with ErrAborted and the run
// returns the panic as the root cause, within the deadline.
func TestInjectedPanicAbortsParallelRun(t *testing.T) {
	err := runBounded(t, Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4,
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 1, Msg: 7, Kind: typhon.FaultPanic},
		}},
	})
	if err == nil {
		t.Fatal("expected an abort error")
	}
	if !errors.Is(err, typhon.ErrAborted) {
		t.Fatalf("error does not match ErrAborted: %v", err)
	}
	var rp *typhon.RankPanicError
	if !errors.As(err, &rp) || rp.Rank != 1 {
		t.Fatalf("root cause is not rank 1's panic: %v", err)
	}
}

// A truncated halo message is a data fault, not a crash: the receiving
// rank reports a size mismatch, aborts the communicator, and the run
// ends cleanly with that mismatch as the root cause.
func TestTruncatedHaloMessageFailsCleanly(t *testing.T) {
	err := runBounded(t, Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4,
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 2, Msg: 5, Kind: typhon.FaultTruncate},
		}},
	})
	if err == nil {
		t.Fatal("expected a size-mismatch error")
	}
	var sm *typhon.SizeMismatchError
	if !errors.As(err, &sm) || sm.From != 2 {
		t.Fatalf("root cause is not the truncated message from rank 2: %v", err)
	}
}

// A dropped message is detected by the receive timeout rather than a
// hang; the timing-out rank is the root cause.
func TestDroppedHaloMessageTimesOut(t *testing.T) {
	err := runBounded(t, Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4,
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 1, Msg: 3, Kind: typhon.FaultDrop},
		}},
		testRecvTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	var to *typhon.TimeoutError
	if !errors.As(err, &to) || to.From != 1 {
		t.Fatalf("root cause is not a timeout waiting on rank 1: %v", err)
	}
}

func TestHistoryRecorded(t *testing.T) {
	res, err := Run(Config{Problem: "sod", NX: 32, NY: 2, MaxSteps: 20, HistoryEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 4 {
		t.Fatalf("history entries = %d, want 4", len(res.History))
	}
	prevT := -1.0
	for _, h := range res.History {
		if h.Time <= prevT {
			t.Fatalf("history time not increasing: %+v", h)
		}
		prevT = h.Time
		if h.Dt <= 0 || h.Energy <= 0 {
			t.Fatalf("bad history record: %+v", h)
		}
	}
}

// runBounded runs cfg on a goroutine and fails the test if the run does
// not return within a generous deadline — the deadlock detector for the
// failure-injection tests.
func runBounded(t *testing.T, cfg Config) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked")
		return nil
	}
}
