package bookleaf

// Failure-injection tests live in the package itself so they can reach
// the unexported test knobs.

import (
	"strings"
	"testing"
	"time"
)

// A rank that hits a timestep collapse mid-run must bring the whole
// parallel run down cleanly — an error return, not a deadlock. The
// compensation protocol in runParallel keeps the halo-exchange schedule
// symmetric while the ranks agree to abort.
func TestParallelFailurePropagatesCleanly(t *testing.T) {
	cfg := Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4,
		testDtMin: 1e-3, // unreachably large once the shock forms
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a timestep-collapse error")
		}
		if !strings.Contains(err.Error(), "collapsed") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-timeoutC(t):
		t.Fatal("parallel failure deadlocked")
	}
}

// The same failure with the Eulerian remap active exercises the remap
// compensation path too.
func TestParallelFailureWithRemapCleanly(t *testing.T) {
	cfg := Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 3, ALE: "eulerian",
		testDtMin: 1e-3,
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a timestep-collapse error")
		}
	case <-timeoutC(t):
		t.Fatal("parallel remap failure deadlocked")
	}
}

func TestSerialFailureReportsStep(t *testing.T) {
	_, err := Run(Config{Problem: "sod", NX: 32, NY: 2, testDtMin: 1e-3})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "step") {
		t.Fatalf("error lacks step context: %v", err)
	}
}

func TestHistoryRecorded(t *testing.T) {
	res, err := Run(Config{Problem: "sod", NX: 32, NY: 2, MaxSteps: 20, HistoryEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 4 {
		t.Fatalf("history entries = %d, want 4", len(res.History))
	}
	prevT := -1.0
	for _, h := range res.History {
		if h.Time <= prevT {
			t.Fatalf("history time not increasing: %+v", h)
		}
		prevT = h.Time
		if h.Dt <= 0 || h.Energy <= 0 {
			t.Fatalf("bad history record: %+v", h)
		}
	}
}

func timeoutC(t *testing.T) <-chan struct{} {
	t.Helper()
	ch := make(chan struct{})
	go func() {
		// Generous bound; a deadlock would hang forever.
		time.Sleep(30 * time.Second)
		close(ch)
	}()
	return ch
}
