package bookleaf

// Property tests for the runtime invariant probes: on healthy pure
// Lagrangian runs the conservation audit must stay quiet at a
// per-step drift budget of 1e-12 (the compatible-hydro identity of
// DESIGN.md §3), and deliberately corrupted state must be flagged
// within one sample interval. The tests live in the package so they
// can reach the unexported fault-injection knobs.

import (
	"testing"

	"bookleaf/internal/hydro"
	"bookleaf/internal/obs"
	"bookleaf/internal/typhon"
)

// On Noh and Sod, serial and at 4 ranks, sampling the probes every
// step must record zero violations and a max per-step drift within
// the 1e-12 budget. This pins the probe plumbing (collective mass /
// energy / work reductions) as much as the scheme itself: a probe
// that sampled mid-step or mixed ranks' partial sums would blow the
// budget immediately.
func TestProbesCleanOnLagrangianRuns(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"noh-1rank", Config{Problem: "noh", NX: 16, NY: 16, MaxSteps: 40}},
		{"noh-4rank", Config{Problem: "noh", NX: 16, NY: 16, Ranks: 4, MaxSteps: 40}},
		{"sod-1rank", Config{Problem: "sod", NX: 64, NY: 4, MaxSteps: 40}},
		{"sod-4rank", Config{Problem: "sod", NX: 64, NY: 4, Ranks: 4, MaxSteps: 40}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.ProbeEvery = 1
			cfg.ProbeMaxDrift = 1e-12
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ProbeViolations != 0 {
				t.Fatalf("probe violations = %d on a healthy run", res.ProbeViolations)
			}
			// Every step after the baseline must have produced a record.
			if len(res.Probes) < res.Steps-1 {
				t.Fatalf("probe records = %d for %d steps", len(res.Probes), res.Steps)
			}
			for _, rec := range res.Probes {
				if !rec.Finite {
					t.Fatalf("non-finite state at step %d", rec.Step)
				}
				if rec.DriftPerStep > 1e-12 {
					t.Fatalf("step %d: per-step drift %.3e exceeds 1e-12", rec.Step, rec.DriftPerStep)
				}
			}
			if res.Obs.Counters["probe_violations_total"] != 0 {
				t.Fatalf("probe_violations_total = %d", res.Obs.Counters["probe_violations_total"])
			}
			if got := res.Obs.Counters["probe_samples_total"]; got != int64(len(res.Probes)) {
				t.Fatalf("probe_samples_total = %d, records = %d", got, len(res.Probes))
			}
		})
	}
}

// A finite energy corruption — the kind no NaN sweep can see — must
// trip the conservation audit within one sample interval of the
// injection.
func TestProbeFlagsFiniteEnergyCorruption(t *testing.T) {
	const injectStep, every = 12, 5
	injected := false
	res, err := Run(Config{
		Problem: "sod", NX: 32, NY: 2, MaxSteps: 25,
		ProbeEvery: every, ProbeMaxDrift: 1e-12,
		testFault: func(rank, step int, s *hydro.State) {
			if step == injectStep && !injected {
				injected = true
				s.Ein[4] *= 1.05 // finite, so CheckFinite stays green
			}
		},
	})
	if err != nil {
		t.Fatalf("finite corruption should not abort the run: %v", err)
	}
	if res.Rollbacks != 0 {
		t.Fatalf("finite corruption triggered rollback (%d); probe test is vacuous", res.Rollbacks)
	}
	if res.ProbeViolations == 0 {
		t.Fatal("corrupted energy never flagged")
	}
	first := -1
	for _, rec := range res.Probes {
		if rec.Violation {
			first = rec.Step
			break
		}
	}
	if first < 0 || first > injectStep+every {
		t.Fatalf("first violation at step %d, want within one interval of step %d", first, injectStep)
	}
}

// The same audit in parallel: corrupt one rank's state and require the
// collective reductions to surface it — a probe that only watched the
// local subdomain sum on rank 0 would miss rank 2's corruption.
func TestProbeFlagsParallelCorruption(t *testing.T) {
	const injectStep, every = 12, 5
	injected := false // only touched by rank 2's goroutine
	res, err := Run(Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, MaxSteps: 25,
		ProbeEvery: every, ProbeMaxDrift: 1e-12,
		testFault: func(rank, step int, s *hydro.State) {
			if rank == 2 && step == injectStep && !injected {
				injected = true
				s.Ein[4] *= 1.05
			}
		},
	})
	if err != nil {
		t.Fatalf("finite corruption should not abort the run: %v", err)
	}
	if res.ProbeViolations == 0 {
		t.Fatal("corrupted energy never flagged")
	}
	first := -1
	for _, rec := range res.Probes {
		if rec.Violation {
			first = rec.Step
			break
		}
	}
	if first < 0 || first > injectStep+every {
		t.Fatalf("first violation at step %d, want within one interval of step %d", first, injectStep)
	}
}

// A NaN injected into a halo message (the PR-2 FaultPlan corruption)
// is caught by the health sentinel before the next collective sample;
// the probe records the non-finite violation on the corrupted step
// even though rollback then repairs the state.
func TestProbeRecordsHaloCorruptionBeforeRollback(t *testing.T) {
	res, err := Run(Config{
		Problem: "sod", NX: 64, NY: 4, Ranks: 4, MaxSteps: 25,
		ProbeEvery: 5, ProbeMaxDrift: 1e-12,
		testFaultPlan: &typhon.FaultPlan{Faults: []typhon.Fault{
			{Rank: 1, Msg: 5, Kind: typhon.FaultCorrupt},
		}},
	})
	if err != nil {
		t.Fatalf("transient halo corruption not recovered: %v", err)
	}
	if res.Rollbacks == 0 {
		t.Fatal("halo corruption did not trigger rollback; injection is vacuous")
	}
	if res.ProbeViolations == 0 {
		t.Fatal("halo corruption left no probe violation record")
	}
	found := false
	for _, rec := range res.Probes {
		if rec.Violation && !rec.Finite {
			found = true
		}
	}
	if !found {
		t.Fatal("no non-finite violation record despite rollback")
	}
	if res.Obs.Counters["probe_nonfinite_total"] == 0 {
		t.Fatal("probe_nonfinite_total counter not incremented")
	}
	// After rollback the conservation samples must be clean again.
	// (Record order is rank 0's samples followed by other ranks'
	// non-finite notes, so select the latest sample by step.)
	var last *obs.ProbeRecord
	for i := range res.Probes {
		rec := &res.Probes[i]
		if rec.Finite && (last == nil || rec.Step > last.Step) {
			last = rec
		}
	}
	if last == nil {
		t.Fatal("no conservation samples recorded")
	}
	if last.Violation {
		t.Fatalf("final sample still in violation: %+v", *last)
	}
}
