package bookleaf

// Driver-level acceptance battery for the mesh-locality overhaul
// (DESIGN.md §15): Hilbert/RCM renumbering and the AoS corner layout
// must change memory behaviour only. Renumbering perturbs summation
// order (node gathers run in a different element order), so reordered
// runs are compared to the canonical run with a tight tolerance; the
// layout flip keeps every add in the same order, so AoS-vs-SoA is held
// to bitwise equality. Results are always presented in canonical
// generation order, which is what makes the direct index-by-index
// comparisons below meaningful.

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
)

// reorderFieldPairs enumerates the physics fields of two results for
// comparison loops.
func reorderFieldPairs(a, b *Result) map[string][2][]float64 {
	return map[string][2][]float64{
		"rho": {a.Rho, b.Rho}, "ein": {a.Ein, b.Ein}, "p": {a.P, b.P},
		"u": {a.U, b.U}, "v": {a.V, b.V},
		"x": {a.X, b.X}, "y": {a.Y, b.Y},
	}
}

// TestReorderMatchesCanonicalAcrossRanks: a renumbered run is the same
// physics as the canonical run to summation-order precision, at every
// supported rank count. The 1e-10 bound is generous against the
// observed drift (~4e-15 on a 200-step Sod) but far below any
// discretisation scale, so a mapping bug — a field presented in the
// wrong order, a halo built against stale ids — fails it immediately.
func TestReorderMatchesCanonicalAcrossRanks(t *testing.T) {
	cases := []Config{
		{Problem: "noh", NX: 20, NY: 20, MaxSteps: 25},
		{Problem: "sod", NX: 64, NY: 4, MaxSteps: 40},
	}
	for _, base := range cases {
		for _, ranks := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("%s/ranks=%d", base.Problem, ranks), func(t *testing.T) {
				cfg := base
				cfg.Ranks = ranks
				ref, err := Run(cfg)
				if err != nil {
					t.Fatalf("canonical run: %v", err)
				}
				for _, ro := range []string{"hilbert", "rcm"} {
					cfg.Reorder = ro
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("reorder=%s: %v", ro, err)
					}
					if res.Steps != ref.Steps {
						t.Fatalf("reorder=%s: steps %d differ from canonical %d",
							ro, res.Steps, ref.Steps)
					}
					for name, pair := range reorderFieldPairs(res, ref) {
						var d float64
						for i := range pair[0] {
							d = math.Max(d, math.Abs(pair[0][i]-pair[1][i]))
						}
						if d > 1e-10 {
							t.Errorf("reorder=%s: %s drifts %.3e from canonical", ro, name, d)
						}
					}
					if d := math.Abs(res.MassFinal - ref.MassFinal); d > 1e-12*math.Abs(ref.MassFinal) {
						t.Errorf("reorder=%s: mass differs by %v", ro, d)
					}
				}
			})
		}
	}
}

// TestReorderLayoutThreadInvariance: every point of the reorder ×
// layout grid keeps the bitwise thread-count determinism guarantee —
// renumbering relabels the mesh once at setup and the layout flip only
// changes addressing, so neither may introduce a schedule dependence.
func TestReorderLayoutThreadInvariance(t *testing.T) {
	for _, ro := range []string{"none", "hilbert", "rcm"} {
		for _, lay := range []string{"soa", "aos"} {
			t.Run(fmt.Sprintf("reorder=%s/layout=%s", ro, lay), func(t *testing.T) {
				base := Config{
					Problem: "noh", NX: 16, NY: 16, MaxSteps: 20,
					Reorder: ro, Layout: lay,
				}
				var ref *Result
				for _, threads := range []int{1, 2, 4, 7} {
					cfg := base
					cfg.Threads = threads
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("threads=%d: %v", threads, err)
					}
					if threads == 1 {
						ref = res
						continue
					}
					if res.Steps != ref.Steps || res.Time != ref.Time {
						t.Fatalf("threads=%d: steps/time (%d, %v) differ from serial (%d, %v)",
							threads, res.Steps, res.Time, ref.Steps, ref.Time)
					}
					for name, pair := range reorderFieldPairs(res, ref) {
						if i := firstDiff(pair[0], pair[1]); i >= 0 {
							t.Errorf("threads=%d: %s[%d] = %x, serial %x",
								threads, name, i, pair[0][i], pair[1][i])
						}
					}
				}
			})
		}
	}
}

// TestLayoutBitwiseParity: the interleaved corner layout is the same
// arithmetic as the paper's parallel arrays — identical operations in
// identical order, different addresses — so fused and unfused steps
// must agree bitwise across layouts, on a canonical and a renumbered
// mesh alike.
func TestLayoutBitwiseParity(t *testing.T) {
	cases := []Config{
		{Problem: "noh", NX: 16, NY: 16, MaxSteps: 20},
		{Problem: "sod", NX: 64, NY: 4, MaxSteps: 25},
	}
	for _, base := range cases {
		for _, ro := range []string{"none", "hilbert"} {
			for _, fused := range []bool{true, false} {
				t.Run(fmt.Sprintf("%s/reorder=%s/fused=%v", base.Problem, ro, fused), func(t *testing.T) {
					cfg := base
					cfg.Reorder = ro
					cfg.NoFuse = !fused
					cfg.Layout = "soa"
					soa, err := Run(cfg)
					if err != nil {
						t.Fatalf("soa: %v", err)
					}
					cfg.Layout = "aos"
					aos, err := Run(cfg)
					if err != nil {
						t.Fatalf("aos: %v", err)
					}
					if aos.Steps != soa.Steps || aos.Time != soa.Time {
						t.Fatalf("steps/time (%d, %v) differ across layouts (%d, %v)",
							aos.Steps, aos.Time, soa.Steps, soa.Time)
					}
					for name, pair := range reorderFieldPairs(aos, soa) {
						if i := firstDiff(pair[0], pair[1]); i >= 0 {
							t.Errorf("%s[%d] = %x (aos), %x (soa)", name, i, pair[0][i], pair[1][i])
						}
					}
					if aos.EFinal != soa.EFinal {
						t.Errorf("EFinal %x (aos) differs from %x (soa)", aos.EFinal, soa.EFinal)
					}
				})
			}
		}
	}
}

// TestReorderCheckpointResume: checkpoints are written in canonical
// generation order regardless of the in-memory numbering, so a dump
// from a renumbered run resumes exactly — at the same rank count
// bitwise, at a different rank count to cross-partition tolerance, and
// even under a *different* renumbering than the one that wrote it.
func TestReorderCheckpointResume(t *testing.T) {
	base := Config{Problem: "sod", NX: 48, NY: 4, MaxSteps: 40, Reorder: "hilbert"}

	ref, err := Run(base)
	if err != nil {
		t.Fatalf("continuous run: %v", err)
	}

	ck := filepath.Join(t.TempDir(), "hilbert.ckpt")
	leg := base
	leg.MaxSteps = 20
	leg.Checkpoint = ck
	if _, err := Run(leg); err != nil {
		t.Fatalf("checkpoint leg: %v", err)
	}

	for _, tc := range []struct {
		name    string
		ranks   int
		reorder string
		bitwise bool
	}{
		{"same-rank-same-order", 0, "hilbert", true},
		{"cross-rank", 3, "hilbert", false},
		{"cross-order-rcm", 0, "rcm", false},
		{"cross-order-none", 2, "none", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Ranks = tc.ranks
			cfg.Reorder = tc.reorder
			cfg.Resume = ck
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps != ref.Steps {
				t.Fatalf("resumed steps %d != continuous %d", res.Steps, ref.Steps)
			}
			for name, pair := range reorderFieldPairs(res, ref) {
				if tc.bitwise {
					if i := firstDiff(pair[0], pair[1]); i >= 0 {
						t.Errorf("%s[%d] = %x, continuous %x", name, i, pair[0][i], pair[1][i])
					}
					continue
				}
				var d float64
				for i := range pair[0] {
					d = math.Max(d, math.Abs(pair[0][i]-pair[1][i]))
				}
				if d > 1e-10 {
					t.Errorf("%s differs from continuous run by %v", name, d)
				}
			}
		})
	}
}

// TestReorderSuperviseRepartition: elastic repartitioning re-splits the
// renumbered global mesh, so locality survives a mid-run rank-count
// change and the run still lands on the unperturbed answer.
func TestReorderSuperviseRepartition(t *testing.T) {
	base := Config{
		Problem: "noh", NX: 16, NY: 16, MaxSteps: 24,
		Ranks: 4, ALE: "smoothed", ALEFreq: 2, Reorder: "hilbert",
	}
	ref, err := runBoundedResult(t, base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for _, newRanks := range []int{7, 2} {
		t.Run(fmt.Sprintf("repart-to-%d", newRanks), func(t *testing.T) {
			cfg := base
			cfg.Supervise = &SuperviseConfig{
				Enabled:      true,
				RepartAtStep: 12,
				RepartRanks:  newRanks,
				RanksMax:     8,
			}
			res, err := runBoundedResult(t, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Repartitions != 1 || res.FinalRanks != newRanks {
				t.Fatalf("repartitions=%d final ranks=%d, want 1/%d",
					res.Repartitions, res.FinalRanks, newRanks)
			}
			if res.Steps != ref.Steps {
				t.Fatalf("steps %d differ from unperturbed %d", res.Steps, ref.Steps)
			}
			for name, pair := range reorderFieldPairs(res, ref) {
				var d float64
				for i := range pair[0] {
					d = math.Max(d, math.Abs(pair[0][i]-pair[1][i]))
				}
				if d > 1e-6 {
					t.Errorf("%s drifts %.3e from the unperturbed run", name, d)
				}
			}
			if d := math.Abs(res.MassFinal - ref.MassFinal); d > 1e-12*ref.MassFinal {
				t.Errorf("mass differs by %v after repartition", d)
			}
		})
	}
}
