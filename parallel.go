package bookleaf

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bookleaf/internal/ale"
	"bookleaf/internal/checkpoint"
	"bookleaf/internal/hydro"
	"bookleaf/internal/obs"
	"bookleaf/internal/par"
	"bookleaf/internal/partition"
	"bookleaf/internal/setup"
	"bookleaf/internal/timers"
	"bookleaf/internal/typhon"
)

// phaseCtrs is the per-exchange-phase attribution pair: the driver
// reads the rank's total-traffic counters around each exchange and
// adds the delta here, so per-phase splits can never disagree with the
// totals typhon publishes.
type phaseCtrs struct {
	msgs, words *obs.Counter
}

// Collective step-status codes, reduced with AllReduceMin at the top of
// every driver iteration so all ranks agree on the worst rank's state.
// Exact float values: the min of any combination is the dominant code.
const (
	stOK    = 1.0
	stRetry = 0.0
	stFatal = -1.0
)

// runParallel executes the problem across goroutine ranks with the
// Typhon-style communication schedule the paper describes: ghost nodal
// kinematics refreshed for the viscosity limiter, ghost corner forces
// refreshed immediately before the acceleration calculation, and a
// single global MINLOC reduction per step for the timestep.
//
// Fault tolerance wraps that schedule in three layers. A status
// reduction at the top of every iteration classifies the step as ok,
// retryable or fatal; retryable failures (timestep collapse, tangled
// element, non-finite field) trigger a collective rollback to a rolling
// in-memory snapshot with a halved timestep cap, bounded by
// Config.RetryBudget. Checkpoints are gathered collectively into a
// partition-independent global snapshot (format v2), so a run
// checkpointed here can resume at any rank count. Communication faults
// poison the Comm through its abort path: every blocked rank unblocks
// with an error matching typhon.ErrAborted and the run ends with the
// root cause, not a deadlock.
func runParallel(cfg Config) (*Result, error) {
	p, err := setup.ByName(cfg.Problem, cfg.NX, cfg.NY, cfg.SedovEnergy)
	if err != nil {
		return nil, err
	}
	cfg.applyOverrides(&p.Opt)

	var part []int
	switch cfg.Partitioner {
	case "metis":
		part, err = partition.MultilevelMesh(p.Mesh, cfg.Ranks)
	default:
		part, err = partition.RCBMesh(p.Mesh, cfg.Ranks)
	}
	if err != nil {
		return nil, err
	}
	subs, err := partition.Split(p.Mesh, part, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	comm, err := typhon.NewComm(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	if cfg.testFaultPlan != nil {
		comm.InjectFaults(cfg.testFaultPlan)
	}
	if cfg.testRecvTimeout > 0 {
		comm.SetRecvTimeout(cfg.testRecvTimeout)
	}

	// Per-rank observability: registries always on (counter updates are
	// plain adds), tracers and probes only when configured. All ranks
	// share one epoch so merged traces align on a single timeline.
	epoch := time.Now()
	regs := make([]*obs.Registry, cfg.Ranks)
	for i := range regs {
		regs[i] = obs.NewRegistry()
	}
	comm.AttachObs(regs)
	tracers := make([]*obs.Tracer, cfg.Ranks)
	probes := make([]*obs.InvariantProbe, cfg.Ranks)

	tEnd := p.TEnd
	if cfg.TEnd > 0 {
		tEnd = cfg.TEnd
	}

	// Resume dumps are read and validated once, before any ranks spawn:
	// a missing, truncated or incompatible dump fails here with a clear
	// error instead of collapsing ranks mid-flight.
	var resume *checkpoint.Snapshot
	if cfg.Resume != "" {
		resume, err = loadSnapshot(cfg.Resume, cfg.Problem, cfg.NX, cfg.NY, p.Mesh.NEl, p.Mesh.NNd)
		if err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}
	// Checkpoints gather into one shared global snapshot: the owned
	// slots of the ranks are disjoint, and the collective protocol in
	// writeCk orders the gathers before rank 0 serialises it.
	var gsnap *checkpoint.Snapshot
	if cfg.Checkpoint != "" {
		gsnap = checkpoint.New(cfg.Problem, cfg.NX, cfg.NY, p.Mesh.NEl, p.Mesh.NNd)
	}

	res := &Result{
		Problem: p.Name, Ranks: cfg.Ranks, Threads: cfg.Threads,
		NEl: p.Mesh.NEl, NNd: p.Mesh.NNd,
		Mesh: p.Mesh, TEnd: tEnd, Gamma: p.Gamma, SedovEnergy: p.SedovEnergy,
		Rho: make([]float64, p.Mesh.NEl),
		Ein: make([]float64, p.Mesh.NEl),
		P:   make([]float64, p.Mesh.NEl),
		U:   make([]float64, p.Mesh.NNd),
		V:   make([]float64, p.Mesh.NNd),
		X:   make([]float64, p.Mesh.NNd),
		Y:   make([]float64, p.Mesh.NNd),
	}
	rankErrs := make([]error, cfg.Ranks)
	rankTimers := make([]*timers.Set, cfg.Ranks)
	rankEF := make([]float64, cfg.Ranks)
	rankMF := make([]float64, cfg.Ranks)
	rankW := make([]float64, cfg.Ranks)
	rankF := make([]float64, cfg.Ranks)
	rankSteps := make([]int, cfg.Ranks)
	rankTime := make([]float64, cfg.Ranks)
	rankRoll := make([]int, cfg.Ranks)

	runErr := comm.Run(func(rk *typhon.Rank) {
		sm := subs[rk.ID()]
		lm := sm.M
		// Restrict initial fields to the local mesh.
		rho := make([]float64, lm.NEl)
		ein := make([]float64, lm.NEl)
		for i, ge := range lm.GlobalEl {
			rho[i] = p.Rho[ge]
			ein[i] = p.Ein[ge]
		}
		s, err := hydro.NewState(lm, p.Opt, rho, ein)
		if err != nil {
			rankErrs[rk.ID()] = fmt.Errorf("rank %d: %w", rk.ID(), err)
			rk.AllReduceMin(stFatal) // let peers abort their first status check
			return
		}
		p.ApplyVelocities(s)
		s.Pool = par.New(cfg.Threads)
		defer s.Pool.Close()

		if resume != nil {
			if err := resume.Restore(s, cfg.Problem, cfg.NX, cfg.NY); err != nil {
				rankErrs[rk.ID()] = fmt.Errorf("rank %d resume: %w", rk.ID(), err)
				rk.AllReduceMin(stFatal)
				return
			}
			// The snapshot stores the global (rank-summed) audit
			// accumulators; keep them on rank 0 only so the final
			// re-summation stays correct.
			if rk.ID() != 0 {
				s.ExternalWork, s.FloorEnergy = 0, 0
			}
		}

		elHalo := typhon.NewHalo(sm.ElSend, sm.ElRecv)
		ndHalo := typhon.NewHalo(sm.NdSend, sm.NdRecv)

		reg := regs[rk.ID()]
		var tracer *obs.Tracer
		if cfg.Trace != "" {
			tracer = obs.NewTracer(rk.ID(), epoch)
			tracers[rk.ID()] = tracer
		}
		var probe *obs.InvariantProbe
		if cfg.ProbeEvery > 0 {
			probe = obs.NewInvariantProbe(cfg.ProbeEvery, cfg.ProbeMaxDrift, reg)
			probes[rk.ID()] = probe
		}
		ctrSteps := reg.Counter("steps_total")
		ctrRemaps := reg.Counter("remaps_total")
		ctrRollbacks := reg.Counter("rollbacks_total")
		ctrReduce := reg.Counter("dt_reductions_total")
		dtCause := dtCauseCounters(reg)
		msgsTotal := reg.Counter("comm_msgs_total")
		wordsTotal := reg.Counter("comm_words_total")
		forcesPh := phaseCtrs{reg.Counter("halo_msgs_forces"), reg.Counter("halo_words_forces")}
		velPh := phaseCtrs{reg.Counter("halo_msgs_velocities"), reg.Counter("halo_words_velocities")}
		remapPh := phaseCtrs{reg.Counter("halo_msgs_remap"), reg.Counter("halo_words_remap")}
		// halo_wait_ns is time spent blocked on halo traffic;
		// halo_overlap_ns is the in-flight window the phased schedule
		// hides behind interior work (always zero on the synchronous
		// schedule). Together they make the hidden communication time
		// visible in metrics.json and bleaf-trace.
		ctrWait := reg.Counter("halo_wait_ns")

		// commErr latches the first communication failure on this rank;
		// all later exchanges no-op so the rank drains to the next
		// status check instead of blocking on a poisoned Comm.
		var commErr error
		exch := func(ph phaseCtrs, h *typhon.Halo, stride int, fields ...[]float64) {
			if commErr != nil {
				return
			}
			m0, w0 := msgsTotal.Value(), wordsTotal.Value()
			t0 := time.Now()
			if err := rk.Exchange(h, stride, fields...); err != nil {
				commErr = err
			}
			d := time.Since(t0)
			ctrWait.Add(d.Nanoseconds())
			tracer.Span("halo_wait", t0, d)
			ph.msgs.Add(msgsTotal.Value() - m0)
			ph.words.Add(wordsTotal.Value() - w0)
		}

		var remap *ale.Remapper
		if a := cfg.aleOptions(); a != nil {
			remap = ale.NewRemapper(*a, s)
		}
		aleHooks := &ale.Hooks{
			ExchangeCellFields: func(fields ...[]float64) {
				exch(remapPh, elHalo, 1, fields...)
			},
			ExchangeNodeFields: func(x, y []float64) {
				exch(remapPh, ndHalo, 1, x, y)
			},
			ExchangeVelocities: func(u, v []float64) {
				exch(remapPh, ndHalo, 1, u, v)
			},
		}

		tm := timers.NewSet()
		if tracer != nil {
			tm.SetSink(tracer)
		}
		dtCap := math.Inf(1)
		// hooksDone counts the exchange hooks run in the current step
		// so a failing rank can compensate the ones its peers still
		// expect (see the failure path below).
		hooksDone := 0
		hooks := &hydro.Hooks{
			ReduceDt: func(dt float64, e int) (float64, int) {
				if dt > dtCap {
					dt = dtCap
				}
				loc := -1
				if e >= 0 {
					loc = lm.GlobalEl[e]
				}
				if commErr == nil {
					ctrReduce.Inc()
					d, l, err := rk.AllReduceMinLoc(dt, loc)
					if err != nil {
						commErr = err
					} else {
						dt, loc = d, l
					}
				}
				if s.Time+dt > tEnd {
					dt = tEnd - s.Time
				}
				return dt, loc
			},
			ExchangeForces: func(st *hydro.State) {
				hooksDone++
				exch(forcesPh, elHalo, 4, st.FX, st.FY)
			},
			ExchangeVelocities: func(st *hydro.State) {
				hooksDone++
				exch(velPh, ndHalo, 1, st.U, st.V, st.UBar, st.VBar)
			},
		}
		if cfg.Overlap {
			// Phased schedule: the same two exchanges, split into
			// Start/Finish around the interior kernels. Start counts
			// toward hooksDone (all sends are posted there), and every
			// Start is balanced by its Finish within the same Step call,
			// so the compensation protocol below is unchanged. A Start
			// that fails leaves nothing pending; its Finish no-ops.
			ctrOverlap := reg.Counter("halo_overlap_ns")
			peF := rk.NewExchange(elHalo, 4, 2)
			peV := rk.NewExchange(ndHalo, 1, 4)
			var pendF, pendV bool
			var startF, startV time.Time
			startEx := func(ph phaseCtrs, pe *typhon.PendingExchange, pending *bool, at *time.Time, fields ...[]float64) {
				if commErr != nil {
					return
				}
				m0, w0 := msgsTotal.Value(), wordsTotal.Value()
				if err := pe.Start(fields...); err != nil {
					commErr = err
				} else {
					*pending = true
					*at = time.Now()
				}
				ph.msgs.Add(msgsTotal.Value() - m0)
				ph.words.Add(wordsTotal.Value() - w0)
			}
			finishEx := func(pe *typhon.PendingExchange, pending *bool, at *time.Time) {
				if !*pending {
					return
				}
				*pending = false
				t1 := time.Now()
				ctrOverlap.Add(t1.Sub(*at).Nanoseconds())
				tracer.Span("halo_overlap", *at, t1.Sub(*at))
				if err := pe.Finish(); err != nil {
					commErr = err
				}
				d := time.Since(t1)
				ctrWait.Add(d.Nanoseconds())
				tracer.Span("halo_wait", t1, d)
			}
			hooks.Band = lm.BoundaryBand()
			hooks.StartForces = func(st *hydro.State) {
				hooksDone++
				startEx(forcesPh, peF, &pendF, &startF, st.FX, st.FY)
			}
			hooks.FinishForces = func(st *hydro.State) {
				finishEx(peF, &pendF, &startF)
			}
			hooks.StartVelocities = func(st *hydro.State) {
				hooksDone++
				startEx(velPh, peV, &pendV, &startV, st.U, st.V, st.UBar, st.VBar)
			}
			hooks.FinishVelocities = func(st *hydro.State) {
				finishEx(peV, &pendV, &startV)
			}
			if remap != nil {
				// The remap's three exchanges get the same phased
				// treatment. Apply keeps at most one in flight at a
				// time and balances every Start with its Finish on
				// all paths, so the compensation protocol (a failing
				// rank answering with blocking exchanges) still
				// pairs up.
				peRC := rk.NewExchange(elHalo, 1, 6)
				peRN := rk.NewExchange(ndHalo, 1, 2)
				peRV := rk.NewExchange(ndHalo, 1, 2)
				var pendRC, pendRN, pendRV bool
				var startRC, startRN, startRV time.Time
				aleHooks.Band = hooks.Band
				aleHooks.StartCellFields = func(fields ...[]float64) {
					startEx(remapPh, peRC, &pendRC, &startRC, fields...)
				}
				aleHooks.FinishCellFields = func() {
					finishEx(peRC, &pendRC, &startRC)
				}
				aleHooks.StartNodeFields = func(x, y []float64) {
					startEx(remapPh, peRN, &pendRN, &startRN, x, y)
				}
				aleHooks.FinishNodeFields = func() {
					finishEx(peRN, &pendRN, &startRN)
				}
				aleHooks.StartVelocities = func(u, v []float64) {
					startEx(remapPh, peRV, &pendRV, &startRV, u, v)
				}
				aleHooks.FinishVelocities = func() {
					finishEx(peRV, &pendRV, &startRV)
				}
			}
		}

		// writeCk gathers every rank's owned entities into the shared
		// global snapshot and has rank 0 write it. The reductions
		// double as barriers: all gathers complete before the write,
		// and no rank re-gathers before the write finishes. Called
		// collectively — every rank at the same step.
		writeCk := func() error {
			ok := stOK
			if err := gsnap.Gather(s); err != nil {
				ok = stFatal
			}
			work, err := rk.AllReduceSum(s.ExternalWork)
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			floor, err := rk.AllReduceSum(s.FloorEnergy)
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			g, err := rk.AllReduceMin(ok)
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			if g < 0 {
				return fmt.Errorf("rank %d: checkpoint gather failed", rk.ID())
			}
			var wErr error
			if rk.ID() == 0 {
				gsnap.SetClock(s.Time, s.DtPrev, s.StepCount, work, floor)
				wErr = writeSnapshotFile(cfg.Checkpoint, gsnap)
			}
			ok = stOK
			if wErr != nil {
				ok = stFatal
			}
			g, err = rk.AllReduceMin(ok)
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			if g < 0 {
				if wErr != nil {
					return wErr
				}
				return fmt.Errorf("rank %d: checkpoint write failed on rank 0", rk.ID())
			}
			return nil
		}

		// sampleProbe globally reduces the conservation invariants and
		// records the sample on rank 0. Called collectively at the
		// healthy point, so the reductions line up across ranks. The
		// sampled state is finite by construction — a non-finite field
		// never reaches the healthy point; those are flagged through
		// NoteNonFinite on the rank that detects them.
		sampleProbe := func() error {
			mass, err := rk.AllReduceSum(s.TotalMass())
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			energy, err := rk.AllReduceSum(s.TotalEnergy())
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			work, err := rk.AllReduceSum(s.ExternalWork)
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			floor, err := rk.AllReduceSum(s.FloorEnergy)
			if err != nil {
				return fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			if rk.ID() == 0 {
				rec := probe.Sample(s.StepCount, s.Time, mass, energy, work, floor, true)
				if rec.Violation {
					tracer.Instant("probe_violation", nil)
				}
			}
			return nil
		}

		rollEvery := cfg.rollbackEvery()
		budget := cfg.retryBudget()
		if rollEvery == 0 {
			budget = 0
		}
		var roll hydro.Memento
		if budget > 0 {
			s.Save(&roll) // cover steps before the first cadence point
		}
		var stepErr, fatalErr error
		rollbacks := 0
		lastCk := -1
		lastProbe := -1
		for {
			if fatalErr == nil && commErr != nil {
				fatalErr = fmt.Errorf("rank %d: %w", rk.ID(), commErr)
			}
			code := stOK
			switch {
			case fatalErr != nil:
				code = stFatal
			case stepErr != nil:
				if budget > 0 && hydro.Retryable(stepErr) {
					code = stRetry
				} else {
					fatalErr = stepErr
					code = stFatal
				}
			}
			g, err := rk.AllReduceMin(code)
			if err != nil {
				if fatalErr == nil {
					fatalErr = fmt.Errorf("rank %d: %w", rk.ID(), err)
				}
				break
			}
			if g <= stFatal {
				if fatalErr == nil {
					if stepErr != nil {
						fatalErr = stepErr
					} else {
						fatalErr = fmt.Errorf("rank %d stopped by peer failure: %w", rk.ID(), typhon.ErrAborted)
					}
				}
				tracer.Instant("abort", nil)
				break
			}
			if g < stOK {
				// Collective rollback: every rank restores its snapshot
				// of the same step and halves the shared timestep cap.
				// budget and dtCap stay identical across ranks because
				// both only change here.
				budget--
				rollbacks++
				ctrRollbacks.Inc()
				tracer.Instant("rollback", nil)
				s.Load(&roll)
				dtCap = math.Min(dtCap, s.DtPrev) / 2
				stepErr = nil
				continue
			}
			// All ranks healthy and at the same step.
			if gsnap != nil && cfg.CheckpointEvery > 0 && s.StepCount > 0 &&
				s.StepCount%cfg.CheckpointEvery == 0 && s.StepCount != lastCk {
				lastCk = s.StepCount
				if err := writeCk(); err != nil {
					fatalErr = err
					continue
				}
			}
			if probe.Due(s.StepCount) && s.StepCount != lastProbe {
				lastProbe = s.StepCount
				if err := sampleProbe(); err != nil {
					fatalErr = err
					continue
				}
			}
			if s.Time >= tEnd-1e-12 {
				break
			}
			if cfg.MaxSteps > 0 && s.StepCount >= cfg.MaxSteps {
				break
			}
			if budget > 0 && s.StepCount%rollEvery == 0 {
				s.Save(&roll)
			}
			hooksDone = 0
			// Step increments StepCount only after every failure
			// point, so a failed step leaves it unchanged and a
			// rolled-back step replays with the value it had on the
			// first attempt. Capturing it here makes the remap-cadence
			// arithmetic below explicit: a successful step lands on
			// stepStart+1, which is the count peers consult when they
			// decide to remap.
			stepStart := s.StepCount
			if _, err := s.Step(tm, hooks); err != nil {
				stepErr = fmt.Errorf("rank %d step %d (t=%v): %w", rk.ID(), s.StepCount, s.Time, err)
				// Compensate the exchanges peers will still perform
				// this step, keeping the schedule deadlock-free.
				if hooksDone < 1 {
					exch(forcesPh, elHalo, 4, s.FX, s.FY)
				}
				if hooksDone < 2 {
					exch(velPh, ndHalo, 1, s.U, s.V, s.UBar, s.VBar)
				}
				// Peers that completed the step sit at stepStart+1 and
				// remap when that count hits the cadence; answer their
				// full exchange sequence (node targets, cell fields,
				// velocities) with scratch values — a collective
				// rollback follows, so only the pattern matters.
				if remap != nil && (stepStart+1)%cfg.ALEFreq == 0 {
					remap.ExchangeScratch(s, aleHooks)
				}
				continue
			}
			if remap != nil && s.StepCount%cfg.ALEFreq == 0 {
				tm.Start(hydro.TimerALE)
				// Apply owns the remap's halo exchanges, including the
				// post-remap ghost-velocity refresh, which it performs
				// on every path — even failures — so peers don't block.
				err := remap.Apply(s, tm, aleHooks)
				tm.Stop(hydro.TimerALE)
				if err != nil {
					stepErr = fmt.Errorf("rank %d remap step %d: %w", rk.ID(), s.StepCount, err)
					continue
				}
				ctrRemaps.Inc()
			}
			if cfg.testFault != nil {
				cfg.testFault(rk.ID(), s.StepCount, s)
			}
			// Health sentinel: a NaN/Inf in the evolving fields rolls
			// the run back rather than silently spreading through the
			// next halo exchange. The probe records the finding first,
			// so corruption is flagged within the step it appears even
			// though the rollback erases the corrupted state.
			if err := s.CheckFinite(); err != nil {
				probe.NoteNonFinite(s.StepCount, s.Time)
				tracer.Instant("probe_violation", nil)
				stepErr = fmt.Errorf("rank %d step %d (t=%v): %w", rk.ID(), s.StepCount, s.Time, err)
				continue
			}
			ctrSteps.Inc()
			dtCause[s.DtCause].Inc()
			if !math.IsInf(dtCap, 1) {
				dtCap *= s.Opt.DtGrowth
			}
		}
		// Final checkpoint. fatalErr is collectively consistent (set on
		// every rank or on none), so participation matches.
		if fatalErr == nil && gsnap != nil {
			if err := writeCk(); err != nil {
				fatalErr = err
			}
		}

		// Gather owned entries into the global result (disjoint
		// writes; the Run waitgroup publishes them to the caller).
		for i := 0; i < lm.NOwnEl; i++ {
			ge := lm.GlobalEl[i]
			res.Rho[ge] = s.Rho[i]
			res.Ein[ge] = s.Ein[i]
			res.P[ge] = s.P[i]
		}
		for i := 0; i < lm.NOwnNd; i++ {
			gn := lm.GlobalNd[i]
			res.U[gn] = s.U[i]
			res.V[gn] = s.V[i]
			res.X[gn] = s.X[i]
			res.Y[gn] = s.Y[i]
		}
		if remap != nil {
			// Publish the ALESTEP phase breakdown as counters so
			// metrics.json carries the remap cost split without
			// consumers having to parse the timer table.
			reg.Counter("ale_getmesh_ns").Add(tm.Elapsed("alegetmesh").Nanoseconds())
			reg.Counter("ale_getfvol_ns").Add(tm.Elapsed("alegetfvol").Nanoseconds())
			reg.Counter("ale_advect_ns").Add(tm.Elapsed("aleadvect").Nanoseconds())
			reg.Counter("ale_update_ns").Add(tm.Elapsed("aleupdate").Nanoseconds())
		}
		rankErrs[rk.ID()] = fatalErr
		rankTimers[rk.ID()] = tm
		rankEF[rk.ID()] = s.TotalEnergy()
		rankMF[rk.ID()] = s.TotalMass()
		rankW[rk.ID()] = s.ExternalWork
		rankF[rk.ID()] = s.FloorEnergy
		rankSteps[rk.ID()] = s.StepCount
		rankTime[rk.ID()] = s.Time
		rankRoll[rk.ID()] = rollbacks
	})

	// Root-cause selection: prefer the rank error that is not a
	// peer-abort echo (a timeout, size mismatch, or hydro failure
	// carries the cause; AbortError wrappers on the other ranks are
	// consequences).
	var abortedErr error
	for _, e := range rankErrs {
		if e == nil {
			continue
		}
		if errors.Is(e, typhon.ErrAborted) {
			if abortedErr == nil {
				abortedErr = e
			}
			continue
		}
		return nil, fmt.Errorf("bookleaf: %w", e)
	}
	if runErr != nil {
		return nil, fmt.Errorf("bookleaf: %w", runErr)
	}
	if abortedErr != nil {
		return nil, fmt.Errorf("bookleaf: %w", abortedErr)
	}
	maxT := timers.NewSet()
	sumT := timers.NewSet()
	for _, t := range rankTimers {
		if t == nil {
			continue
		}
		maxT.MergeMax(t)
		sumT.Merge(t)
	}
	res.Timers = maxT.Snapshot()
	res.TimerSum = sumT.Snapshot()
	res.Calls = map[string]int64{}
	for _, n := range maxT.Names() {
		res.Calls[n] = maxT.Count(n)
	}
	res.Steps = rankSteps[0]
	res.Time = rankTime[0]
	res.Rollbacks = rankRoll[0]
	for _, w := range rankW {
		res.ExternalWork += w
	}
	for _, f := range rankF {
		res.FloorEnergy += f
	}
	for _, e := range rankEF {
		res.EFinal += e
	}
	for _, m := range rankMF {
		res.MassFinal += m
	}
	res.CommMsgs, res.CommWords = comm.Stats()
	// Initial audits from a cheap serial state on the global mesh.
	s0, err := p.NewState()
	if err == nil {
		res.E0 = s0.TotalEnergy()
		res.Mass0 = s0.TotalMass()
	}

	// Merge the per-rank observability state: counters and histograms
	// sum across ranks, gauges come from the rank that published them
	// (the probe gauges live on rank 0).
	merged := obs.NewRegistry()
	for _, r := range regs {
		merged.Merge(r)
	}
	res.Obs = merged.Snapshot()
	for id, pr := range probes {
		if pr == nil {
			continue
		}
		res.ProbeViolations += pr.Violations
		if id == 0 {
			res.Probes = append(res.Probes, pr.Records...)
			continue
		}
		// Conservation samples are recorded on rank 0 only; other
		// ranks contribute their non-finite notes.
		for _, rec := range pr.Records {
			if rec.Violation && !rec.Finite {
				res.Probes = append(res.Probes, rec)
			}
		}
	}
	if cfg.Trace != "" {
		for _, tr := range tracers {
			if tr == nil {
				continue
			}
			if err := tr.WriteFile(cfg.Trace); err != nil {
				return nil, fmt.Errorf("bookleaf: %w", err)
			}
		}
	}
	if cfg.Metrics != "" {
		if err := writeMetricsFile(cfg.Metrics, cfg, res, time.Since(epoch).Seconds()); err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}
	return res, nil
}
