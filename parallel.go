package bookleaf

import (
	"fmt"

	"bookleaf/internal/ale"
	"bookleaf/internal/hydro"
	"bookleaf/internal/par"
	"bookleaf/internal/partition"
	"bookleaf/internal/setup"
	"bookleaf/internal/timers"
	"bookleaf/internal/typhon"
)

// runParallel executes the problem across goroutine ranks with the
// Typhon-style communication schedule the paper describes: ghost nodal
// kinematics refreshed for the viscosity limiter, ghost corner forces
// refreshed immediately before the acceleration calculation, and a
// single global MINLOC reduction per step for the timestep.
func runParallel(cfg Config) (*Result, error) {
	p, err := setup.ByName(cfg.Problem, cfg.NX, cfg.NY, cfg.SedovEnergy)
	if err != nil {
		return nil, err
	}
	cfg.applyOverrides(&p.Opt)

	var part []int
	switch cfg.Partitioner {
	case "metis":
		part, err = partition.MultilevelMesh(p.Mesh, cfg.Ranks)
	default:
		part, err = partition.RCBMesh(p.Mesh, cfg.Ranks)
	}
	if err != nil {
		return nil, err
	}
	subs, err := partition.Split(p.Mesh, part, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	comm, err := typhon.NewComm(cfg.Ranks)
	if err != nil {
		return nil, err
	}

	tEnd := p.TEnd
	if cfg.TEnd > 0 {
		tEnd = cfg.TEnd
	}

	res := &Result{
		Problem: p.Name, Ranks: cfg.Ranks, Threads: cfg.Threads,
		NEl: p.Mesh.NEl, NNd: p.Mesh.NNd,
		Mesh: p.Mesh, TEnd: tEnd, Gamma: p.Gamma, SedovEnergy: p.SedovEnergy,
		Rho: make([]float64, p.Mesh.NEl),
		Ein: make([]float64, p.Mesh.NEl),
		P:   make([]float64, p.Mesh.NEl),
		U:   make([]float64, p.Mesh.NNd),
		V:   make([]float64, p.Mesh.NNd),
		X:   make([]float64, p.Mesh.NNd),
		Y:   make([]float64, p.Mesh.NNd),
	}
	rankErrs := make([]error, cfg.Ranks)
	rankTimers := make([]*timers.Set, cfg.Ranks)
	rankEF := make([]float64, cfg.Ranks)
	rankMF := make([]float64, cfg.Ranks)
	rankW := make([]float64, cfg.Ranks)
	rankF := make([]float64, cfg.Ranks)
	rankSteps := make([]int, cfg.Ranks)
	rankTime := make([]float64, cfg.Ranks)

	comm.Run(func(rk *typhon.Rank) {
		sm := subs[rk.ID()]
		lm := sm.M
		// Restrict initial fields to the local mesh.
		rho := make([]float64, lm.NEl)
		ein := make([]float64, lm.NEl)
		for i, ge := range lm.GlobalEl {
			rho[i] = p.Rho[ge]
			ein[i] = p.Ein[ge]
		}
		s, err := hydro.NewState(lm, p.Opt, rho, ein)
		if err != nil {
			rankErrs[rk.ID()] = err
			rk.AllReduceMin(-1) // let peers abort their first status check
			return
		}
		p.ApplyVelocities(s)
		s.Pool = par.New(cfg.Threads)

		elHalo := typhon.NewHalo(sm.ElSend, sm.ElRecv)
		ndHalo := typhon.NewHalo(sm.NdSend, sm.NdRecv)

		var remap *ale.Remapper
		if a := cfg.aleOptions(); a != nil {
			remap = ale.NewRemapper(*a, s)
		}
		aleHooks := &ale.Hooks{
			ExchangeCellFields: func(fields ...[]float64) {
				rk.Exchange(elHalo, 1, fields...)
			},
		}

		tm := timers.NewSet()
		// hooksDone counts the exchange hooks run in the current step
		// so a failing rank can compensate the ones its peers still
		// expect (see the failure path below).
		hooksDone := 0
		hooks := &hydro.Hooks{
			ReduceDt: func(dt float64, e int) (float64, int) {
				loc := -1
				if e >= 0 {
					loc = lm.GlobalEl[e]
				}
				dt, loc = rk.AllReduceMinLoc(dt, loc)
				if s.Time+dt > tEnd {
					dt = tEnd - s.Time
				}
				return dt, loc
			},
			ExchangeForces: func(st *hydro.State) {
				hooksDone++
				rk.Exchange(elHalo, 4, st.FX, st.FY)
			},
			ExchangeVelocities: func(st *hydro.State) {
				hooksDone++
				rk.Exchange(ndHalo, 1, st.U, st.V, st.UBar, st.VBar)
			},
		}

		var myErr error
		for {
			// Collective status check: any failed rank aborts all.
			status := 1.0
			if myErr != nil {
				status = -1
			}
			if rk.AllReduceMin(status) < 0 {
				break
			}
			if s.Time >= tEnd-1e-12 {
				break
			}
			if cfg.MaxSteps > 0 && s.StepCount >= cfg.MaxSteps {
				break
			}
			hooksDone = 0
			if _, err := s.Step(tm, hooks); err != nil {
				myErr = fmt.Errorf("rank %d step %d: %w", rk.ID(), s.StepCount, err)
				// Compensate the exchanges peers will still perform
				// this step, keeping the schedule deadlock-free.
				if hooksDone < 1 {
					rk.Exchange(elHalo, 4, s.FX, s.FY)
				}
				if hooksDone < 2 {
					rk.Exchange(ndHalo, 1, s.U, s.V, s.UBar, s.VBar)
				}
				// Peers that completed the step will also run the
				// remap exchange (their StepCount is one ahead).
				if remap != nil && (s.StepCount+1)%cfg.ALEFreq == 0 {
					remap.ExchangeScratch(aleHooks)
					rk.Exchange(ndHalo, 1, s.U, s.V)
				}
				continue
			}
			if remap != nil && s.StepCount%cfg.ALEFreq == 0 {
				tm.Start(hydro.TimerALE)
				err := remap.Apply(s, tm, aleHooks)
				// Ghost velocities changed by the remap on owner
				// ranks: refresh them for the next viscosity
				// calculation. Performed even on failure so peers
				// don't block.
				rk.Exchange(ndHalo, 1, s.U, s.V)
				tm.Stop(hydro.TimerALE)
				if err != nil {
					myErr = fmt.Errorf("rank %d remap step %d: %w", rk.ID(), s.StepCount, err)
				}
			}
		}

		// Gather owned entries into the global result (disjoint
		// writes; the Run waitgroup publishes them to the caller).
		for i := 0; i < lm.NOwnEl; i++ {
			ge := lm.GlobalEl[i]
			res.Rho[ge] = s.Rho[i]
			res.Ein[ge] = s.Ein[i]
			res.P[ge] = s.P[i]
		}
		for i := 0; i < lm.NOwnNd; i++ {
			gn := lm.GlobalNd[i]
			res.U[gn] = s.U[i]
			res.V[gn] = s.V[i]
			res.X[gn] = s.X[i]
			res.Y[gn] = s.Y[i]
		}
		rankErrs[rk.ID()] = myErr
		rankTimers[rk.ID()] = tm
		rankEF[rk.ID()] = s.TotalEnergy()
		rankMF[rk.ID()] = s.TotalMass()
		rankW[rk.ID()] = s.ExternalWork
		rankF[rk.ID()] = s.FloorEnergy
		rankSteps[rk.ID()] = s.StepCount
		rankTime[rk.ID()] = s.Time
	})

	for _, e := range rankErrs {
		if e != nil {
			return nil, fmt.Errorf("bookleaf: %w", e)
		}
	}
	maxT := timers.NewSet()
	sumT := timers.NewSet()
	for _, t := range rankTimers {
		if t == nil {
			continue
		}
		maxT.MergeMax(t)
		sumT.Merge(t)
	}
	res.Timers = maxT.Snapshot()
	res.TimerSum = sumT.Snapshot()
	res.Calls = map[string]int64{}
	for _, n := range maxT.Names() {
		res.Calls[n] = maxT.Count(n)
	}
	res.Steps = rankSteps[0]
	res.Time = rankTime[0]
	for _, w := range rankW {
		res.ExternalWork += w
	}
	for _, f := range rankF {
		res.FloorEnergy += f
	}
	for _, e := range rankEF {
		res.EFinal += e
	}
	for _, m := range rankMF {
		res.MassFinal += m
	}
	res.CommMsgs, res.CommWords = comm.Stats()
	// Initial audits from a cheap serial state on the global mesh.
	s0, err := p.NewState()
	if err == nil {
		res.E0 = s0.TotalEnergy()
		res.Mass0 = s0.TotalMass()
	}
	return res, nil
}
