package bookleaf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"bookleaf/internal/ale"
	"bookleaf/internal/checkpoint"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
	"bookleaf/internal/obs"
	"bookleaf/internal/order"
	"bookleaf/internal/par"
	"bookleaf/internal/partition"
	"bookleaf/internal/setup"
	"bookleaf/internal/supervise"
	"bookleaf/internal/timers"
	"bookleaf/internal/typhon"
)

// phaseCtrs is the per-exchange-phase attribution pair: the driver
// reads the rank's total-traffic counters around each exchange and
// adds the delta here, so per-phase splits can never disagree with the
// totals typhon publishes.
type phaseCtrs struct {
	msgs, words *obs.Counter
}

// Collective step-status codes, reduced with AllReduceMin at the top of
// every driver iteration so all ranks agree on the worst rank's state.
// Exact float values: the min of any combination is the dominant code.
// The two control codes slot into the order so that the right action
// dominates: a retry outranks a preempt (the failing rank's state must
// be repaired before a resumable snapshot can be gathered — the preempt
// request stays pending and is honoured at the next healthy point), and
// a cancel outranks a retry (the state is being discarded either way)
// but yields to a fatal fault.
const (
	stOK      = 1.0
	stPreempt = 0.5
	stRetry   = 0.0
	stCancel  = -0.5
	stFatal   = -1.0
)

// rankSlot is the driver-side identity of one goroutine rank. It owns
// everything that must survive a supervision epoch boundary: the
// sub-mesh, the hydro state (and its thread pool), the rank's metrics
// registry, the rolling rollback memento, the per-step healthy-point
// memento the recovery ladder restores from, and the collectively
// consistent rollback bookkeeping (timestep cap, retry budget). A slot
// is touched only by its own rank's goroutine while an epoch runs and
// only by the driver between epochs; the communicator's start/finish
// edges order the two.
type rankSlot struct {
	id  int
	sub *partition.SubMesh
	s   *hydro.State
	reg *obs.Registry
	// incarnation is the replacement generation of this slot's rank
	// (0 = original), mirrored from the supervisor.
	incarnation int

	// roll backs in-epoch collective rollback-retry (cadence
	// Config.RollbackEvery); stepStart is the supervised per-step
	// healthy-point snapshot the ladder's retry/replace restore.
	roll      hydro.Memento
	stepStart hydro.Memento

	// Collectively consistent across ranks: all three change only at
	// collective points, so every slot holds the same values.
	dtCap     float64
	budget    int
	rollbacks int

	lastCk    int
	lastProbe int
	lastBal   int
	// workAcc accumulates this rank's per-step compute seconds
	// (stepping minus halo waits) since the last imbalance check.
	workAcc float64

	// Epoch outcome, read by the driver after the communicator drains.
	err     error
	repart  bool
	preempt bool
}

// parRun is the driver state of a parallel run across supervision
// epochs: the problem, the resolved policy, the rank slots, the
// supervisor, and the observability objects that are keyed by rank id
// so they survive replacement (same rank, fresh incarnation) and
// repartitioning (new fleet, reused ids).
type parRun struct {
	cfg  Config
	pol  supervise.Policy
	prob *setup.Problem
	// canon is the canonical generation-order mesh, kept when the
	// problem mesh has been renumbered for locality (prob.Mesh is then
	// the reordered view); results present on this mesh. Equal to
	// prob.Mesh when no reordering is active.
	canon *mesh.Mesh
	tEnd  float64

	gsnap *checkpoint.Snapshot
	// ctlSnap receives the collective in-memory gather when an attached
	// Control preempts the run (allocated only when a Control is set).
	ctlSnap *checkpoint.Snapshot
	start   time.Time

	sup    *supervise.Supervisor
	supReg *obs.Registry

	slots []*rankSlot
	// retired holds the registries of replaced incarnations and
	// pre-repartition fleets; each is merged into the final snapshot
	// exactly once, so a replaced rank's pre-fault totals are counted
	// without double-counting its replayed steps (which were never
	// confirmed into the retired registry — see the pending-counter
	// protocol in rankBody).
	retired []*obs.Registry

	tracers map[int]*obs.Tracer
	probes  map[int]*obs.InvariantProbe
	tms     map[int]*timers.Set

	// Cumulative typhon traffic across epochs (each epoch builds a
	// fresh communicator).
	commMsgs, commWords int64

	// Repartition bookkeeping, written between epochs only.
	lastRepart   int
	forcedRepart bool
}

// runParallel executes the problem across goroutine ranks with the
// Typhon-style communication schedule the paper describes: ghost nodal
// kinematics refreshed for the viscosity limiter, ghost corner forces
// refreshed immediately before the acceleration calculation, and a
// single global MINLOC reduction per step for the timestep.
//
// Fault tolerance wraps that schedule in two layers. Inside an epoch, a
// status reduction at the top of every iteration classifies the step as
// ok, retryable or fatal; retryable failures (timestep collapse,
// tangled element, non-finite field) trigger a collective rollback to a
// rolling in-memory snapshot with a reduced timestep cap, bounded by
// Config.RetryBudget. Communication faults poison the Comm through its
// abort path: every blocked rank unblocks with an error matching
// typhon.ErrAborted and the epoch ends with the root cause, not a
// deadlock.
//
// Around the epochs sits the supervision ladder (Config.Supervise,
// DESIGN.md §12): epoch failures are classified transient /
// rank-persistent / fatal; transients retry the epoch from every rank's
// last healthy-point memento with backoff, persistent rank-local faults
// replace just the offending rank from that same in-memory memento (no
// filesystem round trip, no collective rollback), and fatal faults
// write a final checkpoint before aborting. At healthy collective
// points the driver may also repartition online — re-running RCB/METIS
// on the current (moved) mesh and migrating state through the
// checkpoint-v2 gather/scatter — growing or shrinking the rank count.
// With supervision off (the default) there is exactly one epoch and the
// behaviour is identical to the pre-supervision driver.
func runParallel(cfg Config) (*Result, error) {
	pol, err := cfg.supervisePolicy()
	if err != nil {
		return nil, err
	}
	p, err := setup.ByName(cfg.Problem, cfg.NX, cfg.NY, cfg.SedovEnergy)
	if err != nil {
		return nil, err
	}
	cfg.applyOverrides(&p.Opt)
	canon := p.Mesh
	if kind, _ := order.Parse(cfg.Reorder); kind != order.None {
		// Renumber the global mesh for locality before partitioning;
		// every sub-mesh then composes the permutation into its
		// GlobalEl/GlobalNd maps, so checkpoints and results stay in
		// canonical generation order. Repartitions re-split the same
		// reordered mesh, so the locality order survives them.
		if p.Mesh, err = order.Reorder(p.Mesh, kind); err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}

	var part []int
	switch cfg.Partitioner {
	case "metis":
		part, err = partition.MultilevelMesh(p.Mesh, cfg.Ranks)
	default:
		part, err = partition.RCBMesh(p.Mesh, cfg.Ranks)
	}
	if err != nil {
		return nil, err
	}
	subs, err := partition.Split(p.Mesh, part, cfg.Ranks)
	if err != nil {
		return nil, err
	}

	tEnd := p.TEnd
	if cfg.TEnd > 0 {
		tEnd = cfg.TEnd
	}

	// Resume sources (in-memory snapshot or dump file) are read and
	// validated once, before any ranks spawn: a missing, truncated or
	// incompatible dump fails here with a clear error instead of
	// collapsing ranks mid-flight.
	resume, err := cfg.resumeSnapshot(p.Mesh.NEl, p.Mesh.NNd)
	if err != nil {
		return nil, fmt.Errorf("bookleaf: %w", err)
	}

	pr := &parRun{
		cfg: cfg, pol: pol, prob: p, canon: canon, tEnd: tEnd,
		start:   time.Now(),
		tracers: make(map[int]*obs.Tracer),
		probes:  make(map[int]*obs.InvariantProbe),
		tms:     make(map[int]*timers.Set),
	}
	// Checkpoints gather into one shared global snapshot: the owned
	// slots of the ranks are disjoint, and the collective protocol in
	// writeCk orders the gathers before rank 0 serialises it.
	if cfg.Checkpoint != "" {
		pr.gsnap = checkpoint.New(cfg.Problem, cfg.NX, cfg.NY, p.Mesh.NEl, p.Mesh.NNd)
	}
	if cfg.Control != nil {
		pr.ctlSnap = checkpoint.New(cfg.Problem, cfg.NX, cfg.NY, p.Mesh.NEl, p.Mesh.NNd)
	}
	if pol.Enabled {
		pr.supReg = obs.NewRegistry()
		pr.sup = supervise.New(pol, pr.supReg)
	}
	defer pr.closeSlots()

	for i, sub := range subs {
		slot, err := pr.newSlot(i, sub)
		if err != nil {
			return nil, fmt.Errorf("bookleaf: rank %d: %w", i, err)
		}
		if resume != nil {
			if err := resume.Restore(slot.s, cfg.Problem, cfg.NX, cfg.NY); err != nil {
				slot.s.Pool.Close()
				return nil, fmt.Errorf("bookleaf: rank %d resume: %w", i, err)
			}
			// The snapshot stores the global (rank-summed) audit
			// accumulators; keep them on rank 0 only so the final
			// re-summation stays correct.
			if i != 0 {
				slot.s.ExternalWork, slot.s.FloorEnergy = 0, 0
			}
		}
		pr.slots = append(pr.slots, slot)
	}

	for {
		runErr, err := pr.runEpoch()
		if err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
		rootErr, rank := pr.rootCause(runErr)
		if rootErr == nil {
			if pr.preemptWanted() {
				return nil, pr.preemptError()
			}
			if pr.repartWanted() {
				if err := pr.doRepart(); err != nil {
					return nil, fmt.Errorf("bookleaf: repartition: %w", err)
				}
				continue
			}
			return pr.finalize()
		}
		if errors.Is(rootErr, ErrCanceled) {
			// A cancel is a request honoured, not a fault: it bypasses
			// the supervision ladder (there is nothing to recover).
			return nil, fmt.Errorf("bookleaf: %w", rootErr)
		}
		if pr.sup == nil {
			// Supervision off: any epoch fault is fatal, exactly as
			// before the ladder existed.
			return nil, fmt.Errorf("bookleaf: %w", rootErr)
		}
		d := pr.sup.Decide(rootErr, rank)
		pr.noteDecision(d)
		if d.Backoff > 0 {
			time.Sleep(d.Backoff)
		}
		switch d.Action {
		case supervise.ActionRetry:
			if err := pr.restoreHealthy(); err != nil {
				return nil, pr.abortWithCheckpoint(fmt.Errorf("%w (retry impossible: %v)", rootErr, err))
			}
		case supervise.ActionReplace:
			if err := pr.replaceRank(d.Rank); err != nil {
				return nil, pr.abortWithCheckpoint(fmt.Errorf("%w (replacement failed: %v)", rootErr, err))
			}
		default:
			return nil, pr.abortWithCheckpoint(rootErr)
		}
	}
}

// newSlot builds the persistent driver-side state of one rank: the
// restricted initial fields, a fresh hydro state with its thread pool,
// and a fresh metrics registry for this incarnation.
func (pr *parRun) newSlot(id int, sub *partition.SubMesh) (*rankSlot, error) {
	lm := sub.M
	rho := make([]float64, lm.NEl)
	ein := make([]float64, lm.NEl)
	for i, ge := range lm.GlobalEl {
		rho[i] = pr.prob.Rho[ge]
		ein[i] = pr.prob.Ein[ge]
	}
	s, err := hydro.NewState(lm, pr.prob.Opt, rho, ein)
	if err != nil {
		return nil, err
	}
	pr.prob.ApplyVelocities(s)
	s.Pool = par.New(pr.cfg.Threads)
	rollEvery := pr.cfg.rollbackEvery()
	budget := pr.cfg.retryBudget()
	if rollEvery == 0 {
		budget = 0
	}
	return &rankSlot{
		id: id, sub: sub, s: s, reg: obs.NewRegistry(),
		dtCap: math.Inf(1), budget: budget,
		lastCk: -1, lastProbe: -1, lastBal: -1,
	}, nil
}

// closeSlots releases the thread pools of the current fleet (retired
// incarnations close theirs when they are replaced).
func (pr *parRun) closeSlots() {
	for _, sl := range pr.slots {
		if sl.s != nil && sl.s.Pool != nil {
			sl.s.Pool.Close()
			sl.s.Pool = nil
		}
	}
}

// runEpoch builds a fresh communicator over the current fleet and runs
// every rank until the run completes, a repartition is requested, or a
// fault surfaces. It returns the communicator's panic error (if any)
// and a driver-level setup error.
func (pr *parRun) runEpoch() (error, error) {
	cfg, pol := &pr.cfg, pr.pol
	n := len(pr.slots)
	comm, err := typhon.NewComm(n)
	if err != nil {
		return nil, err
	}
	if cfg.testFaultPlan != nil {
		comm.InjectFaults(cfg.testFaultPlan)
	}
	if pol.RecvTimeout > 0 {
		comm.SetRecvTimeout(pol.RecvTimeout)
	}
	regs := make([]*obs.Registry, n)
	for i, sl := range pr.slots {
		regs[i] = sl.reg
		sl.err = nil
		sl.repart = false
		sl.preempt = false
	}
	comm.AttachObs(regs)
	// Per-id observability objects are created here, before the rank
	// goroutines spawn, so the maps are read-only while they run.
	for _, sl := range pr.slots {
		if cfg.Trace != "" && pr.tracers[sl.id] == nil {
			pr.tracers[sl.id] = obs.NewTracer(sl.id, pr.start)
		}
		if cfg.ProbeEvery > 0 && pr.probes[sl.id] == nil {
			pr.probes[sl.id] = obs.NewInvariantProbe(cfg.ProbeEvery, cfg.ProbeMaxDrift, sl.reg)
		}
		if pr.tms[sl.id] == nil {
			pr.tms[sl.id] = timers.NewSet()
		}
	}
	runErr := comm.Run(func(rk *typhon.Rank) { pr.rankBody(rk) })
	m, w := comm.Stats()
	pr.commMsgs += m
	pr.commWords += w
	return runErr, nil
}

// rootCause picks the epoch's root-cause error and the rank it surfaced
// on: prefer the rank error that is not a peer-abort echo (a timeout,
// size mismatch, or hydro failure carries the cause; AbortError
// wrappers on the other ranks are consequences), then the recovered
// panic, then the first echo.
func (pr *parRun) rootCause(runErr error) (error, int) {
	var abortedErr error
	abortedRank := -1
	for _, sl := range pr.slots {
		e := sl.err
		if e == nil {
			continue
		}
		if errors.Is(e, typhon.ErrAborted) {
			if abortedErr == nil {
				abortedErr = e
				var ab *typhon.AbortError
				if errors.As(e, &ab) {
					abortedRank = ab.Rank
				}
			}
			continue
		}
		return e, sl.id
	}
	if runErr != nil {
		return runErr, -1
	}
	return abortedErr, abortedRank
}

// preemptWanted reports whether the epoch ended at the collective
// preemption point (the verdict comes from the status reduction, so
// every rank parked there or none did).
func (pr *parRun) preemptWanted() bool {
	for _, sl := range pr.slots {
		if !sl.preempt {
			return false
		}
	}
	return len(pr.slots) > 0
}

// preemptError assembles the PreemptedError for a parked fleet: the
// collective in-memory gather the ranks filled before exiting, plus the
// merged metrics of everything the interrupted run accumulated (retired
// incarnations first, exactly as finalize merges them). The rank
// goroutines have drained, so reading their registries here is safe.
func (pr *parRun) preemptError() *PreemptedError {
	merged := obs.NewRegistry()
	for _, r := range pr.retired {
		merged.Merge(r)
	}
	for _, sl := range pr.slots {
		merged.Merge(sl.reg)
	}
	if pr.supReg != nil {
		merged.Merge(pr.supReg)
	}
	return &PreemptedError{
		Snapshot: pr.ctlSnap,
		Step:     pr.ctlSnap.StepCount, Time: pr.ctlSnap.Time,
		Obs: merged.Snapshot(),
	}
}

// repartWanted reports whether the epoch ended with a collective
// repartition request (the trigger is a pure function of reduced
// values, so every rank requests or none do).
func (pr *parRun) repartWanted() bool {
	for _, sl := range pr.slots {
		if !sl.repart {
			return false
		}
	}
	return len(pr.slots) > 0
}

// restoreHealthy reinstates every rank's last healthy-point memento —
// the state all ranks held at the top of the last fully collective
// iteration — clearing any half-stepped or ghost-corrupted fields a
// failing epoch left behind. Not a rollback: the timestep cap and the
// retry budget are untouched.
func (pr *parRun) restoreHealthy() error {
	for _, sl := range pr.slots {
		if !sl.stepStart.Valid() {
			return fmt.Errorf("supervise: rank %d has no healthy-point snapshot", sl.id)
		}
		sl.s.Load(&sl.stepStart)
		if sl.budget > 0 {
			// Re-anchor the rollback memento at the resume point so an
			// in-epoch rollback cannot rewind past the recovery.
			sl.s.Save(&sl.roll)
		}
		sl.err = nil
		sl.repart = false
		sl.preempt = false
		sl.workAcc = 0
		// A rank that died mid-kernel left its timers started; the
		// replay must be free to start them again.
		pr.tms[sl.id].Abandon()
	}
	return nil
}

// replaceRank spawns a fresh incarnation of the failed rank from the
// collective's last in-memory healthy-point memento — no filesystem
// round trip — and restores its peers to the same point. The old
// incarnation's registry is retired (merged once at the end), its
// thread pool closed, and the neighbour patterns rebuild naturally when
// the next epoch constructs its communicator.
func (pr *parRun) replaceRank(rank int) error {
	if rank < 0 || rank >= len(pr.slots) {
		return fmt.Errorf("supervise: cannot replace rank %d of %d", rank, len(pr.slots))
	}
	old := pr.slots[rank]
	if !old.stepStart.Valid() {
		return fmt.Errorf("supervise: rank %d has no healthy-point snapshot to respawn from", rank)
	}
	fresh, err := pr.newSlot(rank, old.sub)
	if err != nil {
		return fmt.Errorf("supervise: respawn rank %d: %w", rank, err)
	}
	fresh.s.Load(&old.stepStart)
	fresh.s.Save(&fresh.stepStart)
	fresh.incarnation = pr.sup.Incarnation(rank)
	fresh.dtCap = old.dtCap
	fresh.budget = old.budget
	fresh.rollbacks = old.rollbacks
	fresh.lastCk = old.lastCk
	fresh.lastProbe = old.lastProbe
	fresh.lastBal = old.lastBal
	pr.retired = append(pr.retired, old.reg)
	if old.s.Pool != nil {
		old.s.Pool.Close()
		old.s.Pool = nil
	}
	pr.slots[rank] = fresh
	return pr.restoreHealthy()
}

// doRepart migrates the run onto a fresh partition of the current
// (moved) mesh, optionally changing the rank count: gather the world
// state through the checkpoint-v2 any-rank-count machinery, re-run the
// partitioner on the moved element centroids, and scatter the state
// onto the new fleet. Runs between epochs, with every rank parked at
// the same healthy point.
func (pr *parRun) doRepart() error {
	cfg, p := &pr.cfg, pr.prob
	world := checkpoint.New(cfg.Problem, cfg.NX, cfg.NY, p.Mesh.NEl, p.Mesh.NNd)
	var work, floor float64
	for _, sl := range pr.slots {
		if err := world.Gather(sl.s); err != nil {
			return err
		}
		work += sl.s.ExternalWork
		floor += sl.s.FloorEnergy
	}
	s0 := pr.slots[0].s
	world.SetClock(s0.Time, s0.DtPrev, s0.StepCount, work, floor)
	// QEdge — the edge viscous-damper coefficients — is the one
	// evolving field the partition-independent snapshot omits (it is
	// not needed for restart-file compatibility, only for exact
	// continuation). Migrating it through a driver-side global array
	// keeps the post-repartition step on the trajectory the unperturbed
	// run would have taken.
	gq := make([]float64, 4*p.Mesh.NEl)
	for _, sl := range pr.slots {
		lm := sl.sub.M
		cs := sl.s.CornerStride()
		for i := 0; i < lm.NOwnEl; i++ {
			copy(gq[4*lm.GlobalEl[i]:4*lm.GlobalEl[i]+4], sl.s.QEdge[cs*i:cs*i+4])
		}
	}

	n := len(pr.slots)
	if pr.pol.RepartRanks > 0 {
		n = pr.pol.RepartRanks
	}
	if pr.pol.RanksMax > 0 && n > pr.pol.RanksMax {
		n = pr.pol.RanksMax
	}
	if n > p.Mesh.NEl {
		n = p.Mesh.NEl
	}
	if n < 1 {
		n = 1
	}

	var part []int
	var err error
	switch cfg.Partitioner {
	case "metis":
		// The multilevel partitioner works on the dual graph, which the
		// moving mesh never changes (topology is static).
		part, err = partition.MultilevelMesh(p.Mesh, n)
	default:
		// RCB on the *current* element centroids: the whole point of an
		// online repartition is that the Lagrangian mesh has moved.
		cx := make([]float64, p.Mesh.NEl)
		cy := make([]float64, p.Mesh.NEl)
		for e := 0; e < p.Mesh.NEl; e++ {
			var sx, sy float64
			for k := 0; k < 4; k++ {
				nd := p.Mesh.ElNd[e][k]
				// world is gathered in canonical generation order; on
				// a reordered global mesh the node id must map through
				// GlobalNd to find its snapshot slot.
				if p.Mesh.GlobalNd != nil {
					nd = p.Mesh.GlobalNd[nd]
				}
				sx += world.X[nd]
				sy += world.Y[nd]
			}
			cx[e] = 0.25 * sx
			cy[e] = 0.25 * sy
		}
		part, err = partition.RCB(cx, cy, n)
	}
	if err != nil {
		return err
	}
	subs, err := partition.Split(p.Mesh, part, n)
	if err != nil {
		return err
	}

	tmpl := pr.slots[0]
	fresh := make([]*rankSlot, 0, n)
	fail := func(err error) error {
		for _, sl := range fresh {
			sl.s.Pool.Close()
		}
		return err
	}
	for i, sub := range subs {
		sl, err := pr.newSlot(i, sub)
		if err != nil {
			return fail(fmt.Errorf("rank %d: %w", i, err))
		}
		if err := world.Restore(sl.s, cfg.Problem, cfg.NX, cfg.NY); err != nil {
			sl.s.Pool.Close()
			return fail(fmt.Errorf("rank %d: %w", i, err))
		}
		if i != 0 {
			sl.s.ExternalWork, sl.s.FloorEnergy = 0, 0
		}
		lm := sl.sub.M
		cs := sl.s.CornerStride()
		for j := 0; j < lm.NEl; j++ { // owned and ghost alike
			copy(sl.s.QEdge[cs*j:cs*j+4], gq[4*lm.GlobalEl[j]:4*lm.GlobalEl[j]+4])
		}
		sl.dtCap = tmpl.dtCap
		sl.budget = tmpl.budget
		sl.rollbacks = tmpl.rollbacks
		sl.lastCk = tmpl.lastCk
		sl.lastProbe = tmpl.lastProbe
		sl.lastBal = tmpl.lastBal
		sl.s.Save(&sl.stepStart)
		if sl.budget > 0 {
			sl.s.Save(&sl.roll)
		}
		fresh = append(fresh, sl)
	}
	for _, sl := range pr.slots {
		pr.retired = append(pr.retired, sl.reg)
		if sl.s.Pool != nil {
			sl.s.Pool.Close()
			sl.s.Pool = nil
		}
	}
	pr.slots = fresh
	pr.lastRepart = s0.StepCount
	if pr.pol.RepartAtStep > 0 && s0.StepCount >= pr.pol.RepartAtStep {
		pr.forcedRepart = true
	}
	pr.sup.NoteRepart()
	pr.tracers[0].Instant("supervise_repart", nil)
	return nil
}

// abortWithCheckpoint is the ladder's last rung: park the fleet at its
// last healthy point, write a final restart dump (when the run has a
// checkpoint path), and surface the root cause.
func (pr *parRun) abortWithCheckpoint(root error) error {
	if pr.cfg.Checkpoint != "" && pr.gsnap != nil {
		if err := pr.emergencyCheckpoint(); err != nil {
			return fmt.Errorf("bookleaf: %w (final checkpoint failed: %v)", root, err)
		}
	}
	return fmt.Errorf("bookleaf: %w", root)
}

func (pr *parRun) emergencyCheckpoint() error {
	if err := pr.restoreHealthy(); err != nil {
		return err
	}
	var work, floor float64
	for _, sl := range pr.slots {
		if err := pr.gsnap.Gather(sl.s); err != nil {
			return err
		}
		work += sl.s.ExternalWork
		floor += sl.s.FloorEnergy
	}
	s0 := pr.slots[0].s
	pr.gsnap.SetClock(s0.Time, s0.DtPrev, s0.StepCount, work, floor)
	return writeSnapshotFile(pr.cfg.Checkpoint, pr.gsnap)
}

// noteDecision drops a trace instant for a ladder decision on the
// attributed rank's timeline.
func (pr *parRun) noteDecision(d supervise.Decision) {
	id := d.Rank
	if id < 0 || id >= len(pr.slots) {
		id = 0
	}
	tr := pr.tracers[id]
	switch d.Action {
	case supervise.ActionRetry:
		tr.Instant("supervise_retry", nil)
	case supervise.ActionReplace:
		tr.Instant("supervise_replace", nil)
	default:
		tr.Instant("supervise_abort", nil)
	}
}

// rankBody is one rank's epoch: the communication schedule, the
// collective rollback protocol, and — when supervision is on — the
// healthy-point bookkeeping the recovery ladder and the repartition
// monitor hang off.
func (pr *parRun) rankBody(rk *typhon.Rank) {
	cfg, pol := &pr.cfg, pr.pol
	slot := pr.slots[rk.ID()]
	sm := slot.sub
	lm := sm.M
	s := slot.s
	gsnap := pr.gsnap
	tEnd := pr.tEnd
	supervised := pol.Enabled
	ctl := cfg.Control

	elHalo := typhon.NewHalo(sm.ElSend, sm.ElRecv)
	ndHalo := typhon.NewHalo(sm.NdSend, sm.NdRecv)

	reg := slot.reg
	tracer := pr.tracers[rk.ID()]
	probe := pr.probes[rk.ID()]
	tm := pr.tms[rk.ID()]
	if tracer != nil {
		tm.SetSink(tracer)
	}

	ctrSteps := reg.Counter("steps_total")
	ctrRemaps := reg.Counter("remaps_total")
	ctrRollbacks := reg.Counter("rollbacks_total")
	ctrReduce := reg.Counter("dt_reductions_total")
	dtCause := dtCauseCounters(reg)
	msgsTotal := reg.Counter("comm_msgs_total")
	wordsTotal := reg.Counter("comm_words_total")
	forcesPh := phaseCtrs{reg.Counter("halo_msgs_forces"), reg.Counter("halo_words_forces")}
	velPh := phaseCtrs{reg.Counter("halo_msgs_velocities"), reg.Counter("halo_words_velocities")}
	remapPh := phaseCtrs{reg.Counter("halo_msgs_remap"), reg.Counter("halo_words_remap")}
	// halo_wait_ns is time spent blocked on halo traffic;
	// halo_overlap_ns is the in-flight window the phased schedule
	// hides behind interior work (always zero on the synchronous
	// schedule). Together they make the hidden communication time
	// visible in metrics.json and bleaf-trace.
	ctrWait := reg.Counter("halo_wait_ns")

	// Under supervision, step-progress counters are held pending until
	// the next healthy collective point confirms the step survived. A
	// peer can "complete" a step on garbage ghosts while another rank
	// is dying; that step is rewound by the recovery ladder and
	// replayed, and must not be counted twice. Without supervision the
	// counters update immediately (the pre-supervision behaviour).
	var pendSteps, pendRemaps int64
	var pendCause [5]int64
	flushPending := func() {
		if pendSteps > 0 {
			ctrSteps.Add(pendSteps)
			pendSteps = 0
		}
		if pendRemaps > 0 {
			ctrRemaps.Add(pendRemaps)
			pendRemaps = 0
		}
		for c, v := range pendCause {
			if v > 0 {
				dtCause[c].Add(v)
				pendCause[c] = 0
			}
		}
	}
	dropPending := func() {
		pendSteps, pendRemaps = 0, 0
		pendCause = [5]int64{}
	}

	// Collective rollback bookkeeping lives in the slot so it survives
	// epoch boundaries; locals keep the hot path tidy.
	dtCap := slot.dtCap
	budget := slot.budget
	rollbacks := slot.rollbacks
	defer func() {
		slot.dtCap = dtCap
		slot.budget = budget
		slot.rollbacks = rollbacks
	}()

	// commErr latches the first communication failure on this rank;
	// all later exchanges no-op so the rank drains to the next
	// status check instead of blocking on a poisoned Comm.
	var commErr error
	exch := func(ph phaseCtrs, h *typhon.Halo, stride int, fields ...[]float64) {
		if commErr != nil {
			return
		}
		m0, w0 := msgsTotal.Value(), wordsTotal.Value()
		t0 := time.Now()
		if err := rk.Exchange(h, stride, fields...); err != nil {
			commErr = err
		}
		d := time.Since(t0)
		ctrWait.Add(d.Nanoseconds())
		tracer.Span("halo_wait", t0, d)
		ph.msgs.Add(msgsTotal.Value() - m0)
		ph.words.Add(wordsTotal.Value() - w0)
	}

	var remap *ale.Remapper
	if a := cfg.aleOptions(); a != nil {
		remap = ale.NewRemapper(*a, s)
	}
	aleHooks := &ale.Hooks{
		ExchangeCellFields: func(fields ...[]float64) {
			exch(remapPh, elHalo, 1, fields...)
		},
		ExchangeNodeFields: func(x, y []float64) {
			exch(remapPh, ndHalo, 1, x, y)
		},
		ExchangeVelocities: func(u, v []float64) {
			exch(remapPh, ndHalo, 1, u, v)
		},
	}

	// hooksDone counts the exchange hooks run in the current step
	// so a failing rank can compensate the ones its peers still
	// expect (see the failure path below).
	hooksDone := 0
	hooks := &hydro.Hooks{
		ReduceDt: func(dt float64, e int) (float64, int) {
			if dt > dtCap {
				dt = dtCap
			}
			loc := -1
			if e >= 0 {
				loc = lm.GlobalEl[e]
			}
			if commErr == nil {
				ctrReduce.Inc()
				d, l, err := rk.AllReduceMinLoc(dt, loc)
				if err != nil {
					commErr = err
				} else {
					dt, loc = d, l
				}
			}
			if s.Time+dt > tEnd {
				dt = tEnd - s.Time
			}
			return dt, loc
		},
		ExchangeForces: func(st *hydro.State) {
			hooksDone++
			ff, fw := st.ForceHalo()
			exch(forcesPh, elHalo, fw, ff...)
		},
		ExchangeVelocities: func(st *hydro.State) {
			hooksDone++
			exch(velPh, ndHalo, 1, st.U, st.V, st.UBar, st.VBar)
		},
	}
	if cfg.Overlap {
		// Phased schedule: the same two exchanges, split into
		// Start/Finish around the interior kernels. Start counts
		// toward hooksDone (all sends are posted there), and every
		// Start is balanced by its Finish within the same Step call,
		// so the compensation protocol below is unchanged. A Start
		// that fails leaves nothing pending; its Finish no-ops.
		ctrOverlap := reg.Counter("halo_overlap_ns")
		ffS, fwS := s.ForceHalo()
		peF := rk.NewExchange(elHalo, fwS, len(ffS))
		peV := rk.NewExchange(ndHalo, 1, 4)
		var pendF, pendV bool
		var startF, startV time.Time
		startEx := func(ph phaseCtrs, pe *typhon.PendingExchange, pending *bool, at *time.Time, fields ...[]float64) {
			if commErr != nil {
				return
			}
			m0, w0 := msgsTotal.Value(), wordsTotal.Value()
			if err := pe.Start(fields...); err != nil {
				commErr = err
			} else {
				*pending = true
				*at = time.Now()
			}
			ph.msgs.Add(msgsTotal.Value() - m0)
			ph.words.Add(wordsTotal.Value() - w0)
		}
		finishEx := func(pe *typhon.PendingExchange, pending *bool, at *time.Time) {
			if !*pending {
				return
			}
			*pending = false
			t1 := time.Now()
			ctrOverlap.Add(t1.Sub(*at).Nanoseconds())
			tracer.Span("halo_overlap", *at, t1.Sub(*at))
			if err := pe.Finish(); err != nil {
				commErr = err
			}
			d := time.Since(t1)
			ctrWait.Add(d.Nanoseconds())
			tracer.Span("halo_wait", t1, d)
		}
		hooks.Band = lm.BoundaryBand()
		hooks.StartForces = func(st *hydro.State) {
			hooksDone++
			ff, _ := st.ForceHalo()
			startEx(forcesPh, peF, &pendF, &startF, ff...)
		}
		hooks.FinishForces = func(st *hydro.State) {
			finishEx(peF, &pendF, &startF)
		}
		hooks.StartVelocities = func(st *hydro.State) {
			hooksDone++
			startEx(velPh, peV, &pendV, &startV, st.U, st.V, st.UBar, st.VBar)
		}
		hooks.FinishVelocities = func(st *hydro.State) {
			finishEx(peV, &pendV, &startV)
		}
		if remap != nil {
			// The remap's three exchanges get the same phased
			// treatment. Apply keeps at most one in flight at a
			// time and balances every Start with its Finish on
			// all paths, so the compensation protocol (a failing
			// rank answering with blocking exchanges) still
			// pairs up.
			peRC := rk.NewExchange(elHalo, 1, 6)
			peRN := rk.NewExchange(ndHalo, 1, 2)
			peRV := rk.NewExchange(ndHalo, 1, 2)
			var pendRC, pendRN, pendRV bool
			var startRC, startRN, startRV time.Time
			aleHooks.Band = hooks.Band
			aleHooks.StartCellFields = func(fields ...[]float64) {
				startEx(remapPh, peRC, &pendRC, &startRC, fields...)
			}
			aleHooks.FinishCellFields = func() {
				finishEx(peRC, &pendRC, &startRC)
			}
			aleHooks.StartNodeFields = func(x, y []float64) {
				startEx(remapPh, peRN, &pendRN, &startRN, x, y)
			}
			aleHooks.FinishNodeFields = func() {
				finishEx(peRN, &pendRN, &startRN)
			}
			aleHooks.StartVelocities = func(u, v []float64) {
				startEx(remapPh, peRV, &pendRV, &startRV, u, v)
			}
			aleHooks.FinishVelocities = func() {
				finishEx(peRV, &pendRV, &startRV)
			}
		}
	}

	// writeCk gathers every rank's owned entities into the shared
	// global snapshot and has rank 0 write it. The reductions
	// double as barriers: all gathers complete before the write,
	// and no rank re-gathers before the write finishes. Called
	// collectively — every rank at the same step.
	writeCk := func() error {
		ok := stOK
		if err := gsnap.Gather(s); err != nil {
			ok = stFatal
		}
		work, err := rk.AllReduceSum(s.ExternalWork)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		floor, err := rk.AllReduceSum(s.FloorEnergy)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		g, err := rk.AllReduceMin(ok)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		if g < 0 {
			return fmt.Errorf("rank %d: checkpoint gather failed", rk.ID())
		}
		var wErr error
		if rk.ID() == 0 {
			gsnap.SetClock(s.Time, s.DtPrev, s.StepCount, work, floor)
			wErr = writeSnapshotFile(cfg.Checkpoint, gsnap)
		}
		ok = stOK
		if wErr != nil {
			ok = stFatal
		}
		g, err = rk.AllReduceMin(ok)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		if g < 0 {
			if wErr != nil {
				return wErr
			}
			return fmt.Errorf("rank %d: checkpoint write failed on rank 0", rk.ID())
		}
		return nil
	}

	// preemptCk is writeCk without the file: every rank gathers its
	// owned entities into the control snapshot and rank 0 stamps the
	// clock. The ranks park right after, so the single reduction pair
	// is barrier enough — nobody re-gathers before the driver reads
	// the snapshot from the drained fleet.
	preemptCk := func() error {
		ok := stOK
		if err := pr.ctlSnap.Gather(s); err != nil {
			ok = stFatal
		}
		work, err := rk.AllReduceSum(s.ExternalWork)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		floor, err := rk.AllReduceSum(s.FloorEnergy)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		g, err := rk.AllReduceMin(ok)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		if g < 0 {
			return fmt.Errorf("rank %d: preemption gather failed", rk.ID())
		}
		if rk.ID() == 0 {
			pr.ctlSnap.SetClock(s.Time, s.DtPrev, s.StepCount, work, floor)
		}
		return nil
	}

	// sampleProbe globally reduces the conservation invariants and
	// records the sample on rank 0. Called collectively at the
	// healthy point, so the reductions line up across ranks. The
	// sampled state is finite by construction — a non-finite field
	// never reaches the healthy point; those are flagged through
	// NoteNonFinite on the rank that detects them.
	sampleProbe := func() error {
		mass, err := rk.AllReduceSum(s.TotalMass())
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		energy, err := rk.AllReduceSum(s.TotalEnergy())
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		work, err := rk.AllReduceSum(s.ExternalWork)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		floor, err := rk.AllReduceSum(s.FloorEnergy)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rk.ID(), err)
		}
		if rk.ID() == 0 {
			rec := probe.Sample(s.StepCount, s.Time, mass, energy, work, floor, true)
			if rec.Violation {
				tracer.Instant("probe_violation", nil)
			}
		}
		return nil
	}

	// repartDue applies the repartition triggers at the healthy point:
	// a deterministic forced trigger, and the load-imbalance monitor
	// over AllReduce'd per-rank work — the decision is a pure function
	// of reduced values, so every rank computes the same verdict.
	repartDue := func() (bool, error) {
		if pol.RepartAtStep > 0 && !pr.forcedRepart && s.StepCount >= pol.RepartAtStep {
			return true, nil
		}
		if pol.RepartCheckEvery > 0 && s.StepCount > 0 &&
			s.StepCount%pol.RepartCheckEvery == 0 && s.StepCount != slot.lastBal {
			slot.lastBal = s.StepCount
			work := slot.workAcc
			slot.workAcc = 0
			sum, err := rk.AllReduceSum(work)
			if err != nil {
				return false, fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			negMax, err := rk.AllReduceMin(-work)
			if err != nil {
				return false, fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			if s.StepCount-pr.lastRepart < pol.RepartMinGap {
				return false, nil
			}
			return supervise.ShouldRepart(-negMax, sum, rk.Size(), pol.RepartThreshold), nil
		}
		return false, nil
	}

	rollEvery := cfg.rollbackEvery()
	if budget > 0 && !slot.roll.Valid() {
		s.Save(&slot.roll) // cover steps before the first cadence point
	}
	var stepErr, fatalErr error
	for {
		if fatalErr == nil && commErr != nil {
			fatalErr = fmt.Errorf("rank %d: %w", rk.ID(), commErr)
		}
		code := stOK
		switch {
		case fatalErr != nil:
			code = stFatal
		case stepErr != nil:
			if budget > 0 && hydro.Retryable(stepErr) {
				code = stRetry
			} else {
				fatalErr = stepErr
				code = stFatal
			}
		}
		if code == stOK {
			// Control requests ride the same reduction as failures, so
			// every rank acts on the same verdict at the same step. A
			// rank that hasn't seen the request yet still obeys the
			// reduced code. Retry outranks preempt (min-reduction):
			// failing state repairs before it is gathered.
			switch ctl.poll() {
			case ctlCancel:
				code = stCancel
			case ctlPreempt:
				code = stPreempt
			}
		}
		g, err := rk.AllReduceMin(code)
		if err != nil {
			if fatalErr == nil {
				fatalErr = fmt.Errorf("rank %d: %w", rk.ID(), err)
			}
			break
		}
		if g <= stFatal {
			if fatalErr == nil {
				if stepErr != nil {
					fatalErr = stepErr
				} else {
					fatalErr = fmt.Errorf("rank %d stopped by peer failure: %w", rk.ID(), typhon.ErrAborted)
				}
			}
			tracer.Instant("abort", nil)
			break
		}
		if g <= stCancel {
			// Collective cancellation: every rank latches the same
			// error, so fatalErr stays collectively consistent and the
			// final-checkpoint participation check still lines up.
			fatalErr = fmt.Errorf("rank %d: %w", rk.ID(), ErrCanceled)
			tracer.Instant("cancel", nil)
			break
		}
		if g <= stRetry {
			// Collective rollback: every rank restores its snapshot
			// of the same step and backs the shared timestep cap off.
			// budget and dtCap stay identical across ranks because
			// both only change here.
			budget--
			rollbacks++
			ctrRollbacks.Inc()
			tracer.Instant("rollback", nil)
			s.Load(&slot.roll)
			dtCap = math.Min(dtCap, s.DtPrev) / pol.DtBackoff
			stepErr = nil
			dropPending()
			continue
		}
		// All ranks healthy and at the same step.
		if supervised {
			// Confirm the counters of the steps that survived to this
			// collective point, then refresh the healthy-point memento
			// the recovery ladder resumes from: replacement and epoch
			// retry both restore here, so a replayed step is never
			// double-counted.
			flushPending()
			s.Save(&slot.stepStart)
		}
		if rk.ID() == 0 {
			// Rank 0 owns progress and mid-run metrics publication; its
			// registry also holds the probe records, so the published
			// snapshot is the most informative single-rank view.
			ctl.noteProgress(s.StepCount, s.Time, tEnd)
			if ctl.snapshotDue(s.StepCount) {
				ctl.publishMetrics(reg.Snapshot())
			}
		}
		if gsnap != nil && cfg.CheckpointEvery > 0 && s.StepCount > 0 &&
			s.StepCount%cfg.CheckpointEvery == 0 && s.StepCount != slot.lastCk {
			slot.lastCk = s.StepCount
			if err := writeCk(); err != nil {
				fatalErr = err
				continue
			}
		}
		if probe.Due(s.StepCount) && s.StepCount != slot.lastProbe {
			slot.lastProbe = s.StepCount
			if err := sampleProbe(); err != nil {
				fatalErr = err
				continue
			}
		}
		if s.Time >= tEnd-1e-12 {
			break
		}
		if cfg.MaxSteps > 0 && s.StepCount >= cfg.MaxSteps {
			break
		}
		if g <= stPreempt {
			// Collective preemption point: gather the world into the
			// in-memory control snapshot and park the epoch; the driver
			// wraps the snapshot in a PreemptedError. Placed after the
			// termination checks so a run that already reached tEnd
			// completes instead of preempting.
			if err := preemptCk(); err != nil {
				fatalErr = err
				continue
			}
			slot.preempt = true
			tracer.Instant("preempt", nil)
			return
		}
		if supervised {
			want, rerr := repartDue()
			if rerr != nil {
				fatalErr = rerr
				continue
			}
			if want {
				// Exit the epoch at the healthy point; the driver
				// gathers the world from the parked slots and scatters
				// it onto the new fleet.
				slot.repart = true
				return
			}
		}
		if budget > 0 && s.StepCount%rollEvery == 0 {
			s.Save(&slot.roll)
		}
		hooksDone = 0
		workT0 := time.Now()
		wait0 := ctrWait.Value()
		// Step increments StepCount only after every failure
		// point, so a failed step leaves it unchanged and a
		// rolled-back step replays with the value it had on the
		// first attempt. Capturing it here makes the remap-cadence
		// arithmetic below explicit: a successful step lands on
		// stepStart+1, which is the count peers consult when they
		// decide to remap.
		stepStart := s.StepCount
		if _, err := s.Step(tm, hooks); err != nil {
			stepErr = fmt.Errorf("rank %d step %d (t=%v): %w", rk.ID(), s.StepCount, s.Time, err)
			// Compensate the exchanges peers will still perform
			// this step, keeping the schedule deadlock-free.
			if hooksDone < 1 {
				ff, fw := s.ForceHalo()
				exch(forcesPh, elHalo, fw, ff...)
			}
			if hooksDone < 2 {
				exch(velPh, ndHalo, 1, s.U, s.V, s.UBar, s.VBar)
			}
			// Peers that completed the step sit at stepStart+1 and
			// remap when that count hits the cadence; answer their
			// full exchange sequence (node targets, cell fields,
			// velocities) with scratch values — a collective
			// rollback follows, so only the pattern matters.
			if remap != nil && (stepStart+1)%cfg.ALEFreq == 0 {
				remap.ExchangeScratch(s, aleHooks)
			}
			continue
		}
		if remap != nil && s.StepCount%cfg.ALEFreq == 0 {
			tm.Start(hydro.TimerALE)
			// Apply owns the remap's halo exchanges, including the
			// post-remap ghost-velocity refresh, which it performs
			// on every path — even failures — so peers don't block.
			err := remap.Apply(s, tm, aleHooks)
			tm.Stop(hydro.TimerALE)
			if err != nil {
				stepErr = fmt.Errorf("rank %d remap step %d: %w", rk.ID(), s.StepCount, err)
				continue
			}
			if supervised {
				pendRemaps++
			} else {
				ctrRemaps.Inc()
			}
		}
		if cfg.testFault != nil {
			cfg.testFault(rk.ID(), s.StepCount, s)
		}
		// Health sentinel: a NaN/Inf in the evolving fields rolls
		// the run back rather than silently spreading through the
		// next halo exchange. The probe records the finding first,
		// so corruption is flagged within the step it appears even
		// though the rollback erases the corrupted state.
		if err := s.CheckFinite(); err != nil {
			probe.NoteNonFinite(s.StepCount, s.Time)
			tracer.Instant("probe_violation", nil)
			stepErr = fmt.Errorf("rank %d step %d (t=%v): %w", rk.ID(), s.StepCount, s.Time, err)
			continue
		}
		if supervised {
			pendSteps++
			pendCause[s.DtCause]++
			slot.workAcc += time.Since(workT0).Seconds() - float64(ctrWait.Value()-wait0)/1e9
		} else {
			ctrSteps.Inc()
			dtCause[s.DtCause].Inc()
		}
		if !math.IsInf(dtCap, 1) {
			dtCap *= s.Opt.DtGrowth
		}
	}
	// Final checkpoint. fatalErr is collectively consistent (set on
	// every rank or on none), so participation matches.
	if fatalErr == nil && gsnap != nil {
		if err := writeCk(); err != nil {
			fatalErr = err
		}
	}
	slot.err = fatalErr
}

// finalize assembles the Result from the parked fleet after a clean
// run: global field gather, timer merges, audit sums, and the merged
// observability snapshot (retired incarnations first, each exactly
// once; then the live fleet; then the supervisor's own registry).
func (pr *parRun) finalize() (*Result, error) {
	cfg, p := &pr.cfg, pr.prob
	res := &Result{
		Problem: p.Name, Ranks: cfg.Ranks, FinalRanks: len(pr.slots), Threads: cfg.Threads,
		NEl: p.Mesh.NEl, NNd: p.Mesh.NNd,
		// Fields gather through the canonical GlobalEl/GlobalNd maps,
		// so the mesh they present on is the canonical one.
		Mesh: pr.canon, TEnd: pr.tEnd, Gamma: p.Gamma, SedovEnergy: p.SedovEnergy,
		Rho: make([]float64, p.Mesh.NEl),
		Ein: make([]float64, p.Mesh.NEl),
		P:   make([]float64, p.Mesh.NEl),
		U:   make([]float64, p.Mesh.NNd),
		V:   make([]float64, p.Mesh.NNd),
		X:   make([]float64, p.Mesh.NNd),
		Y:   make([]float64, p.Mesh.NNd),
	}
	for _, sl := range pr.slots {
		lm := sl.sub.M
		s := sl.s
		for i := 0; i < lm.NOwnEl; i++ {
			ge := lm.GlobalEl[i]
			res.Rho[ge] = s.Rho[i]
			res.Ein[ge] = s.Ein[i]
			res.P[ge] = s.P[i]
		}
		for i := 0; i < lm.NOwnNd; i++ {
			gn := lm.GlobalNd[i]
			res.U[gn] = s.U[i]
			res.V[gn] = s.V[i]
			res.X[gn] = s.X[i]
			res.Y[gn] = s.Y[i]
		}
		res.ExternalWork += s.ExternalWork
		res.FloorEnergy += s.FloorEnergy
		res.EFinal += s.TotalEnergy()
		res.MassFinal += s.TotalMass()
	}
	s0 := pr.slots[0]
	res.Steps = s0.s.StepCount
	res.Time = s0.s.Time
	res.Rollbacks = s0.rollbacks
	if pr.sup != nil {
		res.SupRetries = pr.sup.Retries()
		res.Replacements = pr.sup.Replaces()
		res.Repartitions = pr.sup.Reparts()
		for _, sl := range pr.slots {
			if sl.incarnation > 0 {
				pr.supReg.Gauge(fmt.Sprintf("supervise_incarnation_rank%d", sl.id)).Set(float64(sl.incarnation))
			}
		}
	}
	if cfg.aleOptions() != nil {
		// Publish the ALESTEP phase breakdown as counters so
		// metrics.json carries the remap cost split without
		// consumers having to parse the timer table.
		for _, sl := range pr.slots {
			tm := pr.tms[sl.id]
			sl.reg.Counter("ale_getmesh_ns").Add(tm.Elapsed("alegetmesh").Nanoseconds())
			sl.reg.Counter("ale_getfvol_ns").Add(tm.Elapsed("alegetfvol").Nanoseconds())
			sl.reg.Counter("ale_advect_ns").Add(tm.Elapsed("aleadvect").Nanoseconds())
			sl.reg.Counter("ale_update_ns").Add(tm.Elapsed("aleupdate").Nanoseconds())
		}
	}

	maxT := timers.NewSet()
	sumT := timers.NewSet()
	for _, tm := range pr.tms {
		maxT.MergeMax(tm)
		sumT.Merge(tm)
	}
	res.Timers = maxT.Snapshot()
	res.TimerSum = sumT.Snapshot()
	res.Calls = map[string]int64{}
	for _, n := range maxT.Names() {
		res.Calls[n] = maxT.Count(n)
	}
	res.CommMsgs, res.CommWords = pr.commMsgs, pr.commWords
	// Initial audits from a cheap serial state on the global mesh.
	if s0g, err := p.NewState(); err == nil {
		res.E0 = s0g.TotalEnergy()
		res.Mass0 = s0g.TotalMass()
	}

	// Merge the per-rank observability state: counters and histograms
	// sum across ranks and incarnations, gauges come from the rank
	// that published them (the probe gauges live on rank 0; current
	// incarnations merge after retired ones, so their gauges win).
	merged := obs.NewRegistry()
	for _, r := range pr.retired {
		merged.Merge(r)
	}
	for _, sl := range pr.slots {
		merged.Merge(sl.reg)
	}
	if pr.supReg != nil {
		merged.Merge(pr.supReg)
	}
	res.Obs = merged.Snapshot()

	ids := make([]int, 0, len(pr.probes))
	for id := range pr.probes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pb := pr.probes[id]
		res.ProbeViolations += pb.Violations
		if id == 0 {
			res.Probes = append(res.Probes, pb.Records...)
			continue
		}
		// Conservation samples are recorded on rank 0 only; other
		// ranks contribute their non-finite notes.
		for _, rec := range pb.Records {
			if rec.Violation && !rec.Finite {
				res.Probes = append(res.Probes, rec)
			}
		}
	}
	if cfg.Trace != "" {
		ids = ids[:0]
		for id := range pr.tracers {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if err := pr.tracers[id].WriteFile(cfg.Trace); err != nil {
				return nil, fmt.Errorf("bookleaf: %w", err)
			}
		}
	}
	if cfg.Metrics != "" {
		if err := writeMetricsFile(cfg.Metrics, *cfg, res, time.Since(pr.start).Seconds()); err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}
	return res, nil
}
