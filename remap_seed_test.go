package bookleaf_test

// Seed-fidelity fixture for the ALE remap: the parallelised remap
// pipeline must reproduce, bit for bit, the fields the original serial
// implementation produced. The fixture (testdata/remap_seed.json) was
// generated from the pre-parallel remap with -update and is the
// reference every thread count is compared against — regenerating it
// is only legitimate when the remap arithmetic is changed on purpose.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"bookleaf"
)

// remapSeedGrid is the acceptance sweep: both problems, both target
// modes, sparse and every-step remap cadence.
func remapSeedGrid() []bookleaf.Config {
	var grid []bookleaf.Config
	for _, pb := range []struct {
		problem string
		nx, ny  int
	}{{"noh", 12, 12}, {"sod", 32, 4}} {
		for _, mode := range []string{"eulerian", "smoothed"} {
			for _, freq := range []int{1, 5} {
				grid = append(grid, bookleaf.Config{
					Problem: pb.problem, NX: pb.nx, NY: pb.ny,
					MaxSteps: 20, ALE: mode, ALEFreq: freq,
				})
			}
		}
	}
	return grid
}

func remapSeedName(cfg bookleaf.Config) string {
	return fmt.Sprintf("%s-%s-freq%d", cfg.Problem, cfg.ALE, cfg.ALEFreq)
}

// fieldHash digests the run's final fields as raw IEEE-754 bits, so a
// single flipped bit anywhere in any field changes the hash.
func fieldHash(res *bookleaf.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(fields ...[]float64) {
		for _, f := range fields {
			for _, v := range f {
				bits := math.Float64bits(v)
				for i := 0; i < 8; i++ {
					buf[i] = byte(bits >> (8 * i))
				}
				h.Write(buf[:])
			}
		}
	}
	put(res.Rho, res.Ein, res.P, res.U, res.V, res.X, res.Y)
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestRemapSeedFixture pins the serial remap result (and the threaded
// remap at 2, 4 and 7 workers, which must match it bitwise) against the
// recorded seed hashes.
func TestRemapSeedFixture(t *testing.T) {
	path := filepath.Join("testdata", "remap_seed.json")
	got := map[string]string{}
	for _, cfg := range remapSeedGrid() {
		name := remapSeedName(cfg)
		base := run(t, cfg)
		got[name] = fieldHash(base)
		for _, threads := range []int{2, 4, 7} {
			tcfg := cfg
			tcfg.Threads = threads
			res := run(t, tcfg)
			if h := fieldHash(res); h != got[name] {
				t.Errorf("%s: threads=%d hash %s differs from threads=1 %s", name, threads, h, got[name])
			}
		}
	}
	if *update {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing seed fixture (run with -update to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	var names []string
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if got[n] == "" {
			t.Errorf("%s: in fixture but not in grid", n)
			continue
		}
		if got[n] != want[n] {
			t.Errorf("%s: hash %s, seed fixture %s (remap arithmetic drifted from the serial seed)", n, got[n], want[n])
		}
	}
	for n := range got {
		if _, ok := want[n]; !ok {
			t.Errorf("%s: not in fixture (rerun with -update)", n)
		}
	}
}
