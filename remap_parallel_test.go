package bookleaf

// Parallel ALE regression tests: overlap-vs-sync bitwise equivalence of
// the phased remap exchange schedule, rank-independence of the smoothed
// mode (the ghost-stencil fix), and lockstep recovery when a rollback
// replays across a remap step (the cadence fix).

import (
	"fmt"
	"math"
	"testing"
	"time"

	"bookleaf/internal/hydro"
)

// TestOverlapBitwiseDeterminismWithALE extends the overlapped-schedule
// acceptance test to runs with the remap active: the phased remap
// exchanges (node targets, reconstruction fields, post-remap
// velocities) deliver exactly the bytes the blocking schedule delivers,
// and the remap kernels run in the same order either way, so overlap-on
// must reproduce overlap-off bit for bit across modes and cadences.
func TestOverlapBitwiseDeterminismWithALE(t *testing.T) {
	for _, mode := range []string{"eulerian", "smoothed"} {
		for _, freq := range []int{1, 5} {
			t.Run(fmt.Sprintf("%s-freq%d", mode, freq), func(t *testing.T) {
				base := Config{
					Problem: "sod", NX: 32, NY: 4, MaxSteps: 20,
					ALE: mode, ALEFreq: freq, Ranks: 2,
				}
				ref, err := Run(base)
				if err != nil {
					t.Fatalf("overlap=off: %v", err)
				}
				on := base
				on.Overlap = true
				res, err := Run(on)
				if err != nil {
					t.Fatalf("overlap=on: %v", err)
				}
				if res.Steps != ref.Steps || res.Time != ref.Time {
					t.Fatalf("steps/time (%d, %v) differ from sync (%d, %v)",
						res.Steps, res.Time, ref.Steps, ref.Time)
				}
				for name, pair := range map[string][2][]float64{
					"rho": {res.Rho, ref.Rho}, "ein": {res.Ein, ref.Ein},
					"p": {res.P, ref.P},
					"u": {res.U, ref.U}, "v": {res.V, ref.V},
					"x": {res.X, ref.X}, "y": {res.Y, ref.Y},
				} {
					if i := firstDiff(pair[0], pair[1]); i >= 0 {
						t.Errorf("%s[%d] = %x, sync %x", name, i, pair[0][i], pair[1][i])
					}
				}
			})
		}
	}
}

// TestSmoothedALERankIndependent pins the ghost-stencil fix end to end:
// a smoothed-ALE Noh run must give the same answer at every rank count.
// Before the fix, partitioned runs smoothed frontier and ghost nodes
// with halo-truncated stencils, so the target mesh — and everything
// advected across it — depended on the decomposition. The smoothing
// itself is bitwise rank-independent (pinned at the kernel level by the
// ale package); the full-run comparison carries the same per-rank
// gather-order round-off as the Eulerian cross-check, hence the 1e-4
// field tolerance with conservation at round-off.
func TestSmoothedALERankIndependent(t *testing.T) {
	base := Config{Problem: "noh", NX: 12, NY: 12, MaxSteps: 20, ALE: "smoothed", ALEFreq: 2}
	ref, err := Run(base)
	if err != nil {
		t.Fatalf("serial smoothed run: %v", err)
	}
	for _, ranks := range []int{2, 4} {
		cfg := base
		cfg.Ranks = ranks
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for e := range ref.Rho {
			if d := math.Abs(res.Rho[e] - ref.Rho[e]); d > 1e-4 {
				t.Fatalf("ranks=%d: density mismatch at element %d: %v", ranks, e, d)
			}
		}
		for n := range ref.U {
			if d := math.Abs(res.U[n] - ref.U[n]); d > 1e-4 {
				t.Fatalf("ranks=%d: u mismatch at node %d: %v", ranks, n, d)
			}
			if d := math.Abs(res.V[n] - ref.V[n]); d > 1e-4 {
				t.Fatalf("ranks=%d: v mismatch at node %d: %v", ranks, n, d)
			}
		}
		if d := math.Abs(res.MassFinal - ref.MassFinal); d > 1e-12*ref.MassFinal {
			t.Fatalf("ranks=%d: mass differs by %v", ranks, d)
		}
	}
}

// TestRollbackAcrossRemapStepStaysLockstep is the cadence-fix
// regression: a single-rank failure inside a remap step must leave the
// exchange schedule symmetric — the failing rank answers its peers'
// remap exchanges with scratch values keyed on the pre-step count —
// and the collective rollback must then replay cleanly across the same
// remap step. The latched coordinate corruption tangles rank 1's mesh
// during step 10 (a remap step at ALEFreq 5), so rank 1 fails mid-step
// while rank 0 completes the step and remaps; the snapshot at step 8
// predates the corruption, so one rollback recovers the run.
func TestRollbackAcrossRemapStepStaysLockstep(t *testing.T) {
	for _, mode := range []string{"eulerian", "smoothed"} {
		t.Run(mode, func(t *testing.T) {
			injected := false // only touched by rank 1's goroutine
			res, err := runBoundedResult(t, Config{
				Problem: "sod", NX: 32, NY: 4, Ranks: 2, MaxSteps: 15,
				ALE: mode, ALEFreq: 5, RollbackEvery: 4,
				testFault: func(rank, step int, s *hydro.State) {
					// Fires after step 9 completes; the corrupted
					// coordinate survives the health sentinel (which
					// checks only the evolving fields) and tangles the
					// mesh inside step 10.
					if rank == 1 && step == 9 && !injected {
						injected = true
						s.X[5] -= 0.5
					}
				},
			})
			if err != nil {
				t.Fatalf("rollback across remap step did not recover: %v", err)
			}
			if res.Rollbacks != 1 {
				t.Fatalf("rollbacks = %d, want 1", res.Rollbacks)
			}
			if res.Steps != 15 {
				t.Fatalf("run stopped at step %d, want 15", res.Steps)
			}
		})
	}
}

// runBoundedResult is runBounded returning the Result too, for tests
// that assert on recovery bookkeeping as well as deadlock freedom.
func runBoundedResult(t *testing.T, cfg Config) (*Result, error) {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := Run(cfg)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked")
		return nil, nil
	}
}
