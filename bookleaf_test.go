package bookleaf_test

import (
	"math"
	"strings"
	"testing"

	"bookleaf"
	"bookleaf/internal/exact"
)

func run(t *testing.T, cfg bookleaf.Config) *bookleaf.Result {
	t.Helper()
	res, err := bookleaf.Run(cfg)
	if err != nil {
		t.Fatalf("run %+v: %v", cfg, err)
	}
	return res
}

func TestSodMatchesExactRiemann(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "sod", NX: 200, NY: 2})
	if math.Abs(res.Time-0.25) > 1e-9 {
		t.Fatalf("end time = %v, want 0.25", res.Time)
	}
	rp := exact.Sod(0.5)
	xs, rho := res.XProfile(res.Rho)
	l1 := bookleaf.L1Error(xs, rho, func(x float64) float64 {
		s, err := rp.Sample(x, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return s.Rho
	})
	if l1 > 0.03 {
		t.Fatalf("Sod density L1 error = %v, want < 0.03", l1)
	}
	// Shock position: steepest density drop near the exact location.
	xShock, err := rp.ShockPosition(0.25)
	if err != nil {
		t.Fatal(err)
	}
	best, bestDrop := 0.0, 0.0
	for i := 1; i < len(xs); i++ {
		// x > 0.8 keeps the search past the contact at x ≈ 0.73.
		if drop := rho[i-1] - rho[i]; drop > bestDrop && xs[i] > 0.8 {
			bestDrop, best = drop, xs[i]
		}
	}
	if math.Abs(best-xShock) > 0.03 {
		t.Fatalf("shock at %v, exact %v", best, xShock)
	}
	if drift := res.EnergyDrift(); drift > 1e-10 {
		t.Fatalf("energy drift %v", drift)
	}
	if math.Abs(res.MassFinal-res.Mass0) > 1e-12*res.Mass0 {
		t.Fatalf("mass drift: %v -> %v", res.Mass0, res.MassFinal)
	}
}

func TestNohPostShockState(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "noh", NX: 40, NY: 40})
	noh := exact.NewNoh()
	rs, rho := res.RadialProfile(res.Rho)
	// Post-shock plateau: median density for r in [0.05, 0.15] (away
	// from the wall-heated origin and the shock at 0.2). Staggered
	// schemes with bulk q under-resolve the plateau at 40x40 (the
	// value converges towards 16 with resolution; see EXPERIMENTS.md),
	// so the band is generous while still proving a 12x+ compression.
	var plateau []float64
	peak := 0.0
	for i, r := range rs {
		if r > 0.05 && r < 0.15 {
			plateau = append(plateau, rho[i])
		}
		if rho[i] > peak {
			peak = rho[i]
		}
	}
	if len(plateau) < 5 {
		t.Fatalf("too few plateau samples: %d", len(plateau))
	}
	med := median(plateau)
	if math.Abs(med-noh.PostShockDensity()) > 3.6 {
		t.Fatalf("post-shock density %v, exact %v", med, noh.PostShockDensity())
	}
	// The first cell at the origin over-compresses somewhat (the
	// mirror image of wall heating), so allow up to 21.
	if peak < 13 || peak > 21 {
		t.Fatalf("peak density %v outside [13, 21] (exact plateau 16)", peak)
	}
	// Ahead of the shock the density follows 1 + t/r.
	for i, r := range rs {
		if r > 0.35 && r < 0.8 {
			want, _, _, _ := noh.Sample(r, 0.6)
			if math.Abs(rho[i]-want) > 0.4 {
				t.Fatalf("pre-shock density at r=%v: %v, exact %v", r, rho[i], want)
			}
		}
	}
	if drift := res.EnergyDrift(); drift > 1e-9 {
		t.Fatalf("energy drift %v", drift)
	}
}

func TestSedovShockRadius(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "sedov", NX: 60, NY: 60})
	sed, err := exact.NewSedov(res.Gamma, 2, res.SedovEnergy, 1)
	if err != nil {
		t.Fatal(err)
	}
	rExact := sed.ShockRadius(res.Time)
	rs, rho := res.RadialProfile(res.Rho)
	// Location of peak density ~ shock front.
	peakR, peak := 0.0, 0.0
	for i, r := range rs {
		if rho[i] > peak {
			peak, peakR = rho[i], r
		}
	}
	if math.Abs(peakR-rExact) > 0.12*rExact {
		t.Fatalf("peak density at r=%v, exact shock at %v", peakR, rExact)
	}
	// Peak compression should approach (gamma+1)/(gamma-1) = 6 but is
	// smeared by q; accept a broad band that still proves a strong
	// shock formed.
	if peak < 2.5 || peak > 6.8 {
		t.Fatalf("peak density %v outside [2.5, 6.8]", peak)
	}
	// Centre should be strongly evacuated.
	if rho[0] > 1.0 {
		t.Fatalf("central density %v, want < 1", rho[0])
	}
	if drift := res.EnergyDrift(); drift > 1e-9 {
		t.Fatalf("energy drift %v", drift)
	}
}

func TestSaltzmannPiston(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "saltzmann", NX: 60, NY: 6, TEnd: 0.5})
	// Shock speed 4/3: at t=0.5 the shock is at x=2/3, piston at 0.5.
	xs, rho := res.XProfile(res.Rho)
	var behind []float64
	for i, x := range xs {
		if x > 0.52 && x < 0.62 {
			behind = append(behind, rho[i])
		}
	}
	if len(behind) == 0 {
		t.Fatal("no samples behind shock")
	}
	med := median(behind)
	if math.Abs(med-4) > 1.0 {
		t.Fatalf("post-shock density %v, exact 4", med)
	}
	// Ahead of the shock the gas is undisturbed.
	for i, x := range xs {
		if x > 0.8 {
			if math.Abs(rho[i]-1) > 0.1 {
				t.Fatalf("pre-shock density at x=%v: %v", x, rho[i])
			}
		}
	}
	// Piston work must be positive and the audit closed.
	if res.ExternalWork <= 0 {
		t.Fatalf("external work %v", res.ExternalWork)
	}
	if drift := res.EnergyDrift(); drift > 1e-9 {
		t.Fatalf("energy audit drift %v", drift)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	serial := run(t, bookleaf.Config{Problem: "sod", NX: 64, NY: 4, TEnd: 0.1})
	for _, ranks := range []int{2, 3, 4} {
		par := run(t, bookleaf.Config{Problem: "sod", NX: 64, NY: 4, TEnd: 0.1, Ranks: ranks})
		if par.Steps != serial.Steps {
			t.Fatalf("ranks=%d: steps %d != serial %d", ranks, par.Steps, serial.Steps)
		}
		var maxDiff float64
		for e := range serial.Rho {
			if d := math.Abs(par.Rho[e] - serial.Rho[e]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-9 {
			t.Fatalf("ranks=%d: max density difference vs serial %v", ranks, maxDiff)
		}
		for n := range serial.U {
			if d := math.Abs(par.U[n] - serial.U[n]); d > 1e-9 {
				t.Fatalf("ranks=%d: velocity mismatch at node %d: %v", ranks, n, d)
			}
		}
	}
}

func TestParallelMetisPartitionerMatchesSerial(t *testing.T) {
	serial := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, TEnd: 0.08})
	par := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, TEnd: 0.08, Ranks: 4, Partitioner: "metis"})
	for e := range serial.Rho {
		if d := math.Abs(par.Rho[e] - serial.Rho[e]); d > 1e-9 {
			t.Fatalf("metis parallel mismatch at element %d: %v", e, d)
		}
	}
}

func TestHybridThreadsMatchSerial(t *testing.T) {
	serial := run(t, bookleaf.Config{Problem: "noh", NX: 16, NY: 16, TEnd: 0.1})
	hybrid := run(t, bookleaf.Config{Problem: "noh", NX: 16, NY: 16, TEnd: 0.1, Threads: 4})
	for e := range serial.Rho {
		if serial.Rho[e] != hybrid.Rho[e] {
			t.Fatalf("threaded run differs at element %d", e)
		}
	}
}

func TestEulerianSodStaysOnMesh(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "sod", NX: 100, NY: 2, ALE: "eulerian"})
	// Nodes must sit exactly on the generated mesh after every remap.
	for n := range res.X {
		if res.X[n] != res.Mesh.X[n] || res.Y[n] != res.Mesh.Y[n] {
			t.Fatalf("node %d drifted off the Eulerian mesh", n)
		}
	}
	rp := exact.Sod(0.5)
	xs, rho := res.XProfile(res.Rho)
	l1 := bookleaf.L1Error(xs, rho, func(x float64) float64 {
		s, _ := rp.Sample(x, 0.25)
		return s.Rho
	})
	if l1 > 0.06 {
		t.Fatalf("Eulerian Sod L1 error = %v", l1)
	}
	if math.Abs(res.MassFinal-res.Mass0) > 1e-10*res.Mass0 {
		t.Fatalf("Eulerian mass drift %v -> %v", res.Mass0, res.MassFinal)
	}
}

func TestParallelEulerianMatchesSerialEulerian(t *testing.T) {
	serial := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, TEnd: 0.08, ALE: "eulerian"})
	par := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, TEnd: 0.08, ALE: "eulerian", Ranks: 3})
	for e := range serial.Rho {
		// Remap nodal sums accumulate in a different order per rank
		// and the limiters are discontinuous, so round-off differences
		// grow through the shock; require field agreement to 1e-4 and
		// conservation to round-off.
		if d := math.Abs(par.Rho[e] - serial.Rho[e]); d > 1e-4 {
			t.Fatalf("parallel Eulerian mismatch at element %d: %v", e, d)
		}
	}
	if d := math.Abs(par.MassFinal - serial.MassFinal); d > 1e-12*serial.MassFinal {
		t.Fatalf("parallel Eulerian mass differs: %v", d)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []bookleaf.Config{
		{Problem: "nope", NX: 4, NY: 4},
		{Problem: "sod", NX: 0, NY: 4},
		{Problem: "sod", NX: 4, NY: 4, ALE: "weird"},
		{Problem: "sod", NX: 4, NY: 4, Hourglass: "weird"},
		{Problem: "sod", NX: 4, NY: 4, Partitioner: "weird"},
		{Problem: "sod", NX: 4, NY: 4, Ranks: -1},
	}
	for _, cfg := range cases {
		if _, err := bookleaf.Run(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestMaxStepsRespected(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "sod", NX: 32, NY: 2, MaxSteps: 5})
	if res.Steps != 5 {
		t.Fatalf("steps = %d, want 5", res.Steps)
	}
}

func TestTimerBreakdownPresent(t *testing.T) {
	// The default fused schedule reports the merged kernels; the NoFuse
	// ablation reproduces the paper's Table II breakdown.
	res := run(t, bookleaf.Config{Problem: "noh", NX: 12, NY: 12, MaxSteps: 20})
	for _, k := range []string{"qforce", "lagupdate", "getacc", "getdt"} {
		if _, ok := res.Timers[k]; !ok {
			t.Fatalf("fused: missing timer %q (have %v)", k, keys(res.Timers))
		}
	}
	res = run(t, bookleaf.Config{Problem: "noh", NX: 12, NY: 12, MaxSteps: 20, NoFuse: true})
	for _, k := range []string{"getq", "getforce", "getacc", "getgeom", "getrho", "getein", "getpc", "getdt"} {
		if _, ok := res.Timers[k]; !ok {
			t.Fatalf("unfused: missing timer %q (have %v)", k, keys(res.Timers))
		}
	}
	// getq dominates the element kernels in this implementation, as in
	// the paper's breakdown (sanity only, not timing-precise).
	if res.Timers["getq"] <= res.Timers["getpc"] {
		t.Logf("warning: getq (%v) not above getpc (%v) on this host", res.Timers["getq"], res.Timers["getpc"])
	}
}

func TestHourglassOverride(t *testing.T) {
	for _, hg := range []string{"none", "filter", "subzonal"} {
		res := run(t, bookleaf.Config{Problem: "sod", NX: 16, NY: 2, MaxSteps: 3, Hourglass: hg})
		if res.Steps != 3 {
			t.Fatalf("hg=%s did not run", hg)
		}
	}
}

func median(v []float64) float64 {
	c := append([]float64(nil), v...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func keys(m map[string]float64) string {
	var parts []string
	for k := range m {
		parts = append(parts, k)
	}
	return strings.Join(parts, ",")
}
