package bookleaf_test

import (
	"testing"

	"bookleaf"
	"bookleaf/internal/config"
)

func TestConfigFromDeck(t *testing.T) {
	deck, err := config.ParseString(`
[control]
problem = noh
nx = 64
ny = 32
tend = 0.3
ranks = 4
threads = 2
partitioner = metis
[ale]
mode = eulerian
freq = 2
firstorder = true
[hydro]
hourglass = filter
scatteracc = yes
sedov_energy = 0.5
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := bookleaf.ConfigFromDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Problem != "noh" || cfg.NX != 64 || cfg.NY != 32 || cfg.TEnd != 0.3 {
		t.Fatalf("control section wrong: %+v", cfg)
	}
	if cfg.Ranks != 4 || cfg.Threads != 2 || cfg.Partitioner != "metis" {
		t.Fatalf("parallel section wrong: %+v", cfg)
	}
	if cfg.ALE != "eulerian" || cfg.ALEFreq != 2 || !cfg.FirstOrderRemap {
		t.Fatalf("ale section wrong: %+v", cfg)
	}
	if cfg.Hourglass != "filter" || !cfg.ScatterAcc || cfg.SedovEnergy != 0.5 {
		t.Fatalf("hydro section wrong: %+v", cfg)
	}
	if unused := deck.Unused(); len(unused) != 0 {
		t.Fatalf("unexpected unused keys: %v", unused)
	}
}

func TestConfigFromDeckDefaults(t *testing.T) {
	deck, err := config.ParseString("[control]\nproblem = sod\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := bookleaf.ConfigFromDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NX != 100 || cfg.NY != 10 || cfg.Ranks != 1 || cfg.ALE != "" {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestConfigFromDeckLagrangianAliases(t *testing.T) {
	for _, mode := range []string{"lagrangian", "off"} {
		deck, _ := config.ParseString("[control]\nproblem = sod\n[ale]\nmode = " + mode + "\n")
		cfg, err := bookleaf.ConfigFromDeck(deck)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ALE != "" {
			t.Fatalf("mode %q mapped to %q, want empty", mode, cfg.ALE)
		}
	}
}

func TestConfigFromDeckTypeErrors(t *testing.T) {
	deck, _ := config.ParseString("[control]\nproblem = sod\nnx = lots\n")
	if _, err := bookleaf.ConfigFromDeck(deck); err == nil {
		t.Fatal("bad nx accepted")
	}
}
