# BookLeaf-in-Go build and test entry points.
#
# tier1 is the correctness gate every change must keep green.
# tier2-fault runs the parallel / fault-injection / checkpoint matrix
# under the race detector — slower, but it is the tier that exercises
# the abort paths, rollback-retry and the collective checkpoint
# protocol with real goroutine interleavings.
# tier2-par races the threading substrate and the hydro kernels at
# several GOMAXPROCS settings, so the persistent worker pool's
# channel-based synchronisation is exercised under both starved and
# oversubscribed schedulers.
# tier2-overlap races the phased-exchange machinery: the typhon
# Start/Finish path and its fault matrix, the overlap-vs-sync bitwise
# determinism sweep, and the multi-rank zero-allocation pins — the
# suite that guards the communication/computation overlap feature.
# tier2-ale races the parallel remap: the ale package's kernel suite
# (CSR round-trip, smoothed rank-independence, zero-alloc pins at
# several pool sizes) plus the driver-level Threads x Ranks x Mode
# sweep — the seed-fidelity thread sweep, the overlap-vs-sync ALE
# bitwise check, the smoothed rank cross-check and the
# rollback-across-remap lockstep regression.
# tier2-supervise races the rank-supervision layer: the supervise
# package's ladder/backoff/imbalance unit suite plus the end-to-end
# fault-class x ranks {2,4,7} x overlap sweep — replacement from the
# in-memory Memento, transient epoch retry, ladder exhaustion with a
# final checkpoint, and online elastic repartitioning (grow, shrink
# and same-count re-decomposition of the moved mesh).
# tier2-fuse races the fused element passes: the fused-vs-unfused
# bitwise battery (Noh and Sod across the overlap × threads grid, the
# tile-width invariance sweep, the float32 ablation) plus the hydro
# zero-alloc and timer pins at a 4-thread scheduler — the suite that
# guards the default step path.
# tier2-order races the mesh-locality layer: the order package's
# permutation property suite (round-trip, first-touch node renumbering,
# Hilbert/RCM validity) plus the driver-level reorder battery — the
# reordered-vs-canonical tolerance sweep at ranks {1,2,4,7}, the
# bitwise thread-invariance grid per (reorder, layout) point, the
# AoS-vs-SoA bitwise parity checks, and checkpoint/resume and
# supervise-repartition under a renumbered mesh.
# tier2-serve races the serving layer end to end: the bleaf-served job
# API over httptest — submit→poll→result bitwise parity with a direct
# run, malformed-deck 400s, cancel slot reclamation, N concurrent jobs
# on a small warm-pool fleet with a whitebox no-pool-sharing probe,
# priority preemption with bitwise-identical resume (serial and
# ranks=2 decks), admission-control boundary arithmetic and the
# streaming metrics endpoint.
# tier2-durable races the durability layer: the restart-recovery
# matrix (crash mid-run after a periodic spill, crash with queued
# work, graceful-shutdown park — serial and ranks=2, all bitwise
# against uninterrupted runs), calibration and terminal-state
# persistence, journal-corruption recovery, per-client quota 429s and
# fair queue ordering.
# tier2-race runs the FULL tier-1 suite under the race detector at a
# starved and an oversubscribed scheduler — the whole-program
# complement to tier2-fault's targeted matrix, catching races in code
# the fault-injection name filter never reaches (obs counters, probe
# reductions, trace writers).
# bench records the perf trajectory to BENCH_step.json so future
# changes can be judged against it (see CHANGES.md for the cadence).
# bench-compare is the perf gate: it re-runs the step benchmarks and
# diffs them against the committed BENCH_step.json via
# bleaf-bench -compare, failing when a benchmark slows by more than
# THRESHOLD (fraction, default 0.10) or allocates more. The gate
# includes the step_ns_per_el headline — the best point of the
# BenchmarkStepGrid reorder × layout sweep — so a locality regression
# anywhere on the grid's frontier fails even if every named benchmark
# individually squeaks under the threshold.
# fuzz gives the deck-parser and HTTP-submission fuzz targets a short
# budget each; lengthen with FUZZTIME=5m for a real session.

GO ?= go
FUZZTIME ?= 30s
THRESHOLD ?= 0.10

.PHONY: all build vet tier1 tier2-fault tier2-par tier2-overlap tier2-ale tier2-supervise tier2-fuse tier2-order tier2-serve tier2-durable tier2-race test bench bench-all bench-compare fuzz clean

all: build

build:
	$(GO) build ./...

# Static gate: vet plus gofmt drift. Part of tier1 so a formatting or
# vet regression fails the same gate a broken test does.
vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
	  echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

tier1: build vet
	$(GO) test ./...

tier2-fault:
	$(GO) test -race ./... -run 'Parallel|Typhon|Fault|Rollback|Checkpoint|Resume|Abort|Injected|Truncated|Dropped|Delayed|Corrupted' -count=1

tier2-par:
	GOMAXPROCS=1 $(GO) test -race ./internal/par ./internal/hydro -count=1
	GOMAXPROCS=2 $(GO) test -race ./internal/par ./internal/hydro -count=1
	GOMAXPROCS=8 $(GO) test -race ./internal/par ./internal/hydro -count=1

tier2-overlap:
	$(GO) test -race ./internal/typhon -run 'Phased|HaloOrder|Exchange' -count=1
	$(GO) test -race . -run 'Overlap|ParallelStepZeroAllocs' -count=1

tier2-ale:
	$(GO) test -race ./internal/ale -count=1
	$(GO) test -race . -run 'RemapSeedFixture|OverlapBitwiseDeterminismWithALE|SmoothedALERankIndependent|RollbackAcrossRemapStep|ParallelFailureWithRemap' -count=1

tier2-supervise:
	$(GO) test -race ./internal/supervise -count=1
	$(GO) test -race . -run 'Supervise' -count=1

tier2-fuse:
	$(GO) test -race . -run 'Fuse|Float32Aux' -count=1
	GOMAXPROCS=4 $(GO) test -race ./internal/hydro -run 'StepZeroAllocs|Timers' -count=1

tier2-order:
	$(GO) test -race ./internal/order -count=1
	$(GO) test -race . -run 'Reorder|Layout' -count=1

tier2-serve:
	$(GO) test -race ./internal/serve -count=1

tier2-durable:
	$(GO) test -race ./internal/serve -run 'Durable|Quota|FairOrdering|BadClient|TerminalJobPins|WatchHostile|DoneStatus|CalibratorStateRestore' -count=1
	$(GO) test -race ./internal/machine -run 'Calibrator' -count=1

tier2-race:
	GOMAXPROCS=1 $(GO) test -race ./... -count=1
	GOMAXPROCS=8 $(GO) test -race ./... -count=1

test: tier1 tier2-fault tier2-par tier2-overlap tier2-ale tier2-supervise tier2-fuse tier2-order tier2-serve tier2-durable tier2-race

# Native fuzzing: the deck parser (seed corpus: decks/ plus the
# regression inputs under internal/config/testdata/fuzz), the
# bleaf-served HTTP submission path (AdmitOnly server, so the fuzzer
# explores the parse/predict/admit surface — headers included —
# without running hydro), and durable-journal replay (arbitrary bytes
# as the on-disk journal: recover what parses, never panic).
fuzz:
	$(GO) test -fuzz=FuzzParseDeck -fuzztime=$(FUZZTIME) ./internal/config
	$(GO) test -fuzz=FuzzSubmitDeck -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/serve

# The step-path benchmarks, 5 repetitions each, aggregated into
# BENCH_step.json (min ns/op, max allocs/op per name). -merge keeps
# entries from earlier bench runs that this recipe no longer re-runs,
# so the record only ever gains axes (e.g. the ranks × overlap grid of
# BenchmarkParallelStep).
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkLagrangianStep$$|BenchmarkRemap$$' -benchmem -count=5 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkStepGrid' -benchmem -benchtime=20x -count=7 -timeout 30m . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkParallelStep' -benchmem -count=5 -timeout 30m . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkStepThreads|BenchmarkStepFusion|BenchmarkQForceFusion|BenchmarkLagUpdateFusion|BenchmarkDtReduceFusion' -benchmem -count=5 -timeout 30m ./internal/hydro ; } \
	  | $(GO) run ./cmd/bleaf-bench -merge -o BENCH_step.json

bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

bench-compare:
	@tmp=$$(mktemp) && \
	  { $(GO) test -run '^$$' -bench 'BenchmarkStepGrid' -benchmem -benchtime=20x -count=5 -timeout 30m . ; \
	    $(GO) test -run '^$$' -bench 'BenchmarkStepThreads|BenchmarkStepFusion' -benchmem -count=3 ./internal/hydro ; } \
	    | $(GO) run ./cmd/bleaf-bench -o $$tmp >/dev/null && \
	  { $(GO) run ./cmd/bleaf-bench -compare -threshold $(THRESHOLD) BENCH_step.json $$tmp; \
	    status=$$?; rm -f $$tmp; exit $$status; }

clean:
	$(GO) clean ./...
