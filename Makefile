# BookLeaf-in-Go build and test entry points.
#
# tier1 is the correctness gate every change must keep green.
# tier2-fault runs the parallel / fault-injection / checkpoint matrix
# under the race detector — slower, but it is the tier that exercises
# the abort paths, rollback-retry and the collective checkpoint
# protocol with real goroutine interleavings.

GO ?= go

.PHONY: all build tier1 tier2-fault test bench clean

all: build

build:
	$(GO) build ./...

tier1: build
	$(GO) test ./...

tier2-fault:
	$(GO) test -race ./... -run 'Parallel|Typhon|Fault|Rollback|Checkpoint|Resume|Abort|Injected|Truncated|Dropped|Delayed|Corrupted' -count=1

test: tier1 tier2-fault

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
