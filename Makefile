# BookLeaf-in-Go build and test entry points.
#
# tier1 is the correctness gate every change must keep green.
# tier2-fault runs the parallel / fault-injection / checkpoint matrix
# under the race detector — slower, but it is the tier that exercises
# the abort paths, rollback-retry and the collective checkpoint
# protocol with real goroutine interleavings.
# tier2-par races the threading substrate and the hydro kernels at
# several GOMAXPROCS settings, so the persistent worker pool's
# channel-based synchronisation is exercised under both starved and
# oversubscribed schedulers.
# bench records the perf trajectory to BENCH_step.json so future
# changes can be judged against it (see CHANGES.md for the cadence).

GO ?= go

.PHONY: all build tier1 tier2-fault tier2-par test bench bench-all clean

all: build

build:
	$(GO) build ./...

tier1: build
	$(GO) test ./...

tier2-fault:
	$(GO) test -race ./... -run 'Parallel|Typhon|Fault|Rollback|Checkpoint|Resume|Abort|Injected|Truncated|Dropped|Delayed|Corrupted' -count=1

tier2-par:
	GOMAXPROCS=1 $(GO) test -race ./internal/par ./internal/hydro -count=1
	GOMAXPROCS=2 $(GO) test -race ./internal/par ./internal/hydro -count=1
	GOMAXPROCS=8 $(GO) test -race ./internal/par ./internal/hydro -count=1

test: tier1 tier2-fault tier2-par

# The three step-path benchmarks, 5 repetitions each, aggregated into
# BENCH_step.json (min ns/op, max allocs/op per name).
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkLagrangianStep$$|BenchmarkRemap$$' -benchmem -count=5 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkStepThreads' -benchmem -count=5 ./internal/hydro ; } \
	  | $(GO) run ./cmd/bleaf-bench -o BENCH_step.json

bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...
