package bookleaf

import (
	"fmt"
	"math"
	"testing"
)

// TestThreadCountBitwiseDeterminism is the acceptance test for the
// intra-rank threading substrate: the same problem run at any thread
// count must produce bitwise-identical physics. Three design choices
// make this hold — the balanced chunk split depends only on (n, t), the
// acceleration gather sums each node's corner ring in the fixed
// (element, corner) order of the reference scatter, and ReduceMin
// combines chunk partials in chunk order with a strict < (exact min,
// lowest-index ties). FloorEnergy is the one chunk-order-summed
// diagnostic, so it is compared with a tolerance instead (it never
// feeds back into the fields).
func TestThreadCountBitwiseDeterminism(t *testing.T) {
	cases := []Config{
		{Problem: "noh", NX: 20, NY: 20, MaxSteps: 25},
		{Problem: "sod", NX: 64, NY: 4, MaxSteps: 25},
	}
	for _, base := range cases {
		t.Run(base.Problem, func(t *testing.T) {
			var ref *Result
			for _, threads := range []int{1, 2, 4, 7} {
				cfg := base
				cfg.Threads = threads
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("threads=%d: %v", threads, err)
				}
				if threads == 1 {
					ref = res
					continue
				}
				if res.Steps != ref.Steps || res.Time != ref.Time {
					t.Fatalf("threads=%d: steps/time (%d, %v) differ from serial (%d, %v)",
						threads, res.Steps, res.Time, ref.Steps, ref.Time)
				}
				for name, pair := range map[string][2][]float64{
					"rho": {res.Rho, ref.Rho}, "ein": {res.Ein, ref.Ein},
					"p": {res.P, ref.P},
					"u": {res.U, ref.U}, "v": {res.V, ref.V},
					"x": {res.X, ref.X}, "y": {res.Y, ref.Y},
				} {
					if i := firstDiff(pair[0], pair[1]); i >= 0 {
						t.Errorf("threads=%d: %s[%d] = %x, serial %x",
							threads, name, i, pair[0][i], pair[1][i])
					}
				}
				if res.EFinal != ref.EFinal {
					t.Errorf("threads=%d: EFinal %x differs from serial %x", threads, res.EFinal, ref.EFinal)
				}
				if d := math.Abs(res.FloorEnergy - ref.FloorEnergy); d > 1e-12*math.Max(1, math.Abs(ref.FloorEnergy)) {
					t.Errorf("threads=%d: FloorEnergy %v vs serial %v", threads, res.FloorEnergy, ref.FloorEnergy)
				}
			}
		})
	}
}

// TestScatterAblationBitwiseMatchesGather checks that the paper-fidelity
// serial scatter and the default parallel gather are the same
// computation, not merely close.
func TestScatterAblationBitwiseMatchesGather(t *testing.T) {
	base := Config{Problem: "noh", NX: 16, NY: 16, MaxSteps: 20}
	gather, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.ScatterAcc = true
	scatter, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2][]float64{
		"rho": {gather.Rho, scatter.Rho}, "u": {gather.U, scatter.U}, "v": {gather.V, scatter.V},
	} {
		if i := firstDiff(pair[0], pair[1]); i >= 0 {
			t.Errorf("%s[%d]: gather %x vs scatter %x", name, i, pair[0][i], pair[1][i])
		}
	}
}

// firstDiff returns the first index where a and b are not bitwise
// equal (NaN-safe), or -1. A length mismatch reports index min(len).
func firstDiff(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// ExampleConfig_threads documents the hybrid configuration knobs.
func ExampleConfig_threads() {
	res, err := Run(Config{Problem: "sod", NX: 32, NY: 4, MaxSteps: 5, Ranks: 1, Threads: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Ranks, res.Threads, res.Steps)
	// Output: 1 4 5
}
