// Package eos implements BookLeaf's equations of state. The paper lists
// three EoS options — ideal gas, Tait and JWL — plus a void option; each
// closes Euler's equations by supplying pressure and squared sound speed
// as functions of density and specific internal energy.
//
// Conventions: density rho in mass/volume, specific internal energy e in
// energy/mass. Sound speed squared is the full thermodynamic derivative
//
//	c² = (∂P/∂ρ)|e + (P/ρ²)(∂P/∂e)|ρ
//
// evaluated analytically for every material. Pressures below the cutoff
// Pcut are clamped to zero and c² is floored at CCut² so degenerate
// states (voids, cold gas) cannot produce an unbounded timestep.
package eos

import (
	"fmt"
	"math"
)

// Material is one material's equation of state.
type Material interface {
	// Pressure returns P(rho, e).
	Pressure(rho, e float64) float64
	// SoundSpeed2 returns c²(rho, e), always > 0.
	SoundSpeed2(rho, e float64) float64
	// Name identifies the EoS form for reporting.
	Name() string
	// EnergyDependent reports whether the pressure depends on the
	// specific internal energy. Barotropic forms (Tait, void) return
	// false; for them a negative tracked energy is harmless elastic
	// bookkeeping and must not be floored by the hydro step.
	EnergyDependent() bool
}

// Cutoffs used by all materials; these mirror BookLeaf's pcut/ccut
// input-deck defaults.
const (
	// Pcut is the pressure cutoff: |P| below this is treated as zero.
	Pcut = 1e-8
	// CCut is the sound-speed floor.
	CCut = 1e-8
)

func clampPressure(p float64) float64 {
	if math.Abs(p) < Pcut {
		return 0
	}
	return p
}

func floorC2(c2 float64) float64 {
	if c2 < CCut*CCut || math.IsNaN(c2) {
		return CCut * CCut
	}
	return c2
}

// IdealGas is the gamma-law gas P = (gamma-1) rho e.
type IdealGas struct {
	Gamma float64
}

// NewIdealGas returns a gamma-law gas; gamma must exceed 1.
func NewIdealGas(gamma float64) (IdealGas, error) {
	if gamma <= 1 {
		return IdealGas{}, fmt.Errorf("eos: ideal gas gamma = %v, must be > 1", gamma)
	}
	return IdealGas{Gamma: gamma}, nil
}

func (g IdealGas) Name() string { return "ideal gas" }

// EnergyDependent reports that gamma-law pressure scales with energy.
func (g IdealGas) EnergyDependent() bool { return true }

func (g IdealGas) Pressure(rho, e float64) float64 {
	return clampPressure((g.Gamma - 1) * rho * e)
}

func (g IdealGas) SoundSpeed2(rho, e float64) float64 {
	// c² = gamma (gamma-1) e, equivalently gamma P / rho.
	return floorC2(g.Gamma * (g.Gamma - 1) * e)
}

// Tait is the stiffened barotropic Tait form used for nearly
// incompressible liquids:
//
//	P = B [ (rho/rho0)^N - 1 ]
//
// Pressure is independent of e, as in BookLeaf's Tait option.
type Tait struct {
	Rho0 float64 // reference density
	B    float64 // bulk modulus scale
	N    float64 // stiffness exponent (~7 for water)
}

// NewTait validates and returns a Tait material.
func NewTait(rho0, b, n float64) (Tait, error) {
	if rho0 <= 0 || b <= 0 || n <= 0 {
		return Tait{}, fmt.Errorf("eos: tait parameters rho0=%v B=%v N=%v must be positive", rho0, b, n)
	}
	return Tait{Rho0: rho0, B: b, N: n}, nil
}

func (t Tait) Name() string { return "tait" }

// EnergyDependent reports the barotropic nature of the Tait form.
func (t Tait) EnergyDependent() bool { return false }

func (t Tait) Pressure(rho, e float64) float64 {
	if rho <= 0 {
		return 0
	}
	return clampPressure(t.B * (math.Pow(rho/t.Rho0, t.N) - 1))
}

func (t Tait) SoundSpeed2(rho, e float64) float64 {
	if rho <= 0 {
		return floorC2(0)
	}
	// dP/drho = B N / rho0 * (rho/rho0)^(N-1)
	return floorC2(t.B * t.N / t.Rho0 * math.Pow(rho/t.Rho0, t.N-1))
}

// JWL is the Jones-Wilkins-Lee detonation-product EoS:
//
//	P = A (1 - w v0 / (R1 v)) exp(-R1 v / v0)
//	  + B (1 - w v0 / (R2 v)) exp(-R2 v / v0)
//	  + w rho e
//
// with v = 1/rho the specific volume and v0 = 1/rho0. The constants A,
// B (pressure units), R1, R2, w are the usual explosive fit parameters.
type JWL struct {
	A, B   float64
	R1, R2 float64
	W      float64 // Gruneisen-like omega
	Rho0   float64 // reference (unreacted) density
}

// NewJWL validates and returns a JWL material.
func NewJWL(a, b, r1, r2, w, rho0 float64) (JWL, error) {
	if rho0 <= 0 || r1 <= 0 || r2 <= 0 || w <= 0 {
		return JWL{}, fmt.Errorf("eos: jwl parameters R1=%v R2=%v w=%v rho0=%v must be positive", r1, r2, w, rho0)
	}
	return JWL{A: a, B: b, R1: r1, R2: r2, W: w, Rho0: rho0}, nil
}

// LX14 returns JWL constants for a representative plastic-bonded
// explosive (in CGS-derived code units scaled to unit reference
// density), handy for tests and examples.
func LX14() JWL {
	return JWL{A: 8.545, B: 0.205, R1: 4.6, R2: 1.35, W: 0.38, Rho0: 1.0}
}

func (j JWL) Name() string { return "jwl" }

// EnergyDependent reports the w*rho*e term of the JWL form.
func (j JWL) EnergyDependent() bool { return true }

func (j JWL) Pressure(rho, e float64) float64 {
	if rho <= 0 {
		return 0
	}
	x := j.Rho0 / rho // = v/v0
	p := j.A*(1-j.W/(j.R1*x))*math.Exp(-j.R1*x) +
		j.B*(1-j.W/(j.R2*x))*math.Exp(-j.R2*x) +
		j.W*rho*e
	return clampPressure(p)
}

func (j JWL) SoundSpeed2(rho, e float64) float64 {
	if rho <= 0 {
		return floorC2(0)
	}
	x := j.Rho0 / rho
	// dP/drho at constant e: with x = rho0/rho, dx/drho = -x/rho.
	// d/dx [A(1 - w/(R1 x)) exp(-R1 x)] =
	//   A exp(-R1 x) [ w/(R1 x²) - R1 (1 - w/(R1 x)) ]
	dPdx := j.A*math.Exp(-j.R1*x)*(j.W/(j.R1*x*x)-j.R1*(1-j.W/(j.R1*x))) +
		j.B*math.Exp(-j.R2*x)*(j.W/(j.R2*x*x)-j.R2*(1-j.W/(j.R2*x)))
	dPdrho := dPdx*(-x/rho) + j.W*e
	dPde := j.W * rho
	p := j.Pressure(rho, e)
	return floorC2(dPdrho + p/(rho*rho)*dPde)
}

// Void is the void "material": zero pressure, floor sound speed. Cells
// flagged void exert no force and never control the timestep.
type Void struct{}

func (Void) Name() string { return "void" }

// EnergyDependent reports that void pressure is identically zero.
func (Void) EnergyDependent() bool { return false }

func (Void) Pressure(rho, e float64) float64 { return 0 }

func (Void) SoundSpeed2(rho, e float64) float64 { return CCut * CCut }

// compile-time interface checks
var (
	_ Material = IdealGas{}
	_ Material = Tait{}
	_ Material = JWL{}
	_ Material = Void{}
)
