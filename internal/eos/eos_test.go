package eos

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestIdealGasPressure(t *testing.T) {
	g, err := NewIdealGas(1.4)
	if err != nil {
		t.Fatal(err)
	}
	// P = (gamma-1) rho e = 0.4 * 1 * 2.5 = 1
	if p := g.Pressure(1, 2.5); !almost(p, 1, 1e-14) {
		t.Fatalf("P = %v, want 1", p)
	}
}

func TestIdealGasSoundSpeedMatchesGammaPOverRho(t *testing.T) {
	g, _ := NewIdealGas(5.0 / 3.0)
	rho, e := 2.3, 1.7
	p := g.Pressure(rho, e)
	want := g.Gamma * p / rho
	if c2 := g.SoundSpeed2(rho, e); !almost(c2, want, 1e-12) {
		t.Fatalf("c2 = %v, want %v", c2, want)
	}
}

func TestIdealGasRejectsBadGamma(t *testing.T) {
	for _, gamma := range []float64{1.0, 0.9, -2} {
		if _, err := NewIdealGas(gamma); err == nil {
			t.Fatalf("gamma=%v accepted", gamma)
		}
	}
}

func TestIdealGasColdGasFloors(t *testing.T) {
	g, _ := NewIdealGas(1.4)
	if p := g.Pressure(1, 0); p != 0 {
		t.Fatalf("cold gas pressure = %v, want 0", p)
	}
	if c2 := g.SoundSpeed2(1, 0); c2 < CCut*CCut {
		t.Fatalf("cold gas c2 = %v below floor", c2)
	}
}

func TestPressureCutoff(t *testing.T) {
	g, _ := NewIdealGas(1.4)
	if p := g.Pressure(1, 1e-12); p != 0 {
		t.Fatalf("tiny pressure %v not clamped to zero", p)
	}
}

func TestTaitReferenceStateHasZeroPressure(t *testing.T) {
	w, err := NewTait(1.0, 3.31e3, 7.15)
	if err != nil {
		t.Fatal(err)
	}
	if p := w.Pressure(1.0, 123.0); p != 0 {
		t.Fatalf("P(rho0) = %v, want 0", p)
	}
}

func TestTaitCompressionAndTension(t *testing.T) {
	w, _ := NewTait(1.0, 3.31e3, 7.15)
	if p := w.Pressure(1.01, 0); p <= 0 {
		t.Fatalf("compressed Tait P = %v, want > 0", p)
	}
	if p := w.Pressure(0.99, 0); p >= 0 {
		t.Fatalf("expanded Tait P = %v, want < 0", p)
	}
}

func TestTaitSoundSpeedIsdPdRho(t *testing.T) {
	w, _ := NewTait(1.0, 3.31e3, 7.15)
	rho := 1.02
	h := 1e-7
	numeric := (w.Pressure(rho+h, 0) - w.Pressure(rho-h, 0)) / (2 * h)
	if c2 := w.SoundSpeed2(rho, 0); !almost(c2, numeric, 1e-5) {
		t.Fatalf("c2 = %v, finite-diff dP/drho = %v", c2, numeric)
	}
}

func TestTaitIndependentOfEnergy(t *testing.T) {
	w, _ := NewTait(1.0, 3.31e3, 7.15)
	if w.Pressure(1.1, 0) != w.Pressure(1.1, 99) {
		t.Fatal("Tait pressure depends on energy")
	}
}

func TestTaitRejectsBadParams(t *testing.T) {
	if _, err := NewTait(0, 1, 7); err == nil {
		t.Fatal("rho0=0 accepted")
	}
	if _, err := NewTait(1, -1, 7); err == nil {
		t.Fatal("B<0 accepted")
	}
	if _, err := NewTait(1, 1, 0); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestJWLReducesToOmegaGasAtLowDensity(t *testing.T) {
	j := LX14()
	// As rho -> small, the exponential terms vanish and P -> w rho e.
	rho, e := 0.01, 5.0
	want := j.W * rho * e
	if p := j.Pressure(rho, e); !almost(p, want, 1e-3) {
		t.Fatalf("dilute JWL P = %v, want ~%v", p, want)
	}
}

func TestJWLSoundSpeedMatchesFiniteDifference(t *testing.T) {
	j := LX14()
	rho, e := 1.2, 4.0
	h := 1e-6
	dPdrho := (j.Pressure(rho+h, e) - j.Pressure(rho-h, e)) / (2 * h)
	dPde := (j.Pressure(rho, e+h) - j.Pressure(rho, e-h)) / (2 * h)
	want := dPdrho + j.Pressure(rho, e)/(rho*rho)*dPde
	if c2 := j.SoundSpeed2(rho, e); !almost(c2, want, 1e-4) {
		t.Fatalf("c2 = %v, thermodynamic identity gives %v", c2, want)
	}
}

func TestJWLPositiveSoundSpeedOverRange(t *testing.T) {
	j := LX14()
	for _, rho := range []float64{0.1, 0.5, 1.0, 1.5, 2.0} {
		for _, e := range []float64{0, 1, 5, 10} {
			if c2 := j.SoundSpeed2(rho, e); c2 <= 0 || math.IsNaN(c2) {
				t.Fatalf("c2(%v,%v) = %v", rho, e, c2)
			}
		}
	}
}

func TestJWLRejectsBadParams(t *testing.T) {
	if _, err := NewJWL(1, 1, 0, 1, 0.3, 1); err == nil {
		t.Fatal("R1=0 accepted")
	}
	if _, err := NewJWL(1, 1, 4, 1, 0.3, -1); err == nil {
		t.Fatal("rho0<0 accepted")
	}
}

func TestVoid(t *testing.T) {
	v := Void{}
	if p := v.Pressure(3, 9); p != 0 {
		t.Fatalf("void P = %v", p)
	}
	if c2 := v.SoundSpeed2(3, 9); c2 != CCut*CCut {
		t.Fatalf("void c2 = %v, want floor", c2)
	}
}

func TestZeroDensityIsSafeEverywhere(t *testing.T) {
	mats := []Material{mustIdeal(1.4), mustTait(), LX14(), Void{}}
	for _, m := range mats {
		if p := m.Pressure(0, 1); math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("%s: P(0,1) = %v", m.Name(), p)
		}
		if c2 := m.SoundSpeed2(0, 1); c2 <= 0 || math.IsNaN(c2) {
			t.Fatalf("%s: c2(0,1) = %v", m.Name(), c2)
		}
	}
}

func TestPropertySoundSpeedAlwaysPositiveFinite(t *testing.T) {
	mats := []Material{mustIdeal(1.4), mustIdeal(5.0 / 3.0), mustTait(), LX14(), Void{}}
	f := func(rhoRaw, eRaw float64) bool {
		rho := math.Abs(math.Mod(rhoRaw, 100))
		e := math.Abs(math.Mod(eRaw, 100))
		for _, m := range mats {
			c2 := m.SoundSpeed2(rho, e)
			if c2 <= 0 || math.IsNaN(c2) || math.IsInf(c2, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIdealGasPressureLinearInEnergy(t *testing.T) {
	g := mustIdeal(1.4)
	f := func(eRaw float64) bool {
		e := 1 + math.Abs(math.Mod(eRaw, 50))
		return almost(g.Pressure(2, 2*e), 2*g.Pressure(2, e), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Material{
		"ideal gas": mustIdeal(1.4),
		"tait":      mustTait(),
		"jwl":       LX14(),
		"void":      Void{},
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Fatalf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func mustIdeal(g float64) IdealGas {
	m, err := NewIdealGas(g)
	if err != nil {
		panic(err)
	}
	return m
}

func mustTait() Tait {
	m, err := NewTait(1.0, 3.31e3, 7.15)
	if err != nil {
		panic(err)
	}
	return m
}
