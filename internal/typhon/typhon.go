// Package typhon is a from-scratch, in-process reimplementation of the
// role Typhon plays in BookLeaf: a distributed communication library for
// unstructured-mesh applications, layered on a message-passing backend.
// The paper's Typhon runs on MPI; here ranks are goroutines and
// point-to-point transfers are typed channels, preserving the
// communication structure the paper studies — halo exchanges of
// registered quantities at fixed phase points and a single global
// reduction per timestep for dt — while substituting the transport.
//
// Semantics mirror MPI closely enough for the hydro driver:
//
//   - Send copies the payload before enqueueing (no aliasing between
//     ranks), Recv blocks until a matching message arrives; messages
//     between a rank pair are delivered in order.
//   - AllReduceMin/Sum/MinLoc and Barrier are collectives over all
//     ranks; every rank must call them in the same order.
//
// Fault tolerance: the communicator carries an abort "poison" path
// (Comm.Abort). Once poisoned — by an explicit Abort, a recovered rank
// panic, a malformed message, or a receive timeout — every blocked or
// subsequent communication call returns an error matching ErrAborted
// instead of deadlocking, so one dead rank brings the others down
// cleanly. A FaultPlan (fault.go) injects message-level faults for
// resilience testing: dropped, truncated, corrupted or delayed
// messages, and rank panics mid-exchange.
//
// Deadlock note: channels are buffered, so the halo-exchange pattern
// "send to all neighbours, then receive from all neighbours" cannot
// deadlock regardless of rank scheduling.
package typhon

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"bookleaf/internal/obs"
)

// Comm is a communicator over a fixed number of ranks.
type Comm struct {
	n     int
	chans [][]chan []float64 // chans[src][dst]
	// ret[src][dst] carries spent pack buffers back from the receiver
	// (dst) to the sender (src) for reuse, so steady-state halo
	// exchanges allocate nothing. The channel hand-off doubles as the
	// happens-before edge: a sender only repacks a buffer the receiver
	// has explicitly finished unpacking.
	ret [][]chan []float64

	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     int
	redVals []float64
	redLocs []int

	// Abort machinery: abortCh is closed (and abort set, under mu) by
	// the first Abort call; blocked operations select on it.
	abortOnce sync.Once
	abortCh   chan struct{}
	abort     *AbortError

	// Injected fault plan and the receive deadline (fault.go).
	plan        *FaultPlan
	recvTimeout time.Duration

	// Per-rank traffic counters (each written only by its own rank's
	// goroutine; read after Run returns).
	sentMsgs  []int64
	sentWords []int64

	// Optional per-rank obs instruments (AttachObs), pre-resolved so
	// the send path pays a nil check and two integer adds, never a map
	// lookup. Each slot is touched only by its own rank's goroutine.
	obsMsgs  []*obs.Counter
	obsWords []*obs.Counter
	obsSizes []*obs.Histogram
}

// AttachObs publishes per-rank traffic metrics into the given
// registries (one per rank; nil entries disable that rank): counters
// comm_msgs_total and comm_words_total, and the halo_msg_words message
// size histogram. The counters always agree with Stats() — both are
// incremented at the same place in send — which the cross-validation
// tests assert. Call before Run.
func (c *Comm) AttachObs(regs []*obs.Registry) {
	if len(regs) != c.n {
		panic(fmt.Sprintf("typhon: AttachObs got %d registries for %d ranks", len(regs), c.n))
	}
	c.obsMsgs = make([]*obs.Counter, c.n)
	c.obsWords = make([]*obs.Counter, c.n)
	c.obsSizes = make([]*obs.Histogram, c.n)
	for i, reg := range regs {
		c.obsMsgs[i] = reg.Counter("comm_msgs_total")
		c.obsWords[i] = reg.Counter("comm_words_total")
		c.obsSizes[i] = reg.Histogram("halo_msg_words")
	}
}

// NewComm creates a communicator with n ranks.
func NewComm(n int) (*Comm, error) {
	if n < 1 {
		return nil, fmt.Errorf("typhon: communicator needs >= 1 rank, got %d", n)
	}
	c := &Comm{
		n: n, redVals: make([]float64, n), redLocs: make([]int, n),
		sentMsgs: make([]int64, n), sentWords: make([]int64, n),
		abortCh: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.chans = make([][]chan []float64, n)
	c.ret = make([][]chan []float64, n)
	for s := 0; s < n; s++ {
		c.chans[s] = make([]chan []float64, n)
		c.ret[s] = make([]chan []float64, n)
		for d := 0; d < n; d++ {
			if d != s {
				// Buffer depth 8: enough outstanding messages for
				// several overlapping exchange phases per pair.
				c.chans[s][d] = make(chan []float64, 8)
				c.ret[s][d] = make(chan []float64, 8)
			}
		}
	}
	return c, nil
}

// takeBuf draws a recycled buffer of length n for the src→dst route, or
// allocates one when the pool is empty or the drawn buffer is too
// small. Non-blocking, so an empty pool can never deadlock a send.
func (c *Comm) takeBuf(src, dst, n int) []float64 {
	select {
	case buf := <-c.ret[src][dst]:
		if cap(buf) >= n {
			return buf[:n]
		}
	default:
	}
	return make([]float64, n)
}

// giveBuf returns an unpacked buffer to its sender's pool. Non-blocking:
// a full pool drops the buffer to the garbage collector.
func (c *Comm) giveBuf(src, dst int, buf []float64) {
	select {
	case c.ret[src][dst] <- buf:
	default:
	}
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.n }

// Run spawns one goroutine per rank executing body and waits for all of
// them. A panicking rank is recovered, aborts the communicator (so
// peers blocked in Recv/Barrier unwind with ErrAborted instead of
// deadlocking), and is reported as a *RankPanicError in Run's return
// value. Run returns the first rank's panic error, or nil.
func (c *Comm) Run(body func(r *Rank)) error {
	var wg sync.WaitGroup
	wg.Add(c.n)
	panics := make([]error, c.n)
	for id := 0; id < c.n; id++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					err := &RankPanicError{Rank: id, Value: p}
					panics[id] = err
					c.Abort(id, err)
				}
			}()
			body(&Rank{comm: c, id: id})
		}(id)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			return p
		}
	}
	return nil
}

// Rank is one process's handle on the communicator.
type Rank struct {
	comm *Comm
	id   int
	// exchCache memoises one PendingExchange per (halo, stride,
	// field-count) pattern so the blocking Exchange rides the phased,
	// buffer-recycling path without per-call registration.
	exchCache map[exchKey]*PendingExchange
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.n }

// send counts, applies any armed fault, and enqueues an owned buffer.
func (r *Rank) send(dst int, buf []float64) error {
	c := r.comm
	c.sentMsgs[r.id]++
	c.sentWords[r.id] += int64(len(buf))
	if c.obsMsgs != nil {
		c.obsMsgs[r.id].Inc()
		c.obsWords[r.id].Add(int64(len(buf)))
		c.obsSizes[r.id].Observe(float64(len(buf)))
	}
	if f := c.faultFor(r.id, c.sentMsgs[r.id]); f != nil {
		switch f.Kind {
		case FaultPanic:
			panic(fmt.Sprintf("typhon: injected fault: rank %d panics sending message %d", r.id, c.sentMsgs[r.id]))
		case FaultDrop:
			return nil // counted, never delivered
		case FaultTruncate:
			if len(buf) > 0 {
				buf = buf[:len(buf)-1]
			}
		case FaultCorrupt:
			if len(buf) > 0 {
				buf[0] = math.NaN()
			}
		case FaultDelay:
			time.Sleep(f.Delay)
		}
	}
	select {
	case c.chans[r.id][dst] <- buf:
		return nil
	case <-c.abortCh:
		return c.abortErr()
	}
}

// Send copies data and enqueues it for dst. It returns an error
// matching ErrAborted if the communicator has been poisoned. Sending to
// self panics — local data never travels through the halo machinery.
func (r *Rank) Send(dst int, data []float64) error {
	if dst == r.id {
		panic("typhon: send to self")
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	return r.send(dst, buf)
}

// Recv blocks until the next message from src arrives and returns it.
// It unblocks with an error matching ErrAborted when the communicator
// is poisoned, and with a *TimeoutError (also aborting the
// communicator) when a receive timeout is configured and expires.
func (r *Rank) Recv(src int) ([]float64, error) {
	if src == r.id {
		panic("typhon: recv from self")
	}
	c := r.comm
	ch := c.chans[src][r.id]
	var deadline <-chan time.Time
	if c.recvTimeout > 0 {
		t := time.NewTimer(c.recvTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case buf := <-ch:
		return buf, nil
	case <-c.abortCh:
		return nil, c.abortErr()
	case <-deadline:
		err := &TimeoutError{Rank: r.id, From: src, After: c.recvTimeout}
		c.Abort(r.id, err)
		return nil, err
	}
}

// barrier blocks until all ranks arrive. The mutex hand-off makes all
// writes before the barrier visible to all ranks after it. An abort
// releases every waiter with the abort error.
func (c *Comm) barrier() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.abort != nil {
		return c.abort
	}
	c.count++
	if c.count == c.n {
		c.count = 0
		c.gen++
		c.cond.Broadcast()
		return nil
	}
	g := c.gen
	for c.gen == g && c.abort == nil {
		c.cond.Wait()
	}
	if c.gen == g && c.abort != nil {
		// The barrier never completed; we were released by the abort.
		return c.abort
	}
	return nil
}

// Barrier blocks until every rank has called it, or returns an error
// matching ErrAborted if the communicator is poisoned.
func (r *Rank) Barrier() error { return r.comm.barrier() }

// AllReduceMin returns the global minimum of v across ranks.
func (r *Rank) AllReduceMin(v float64) (float64, error) {
	m, _, err := r.AllReduceMinLoc(v, r.id)
	return m, err
}

// AllReduceMinLoc returns the global minimum and the loc tag supplied
// by the rank holding it (ties resolve to the lowest rank), mirroring
// MPI_MINLOC — BookLeaf uses it to report the timestep-controlling
// element. On abort it returns the inputs unchanged and the abort
// error.
func (r *Rank) AllReduceMinLoc(v float64, loc int) (float64, int, error) {
	c := r.comm
	c.redVals[r.id] = v
	c.redLocs[r.id] = loc
	if err := c.barrier(); err != nil {
		return v, loc, err
	}
	min, ml := c.redVals[0], c.redLocs[0]
	for i := 1; i < c.n; i++ {
		if c.redVals[i] < min {
			min, ml = c.redVals[i], c.redLocs[i]
		}
	}
	// Second barrier so no rank overwrites redVals for a subsequent
	// reduction while others still read.
	if err := c.barrier(); err != nil {
		return v, loc, err
	}
	return min, ml, nil
}

// AllReduceSum returns the sum of v across ranks. The combination order
// is rank order on every rank, so all ranks get bit-identical results.
func (r *Rank) AllReduceSum(v float64) (float64, error) {
	c := r.comm
	c.redVals[r.id] = v
	if err := c.barrier(); err != nil {
		return v, err
	}
	var s float64
	for i := 0; i < c.n; i++ {
		s += c.redVals[i]
	}
	if err := c.barrier(); err != nil {
		return v, err
	}
	return s, nil
}

// Stats returns the total messages and float64 words sent across all
// ranks since the communicator was created — the comm-volume metrics a
// halo-exchange study reports.
func (c *Comm) Stats() (msgs, words int64) {
	for i := 0; i < c.n; i++ {
		msgs += c.sentMsgs[i]
		words += c.sentWords[i]
	}
	return msgs, words
}

// Halo describes one registered exchange pattern: for each neighbour
// rank, which local indices to send and which local (ghost) indices to
// fill on receive. Matching Send/Recv lists on the two ends must have
// equal lengths and consistent entity order; partition.Split builds
// them that way.
type Halo struct {
	SendTo   map[int][]int
	RecvFrom map[int][]int
	// neighbours in deterministic order
	sendOrder []int
	recvOrder []int
}

// NewHalo builds a Halo from send/recv index lists keyed by rank.
func NewHalo(sendTo, recvFrom map[int][]int) *Halo {
	h := &Halo{SendTo: sendTo, RecvFrom: recvFrom}
	for dst := range sendTo {
		h.sendOrder = append(h.sendOrder, dst)
	}
	for src := range recvFrom {
		h.recvOrder = append(h.recvOrder, src)
	}
	sort.Ints(h.sendOrder)
	sort.Ints(h.recvOrder)
	return h
}

// exchKey identifies one registered exchange pattern.
type exchKey struct {
	h       *Halo
	stride  int
	nfields int
}

// PendingExchange is a registered, phased halo-exchange pattern: one
// Halo, stride and field count, owned by one rank. Start packs the
// send-list entries into recycled per-neighbour buffers and posts them;
// Finish drains the matching receives and unpacks ghosts. Between the
// two calls the owner may compute on any data disjoint from the ghost
// entries being filled — the communication/computation overlap the real
// Typhon's phased API exists for. A pattern is registered once
// (NewExchange) and reused every step; after a few warm-up exchanges
// the recycled buffers saturate and the steady state allocates nothing.
//
// A PendingExchange is owned by its rank's goroutine and supports one
// exchange in flight at a time.
type PendingExchange struct {
	r        *Rank
	h        *Halo
	stride   int
	nfields  int
	fields   [][]float64 // armed by Start for Finish's unpack
	inFlight bool
}

// NewExchange registers a phased exchange pattern for this rank: h's
// send/recv lists at the given stride, carrying nfields fields per
// message. stride must be >= 1.
func (r *Rank) NewExchange(h *Halo, stride, nfields int) *PendingExchange {
	if stride < 1 {
		panic("typhon: stride must be >= 1")
	}
	if nfields < 0 {
		panic("typhon: negative field count")
	}
	return &PendingExchange{
		r: r, h: h, stride: stride, nfields: nfields,
		fields: make([][]float64, 0, nfields),
	}
}

// Start packs and posts this pattern's sends. The fields must match the
// registered count and stay unchanged in their send- and recv-list
// entries until Finish returns. Faults armed by InjectFaults apply at
// the send site exactly as on the blocking path. On error the exchange
// is cancelled (the communicator is poisoned by then).
func (p *PendingExchange) Start(fields ...[]float64) error {
	if len(fields) != p.nfields {
		panic(fmt.Sprintf("typhon: StartExchange got %d fields, pattern registered %d", len(fields), p.nfields))
	}
	if p.inFlight {
		panic("typhon: StartExchange while a previous exchange is still pending")
	}
	p.inFlight = true
	p.fields = append(p.fields[:0], fields...)
	r, c := p.r, p.r.comm
	for _, dst := range p.h.sendOrder {
		idx := p.h.SendTo[dst]
		buf := c.takeBuf(r.id, dst, len(idx)*p.stride*p.nfields)
		pos := 0
		for _, f := range p.fields {
			for _, i := range idx {
				pos += copy(buf[pos:], f[i*p.stride:(i+1)*p.stride])
			}
		}
		if err := r.send(dst, buf); err != nil {
			p.inFlight = false
			return err
		}
	}
	return nil
}

// Finish drains this pattern's receives and unpacks them into the
// fields given to Start, then returns the spent buffers to their
// senders for reuse. A short or oversized message aborts the
// communicator and surfaces as a *SizeMismatchError — even when the
// fault was injected while the owner was computing between Start and
// Finish. Receive timeouts and aborts unblock with the same errors as
// the blocking path.
func (p *PendingExchange) Finish() error {
	if !p.inFlight {
		panic("typhon: FinishExchange without a matching StartExchange")
	}
	p.inFlight = false
	r, c := p.r, p.r.comm
	for _, src := range p.h.recvOrder {
		idx := p.h.RecvFrom[src]
		buf, err := r.Recv(src)
		if err != nil {
			return err
		}
		want := len(idx) * p.stride * p.nfields
		if len(buf) != want {
			err := &SizeMismatchError{From: src, To: r.id, Got: len(buf), Want: want}
			c.Abort(r.id, err)
			return err
		}
		pos := 0
		for _, f := range p.fields {
			for _, i := range idx {
				copy(f[i*p.stride:(i+1)*p.stride], buf[pos:pos+p.stride])
				pos += p.stride
			}
		}
		c.giveBuf(src, r.id, buf)
	}
	return nil
}

// Exchange refreshes ghost entries of the given fields: for each
// neighbour the send-list entries of every field are packed into one
// message; received messages are unpacked into the recv-list entries.
// stride is the number of consecutive array slots per entity (1 for
// nodal/element scalars, 8 for per-corner force pairs, etc.).
//
// Exchange is the blocking form: a thin Start+Finish over a
// PendingExchange memoised per (halo, stride, field-count) pattern, so
// repeated exchanges recycle their pack buffers exactly like the phased
// path and allocate nothing in the steady state.
//
// A received message whose size does not match the registered pattern
// is a data fault, not a programming error: Exchange aborts the
// communicator and returns a *SizeMismatchError, so a single malformed
// message fails the whole run cleanly instead of crashing the process.
func (r *Rank) Exchange(h *Halo, stride int, fields ...[]float64) error {
	if stride < 1 {
		panic("typhon: stride must be >= 1")
	}
	k := exchKey{h: h, stride: stride, nfields: len(fields)}
	p := r.exchCache[k]
	if p == nil {
		if r.exchCache == nil {
			r.exchCache = make(map[exchKey]*PendingExchange)
		}
		p = r.NewExchange(h, stride, len(fields))
		r.exchCache[k] = p
	}
	if err := p.Start(fields...); err != nil {
		return err
	}
	return p.Finish()
}
