package typhon

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrAborted is the sentinel matched (via errors.Is) by every error the
// communicator returns once it has been poisoned by Abort: blocked
// Recv, Barrier and AllReduce calls unblock and return an error
// wrapping this sentinel instead of deadlocking, which is how a dead
// rank brings its peers down cleanly.
var ErrAborted = errors.New("typhon: communicator aborted")

// AbortError is the error surfaced to ranks observing an abort raised
// elsewhere. It matches ErrAborted and unwraps to the root cause.
type AbortError struct {
	Rank  int   // rank that poisoned the communicator
	Cause error // root cause supplied to Abort
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("typhon: aborted by rank %d: %v", e.Rank, e.Cause)
}

func (e *AbortError) Unwrap() error { return e.Cause }

func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// RankPanicError wraps a panic recovered from a rank goroutine. The
// panic aborts the communicator, so it matches ErrAborted.
type RankPanicError struct {
	Rank  int
	Value any
}

func (e *RankPanicError) Error() string {
	return fmt.Sprintf("typhon: rank %d panicked: %v", e.Rank, e.Value)
}

func (e *RankPanicError) Is(target error) bool { return target == ErrAborted }

// Transient reports false: the panicked goroutine is gone, so retrying
// the same incarnation can only replay the crash. A supervisor must
// replace the rank instead.
func (e *RankPanicError) Transient() bool { return false }

// SizeMismatchError reports a halo message whose length does not match
// the registered exchange pattern — a corrupted or truncated transfer.
// The receiving rank aborts the communicator when it detects one.
type SizeMismatchError struct {
	From, To  int
	Got, Want int
}

func (e *SizeMismatchError) Error() string {
	return fmt.Sprintf("typhon: exchange size mismatch from rank %d to rank %d: got %d words, want %d",
		e.From, e.To, e.Got, e.Want)
}

// Transient reports true: a single malformed message may be a one-off
// corruption worth one retry. A supervisor escalates repeats from the
// same sender to rank-persistent via its per-rank fault history.
func (e *SizeMismatchError) Transient() bool { return true }

// TimeoutError reports a Recv that waited longer than the configured
// receive timeout — the in-process analogue of MPI fault detection by
// heartbeat. The timing-out rank aborts the communicator.
type TimeoutError struct {
	Rank, From int
	After      time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("typhon: rank %d timed out after %v waiting for a message from rank %d",
		e.Rank, e.After, e.From)
}

// Transient reports true: a timeout may be a one-off stall (a dropped
// message, a descheduled sender). Repeats from the same sender escalate
// through the supervisor's per-rank fault history.
func (e *TimeoutError) Transient() bool { return true }

// FaultKind enumerates injectable message faults.
type FaultKind int

const (
	// FaultDrop silently discards the message (the receiver needs a
	// receive timeout to detect it).
	FaultDrop FaultKind = iota + 1
	// FaultTruncate delivers the message one word short, tripping the
	// receiver's size check.
	FaultTruncate
	// FaultCorrupt replaces the first word of the payload with NaN.
	FaultCorrupt
	// FaultDelay delays delivery by Delay.
	FaultDelay
	// FaultPanic panics the sending rank mid-exchange.
	FaultPanic
)

// Fault schedules one injected fault: it fires when rank Rank sends its
// Msg-th message (1-based, counted across Send and Exchange).
type Fault struct {
	Rank  int
	Msg   int64
	Kind  FaultKind
	Delay time.Duration
	// Once makes the fault fire at most once across every communicator
	// armed with the same FaultPlan. Per-rank message counters reset
	// with each communicator, so without Once a fault re-fires in every
	// supervision epoch that replays the matching send — the model of a
	// *persistent* rank fault. Once models a transient one.
	Once bool
}

// FaultPlan is a set of scheduled message faults. A plan may be armed
// on several communicators in turn (the supervisor rebuilds the
// communicator per recovery epoch); the Once bookkeeping is shared
// across all of them and is safe for concurrent ranks.
type FaultPlan struct {
	Faults []Fault

	mu    sync.Mutex
	fired map[int]bool
}

// match returns the armed fault matching the n-th message of rank, or
// nil, consuming one-shot faults as it goes.
func (p *FaultPlan) match(rank int, n int64) *Fault {
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Rank != rank || f.Msg != n {
			continue
		}
		if f.Once {
			p.mu.Lock()
			done := p.fired[i]
			if !done {
				if p.fired == nil {
					p.fired = make(map[int]bool)
				}
				p.fired[i] = true
			}
			p.mu.Unlock()
			if done {
				continue
			}
		}
		return f
	}
	return nil
}

// InjectFaults arms a fault plan. Call before Run; a nil plan clears it.
// The plan is held by reference: arming the same plan on successive
// communicators shares its one-shot state.
func (c *Comm) InjectFaults(p *FaultPlan) { c.plan = p }

// SetRecvTimeout bounds every Recv wait; zero (the default) waits
// forever. A timed-out Recv aborts the communicator so all ranks
// unwind. Call before Run.
func (c *Comm) SetRecvTimeout(d time.Duration) { c.recvTimeout = d }

// faultFor returns the armed fault matching the n-th message of rank,
// or nil. Within one communicator each fault fires at most once because
// the per-rank message counter only ever increases; across
// communicators sharing a plan, Once-faults fire at most once in total.
func (c *Comm) faultFor(rank int, n int64) *Fault {
	if c.plan == nil {
		return nil
	}
	return c.plan.match(rank, n)
}

// Abort poisons the communicator on behalf of rank: every blocked or
// future Recv, Barrier, AllReduce and Exchange returns an error
// matching ErrAborted. The first cause wins; later calls are no-ops.
func (c *Comm) Abort(rank int, cause error) {
	c.abortOnce.Do(func() {
		c.mu.Lock()
		c.abort = &AbortError{Rank: rank, Cause: cause}
		close(c.abortCh)
		c.cond.Broadcast()
		c.mu.Unlock()
	})
}

// Abort poisons the communicator from this rank (see Comm.Abort).
func (r *Rank) Abort(cause error) { r.comm.Abort(r.id, cause) }

// abortErr returns the abort error; call only after abort is known to
// have happened (abortCh closed or c.abort observed non-nil).
func (c *Comm) abortErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.abort
}

// Aborted reports whether the communicator has been poisoned, and the
// abort error if so.
func (c *Comm) Aborted() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.abort == nil {
		return nil
	}
	return c.abort
}
