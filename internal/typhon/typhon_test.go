package typhon

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func TestNewCommRejectsZeroRanks(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Fatal("0 ranks accepted")
	}
}

func TestRunSpawnsAllRanks(t *testing.T) {
	c, _ := NewComm(5)
	var mask int32
	if err := c.Run(func(r *Rank) {
		atomic.OrInt32(&mask, 1<<r.ID())
		if r.Size() != 5 {
			t.Errorf("Size = %d, want 5", r.Size())
		}
	}); err != nil {
		t.Fatal(err)
	}
	if mask != 31 {
		t.Fatalf("rank mask = %b, want 11111", mask)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			must(t, r.Send(1, []float64{1, 2, 3}))
			got, err := r.Recv(1)
			must(t, err)
			if len(got) != 1 || got[0] != 9 {
				t.Errorf("rank 0 received %v", got)
			}
		} else {
			got, err := r.Recv(0)
			must(t, err)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("rank 1 received %v", got)
			}
			must(t, r.Send(0, []float64{9}))
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			data := []float64{42}
			must(t, r.Send(1, data))
			data[0] = -1 // mutate after send; receiver must see 42
			r.Barrier()
		} else {
			got, err := r.Recv(0)
			must(t, err)
			r.Barrier()
			if got[0] != 42 {
				t.Errorf("received %v, want 42 (payload aliased?)", got[0])
			}
		}
	})
}

func TestMessageOrderPreserved(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 10; i++ {
				must(t, r.Send(1, []float64{float64(i)}))
			}
		} else {
			for i := 0; i < 10; i++ {
				got, err := r.Recv(0)
				must(t, err)
				if got[0] != float64(i) {
					t.Errorf("message %d out of order: %v", i, got[0])
					return
				}
			}
		}
	})
}

func TestSelfSendFailsRun(t *testing.T) {
	c, _ := NewComm(1)
	err := c.Run(func(r *Rank) { r.Send(0, nil) })
	if err == nil {
		t.Fatal("self-send did not fail the run")
	}
	var pe *RankPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("self-send error %T, want *RankPanicError", err)
	}
}

func TestAllReduceMin(t *testing.T) {
	c, _ := NewComm(7)
	c.Run(func(r *Rank) {
		v := float64(10 - r.ID())
		m, err := r.AllReduceMin(v)
		must(t, err)
		if m != 4 {
			t.Errorf("rank %d: min = %v, want 4", r.ID(), m)
		}
	})
}

func TestAllReduceMinLoc(t *testing.T) {
	c, _ := NewComm(4)
	c.Run(func(r *Rank) {
		vals := []float64{5, 1, 3, 1}
		m, loc, err := r.AllReduceMinLoc(vals[r.ID()], 100+r.ID())
		must(t, err)
		if m != 1 || loc != 101 {
			t.Errorf("rank %d: minloc = (%v,%d), want (1,101)", r.ID(), m, loc)
		}
	})
}

func TestAllReduceSumDeterministic(t *testing.T) {
	c, _ := NewComm(6)
	results := make([]float64, 6)
	c.Run(func(r *Rank) {
		s, err := r.AllReduceSum(0.1 * float64(r.ID()+1))
		must(t, err)
		results[r.ID()] = s
	})
	for i := 1; i < 6; i++ {
		if results[i] != results[0] {
			t.Fatalf("sum differs between ranks: %v vs %v", results[i], results[0])
		}
	}
	if math.Abs(results[0]-2.1) > 1e-12 {
		t.Fatalf("sum = %v, want 2.1", results[0])
	}
}

func TestRepeatedReductionsDoNotInterfere(t *testing.T) {
	c, _ := NewComm(4)
	c.Run(func(r *Rank) {
		for i := 0; i < 50; i++ {
			want := float64(i)
			got, err := r.AllReduceMin(want + float64(r.ID()))
			must(t, err)
			if got != want {
				t.Errorf("iteration %d: min = %v, want %v", i, got, want)
				return
			}
		}
	})
}

func TestBarrierSynchronises(t *testing.T) {
	c, _ := NewComm(8)
	var before, wrong int32
	c.Run(func(r *Rank) {
		atomic.AddInt32(&before, 1)
		must(t, r.Barrier())
		if atomic.LoadInt32(&before) != 8 {
			atomic.AddInt32(&wrong, 1)
		}
	})
	if wrong != 0 {
		t.Fatalf("%d ranks passed the barrier before all arrived", wrong)
	}
}

func TestExchangeScalarHalo(t *testing.T) {
	// Two ranks, each owning 3 entries plus 1 ghost mirroring the
	// neighbour's entry 2.
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		field := []float64{0, 0, 0, -1} // 3 owned + 1 ghost
		for i := 0; i < 3; i++ {
			field[i] = float64(10*r.ID() + i)
		}
		other := 1 - r.ID()
		h := NewHalo(
			map[int][]int{other: {2}},
			map[int][]int{other: {3}},
		)
		must(t, r.Exchange(h, 1, field))
		want := float64(10*other + 2)
		if field[3] != want {
			t.Errorf("rank %d ghost = %v, want %v", r.ID(), field[3], want)
		}
	})
}

func TestExchangeStrided(t *testing.T) {
	// Per-entity stride 2 (e.g. x/y pairs packed).
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		field := make([]float64, 4) // entity 0 owned, entity 1 ghost
		field[0] = float64(r.ID()) + 0.25
		field[1] = float64(r.ID()) + 0.5
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		must(t, r.Exchange(h, 2, field))
		if field[2] != float64(other)+0.25 || field[3] != float64(other)+0.5 {
			t.Errorf("rank %d strided ghost = %v", r.ID(), field[2:])
		}
	})
}

func TestExchangeMultipleFields(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		a := []float64{float64(r.ID() + 1), 0}
		b := []float64{float64(r.ID() + 10), 0}
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		must(t, r.Exchange(h, 1, a, b))
		if a[1] != float64(other+1) || b[1] != float64(other+10) {
			t.Errorf("rank %d multi-field ghosts = %v %v", r.ID(), a[1], b[1])
		}
	})
}

func TestExchangeRing(t *testing.T) {
	// 4 ranks in a ring; each sends its owned value right and receives
	// from the left. Repeated to catch ordering bugs.
	c, _ := NewComm(4)
	c.Run(func(r *Rank) {
		right := (r.ID() + 1) % 4
		left := (r.ID() + 3) % 4
		h := NewHalo(map[int][]int{right: {0}}, map[int][]int{left: {1}})
		field := []float64{0, -1}
		for iter := 0; iter < 20; iter++ {
			field[0] = float64(100*iter + r.ID())
			must(t, r.Exchange(h, 1, field))
			if field[1] != float64(100*iter+left) {
				t.Errorf("iter %d rank %d got %v", iter, r.ID(), field[1])
				return
			}
		}
	})
}

func TestRunReportsPanicAsError(t *testing.T) {
	c, _ := NewComm(2)
	recvErrs := make([]error, 2)
	err := c.Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("rank failure")
		}
		// Rank 0 blocks in Recv; the panic must unblock it.
		_, recvErrs[0] = r.Recv(1)
	})
	if err == nil {
		t.Fatal("panic not reported from rank")
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("panic error %v does not match ErrAborted", err)
	}
	if recvErrs[0] == nil || !errors.Is(recvErrs[0], ErrAborted) {
		t.Fatalf("peer Recv error = %v, want ErrAborted", recvErrs[0])
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
