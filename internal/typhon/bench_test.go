package typhon

import (
	"fmt"
	"testing"
)

func BenchmarkAllReduceMin(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("ranks-%d", n), func(b *testing.B) {
			c, err := NewComm(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			c.Run(func(r *Rank) {
				for i := 0; i < b.N; i++ {
					if _, err := r.AllReduceMin(float64(r.ID() + i)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkHaloExchange(b *testing.B) {
	// Ring exchange of a 1000-entry halo between 4 ranks.
	const n = 4
	const halo = 1000
	for _, fields := range []int{1, 4} {
		b.Run(fmt.Sprintf("fields-%d", fields), func(b *testing.B) {
			c, err := NewComm(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			c.Run(func(r *Rank) {
				right := (r.ID() + 1) % n
				left := (r.ID() + n - 1) % n
				send := make([]int, halo)
				recv := make([]int, halo)
				for i := range send {
					send[i] = i
					recv[i] = halo + i
				}
				h := NewHalo(map[int][]int{right: send}, map[int][]int{left: recv})
				data := make([][]float64, fields)
				for f := range data {
					data[f] = make([]float64, 2*halo)
				}
				for i := 0; i < b.N; i++ {
					if err := r.Exchange(h, 1, data...); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
