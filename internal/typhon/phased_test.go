package typhon

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// The phased Start/Finish path must behave exactly like the blocking
// Exchange under every injected fault — including faults that only
// surface at Finish, after the owner has already spent the in-flight
// window computing.

// A clean phased exchange delivers the same ghosts as the blocking
// form, and computation between Start and Finish sees pre-exchange
// ghost values untouched.
func TestPhasedExchangeDeliversGhosts(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		pe := r.NewExchange(h, 1, 2)
		a := []float64{float64(10 + r.ID()), -1}
		b := []float64{float64(20 + r.ID()), -1}
		if err := pe.Start(a, b); err != nil {
			t.Errorf("rank %d start: %v", r.ID(), err)
			return
		}
		// Interior work window: ghost slots still hold the sentinel.
		if a[1] != -1 || b[1] != -1 {
			t.Errorf("rank %d: ghosts written before Finish", r.ID())
		}
		if err := pe.Finish(); err != nil {
			t.Errorf("rank %d finish: %v", r.ID(), err)
			return
		}
		if a[1] != float64(10+other) || b[1] != float64(20+other) {
			t.Errorf("rank %d ghosts = %v, %v", r.ID(), a[1], b[1])
		}
	})
}

// Repeated phased exchanges over one registered pattern must recycle
// their pack buffers: after a warm-up pass the steady state allocates
// nothing.
func TestPhasedExchangeSteadyStateAllocFree(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0, 1}}, map[int][]int{other: {2, 3}})
		pe := r.NewExchange(h, 4, 2)
		a := make([]float64, 16)
		b := make([]float64, 16)
		exchange := func() {
			if err := pe.Start(a, b); err != nil {
				t.Errorf("rank %d start: %v", r.ID(), err)
			}
			if err := pe.Finish(); err != nil {
				t.Errorf("rank %d finish: %v", r.ID(), err)
			}
		}
		for i := 0; i < 4; i++ {
			exchange() // saturate the return-channel pool
		}
		if r.ID() == 0 {
			// AllocsPerRun pins the whole process's allocations; rank 1
			// only echoes, so measuring on rank 0 covers both ends.
			allocs := testing.AllocsPerRun(50, exchange)
			if allocs != 0 {
				t.Errorf("steady-state phased exchange allocates %v times per run", allocs)
			}
		} else {
			for i := 0; i < 51; i++ { // AllocsPerRun runs 1 warm-up + 50 measured
				exchange()
			}
		}
	})
}

// The blocking Exchange wrapper rides the same recycled-buffer path.
func TestBlockingExchangeSteadyStateAllocFree(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		field := make([]float64, 8)
		exchange := func() {
			if err := r.Exchange(h, 4, field); err != nil {
				t.Errorf("rank %d: %v", r.ID(), err)
			}
		}
		for i := 0; i < 4; i++ {
			exchange()
		}
		if r.ID() == 0 {
			allocs := testing.AllocsPerRun(50, exchange)
			if allocs != 0 {
				t.Errorf("steady-state blocking exchange allocates %v times per run", allocs)
			}
		} else {
			for i := 0; i < 51; i++ { // AllocsPerRun runs 1 warm-up + 50 measured
				exchange()
			}
		}
	})
}

// A truncated message injected into the phased path must surface at
// Finish as the same *SizeMismatchError the blocking path reports —
// after the receiving rank has already done its interior work.
func TestPhasedTruncatedMessageSurfacesAtFinish(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultTruncate}}})
	errs := make([]error, 2)
	interior := make([]float64, 2)
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		pe := r.NewExchange(h, 1, 1)
		field := []float64{float64(r.ID()), -1}
		if err := pe.Start(field); err != nil {
			errs[r.ID()] = err
			return
		}
		// Interior work proceeds obliviously while the fault is in
		// flight; only Finish may report it.
		interior[r.ID()] = field[0] * 2
		errs[r.ID()] = pe.Finish()
	})
	var sm *SizeMismatchError
	if !errors.As(errs[1], &sm) {
		t.Fatalf("rank 1 error = %v, want *SizeMismatchError", errs[1])
	}
	if sm.From != 0 || sm.Got != 0 || sm.Want != 1 {
		t.Fatalf("mismatch detail = %+v", sm)
	}
	if interior[1] != 2 {
		t.Fatalf("rank 1 interior work = %v, want 2 (must run before the fault surfaces)", interior[1])
	}
	if c.Aborted() == nil {
		t.Fatal("size mismatch did not poison the communicator")
	}
}

// A dropped message leaves Finish blocked until the receive timeout
// aborts the communicator, matching the blocking path's semantics.
func TestPhasedDroppedMessageTimesOutAtFinish(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultDrop}}})
	c.SetRecvTimeout(50 * time.Millisecond)
	errs := make([]error, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(func(r *Rank) {
			other := 1 - r.ID()
			h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
			pe := r.NewExchange(h, 1, 1)
			field := []float64{float64(r.ID()), -1}
			if err := pe.Start(field); err != nil {
				errs[r.ID()] = err
				return
			}
			errs[r.ID()] = pe.Finish()
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("dropped message deadlocked the phased exchange")
	}
	var te *TimeoutError
	if !errors.As(errs[1], &te) {
		t.Fatalf("rank 1 error = %v, want *TimeoutError", errs[1])
	}
	if errs[0] != nil && !errors.Is(errs[0], ErrAborted) {
		t.Fatalf("rank 0 error = %v", errs[0])
	}
}

// A corrupted message still delivers NaN through the phased path, and
// the corrupted (fully overwritten) buffer re-enters the recycle pool
// without contaminating later exchanges.
func TestPhasedCorruptedMessageDeliversNaNThenHeals(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultCorrupt}}})
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		pe := r.NewExchange(h, 1, 1)
		field := []float64{float64(r.ID() + 1), -1}
		if err := pe.Start(field); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if err := pe.Finish(); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if r.ID() == 1 && !math.IsNaN(field[1]) {
			t.Errorf("rank 1 ghost = %v, want NaN from corrupted message", field[1])
		}
		// Second exchange reuses the recycled buffers; the corruption
		// must not leak through the repack.
		field[0] = float64(r.ID() + 5)
		field[1] = -1
		if err := pe.Start(field); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if err := pe.Finish(); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if want := float64(other + 5); field[1] != want {
			t.Errorf("rank %d ghost after heal = %v, want %v", r.ID(), field[1], want)
		}
	})
}

// A delayed message keeps Finish blocked until it arrives, intact.
func TestPhasedDelayedMessageArrivesAtFinish(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultDelay, Delay: 30 * time.Millisecond}}})
	start := time.Now()
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		pe := r.NewExchange(h, 1, 1)
		field := []float64{float64(r.ID() + 1), -1}
		if err := pe.Start(field); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if err := pe.Finish(); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if r.ID() == 1 && field[1] != 1 {
			t.Errorf("rank 1 ghost = %v, want 1", field[1])
		}
	})
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("delay fault did not delay")
	}
}

// Start with the wrong field count, double Start, and Finish without
// Start are programming errors and must panic.
func TestPhasedExchangeMisusePanics(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		h := NewHalo(map[int][]int{}, map[int][]int{})
		pe := r.NewExchange(h, 1, 2)
		mustPanic := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}
		mustPanic("wrong field count", func() { _ = pe.Start([]float64{1}) })
		mustPanic("finish before start", func() { _ = pe.Finish() })
		a, b := []float64{1}, []float64{2}
		if err := pe.Start(a, b); err != nil {
			t.Fatal(err)
		}
		mustPanic("double start", func() { _ = pe.Start(a, b) })
		if err := pe.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}

// sendOrder/recvOrder must come out ascending no matter how the
// neighbour maps were populated — the property the deterministic wire
// schedule (and with it bitwise reproducibility) rests on.
func TestHaloOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nbrs := rng.Perm(16)[:4+rng.Intn(8)]
		sendTo := map[int][]int{}
		recvFrom := map[int][]int{}
		for _, nb := range nbrs {
			sendTo[nb] = []int{0}
			recvFrom[nb] = []int{1}
		}
		h := NewHalo(sendTo, recvFrom)
		for i := 1; i < len(h.sendOrder); i++ {
			if h.sendOrder[i-1] >= h.sendOrder[i] {
				t.Fatalf("trial %d: sendOrder not strictly ascending: %v", trial, h.sendOrder)
			}
		}
		for i := 1; i < len(h.recvOrder); i++ {
			if h.recvOrder[i-1] >= h.recvOrder[i] {
				t.Fatalf("trial %d: recvOrder not strictly ascending: %v", trial, h.recvOrder)
			}
		}
		if len(h.sendOrder) != len(nbrs) || len(h.recvOrder) != len(nbrs) {
			t.Fatalf("trial %d: order length mismatch", trial)
		}
	}
}
