package typhon

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// An abort raised on one rank must release peers blocked in Recv and
// Barrier with an error matching ErrAborted — no deadlock.
func TestAbortUnblocksRecvAndBarrier(t *testing.T) {
	c, _ := NewComm(3)
	cause := fmt.Errorf("node died")
	errs := make([]error, 3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				_, errs[0] = r.Recv(2) // never sent
			case 1:
				errs[1] = r.Barrier() // never completed
			case 2:
				time.Sleep(20 * time.Millisecond)
				r.Abort(cause)
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not unblock peers")
	}
	for id := 0; id < 2; id++ {
		if errs[id] == nil || !errors.Is(errs[id], ErrAborted) {
			t.Fatalf("rank %d error = %v, want ErrAborted", id, errs[id])
		}
		var ae *AbortError
		if !errors.As(errs[id], &ae) || ae.Rank != 2 || !errors.Is(ae, ErrAborted) {
			t.Fatalf("rank %d error = %#v, want AbortError from rank 2", id, errs[id])
		}
	}
	if got := c.Aborted(); got == nil || !errors.Is(got, cause) {
		t.Fatalf("Aborted() = %v, want cause %v", got, cause)
	}
}

// A truncated halo message must surface as a returned
// *SizeMismatchError that poisons the communicator — not a panic.
func TestTruncatedMessageReturnsSizeMismatch(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultTruncate}}})
	errs := make([]error, 2)
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		field := []float64{float64(r.ID()), -1}
		errs[r.ID()] = r.Exchange(h, 1, field)
	})
	// Rank 1 receives the short message and must report the mismatch.
	var sm *SizeMismatchError
	if !errors.As(errs[1], &sm) {
		t.Fatalf("rank 1 error = %v, want *SizeMismatchError", errs[1])
	}
	if sm.From != 0 || sm.Got != 0 || sm.Want != 1 {
		t.Fatalf("mismatch detail = %+v", sm)
	}
	if c.Aborted() == nil {
		t.Fatal("size mismatch did not poison the communicator")
	}
}

// A dropped message is detected by the receive timeout, which aborts
// the communicator so every rank unwinds.
func TestDroppedMessageTimesOut(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultDrop}}})
	c.SetRecvTimeout(50 * time.Millisecond)
	errs := make([]error, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(func(r *Rank) {
			other := 1 - r.ID()
			h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
			field := []float64{float64(r.ID()), -1}
			errs[r.ID()] = r.Exchange(h, 1, field)
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("dropped message deadlocked the exchange")
	}
	var te *TimeoutError
	if !errors.As(errs[1], &te) {
		t.Fatalf("rank 1 error = %v, want *TimeoutError", errs[1])
	}
	if errs[0] != nil && !errors.Is(errs[0], ErrAborted) {
		t.Fatalf("rank 0 error = %v", errs[0])
	}
}

// A corrupted message still delivers (with NaN payload) — the transport
// cannot detect it; the application-level health sentinel must.
func TestCorruptedMessageDeliversNaN(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultCorrupt}}})
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		field := []float64{float64(r.ID() + 1), -1}
		if err := r.Exchange(h, 1, field); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		if r.ID() == 1 && !math.IsNaN(field[1]) {
			t.Errorf("rank 1 ghost = %v, want NaN from corrupted message", field[1])
		}
		if r.ID() == 0 && field[1] != 2 {
			t.Errorf("rank 0 ghost = %v, want 2 (reverse direction clean)", field[1])
		}
	})
}

// A delayed message arrives late but intact.
func TestDelayedMessageArrives(t *testing.T) {
	c, _ := NewComm(2)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 0, Msg: 1, Kind: FaultDelay, Delay: 30 * time.Millisecond}}})
	start := time.Now()
	c.Run(func(r *Rank) {
		other := 1 - r.ID()
		h := NewHalo(map[int][]int{other: {0}}, map[int][]int{other: {1}})
		field := []float64{float64(r.ID() + 1), -1}
		if err := r.Exchange(h, 1, field); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		if r.ID() == 1 && field[1] != 1 {
			t.Errorf("rank 1 ghost = %v, want 1", field[1])
		}
	})
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("delay fault did not delay")
	}
}

// An injected panic mid-exchange must end Run with a *RankPanicError
// and release the peers — the no-deadlock guarantee under rank death.
func TestInjectedPanicAbortsExchange(t *testing.T) {
	c, _ := NewComm(4)
	c.InjectFaults(&FaultPlan{Faults: []Fault{{Rank: 2, Msg: 1, Kind: FaultPanic}}})
	done := make(chan error, 1)
	go func() {
		done <- c.Run(func(r *Rank) {
			right := (r.ID() + 1) % 4
			left := (r.ID() + 3) % 4
			h := NewHalo(map[int][]int{right: {0}}, map[int][]int{left: {1}})
			field := []float64{float64(r.ID()), -1}
			for i := 0; i < 10; i++ {
				if err := r.Exchange(h, 1, field); err != nil {
					return
				}
			}
		})
	}()
	select {
	case err := <-done:
		var pe *RankPanicError
		if !errors.As(err, &pe) || pe.Rank != 2 {
			t.Fatalf("Run error = %v, want panic on rank 2", err)
		}
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("panic error does not match ErrAborted: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("injected panic deadlocked the communicator")
	}
}

// Collectives called after an abort must fail fast, not hang.
func TestCollectivesFailFastAfterAbort(t *testing.T) {
	c, _ := NewComm(2)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Abort(fmt.Errorf("poisoned"))
		}
		// Whichever rank arrives first blocks briefly, then both see
		// the abort.
		if err := r.Barrier(); err == nil {
			t.Errorf("rank %d: Barrier succeeded after abort", r.ID())
		}
		if _, err := r.AllReduceMin(1); err == nil {
			t.Errorf("rank %d: AllReduceMin succeeded after abort", r.ID())
		}
		if _, err := r.AllReduceSum(1); err == nil {
			t.Errorf("rank %d: AllReduceSum succeeded after abort", r.ID())
		}
		if err := r.Send(1-r.ID(), []float64{1}); err != nil && !errors.Is(err, ErrAborted) {
			t.Errorf("rank %d: Send error = %v", r.ID(), err)
		}
	})
}
