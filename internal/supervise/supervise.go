// Package supervise is the rank-supervision layer between the parallel
// driver and its goroutine ranks: it turns "a rank misbehaved" into a
// graded, observable recovery ladder instead of the single
// collective-rollback hammer of the original fault-tolerance design.
//
// Every failure surfaced by the typhon/hydro/ale layers is classified
// into one of three classes:
//
//   - transient       — expected to vanish on a retry (a one-off
//     corrupted or delayed message, a flux overshoot, a timestep
//     collapse): the supervisor grants a bounded number of epoch
//     retries with exponential backoff and jitter;
//   - rank-persistent — localised to one rank and expected to recur
//     (a panicked rank goroutine, repeated size mismatches from the
//     same sender, a retry budget drained on one rank): the supervisor
//     replaces the rank from its last in-memory Memento while the
//     peers wait at a barrier;
//   - fatal           — not attributable or not recoverable (setup
//     errors, drained replacement budget): the supervisor directs a
//     checkpoint-then-abort so the run leaves a valid restart dump.
//
// The Supervisor itself is pure decision logic plus metrics: it owns
// no goroutines and performs no communication. The parallel driver
// feeds it epoch outcomes and applies the returned Decision (retry,
// replace, abort); the driver also consults ShouldRepart with the
// per-rank work timings reduced from the obs halo-wait counters to
// trigger online elastic repartitioning at safe collective points.
package supervise

import (
	"errors"
	"fmt"
	"time"

	"bookleaf/internal/hydro"
	"bookleaf/internal/obs"
	"bookleaf/internal/typhon"
)

// Class is the fault class the ladder escalates on.
type Class int

const (
	// ClassTransient faults are retried in place with backoff.
	ClassTransient Class = iota
	// ClassRankPersistent faults replace the offending rank.
	ClassRankPersistent
	// ClassFatal faults end the run after a final checkpoint.
	ClassFatal
)

func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassRankPersistent:
		return "rank-persistent"
	case ClassFatal:
		return "fatal"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassifyError returns the fault class of a single occurrence of err,
// before any history-based escalation. A recovered rank panic is
// rank-persistent immediately — the goroutine is gone and respawning
// it without a fresh state would replay the crash. Errors that
// describe themselves as transient via a Transient() method (typhon's
// timeout and size-mismatch faults, the ALE remap's flux overshoot)
// and the hydro retryables (timestep collapse, tangled element,
// non-finite field) are transient on first sight; the Supervisor
// escalates repeats. Everything else is fatal.
func ClassifyError(err error) Class {
	if err == nil {
		return ClassTransient
	}
	var rp *typhon.RankPanicError
	if errors.As(err, &rp) {
		return ClassRankPersistent
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		if tr.Transient() {
			return ClassTransient
		}
		return ClassRankPersistent
	}
	if hydro.Retryable(err) {
		return ClassTransient
	}
	return ClassFatal
}

// Attribute extracts the rank a fault is attributable to: the panicked
// rank, or the *sender* of a malformed or missing message (the
// receiving rank is the victim, not the suspect). The second return is
// false when the error names no rank.
func Attribute(err error) (int, bool) {
	var rp *typhon.RankPanicError
	if errors.As(err, &rp) {
		return rp.Rank, true
	}
	var sm *typhon.SizeMismatchError
	if errors.As(err, &sm) {
		return sm.From, true
	}
	var to *typhon.TimeoutError
	if errors.As(err, &to) {
		return to.From, true
	}
	return -1, false
}

// Policy is the deck-configurable budget set of the recovery ladder.
// The zero value is not valid; start from DefaultPolicy.
type Policy struct {
	// Enabled turns the ladder on. When false the driver behaves
	// exactly as before supervision existed: any epoch-level fault is
	// fatal. The DtBackoff and RecvTimeout knobs apply regardless.
	Enabled bool

	// RetryBudget bounds epoch-level transient retries across the run.
	RetryBudget int
	// BackoffBase is the first retry's backoff; each further retry
	// doubles it up to BackoffMax. Zero (the default) retries
	// immediately, matching the pre-supervision rollback behaviour.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter in [0,1] is the fraction of each backoff drawn
	// uniformly at random (deterministic generator, so runs with a
	// fixed seed reproduce): sleep = b*(1-j) + b*j*u.
	BackoffJitter float64

	// ReplaceBudget bounds rank replacements across the run.
	ReplaceBudget int
	// PersistAfter is the number of attributable faults from one rank
	// at which a transient classification escalates to
	// rank-persistent (>= 1; 1 escalates immediately).
	PersistAfter int

	// RepartCheckEvery is the step cadence of the load-imbalance
	// check; 0 disables the monitor. RepartThreshold is the
	// max-to-mean per-rank work ratio above which a repartition is
	// triggered. RepartMinGap is the minimum number of steps between
	// triggered repartitions.
	RepartCheckEvery int
	RepartThreshold  float64
	RepartMinGap     int
	// RepartAtStep forces one repartition at the given step (0 = no
	// forced repartition) — the deterministic trigger decks and tests
	// use. RepartRanks, when positive, is the rank count after the
	// next repartition; RanksMax caps it.
	RepartAtStep int
	RepartRanks  int
	RanksMax     int

	// RecvTimeout bounds every typhon Recv wait; zero waits forever
	// (the pre-supervision default).
	RecvTimeout time.Duration
	// DtBackoff is the factor the rollback path divides the timestep
	// cap by on every collective rollback (previously the
	// compile-time constant 2).
	DtBackoff float64

	// Seed seeds the jitter generator (0 uses 1).
	Seed uint64
}

// DefaultPolicy returns the ladder defaults: supervision off, budgets
// sized for a single misbehaving rank, and the DtBackoff/RecvTimeout
// knobs matching the previous compile-time behaviour.
func DefaultPolicy() Policy {
	return Policy{
		RetryBudget:     2,
		ReplaceBudget:   1,
		PersistAfter:    2,
		RepartThreshold: 1.5,
		RepartMinGap:    10,
		DtBackoff:       2,
		BackoffMax:      2 * time.Second,
	}
}

// Validate checks the policy for self-consistency.
func (p *Policy) Validate() error {
	switch {
	case p.RetryBudget < 0:
		return fmt.Errorf("supervise: retry budget %d negative", p.RetryBudget)
	case p.ReplaceBudget < 0:
		return fmt.Errorf("supervise: replace budget %d negative", p.ReplaceBudget)
	case p.PersistAfter < 1:
		return fmt.Errorf("supervise: persist-after %d must be >= 1", p.PersistAfter)
	case p.BackoffBase < 0 || p.BackoffMax < 0:
		return fmt.Errorf("supervise: negative backoff")
	case p.BackoffJitter < 0 || p.BackoffJitter > 1:
		return fmt.Errorf("supervise: backoff jitter %v outside [0,1]", p.BackoffJitter)
	case p.RepartCheckEvery < 0:
		return fmt.Errorf("supervise: repart check cadence %d negative", p.RepartCheckEvery)
	case p.RepartCheckEvery > 0 && p.RepartThreshold < 1:
		return fmt.Errorf("supervise: repart threshold %v must be >= 1 (max/mean work ratio)", p.RepartThreshold)
	case p.RepartMinGap < 0:
		return fmt.Errorf("supervise: repart min gap %d negative", p.RepartMinGap)
	case p.RepartAtStep < 0:
		return fmt.Errorf("supervise: forced repart step %d negative", p.RepartAtStep)
	case p.RepartRanks < 0:
		return fmt.Errorf("supervise: repart ranks %d negative", p.RepartRanks)
	case p.RanksMax < 0:
		return fmt.Errorf("supervise: ranks max %d negative", p.RanksMax)
	case p.RanksMax > 0 && p.RepartRanks > p.RanksMax:
		return fmt.Errorf("supervise: repart ranks %d exceeds ranks max %d", p.RepartRanks, p.RanksMax)
	case p.RecvTimeout < 0:
		return fmt.Errorf("supervise: negative recv timeout")
	case p.DtBackoff <= 1:
		return fmt.Errorf("supervise: dt backoff %v must be > 1", p.DtBackoff)
	}
	return nil
}

// Action is the rung of the ladder a Decision applies.
type Action int

const (
	// ActionRetry re-runs the epoch from every rank's step-start
	// snapshot after the backoff.
	ActionRetry Action = iota
	// ActionReplace spawns a fresh incarnation of Decision.Rank from
	// its last in-memory Memento, then retries the epoch.
	ActionReplace
	// ActionAbort writes a final checkpoint and ends the run with the
	// root-cause error.
	ActionAbort
)

func (a Action) String() string {
	switch a {
	case ActionRetry:
		return "retry"
	case ActionReplace:
		return "replace"
	case ActionAbort:
		return "abort"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Decision is the supervisor's verdict on one epoch failure.
type Decision struct {
	Action  Action
	Class   Class
	Rank    int // rank to replace (ActionReplace); attribution otherwise (-1 unknown)
	Backoff time.Duration
}

// Supervisor applies a Policy to a stream of epoch outcomes. It is
// driver-side, single-goroutine decision logic: no communication, no
// locks. Metrics land in the registry passed to New and merge into the
// run's metrics.json alongside the per-rank registries.
type Supervisor struct {
	pol Policy

	retries  int
	replaces int
	reparts  int

	// faultCount counts attributable faults per rank; incarnation is
	// the per-rank replacement generation (0 = original).
	faultCount  map[int]int
	incarnation map[int]int

	rng uint64

	ctrRetry   *obs.Counter
	ctrReplace *obs.Counter
	ctrRepart  *obs.Counter
	histBack   [2]*obs.Histogram // backoff ms by class: transient, rank-persistent
}

// New builds a Supervisor over a validated policy. The supervise_*
// counters are created eagerly so a clean run still publishes their
// zeros. reg may be nil (metrics discarded).
func New(pol Policy, reg *obs.Registry) *Supervisor {
	seed := pol.Seed
	if seed == 0 {
		seed = 1
	}
	return &Supervisor{
		pol:         pol,
		faultCount:  map[int]int{},
		incarnation: map[int]int{},
		rng:         seed,
		ctrRetry:    reg.Counter("supervise_retry_total"),
		ctrReplace:  reg.Counter("supervise_replace_total"),
		ctrRepart:   reg.Counter("supervise_repart_total"),
		histBack: [2]*obs.Histogram{
			reg.Histogram("supervise_backoff_ms_transient"),
			reg.Histogram("supervise_backoff_ms_rank_persistent"),
		},
	}
}

// Retries, Replaces and Reparts report the rungs spent so far.
func (sv *Supervisor) Retries() int  { return sv.retries }
func (sv *Supervisor) Replaces() int { return sv.replaces }
func (sv *Supervisor) Reparts() int  { return sv.reparts }

// Incarnation returns rank's replacement generation (0 = original).
func (sv *Supervisor) Incarnation(rank int) int { return sv.incarnation[rank] }

// xorshift64 advances the deterministic jitter generator.
func (sv *Supervisor) xorshift64() uint64 {
	x := sv.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sv.rng = x
	return x
}

// backoff computes the nth (1-based) exponential backoff with jitter.
func (sv *Supervisor) backoff(n int) time.Duration {
	b := sv.pol.BackoffBase
	if b <= 0 {
		return 0
	}
	for i := 1; i < n; i++ {
		b *= 2
		if sv.pol.BackoffMax > 0 && b >= sv.pol.BackoffMax {
			b = sv.pol.BackoffMax
			break
		}
	}
	if sv.pol.BackoffMax > 0 && b > sv.pol.BackoffMax {
		b = sv.pol.BackoffMax
	}
	if j := sv.pol.BackoffJitter; j > 0 {
		u := float64(sv.xorshift64()>>11) / float64(1<<53)
		b = time.Duration(float64(b) * (1 - j + j*u))
	}
	return b
}

// Decide classifies err, applies history escalation and the budgets,
// and returns the rung to take. fallbackRank is the rank the driver
// attributes the fault to when the error itself names none (-1 for
// none); the recovery ladder can only replace an attributable rank.
func (sv *Supervisor) Decide(err error, fallbackRank int) Decision {
	class := ClassifyError(err)
	rank, ok := Attribute(err)
	if !ok {
		rank = fallbackRank
	}
	if rank >= 0 {
		sv.faultCount[rank]++
		if class == ClassTransient && sv.faultCount[rank] >= sv.pol.PersistAfter {
			// The same rank keeps producing faults that look transient
			// one at a time: escalate so the budget is not burnt on a
			// rank that will never come back on its own.
			class = ClassRankPersistent
		}
	}
	if class == ClassTransient && sv.retries >= sv.pol.RetryBudget {
		if rank >= 0 {
			class = ClassRankPersistent
		} else {
			class = ClassFatal
		}
	}
	switch class {
	case ClassTransient:
		sv.retries++
		sv.ctrRetry.Inc()
		b := sv.backoff(sv.retries)
		sv.histBack[ClassTransient].Observe(float64(b.Milliseconds()))
		return Decision{Action: ActionRetry, Class: ClassTransient, Rank: rank, Backoff: b}
	case ClassRankPersistent:
		if rank < 0 || sv.replaces >= sv.pol.ReplaceBudget {
			return Decision{Action: ActionAbort, Class: ClassFatal, Rank: rank}
		}
		sv.replaces++
		sv.incarnation[rank]++
		sv.ctrReplace.Inc()
		b := sv.backoff(sv.replaces)
		sv.histBack[ClassRankPersistent].Observe(float64(b.Milliseconds()))
		return Decision{Action: ActionReplace, Class: ClassRankPersistent, Rank: rank, Backoff: b}
	}
	return Decision{Action: ActionAbort, Class: ClassFatal, Rank: rank}
}

// NoteRepart records one online repartition.
func (sv *Supervisor) NoteRepart() {
	sv.reparts++
	sv.ctrRepart.Inc()
}

// Imbalance returns the max-to-mean ratio of the per-rank work
// samples (1 = perfectly balanced). Non-positive samples clamp to
// zero; an all-zero window reports 1.
func Imbalance(work []float64) float64 {
	if len(work) == 0 {
		return 1
	}
	var sum, max float64
	for _, w := range work {
		if w < 0 {
			w = 0
		}
		sum += w
		if w > max {
			max = w
		}
	}
	if sum <= 0 {
		return 1
	}
	return max * float64(len(work)) / sum
}

// ShouldRepart applies the imbalance trigger to a reduced work window:
// maxWork and sumWork are the AllReduce'd per-rank compute times of
// the window, n the rank count. The decision is a pure function of the
// reduced values, so every rank computes the same verdict.
func ShouldRepart(maxWork, sumWork float64, n int, threshold float64) bool {
	if n < 2 || sumWork <= 0 || threshold < 1 {
		return false
	}
	return maxWork*float64(n)/sumWork > threshold
}
