package supervise

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bookleaf/internal/ale"
	"bookleaf/internal/hydro"
	"bookleaf/internal/obs"
	"bookleaf/internal/typhon"
)

// TestClassifyError is the table-driven classification audit across the
// typhon/hydro/ale error taxonomy: recovered rank panics are
// rank-persistent (the goroutine is gone), single communication data
// faults and the hydro/ale retryables are transient, and everything
// unattributable is fatal. Wrapping through AbortError must not change
// the class of the root cause.
func TestClassifyError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassTransient},
		{"rank panic", &typhon.RankPanicError{Rank: 2, Value: "boom"}, ClassRankPersistent},
		{"wrapped rank panic",
			&typhon.AbortError{Rank: 2, Cause: &typhon.RankPanicError{Rank: 2, Value: "boom"}},
			ClassRankPersistent},
		{"size mismatch", &typhon.SizeMismatchError{From: 1, To: 0, Got: 9, Want: 10}, ClassTransient},
		{"wrapped size mismatch",
			&typhon.AbortError{Rank: 0, Cause: &typhon.SizeMismatchError{From: 1, To: 0, Got: 9, Want: 10}},
			ClassTransient},
		{"recv timeout", &typhon.TimeoutError{Rank: 0, From: 1, After: time.Second}, ClassTransient},
		{"dt collapse", &hydro.ErrDtCollapse{Dt: 1e-14, Element: 3}, ClassTransient},
		{"tangled element", &hydro.ErrTangled{Element: 1, Volume: -1}, ClassTransient},
		{"non-finite field", &hydro.ErrNonFinite{Field: "rho", Index: 4, Global: 4}, ClassTransient},
		{"remap overshoot", &ale.ErrRemap{Element: 2, Corner: 1, Mass: -1e-18}, ClassTransient},
		{"bare abort", typhon.ErrAborted, ClassFatal},
		{"abort without cause class",
			&typhon.AbortError{Rank: 1, Cause: errors.New("operator intervention")},
			ClassFatal},
		{"setup error", fmt.Errorf("bookleaf: unknown problem %q", "vortex"), ClassFatal},
	}
	for _, tc := range cases {
		if got := ClassifyError(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyError = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAttribute(t *testing.T) {
	cases := []struct {
		name string
		err  error
		rank int
		ok   bool
	}{
		{"rank panic", &typhon.RankPanicError{Rank: 3, Value: "x"}, 3, true},
		{"size mismatch blames sender", &typhon.SizeMismatchError{From: 2, To: 0, Got: 1, Want: 2}, 2, true},
		{"timeout blames sender", &typhon.TimeoutError{Rank: 0, From: 1, After: time.Second}, 1, true},
		{"wrapped", &typhon.AbortError{Rank: 0, Cause: &typhon.RankPanicError{Rank: 1, Value: "x"}}, 1, true},
		{"anonymous", errors.New("plain"), -1, false},
		{"hydro", &hydro.ErrTangled{Element: 1, Volume: -1}, -1, false},
	}
	for _, tc := range cases {
		rank, ok := Attribute(tc.err)
		if rank != tc.rank || ok != tc.ok {
			t.Errorf("%s: Attribute = (%d, %v), want (%d, %v)", tc.name, rank, ok, tc.rank, tc.ok)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	def := DefaultPolicy()
	if err := def.Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []func(*Policy){
		func(p *Policy) { p.RetryBudget = -1 },
		func(p *Policy) { p.ReplaceBudget = -1 },
		func(p *Policy) { p.PersistAfter = 0 },
		func(p *Policy) { p.BackoffBase = -time.Second },
		func(p *Policy) { p.BackoffJitter = 1.5 },
		func(p *Policy) { p.RepartCheckEvery = -1 },
		func(p *Policy) { p.RepartCheckEvery = 5; p.RepartThreshold = 0.5 },
		func(p *Policy) { p.RepartMinGap = -1 },
		func(p *Policy) { p.RepartAtStep = -2 },
		func(p *Policy) { p.RepartRanks = -1 },
		func(p *Policy) { p.RanksMax = -1 },
		func(p *Policy) { p.RepartRanks = 8; p.RanksMax = 4 },
		func(p *Policy) { p.RecvTimeout = -time.Second },
		func(p *Policy) { p.DtBackoff = 1 },
	}
	for i, mutate := range bad {
		p := DefaultPolicy()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d validated", i)
		}
	}
}

// TestLadderTransientThenEscalate walks the full ladder for a rank that
// keeps producing transient-looking faults: one retry (PersistAfter 2),
// then a replacement, then — replace budget drained — abort.
func TestLadderTransientThenEscalate(t *testing.T) {
	pol := DefaultPolicy()
	pol.Enabled = true
	pol.RetryBudget = 2
	pol.ReplaceBudget = 1
	pol.PersistAfter = 2
	reg := obs.NewRegistry()
	sv := New(pol, reg)
	mismatch := &typhon.SizeMismatchError{From: 1, To: 0, Got: 9, Want: 10}

	d := sv.Decide(mismatch, -1)
	if d.Action != ActionRetry || d.Class != ClassTransient {
		t.Fatalf("first fault: got %v/%v, want retry/transient", d.Action, d.Class)
	}
	d = sv.Decide(mismatch, -1)
	if d.Action != ActionReplace || d.Rank != 1 {
		t.Fatalf("second fault: got %v rank %d, want replace rank 1", d.Action, d.Rank)
	}
	if got := sv.Incarnation(1); got != 1 {
		t.Fatalf("incarnation(1) = %d, want 1", got)
	}
	d = sv.Decide(mismatch, -1)
	if d.Action != ActionAbort {
		t.Fatalf("third fault: got %v, want abort (replace budget drained)", d.Action)
	}
	snap := reg.Snapshot()
	if snap.Counters["supervise_retry_total"] != 1 ||
		snap.Counters["supervise_replace_total"] != 1 ||
		snap.Counters["supervise_repart_total"] != 0 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

// TestLadderPanicReplacesImmediately: a rank panic skips the retry rung
// even with budget left.
func TestLadderPanicReplacesImmediately(t *testing.T) {
	pol := DefaultPolicy()
	pol.Enabled = true
	sv := New(pol, nil)
	d := sv.Decide(&typhon.RankPanicError{Rank: 2, Value: "boom"}, -1)
	if d.Action != ActionReplace || d.Rank != 2 {
		t.Fatalf("got %v rank %d, want replace rank 2", d.Action, d.Rank)
	}
	if sv.Retries() != 0 || sv.Replaces() != 1 {
		t.Fatalf("retries %d replaces %d, want 0/1", sv.Retries(), sv.Replaces())
	}
}

// TestLadderUnattributableTransient: transient faults that name no rank
// retry until the budget drains and then abort — there is no rank to
// replace.
func TestLadderUnattributableTransient(t *testing.T) {
	pol := DefaultPolicy()
	pol.Enabled = true
	pol.RetryBudget = 2
	sv := New(pol, nil)
	collapse := &hydro.ErrDtCollapse{Dt: 1e-14, Element: 0}
	for i := 0; i < 2; i++ {
		if d := sv.Decide(collapse, -1); d.Action != ActionRetry {
			t.Fatalf("fault %d: got %v, want retry", i, d.Action)
		}
	}
	if d := sv.Decide(collapse, -1); d.Action != ActionAbort {
		t.Fatalf("got %v, want abort after retry budget", d.Action)
	}
}

// TestLadderFallbackRankAttribution: when the error names no rank the
// driver's fallback attribution feeds the escalation history.
func TestLadderFallbackRankAttribution(t *testing.T) {
	pol := DefaultPolicy()
	pol.Enabled = true
	pol.RetryBudget = 4
	pol.PersistAfter = 2
	sv := New(pol, nil)
	nf := &hydro.ErrNonFinite{Field: "rho", Index: 0, Global: 0}
	if d := sv.Decide(nf, 3); d.Action != ActionRetry {
		t.Fatalf("first: got %v, want retry", d.Action)
	}
	d := sv.Decide(nf, 3)
	if d.Action != ActionReplace || d.Rank != 3 {
		t.Fatalf("second: got %v rank %d, want replace rank 3", d.Action, d.Rank)
	}
}

// TestBackoffDeterministic: same seed, same backoff sequence; backoffs
// grow exponentially and respect the cap.
func TestBackoffDeterministic(t *testing.T) {
	mk := func() *Supervisor {
		pol := DefaultPolicy()
		pol.Enabled = true
		pol.RetryBudget = 10
		pol.BackoffBase = 10 * time.Millisecond
		pol.BackoffMax = 50 * time.Millisecond
		pol.BackoffJitter = 0.5
		pol.Seed = 42
		return New(pol, nil)
	}
	collapse := &hydro.ErrDtCollapse{Dt: 1e-14, Element: 0}
	a, b := mk(), mk()
	var prev time.Duration
	for i := 0; i < 5; i++ {
		da, db := a.Decide(collapse, -1), b.Decide(collapse, -1)
		if da.Backoff != db.Backoff {
			t.Fatalf("retry %d: backoffs diverge (%v vs %v) with equal seeds", i, da.Backoff, db.Backoff)
		}
		if da.Backoff < 0 || da.Backoff > 50*time.Millisecond {
			t.Fatalf("retry %d: backoff %v outside [0, cap]", i, da.Backoff)
		}
		// With jitter 0.5 the floor is half the deterministic value, so
		// the doubling still shows through the floor sequence.
		if da.Backoff > 0 && da.Backoff == prev && i > 3 {
			break // capped region; fine
		}
		prev = da.Backoff
	}
	// Jitter off: pure doubling to the cap.
	pol := DefaultPolicy()
	pol.Enabled = true
	pol.RetryBudget = 10
	pol.BackoffBase = 10 * time.Millisecond
	pol.BackoffMax = 35 * time.Millisecond
	sv := New(pol, nil)
	want := []time.Duration{10, 20, 35, 35}
	for i, w := range want {
		if d := sv.Decide(collapse, -1); d.Backoff != w*time.Millisecond {
			t.Fatalf("retry %d: backoff %v, want %v", i, d.Backoff, w*time.Millisecond)
		}
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		work []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{3, 1}, 1.5},
		{[]float64{4, 0, 0, 0}, 4},
	}
	for _, tc := range cases {
		if got := Imbalance(tc.work); got != tc.want {
			t.Errorf("Imbalance(%v) = %v, want %v", tc.work, got, tc.want)
		}
	}
	if ShouldRepart(3, 4, 2, 1.4) != true {
		t.Error("ShouldRepart(3,4,2,1.4) = false, want true (ratio 1.5)")
	}
	if ShouldRepart(3, 4, 2, 1.6) != false {
		t.Error("ShouldRepart(3,4,2,1.6) = true, want false")
	}
	if ShouldRepart(5, 5, 1, 1.0) != false {
		t.Error("single rank must never repartition")
	}
	if ShouldRepart(0, 0, 4, 1.5) != false {
		t.Error("zero-work window must not trigger")
	}
}
