package mesh

// Band splits the owned entities of a partitioned mesh into the
// boundary band — entities whose kernels read ghost data — and the
// interior complement, which can be computed while halo messages are
// still in flight.
//
// A boundary *node* is an owned node whose element ring contains a
// ghost element: the node-gather acceleration (and any corner-force
// reduction) reads the ghost element's corner forces, so the node must
// wait for the element halo. A boundary *element* is an owned element
// with at least one ghost node: its geometry/EOS update reads the ghost
// node's exchanged velocity, so it must wait for the node halo. All
// four lists are ascending, so iterating them preserves the serial
// kernel order within each band — the property the bitwise-determinism
// guarantee of the overlapped schedule rests on (see DESIGN.md §10).
//
// On a serial (unpartitioned) mesh every owned entity is interior and
// the boundary lists are empty.
type Band struct {
	IntEls []int // owned elements with no ghost node
	BndEls []int // owned elements touching at least one ghost node
	IntNds []int // owned nodes whose element ring is fully owned
	BndNds []int // owned nodes with a ghost element in their ring
}

// BoundaryBand computes the interior/boundary split for this mesh. It
// is pure and depends only on connectivity and ownership, so drivers
// compute it once per partition and reuse it every step.
func (m *Mesh) BoundaryBand() *Band {
	b := &Band{}
	for e := 0; e < m.NOwnEl; e++ {
		ghost := false
		for _, n := range m.ElNd[e] {
			if n >= m.NOwnNd {
				ghost = true
				break
			}
		}
		if ghost {
			b.BndEls = append(b.BndEls, e)
		} else {
			b.IntEls = append(b.IntEls, e)
		}
	}
	for n := 0; n < m.NOwnNd; n++ {
		ghost := false
		for _, e := range m.NdElList[m.NdElStart[n]:m.NdElStart[n+1]] {
			if e >= m.NOwnEl {
				ghost = true
				break
			}
		}
		if ghost {
			b.BndNds = append(b.BndNds, n)
		} else {
			b.IntNds = append(b.IntNds, n)
		}
	}
	return b
}
