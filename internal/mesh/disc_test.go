package mesh

import (
	"math"
	"testing"
)

func TestQuarterDiscGeometry(t *testing.T) {
	m, err := QuarterDisc(QuarterDiscSpec{N: 12, R: 1, AxisX: FixU, AxisY: FixV, Arc: FrozenVel})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	// Every node inside or on the unit circle.
	for n := 0; n < m.NNd; n++ {
		if r := math.Hypot(m.X[n], m.Y[n]); r > 1+1e-12 {
			t.Fatalf("node %d outside disc: r=%v", n, r)
		}
	}
	// Arc nodes exactly on the circle.
	arcCount := 0
	for n := 0; n < m.NNd; n++ {
		if m.BCs[n]&FrozenVel != 0 {
			arcCount++
			if r := math.Hypot(m.X[n], m.Y[n]); math.Abs(r-1) > 1e-12 {
				t.Fatalf("arc node %d at r=%v, want 1", n, r)
			}
		}
	}
	if arcCount != 2*12+1 {
		t.Fatalf("arc node count %d, want 25", arcCount)
	}
	// Total area approximates the quarter disc pi/4.
	if a := m.TotalVolume(); math.Abs(a-math.Pi/4) > 0.01 {
		t.Fatalf("area %v, want ~%v", a, math.Pi/4)
	}
}

func TestQuarterDiscAreaConverges(t *testing.T) {
	prevErr := math.Inf(1)
	for _, n := range []int{8, 16, 32} {
		m, err := QuarterDisc(QuarterDiscSpec{N: n, R: 2})
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(m.TotalVolume() - math.Pi)
		if e >= prevErr {
			t.Fatalf("area error did not shrink at N=%d: %v >= %v", n, e, prevErr)
		}
		prevErr = e
	}
}

func TestQuarterDiscRejectsBadSpec(t *testing.T) {
	if _, err := QuarterDisc(QuarterDiscSpec{N: 0, R: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := QuarterDisc(QuarterDiscSpec{N: 4, R: -1}); err == nil {
		t.Fatal("R<0 accepted")
	}
}

func TestQuarterDiscAxisBCs(t *testing.T) {
	m, _ := QuarterDisc(QuarterDiscSpec{N: 6, R: 1, AxisX: FixU, AxisY: FixV})
	for n := 0; n < m.NNd; n++ {
		onX := math.Abs(m.X[n]) < 1e-14
		onY := math.Abs(m.Y[n]) < 1e-14
		if onX && m.BCs[n]&FixU == 0 {
			t.Fatalf("x=0 node %d missing FixU", n)
		}
		if onY && m.BCs[n]&FixV == 0 {
			t.Fatalf("y=0 node %d missing FixV", n)
		}
	}
}
