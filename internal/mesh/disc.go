package mesh

import (
	"fmt"
	"math"
)

// QuarterDiscSpec describes a quarter-disc mesh of radius R generated
// by the elliptic square-to-disc mapping
//
//	x = u √(1 - v²/2),  y = v √(1 - u²/2),  (u,v) ∈ [0,1]²
//
// which produces smooth, non-degenerate quads: Cartesian-like near the
// origin and conforming to the circular arc at r = R. Radial problems
// (Noh) run on it with the outer boundary exactly on the physical
// r = R circle — the mesh-geometry counterpart to the paper's remark
// that Sedov is run on a Cartesian mesh precisely to exercise
// non-mesh-aligned shocks.
type QuarterDiscSpec struct {
	// N is the cell count along each logical direction.
	N int
	// R is the disc radius.
	R float64
	// Walls: Axes applies to the x=0 and y=0 edges (default
	// reflective); Arc to the curved outer boundary.
	AxisX, AxisY, Arc BC
}

// QuarterDisc generates the quarter-disc mesh.
func QuarterDisc(spec QuarterDiscSpec) (*Mesh, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("mesh: QuarterDisc needs N >= 1, got %d", spec.N)
	}
	if spec.R <= 0 {
		return nil, fmt.Errorf("mesh: QuarterDisc needs R > 0, got %v", spec.R)
	}
	n := spec.N
	nnd := (n + 1) * (n + 1)
	m := &Mesh{
		ElNd:   make([][4]int, 0, n*n),
		X:      make([]float64, nnd),
		Y:      make([]float64, nnd),
		Region: make([]int, 0, n*n),
		BCs:    make([]BC, nnd),
	}
	node := func(i, j int) int { return j*(n+1) + i }
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			u := float64(i) / float64(n)
			v := float64(j) / float64(n)
			x := u * math.Sqrt(1-v*v/2)
			y := v * math.Sqrt(1-u*u/2)
			id := node(i, j)
			m.X[id] = spec.R * x
			m.Y[id] = spec.R * y
			if i == 0 {
				m.BCs[id] |= spec.AxisX
			}
			if j == 0 {
				m.BCs[id] |= spec.AxisY
			}
			// The logical outer edges u=1 and v=1 both land on the
			// circular arc.
			if i == n || j == n {
				m.BCs[id] |= spec.Arc
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			m.ElNd = append(m.ElNd, [4]int{node(i, j), node(i+1, j), node(i+1, j+1), node(i, j+1)})
			m.Region = append(m.Region, 0)
		}
	}
	m.BuildConnectivity()
	if err := m.Check(); err != nil {
		return nil, err
	}
	return m, nil
}
