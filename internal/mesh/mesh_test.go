package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func mustRect(t testing.TB, nx, ny int) *Mesh {
	t.Helper()
	m, err := Rect(RectSpec{NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRectCounts(t *testing.T) {
	m := mustRect(t, 4, 3)
	if m.NEl != 12 {
		t.Fatalf("NEl = %d, want 12", m.NEl)
	}
	if m.NNd != 20 {
		t.Fatalf("NNd = %d, want 20", m.NNd)
	}
	// horizontal edges: nx*(ny+1)=16, vertical edges: (nx+1)*ny=15.
	if len(m.Faces) != 31 {
		t.Fatalf("faces = %d, want 31", len(m.Faces))
	}
}

func TestRectTotalVolume(t *testing.T) {
	m := mustRect(t, 7, 5)
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-12 {
		t.Fatalf("total volume = %v, want 1", v)
	}
}

func TestRectRejectsBadSpec(t *testing.T) {
	if _, err := Rect(RectSpec{NX: 0, NY: 1, X0: 0, X1: 1, Y0: 0, Y1: 1}); err == nil {
		t.Fatal("NX=0 accepted")
	}
	if _, err := Rect(RectSpec{NX: 2, NY: 2, X0: 1, X1: 0, Y0: 0, Y1: 1}); err == nil {
		t.Fatal("X1<X0 accepted")
	}
}

func TestElementOrientationCCW(t *testing.T) {
	m := mustRect(t, 3, 3)
	for e := 0; e < m.NEl; e++ {
		if v := m.Volume(e); v <= 0 {
			t.Fatalf("element %d area %v not positive", e, v)
		}
	}
}

func TestAdjacencySymmetricAndInterior(t *testing.T) {
	m := mustRect(t, 5, 4)
	interior := 0
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			nb := m.ElEl[e][k]
			if nb < 0 {
				continue
			}
			interior++
			back := false
			for kk := 0; kk < 4; kk++ {
				if m.ElEl[nb][kk] == e {
					back = true
				}
			}
			if !back {
				t.Fatalf("asymmetric adjacency %d->%d", e, nb)
			}
		}
	}
	// Interior adjacency entries = 2 * interior faces = 2*(nx*(ny-1)+(nx-1)*ny) = 2*(5*3+4*4)=62
	if interior != 62 {
		t.Fatalf("interior adjacency entries = %d, want 62", interior)
	}
}

func TestNodeElementCSR(t *testing.T) {
	m := mustRect(t, 4, 4)
	// Corner node 0 has 1 element, edge nodes 2, interior nodes 4.
	els, corners := m.ElementsAround(0)
	if len(els) != 1 || m.ElNd[els[0]][corners[0]] != 0 {
		t.Fatalf("corner node adjacency wrong: %v %v", els, corners)
	}
	// Interior node: pick node at (2,2) = 2*(4+1)+... node index j*(nx+1)+i = 2*5+2 = 12.
	els, _ = m.ElementsAround(12)
	if len(els) != 4 {
		t.Fatalf("interior node has %d elements, want 4", len(els))
	}
}

func TestBoundaryFlags(t *testing.T) {
	m := mustRect(t, 3, 3)
	// Node 0 is bottom-left corner: FixU|FixV.
	if m.BCs[0] != FixU|FixV {
		t.Fatalf("corner BC = %v, want FixU|FixV", m.BCs[0])
	}
	// Mid-bottom node 1: FixV only.
	if m.BCs[1] != FixV {
		t.Fatalf("bottom BC = %v, want FixV", m.BCs[1])
	}
	// An interior node: (1,1) -> 1*4+... nx+1=4, node = 1*4+1 = 5.
	if m.BCs[5] != BCNone {
		t.Fatalf("interior BC = %v, want none", m.BCs[5])
	}
}

func TestFaceListConsistency(t *testing.T) {
	m := mustRect(t, 6, 2)
	boundary, interior := 0, 0
	for _, f := range m.Faces {
		if f.Right < 0 {
			boundary++
		} else {
			interior++
		}
		if f.Left < 0 || f.Left >= m.NEl {
			t.Fatalf("face has bad left element %d", f.Left)
		}
		// N1->N2 must be a CCW edge of Left.
		ok := false
		for k := 0; k < 4; k++ {
			if m.ElNd[f.Left][k] == f.N1 && m.ElNd[f.Left][(k+1)&3] == f.N2 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("face (%d,%d) is not a CCW edge of element %d", f.N1, f.N2, f.Left)
		}
	}
	if boundary != 2*6+2*2 {
		t.Fatalf("boundary faces = %d, want 16", boundary)
	}
	if interior != 6*1+5*2 {
		t.Fatalf("interior faces = %d, want 16", interior)
	}
}

func TestRegionAssignment(t *testing.T) {
	m, err := Rect(RectSpec{
		NX: 10, NY: 2, X0: 0, X1: 1, Y0: 0, Y1: 0.2,
		RegionOf: func(cx, cy float64) int {
			if cx < 0.5 {
				return 0
			}
			return 1
		},
		Walls: DefaultWalls(),
	})
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := 0, 0
	for _, r := range m.Region {
		switch r {
		case 0:
			n0++
		case 1:
			n1++
		default:
			t.Fatalf("unexpected region %d", r)
		}
	}
	if n0 != 10 || n1 != 10 {
		t.Fatalf("regions split %d/%d, want 10/10", n0, n1)
	}
}

func TestSaltzmannDistortKeepsValidMesh(t *testing.T) {
	m, err := Rect(RectSpec{
		NX: 100, NY: 10, X0: 0, X1: 1, Y0: 0, Y1: 0.1,
		Distort: NewSaltzmannDistort(0.1, 0.01),
		Walls:   DefaultWalls(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < m.NEl; e++ {
		if m.Volume(e) <= 0 {
			t.Fatalf("distorted element %d inverted", e)
		}
	}
	if m.MinNodeSpacing() <= 0 {
		t.Fatal("non-positive node spacing after distortion")
	}
}

func TestCheckDetectsBadNodeIndex(t *testing.T) {
	m := mustRect(t, 2, 2)
	m.ElNd[0][0] = 999
	if err := m.Check(); err == nil {
		t.Fatal("Check accepted out-of-range node index")
	}
}

func TestCheckDetectsInvertedElement(t *testing.T) {
	m := mustRect(t, 2, 2)
	// Swap two nodes to invert element 0.
	m.ElNd[0][1], m.ElNd[0][3] = m.ElNd[0][3], m.ElNd[0][1]
	if err := m.Check(); err == nil {
		t.Fatal("Check accepted inverted element")
	}
}

func TestEulerCharacteristicProperty(t *testing.T) {
	f := func(nxr, nyr uint8) bool {
		nx := int(nxr%12) + 1
		ny := int(nyr%12) + 1
		m, err := Rect(RectSpec{NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: DefaultWalls()})
		if err != nil {
			return false
		}
		return m.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVolumePartitionProperty(t *testing.T) {
	// Sum of element volumes equals domain area for arbitrary sizes.
	f := func(nxr, nyr uint8) bool {
		nx := int(nxr%10) + 1
		ny := int(nyr%10) + 1
		m, err := Rect(RectSpec{NX: nx, NY: ny, X0: -1, X1: 3, Y0: 2, Y1: 4, Walls: DefaultWalls()})
		if err != nil {
			return false
		}
		return math.Abs(m.TotalVolume()-8) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	m := mustRect(t, 3, 2)
	c := m.Clone()
	c.X[0] = 42
	c.ElNd[0][0] = 7
	if m.X[0] == 42 || m.ElNd[0][0] == 7 {
		t.Fatal("Clone shares storage with original")
	}
	if err := m.Check(); err != nil {
		t.Fatalf("original corrupted after clone mutation: %v", err)
	}
}

func TestGatherCoords(t *testing.T) {
	m := mustRect(t, 2, 2)
	var x, y [4]float64
	m.GatherCoords(0, &x, &y)
	if x[0] != 0 || y[0] != 0 || x[1] != 0.5 || y[2] != 0.5 {
		t.Fatalf("gathered coords wrong: %v %v", x, y)
	}
}

func TestMinNodeSpacing(t *testing.T) {
	m, _ := Rect(RectSpec{NX: 4, NY: 2, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: DefaultWalls()})
	if s := m.MinNodeSpacing(); math.Abs(s-0.25) > 1e-14 {
		t.Fatalf("min spacing = %v, want 0.25", s)
	}
}

// TestNdCornerTransposeRoundTrip is the property test for the
// node→corner CSR transpose: scattering each corner slot 4*e+k to node
// ElNd[e][k] and gathering each node's NdCorner ring must visit exactly
// the same corner set, and each ring must ascend in (element, corner)
// order — the invariant that makes the gather-formulated acceleration
// bitwise-identical to the element-ordered scatter.
func TestNdCornerTransposeRoundTrip(t *testing.T) {
	prop := func(nxRaw, nyRaw uint8) bool {
		nx := int(nxRaw%12) + 1
		ny := int(nyRaw%12) + 1
		m := mustRect(t, nx, ny)
		if len(m.NdCorner) != 4*m.NEl {
			return false
		}
		// Gather side: every ring entry names a corner of an element
		// that really touches the node, ascending.
		seen := make([]bool, 4*m.NEl)
		for n := 0; n < m.NNd; n++ {
			prev := -1
			for _, ci := range m.NdCorner[m.NdElStart[n]:m.NdElStart[n+1]] {
				if ci <= prev { // ascending ⇒ also no duplicates
					return false
				}
				prev = ci
				e, k := ci/4, ci%4
				if m.ElNd[e][k] != n {
					return false
				}
				seen[ci] = true
			}
		}
		// Scatter side: every corner slot was gathered by exactly one node.
		for ci, ok := range seen {
			if !ok {
				t.Logf("corner slot %d missing from every ring", ci)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
