// Package mesh implements BookLeaf's unstructured 2-D quadrilateral
// mesh: storage, connectivity (element↔node, node→element, element↔
// element across faces, explicit face list), boundary-condition flags,
// generators for the four test problems, and consistency checking.
//
// The mesh is "unstructured" in the BookLeaf sense: although the
// generators produce logically rectangular meshes, nothing downstream
// relies on structure — all kernels walk flat connectivity arrays, the
// number of elements around a node is arbitrary, and partitioned
// sub-meshes with ghost layers are just meshes whose owned entities form
// a prefix of the numbering.
package mesh

import (
	"fmt"
	"math"

	"bookleaf/internal/geom"
)

// BC is a per-node boundary-condition bitmask.
type BC uint8

// Boundary-condition flags. FixU/FixV zero the corresponding velocity
// component after the acceleration calculation (reflective walls);
// Piston marks nodes whose velocity is prescribed by the problem driver
// (Saltzmann's moving wall).
const (
	BCNone BC = 0
	FixU   BC = 1 << iota
	FixV
	Piston
	// FrozenVel pins a node's velocity at its initial value — the
	// far-field inflow condition of the Noh problem, whose exact
	// pre-shock solution has constant velocity along node paths.
	FrozenVel
)

// Face is one mesh face (edge shared by at most two elements). Left is
// the element for which the face runs counter-clockwise from N1 to N2;
// Right is the neighbour, or -1 on the domain boundary.
type Face struct {
	N1, N2      int
	Left, Right int
}

// Mesh holds the connectivity and coordinates of an unstructured quad
// mesh. All slices indexed by element have length NEl; by node, NNd.
type Mesh struct {
	NEl, NNd int

	// ElNd lists the four nodes of each element, counter-clockwise.
	ElNd [][4]int
	// ElEl lists, for each element, the neighbouring element across
	// edge k (node k to node k+1), or -1 at a boundary.
	ElEl [][4]int
	// Faces is the unique face list.
	Faces []Face

	// Node→element adjacency in CSR form: the elements around node n
	// are NdElList[NdElStart[n]:NdElStart[n+1]], with NdElCorner
	// giving the corner index of n within each such element.
	NdElStart  []int
	NdElList   []int
	NdElCorner []int
	// NdCorner aligns with NdElList: entry i is the flat corner-slot
	// index 4*NdElList[i] + NdElCorner[i], i.e. the node→corner CSR
	// transpose of ElNd. The acceleration gather sums a node's incident
	// corner forces with one indexed read per corner through this
	// array. Entries for a node ascend in (element, corner) order —
	// the same order an element-ordered scatter would accumulate them —
	// so gather sums are bitwise-identical to the reference scatter at
	// any thread count.
	NdCorner []int

	// X, Y are node coordinates.
	X, Y []float64

	// Region is the per-element region (material) index.
	Region []int

	// BCs is the per-node boundary-condition mask.
	BCs []BC

	// Ownership for partitioned meshes: elements [0,NOwnEl) and nodes
	// [0,NOwnNd) are owned; the rest are ghosts. A serial mesh owns
	// everything.
	NOwnEl, NOwnNd int

	// GlobalEl / GlobalNd map local indices to global ones for
	// partitioned meshes; nil on serial meshes.
	GlobalEl, GlobalNd []int
}

// GatherCoords copies the coordinates of element e's nodes into x, y.
func (m *Mesh) GatherCoords(e int, x, y *[4]float64) {
	nd := &m.ElNd[e]
	for k := 0; k < 4; k++ {
		x[k] = m.X[nd[k]]
		y[k] = m.Y[nd[k]]
	}
}

// Volume returns the area of element e from current coordinates.
func (m *Mesh) Volume(e int) float64 {
	var x, y [4]float64
	m.GatherCoords(e, &x, &y)
	return geom.Area(&x, &y)
}

// TotalVolume returns the summed area of owned elements.
func (m *Mesh) TotalVolume() float64 {
	var sum float64
	for e := 0; e < m.NOwnEl; e++ {
		sum += m.Volume(e)
	}
	return sum
}

// ElementsAround returns the (elements, corners) adjacency of node n.
func (m *Mesh) ElementsAround(n int) (els, corners []int) {
	lo, hi := m.NdElStart[n], m.NdElStart[n+1]
	return m.NdElList[lo:hi], m.NdElCorner[lo:hi]
}

// BuildConnectivity derives ElEl, Faces and the node→element CSR from
// ElNd. Generators and the partitioner call this after assembling ElNd,
// X, Y.
func (m *Mesh) BuildConnectivity() {
	m.NEl = len(m.ElNd)
	m.NNd = len(m.X)
	if m.NOwnEl == 0 {
		m.NOwnEl = m.NEl
	}
	if m.NOwnNd == 0 {
		m.NOwnNd = m.NNd
	}

	// Node→element CSR.
	counts := make([]int, m.NNd+1)
	for e := range m.ElNd {
		for k := 0; k < 4; k++ {
			counts[m.ElNd[e][k]+1]++
		}
	}
	for n := 0; n < m.NNd; n++ {
		counts[n+1] += counts[n]
	}
	m.NdElStart = counts
	total := counts[m.NNd]
	m.NdElList = make([]int, total)
	m.NdElCorner = make([]int, total)
	m.NdCorner = make([]int, total)
	fill := make([]int, m.NNd)
	for e := range m.ElNd {
		for k := 0; k < 4; k++ {
			n := m.ElNd[e][k]
			idx := m.NdElStart[n] + fill[n]
			m.NdElList[idx] = e
			m.NdElCorner[idx] = k
			m.NdCorner[idx] = 4*e + k
			fill[n]++
		}
	}

	// Element↔element adjacency and face list via an edge map keyed on
	// the (min,max) node pair.
	type edgeKey struct{ a, b int }
	type edgeVal struct{ el, side int }
	edges := make(map[edgeKey]edgeVal, 2*m.NEl)
	m.ElEl = make([][4]int, m.NEl)
	m.Faces = m.Faces[:0]
	for e := range m.ElNd {
		for k := 0; k < 4; k++ {
			m.ElEl[e][k] = -1
		}
	}
	for e := range m.ElNd {
		for k := 0; k < 4; k++ {
			n1 := m.ElNd[e][k]
			n2 := m.ElNd[e][(k+1)&3]
			key := edgeKey{n1, n2}
			if key.a > key.b {
				key.a, key.b = key.b, key.a
			}
			if prev, ok := edges[key]; ok {
				m.ElEl[e][k] = prev.el
				m.ElEl[prev.el][prev.side] = e
				m.Faces = append(m.Faces, Face{N1: m.ElNd[prev.el][prev.side], N2: m.ElNd[prev.el][(prev.side+1)&3], Left: prev.el, Right: e})
				delete(edges, key)
			} else {
				edges[key] = edgeVal{e, k}
			}
		}
	}
	// Remaining edges are boundary faces.
	for key, v := range edges {
		_ = key
		m.Faces = append(m.Faces, Face{N1: m.ElNd[v.el][v.side], N2: m.ElNd[v.el][(v.side+1)&3], Left: v.el, Right: -1})
	}
}

// Check validates mesh invariants: index ranges, positive element areas,
// symmetric element adjacency, node→element inverse consistency, and
// the Euler characteristic V - E + F = 1 for a simply-connected planar
// mesh (faces not counting the outer region).
func (m *Mesh) Check() error {
	if m.NEl != len(m.ElNd) || m.NNd != len(m.X) || len(m.X) != len(m.Y) {
		return fmt.Errorf("mesh: size mismatch NEl=%d len(ElNd)=%d NNd=%d len(X)=%d len(Y)=%d",
			m.NEl, len(m.ElNd), m.NNd, len(m.X), len(m.Y))
	}
	for e := range m.ElNd {
		for k := 0; k < 4; k++ {
			n := m.ElNd[e][k]
			if n < 0 || n >= m.NNd {
				return fmt.Errorf("mesh: element %d corner %d references node %d outside [0,%d)", e, k, n, m.NNd)
			}
		}
		if v := m.Volume(e); v <= 0 {
			return fmt.Errorf("mesh: element %d has non-positive area %v", e, v)
		}
	}
	for e := range m.ElEl {
		for k := 0; k < 4; k++ {
			nb := m.ElEl[e][k]
			if nb < 0 {
				continue
			}
			found := false
			for kk := 0; kk < 4; kk++ {
				if m.ElEl[nb][kk] == e {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("mesh: adjacency not symmetric between elements %d and %d", e, nb)
			}
		}
	}
	if len(m.NdCorner) != len(m.NdElList) {
		return fmt.Errorf("mesh: NdCorner sized %d, NdElList %d", len(m.NdCorner), len(m.NdElList))
	}
	for n := 0; n < m.NNd; n++ {
		els, corners := m.ElementsAround(n)
		lo := m.NdElStart[n]
		for i, e := range els {
			if m.ElNd[e][corners[i]] != n {
				return fmt.Errorf("mesh: node %d CSR entry (el %d corner %d) inconsistent", n, e, corners[i])
			}
			if m.NdCorner[lo+i] != 4*e+corners[i] {
				return fmt.Errorf("mesh: node %d corner-slot entry %d = %d, want %d", n, i, m.NdCorner[lo+i], 4*e+corners[i])
			}
			if i > 0 && m.NdCorner[lo+i] <= m.NdCorner[lo+i-1] {
				return fmt.Errorf("mesh: node %d corner slots not ascending", n)
			}
		}
	}
	// Euler characteristic (serial simply-connected meshes only).
	if m.GlobalEl == nil {
		edges := make(map[[2]int]struct{}, 2*m.NEl)
		for e := range m.ElNd {
			for k := 0; k < 4; k++ {
				a, b := m.ElNd[e][k], m.ElNd[e][(k+1)&3]
				if a > b {
					a, b = b, a
				}
				edges[[2]int{a, b}] = struct{}{}
			}
		}
		if chi := m.NNd - len(edges) + m.NEl; chi != 1 {
			return fmt.Errorf("mesh: Euler characteristic V-E+F = %d, want 1", chi)
		}
	}
	return nil
}

// Distort is a coordinate transform applied by generators.
type Distort func(x, y float64) (float64, float64)

// RectSpec describes a generated rectangular region mesh.
type RectSpec struct {
	NX, NY         int     // cells in x and y
	X0, X1, Y0, Y1 float64 // domain extent
	// RegionOf assigns a region index from the undistorted cell
	// centre; nil means region 0 everywhere.
	RegionOf func(cx, cy float64) int
	// Distort remaps node coordinates (Saltzmann); nil for none.
	Distort Distort
	// WallBC controls reflective-wall flags on the four domain edges
	// (left, right, bottom, top). Generators default to all reflective
	// when nil is passed to Rect via DefaultWalls.
	Walls WallSpec
}

// WallSpec selects the boundary condition on each domain wall.
type WallSpec struct {
	Left, Right, Bottom, Top BC
}

// DefaultWalls gives reflective conditions on all four walls: vertical
// walls fix u, horizontal walls fix v.
func DefaultWalls() WallSpec {
	return WallSpec{Left: FixU, Right: FixU, Bottom: FixV, Top: FixV}
}

// Rect generates an NX×NY quadrilateral mesh of [X0,X1]×[Y0,Y1].
func Rect(spec RectSpec) (*Mesh, error) {
	if spec.NX < 1 || spec.NY < 1 {
		return nil, fmt.Errorf("mesh: Rect needs NX,NY >= 1, got %d,%d", spec.NX, spec.NY)
	}
	if !(spec.X1 > spec.X0) || !(spec.Y1 > spec.Y0) {
		return nil, fmt.Errorf("mesh: Rect needs X1>X0 and Y1>Y0, got [%v,%v]x[%v,%v]",
			spec.X0, spec.X1, spec.Y0, spec.Y1)
	}
	nx, ny := spec.NX, spec.NY
	nnd := (nx + 1) * (ny + 1)
	nel := nx * ny
	m := &Mesh{
		ElNd:   make([][4]int, 0, nel),
		X:      make([]float64, nnd),
		Y:      make([]float64, nnd),
		Region: make([]int, 0, nel),
		BCs:    make([]BC, nnd),
	}
	dx := (spec.X1 - spec.X0) / float64(nx)
	dy := (spec.Y1 - spec.Y0) / float64(ny)
	node := func(i, j int) int { return j*(nx+1) + i }
	for j := 0; j <= ny; j++ {
		for i := 0; i <= nx; i++ {
			x := spec.X0 + float64(i)*dx
			y := spec.Y0 + float64(j)*dy
			if spec.Distort != nil {
				x, y = spec.Distort(x, y)
			}
			n := node(i, j)
			m.X[n], m.Y[n] = x, y
			if i == 0 {
				m.BCs[n] |= spec.Walls.Left
			}
			if i == nx {
				m.BCs[n] |= spec.Walls.Right
			}
			if j == 0 {
				m.BCs[n] |= spec.Walls.Bottom
			}
			if j == ny {
				m.BCs[n] |= spec.Walls.Top
			}
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			m.ElNd = append(m.ElNd, [4]int{node(i, j), node(i+1, j), node(i+1, j+1), node(i, j+1)})
			reg := 0
			if spec.RegionOf != nil {
				cx := spec.X0 + (float64(i)+0.5)*dx
				cy := spec.Y0 + (float64(j)+0.5)*dy
				reg = spec.RegionOf(cx, cy)
			}
			m.Region = append(m.Region, reg)
		}
	}
	m.BuildConnectivity()
	if err := m.Check(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewSaltzmannDistort is the classic Saltzmann mesh skew for a domain
// of height h: rows are sheared by amplitude·(h - y)/h·sin(πx), which
// leaves the top wall straight, skews interior lines, and produces the
// distorted mesh that excites hourglass modes.
func NewSaltzmannDistort(h, amplitude float64) Distort {
	return func(x, y float64) (float64, float64) {
		return x + amplitude*(h-y)/h*math.Sin(math.Pi*x), y
	}
}

// MinNodeSpacing returns the smallest edge length in the mesh — useful
// for sanity checks after distortion.
func (m *Mesh) MinNodeSpacing() float64 {
	min := math.Inf(1)
	var x, y, l [4]float64
	for e := 0; e < m.NEl; e++ {
		m.GatherCoords(e, &x, &y)
		geom.SideLengths(&x, &y, &l)
		for k := 0; k < 4; k++ {
			if l[k] < min {
				min = l[k]
			}
		}
	}
	return min
}

// Clone returns a deep copy of the mesh (coordinates and connectivity).
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{
		NEl: m.NEl, NNd: m.NNd,
		NOwnEl: m.NOwnEl, NOwnNd: m.NOwnNd,
	}
	c.ElNd = append([][4]int(nil), m.ElNd...)
	c.ElEl = append([][4]int(nil), m.ElEl...)
	c.Faces = append([]Face(nil), m.Faces...)
	c.NdElStart = append([]int(nil), m.NdElStart...)
	c.NdElList = append([]int(nil), m.NdElList...)
	c.NdElCorner = append([]int(nil), m.NdElCorner...)
	c.NdCorner = append([]int(nil), m.NdCorner...)
	c.X = append([]float64(nil), m.X...)
	c.Y = append([]float64(nil), m.Y...)
	c.Region = append([]int(nil), m.Region...)
	c.BCs = append([]BC(nil), m.BCs...)
	if m.GlobalEl != nil {
		c.GlobalEl = append([]int(nil), m.GlobalEl...)
	}
	if m.GlobalNd != nil {
		c.GlobalNd = append([]int(nil), m.GlobalNd...)
	}
	return c
}
