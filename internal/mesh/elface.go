package mesh

// ElemFaces builds the element→face incidence in CSR form: the
// interior faces touching element e are list[start[e]:start[e+1]], in
// ascending face-index order. Boundary faces (Right < 0) carry no
// cross-element flux and are omitted.
//
// The ascending order is load-bearing for the parallel remap: the
// serial face-flux loop walks m.Faces in index order, so a per-element
// gather that replays each element's incident faces in the same order
// accumulates its corner-mass and energy deltas in the exact arithmetic
// sequence of the serial scatter (see DESIGN.md §11).
func (m *Mesh) ElemFaces() (start, list []int) {
	start = make([]int, m.NEl+1)
	for _, f := range m.Faces {
		if f.Right < 0 {
			continue
		}
		start[f.Left+1]++
		start[f.Right+1]++
	}
	for e := 0; e < m.NEl; e++ {
		start[e+1] += start[e]
	}
	list = make([]int, start[m.NEl])
	fill := make([]int, m.NEl)
	for i, f := range m.Faces {
		if f.Right < 0 {
			continue
		}
		list[start[f.Left]+fill[f.Left]] = i
		fill[f.Left]++
		list[start[f.Right]+fill[f.Right]] = i
		fill[f.Right]++
	}
	return start, list
}
