package config

import (
	"strings"
	"testing"
)

const sample = `
# a comment
[control]
problem = sod       # trailing comment
nx = 200
ny = 4
tend = 0.25
verbose = true

[ale]
mode = eulerian
freq = 2
firstorder = .false.
`

func TestParseAndGetters(t *testing.T) {
	d, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String("control", "problem", ""); got != "sod" {
		t.Fatalf("problem = %q", got)
	}
	if n, err := d.Int("control", "nx", 0); err != nil || n != 200 {
		t.Fatalf("nx = %d, %v", n, err)
	}
	if f, err := d.Float("control", "tend", 0); err != nil || f != 0.25 {
		t.Fatalf("tend = %v, %v", f, err)
	}
	if b, err := d.Bool("control", "verbose", false); err != nil || !b {
		t.Fatalf("verbose = %v, %v", b, err)
	}
	if b, err := d.Bool("ale", "firstorder", true); err != nil || b {
		t.Fatalf("fortran .false. not handled: %v %v", b, err)
	}
}

func TestDefaultsWhenAbsent(t *testing.T) {
	d, _ := ParseString(sample)
	if got := d.String("control", "missing", "dflt"); got != "dflt" {
		t.Fatalf("default string = %q", got)
	}
	if n, err := d.Int("nosection", "x", 7); err != nil || n != 7 {
		t.Fatalf("default int = %d, %v", n, err)
	}
}

func TestCaseInsensitive(t *testing.T) {
	d, err := ParseString("[Control]\nNX = 5\n")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Int("control", "nx", 0); n != 5 {
		t.Fatalf("case-insensitive lookup failed: %d", n)
	}
}

func TestTypeErrors(t *testing.T) {
	d, _ := ParseString("[a]\nx = hello\n")
	if _, err := d.Int("a", "x", 0); err == nil {
		t.Fatal("non-integer accepted")
	}
	if _, err := d.Float("a", "x", 0); err == nil {
		t.Fatal("non-float accepted")
	}
	if _, err := d.Bool("a", "x", false); err == nil {
		t.Fatal("non-bool accepted")
	}
}

func TestMalformedDecks(t *testing.T) {
	bad := []string{
		"[unclosed\nx = 1\n",
		"x = 1\n", // key before any section
		"[a]\nnovalue\n",
		"[a]\n= 3\n",
		"[a]\nx = 1\nx = 2\n", // duplicate
	}
	for _, deck := range bad {
		if _, err := ParseString(deck); err == nil {
			t.Fatalf("malformed deck accepted: %q", deck)
		}
	}
}

func TestUnusedReportsTypos(t *testing.T) {
	d, _ := ParseString("[control]\nnx = 3\nnz = 9\n")
	if _, err := d.Int("control", "nx", 0); err != nil {
		t.Fatal(err)
	}
	unused := d.Unused()
	if len(unused) != 1 || unused[0] != "control.nz" {
		t.Fatalf("unused = %v, want [control.nz]", unused)
	}
}

func TestSections(t *testing.T) {
	d, _ := ParseString(sample)
	secs := d.Sections()
	if strings.Join(secs, ",") != "ale,control" {
		t.Fatalf("sections = %v", secs)
	}
}

func TestBangComments(t *testing.T) {
	d, err := ParseString("[a]\nx = 4 ! fortran comment\n! full line\n")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Int("a", "x", 0); n != 4 {
		t.Fatalf("x = %d", n)
	}
}
