// Package config parses BookLeaf input decks. The reference
// implementation reads Fortran namelists; this package accepts the
// moral equivalent — INI-style sections of key = value lines with #
// or ! comments — and exposes typed getters with defaults.
//
//	# sod.deck
//	[control]
//	problem = sod
//	nx = 200
//	ny = 4
//	[ale]
//	mode = eulerian
package config

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Deck is a parsed input deck.
type Deck struct {
	sections map[string]map[string]string
	// read tracks accessed keys so Unused can flag typos.
	read map[string]bool
}

// Parse reads a deck from r.
func Parse(r io.Reader) (*Deck, error) {
	d := &Deck{
		sections: make(map[string]map[string]string),
		read:     make(map[string]bool),
	}
	scanner := bufio.NewScanner(r)
	section := ""
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		// Strip comments (# and the Fortran-namelist-flavoured !).
		if i := strings.IndexAny(line, "#!"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") || len(line) < 3 {
				return nil, fmt.Errorf("config: line %d: malformed section header %q", lineNo, line)
			}
			section = strings.ToLower(strings.TrimSpace(line[1 : len(line)-1]))
			if _, dup := d.sections[section]; !dup {
				d.sections[section] = make(map[string]string)
			}
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("config: line %d: expected key = value, got %q", lineNo, line)
		}
		if section == "" {
			return nil, fmt.Errorf("config: line %d: key outside any [section]", lineNo)
		}
		key := strings.ToLower(strings.TrimSpace(line[:eq]))
		val := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("config: line %d: empty key", lineNo)
		}
		if _, dup := d.sections[section][key]; dup {
			return nil, fmt.Errorf("config: line %d: duplicate key %s.%s", lineNo, section, key)
		}
		d.sections[section][key] = val
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return d, nil
}

// ParseString parses a deck held in a string.
func ParseString(s string) (*Deck, error) {
	return Parse(strings.NewReader(s))
}

// ErrTooLarge is matched (via errors.Is) by the error ParseLimit
// returns when the input exceeds its byte budget.
var ErrTooLarge = errors.New("config: deck too large")

// ParseLimit parses a deck from r, reading at most max bytes. It is
// the entry point for untrusted sources (the bleaf-served submission
// endpoint): a deck is a few hundred bytes of key = value lines, so a
// megabyte-scale body is garbage by construction and is rejected with
// ErrTooLarge before any of it is retained.
func ParseLimit(r io.Reader, max int64) (*Deck, error) {
	if max <= 0 {
		return Parse(r)
	}
	lr := &io.LimitedReader{R: r, N: max + 1}
	d, err := Parse(lr)
	if lr.N <= 0 {
		return nil, fmt.Errorf("%w (over %d bytes)", ErrTooLarge, max)
	}
	return d, err
}

func (d *Deck) lookup(section, key string) (string, bool) {
	sec, ok := d.sections[strings.ToLower(section)]
	if !ok {
		return "", false
	}
	v, ok := sec[strings.ToLower(key)]
	if ok {
		d.read[strings.ToLower(section)+"."+strings.ToLower(key)] = true
	}
	return v, ok
}

// String returns the value of section.key, or def when absent.
func (d *Deck) String(section, key, def string) string {
	if v, ok := d.lookup(section, key); ok {
		return v
	}
	return def
}

// Int returns section.key parsed as an int.
func (d *Deck) Int(section, key string, def int) (int, error) {
	v, ok := d.lookup(section, key)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("config: %s.%s = %q is not an integer", section, key, v)
	}
	return n, nil
}

// Float returns section.key parsed as a float64.
func (d *Deck) Float(section, key string, def float64) (float64, error) {
	v, ok := d.lookup(section, key)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("config: %s.%s = %q is not a number", section, key, v)
	}
	return f, nil
}

// Bool returns section.key parsed as a boolean (true/false/yes/no/1/0).
func (d *Deck) Bool(section, key string, def bool) (bool, error) {
	v, ok := d.lookup(section, key)
	if !ok {
		return def, nil
	}
	switch strings.ToLower(v) {
	case "true", "yes", "on", "1", ".true.":
		return true, nil
	case "false", "no", "off", "0", ".false.":
		return false, nil
	}
	return false, fmt.Errorf("config: %s.%s = %q is not a boolean", section, key, v)
}

// Duration returns section.key parsed as a Go duration ("250ms", "2s").
// A bare number is rejected — the unit keeps decks self-documenting.
func (d *Deck) Duration(section, key string, def time.Duration) (time.Duration, error) {
	v, ok := d.lookup(section, key)
	if !ok {
		return def, nil
	}
	dur, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("config: %s.%s = %q is not a duration (use e.g. 250ms, 2s)", section, key, v)
	}
	return dur, nil
}

// Has reports whether the deck contains the named section (even an
// empty one), without marking any key as read.
func (d *Deck) Has(section string) bool {
	_, ok := d.sections[strings.ToLower(section)]
	return ok
}

// Unused returns the sorted list of keys that were parsed but never
// read — almost always typos in the deck.
func (d *Deck) Unused() []string {
	var out []string
	for sec, kv := range d.sections {
		for k := range kv {
			if !d.read[sec+"."+k] {
				out = append(out, sec+"."+k)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Sections returns the sorted section names.
func (d *Deck) Sections() []string {
	var out []string
	for s := range d.sections {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
