package config

// Native fuzz target for the deck parser. Run at length with
//
//	make fuzz    # or: go test -fuzz=FuzzParseDeck ./internal/config
//
// The seed corpus is the shipped decks plus edge cases around every
// explicit error path (malformed headers, keys outside sections,
// duplicates, comment stripping).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseDeck asserts parser totality and self-consistency on
// arbitrary input: no panics, and on accepted decks every typed
// getter is callable, Sections/Unused are sorted and consistent, and
// re-parsing a reconstructed deck accepts again (parse idempotence on
// the surviving structure).
func FuzzParseDeck(f *testing.F) {
	decks, err := filepath.Glob(filepath.Join("..", "..", "decks", "*.deck"))
	if err != nil || len(decks) == 0 {
		f.Fatalf("no seed decks found: %v", err)
	}
	for _, path := range decks {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(raw))
	}
	f.Add("[control]\nproblem = sod\nnx = 200")
	f.Add("[a]\nk=v\n[a]\nother=1")   // reopened section
	f.Add("[]\n")                     // malformed header
	f.Add("key = outside")            // key outside a section
	f.Add("[s]\nk=1\nk=2")            // duplicate key
	f.Add("[s]\nk = v # comment")     // comment stripping
	f.Add("[s]\nk = .true. ! f90ish") // Fortran-flavoured bool + comment
	f.Add("[s]\n= novalue")           // empty key
	f.Add("[s]\nk = 1e308\nj = -0")   // numeric extremes

	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseString(input)
		if err != nil {
			if d != nil {
				t.Fatal("non-nil deck alongside parse error")
			}
			return
		}
		secs := d.Sections()
		for i := 1; i < len(secs); i++ {
			if secs[i-1] >= secs[i] {
				t.Fatalf("Sections not sorted/unique: %v", secs)
			}
		}
		// Typed getters must never panic, whatever the values hold.
		for _, s := range secs {
			d.String(s, "problem", "")
			if _, err := d.Int(s, "nx", 0); err != nil &&
				!strings.Contains(err.Error(), "not an integer") {
				t.Fatalf("Int error has wrong shape: %v", err)
			}
			d.Float(s, "tend", 0)
			d.Bool(s, "enabled", false)
		}
		// Unused keys are exactly the parsed keys nobody read above;
		// the list must come back sorted and dot-joined.
		unused := d.Unused()
		for i, uk := range unused {
			if !strings.Contains(uk, ".") {
				t.Fatalf("unused key %q is not section.key", uk)
			}
			if i > 0 && unused[i-1] > uk {
				t.Fatalf("Unused not sorted: %v", unused)
			}
		}
		// A deck reconstructed from what the parser kept must parse.
		var sb strings.Builder
		for _, s := range secs {
			if s == "" { // "[ ]" parses to an empty name that cannot round-trip
				continue
			}
			sb.WriteString("[" + s + "]\n")
		}
		if utf8.ValidString(input) {
			if _, err := ParseString(sb.String()); err != nil {
				t.Fatalf("reconstructed section list rejected: %v", err)
			}
		}
	})
}
