package par

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestForChunksTiledCoversRangeExactlyOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 7} {
		for _, n := range []int{0, 1, 5, 100, 1023, 4096} {
			for _, tile := range []int{-1, 0, 1, 7, 64, 100000} {
				p := New(threads)
				var mu sync.Mutex
				hits := make([]int, n)
				p.ForChunksTiled(n, tile, func(c, lo, hi int) {
					mu.Lock()
					for i := lo; i < hi; i++ {
						hits[i]++
					}
					mu.Unlock()
				})
				p.Close()
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("threads=%d n=%d tile=%d: index %d visited %d times", threads, n, tile, i, h)
					}
				}
			}
		}
	}
}

// TestForChunksTiledSubdividesChunks pins the scheduling contract the
// fused hydro kernels rely on: tiles never cross a chunk boundary, run
// in ascending order within their chunk, carry the chunk's own index
// (so per-chunk reduction slots stay race-free), and no tile exceeds
// the requested width.
func TestForChunksTiledSubdividesChunks(t *testing.T) {
	for _, threads := range []int{2, 4, 8} {
		p := New(threads)
		n, tile := 4999, 64
		nch := p.NumChunks(n)
		var mu sync.Mutex
		lastHi := make(map[int]int, nch)
		p.ForChunksTiled(n, tile, func(c, lo, hi int) {
			wlo, whi := chunkRange(n, nch, c)
			mu.Lock()
			defer mu.Unlock()
			if lo < wlo || hi > whi {
				t.Errorf("threads=%d: tile [%d,%d) escapes chunk %d = [%d,%d)", threads, lo, hi, c, wlo, whi)
			}
			if hi-lo > tile {
				t.Errorf("threads=%d: tile [%d,%d) wider than %d", threads, lo, hi, tile)
			}
			prev, seen := lastHi[c]
			if !seen {
				prev = wlo
			}
			if lo != prev {
				t.Errorf("threads=%d chunk %d: tile starts at %d, want %d (ascending, contiguous)", threads, c, lo, prev)
			}
			lastHi[c] = hi
		})
		p.Close()
		for c := 0; c < nch; c++ {
			_, whi := chunkRange(n, nch, c)
			if lastHi[c] != whi {
				t.Fatalf("threads=%d chunk %d: tiles end at %d, want %d", threads, c, lastHi[c], whi)
			}
		}
	}
}

func TestReduceMin2MatchesTwoReduceMins(t *testing.T) {
	vals1 := []float64{5, 3, 8, 3, -1, 7, -1, 2, 9, 4, 0, 6}
	vals2 := []float64{2, 9, 1, 4, 6, 1, 3, 8, 1, 5, 7, 0}
	for _, threads := range []int{1, 2, 3, 8, 20} {
		p := New(threads)
		w1, wa1 := p.ReduceMin(len(vals1), func(i int) float64 { return vals1[i] })
		w2, wa2 := p.ReduceMin(len(vals2), func(i int) float64 { return vals2[i] })
		g1, ga1, g2, ga2 := p.ReduceMin2(len(vals1), func(i int) (float64, float64) {
			return vals1[i], vals2[i]
		})
		p.Close()
		if g1 != w1 || ga1 != wa1 || g2 != w2 || ga2 != wa2 {
			t.Fatalf("threads=%d: ReduceMin2 = (%v,%d,%v,%d), want (%v,%d,%v,%d)",
				threads, g1, ga1, g2, ga2, w1, wa1, w2, wa2)
		}
	}
}

func TestReduceMin2Empty(t *testing.T) {
	v1, a1, v2, a2 := New(4).ReduceMin2(0, func(int) (float64, float64) { return 0, 0 })
	if !math.IsInf(v1, 1) || a1 != -1 || !math.IsInf(v2, 1) || a2 != -1 {
		t.Fatalf("empty ReduceMin2 = (%v,%d,%v,%d), want (+Inf,-1,+Inf,-1)", v1, a1, v2, a2)
	}
}

func TestReduceMin2TieBreaksLowestIndexIndependently(t *testing.T) {
	vals1 := []float64{4, 1, 2, 1, 1}
	vals2 := []float64{3, 3, 0, 0, 9}
	for _, threads := range []int{1, 2, 5} {
		_, a1, _, a2 := New(threads).ReduceMin2(len(vals1), func(i int) (float64, float64) {
			return vals1[i], vals2[i]
		})
		if a1 != 1 || a2 != 2 {
			t.Fatalf("threads=%d: argmins = (%d,%d), want (1,2)", threads, a1, a2)
		}
	}
}

func TestReduceMin2PropertyAgainstSerial(t *testing.T) {
	f := func(raw []float64, threads uint8) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		v1s, v2s := make([]float64, half), make([]float64, half)
		for i := 0; i < half; i++ {
			a, b := raw[i], raw[half+i]
			if math.IsNaN(a) {
				a = 0
			}
			if math.IsNaN(b) {
				b = 0
			}
			v1s[i], v2s[i] = a, b
		}
		op := func(i int) (float64, float64) { return v1s[i], v2s[i] }
		s1, sa1, s2, sa2 := New(1).ReduceMin2(half, op)
		p1, pa1, p2, pa2 := New(int(threads%16)+1).ReduceMin2(half, op)
		return s1 == p1 && sa1 == pa1 && s2 == p2 && sa2 == pa2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTileForBudget(t *testing.T) {
	for _, tc := range []struct{ bytes, want int }{
		{0, minChunkIters},       // degenerate: floor
		{-8, minChunkIters},      // degenerate: floor
		{1 << 20, minChunkIters}, // enormous iteration: floor
		{8, (L2PerCore / 2) / 8}, // 32768, already a multiple of 128
		{336, 768},               // fused-update-sized iteration
		{100, 2560},              // rounds down to a multiple of 128
	} {
		if got := TileFor(tc.bytes); got != tc.want {
			t.Errorf("TileFor(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
	for bytes := 1; bytes < 4096; bytes += 13 {
		w := TileFor(bytes)
		if w < minChunkIters {
			t.Fatalf("TileFor(%d) = %d below minChunkIters", bytes, w)
		}
		if w%minChunkIters != 0 {
			t.Fatalf("TileFor(%d) = %d not a multiple of minChunkIters", bytes, w)
		}
		if w > minChunkIters && w*bytes > L2PerCore/2 {
			t.Fatalf("TileFor(%d) = %d exceeds the L2 budget", bytes, w)
		}
	}
}

func TestTiledDispatchZeroAllocs(t *testing.T) {
	p := New(4)
	defer p.Close()
	cbody := func(c, lo, hi int) {}
	red2 := func(i int) (float64, float64) { return float64(i), float64(-i) }
	p.ForChunksTiled(4096, 128, cbody) // warm up: spawn workers, size slots
	if n := testing.AllocsPerRun(50, func() { p.ForChunksTiled(4096, 128, cbody) }); n != 0 {
		t.Errorf("ForChunksTiled allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(50, func() { p.ReduceMin2(4096, red2) }); n != 0 {
		t.Errorf("ReduceMin2 allocates %v per call", n)
	}
}

func TestForChunksTiledClosedPoolInline(t *testing.T) {
	p := New(4)
	p.For(1024, func(lo, hi int) {})
	p.Close()
	var tiles int
	prevHi := 0
	p.ForChunksTiled(1000, 256, func(c, lo, hi int) {
		if c != 0 {
			t.Fatalf("closed pool tile carries chunk %d, want 0", c)
		}
		if lo != prevHi {
			t.Fatalf("closed pool tile starts at %d, want %d", lo, prevHi)
		}
		prevHi = hi
		tiles++
	})
	if tiles != 4 || prevHi != 1000 {
		t.Fatalf("closed pool ran %d tiles ending at %d, want 4 ending at 1000", tiles, prevHi)
	}
	v1, a1, v2, a2 := p.ReduceMin2(3, func(i int) (float64, float64) { return float64(i), float64(2 - i) })
	if v1 != 0 || a1 != 0 || v2 != 0 || a2 != 2 {
		t.Fatalf("closed ReduceMin2 = (%v,%d,%v,%d), want (0,0,0,2)", v1, a1, v2, a2)
	}
}
