package par

import (
	"fmt"
	"testing"
)

// The dispatch benchmarks quantify what a parallel region itself costs —
// the wake sends plus the completion barrier — so the chunking threshold
// (minChunkIters) can be judged against measured numbers rather than
// folklore. Sizes bracket the code's real loops: 64 is a boundary-band
// sweep, 512 a small test mesh, 3600 one thread's share of the 120×120
// step-benchmark mesh, 14400 that mesh's full element count.

var benchSizes = []int{64, 512, 3600, 14400}

// BenchmarkDispatchEmpty is the pure overhead floor: an empty body, so
// ns/op is the wake/barrier round trip (or ~0 where the threshold
// collapses the loop to an inline call).
func BenchmarkDispatchEmpty(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		p := New(threads)
		body := func(lo, hi int) {}
		p.For(benchSizes[len(benchSizes)-1], body) // spawn workers once
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("threads-%d/n-%d", threads, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.For(n, body)
				}
			})
		}
		p.Close()
	}
}

// BenchmarkDispatchTouch adds the cheapest real body — one float add per
// iteration — so the ratio against DispatchEmpty shows how much work a
// chunk must carry before the region's overhead stops dominating.
func BenchmarkDispatchTouch(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		p := New(threads)
		sink := make([]float64, benchSizes[len(benchSizes)-1])
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sink[i]++
			}
		}
		p.For(len(sink), body)
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("threads-%d/n-%d", threads, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.For(n, body)
				}
			})
		}
		p.Close()
	}
}
