package par

import (
	"fmt"
	"testing"
)

// The dispatch benchmarks quantify what a parallel region itself costs —
// the wake sends plus the completion barrier — so the chunking threshold
// (minChunkIters) can be judged against measured numbers rather than
// folklore. Sizes bracket the code's real loops: 64 is a boundary-band
// sweep, 512 a small test mesh, 3600 one thread's share of the 120×120
// step-benchmark mesh, 14400 that mesh's full element count.

var benchSizes = []int{64, 512, 3600, 14400}

// BenchmarkDispatchEmpty is the pure overhead floor: an empty body, so
// ns/op is the wake/barrier round trip (or ~0 where the threshold
// collapses the loop to an inline call).
func BenchmarkDispatchEmpty(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		p := New(threads)
		body := func(lo, hi int) {}
		p.For(benchSizes[len(benchSizes)-1], body) // spawn workers once
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("threads-%d/n-%d", threads, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.For(n, body)
				}
			})
		}
		p.Close()
	}
}

// BenchmarkTiledSweep is the tile-width counterpart of the dispatch
// benchmarks: a two-phase body (stage 16 float64 per iteration into a
// scratch slab, then reduce the staged values) run over ForChunksTiled
// at widths bracketing TileFor's L2-half budget. Small tiles pay loop
// and dispatch overhead per tile; tiles past the L2 budget evict the
// staged slab between the phases. The default width (TileFor(128) for
// this body) should sit in the flat bottom between the two penalties —
// this is the same measure-then-freeze methodology that fixed
// minChunkIters.
func BenchmarkTiledSweep(b *testing.B) {
	const n = 1 << 18 // 256k iterations x 128 B staged = far past any L2
	src := make([]float64, 16*n)
	for i := range src {
		src[i] = float64(i % 97)
	}
	sink := make([]float64, n)
	for _, threads := range []int{1, 4} {
		p := New(threads)
		slabs := make([][]float64, threads)
		widths := []int{128, TileFor(128), 8192, 65536, 0}
		for _, tile := range widths {
			stageWidth := tile
			if stageWidth <= 0 {
				stageWidth = n
			}
			for c := range slabs {
				if len(slabs[c]) < 16*stageWidth {
					slabs[c] = make([]float64, 16*stageWidth)
				}
			}
			body := func(c, lo, hi int) {
				slab := slabs[c]
				for i := lo; i < hi; i++ {
					copy(slab[16*(i-lo):16*(i-lo)+16], src[16*i:16*i+16])
				}
				for i := lo; i < hi; i++ {
					var s float64
					for k := 0; k < 16; k++ {
						s += slab[16*(i-lo)+k]
					}
					sink[i] = s
				}
			}
			p.ForChunksTiled(n, tile, body)
			b.Run(fmt.Sprintf("threads-%d/tile-%d", threads, tile), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.ForChunksTiled(n, tile, body)
				}
			})
		}
		p.Close()
	}
}

// BenchmarkDispatchTouch adds the cheapest real body — one float add per
// iteration — so the ratio against DispatchEmpty shows how much work a
// chunk must carry before the region's overhead stops dominating.
func BenchmarkDispatchTouch(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		p := New(threads)
		sink := make([]float64, benchSizes[len(benchSizes)-1])
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sink[i]++
			}
		}
		p.For(len(sink), body)
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("threads-%d/n-%d", threads, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.For(n, body)
				}
			})
		}
		p.Close()
	}
}
