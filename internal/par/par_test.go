package par

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, threads := range []int{0, 1, 2, 3, 7, 16} {
		p := New(threads)
		for _, n := range []int{0, 1, 2, 5, 100, 1023} {
			hits := make([]int32, n)
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, h)
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := New(4)
	called := false
	p.For(0, func(lo, hi int) { called = true })
	p.For(-3, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestSerialRunsInline(t *testing.T) {
	p := New(8)
	calls := 0
	p.Serial(10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("Serial range = [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("Serial body called %d times, want 1", calls)
	}
}

func TestReduceMinMatchesSerial(t *testing.T) {
	vals := []float64{5, 3, 8, 3, -1, 7, -1, 2}
	want, wantArg := math.Inf(1), -1
	for i, v := range vals {
		if v < want {
			want, wantArg = v, i
		}
	}
	for _, threads := range []int{1, 2, 3, 8, 20} {
		got, arg := New(threads).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		if got != want || arg != wantArg {
			t.Fatalf("threads=%d: ReduceMin = (%v,%d), want (%v,%d)", threads, got, arg, want, wantArg)
		}
	}
}

func TestReduceMinEmpty(t *testing.T) {
	v, i := New(4).ReduceMin(0, func(int) float64 { return 0 })
	if !math.IsInf(v, 1) || i != -1 {
		t.Fatalf("empty ReduceMin = (%v,%d), want (+Inf,-1)", v, i)
	}
}

func TestReduceMinTieBreaksLowestIndex(t *testing.T) {
	vals := []float64{4, 1, 2, 1, 1}
	for _, threads := range []int{1, 2, 5} {
		_, arg := New(threads).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		if arg != 1 {
			t.Fatalf("threads=%d: argmin = %d, want 1", threads, arg)
		}
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	n := 1000
	want := float64(n*(n-1)) / 2
	for _, threads := range []int{1, 2, 4, 9} {
		got := New(threads).ReduceSum(n, func(i int) float64 { return float64(i) })
		if got != want {
			t.Fatalf("threads=%d: sum = %v, want %v", threads, got, want)
		}
	}
}

func TestReduceMinPropertyAgainstSerial(t *testing.T) {
	f := func(raw []float64, threads uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) {
				v = 0
			}
			vals[i] = v
		}
		sv, si := New(1).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		pv, pi := New(int(threads%16)+1).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		return sv == pv && si == pi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewClampsToOne(t *testing.T) {
	if New(-5).Threads != 1 {
		t.Fatal("New(-5) should clamp to 1 thread")
	}
}
