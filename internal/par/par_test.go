package par

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, threads := range []int{0, 1, 2, 3, 7, 16} {
		p := New(threads)
		for _, n := range []int{0, 1, 2, 5, 100, 1023} {
			hits := make([]int32, n)
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, h)
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := New(4)
	called := false
	p.For(0, func(lo, hi int) { called = true })
	p.For(-3, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestSerialRunsInline(t *testing.T) {
	p := New(8)
	calls := 0
	p.Serial(10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("Serial range = [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("Serial body called %d times, want 1", calls)
	}
}

func TestReduceMinMatchesSerial(t *testing.T) {
	vals := []float64{5, 3, 8, 3, -1, 7, -1, 2}
	want, wantArg := math.Inf(1), -1
	for i, v := range vals {
		if v < want {
			want, wantArg = v, i
		}
	}
	for _, threads := range []int{1, 2, 3, 8, 20} {
		got, arg := New(threads).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		if got != want || arg != wantArg {
			t.Fatalf("threads=%d: ReduceMin = (%v,%d), want (%v,%d)", threads, got, arg, want, wantArg)
		}
	}
}

func TestReduceMinEmpty(t *testing.T) {
	v, i := New(4).ReduceMin(0, func(int) float64 { return 0 })
	if !math.IsInf(v, 1) || i != -1 {
		t.Fatalf("empty ReduceMin = (%v,%d), want (+Inf,-1)", v, i)
	}
}

func TestReduceMinTieBreaksLowestIndex(t *testing.T) {
	vals := []float64{4, 1, 2, 1, 1}
	for _, threads := range []int{1, 2, 5} {
		_, arg := New(threads).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		if arg != 1 {
			t.Fatalf("threads=%d: argmin = %d, want 1", threads, arg)
		}
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	n := 1000
	want := float64(n*(n-1)) / 2
	for _, threads := range []int{1, 2, 4, 9} {
		got := New(threads).ReduceSum(n, func(i int) float64 { return float64(i) })
		if got != want {
			t.Fatalf("threads=%d: sum = %v, want %v", threads, got, want)
		}
	}
}

func TestReduceMinPropertyAgainstSerial(t *testing.T) {
	f := func(raw []float64, threads uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) {
				v = 0
			}
			vals[i] = v
		}
		sv, si := New(1).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		pv, pi := New(int(threads%16)+1).ReduceMin(len(vals), func(i int) float64 { return vals[i] })
		return sv == pv && si == pi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewClampsToOne(t *testing.T) {
	if New(-5).Threads != 1 {
		t.Fatal("New(-5) should clamp to 1 thread")
	}
}

func TestChunkRangeBalanced(t *testing.T) {
	for _, tc := range []struct{ n, t int }{
		{10, 3}, {7, 7}, {100, 16}, {5, 2}, {1, 1}, {13, 4},
	} {
		q, r := tc.n/tc.t, tc.n%tc.t
		prevHi := 0
		for c := 0; c < tc.t; c++ {
			lo, hi := chunkRange(tc.n, tc.t, c)
			if lo != prevHi {
				t.Fatalf("n=%d t=%d: chunk %d starts at %d, want %d", tc.n, tc.t, c, lo, prevHi)
			}
			size := hi - lo
			want := q
			if c < r {
				want = q + 1
			}
			if size != want {
				t.Fatalf("n=%d t=%d: chunk %d has %d iterations, want %d", tc.n, tc.t, c, size, want)
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d t=%d: chunks end at %d", tc.n, tc.t, prevHi)
		}
	}
}

func TestChunkRangePropertyContiguousCover(t *testing.T) {
	f := func(nRaw, tRaw uint16) bool {
		n := int(nRaw%5000) + 1
		tt := int(tRaw%64) + 1
		if tt > n {
			tt = n
		}
		prevHi := 0
		maxSize, minSize := 0, n+1
		for c := 0; c < tt; c++ {
			lo, hi := chunkRange(n, tt, c)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo > maxSize {
				maxSize = hi - lo
			}
			if hi-lo < minSize {
				minSize = hi - lo
			}
			prevHi = hi
		}
		return prevHi == n && maxSize-minSize <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkersPersistAcrossRegions checks the tentpole property of the
// pool: the worker goroutines are spawned once and reused, not
// re-spawned per parallel region.
func TestWorkersPersistAcrossRegions(t *testing.T) {
	p := New(4)
	defer p.Close()
	body := func(lo, hi int) {}
	p.For(1024, body) // spawn workers (big enough to beat the chunk threshold)
	base := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		p.For(1024, body)
		p.ForChunks(1024, func(c, lo, hi int) {})
		p.ReduceSum(1024, func(i int) float64 { return 1 })
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("goroutine count grew from %d to %d across 600 regions", base, got)
	}
}

func TestCloseDegradesToInline(t *testing.T) {
	p := New(4)
	p.For(1024, func(lo, hi int) {}) // start workers
	p.Close()
	p.Close() // idempotent
	calls := 0
	p.For(64, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 64 {
			t.Fatalf("closed pool ran chunk [%d,%d), want [0,64)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("closed pool ran body %d times, want 1 inline call", calls)
	}
	if v, i := p.ReduceMin(3, func(i int) float64 { return float64(i) }); v != 0 || i != 0 {
		t.Fatalf("closed ReduceMin = (%v,%d), want (0,0)", v, i)
	}
	if s := p.ReduceSum(4, func(i int) float64 { return 1 }); s != 4 {
		t.Fatalf("closed ReduceSum = %v, want 4", s)
	}
	p.ForChunks(8, func(c, lo, hi int) {
		if c != 0 || lo != 0 || hi != 8 {
			t.Fatalf("closed ForChunks chunk (%d,[%d,%d)), want (0,[0,8))", c, lo, hi)
		}
	})
}

func TestCloseUnstartedPool(t *testing.T) {
	p := New(8)
	p.Close() // never dispatched: must not panic
	p.For(10, func(lo, hi int) {})
}

func TestForChunksIndicesMatchChunkRange(t *testing.T) {
	for _, threads := range []int{2, 3, 8} {
		p := New(threads)
		n := 997
		seen := make([]bool, p.NumChunks(n))
		var mu sync.Mutex
		p.ForChunks(n, func(c, lo, hi int) {
			wlo, whi := chunkRange(n, len(seen), c)
			if lo != wlo || hi != whi {
				t.Errorf("threads=%d chunk %d = [%d,%d), want [%d,%d)", threads, c, lo, hi, wlo, whi)
			}
			mu.Lock()
			seen[c] = true
			mu.Unlock()
		})
		p.Close()
		for c, ok := range seen {
			if !ok {
				t.Fatalf("threads=%d: chunk %d never ran", threads, c)
			}
		}
	}
}

// TestChunkThresholdNarrowsSmallLoops pins the dispatch-amortisation
// rule: a loop whose per-chunk share would fall below minChunkIters is
// split into fewer, fuller chunks — down to one (inline) — while loops
// at or above the threshold keep the full thread count. The narrowing
// depends only on (n, Threads), preserving run-to-run reproducibility.
func TestChunkThresholdNarrowsSmallLoops(t *testing.T) {
	for _, tc := range []struct{ threads, n, want int }{
		{4, 100, 1},                     // boundary-band sized: inline
		{4, 4 * minChunkIters, 4},       // exactly at threshold: full width
		{4, 4*minChunkIters - 1, 3},     // just under: one fewer chunk
		{9, 1000, 1000 / minChunkIters}, // narrowed, every chunk >= threshold
		{1, 5, 1},
		{8, 8 * minChunkIters, 8},
	} {
		if got := New(tc.threads).chunks(tc.n); got != tc.want {
			t.Errorf("chunks(n=%d, threads=%d) = %d, want %d", tc.n, tc.threads, got, tc.want)
		}
	}
	// Narrowed splits still leave every chunk at or above the threshold.
	for n := 1; n < 4096; n += 37 {
		for _, threads := range []int{2, 3, 4, 8} {
			t2 := New(threads).chunks(n)
			if t2 > 1 && n/t2 < minChunkIters {
				t.Fatalf("chunks(n=%d, threads=%d) = %d leaves %d iterations per chunk", n, threads, t2, n/t2)
			}
		}
	}
}

// TestParallelDispatchZeroAllocs pins the zero-allocation property the
// hydro kernels rely on: with a pre-bound body, For / ForChunks /
// ReduceMin / ReduceSum allocate nothing per call.
func TestParallelDispatchZeroAllocs(t *testing.T) {
	p := New(4)
	defer p.Close()
	body := func(lo, hi int) {}
	cbody := func(c, lo, hi int) {}
	red := func(i int) float64 { return float64(i) }
	p.For(512, body) // warm up: spawn workers, size slots
	if n := testing.AllocsPerRun(50, func() { p.For(512, body) }); n != 0 {
		t.Errorf("For allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(50, func() { p.ForChunks(512, cbody) }); n != 0 {
		t.Errorf("ForChunks allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(50, func() { p.ReduceMin(512, red) }); n != 0 {
		t.Errorf("ReduceMin allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(50, func() { p.ReduceSum(512, red) }); n != 0 {
		t.Errorf("ReduceSum allocates %v per call", n)
	}
}
