// Package par is BookLeaf's intra-rank threading substrate, standing in
// for the OpenMP host parallelism of the reference implementation. A
// Pool models one "NUMA region" worth of threads; For splits an index
// range into balanced contiguous chunks (the static schedule OpenMP
// would use) and ReduceMin/ReduceSum provide the explicit loop
// reductions the paper's authors had to write by hand after the Fortran
// workshare directive proved to serialise MINVAL/MINLOC.
//
// Workers are persistent: they are spawned once, on the first parallel
// dispatch, and then park on per-worker wake channels for the life of
// the pool, so a parallel region costs two channel operations per
// worker instead of a goroutine spawn per loop. Reduction partials land
// in cache-line-padded slots owned by the pool, so chunks never
// false-share and no per-call slice is allocated. A For/ForChunks/
// Reduce* call with a pre-bound body therefore performs zero heap
// allocations — the property the hydro kernels build their
// zero-allocation steady state on.
//
// A Pool with Threads <= 1 executes everything inline with zero
// goroutine overhead; this is the "flat MPI" configuration where each
// rank is single-threaded. The hybrid configuration uses Threads > 1.
//
// Chunking guarantee: an n-iteration loop over t threads is split into
// contiguous ascending chunks whose sizes differ by at most one — the
// first n%t chunks carry ceil(n/t) iterations, the remainder floor(n/t).
// Loops too small to amortise the wake/barrier round trip are first
// narrowed so every chunk carries at least minChunkIters iterations
// (collapsing to inline execution below that). The split depends only
// on (n, Threads), never on scheduling, which is what makes per-chunk
// reductions reproducible run to run.
//
// Pools are NOT safe for concurrent dispatch: one goroutine (the rank)
// owns the pool and issues one parallel region at a time, exactly like
// an OpenMP thread team. Call Close when the rank retires to unpark the
// workers; a closed pool degrades to inline serial execution.
//
// The acceleration kernel in BookLeaf contains a corner-force→node
// scatter data dependency that the paper left unparallelised ("it has
// currently been left unchanged, adversely affecting OpenMP
// performance"). Serial reproduces that choice for the ablation path:
// it always runs on the calling goroutine, whatever the pool size.
package par

import (
	"math"
	"sync"
)

// minSlot is a per-chunk MINLOC partial, padded to a cache line so
// neighbouring chunks never false-share during a reduction.
type minSlot struct {
	v   float64
	arg int
	_   [48]byte
}

// sumSlot is a per-chunk sum partial, padded to a cache line.
type sumSlot struct {
	v float64
	_ [56]byte
}

// min2Slot is a per-chunk partial of a fused two-operand MINLOC
// reduction (ReduceMin2), padded to a cache line.
type min2Slot struct {
	v1, v2 float64
	a1, a2 int
	_      [32]byte
}

// Pool executes loops across a fixed number of logical threads.
// The zero value is a serial pool.
type Pool struct {
	// Threads is the number of chunks loops are split into. Values
	// below 2 mean fully inline serial execution. Treat as read-only
	// once the pool has executed a parallel region.
	Threads int

	startOnce sync.Once
	closeOnce sync.Once
	closed    bool
	wake      []chan struct{} // one per worker; worker w serves chunk w+1
	done      chan struct{}

	// Current parallel region, armed by the dispatcher before the wake
	// sends (which publish it to the workers). Exactly one of bodyR /
	// bodyC is non-nil during a region.
	n, nch int
	bodyR  func(lo, hi int)
	bodyC  func(chunk, lo, hi int)

	// Reduction state: redF is the operand, the slots hold padded
	// per-chunk partials, and minBody/sumBody are the chunk bodies
	// pre-bound at startup so reductions allocate nothing per call.
	redF             func(i int) float64
	minSlots         []minSlot
	sumSlots         []sumSlot
	minBody, sumBody func(chunk, lo, hi int)

	// Fused two-operand reduction state (ReduceMin2): one sweep
	// evaluates both operands, so kernels that feed two MINLOC
	// reductions from the same gathers stream their arrays once.
	redF2     func(i int) (float64, float64)
	min2Slots []min2Slot
	min2Body  func(chunk, lo, hi int)

	// Cache-tiling state (ForChunksTiled): tile is the armed tile
	// width, bodyT the per-tile body, and tileBody the pre-bound chunk
	// body that walks a chunk tile by tile.
	tile     int
	bodyT    func(chunk, lo, hi int)
	tileBody func(chunk, lo, hi int)
}

// Serial is the single-threaded pool used by flat-MPI ranks.
var Serial = &Pool{Threads: 1}

// New returns a pool with n threads (minimum 1). Workers are spawned
// lazily on the first parallel dispatch, so a pool that only ever runs
// serial-sized loops costs nothing.
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{Threads: n}
}

// minChunkIters is the smallest chunk worth waking a worker for. A
// parallel region costs two channel operations per worker (~µs once
// contended); a chunk below roughly this many kernel iterations does
// less work than its own dispatch, which is why tiny meshes used to run
// *slower* at higher thread counts. The value keeps the 120×120 bench
// mesh (14400 elements → 3600 per chunk at 4 threads) fully parallel
// while collapsing boundary-band sweeps of a few dozen elements to
// inline execution.
const minChunkIters = 128

// chunks returns the number of chunks to split an n-iteration loop
// into: Threads, narrowed so no chunk carries fewer than minChunkIters
// iterations. A pure function of (n, p.Threads), so the split — and
// with it every per-chunk reduction — is reproducible run to run.
func (p *Pool) chunks(n int) int {
	t := p.Threads
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	if t > 1 && n/t < minChunkIters {
		t = n / minChunkIters
		if t < 1 {
			t = 1
		}
	}
	return t
}

// chunkRange returns chunk c of an n-iteration loop split into t
// balanced contiguous chunks: the first n%t chunks carry one extra
// iteration, so sizes differ by at most one and chunk c covers
// [lo, hi) with hi(c) == lo(c+1).
func chunkRange(n, t, c int) (lo, hi int) {
	q, r := n/t, n%t
	if c < r {
		lo = c * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (c-r)*q
	return lo, lo + q
}

// ensureStarted spawns the persistent workers and pre-binds the
// reduction bodies. Called on the first parallel dispatch.
func (p *Pool) ensureStarted() {
	p.startOnce.Do(func() {
		t := p.Threads
		p.wake = make([]chan struct{}, t-1)
		p.done = make(chan struct{}, t-1)
		p.minSlots = make([]minSlot, t)
		p.sumSlots = make([]sumSlot, t)
		p.minBody = func(c, lo, hi int) {
			v, a := reduceMinRange(lo, hi, p.redF)
			p.minSlots[c].v, p.minSlots[c].arg = v, a
		}
		p.sumBody = func(c, lo, hi int) {
			var s float64
			f := p.redF
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			p.sumSlots[c].v = s
		}
		p.min2Slots = make([]min2Slot, t)
		p.min2Body = func(c, lo, hi int) {
			v1, a1, v2, a2 := reduceMin2Range(lo, hi, p.redF2)
			sl := &p.min2Slots[c]
			sl.v1, sl.a1, sl.v2, sl.a2 = v1, a1, v2, a2
		}
		p.tileBody = func(c, lo, hi int) {
			w, b := p.tile, p.bodyT
			for tlo := lo; tlo < hi; tlo += w {
				thi := tlo + w
				if thi > hi {
					thi = hi
				}
				b(c, tlo, thi)
			}
		}
		for w := 0; w < t-1; w++ {
			p.wake[w] = make(chan struct{}, 1)
			go p.worker(w)
		}
	})
}

// worker parks on its wake channel for the life of the pool; each wake
// runs the armed body over the worker's static chunk (worker w always
// serves chunk w+1 — the dispatching goroutine is thread 0).
func (p *Pool) worker(w int) {
	for range p.wake[w] {
		c := w + 1
		lo, hi := chunkRange(p.n, p.nch, c)
		if body := p.bodyR; body != nil {
			body(lo, hi)
		} else {
			p.bodyC(c, lo, hi)
		}
		p.done <- struct{}{}
	}
}

// run dispatches the armed body across t chunks of [0, n): workers
// 0..t-2 are woken for chunks 1..t-1 while the calling goroutine runs
// chunk 0, then the call blocks until every chunk completes. The wake
// sends publish the armed region to the workers; the done receives
// publish the workers' writes back to the caller.
func (p *Pool) run(n, t int) {
	p.ensureStarted()
	p.n, p.nch = n, t
	for w := 0; w < t-1; w++ {
		p.wake[w] <- struct{}{}
	}
	lo, hi := chunkRange(n, t, 0)
	if body := p.bodyR; body != nil {
		body(lo, hi)
	} else {
		p.bodyC(0, lo, hi)
	}
	for w := 0; w < t-1; w++ {
		<-p.done
	}
}

// Close unparks and retires the persistent workers. Subsequent calls
// on the pool execute inline serially; Close is idempotent and must
// not race an in-flight parallel region.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.closed = true
		for _, ch := range p.wake {
			close(ch)
		}
	})
}

// For executes body(lo, hi) over disjoint contiguous subranges covering
// [0, n). With a serial pool the body runs once inline as body(0, n).
func (p *Pool) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	t := p.chunks(n)
	if t == 1 || p.closed {
		body(0, n)
		return
	}
	p.bodyR, p.bodyC = body, nil
	p.run(n, t)
	p.bodyR = nil
}

// NumChunks reports how many chunks For and ForChunks split an
// n-iteration loop into.
func (p *Pool) NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return p.chunks(n)
}

// ForChunks is For with the chunk index passed to the body — the
// standard pattern for race-free per-chunk reductions.
func (p *Pool) ForChunks(n int, body func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	t := p.chunks(n)
	if t == 1 || p.closed {
		body(0, 0, n)
		return
	}
	p.bodyR, p.bodyC = nil, body
	p.run(n, t)
	p.bodyC = nil
}

// Serial executes body(0, n) on the calling goroutine regardless of the
// pool size. It models the unparallelised scatter kernels.
func (p *Pool) Serial(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	body(0, n)
}

// ReduceMin computes the minimum of f(i) for i in [0, n) together with
// the index attaining it (the MINVAL/MINLOC expansion). Partials are
// combined in chunk order and ties resolve to the lowest index, so the
// result is bitwise-deterministic across pool sizes.
func (p *Pool) ReduceMin(n int, f func(i int) float64) (min float64, argmin int) {
	if n <= 0 {
		return math.Inf(1), -1
	}
	t := p.chunks(n)
	if t == 1 || p.closed {
		return reduceMinRange(0, n, f)
	}
	p.ensureStarted()
	p.redF = f
	p.bodyR, p.bodyC = nil, p.minBody
	p.run(n, t)
	p.bodyC, p.redF = nil, nil
	min, argmin = p.minSlots[0].v, p.minSlots[0].arg
	for c := 1; c < t; c++ {
		if p.minSlots[c].v < min {
			min, argmin = p.minSlots[c].v, p.minSlots[c].arg
		}
	}
	return min, argmin
}

func reduceMinRange(lo, hi int, f func(i int) float64) (float64, int) {
	min, arg := f(lo), lo
	for i := lo + 1; i < hi; i++ {
		if v := f(i); v < min {
			min, arg = v, i
		}
	}
	return min, arg
}

// ReduceSum computes the sum of f(i) for i in [0, n). Each chunk sums
// locally into a padded slot and the partials are combined in chunk
// order, so the result is deterministic for a fixed pool size.
func (p *Pool) ReduceSum(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	t := p.chunks(n)
	if t == 1 || p.closed {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	p.ensureStarted()
	p.redF = f
	p.bodyR, p.bodyC = nil, p.sumBody
	p.run(n, t)
	p.bodyC, p.redF = nil, nil
	var s float64
	for c := 0; c < t; c++ {
		s += p.sumSlots[c].v
	}
	return s
}

// ReduceMin2 is a fused pair of MINLOC reductions: one sweep evaluates
// f(i) = (a_i, b_i) and returns the minimum and argmin of each
// component. The chunk split, the ascending per-chunk scan with
// strict-less updates, and the chunk-order combination are identical to
// two separate ReduceMin calls over the same n, so each component's
// (min, argmin) is bitwise-identical to what ReduceMin would return —
// the fusion only halves the number of array sweeps feeding the
// operands (the getdt CFL + divergence pair shares its coordinate
// gathers this way).
func (p *Pool) ReduceMin2(n int, f func(i int) (float64, float64)) (min1 float64, arg1 int, min2 float64, arg2 int) {
	if n <= 0 {
		inf := math.Inf(1)
		return inf, -1, inf, -1
	}
	t := p.chunks(n)
	if t == 1 || p.closed {
		return reduceMin2Range(0, n, f)
	}
	p.ensureStarted()
	p.redF2 = f
	p.bodyR, p.bodyC = nil, p.min2Body
	p.run(n, t)
	p.bodyC, p.redF2 = nil, nil
	s0 := &p.min2Slots[0]
	min1, arg1, min2, arg2 = s0.v1, s0.a1, s0.v2, s0.a2
	for c := 1; c < t; c++ {
		sl := &p.min2Slots[c]
		if sl.v1 < min1 {
			min1, arg1 = sl.v1, sl.a1
		}
		if sl.v2 < min2 {
			min2, arg2 = sl.v2, sl.a2
		}
	}
	return min1, arg1, min2, arg2
}

func reduceMin2Range(lo, hi int, f func(i int) (float64, float64)) (float64, int, float64, int) {
	v1, v2 := f(lo)
	a1, a2 := lo, lo
	for i := lo + 1; i < hi; i++ {
		w1, w2 := f(i)
		if w1 < v1 {
			v1, a1 = w1, i
		}
		if w2 < v2 {
			v2, a2 = w2, i
		}
	}
	return v1, a1, v2, a2
}

// L2PerCore is the assumed per-core L2 capacity in bytes that TileFor
// sizes tiles against. 512 KiB is the conservative bottom of the range
// spanned by the hardware this code targets (Broadwell 256 KiB + large
// shared L3 up to Skylake-SP/Zen at 1 MiB-plus); undershooting costs a
// little loop overhead, overshooting evicts the tile between passes.
const L2PerCore = 512 << 10

// TileFor returns the default tile width, in iterations, for a fused
// body whose per-iteration working set is bytesPerIter: half the
// per-core L2 (the other half is left to the streamed input arrays and
// prefetch), rounded down to a multiple of minChunkIters and floored at
// minChunkIters. Derived the same way minChunkIters was — a budget
// justified by micro-benchmark (BenchmarkTiledSweep), then frozen as a
// pure function so schedules stay reproducible.
func TileFor(bytesPerIter int) int {
	if bytesPerIter <= 0 {
		return minChunkIters
	}
	w := (L2PerCore / 2) / bytesPerIter
	w -= w % minChunkIters
	if w < minChunkIters {
		w = minChunkIters
	}
	return w
}

// ForChunksTiled is ForChunks with each chunk walked in tile-width
// sub-ranges: body(chunk, tlo, thi) runs once per tile, tiles within a
// chunk executing sequentially in ascending order on the chunk's
// thread. Used by fused multi-array bodies so the slice of each array a
// body invocation touches stays cache-resident across the fused
// phases. tile <= 0 disables tiling (one invocation per chunk). The
// chunk split is exactly ForChunks' split — tiling subdivides chunks,
// never moves work between them — so per-chunk reductions keyed on the
// chunk index are unaffected.
func (p *Pool) ForChunksTiled(n, tile int, body func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if tile <= 0 {
		tile = n
	}
	t := p.chunks(n)
	if t == 1 || p.closed {
		for tlo := 0; tlo < n; tlo += tile {
			thi := tlo + tile
			if thi > n {
				thi = n
			}
			body(0, tlo, thi)
		}
		return
	}
	p.ensureStarted()
	p.tile = tile
	p.bodyT = body
	p.bodyR, p.bodyC = nil, p.tileBody
	p.run(n, t)
	p.bodyC, p.bodyT = nil, nil
}
