// Package par is BookLeaf's intra-rank threading substrate, standing in
// for the OpenMP host parallelism of the reference implementation. A
// Pool models one "NUMA region" worth of threads; For splits an index
// range into contiguous chunks (the static schedule OpenMP would use)
// and ReduceMin/ReduceSum provide the explicit loop reductions the
// paper's authors had to write by hand after the Fortran workshare
// directive proved to serialise MINVAL/MINLOC.
//
// A Pool with Threads <= 1 executes everything inline with zero
// goroutine overhead; this is the "flat MPI" configuration where each
// rank is single-threaded. The hybrid configuration uses Threads > 1.
//
// The acceleration kernel in BookLeaf contains a corner-force→node
// scatter data dependency that the paper left unparallelised ("it has
// currently been left unchanged, adversely affecting OpenMP
// performance"). Serial reproduces that choice: it always runs on the
// calling goroutine, whatever the pool size.
package par

import (
	"math"
	"sync"
)

// Pool executes loops across a fixed number of logical threads.
// The zero value is a serial pool.
type Pool struct {
	// Threads is the number of chunks loops are split into. Values
	// below 2 mean fully inline serial execution.
	Threads int
}

// Serial is the single-threaded pool used by flat-MPI ranks.
var Serial = &Pool{Threads: 1}

// New returns a pool with n threads (minimum 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{Threads: n}
}

// chunks returns the number of chunks to split an n-iteration loop into.
func (p *Pool) chunks(n int) int {
	t := p.Threads
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	if t < 1 {
		t = 1
	}
	return t
}

// For executes body(lo, hi) over disjoint contiguous subranges covering
// [0, n). With a serial pool the body runs once inline as body(0, n).
func (p *Pool) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	t := p.chunks(n)
	if t == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t)
	for c := 0; c < t; c++ {
		lo := c * n / t
		hi := (c + 1) * n / t
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// NumChunks reports how many chunks For and ForChunks split an
// n-iteration loop into.
func (p *Pool) NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return p.chunks(n)
}

// ForChunks is For with the chunk index passed to the body — the
// standard pattern for race-free per-chunk reductions.
func (p *Pool) ForChunks(n int, body func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	t := p.chunks(n)
	if t == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t)
	for c := 0; c < t; c++ {
		lo := c * n / t
		hi := (c + 1) * n / t
		go func(c, lo, hi int) {
			defer wg.Done()
			body(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
}

// Serial executes body(0, n) on the calling goroutine regardless of the
// pool size. It models the unparallelised scatter kernels.
func (p *Pool) Serial(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	body(0, n)
}

// ReduceMin computes the minimum of f(i) for i in [0, n) together with
// the index attaining it (the MINVAL/MINLOC expansion). Ties resolve to
// the lowest index so results are deterministic across pool sizes.
func (p *Pool) ReduceMin(n int, f func(i int) float64) (min float64, argmin int) {
	if n <= 0 {
		return math.Inf(1), -1
	}
	t := p.chunks(n)
	if t == 1 {
		return reduceMinRange(0, n, f)
	}
	mins := make([]float64, t)
	args := make([]int, t)
	var wg sync.WaitGroup
	wg.Add(t)
	for c := 0; c < t; c++ {
		lo := c * n / t
		hi := (c + 1) * n / t
		go func(c, lo, hi int) {
			defer wg.Done()
			mins[c], args[c] = reduceMinRange(lo, hi, f)
		}(c, lo, hi)
	}
	wg.Wait()
	min, argmin = mins[0], args[0]
	for c := 1; c < t; c++ {
		if mins[c] < min {
			min, argmin = mins[c], args[c]
		}
	}
	return min, argmin
}

func reduceMinRange(lo, hi int, f func(i int) float64) (float64, int) {
	min, arg := f(lo), lo
	for i := lo + 1; i < hi; i++ {
		if v := f(i); v < min {
			min, arg = v, i
		}
	}
	return min, arg
}

// ReduceSum computes the sum of f(i) for i in [0, n). Each chunk sums
// locally and the partials are combined in chunk order, so the result is
// deterministic for a fixed pool size.
func (p *Pool) ReduceSum(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	t := p.chunks(n)
	if t == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	parts := make([]float64, t)
	var wg sync.WaitGroup
	wg.Add(t)
	for c := 0; c < t; c++ {
		lo := c * n / t
		hi := (c + 1) * n / t
		go func(c, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			parts[c] = s
		}(c, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, v := range parts {
		s += v
	}
	return s
}
