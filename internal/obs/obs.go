// Package obs is BookLeaf's per-rank observability layer: a typed
// metrics registry (counters, gauges, histograms), a low-overhead
// Chrome trace_event emitter, and runtime invariant probes (mass and
// energy conservation, finite-value sweeps).
//
// The design mirrors internal/timers: each rank owns a private
// Registry/Tracer/InvariantProbe (none are safe for concurrent use),
// and the driver merges them after the run. Everything is nil-safe —
// a nil *Registry hands out nil instruments whose methods no-op, so
// hot paths publish unconditionally and pay only a nil check when
// observability is off. Counter.Add and Gauge.Set on a live instrument
// are a single field update: safe inside the steady-state step, whose
// zero-allocation property the AllocsPerRun regression tests pin.
//
// Instruments are resolved by name once (Registry.Counter et al.
// create on first use, like timers.Set.Get) and the returned pointer
// is then used directly, so the per-event cost never includes a map
// lookup.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing integer metric. A nil *Counter
// discards updates.
type Counter struct {
	v int64
}

// Add increases the counter by n; a no-op on a nil Counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins float metric. A nil *Gauge discards
// updates.
type Gauge struct {
	v   float64
	set bool
}

// Set records the gauge value; a no-op on a nil Gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	g.set = true
}

// Value returns the current value (zero on a nil or never-set Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets is the number of power-of-two histogram buckets: bucket
// i counts observations in [2^i, 2^(i+1)), with bucket 0 absorbing
// everything below 2 and the last bucket everything above.
const histBuckets = 32

// Histogram accumulates a distribution in fixed power-of-two buckets
// plus count/sum/min/max — enough for message-size and span-length
// distributions without per-observation allocation. A nil *Histogram
// discards updates.
type Histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

// Observe records one sample; a no-op on a nil Histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	b := 0
	if v >= 2 {
		b = int(math.Log2(v))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b]++
}

// Count returns the number of observations (zero on a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (zero on a nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry is a per-rank collection of named instruments. Like
// timers.Set it is single-goroutine: each rank owns one and the driver
// merges them after the run. A nil *Registry hands out nil instruments.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. On a
// nil Registry it returns a nil Counter (whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a
// nil Registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use; nil
// on a nil Registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds other into r: counters and histograms add, gauges adopt
// other's value when other has set it (in per-rank merging only one
// rank publishes any given gauge, so last-set-wins is unambiguous).
// A nil other is a no-op.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	for name, c := range other.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range other.gauges {
		if g.set {
			r.Gauge(name).Set(g.v)
		}
	}
	for name, h := range other.hists {
		m := r.Histogram(name)
		if h.count == 0 {
			continue
		}
		if m.count == 0 || h.min < m.min {
			m.min = h.min
		}
		if m.count == 0 || h.max > m.max {
			m.max = h.max
		}
		m.count += h.count
		m.sum += h.sum
		for i := range h.buckets {
			m.buckets[i] += h.buckets[i]
		}
	}
}

// HistSnapshot is the exported form of a histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Buckets maps the inclusive lower bound of each non-empty
	// power-of-two bucket to its count.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time export of a Registry. Maps marshal with
// sorted keys (encoding/json), so serialisation is deterministic.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot exports the registry's current values. On a nil Registry it
// returns an empty (non-nil) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		if g.set {
			s.Gauges[name] = g.v
		}
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			hs.Buckets = map[string]int64{}
			for i, n := range h.buckets {
				if n == 0 {
					continue
				}
				lo := int64(0)
				if i > 0 {
					lo = int64(1) << uint(i)
				}
				hs.Buckets[fmt.Sprintf("%d", lo)] = n
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// MetricsFile is the schema of the metrics.json a run emits: run
// identity, wall-clock fields (non-deterministic; golden tests
// normalise them), the deterministic instrument snapshot, and the
// merged per-kernel timer seconds.
type MetricsFile struct {
	Meta       Meta                    `json:"meta"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	// Timers holds per-kernel wall seconds (max across ranks) — a
	// wall-clock section, normalised by golden tests.
	Timers map[string]float64 `json:"timers"`
}

// Meta identifies the run a MetricsFile describes.
type Meta struct {
	Problem string `json:"problem"`
	NX      int    `json:"nx"`
	NY      int    `json:"ny"`
	Ranks   int    `json:"ranks"`
	Threads int    `json:"threads"`
	Steps   int    `json:"steps"`
	// WallSeconds is the run's wall-clock time — non-deterministic,
	// normalised by golden tests.
	WallSeconds float64 `json:"wall_seconds"`
}

// WriteMetrics serialises a MetricsFile as deterministic, indented
// JSON (map keys sort; only the wall-clock fields vary run to run).
func WriteMetrics(w io.Writer, m *MetricsFile) error {
	if m.Counters == nil {
		m.Counters = map[string]int64{}
	}
	if m.Gauges == nil {
		m.Gauges = map[string]float64{}
	}
	if m.Histograms == nil {
		m.Histograms = map[string]HistSnapshot{}
	}
	if m.Timers == nil {
		m.Timers = map[string]float64{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// CounterNames returns the sorted counter names in a snapshot —
// convenience for table rendering.
func (s *Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
