package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	h := r.Histogram("z")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("msgs") != c {
		t.Fatal("Counter did not return the same instrument")
	}
	g := r.Gauge("energy")
	g.Set(1.5)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	h := r.Histogram("sizes")
	for _, v := range []float64{1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1010 {
		t.Fatalf("hist count/sum = %d/%v", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["sizes"]
	if hs.Min != 1 || hs.Max != 1000 {
		t.Fatalf("hist min/max = %v/%v", hs.Min, hs.Max)
	}
	// 1 → bucket 0; 2,3 → [2,4); 4 → [4,8); 1000 → [512,1024).
	want := map[string]int64{"0": 1, "2": 2, "4": 1, "512": 1}
	for k, n := range want {
		if hs.Buckets[k] != n {
			t.Fatalf("bucket %s = %d, want %d (%v)", k, hs.Buckets[k], n, hs.Buckets)
		}
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(2)
	b.Counter("c").Add(3)
	b.Counter("only_b").Add(1)
	b.Gauge("g").Set(7)
	a.Histogram("h").Observe(2)
	b.Histogram("h").Observe(8)
	a.Merge(b)
	a.Merge(nil)
	s := a.Snapshot()
	if s.Counters["c"] != 5 || s.Counters["only_b"] != 1 {
		t.Fatalf("merged counters: %v", s.Counters)
	}
	if s.Gauges["g"] != 7 {
		t.Fatalf("merged gauge: %v", s.Gauges)
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.Sum != 10 || h.Min != 2 || h.Max != 8 {
		t.Fatalf("merged histogram: %+v", h)
	}
	// Unset gauges must not be adopted.
	c := NewRegistry()
	c.Gauge("never_set")
	a.Merge(c)
	if _, ok := a.Snapshot().Gauges["never_set"]; ok {
		t.Fatal("unset gauge leaked through merge")
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	mk := func() []byte {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("z").Set(1)
		r.Gauge("y").Set(2)
		s := r.Snapshot()
		var buf bytes.Buffer
		err := WriteMetrics(&buf, &MetricsFile{
			Meta:     Meta{Problem: "sod", Ranks: 2},
			Counters: s.Counters, Gauges: s.Gauges, Histograms: s.Histograms,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, two := mk(), mk()
	if !bytes.Equal(one, two) {
		t.Fatal("WriteMetrics output not byte-stable across identical inputs")
	}
	var parsed MetricsFile
	if err := json.Unmarshal(one, &parsed); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	if parsed.Counters["a"] != 1 || parsed.Counters["b"] != 2 {
		t.Fatalf("round-trip lost counters: %v", parsed.Counters)
	}
}

func TestProbeConservationAndViolation(t *testing.T) {
	p := NewInvariantProbe(10, 1e-12, nil)
	if p.Due(0) || p.Due(5) || !p.Due(10) {
		t.Fatal("Due cadence wrong")
	}
	// Baseline sample, then a clean sample with round-off-level drift.
	p.Sample(10, 0.1, 1.0, 2.0, 0, 0, true)
	rec := p.Sample(20, 0.2, 1.0, 2.0+2e-12, 0, 0, true)
	if rec.Violation {
		t.Fatalf("round-off drift flagged: %+v", rec)
	}
	if rec.DriftPerStep > 1e-12 {
		t.Fatalf("drift per step = %v", rec.DriftPerStep)
	}
	// External work must be discounted.
	rec = p.Sample(30, 0.3, 1.0, 2.5, 0.5, 0, true)
	if rec.Violation {
		t.Fatalf("worked energy flagged: %+v", rec)
	}
	// A real conservation break trips the threshold.
	rec = p.Sample(40, 0.4, 1.0, 2.6, 0.5, 0, true)
	if !rec.Violation {
		t.Fatalf("energy leak not flagged: %+v", rec)
	}
	// Mass drift trips too.
	rec = p.Sample(50, 0.5, 1.01, 2.5, 0.5, 0, true)
	if !rec.Violation {
		t.Fatalf("mass drift not flagged: %+v", rec)
	}
	if p.Violations != 2 {
		t.Fatalf("violations = %d, want 2", p.Violations)
	}
	p.NoteNonFinite(55, 0.55)
	if p.Violations != 3 || len(p.Records) != 6 {
		t.Fatalf("NoteNonFinite not recorded: %d violations, %d records", p.Violations, len(p.Records))
	}
	last := p.Records[len(p.Records)-1]
	if last.Finite || !last.Violation {
		t.Fatalf("non-finite record malformed: %+v", last)
	}
}

func TestProbeNilSafe(t *testing.T) {
	var p *InvariantProbe
	if p.Due(10) {
		t.Fatal("nil probe Due")
	}
	p.Sample(1, 0, 1, 1, 0, 0, true)
	p.NoteNonFinite(1, 0)
	if p.MaxDriftPerStepObserved() != 0 {
		t.Fatal("nil probe drift")
	}
}

func TestProbeNonFiniteSampleFlags(t *testing.T) {
	p := NewInvariantProbe(1, 0, NewRegistry())
	p.Sample(1, 0.1, 1, 2, 0, 0, true)
	rec := p.Sample(2, 0.2, 1, 2, 0, 0, false)
	if !rec.Violation {
		t.Fatal("non-finite sample not flagged")
	}
}

func TestTracerSpansAndMerge(t *testing.T) {
	epoch := time.Now()
	t0 := NewTracer(0, epoch)
	t1 := NewTracer(1, epoch)
	t0.Span("getq", epoch.Add(time.Millisecond), 2*time.Millisecond)
	t0.Instant("rollback", nil)
	t1.Span("getq", epoch.Add(time.Millisecond), 4*time.Millisecond)
	t1.Span("comms", epoch.Add(5*time.Millisecond), time.Millisecond)

	var buf bytes.Buffer
	if err := t0.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 2 {
		t.Fatalf("rank 0 events = %d", len(tf.TraceEvents))
	}
	if tf.TraceEvents[0].Ph != "X" || tf.TraceEvents[0].Name != "getq" {
		t.Fatalf("span malformed: %+v", tf.TraceEvents[0])
	}
	if math.Abs(tf.TraceEvents[0].Dur-2000) > 1e-9 {
		t.Fatalf("span dur = %v us, want 2000", tf.TraceEvents[0].Dur)
	}

	merged := MergeTraces(
		&TraceFile{TraceEvents: t0.Events()},
		&TraceFile{TraceEvents: t1.Events()},
	)
	if len(merged.TraceEvents) != 4 {
		t.Fatalf("merged events = %d", len(merged.TraceEvents))
	}
	rows := Summarise(merged)
	// getq: max rank total 4ms, cpu sum 6ms, 2 events; sorted first.
	if rows[0].Name != "getq" {
		t.Fatalf("summary order: %v", rows)
	}
	if math.Abs(rows[0].MaxSec-0.004) > 1e-12 || math.Abs(rows[0].SumSec-0.006) > 1e-12 {
		t.Fatalf("getq summary: %+v", rows[0])
	}
	if rows[len(rows)-1].Name != "rollback" || rows[len(rows)-1].InstantsByRank[0] != 1 {
		t.Fatalf("instants not summarised: %+v", rows[len(rows)-1])
	}

	var table strings.Builder
	if err := WriteSummaryTable(&table, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "getq") || !strings.Contains(table.String(), "rollback") {
		t.Fatalf("summary table missing rows:\n%s", table.String())
	}

	NormalizeTrace(merged)
	for _, e := range merged.TraceEvents {
		if e.Ts != 0 || e.Dur != 0 {
			t.Fatalf("normalise left wall-clock fields: %+v", e)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("x", time.Now(), time.Second)
	tr.Instant("y", nil)
	if tr.Events() != nil {
		t.Fatal("nil tracer has events")
	}
}

func TestTracePath(t *testing.T) {
	if got := TracePath("out/noh", 3); got != "out/noh.rank3.trace.json" {
		t.Fatalf("TracePath = %q", got)
	}
}
