package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// TraceEvent is one Chrome trace_event record. The subset emitted here
// — complete spans ("X") and instant events ("i") — loads directly
// into chrome://tracing and Perfetto. Timestamps and durations are
// microseconds; Pid is the rank, so a merged multi-rank file shows one
// swim-lane per rank.
type TraceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// TraceFile is the JSON object format of a per-rank trace dump.
type TraceFile struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// Tracer buffers trace events for one rank. It implements
// timers.SpanSink, so attaching it to a rank's timer set turns every
// timer Start/Stop pair into one span — no changes to the kernels.
// A nil *Tracer discards events, which is the disabled path: the
// steady-state step stays allocation-free because the timer layer's
// sink hook is a nil interface check.
//
// Like the timer sets, a Tracer is single-goroutine (per-rank).
type Tracer struct {
	rank   int
	epoch  time.Time
	events []TraceEvent
}

// NewTracer creates a tracer for rank whose timestamps are relative to
// epoch. All ranks of a run share one epoch so merged traces align on
// a single timeline.
func NewTracer(rank int, epoch time.Time) *Tracer {
	return &Tracer{rank: rank, epoch: epoch, events: make([]TraceEvent, 0, 4096)}
}

// Span records a completed span (timers.SpanSink). No-op on nil.
func (t *Tracer) Span(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Ph: "X",
		Ts:  float64(start.Sub(t.epoch)) / float64(time.Microsecond),
		Dur: float64(d) / float64(time.Microsecond),
		Pid: t.rank,
	})
}

// Instant records an instantaneous event — rollbacks, aborts, probe
// violations. args may be nil. No-op on nil.
func (t *Tracer) Instant(name string, args any) {
	if t == nil {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Ph: "i",
		Ts:   float64(time.Since(t.epoch)) / float64(time.Microsecond),
		Pid:  t.rank,
		Args: args,
	})
}

// Events returns the buffered events (nil on a nil Tracer).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// Write serialises the buffered events as a Chrome trace JSON object.
func (t *Tracer) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(&TraceFile{TraceEvents: t.Events()})
}

// TracePath returns the per-rank trace file name for a -trace prefix:
// <prefix>.rank<id>.trace.json.
func TracePath(prefix string, rank int) string {
	return fmt.Sprintf("%s.rank%d.trace.json", prefix, rank)
}

// WriteFile writes the trace to TracePath(prefix, rank).
func (t *Tracer) WriteFile(prefix string) error {
	f, err := os.Create(TracePath(prefix, t.rank))
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: trace %s: %w", f.Name(), err)
	}
	return nil
}

// ReadTraceFile parses a trace dump written by Tracer.Write.
func ReadTraceFile(path string) (*TraceFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("obs: trace %s: %w", path, err)
	}
	return &tf, nil
}
