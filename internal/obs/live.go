package obs

import "sync/atomic"

// Live is the mid-run snapshot handoff cell the serving daemon reads
// job metrics through. A Registry is single-goroutine by design (see
// the package comment), so concurrent readers can never walk it while
// the run mutates counters; instead the owning goroutine Publishes
// immutable Snapshots at safe points (step boundaries, collective
// healthy points) and any goroutine may Load the latest one. The cell
// is a single atomic pointer: Publish costs one store on the hot side,
// and readers never block the run.
//
// A published Snapshot must not be mutated afterwards — Load hands the
// same object to every reader.
type Live struct {
	p atomic.Pointer[Snapshot]
}

// Publish makes s the current snapshot. Nil-safe on both sides: a nil
// Live or a nil snapshot is a no-op, so publishing can be wired
// unconditionally like the rest of the obs instruments.
func (l *Live) Publish(s *Snapshot) {
	if l == nil || s == nil {
		return
	}
	l.p.Store(s)
}

// Load returns the most recently published snapshot, or nil when
// nothing has been published yet (or on a nil Live).
func (l *Live) Load() *Snapshot {
	if l == nil {
		return nil
	}
	return l.p.Load()
}

// Merge folds other into s with the same semantics Registry.Merge uses
// for per-rank merging: counters and histogram tallies add, gauges
// adopt other's value. The serving daemon uses it to stitch the
// metrics of a preempted job's legs back into one account — a resumed
// leg starts from zeroed instruments, so summing the legs yields the
// totals an uninterrupted run would have published. A nil other is a
// no-op.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] = v
	}
	for name, h := range other.Histograms {
		m, ok := s.Histograms[name]
		if !ok || m.Count == 0 {
			// Copy the bucket map so later merges never alias other's.
			h.Buckets = copyBuckets(h.Buckets)
			s.Histograms[name] = h
			continue
		}
		if h.Count == 0 {
			continue
		}
		if h.Min < m.Min {
			m.Min = h.Min
		}
		if h.Max > m.Max {
			m.Max = h.Max
		}
		m.Count += h.Count
		m.Sum += h.Sum
		if m.Buckets == nil {
			m.Buckets = map[string]int64{}
		}
		for lo, n := range h.Buckets {
			m.Buckets[lo] += n
		}
		s.Histograms[name] = m
	}
}

func copyBuckets(b map[string]int64) map[string]int64 {
	if b == nil {
		return nil
	}
	out := make(map[string]int64, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}
