package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// MergeTraces concatenates per-rank trace files onto one timeline.
// Per-rank event order is preserved and ranks are appended in argument
// order, so for a fixed input set the merged event sequence is
// deterministic (the shared epoch already aligns timestamps; no
// re-sorting is needed, and none is done so that normalised golden
// comparisons are byte-stable).
func MergeTraces(files ...*TraceFile) *TraceFile {
	merged := &TraceFile{TraceEvents: []TraceEvent{}}
	for _, tf := range files {
		merged.TraceEvents = append(merged.TraceEvents, tf.TraceEvents...)
	}
	return merged
}

// NormalizeTrace zeroes the wall-clock fields (ts, dur) of every event
// in place, leaving only the deterministic structure: names, phases,
// ranks, order and args. Golden-snapshot tests compare normalised
// traces byte for byte.
func NormalizeTrace(tf *TraceFile) {
	for i := range tf.TraceEvents {
		tf.TraceEvents[i].Ts = 0
		tf.TraceEvents[i].Dur = 0
	}
}

// PhaseSummary is the per-phase aggregate of a merged trace: for each
// span name, the total time summed over ranks (CPU-seconds), the
// maximum per-rank total (the bulk-synchronous wall-clock estimate —
// directly comparable to the paper's Fig. 2 per-phase breakdown and to
// the internal/timers MergeMax table), and the span count.
type PhaseSummary struct {
	Name           string
	SumSec, MaxSec float64
	Count          int64
	InstantsByRank map[int]int64 // populated for instant events only
}

// Summarise aggregates a merged trace into per-phase rows sorted by
// descending max-rank seconds, with instant events collected
// separately (returned after the spans, zero-duration).
func Summarise(tf *TraceFile) []PhaseSummary {
	type acc struct {
		perRank map[int]float64
		count   int64
		instant bool
		byRank  map[int]int64
	}
	accs := map[string]*acc{}
	for _, e := range tf.TraceEvents {
		a, ok := accs[e.Name]
		if !ok {
			a = &acc{perRank: map[int]float64{}, byRank: map[int]int64{}}
			accs[e.Name] = a
		}
		a.count++
		a.byRank[e.Pid]++
		if e.Ph == "i" {
			a.instant = true
			continue
		}
		a.perRank[e.Pid] += e.Dur / 1e6
	}
	var spans, instants []PhaseSummary
	for name, a := range accs {
		row := PhaseSummary{Name: name, Count: a.count}
		for _, s := range a.perRank {
			row.SumSec += s
			if s > row.MaxSec {
				row.MaxSec = s
			}
		}
		if a.instant {
			row.InstantsByRank = a.byRank
			instants = append(instants, row)
		} else {
			spans = append(spans, row)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].MaxSec != spans[j].MaxSec {
			return spans[i].MaxSec > spans[j].MaxSec
		}
		return spans[i].Name < spans[j].Name
	})
	sort.Slice(instants, func(i, j int) bool { return instants[i].Name < instants[j].Name })
	return append(spans, instants...)
}

// WriteSummaryTable renders the paper-style per-phase table of a
// merged trace: max-rank seconds (wall estimate), percent of total,
// rank-summed CPU seconds, and span counts.
func WriteSummaryTable(w io.Writer, rows []PhaseSummary) error {
	var total float64
	for _, r := range rows {
		total += r.MaxSec
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %8s %12s %8s\n", "phase", "max-rank s", "percent", "cpu s", "events")
	for _, r := range rows {
		if r.InstantsByRank != nil {
			fmt.Fprintf(&b, "%-16s %12s %7s%% %12s %8d\n", r.Name, "-", "-", "-", r.Count)
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * r.MaxSec / total
		}
		fmt.Fprintf(&b, "%-16s %12.6f %7.1f%% %12.6f %8d\n", r.Name, r.MaxSec, pct, r.SumSec, r.Count)
	}
	fmt.Fprintf(&b, "%-16s %12.6f\n", "total", total)
	_, err := io.WriteString(w, b.String())
	return err
}
