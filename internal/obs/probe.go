package obs

import "math"

// ProbeRecord is one sample of the runtime invariant probe.
type ProbeRecord struct {
	Step int     `json:"step"`
	Time float64 `json:"time"`
	// Mass and Energy are the global (rank-reduced) totals at the
	// sample; Work and Floor the accumulated external work and
	// floor-energy injections the conservation identity discounts.
	Mass, Energy, Work, Floor float64
	// Drift is the relative conservation defect accumulated since the
	// baseline sample; DriftPerStep normalises it by elapsed steps.
	Drift, DriftPerStep float64
	// Finite is false when the sample's finite-value sweep found a
	// NaN/Inf.
	Finite bool
	// Violation marks samples that tripped a probe check.
	Violation bool
}

// InvariantProbe samples conservation invariants every N steps. The
// scheme is compatible (exactly energy-conserving up to round-off), so
// any drift beyond round-off accumulation is a bug detector: a wrong
// kernel, a corrupted halo message, a bad remap. The first sample
// baselines the reference totals, so probes compose with restarts.
//
// Thresholds are per-step: a violation is flagged when the relative
// drift since baseline, divided by the number of steps elapsed,
// exceeds MaxDriftPerStep — the rate form keeps the check meaningful
// for both 10-step smoke runs and long campaigns. Mass in a Lagrangian
// or swept-region remap step is conserved identically (element masses
// are constant), so mass drift uses the same per-step bound.
//
// Like the other obs instruments, a probe is single-goroutine and a
// nil *InvariantProbe no-ops.
type InvariantProbe struct {
	// Every is the sampling cadence in steps (0 disables Sample).
	Every int
	// MaxDriftPerStep is the per-step relative drift threshold; 0
	// selects DefaultMaxDriftPerStep.
	MaxDriftPerStep float64

	// Records accumulates samples; Violations counts flagged samples
	// plus non-finite notes.
	Records    []ProbeRecord
	Violations int

	reg       *Registry
	baselined bool
	step0     int
	mass0, e0 float64
	w0, f0    float64
}

// DefaultMaxDriftPerStep is the per-step relative drift budget when
// MaxDriftPerStep is zero: generous against round-off accumulation
// (the compatible scheme stays below 1e-12/step on the standard
// problems) but far below any physical bug.
const DefaultMaxDriftPerStep = 1e-9

// NewInvariantProbe creates a probe sampling every `every` steps and
// publishing its gauges/counters into reg (which may be nil).
func NewInvariantProbe(every int, maxDriftPerStep float64, reg *Registry) *InvariantProbe {
	return &InvariantProbe{Every: every, MaxDriftPerStep: maxDriftPerStep, reg: reg}
}

// Due reports whether step is a sampling step. False on a nil or
// disabled probe.
func (p *InvariantProbe) Due(step int) bool {
	return p != nil && p.Every > 0 && step > 0 && step%p.Every == 0
}

func (p *InvariantProbe) threshold() float64 {
	if p.MaxDriftPerStep > 0 {
		return p.MaxDriftPerStep
	}
	return DefaultMaxDriftPerStep
}

// Sample records one invariant sample from globally-reduced totals.
// finite is the outcome of the caller's finite-value sweep (true =
// clean). It returns the record, whose Violation field reports whether
// a check tripped. No-op (returning a zero record) on a nil probe.
func (p *InvariantProbe) Sample(step int, t, mass, energy, work, floor float64, finite bool) ProbeRecord {
	if p == nil {
		return ProbeRecord{}
	}
	rec := ProbeRecord{
		Step: step, Time: t,
		Mass: mass, Energy: energy, Work: work, Floor: floor,
		Finite: finite,
	}
	if !p.baselined {
		p.baselined = true
		p.step0 = step
		p.mass0, p.e0 = mass, energy
		p.w0, p.f0 = work, floor
	}
	den := math.Max(math.Abs(p.e0), 1e-300)
	eDrift := math.Abs(energy-p.e0-(work-p.w0)-(floor-p.f0)) / den
	mDrift := math.Abs(mass-p.mass0) / math.Max(math.Abs(p.mass0), 1e-300)
	rec.Drift = math.Max(eDrift, mDrift)
	if n := step - p.step0; n > 0 {
		rec.DriftPerStep = rec.Drift / float64(n)
	}
	if !finite || rec.DriftPerStep > p.threshold() {
		rec.Violation = true
		p.Violations++
		p.reg.Counter("probe_violations_total").Inc()
	}
	p.Records = append(p.Records, rec)
	p.reg.Counter("probe_samples_total").Inc()
	p.reg.Gauge("probe_mass").Set(mass)
	p.reg.Gauge("probe_energy").Set(energy)
	p.reg.Gauge("probe_drift").Set(rec.Drift)
	p.reg.Gauge("probe_drift_per_step").Set(rec.DriftPerStep)
	return rec
}

// NoteNonFinite records a finite-value-sweep failure outside the
// sampling cadence — the per-step health sentinel routing its finding
// through the probe, so corrupted states are flagged within one step
// even when the driver immediately rolls them back. No-op on nil.
func (p *InvariantProbe) NoteNonFinite(step int, t float64) {
	if p == nil {
		return
	}
	p.Records = append(p.Records, ProbeRecord{
		Step: step, Time: t, Finite: false, Violation: true,
	})
	p.Violations++
	p.reg.Counter("probe_violations_total").Inc()
	p.reg.Counter("probe_nonfinite_total").Inc()
}

// MaxDriftPerStepObserved returns the largest per-step drift across
// clean (finite) samples — what the conservation property tests bound.
// Zero on a nil probe.
func (p *InvariantProbe) MaxDriftPerStepObserved() float64 {
	if p == nil {
		return 0
	}
	var m float64
	for _, r := range p.Records {
		if r.Finite && r.DriftPerStep > m {
			m = r.DriftPerStep
		}
	}
	return m
}
