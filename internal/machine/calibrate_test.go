package machine

import (
	"math"
	"sync"
	"testing"
)

// TestCalibratorConvergence: a steady measured/modelled ratio pulls the
// scale onto itself — the first observation seeds it, repeats converge
// geometrically — and Apply rescales only the seconds.
func TestCalibratorConvergence(t *testing.T) {
	c := NewCalibrator(0.25)
	if c.Scale() != 1 {
		t.Fatalf("fresh scale %g, want 1", c.Scale())
	}
	const truth = 3.5
	for i := 0; i < 40; i++ {
		c.Observe(10, 10*truth)
	}
	if s := c.Scale(); math.Abs(s-truth) > 1e-9 {
		t.Fatalf("scale %g after 40 steady observations, want %g", s, truth)
	}
	if c.Observations() != 40 {
		t.Fatalf("observations %d, want 40", c.Observations())
	}

	est := Estimate{NEl: 100, Steps: 50, StepSeconds: 0.01, Seconds: 0.5}
	got := c.Apply(est)
	if got.NEl != 100 || got.Steps != 50 {
		t.Fatalf("Apply moved deck facts: %+v", got)
	}
	if math.Abs(got.Seconds-0.5*truth) > 1e-9 || math.Abs(got.StepSeconds-0.01*truth) > 1e-9 {
		t.Fatalf("Apply scaled to %+v, want x%g", got, truth)
	}
}

// TestCalibratorTracksDrift: after converging on one ratio the average
// must follow a sustained shift to a new one (the EWMA forgets).
func TestCalibratorTracksDrift(t *testing.T) {
	c := NewCalibrator(0.25)
	for i := 0; i < 30; i++ {
		c.Observe(1, 4)
	}
	for i := 0; i < 60; i++ {
		c.Observe(1, 0.5)
	}
	if s := c.Scale(); math.Abs(s-0.5) > 1e-3 {
		t.Fatalf("scale %g after drift, want ~0.5", s)
	}
}

// TestCalibratorHostileObservations: degenerate wall clocks and
// modelled costs must neither move the scale nor count, and a single
// wild outlier is bounded by the per-observation clamp.
func TestCalibratorHostileObservations(t *testing.T) {
	c := NewCalibrator(0)
	for _, pair := range [][2]float64{
		{0, 1}, {1, 0}, {-1, 1}, {1, -1},
		{math.NaN(), 1}, {1, math.NaN()},
		{math.Inf(1), 1}, {1, math.Inf(1)},
	} {
		c.Observe(pair[0], pair[1])
	}
	if c.Observations() != 0 || c.Scale() != 1 {
		t.Fatalf("hostile observations counted: n=%d scale=%g", c.Observations(), c.Scale())
	}
	c.Observe(1, 1e12)
	if s := c.Scale(); s != calibClamp {
		t.Fatalf("outlier scale %g, want clamp %g", s, calibClamp)
	}
	c2 := NewCalibrator(0.25)
	c2.Observe(1e12, 1)
	if s := c2.Scale(); s != 1/calibClamp {
		t.Fatalf("inverse outlier scale %g, want %g", s, 1/calibClamp)
	}
}

// TestCalibratorStateRestore: State/Restore round-trips the learned
// scale exactly (the restart path of a durable daemon), hostile
// restored values are dropped, and an out-of-envelope scale clamps to
// the same [1/64, 64] range every legitimately-learned scale lives in.
func TestCalibratorStateRestore(t *testing.T) {
	c := NewCalibrator(0.25)
	c.Observe(10, 23)
	c.Observe(10, 31)
	scale, n := c.State()
	if n != 2 || scale != c.Scale() {
		t.Fatalf("State() = (%g, %d), want (%g, 2)", scale, n, c.Scale())
	}

	fresh := NewCalibrator(0.25)
	fresh.Restore(scale, n)
	if s, m := fresh.State(); s != scale || m != n {
		t.Fatalf("restored state (%g, %d), want exact (%g, %d)", s, m, scale, n)
	}
	// A restored calibrator keeps learning from where it left off.
	fresh.Observe(10, 23)
	if fresh.Observations() != n+1 {
		t.Fatalf("observations %d after restore+observe, want %d", fresh.Observations(), n+1)
	}

	for _, bad := range []struct {
		scale float64
		n     int
	}{
		{0, 5}, {-1, 5}, {math.NaN(), 5}, {math.Inf(1), 5},
		{2, 0}, {2, -3},
	} {
		d := NewCalibrator(0.25)
		d.Restore(bad.scale, bad.n)
		if s, m := d.State(); s != 1 || m != 0 {
			t.Fatalf("hostile Restore(%g, %d) accepted: state (%g, %d)", bad.scale, bad.n, s, m)
		}
	}

	hi := NewCalibrator(0.25)
	hi.Restore(1e12, 7)
	if s, _ := hi.State(); s != calibClamp {
		t.Fatalf("oversized restored scale %g, want clamp %g", s, calibClamp)
	}
	lo := NewCalibrator(0.25)
	lo.Restore(1e-12, 7)
	if s, _ := lo.State(); s != 1/calibClamp {
		t.Fatalf("undersized restored scale %g, want clamp %g", s, 1/calibClamp)
	}
}

// TestCalibratorConcurrent: Observe and Scale race freely in the
// daemon (legs complete while submissions price); run under -race this
// is the regression test for the lock.
func TestCalibratorConcurrent(t *testing.T) {
	c := NewCalibrator(0.1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Observe(1, 2)
				_ = c.Scale()
			}
		}()
	}
	wg.Wait()
	if s := c.Scale(); math.Abs(s-2) > 1e-9 {
		t.Fatalf("scale %g after concurrent steady observations, want 2", s)
	}
	if c.Observations() != 2000 {
		t.Fatalf("observations %d, want 2000", c.Observations())
	}
}
