package machine

import (
	"math"
	"sync"
	"testing"
)

// TestCalibratorConvergence: a steady measured/modelled ratio pulls the
// scale onto itself — the first observation seeds it, repeats converge
// geometrically — and Apply rescales only the seconds.
func TestCalibratorConvergence(t *testing.T) {
	c := NewCalibrator(0.25)
	if c.Scale() != 1 {
		t.Fatalf("fresh scale %g, want 1", c.Scale())
	}
	const truth = 3.5
	for i := 0; i < 40; i++ {
		c.Observe(10, 10*truth)
	}
	if s := c.Scale(); math.Abs(s-truth) > 1e-9 {
		t.Fatalf("scale %g after 40 steady observations, want %g", s, truth)
	}
	if c.Observations() != 40 {
		t.Fatalf("observations %d, want 40", c.Observations())
	}

	est := Estimate{NEl: 100, Steps: 50, StepSeconds: 0.01, Seconds: 0.5}
	got := c.Apply(est)
	if got.NEl != 100 || got.Steps != 50 {
		t.Fatalf("Apply moved deck facts: %+v", got)
	}
	if math.Abs(got.Seconds-0.5*truth) > 1e-9 || math.Abs(got.StepSeconds-0.01*truth) > 1e-9 {
		t.Fatalf("Apply scaled to %+v, want x%g", got, truth)
	}
}

// TestCalibratorTracksDrift: after converging on one ratio the average
// must follow a sustained shift to a new one (the EWMA forgets).
func TestCalibratorTracksDrift(t *testing.T) {
	c := NewCalibrator(0.25)
	for i := 0; i < 30; i++ {
		c.Observe(1, 4)
	}
	for i := 0; i < 60; i++ {
		c.Observe(1, 0.5)
	}
	if s := c.Scale(); math.Abs(s-0.5) > 1e-3 {
		t.Fatalf("scale %g after drift, want ~0.5", s)
	}
}

// TestCalibratorHostileObservations: degenerate wall clocks and
// modelled costs must neither move the scale nor count, and a single
// wild outlier is bounded by the per-observation clamp.
func TestCalibratorHostileObservations(t *testing.T) {
	c := NewCalibrator(0)
	for _, pair := range [][2]float64{
		{0, 1}, {1, 0}, {-1, 1}, {1, -1},
		{math.NaN(), 1}, {1, math.NaN()},
		{math.Inf(1), 1}, {1, math.Inf(1)},
	} {
		c.Observe(pair[0], pair[1])
	}
	if c.Observations() != 0 || c.Scale() != 1 {
		t.Fatalf("hostile observations counted: n=%d scale=%g", c.Observations(), c.Scale())
	}
	c.Observe(1, 1e12)
	if s := c.Scale(); s != calibClamp {
		t.Fatalf("outlier scale %g, want clamp %g", s, calibClamp)
	}
	c2 := NewCalibrator(0.25)
	c2.Observe(1e12, 1)
	if s := c2.Scale(); s != 1/calibClamp {
		t.Fatalf("inverse outlier scale %g, want %g", s, 1/calibClamp)
	}
}

// TestCalibratorConcurrent: Observe and Scale race freely in the
// daemon (legs complete while submissions price); run under -race this
// is the regression test for the lock.
func TestCalibratorConcurrent(t *testing.T) {
	c := NewCalibrator(0.1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Observe(1, 2)
				_ = c.Scale()
			}
		}()
	}
	wg.Wait()
	if s := c.Scale(); math.Abs(s-2) > 1e-9 {
		t.Fatalf("scale %g after concurrent steady observations, want 2", s)
	}
	if c.Observations() != 2000 {
		t.Fatalf("observations %d, want 2000", c.Observations())
	}
}
