package machine

import (
	"math"
	"sync"
)

// Calibrator refines PredictRun's absolute seconds online from
// completed runs. The model's ordering between decks is structural
// (monotone in elements and steps) but its absolute scale assumes a
// generic serving host; a live daemon sees real wall clocks, so it
// keeps an exponentially-weighted moving average of the measured/
// modelled ratio — equivalently, of measured seconds per element-step
// with the model as the unit — and scales subsequent estimates by it.
//
// Observations are untrusted in the same sense deck shapes are: a
// wall clock distorted by a stalled worker or a preempted leg must not
// poison admission control, so non-finite and non-positive inputs are
// dropped and each observation's ratio is clamped to [1/64, 64] before
// it enters the average.
type Calibrator struct {
	mu    sync.Mutex
	alpha float64
	scale float64
	n     int
}

// ratio clamp per observation: an estimate 64x off in either direction
// carries no more weight than one 64x off exactly.
const calibClamp = 64.0

// NewCalibrator returns a calibrator with the given EWMA weight in
// (0, 1]; out-of-range values select 0.25 (a new observation moves the
// scale a quarter of the way, converging within ~a dozen jobs without
// letting one outlier dominate).
func NewCalibrator(alpha float64) *Calibrator {
	if !(alpha > 0) || alpha > 1 {
		alpha = 0.25
	}
	return &Calibrator{alpha: alpha, scale: 1}
}

// Observe folds one completed run into the average: modelled is the
// uncalibrated PredictRun seconds for the deck, measured the wall
// seconds its legs actually took. Degenerate pairs are ignored.
func (c *Calibrator) Observe(modelled, measured float64) {
	if !(modelled > 0) || !(measured > 0) ||
		math.IsInf(modelled, 1) || math.IsInf(measured, 1) {
		return
	}
	r := measured / modelled
	if r > calibClamp {
		r = calibClamp
	}
	if r < 1/calibClamp {
		r = 1 / calibClamp
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		// Seed at the first measurement rather than decaying from 1:
		// the prior scale carries no information.
		c.scale = r
	} else {
		c.scale += c.alpha * (r - c.scale)
	}
	c.n++
}

// Scale returns the current measured/modelled ratio (1 until the first
// observation).
func (c *Calibrator) Scale() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scale
}

// Observations returns how many runs have been folded in.
func (c *Calibrator) Observations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// State snapshots the calibrator for persistence: the current scale
// and the observation count it was learned from, read atomically so a
// concurrent Observe cannot tear the pair.
func (c *Calibrator) State() (scale float64, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scale, c.n
}

// Restore reinstates a persisted State, the restart path of a durable
// serving daemon. Restored values are as untrusted as observations: a
// non-finite or non-positive scale, or a non-positive count, is
// dropped (the calibrator keeps its current state), and an in-range
// count with an out-of-range scale clamps to the same [1/64, 64]
// envelope every legitimately-learned scale lives in — a corrupt
// journal must not poison admission control.
func (c *Calibrator) Restore(scale float64, n int) {
	if !(scale > 0) || math.IsInf(scale, 1) || n <= 0 {
		return
	}
	if scale > calibClamp {
		scale = calibClamp
	}
	if scale < 1/calibClamp {
		scale = 1 / calibClamp
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scale = scale
	c.n = n
}

// Apply rescales an estimate by the current ratio. NEl and Steps are
// deck facts and stay put; only the seconds move.
func (c *Calibrator) Apply(est Estimate) Estimate {
	s := c.Scale()
	est.StepSeconds *= s
	est.Seconds *= s
	return est
}
