package machine

import "math"

// ScalingWorkload is the multi-node strong-scaling study of the paper's
// Figures 3 and 4: the Sod solver, hybrid MPI+OpenMP, scaled from 8 to
// 64 Cray XC50 nodes.
type ScalingWorkload struct {
	// NEl is the global element count; Steps the step count.
	NEl, Steps int
	// HotBytes is the per-element hot working set of the main loop
	// (the arrays re-touched every kernel); when a node's share fits
	// in last-level cache the effective bandwidth rises, producing
	// the superlinear region the paper observes between 8 and 16
	// nodes.
	HotBytes float64
	// NetBW (GB/s) and NetLatency (s) describe the Aries network.
	NetBW, NetLatency float64
}

// Fig3Workload returns the modelled Sod scaling workload, sized so the
// cache crossover falls between 8 and 16 nodes as in the paper.
func Fig3Workload() ScalingWorkload {
	return ScalingWorkload{
		NEl:      24_000_000,
		Steps:    45_000,
		HotBytes: 40,
		NetBW:    10, NetLatency: 1.5e-6,
	}
}

// ScalingPoint is one node count of the strong-scaling study.
type ScalingPoint struct {
	Nodes   int
	Overall float64
	// Viscosity and Acceleration are the per-kernel times of
	// Figures 4a and 4b.
	Viscosity, Acceleration float64
}

// cacheFactor returns the effective-time multiplier (< 1 is faster)
// for a per-node hot working set ws against the node's last-level
// cache. The transition is smoothed over a factor-of-two window.
func cacheFactor(wsBytes, cacheBytes float64) float64 {
	const boost = 3.2 // in-cache bandwidth advantage
	// Sigmoid in log2 space centred on the cache size.
	x := math.Log2(wsBytes / cacheBytes)
	s := 1 / (1 + math.Exp(-3.2*x)) // 0 when cached, 1 when not
	return (1 + (boost-1)*s) / boost
}

// llc returns the node's last-level cache in bytes (per-core L2 plus
// shared L3, both sockets).
func (p *Platform) llc() float64 {
	switch p.Name[:4] {
	case "Skyl":
		// 28 cores x 1 MiB L2 + 38.5 MiB L3, two sockets.
		return 2 * (28*1.0 + 38.5) * 1 << 20
	case "Broa":
		// 22 cores x 256 KiB L2 + 55 MiB L3, two sockets.
		return 2 * (22*0.25 + 55) * 1 << 20
	default:
		return 64 << 20
	}
}

// StrongScaling returns modelled times for the hybrid execution of the
// workload across the given node counts.
func (p *Platform) StrongScaling(w ScalingWorkload, nodes []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(nodes))
	for _, n := range nodes {
		nel := w.NEl / n
		ws := float64(nel) * w.HotBytes
		cf := cacheFactor(ws, p.llc())
		// Normalise: far-out-of-cache behaviour matches the flat
		// roofline (factor 1), cached regions run faster.
		cfOut := cacheFactor(math.Inf(1), p.llc())
		cf = cf / cfOut

		var overall, visc, acc float64
		sub := Workload{NEl: nel, Steps: w.Steps}
		for _, k := range Kernels {
			t := p.KernelTime(k, sub) * cf
			overall += t
			switch k.Name {
			case "getq":
				visc = t
			case "getacc":
				acc = t
			}
		}
		// Halo exchange: two exchanges per step over the partition
		// surface (~4 sqrt(nel) elements of ~200 B), plus the global
		// dt reduction latency (log2 nodes hops).
		surface := 4 * math.Sqrt(float64(nel)) * 200
		comm := float64(w.Steps) * (2*(surface/(w.NetBW*1e9)+w.NetLatency) +
			math.Log2(float64(n)+1)*w.NetLatency)
		overall += comm
		visc += comm / 2
		acc += comm / 2
		out = append(out, ScalingPoint{Nodes: n, Overall: overall, Viscosity: visc, Acceleration: acc})
	}
	return out
}
