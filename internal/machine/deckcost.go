package machine

import "math"

// This file is the serving-side cost predictor: given only the numbers
// a deck states (problem, mesh dimensions, end time, caps), estimate
// how many seconds the run will occupy a worker before admitting it.
// The estimate must be computable without building the mesh — admission
// control runs on untrusted input, and a hostile nx=10^9 deck must cost
// a multiplication, not an allocation — so everything here is closed
// arithmetic over the roofline model above.
//
// Admission control needs ordering more than accuracy: a deck with more
// elements, or more steps, must never predict cheaper. Both axes are
// monotone by construction — per-step time is linear in NEl (every
// cpuTime term scales with n) and total time is linear in Steps.

// RunShape is the part of a parsed deck the predictor consumes.
//
// Threads is the worker-pool width the *server* grants the run, never
// a deck-declared value: the estimate gates admission of untrusted
// input, and letting a hostile deck inflate the platform's bandwidth
// with threads=10^6 would make the most expensive decks predict the
// cheapest. Ranks, by contrast, is deck-declared CPU the job consumes
// *outside* the granted pool, so it multiplies the charge.
type RunShape struct {
	Problem  string
	NX, NY   int
	TEnd     float64 // 0 = problem default
	MaxSteps int     // 0 = uncapped
	Threads  int     // worker threads the server grants the run
	Ranks    int     // deck-declared rank count (0/1 = serial)
}

// Estimate is a predicted run cost.
type Estimate struct {
	NEl         int     // elements the deck's mesh will have (saturated)
	Steps       int     // predicted step count (saturated)
	StepSeconds float64 // predicted seconds per step on one worker
	Seconds     float64 // Steps * StepSeconds * Ranks; always finite, > 0
}

// Saturation bounds: hostile shapes clamp here instead of overflowing.
// Both sit far past any admissible budget, so losing ordering above
// the bound is irrelevant — a saturated estimate is rejected on size —
// and the int conversions below stay well inside int64.
const (
	maxPredictEl    = 1e15 // elements
	maxPredictSteps = 1e12 // steps
)

// problemTEnd mirrors the per-problem default end times the hydro setup
// applies when a deck leaves tend unset.
func problemTEnd(problem string) float64 {
	switch problem {
	case "sod":
		return 0.25
	case "noh", "nohdisc", "saltzmann":
		return 0.6
	case "sedov":
		return 1.0
	case "waterair":
		return 0.08
	default:
		return 0.25
	}
}

// stepRate is the predicted steps per unit simulated time per cell of
// linear resolution — a CFL surrogate: dt scales with the cell size
// h ~ 1/max(nx,ny) divided by a per-problem signal-speed scale.
func stepRate(problem string) float64 {
	switch problem {
	case "noh", "nohdisc":
		return 8
	case "sedov":
		return 12
	case "waterair":
		return 60
	default: // sod, saltzmann and unknowns: near-unit sound speed
		return 4
	}
}

// ServingHost is the platform model of one bleaf-served worker with the
// given thread count: a generic server core at 2 GHz with ~10 GB/s of
// memory bandwidth per core, run flat (every thread busy). Absolute
// seconds are indicative; ordering between decks is what admission
// control consumes.
func ServingHost(threads int) Platform {
	// Clamp to a physical host: callers pass the server-granted pool
	// width, but a stray deck-declared value must not buy unbounded
	// modelled bandwidth.
	if threads < 1 {
		threads = 1
	}
	if threads > 1024 {
		threads = 1024
	}
	return Platform{
		Name: "serving-host", Exec: FlatMPI,
		Sockets: 1, CoresPerSocket: threads,
		GHz: 2.0, OpsPerCycle: 1.0,
		NodeBW: 10 * float64(threads), CoreBW: 10,
	}
}

// PredictRun estimates the cost of running a deck of the given shape on
// a serving-host worker. Steps grow with TEnd and linear resolution
// (CFL), capped by MaxSteps; per-step seconds are the roofline over the
// full kernel inventory at the deck's element count, multiplied by the
// rank count (each rank occupies its own CPU share for the whole run).
// The result is strictly monotone in NX*NY and in the predicted step
// count up to the saturation bounds, and always finite and positive:
// all sizing arithmetic runs in float64 with explicit clamps, so
// hostile shapes (nx=10^10, tend=1e300, NaN) saturate instead of
// overflowing int conversions into a near-zero or negative estimate.
func PredictRun(sh RunShape) Estimate {
	nx, ny := sh.NX, sh.NY
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	nelF := float64(nx) * float64(ny)
	if nelF > maxPredictEl {
		nelF = maxPredictEl
	}

	ranks := sh.Ranks
	if ranks < 1 {
		ranks = 1
	}

	tEnd := sh.TEnd
	if math.IsNaN(tEnd) || tEnd <= 0 {
		tEnd = problemTEnd(sh.Problem)
	}
	maxDim := nx
	if ny > maxDim {
		maxDim = ny
	}
	stepsF := math.Ceil(tEnd * stepRate(sh.Problem) * float64(maxDim))
	if !(stepsF >= 1) { // also catches NaN
		stepsF = 1
	}
	if stepsF > maxPredictSteps {
		stepsF = maxPredictSteps
	}
	if sh.MaxSteps > 0 && stepsF > float64(sh.MaxSteps) {
		stepsF = float64(sh.MaxSteps)
	}

	host := ServingHost(sh.Threads)
	perStep := host.OverallOf(Kernels, Workload{NEl: int(nelF), Steps: 1})
	secs := perStep * stepsF * float64(ranks)
	if math.IsInf(secs, 1) {
		secs = math.MaxFloat64
	}
	if !(secs > 0) { // NaN or non-positive: never admit for free
		secs = math.MaxFloat64
	}
	return Estimate{
		NEl:         int(nelF),
		Steps:       int(stepsF),
		StepSeconds: perStep,
		Seconds:     secs,
	}
}
