package machine

import "math"

// This file is the serving-side cost predictor: given only the numbers
// a deck states (problem, mesh dimensions, end time, caps), estimate
// how many seconds the run will occupy a worker before admitting it.
// The estimate must be computable without building the mesh — admission
// control runs on untrusted input, and a hostile nx=10^9 deck must cost
// a multiplication, not an allocation — so everything here is closed
// arithmetic over the roofline model above.
//
// Admission control needs ordering more than accuracy: a deck with more
// elements, or more steps, must never predict cheaper. Both axes are
// monotone by construction — per-step time is linear in NEl (every
// cpuTime term scales with n) and total time is linear in Steps.

// RunShape is the part of a parsed deck the predictor consumes.
type RunShape struct {
	Problem  string
	NX, NY   int
	TEnd     float64 // 0 = problem default
	MaxSteps int     // 0 = uncapped
	Threads  int     // worker threads the run will be given
}

// Estimate is a predicted run cost.
type Estimate struct {
	NEl         int     // elements the deck's mesh will have
	Steps       int     // predicted step count
	StepSeconds float64 // predicted seconds per step
	Seconds     float64 // Steps * StepSeconds
}

// problemTEnd mirrors the per-problem default end times the hydro setup
// applies when a deck leaves tend unset.
func problemTEnd(problem string) float64 {
	switch problem {
	case "sod":
		return 0.25
	case "noh", "nohdisc", "saltzmann":
		return 0.6
	case "sedov":
		return 1.0
	case "waterair":
		return 0.08
	default:
		return 0.25
	}
}

// stepRate is the predicted steps per unit simulated time per cell of
// linear resolution — a CFL surrogate: dt scales with the cell size
// h ~ 1/max(nx,ny) divided by a per-problem signal-speed scale.
func stepRate(problem string) float64 {
	switch problem {
	case "noh", "nohdisc":
		return 8
	case "sedov":
		return 12
	case "waterair":
		return 60
	default: // sod, saltzmann and unknowns: near-unit sound speed
		return 4
	}
}

// ServingHost is the platform model of one bleaf-served worker with the
// given thread count: a generic server core at 2 GHz with ~10 GB/s of
// memory bandwidth per core, run flat (every thread busy). Absolute
// seconds are indicative; ordering between decks is what admission
// control consumes.
func ServingHost(threads int) Platform {
	if threads < 1 {
		threads = 1
	}
	return Platform{
		Name: "serving-host", Exec: FlatMPI,
		Sockets: 1, CoresPerSocket: threads,
		GHz: 2.0, OpsPerCycle: 1.0,
		NodeBW: 10 * float64(threads), CoreBW: 10,
	}
}

// PredictRun estimates the cost of running a deck of the given shape on
// a serving-host worker. Steps grow with TEnd and linear resolution
// (CFL), capped by MaxSteps; per-step seconds are the roofline over the
// full kernel inventory at the deck's element count. The result is
// strictly monotone in NX*NY and in the predicted step count.
func PredictRun(sh RunShape) Estimate {
	nx, ny := sh.NX, sh.NY
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	nel := nx * ny

	tEnd := sh.TEnd
	if tEnd <= 0 {
		tEnd = problemTEnd(sh.Problem)
	}
	maxDim := nx
	if ny > maxDim {
		maxDim = ny
	}
	steps := int(math.Ceil(tEnd * stepRate(sh.Problem) * float64(maxDim)))
	if steps < 1 {
		steps = 1
	}
	if sh.MaxSteps > 0 && steps > sh.MaxSteps {
		steps = sh.MaxSteps
	}

	host := ServingHost(sh.Threads)
	perStep := host.OverallOf(Kernels, Workload{NEl: nel, Steps: 1})
	return Estimate{
		NEl:         nel,
		Steps:       steps,
		StepSeconds: perStep,
		Seconds:     perStep * float64(steps),
	}
}
