package machine

import (
	"math"
	"testing"
)

// gridElNd builds the row-major element→node map of a w×h quad grid —
// the numbering the generators emit and the Kernels table's Bytes are
// calibrated against.
func gridElNd(w, h int) ([][4]int, int) {
	elnd := make([][4]int, w*h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			n0 := j*(w+1) + i
			elnd[j*w+i] = [4]int{n0, n0 + 1, n0 + w + 2, n0 + w + 1}
		}
	}
	return elnd, (w + 1) * (h + 1)
}

// blockedElNd permutes the grid sweep into b×b tiles and renumbers the
// nodes by first touch — a cheap stand-in for the order package's
// space-filling-curve + first-touch renumbering, with the same locality
// character.
func blockedElNd(w, h, b int) ([][4]int, int) {
	row, nnd := gridElNd(w, h)
	var out [][4]int
	for bj := 0; bj < h; bj += b {
		for bi := 0; bi < w; bi += b {
			for j := bj; j < bj+b && j < h; j++ {
				for i := bi; i < bi+b && i < w; i++ {
					out = append(out, row[j*w+i])
				}
			}
		}
	}
	relabel := make([]int, nnd)
	for i := range relabel {
		relabel[i] = -1
	}
	next := 0
	for e := range out {
		for k := 0; k < 4; k++ {
			if relabel[out[e][k]] < 0 {
				relabel[out[e][k]] = next
				next++
			}
			out[e][k] = relabel[out[e][k]]
		}
	}
	return out, nnd
}

// TestMeshReuseRowMajorVsBlocked: on a mesh much wider than the reuse
// window, the row-major sweep misses on every row-to-row re-touch while
// a blocked sweep keeps each tile's nodes resident — the effect the
// renumbering exists to produce, visible to the proxy.
func TestMeshReuseRowMajorVsBlocked(t *testing.T) {
	const w, h, win = 256, 64, 48
	row, nnd := gridElNd(w, h)
	blk, _ := blockedElNd(w, h, 8)
	lr := MeshReuse(row, nnd, win)
	lb := MeshReuse(blk, nnd, win)
	if lr.MissRate <= lb.MissRate {
		t.Fatalf("row-major miss rate %.4f not above blocked %.4f", lr.MissRate, lb.MissRate)
	}
	if lr.Span <= lb.Span {
		t.Fatalf("row-major span %.1f not above blocked %.1f", lr.Span, lb.Span)
	}
	// Row-major at window 48 on width 256: every row-to-row reuse (two
	// of the four touches, minus boundaries) misses.
	if lr.MissRate < 0.4 {
		t.Fatalf("row-major miss rate %.4f implausibly low", lr.MissRate)
	}
}

func TestMeshReuseDegenerate(t *testing.T) {
	l := MeshReuse(nil, 0, 0)
	if l.MissRate != 0 || l.Span != 0 || l.Window != DefaultReuseWindow {
		t.Fatalf("empty sweep: %+v", l)
	}
}

// TestGatherBytesWithinBytes: the locality-sensitive share is a share —
// never more than the kernel's total traffic — and the corner-gather
// kernels all declare one.
func TestGatherBytesWithinBytes(t *testing.T) {
	gatherKernels := map[string]bool{
		"getq": true, "getacc": true, "getdt": true,
		"getgeom": true, "getforce": true, "getein": true,
	}
	for _, ks := range [][]Kernel{Kernels, FusedKernels()} {
		for _, k := range ks {
			if k.GatherBytes < 0 || k.GatherBytes > k.Bytes {
				t.Errorf("%s: GatherBytes %.0f outside [0, %.0f]", k.Name, k.GatherBytes, k.Bytes)
			}
		}
	}
	for _, k := range Kernels {
		if gatherKernels[k.Name] && k.GatherBytes == 0 {
			t.Errorf("%s: corner-gather kernel with no GatherBytes", k.Name)
		}
		if !gatherKernels[k.Name] && k.GatherBytes != 0 {
			t.Errorf("%s: element-local kernel with GatherBytes %.0f", k.Name, k.GatherBytes)
		}
	}
}

// TestEffectiveBytesIdentity: derate 1 must reproduce the calibrated
// table exactly — the locality correction is strictly relative.
func TestEffectiveBytesIdentity(t *testing.T) {
	for _, k := range Kernels {
		if got := k.EffectiveBytes(1); got != k.Bytes {
			t.Errorf("%s: EffectiveBytes(1) = %g, want %g", k.Name, got, k.Bytes)
		}
		if got := k.EffectiveBytes(0.5); got > k.Bytes {
			t.Errorf("%s: derate 0.5 increased bytes to %g", k.Name, got)
		}
	}
}

func TestGatherDerateClamps(t *testing.T) {
	base := Locality{MissRate: 0.4}
	if d := GatherDerate(Locality{MissRate: 0.4}, base); d != 1 {
		t.Fatalf("same profile derate %g, want 1", d)
	}
	if d := GatherDerate(Locality{MissRate: 1e-9}, base); d != 0.125 {
		t.Fatalf("floor clamp %g, want 0.125", d)
	}
	if d := GatherDerate(Locality{MissRate: 1e9}, base); d != 8 {
		t.Fatalf("ceiling clamp %g, want 8", d)
	}
	if d := GatherDerate(Locality{MissRate: 0.2}, Locality{}); d != 1 {
		t.Fatalf("zero baseline derate %g, want 1", d)
	}
	if d := GatherDerate(Locality{MissRate: math.NaN()}, base); d != 1 {
		t.Fatalf("NaN profile derate %g, want 1", d)
	}
}

// TestPredictReorderGain: a measured locality improvement must predict
// a speedup, a matching profile must predict none, and the gain must
// stay under the all-gathers-free bound.
func TestPredictReorderGain(t *testing.T) {
	const w, h = 256, 64
	row, nnd := gridElNd(w, h)
	blk, _ := blockedElNd(w, h, 8)
	base := MeshReuse(row, nnd, 48)
	reord := MeshReuse(blk, nnd, 48)

	// The serving host is compute-bound for every kernel, so locality
	// cannot move it; predict on the bandwidth-bound testbed rows
	// (Skylake flat MPI), where getacc/getdt/getrho sit on the memory
	// roof.
	host := Platforms()[0]
	gain := PredictReorderGain(&host, Kernels, w*h, base, reord)
	if gain <= 1 {
		t.Fatalf("better locality predicted gain %g <= 1", gain)
	}
	// Bound: dropping every gather byte entirely.
	var full, stream float64
	for _, k := range Kernels {
		full += k.CallsPerStep * k.Bytes
		stream += k.CallsPerStep * (k.Bytes - k.GatherBytes)
	}
	if gain > full/stream {
		t.Fatalf("gain %g above the zero-gather bound %g", gain, full/stream)
	}
	if same := PredictReorderGain(&host, Kernels, w*h, base, base); same != 1 {
		t.Fatalf("identical profiles predicted gain %g, want 1", same)
	}
	// The fused inventory sees the same direction of effect.
	if g := PredictReorderGain(&host, FusedKernels(), w*h, base, reord); g <= 1 {
		t.Fatalf("fused inventory predicted gain %g <= 1", g)
	}
}
