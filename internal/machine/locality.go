// Mesh-locality proxy: the model-side view of the renumbering pass in
// internal/order (see DESIGN.md §15). The hot kernels' off-chip traffic
// splits into streamed element arrays — whose cost no numbering can
// change — and indirect corner gathers through the element→node map,
// whose cost depends entirely on how soon a node is re-touched after its
// cache line was last filled. This file measures that as a reuse-window
// miss rate over the element sweep and folds it into the roofline, so
// the model predicts the reorder gain the same way it predicts the
// fusion gain: as a bytes ratio, sitting next to the measured delta.

package machine

// Locality is a measured traversal profile of one element sweep over a
// mesh numbering.
type Locality struct {
	// Window is the reuse window in elements the profile was taken at:
	// a node touch hits when some element within the last Window
	// elements of the sweep touched it (its line is still resident).
	Window int
	// MissRate is the fraction of the sweep's 4·NEl corner touches
	// that miss the window — compulsory first touches included, since
	// the memory system pays for those lines too.
	MissRate float64
	// Span is the mean index span (max−min corner node id) of one
	// element's gather, in nodes: the indirection-span proxy. A
	// row-major numbering has spans of about the mesh width; a
	// locality order pulls it down to O(1)–O(window).
	Span float64
}

// DefaultReuseWindow approximates how many elements of hot corner data
// a per-core L2 holds: at ~50 B of node lines per element, 4096
// elements is ~200 KiB — between the testbed's 256 KiB (Broadwell) and
// 1 MiB (Skylake) L2 slices. The bench records profiles at this window;
// callers with a specific cache in mind pass their own.
const DefaultReuseWindow = 4096

// MeshReuse profiles one sweep e = 0..len(elnd)-1 over the element→node
// map, with nnd nodes and the given reuse window (<= 0 selects
// DefaultReuseWindow). The numbering under test is the order of elnd
// itself: profile a renumbered mesh by passing its ElNd.
func MeshReuse(elnd [][4]int, nnd, window int) Locality {
	if window <= 0 {
		window = DefaultReuseWindow
	}
	last := make([]int, nnd)
	for i := range last {
		last[i] = -1
	}
	var misses, spanSum float64
	for e := range elnd {
		lo, hi := elnd[e][0], elnd[e][0]
		for k := 0; k < 4; k++ {
			n := elnd[e][k]
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
			if last[n] < 0 || e-last[n] > window {
				misses++
			}
			last[n] = e
		}
		spanSum += float64(hi - lo)
	}
	touches := 4 * float64(len(elnd))
	if touches == 0 {
		return Locality{Window: window}
	}
	return Locality{
		Window:   window,
		MissRate: misses / touches,
		Span:     spanSum / float64(len(elnd)),
	}
}

// GatherDerate converts two profiles into the multiplier on a kernel's
// indirect gather bytes: traffic scales with the miss rate, relative to
// the baseline numbering the Kernels table's Bytes were calibrated on
// (the generators' row-major sweep). Clamped to [1/8, 8] — no
// renumbering can cut gather traffic below the compulsory line fills
// (already a small share of the baseline misses on any wide mesh) nor
// inflate it past every touch missing.
func GatherDerate(loc, base Locality) float64 {
	if !(base.MissRate > 0) || !(loc.MissRate >= 0) {
		return 1
	}
	r := loc.MissRate / base.MissRate
	if r < 0.125 {
		r = 0.125
	}
	if r > 8 {
		r = 8
	}
	return r
}

// EffectiveBytes is the kernel's per-element off-chip traffic with its
// gather share rescaled by derate: streamed bytes are numbering-
// invariant, only the GatherBytes share moves.
func (k Kernel) EffectiveBytes(derate float64) float64 {
	return k.Bytes - k.GatherBytes + k.GatherBytes*derate
}

// StepTimeLocal is the flat-roofline per-step seconds of inventory ks
// at nel elements with the gather derate applied — the locality-aware
// sibling of OverallOf over one step. Only the CPU execution models
// carry a locality correction (the measured meshes live there); device
// platforms fall back to the uncorrected time.
func (p *Platform) StepTimeLocal(ks []Kernel, nel int, derate float64) float64 {
	w := Workload{NEl: nel, Steps: 1}
	var sum float64
	for _, k := range ks {
		switch p.Exec {
		case FlatMPI, Hybrid:
			adj := k
			adj.Bytes = k.EffectiveBytes(derate)
			sum += p.KernelTime(adj, w)
		default:
			sum += p.KernelTime(k, w)
		}
	}
	return sum
}

// PredictReorderGain is the modelled speedup of running inventory ks on
// the numbering profiled as reord instead of base: the ratio of
// locality-adjusted step times, >1 when the reordering helps. The base
// profile derates to 1 by construction, so gain 1 means the numberings
// look alike to the cache.
func PredictReorderGain(p *Platform, ks []Kernel, nel int, base, reord Locality) float64 {
	tb := p.StepTimeLocal(ks, nel, GatherDerate(base, base))
	tr := p.StepTimeLocal(ks, nel, GatherDerate(reord, base))
	if !(tr > 0) {
		return 1
	}
	return tb / tr
}
