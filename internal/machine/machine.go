// Package machine is the platform performance model that stands in for
// the paper's hardware testbed (Cray XC50 Skylake/Broadwell nodes and
// NVIDIA P100/V100 GPUs — none of which exist in this environment).
//
// The model is a roofline with execution-model corrections. Each hydro
// kernel is described by its per-element work — weighted arithmetic
// operations (sqrt/div count ~10-15x, which is what makes the viscosity
// kernel dominant) and effective off-chip bytes — plus how it behaves
// under each of the paper's four execution models:
//
//   - Flat MPI: every core busy; per-step time is the roofline
//     max(compute, memory) over the whole node.
//   - Hybrid MPI+OpenMP: one rank per socket. Each kernel has a
//     calibrated SerialFrac — the fraction its OpenMP port leaves on a
//     single thread (the acceleration scatter's data dependency, the
//     MINVAL/MINLOC expansion in getdt, the nodal part of getgeom) —
//     which runs at one core per socket. These fractions encode the
//     paper's reported OpenMP issues and are fit to Table II's
//     hybrid/flat ratios; everything else follows from the structure.
//   - OpenMP target offload: device roofline with per-kernel occupancy
//     derates (register pressure); data resident, launches cheap.
//   - CUDA Fortran: as offload, multiplied by a per-kernel PGI factor,
//     plus per-launch dope-vector descriptor transfers (the 72-96 byte
//     transfers the paper profiles), a per-step host synchronisation,
//     and the time differential kernel forced onto the host behind a
//     PCIe transfer (CUDA Fortran lacks reduction primitives). Kernels
//     whose device work the paper's timer does not capture (the
//     asynchronously-launched force kernel, at 0.5s clearly not timing
//     device work) are modelled as launch cost only.
//
// Absolute seconds follow from public hardware specs plus one workload
// calibration (1M-element Noh, 5200 steps — flat-MPI Skylake then lands
// at the paper's ~76 s); relative effects (who wins, by what factor)
// come from the model's structure and the per-kernel descriptors.
package machine

import (
	"fmt"
	"math"
)

// ExecModel is how a platform executes the hydro kernels.
type ExecModel int

const (
	// FlatMPI is one single-threaded process per core.
	FlatMPI ExecModel = iota
	// Hybrid is one process per NUMA region with OpenMP threads.
	Hybrid
	// OffloadOpenMP is OpenMP 4 target offload to a GPU.
	OffloadOpenMP
	// CUDA is the CUDA Fortran port.
	CUDA
)

func (m ExecModel) String() string {
	switch m {
	case FlatMPI:
		return "MPI"
	case Hybrid:
		return "Hybrid"
	case OffloadOpenMP:
		return "OpenMP"
	case CUDA:
		return "CUDA"
	default:
		return fmt.Sprintf("ExecModel(%d)", int(m))
	}
}

// Kernel describes one hydro kernel's per-element work and its
// execution-model behaviour.
type Kernel struct {
	Name string
	// Ops is the per-element weighted arithmetic (sqrt ~ 15, div ~ 8);
	// Bytes the effective off-chip traffic per element.
	Ops, Bytes float64
	// GatherBytes is the share of Bytes moved through indirect
	// corner-node gathers/scatters (coordinates, velocities, nodal
	// masses and forces indexed via ElNd) — the only share a mesh
	// renumbering can change. See locality.go; 0 marks an
	// element-local kernel.
	GatherBytes float64
	// CallsPerStep: predictor+corrector kernels run twice per step.
	CallsPerStep float64
	// SerialFrac is the fraction serialised under intra-rank
	// threading (data dependencies, workshare fallbacks), calibrated
	// to Table II's hybrid/flat ratios.
	SerialFrac float64
	// GPUDerate multiplies device time under OpenMP offload
	// (occupancy/register pressure; 1 = full roofline). CUDAExtra is
	// the additional PGI CUDA-Fortran factor.
	GPUDerate, CUDAExtra float64
	// HostOnlyCUDA marks the time differential kernel: the CUDA port
	// transfers TransferBytes per element to the host and reduces
	// there with HostOps per element on one core.
	HostOnlyCUDA  bool
	TransferBytes float64
	HostOps       float64
	// CUDAAsync marks kernels whose paper timing is launch-only.
	CUDAAsync bool
	// Launches and Arrays give per-call kernel launches and array
	// arguments (dope-vector descriptors) for the device models.
	Launches, Arrays float64
}

// Kernels is BookLeaf's per-step kernel inventory, following the
// implementation in internal/hydro. getq gathers two neighbour rings
// and runs limiter/sqrt chains — the dominant CPU kernel (Table II:
// 70% of flat-MPI Skylake, 64% of Broadwell).
// GatherBytes shares: getq gathers coordinates and velocities over its
// own and its neighbours' corners (two rings), getacc gathers corner
// forces/masses around each node and scatters accelerations back,
// getdt's reductions gather the corner coordinates and velocities,
// getgeom and getein re-gather coordinates, getforce gathers the
// corner ring once. getpc and getrho are element-local streams.
var Kernels = []Kernel{
	{Name: "getq", Ops: 1050, Bytes: 620, GatherBytes: 360, CallsPerStep: 2, SerialFrac: 0.0065,
		GPUDerate: 2.1, CUDAExtra: 1.27, Launches: 1, Arrays: 9},
	{Name: "getacc", Ops: 60, Bytes: 271, GatherBytes: 160, CallsPerStep: 1, SerialFrac: 0.21,
		GPUDerate: 13.7, CUDAExtra: 0.82, Launches: 2, Arrays: 7},
	{Name: "getdt", Ops: 400, Bytes: 250, GatherBytes: 120, CallsPerStep: 1, SerialFrac: 0.185,
		GPUDerate: 1.83, CUDAExtra: 1.0, HostOnlyCUDA: true,
		TransferBytes: 60, HostOps: 15, Launches: 1, Arrays: 5},
	{Name: "getgeom", Ops: 40, Bytes: 69, GatherBytes: 40, CallsPerStep: 2, SerialFrac: 0.505,
		GPUDerate: 16.8, CUDAExtra: 1.17, Launches: 2, Arrays: 6},
	{Name: "getforce", Ops: 122, Bytes: 80, GatherBytes: 48, CallsPerStep: 2, SerialFrac: 0,
		GPUDerate: 9.6, CUDAExtra: 1.0, CUDAAsync: true, Launches: 1, Arrays: 8},
	{Name: "getpc", Ops: 20, Bytes: 26, CallsPerStep: 2, SerialFrac: 0.032,
		GPUDerate: 2.6, CUDAExtra: 9.6, Launches: 1, Arrays: 4},
	{Name: "getrho", Ops: 4, Bytes: 16, CallsPerStep: 2, SerialFrac: 0,
		GPUDerate: 1.0, CUDAExtra: 1.0, Launches: 1, Arrays: 3},
	{Name: "getein", Ops: 30, Bytes: 50, GatherBytes: 24, CallsPerStep: 2, SerialFrac: 0.03,
		GPUDerate: 1.2, CUDAExtra: 1.2, Launches: 1, Arrays: 6},
}

// Platform describes one hardware/compiler configuration (the rows of
// the paper's Table I) under one execution model.
type Platform struct {
	Name     string
	System   string
	Compiler string
	Flags    string

	Exec ExecModel

	// CPU side.
	Sockets, CoresPerSocket int
	GHz                     float64
	OpsPerCycle             float64 // effective weighted ops/cycle/core
	NodeBW                  float64 // GB/s aggregate
	CoreBW                  float64 // GB/s single core

	// GPU side.
	GPUBW     float64 // GB/s device memory
	GPUTflops float64 // effective weighted Tops/s
	PCIeBW    float64 // GB/s host<->device
	// Host CPU attached to the GPU (runs the CUDA dt kernel).
	HostGHz, HostOPC float64

	LaunchCost float64 // seconds per kernel launch
	DopeCost   float64 // seconds per dope-vector descriptor transfer
	SyncCost   float64 // seconds per step of host synchronisation (CUDA)
}

// Platforms returns the paper's Table I configurations under the
// execution models of Table II (Skylake and Broadwell appear twice:
// flat MPI and hybrid).
func Platforms() []Platform {
	skl := Platform{
		Name: "Skylake", System: "Cray XC50", Compiler: "Cray",
		Flags:   "-h cpu=x86-skylake -h network=aries -sreal64 -sinteger -ffree -ra -Oipa3 -O3",
		Sockets: 2, CoresPerSocket: 28, GHz: 2.1, OpsPerCycle: 2.0,
		NodeBW: 210, CoreBW: 14,
	}
	bdw := Platform{
		Name: "Broadwell", System: "Cray XC50", Compiler: "Cray",
		Flags:   "-h cpu=broadwell -h network=aries -sreal64 -sinteger32 -ffree -ra -Oipa3 -O3",
		Sockets: 2, CoresPerSocket: 22, GHz: 2.2, OpsPerCycle: 1.61,
		NodeBW: 135, CoreBW: 13,
	}
	gpuBase := Platform{
		Sockets: 1, CoresPerSocket: 1,
		PCIeBW: 12, HostGHz: 2.0, HostOPC: 1.6,
		LaunchCost: 8e-6, DopeCost: 9e-6,
	}

	sklMPI := skl
	sklMPI.Exec = FlatMPI
	sklMPI.Name = "Skylake MPI"
	sklHyb := skl
	sklHyb.Exec = Hybrid
	sklHyb.Name = "Skylake Hybrid"
	bdwMPI := bdw
	bdwMPI.Exec = FlatMPI
	bdwMPI.Name = "Broadwell MPI"
	bdwHyb := bdw
	bdwHyb.Exec = Hybrid
	bdwHyb.Name = "Broadwell Hybrid"

	p100omp := gpuBase
	p100omp.Name, p100omp.System, p100omp.Compiler = "P100 (OpenMP)", "Cray XC50", "Cray"
	p100omp.Flags = "-h cpu=broadwell -h accel=nvidia_60 -h network=aries -sreal sinteger32 -ffree -ra -Oipa3 -O3"
	p100omp.Exec = OffloadOpenMP
	p100omp.GPUBW, p100omp.GPUTflops = 720, 0.30

	p100cuda := gpuBase
	p100cuda.Name, p100cuda.System, p100cuda.Compiler = "P100 (CUDA)", "SuperMicro 2028GR-TR", "PGI"
	p100cuda.Flags = "-c -r8 -i4 -Mfree -fastsse -O2 -Mipa=fast -Mcuda=cc60"
	p100cuda.Exec = CUDA
	p100cuda.GPUBW, p100cuda.GPUTflops = 720, 0.30
	p100cuda.SyncCost = 2e-3

	v100cuda := gpuBase
	v100cuda.Name, v100cuda.System, v100cuda.Compiler = "V100 (CUDA)", "SuperMicro 2028GR-TR", "PGI"
	v100cuda.Flags = "-c -r8 -i4 -Mfree -fastsse -O2 -Mipa=fast -Mcuda=cc70"
	v100cuda.Exec = CUDA
	v100cuda.GPUBW, v100cuda.GPUTflops = 740, 0.52
	v100cuda.SyncCost = 2e-3

	return []Platform{sklMPI, sklHyb, bdwMPI, bdwHyb, p100omp, p100cuda, v100cuda}
}

// Workload is the modelled problem: the paper's single-node Noh run.
// The size/steps pair is the single global calibration, chosen so
// flat-MPI Skylake lands near Table II's 76 s (a 1000x1000 quadrant for
// ~5200 steps is also a plausible Noh deck).
type Workload struct {
	NEl   int
	Steps int
}

// Table2Workload returns the modelled Noh workload.
func Table2Workload() Workload {
	return Workload{NEl: 1_000_000, Steps: 5200}
}

// cores returns the total cores of a CPU platform.
func (p *Platform) cores() int { return p.Sockets * p.CoresPerSocket }

// KernelTime returns the modelled seconds kernel k takes over the whole
// run on platform p.
func (p *Platform) KernelTime(k Kernel, w Workload) float64 {
	n := float64(w.NEl)
	perStep := 0.0
	switch p.Exec {
	case FlatMPI:
		perStep = p.cpuTime(k, n, 0)
	case Hybrid:
		perStep = p.cpuTime(k, n, k.SerialFrac)
	case OffloadOpenMP:
		perStep = k.CallsPerStep * (p.deviceTime(k, n)*k.GPUDerate + k.Launches*p.LaunchCost)
	case CUDA:
		switch {
		case k.HostOnlyCUDA:
			// Device->host transfer plus a single-core host MINVAL.
			xfer := k.TransferBytes * n / (p.PCIeBW * 1e9)
			host := k.HostOps * n / (p.HostGHz * 1e9 * p.HostOPC)
			perStep = k.CallsPerStep * (xfer + host)
		case k.CUDAAsync:
			perStep = k.CallsPerStep * (k.Launches*p.LaunchCost + k.Arrays*p.DopeCost)
		default:
			perStep = k.CallsPerStep * (p.deviceTime(k, n)*k.GPUDerate*k.CUDAExtra +
				k.Launches*p.LaunchCost + k.Arrays*p.DopeCost)
		}
		// A share of the per-step host synchronisation, attributed
		// proportionally to calls.
		perStep += p.SyncCost * k.CallsPerStep / totalCalls()
	}
	return perStep * float64(w.Steps)
}

var totalCallsCache float64

func totalCalls() float64 {
	if totalCallsCache == 0 {
		for _, k := range Kernels {
			totalCallsCache += k.CallsPerStep
		}
	}
	return totalCallsCache
}

// cpuTime returns per-step seconds with serialFrac of the kernel
// confined to one core per socket.
func (p *Platform) cpuTime(k Kernel, n, serialFrac float64) float64 {
	opsRate := float64(p.cores()) * p.GHz * 1e9 * p.OpsPerCycle
	parallel := (1 - serialFrac) * k.CallsPerStep * maxf(
		k.Ops*n/opsRate,
		k.Bytes*n/(p.NodeBW*1e9),
	)
	serial := 0.0
	if serialFrac > 0 {
		ranks := float64(p.Sockets)
		serial = serialFrac * k.CallsPerStep * maxf(
			k.Ops*n/(ranks*p.GHz*1e9*p.OpsPerCycle),
			k.Bytes*n/(ranks*p.CoreBW*1e9),
		)
	}
	return parallel + serial
}

// deviceTime returns the per-call device roofline seconds.
func (p *Platform) deviceTime(k Kernel, n float64) float64 {
	return maxf(
		k.Ops*n/(p.GPUTflops*1e12),
		k.Bytes*n/(p.GPUBW*1e9),
	)
}

// Overall returns the modelled total runtime (sum of kernels).
func (p *Platform) Overall(w Workload) float64 {
	return p.OverallOf(Kernels, w)
}

// OverallOf returns the modelled total runtime over an explicit kernel
// inventory — Kernels for the paper-structure step, FusedKernels() for
// the fused element passes.
func (p *Platform) OverallOf(ks []Kernel, w Workload) float64 {
	var sum float64
	for _, k := range ks {
		sum += p.KernelTime(k, w)
	}
	return sum
}

// KernelByName returns the kernel descriptor, or false.
func KernelByName(name string) (Kernel, bool) {
	for _, k := range Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// maxf is math.Max: NaN-propagating (a NaN operand poisons the
// roofline instead of being silently dropped — `a > b` is false for
// NaN, which used to return the other operand and hide a corrupted
// descriptor) and max(+0, -0) = +0.
func maxf(a, b float64) float64 {
	return math.Max(a, b)
}
