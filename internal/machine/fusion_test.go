package machine

import (
	"math"
	"testing"
)

// maxf must match math.Max exactly: a NaN operand poisons the result
// (the naive a > b form returned the other operand, silently hiding a
// corrupted kernel descriptor) and +0 beats -0.
func TestMaxfMatchesMathMax(t *testing.T) {
	nan := math.NaN()
	vals := []float64{nan, math.Inf(1), math.Inf(-1), -1, math.Copysign(0, -1), 0, 1, 2.5}
	for _, a := range vals {
		for _, b := range vals {
			got, want := maxf(a, b), math.Max(a, b)
			if math.IsNaN(want) {
				if !math.IsNaN(got) {
					t.Fatalf("maxf(%v, %v) = %v, want NaN", a, b, got)
				}
				continue
			}
			if got != want || math.Signbit(got) != math.Signbit(want) {
				t.Fatalf("maxf(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// A NaN in a descriptor must propagate through KernelTime rather than
// vanish into the other roofline arm.
func TestKernelTimeNaNPropagates(t *testing.T) {
	p := Platforms()[0]
	w := Table2Workload()
	k, _ := KernelByName("getq")
	k.Ops = math.NaN()
	if got := p.KernelTime(k, w); !math.IsNaN(got) {
		t.Fatalf("KernelTime with NaN ops = %v, want NaN", got)
	}
}

func TestFusionInventory(t *testing.T) {
	want := map[string][]string{
		"qforce":    {"getq", "getforce"},
		"lagupdate": {"getgeom", "getrho", "getein", "getpc"},
		"dtreduce":  {"getdt"},
	}
	if len(Fusions) != len(want) {
		t.Fatalf("fusion count %d, want %d", len(Fusions), len(want))
	}
	for name, members := range want {
		f, ok := FusionByName(name)
		if !ok {
			t.Fatalf("fusion %s missing", name)
		}
		if len(f.Replaces) != len(members) {
			t.Fatalf("%s replaces %v, want %v", name, f.Replaces, members)
		}
		for i, m := range members {
			if f.Replaces[i] != m {
				t.Fatalf("%s replaces %v, want %v", name, f.Replaces, members)
			}
		}
		if f.SavedBytes <= 0 {
			t.Fatalf("%s saves no bytes — not a fusion", name)
		}
	}
	if _, ok := FusionByName("bogus"); ok {
		t.Fatal("bogus fusion found")
	}
}

// A fusion can only remove traffic the Kernels table already charged:
// fused work is positive and strictly below the unfused sum.
func TestFusedWorkBelowUnfused(t *testing.T) {
	for _, f := range Fusions {
		uo, ub := f.Unfused()
		fo, fb := f.Fused()
		if !(fb > 0 && fb < ub) {
			t.Fatalf("%s: fused bytes %v outside (0, %v)", f.Name, fb, ub)
		}
		if !(fo > 0 && fo <= uo) {
			t.Fatalf("%s: fused ops %v outside (0, %v]", f.Name, fo, uo)
		}
		if bb := f.BandwidthBound(); bb != ub/fb {
			t.Fatalf("%s: bandwidth bound %v != byte ratio %v", f.Name, bb, ub/fb)
		}
	}
}

// PredictedGain limits: on a bandwidth-starved core the gain is the
// byte ratio; on an infinite-bandwidth core it is the ops ratio; on
// any real platform it lies between (inclusive) and never hurts.
func TestPredictedGainLimits(t *testing.T) {
	for _, f := range Fusions {
		uo, ub := f.Unfused()
		fo, fb := f.Fused()
		memBound := f.PredictedGain(1e18, 1e6)
		if math.Abs(memBound-ub/fb) > 1e-12 {
			t.Fatalf("%s: memory-bound gain %v, want %v", f.Name, memBound, ub/fb)
		}
		cpuBound := f.PredictedGain(1e6, 1e18)
		if math.Abs(cpuBound-uo/fo) > 1e-12 {
			t.Fatalf("%s: compute-bound gain %v, want %v", f.Name, cpuBound, uo/fo)
		}
		for _, p := range Platforms() {
			g := f.GainOn(&p)
			lo := math.Min(uo/fo, ub/fb) - 1e-12
			hi := math.Max(uo/fo, ub/fb) + 1e-12
			if g < 1 || g < lo || g > hi {
				t.Fatalf("%s on %s: gain %v outside [%v, %v]", f.Name, p.Name, g, lo, hi)
			}
		}
	}
}

// KernelTime over the fused descriptors: each merged pass is modelled
// no slower than the kernels it replaces on the CPU platforms, where
// the fusions are implemented. (On the device models the merged
// descriptor inherits the worst member's register-pressure derate, so
// a fused what-if can legitimately come out slower there.)
func TestKernelTimeFusedEntries(t *testing.T) {
	w := Table2Workload()
	for _, p := range Platforms() {
		for _, f := range Fusions {
			fused := p.KernelTime(f.FusedKernel(), w)
			if fused <= 0 {
				t.Fatalf("%s on %s: non-positive fused time %v", f.Name, p.Name, fused)
			}
			if p.CoreBW == 0 {
				continue
			}
			var unfused float64
			for _, name := range f.Replaces {
				k, _ := KernelByName(name)
				unfused += p.KernelTime(k, w)
			}
			if fused > unfused*(1+1e-9) {
				t.Fatalf("%s on %s: fused %v slower than unfused %v", f.Name, p.Name, fused, unfused)
			}
		}
	}
}

// The fused inventory: 8 paper kernels collapse to qforce, getacc,
// dtreduce, lagupdate; OverallOf over it beats the unfused Overall on
// the CPU platforms (where the fusions are implemented).
func TestFusedKernelsInventoryAndOverall(t *testing.T) {
	ks := FusedKernels()
	var names []string
	for _, k := range ks {
		names = append(names, k.Name)
	}
	want := []string{"qforce", "getacc", "dtreduce", "lagupdate"}
	if len(names) != len(want) {
		t.Fatalf("fused inventory %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("fused inventory %v, want %v", names, want)
		}
	}
	w := Table2Workload()
	for _, p := range Platforms() {
		if p.CoreBW == 0 {
			continue // GPU ports in the paper are unfused
		}
		fused, unfused := p.OverallOf(ks, w), p.Overall(w)
		if fused >= unfused {
			t.Fatalf("%s: fused overall %v !< unfused %v", p.Name, fused, unfused)
		}
		if fused < 0.5*unfused {
			t.Fatalf("%s: fused overall %v implausibly below unfused %v", p.Name, fused, unfused)
		}
	}
}

// The merged descriptor inherits the most pessimistic execution-model
// corrections of its members and their (agreeing) call count.
func TestFusedKernelComposition(t *testing.T) {
	f, _ := FusionByName("qforce")
	k := f.FusedKernel()
	getq, _ := KernelByName("getq")
	getforce, _ := KernelByName("getforce")
	if k.CallsPerStep != getq.CallsPerStep {
		t.Fatalf("qforce calls %v, want %v", k.CallsPerStep, getq.CallsPerStep)
	}
	// Serial work is preserved absolutely: frac × fused ops equals the
	// members' summed serial ops.
	wantSerial := getq.SerialFrac*getq.Ops + getforce.SerialFrac*getforce.Ops
	if got := k.SerialFrac * k.Ops; math.Abs(got-wantSerial) > 1e-9 {
		t.Fatalf("qforce serial ops %v, want %v", got, wantSerial)
	}
	if k.GPUDerate != math.Max(getq.GPUDerate, getforce.GPUDerate) {
		t.Fatalf("qforce GPU derate %v", k.GPUDerate)
	}
	dt, _ := FusionByName("dtreduce")
	dk := dt.FusedKernel()
	if !dk.HostOnlyCUDA || dk.TransferBytes == 0 {
		t.Fatal("dtreduce lost the host-only CUDA path")
	}
}
