package machine

import (
	"math"
	"testing"
)

func rows() map[string]PaperRow {
	w := Table2Workload()
	out := make(map[string]PaperRow)
	for _, p := range Platforms() {
		out[p.Name] = ModelRow(p, w)
	}
	return out
}

func paper() map[string]PaperRow {
	out := make(map[string]PaperRow)
	for _, r := range PaperTable2 {
		out[r.Name] = r
	}
	return out
}

// The headline single-node finding: flat MPI beats hybrid on both CPU
// generations.
func TestFlatMPIBeatsHybrid(t *testing.T) {
	m := rows()
	if m["Skylake MPI"].Overall >= m["Skylake Hybrid"].Overall {
		t.Fatalf("Skylake: MPI %v !< Hybrid %v", m["Skylake MPI"].Overall, m["Skylake Hybrid"].Overall)
	}
	if m["Broadwell MPI"].Overall >= m["Broadwell Hybrid"].Overall {
		t.Fatalf("Broadwell: MPI %v !< Hybrid %v", m["Broadwell MPI"].Overall, m["Broadwell Hybrid"].Overall)
	}
}

// Viscosity dominates flat-MPI CPU runs (70%/64% in the paper).
func TestViscosityDominatesFlatRuns(t *testing.T) {
	m := rows()
	for _, name := range []string{"Skylake MPI", "Broadwell MPI"} {
		share := m[name].Visc / m[name].Overall
		if share < 0.5 || share > 0.8 {
			t.Fatalf("%s viscosity share %v outside [0.5, 0.8]", name, share)
		}
	}
}

// "The hybrid solution is within 5% of the performance of the flat MPI
// solution" for the viscosity kernel — allow 20% in the model.
func TestHybridViscosityCloseToFlat(t *testing.T) {
	m := rows()
	ratio := m["Skylake Hybrid"].Visc / m["Skylake MPI"].Visc
	if ratio > 1.25 {
		t.Fatalf("hybrid viscosity %vx of flat, want close to 1", ratio)
	}
}

// The acceleration kernel's data dependency makes hybrid markedly
// slower (2.4x in the paper).
func TestHybridAccelerationPenalty(t *testing.T) {
	m := rows()
	ratio := m["Skylake Hybrid"].Acc / m["Skylake MPI"].Acc
	if ratio < 1.8 || ratio > 4 {
		t.Fatalf("hybrid acceleration penalty %vx outside [1.8, 4]", ratio)
	}
}

// getdt (reduction kernel) is the other big hybrid loser (6x paper).
func TestHybridGetDtPenalty(t *testing.T) {
	m := rows()
	ratio := m["Skylake Hybrid"].GetDt / m["Skylake MPI"].GetDt
	if ratio < 3 {
		t.Fatalf("hybrid getdt penalty %vx, want >= 3", ratio)
	}
}

// GPU ordering: P100 CUDA slowest; OpenMP offload beats CUDA on the
// P100; V100 CUDA beats P100 CUDA.
func TestGPUOrdering(t *testing.T) {
	m := rows()
	if !(m["P100 (OpenMP)"].Overall < m["P100 (CUDA)"].Overall) {
		t.Fatalf("P100 OpenMP %v !< P100 CUDA %v", m["P100 (OpenMP)"].Overall, m["P100 (CUDA)"].Overall)
	}
	if !(m["V100 (CUDA)"].Overall < m["P100 (CUDA)"].Overall) {
		t.Fatalf("V100 %v !< P100 CUDA %v", m["V100 (CUDA)"].Overall, m["P100 (CUDA)"].Overall)
	}
}

// GPUs are slower than flat-MPI CPUs overall for BookLeaf.
func TestGPUsSlowerThanFlatCPU(t *testing.T) {
	m := rows()
	for _, gpu := range []string{"P100 (OpenMP)", "P100 (CUDA)", "V100 (CUDA)"} {
		if m[gpu].Overall <= m["Skylake MPI"].Overall {
			t.Fatalf("%s (%v) not slower than Skylake MPI (%v)", gpu, m[gpu].Overall, m["Skylake MPI"].Overall)
		}
	}
}

// The CUDA host-side time differential kernel does not get faster on
// the newer GPU (44.4 vs 40.4 in the paper — host bound).
func TestCUDAGetDtHostBound(t *testing.T) {
	m := rows()
	p, v := m["P100 (CUDA)"].GetDt, m["V100 (CUDA)"].GetDt
	if math.Abs(p-v)/p > 0.1 {
		t.Fatalf("CUDA getdt should be host-bound: P100 %v vs V100 %v", p, v)
	}
}

// Model tracks the paper within a factor band per entry; overall within
// 25% per configuration.
func TestModelTracksPaperOverall(t *testing.T) {
	m, ref := rows(), paper()
	for name, r := range ref {
		got := m[name].Overall
		if got < 0.75*r.Overall || got > 1.25*r.Overall {
			t.Fatalf("%s overall %v outside 25%% of paper %v", name, got, r.Overall)
		}
	}
}

// Per-kernel model entries within a factor 2 of the paper (shape
// holds; EXPERIMENTS.md records the exact ratios).
func TestModelTracksPaperKernels(t *testing.T) {
	m, ref := rows(), paper()
	for name, r := range ref {
		g := m[name]
		checks := []struct {
			k           string
			got, paperV float64
		}{
			{"visc", g.Visc, r.Visc},
			{"acc", g.Acc, r.Acc},
			{"getdt", g.GetDt, r.GetDt},
			{"getgeom", g.GetGeom, r.GetGeom},
			{"getpc", g.GetPC, r.GetPC},
		}
		for _, c := range checks {
			if c.got < c.paperV/2.1 || c.got > c.paperV*2.1 {
				t.Fatalf("%s %s: model %v vs paper %v (factor > 2.1)", name, c.k, c.got, c.paperV)
			}
		}
	}
}

func TestStrongScalingSuperlinearThenLinear(t *testing.T) {
	w := Fig3Workload()
	for _, p := range Platforms() {
		if p.Exec != Hybrid {
			continue
		}
		pts := p.StrongScaling(w, []int{8, 16, 32, 64})
		s1 := pts[0].Overall / pts[1].Overall // 8 -> 16
		s2 := pts[1].Overall / pts[2].Overall // 16 -> 32
		s3 := pts[2].Overall / pts[3].Overall // 32 -> 64
		if s1 < 2.2 {
			t.Fatalf("%s: 8->16 speedup %v not superlinear", p.Name, s1)
		}
		if s2 < 1.7 || s2 > 2.6 || s3 < 1.6 || s3 > 2.3 {
			t.Fatalf("%s: post-crossover speedups %v, %v not near-linear", p.Name, s2, s3)
		}
	}
}

func TestStrongScalingMatchesPaperWithin35Pct(t *testing.T) {
	w := Fig3Workload()
	for _, p := range Platforms() {
		if p.Exec != Hybrid {
			continue
		}
		cpu := "Skylake"
		if p.Name == "Broadwell Hybrid" {
			cpu = "Broadwell"
		}
		pts := p.StrongScaling(w, []int{8, 16, 32, 64})
		for i, pt := range pts {
			ref := PaperFig3[cpu][i].Secs
			if pt.Overall < 0.65*ref || pt.Overall > 1.35*ref {
				t.Fatalf("%s %d nodes: model %v vs paper %v", cpu, pt.Nodes, pt.Overall, ref)
			}
		}
	}
}

func TestSkylakeFasterThanBroadwellAtScale(t *testing.T) {
	w := Fig3Workload()
	ps := Platforms()
	var skl, bdw []ScalingPoint
	for i := range ps {
		if ps[i].Name == "Skylake Hybrid" {
			skl = ps[i].StrongScaling(w, []int{8, 16, 32, 64})
		}
		if ps[i].Name == "Broadwell Hybrid" {
			bdw = ps[i].StrongScaling(w, []int{8, 16, 32, 64})
		}
	}
	for i := range skl {
		if skl[i].Overall >= bdw[i].Overall {
			t.Fatalf("%d nodes: Skylake %v !< Broadwell %v", skl[i].Nodes, skl[i].Overall, bdw[i].Overall)
		}
	}
}

func TestKernelByName(t *testing.T) {
	if _, ok := KernelByName("getq"); !ok {
		t.Fatal("getq missing")
	}
	if _, ok := KernelByName("bogus"); ok {
		t.Fatal("bogus kernel found")
	}
}

func TestKernelInventoryComplete(t *testing.T) {
	want := []string{"getq", "getacc", "getdt", "getgeom", "getforce", "getpc", "getrho", "getein"}
	for _, n := range want {
		k, ok := KernelByName(n)
		if !ok {
			t.Fatalf("kernel %s missing", n)
		}
		if k.Ops <= 0 || k.Bytes <= 0 || k.CallsPerStep <= 0 {
			t.Fatalf("kernel %s has non-positive work: %+v", n, k)
		}
	}
	if len(Kernels) != len(want) {
		t.Fatalf("kernel count %d, want %d", len(Kernels), len(want))
	}
}

func TestPlatformsMatchTable1(t *testing.T) {
	ps := Platforms()
	if len(ps) != 7 {
		t.Fatalf("platform count %d, want 7 (Table II rows)", len(ps))
	}
	compilers := map[string]string{
		"Skylake MPI": "Cray", "Broadwell MPI": "Cray",
		"P100 (OpenMP)": "Cray", "P100 (CUDA)": "PGI", "V100 (CUDA)": "PGI",
	}
	for _, p := range ps {
		if want, ok := compilers[p.Name]; ok && p.Compiler != want {
			t.Fatalf("%s compiler %s, want %s", p.Name, p.Compiler, want)
		}
	}
}

func TestExecModelStrings(t *testing.T) {
	if FlatMPI.String() != "MPI" || Hybrid.String() != "Hybrid" ||
		OffloadOpenMP.String() != "OpenMP" || CUDA.String() != "CUDA" {
		t.Fatal("exec model names wrong")
	}
}

func TestCacheFactorMonotone(t *testing.T) {
	c := 100e6
	prev := cacheFactor(1e3, c)
	for ws := 1e4; ws < 1e12; ws *= 2 {
		f := cacheFactor(ws, c)
		if f < prev-1e-12 {
			t.Fatalf("cache factor not monotone at ws=%v", ws)
		}
		prev = f
	}
	if f := cacheFactor(1e3, c); f >= cacheFactor(1e12, c) {
		t.Fatal("cached working set not faster")
	}
}

// The paper's future-work claim: device-side reductions (CUB) would
// remove the CUDA getdt penalty.
func TestWhatIfCUDAFixedReductions(t *testing.T) {
	w := Table2Workload()
	for _, p := range Platforms() {
		if p.Exec != CUDA {
			continue
		}
		base := ModelRow(p, w)
		fixed := CUDAFixedDtRow(p, w)
		if fixed.Overall >= base.Overall {
			t.Fatalf("%s: CUB fix did not help: %v >= %v", p.Name, fixed.Overall, base.Overall)
		}
		if fixed.GetDt >= base.GetDt/3 {
			t.Fatalf("%s: device getdt %v not well below host %v", p.Name, fixed.GetDt, base.GetDt)
		}
	}
	// Non-CUDA platforms are untouched.
	ps := Platforms()
	if got := CUDAFixedDtRow(ps[0], w); got.Overall != ModelRow(ps[0], w).Overall {
		t.Fatal("what-if changed a CPU platform")
	}
}
