// Kernel-fusion roofline: the model-side view of the fused element
// passes implemented in internal/hydro (see DESIGN.md §13). Each
// Fusion records which paper kernels a merged pass replaces and how
// much per-element traffic and arithmetic the merge eliminates; the
// predicted gain is then a roofline ratio that can sit next to the
// measured fused-vs-unfused benchmark delta in EXPERIMENTS.md.
//
// The savings are accounted explicitly rather than folded into new
// descriptors so the unfused side stays, byte for byte, the sum of the
// Kernels table the rest of the model is calibrated on: a fusion can
// only remove traffic the table already charged somewhere.

package machine

// Fusion describes one of the fused element passes: the merged pass's
// name (which is also its timer key in the hydro package), the paper
// kernels it replaces, and the per-element work the merge eliminates.
type Fusion struct {
	Name     string
	Replaces []string
	// SavedBytes is the per-element off-chip traffic the merge removes:
	// intermediate arrays that no longer make a write + re-read round
	// trip between kernels, and connectivity gathers the second kernel
	// no longer repeats. SavedOps is the weighted arithmetic shared
	// between the merged bodies (gather index math, centroids, edge
	// midpoints) that is now computed once.
	SavedBytes, SavedOps float64
}

// Fusions is the inventory of merged passes in internal/hydro, in step
// order. Byte savings are counted from the implementation's arrays at
// 8 bytes per float64 and discounted the same way the Kernels table
// discounts cache-resident traffic.
var Fusions = []Fusion{
	// getq computes q and the four edge dampers, getforce immediately
	// consumes them. Fused, Q and QEdge stay in registers (5 values:
	// one 8-byte write + re-read each, 40 B effective after the
	// half-charge cache discount) and the force half reuses the
	// coordinate/velocity gather (48 B effective of its 80).
	{Name: "qforce", Replaces: []string{"getq", "getforce"},
		SavedBytes: 88, SavedOps: 40},
	// getgeom→getrho→getein→getpc is a straight per-element dataflow
	// chain: volume, density and energy each made a write + re-read
	// round trip between kernels (3 × 16 B), and getein re-gathered
	// the coordinates getgeom had just touched.
	{Name: "lagupdate", Replaces: []string{"getgeom", "getrho", "getein", "getpc"},
		SavedBytes: 48, SavedOps: 10},
	// getdt runs two full-mesh reductions (CFL length, divergence)
	// over the same coordinate, velocity and sound-speed data; the
	// fused pair-reduction sweeps once (x, y, u, v gathers + csq:
	// 72 B effective) and shares the gather index math.
	{Name: "dtreduce", Replaces: []string{"getdt"},
		SavedBytes: 72, SavedOps: 15},
}

// Unfused returns the summed per-element weighted ops and bytes of the
// kernels this fusion replaces — exactly the Kernels-table numbers.
func (f Fusion) Unfused() (ops, bytes float64) {
	for _, name := range f.Replaces {
		k, ok := KernelByName(name)
		if !ok {
			panic("machine: fusion references unknown kernel " + name)
		}
		ops += k.Ops
		bytes += k.Bytes
	}
	return ops, bytes
}

// Fused returns the merged pass's per-element weighted ops and bytes:
// the unfused sums minus the eliminated work.
func (f Fusion) Fused() (ops, bytes float64) {
	ops, bytes = f.Unfused()
	return ops - f.SavedOps, bytes - f.SavedBytes
}

// PredictedGain returns the roofline speedup t_unfused/t_fused for a
// core with the given weighted-op rate (ops/s) and memory bandwidth
// (bytes/s). On a bandwidth-bound core this approaches BandwidthBound;
// on a compute-bound core it approaches the ops ratio.
func (f Fusion) PredictedGain(opsRate, byteRate float64) float64 {
	uo, ub := f.Unfused()
	fo, fb := f.Fused()
	tu := maxf(uo/opsRate, ub/byteRate)
	tf := maxf(fo/opsRate, fb/byteRate)
	return tu / tf
}

// BandwidthBound returns the limiting speedup when the pass is memory
// bound: the ratio of off-chip bytes moved. This is the "vs platform
// bandwidth" column of the roofline readout — no core can gain more
// than this from the fusion alone once bandwidth is the wall.
func (f Fusion) BandwidthBound() float64 {
	_, ub := f.Unfused()
	_, fb := f.Fused()
	return ub / fb
}

// GainOn evaluates PredictedGain with platform p's per-core rates
// (device rates for GPU platforms, which have no CoreBW).
func (f Fusion) GainOn(p *Platform) float64 {
	opsRate := p.GHz * 1e9 * p.OpsPerCycle
	byteRate := p.CoreBW * 1e9
	if p.CoreBW == 0 {
		opsRate = p.GPUTflops * 1e12
		byteRate = p.GPUBW * 1e9
	}
	return f.PredictedGain(opsRate, byteRate)
}

// FusedKernel returns a Kernel descriptor for the merged pass, for use
// with KernelTime/OverallOf. Per-element work is the unfused sum minus
// the savings; calls per step come from the members (which must agree —
// a fusion merges kernels that run together). Fusing merges the
// parallel loop bodies only: each member's serialised work (the nodal
// scatter in getgeom, the reduction expansion in getdt) survives
// unchanged, so the merged SerialFrac preserves the absolute serial
// ops, Σ frac_i·Ops_i, over the fused ops — not the members' maximum,
// which would charge the whole merged pass at the worst fraction. The
// device corrections do take the most pessimistic member: a fused body
// needs the union of the registers.
func (f Fusion) FusedKernel() Kernel {
	ops, bytes := f.Fused()
	merged := Kernel{Name: f.Name, Ops: ops, Bytes: bytes, Launches: 1}
	var serialOps float64
	for i, name := range f.Replaces {
		k, _ := KernelByName(name)
		if i == 0 {
			merged.CallsPerStep = k.CallsPerStep
		} else if k.CallsPerStep != merged.CallsPerStep {
			panic("machine: fusion " + f.Name + " merges kernels with different call counts")
		}
		serialOps += k.SerialFrac * k.Ops
		merged.GatherBytes += k.GatherBytes
		merged.GPUDerate = maxf(merged.GPUDerate, k.GPUDerate)
		merged.CUDAExtra = maxf(merged.CUDAExtra, k.CUDAExtra)
		merged.Arrays = maxf(merged.Arrays, k.Arrays)
		if k.HostOnlyCUDA {
			merged.HostOnlyCUDA = true
			merged.TransferBytes = k.TransferBytes
			merged.HostOps = k.HostOps
		}
	}
	merged.SerialFrac = serialOps / ops
	// The merge eliminates some repeated gathers along with the rest of
	// SavedBytes, but the split is not tracked per fusion; summing the
	// members keeps the locality-sensitive share conservative, clamped
	// so it can never exceed the merged traffic.
	if merged.GatherBytes > merged.Bytes {
		merged.GatherBytes = merged.Bytes
	}
	return merged
}

// FusedKernels returns the per-step kernel inventory with the fusions
// applied: each fusion's members collapse into one merged descriptor
// (emitted at the first member's position) and uncovered kernels
// (getacc) pass through unchanged.
func FusedKernels() []Kernel {
	covered := map[string]*Fusion{}
	for i := range Fusions {
		for _, name := range Fusions[i].Replaces {
			covered[name] = &Fusions[i]
		}
	}
	emitted := map[string]bool{}
	var out []Kernel
	for _, k := range Kernels {
		f, ok := covered[k.Name]
		if !ok {
			out = append(out, k)
			continue
		}
		if !emitted[f.Name] {
			emitted[f.Name] = true
			out = append(out, f.FusedKernel())
		}
	}
	return out
}

// FusionByName returns the fusion descriptor, or false.
func FusionByName(name string) (Fusion, bool) {
	for _, f := range Fusions {
		if f.Name == name {
			return f, true
		}
	}
	return Fusion{}, false
}
