package machine

// PaperRow holds the paper's Table II measurements (seconds) for one
// platform configuration: overall runtime and the six kernels the
// paper breaks out. These are the reference values EXPERIMENTS.md and
// cmd/bleaf-tables compare the model against.
type PaperRow struct {
	Name     string
	Overall  float64
	Visc     float64 // getq
	Acc      float64 // getacc
	GetDt    float64
	GetGeom  float64
	GetForce float64
	GetPC    float64
}

// PaperTable2 is Table II of the paper: per-kernel performance
// breakdown for the Noh problem on a single node.
var PaperTable2 = []PaperRow{
	{"Skylake MPI", 76.068, 46.365, 6.663, 8.880, 3.396, 5.364, 1.314},
	{"Skylake Hybrid", 168.633, 52.913, 15.923, 53.086, 26.654, 4.925, 2.054},
	{"Broadwell MPI", 108.978, 70.116, 8.386, 11.936, 4.834, 7.348, 1.390},
	{"Broadwell Hybrid", 180.438, 76.387, 16.142, 45.494, 20.764, 6.501, 2.108},
	{"P100 (OpenMP)", 186.506, 75.873, 26.806, 12.684, 16.784, 40.853, 3.608},
	{"P100 (CUDA)", 261.183, 97.445, 21.995, 40.433, 39.448, 0.536, 17.922},
	{"V100 (CUDA)", 191.636, 44.981, 11.442, 44.401, 14.789, 0.651, 10.051},
}

// PaperFig3 holds the approximate series of Figure 3 (overall Sod
// strong-scaling execution time, hybrid, seconds), read from the
// log-scale plot.
var PaperFig3 = map[string][]struct {
	Nodes int
	Secs  float64
}{
	"Skylake":   {{8, 2400}, {16, 600}, {32, 330}, {64, 190}},
	"Broadwell": {{8, 3200}, {16, 800}, {32, 440}, {64, 260}},
}

// ModelRow evaluates the model for one platform over the Table II
// workload and returns it shaped like a PaperRow.
func ModelRow(p Platform, w Workload) PaperRow {
	get := func(name string) float64 {
		k, ok := KernelByName(name)
		if !ok {
			return 0
		}
		return p.KernelTime(k, w)
	}
	return PaperRow{
		Name:     p.Name,
		Overall:  p.Overall(w),
		Visc:     get("getq"),
		Acc:      get("getacc"),
		GetDt:    get("getdt"),
		GetGeom:  get("getgeom"),
		GetForce: get("getforce"),
		GetPC:    get("getpc"),
	}
}

// CUDAFixedDtRow models the paper's future-work scenario: "the
// reduction primitives provided by the NVIDIA CUDA Unbound (CUB)
// library allow a proper implementation of the time differential
// calculation on GPUs". The getdt kernel moves onto the device (same
// derate as the OpenMP offload path, which does run its reductions on
// the GPU) and the per-step host synchronisation disappears.
func CUDAFixedDtRow(p Platform, w Workload) PaperRow {
	if p.Exec != CUDA {
		return ModelRow(p, w)
	}
	fixed := p
	fixed.SyncCost = 0
	row := PaperRow{Name: p.Name + " + CUB"}
	for _, k := range Kernels {
		if k.Name == "getdt" {
			k.HostOnlyCUDA = false
		}
		t := fixed.KernelTime(k, w)
		row.Overall += t
		switch k.Name {
		case "getq":
			row.Visc = t
		case "getacc":
			row.Acc = t
		case "getdt":
			row.GetDt = t
		case "getgeom":
			row.GetGeom = t
		case "getforce":
			row.GetForce = t
		case "getpc":
			row.GetPC = t
		}
	}
	return row
}
