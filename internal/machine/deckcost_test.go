package machine

import (
	"math"
	"testing"
)

// The admission controller only consumes the ordering of estimates, so
// the property that matters is monotonicity: a deck with more elements
// or more steps must never predict cheaper.

func TestPredictRunMonotoneInElements(t *testing.T) {
	prev := 0.0
	for _, nx := range []int{10, 50, 100, 500, 1000, 5000} {
		est := PredictRun(RunShape{Problem: "sod", NX: nx, NY: 4, MaxSteps: 100, Threads: 1})
		if est.NEl != nx*4 {
			t.Fatalf("nx=%d: NEl=%d, want %d", nx, est.NEl, nx*4)
		}
		if est.Seconds <= prev {
			t.Fatalf("nx=%d: Seconds=%g not monotone (prev %g)", nx, est.Seconds, prev)
		}
		prev = est.Seconds
	}
}

func TestPredictRunMonotoneInSteps(t *testing.T) {
	prev := 0.0
	for _, steps := range []int{1, 10, 100, 1000} {
		est := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, MaxSteps: steps, Threads: 1})
		if est.Steps > steps {
			t.Fatalf("maxsteps=%d not respected: predicted %d", steps, est.Steps)
		}
		if est.Seconds <= prev {
			t.Fatalf("maxsteps=%d: Seconds=%g not monotone (prev %g)", steps, est.Seconds, prev)
		}
		prev = est.Seconds
	}
	// Uncapped dominates every cap.
	uncapped := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, Threads: 1})
	if uncapped.Seconds < prev {
		t.Fatalf("uncapped %g cheaper than capped %g", uncapped.Seconds, prev)
	}
}

func TestPredictRunMonotoneInTEnd(t *testing.T) {
	prev := 0.0
	for _, tend := range []float64{0.05, 0.25, 1.0, 4.0} {
		est := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, TEnd: tend, Threads: 1})
		if est.Seconds <= prev {
			t.Fatalf("tend=%g: Seconds=%g not monotone (prev %g)", tend, est.Seconds, prev)
		}
		prev = est.Seconds
	}
}

func TestPredictRunDefaultsAndDegeneracies(t *testing.T) {
	// Hostile dimensions must not underflow: everything clamps to >= 1.
	est := PredictRun(RunShape{Problem: "sod", NX: -5, NY: 0})
	if est.NEl != 1 || est.Steps < 1 || est.StepSeconds <= 0 {
		t.Fatalf("degenerate shape not clamped: %+v", est)
	}
	// Unset tend falls back to the per-problem default, so sod and noh
	// decks of the same size still order by their physics.
	sod := PredictRun(RunShape{Problem: "sod", NX: 100, NY: 100})
	noh := PredictRun(RunShape{Problem: "noh", NX: 100, NY: 100})
	if sod.Steps <= 0 || noh.Steps <= 0 {
		t.Fatalf("default tend produced no steps: sod=%+v noh=%+v", sod, noh)
	}
	if noh.Steps <= sod.Steps {
		t.Fatalf("noh (tend 0.6, faster rate) should predict more steps than sod: %d vs %d",
			noh.Steps, sod.Steps)
	}
	// A giant deck costs arithmetic, not memory: this must return
	// instantly with a huge but finite estimate.
	big := PredictRun(RunShape{Problem: "sod", NX: 1_000_000, NY: 1_000})
	if big.Seconds <= sod.Seconds || big.Seconds != big.Seconds /* NaN */ {
		t.Fatalf("giant deck estimate broken: %+v", big)
	}
}

// TestPredictRunHostileShapesSaturate: the predictor runs on untrusted
// numbers, so every sizing conversion must saturate instead of
// overflowing. The two regressions pinned here used to admit hostile
// decks with tiny (or negative) estimates: a tend past float->int range
// overflowed the step conversion and clamped to steps=1, and nx*ny past
// int64 wrapped negative.
func TestPredictRunHostileShapesSaturate(t *testing.T) {
	base := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, TEnd: 0.25})

	for _, tend := range []float64{1e17, 1e300, math.Inf(1)} {
		est := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, TEnd: tend})
		if math.IsNaN(est.Seconds) || math.IsInf(est.Seconds, 0) || est.Seconds <= 0 {
			t.Fatalf("tend=%g: estimate not finite-positive: %+v", tend, est)
		}
		if est.Seconds <= base.Seconds || est.Steps < base.Steps {
			t.Fatalf("tend=%g priced cheaper than tend=0.25: %+v vs %+v", tend, est, base)
		}
	}
	// NaN tend falls back to the problem default instead of poisoning
	// the arithmetic.
	nan := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, TEnd: math.NaN()})
	def := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4})
	if nan.Seconds != def.Seconds {
		t.Fatalf("NaN tend: %+v, want the default-tend estimate %+v", nan, def)
	}

	// nx*ny = 1.6e19 overflows int64; the estimate must stay huge and
	// positive, never wrap negative.
	big := PredictRun(RunShape{Problem: "sod", NX: 4_000_000_000, NY: 4_000_000_000})
	if big.NEl <= 0 || big.Seconds <= 0 || math.IsNaN(big.Seconds) || math.IsInf(big.Seconds, 0) {
		t.Fatalf("overflowing mesh not saturated: %+v", big)
	}
	if big.Seconds <= base.Seconds {
		t.Fatalf("giant mesh priced cheaper than 200x4: %g <= %g", big.Seconds, base.Seconds)
	}
}

// TestPredictRunChargesRanks: a multi-rank deck consumes ranks times
// the CPU of a serial worker, so it must be charged ranks times the
// serial estimate.
func TestPredictRunChargesRanks(t *testing.T) {
	serial := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, MaxSteps: 50, Threads: 2})
	eight := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, MaxSteps: 50, Threads: 2, Ranks: 8})
	if eight.Seconds != 8*serial.Seconds {
		t.Fatalf("ranks=8 charged %g, want 8x serial %g", eight.Seconds, 8*serial.Seconds)
	}
}

// TestServingHostThreadsClamped: a deck-declared million threads must
// not buy unbounded modelled bandwidth (which would make the hostile
// deck's estimate cheaper, inverting the admission gate).
func TestServingHostThreadsClamped(t *testing.T) {
	if got, max := ServingHost(1<<20).NodeBW, ServingHost(1024).NodeBW; got > max {
		t.Fatalf("ServingHost(2^20).NodeBW = %g exceeds the 1024-thread clamp %g", got, max)
	}
}

func TestServingHostThreadsSpeedup(t *testing.T) {
	one := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, MaxSteps: 50, Threads: 1})
	four := PredictRun(RunShape{Problem: "sod", NX: 200, NY: 4, MaxSteps: 50, Threads: 4})
	if four.StepSeconds >= one.StepSeconds {
		t.Fatalf("more worker threads should predict faster steps: 1T=%g 4T=%g",
			one.StepSeconds, four.StepSeconds)
	}
}
