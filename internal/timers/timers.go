// Package timers provides the named, accumulating kernel timers used
// throughout BookLeaf to produce the per-kernel performance breakdowns
// reported in the paper (Table II). A Set maps kernel names to
// accumulated wall-clock durations and invocation counts; it can render
// itself as the paper-style "seconds (percent)" table.
//
// Timers are cheap (a map lookup and a monotonic clock read per
// start/stop pair) and are not safe for concurrent use by multiple
// goroutines: in parallel runs each rank owns a private Set and the
// driver merges them with Merge at the end.
//
// A nil *Set is a valid no-op sink: Start, Stop, Time, Elapsed and
// Count accept it, so hot paths (the Lagrangian step, the ALE remap)
// can take an optional timer set without allocating a throwaway one.
package timers

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanSink receives one completed interval per Set.Stop (or Set.Time)
// call. The obs tracer implements it to turn timer phases into Chrome
// trace spans without the kernels knowing about tracing; a nil sink
// (the default) keeps the stop path a plain accumulate.
type SpanSink interface {
	Span(name string, start time.Time, d time.Duration)
}

// Timer accumulates wall time for one named kernel.
type Timer struct {
	Name    string
	Elapsed time.Duration
	Count   int64

	started time.Time
	last    time.Duration
	running bool
}

// Start begins a timing interval. Starting an already-running timer
// panics: nested starts of the same kernel indicate a driver bug.
func (t *Timer) Start() {
	if t.running {
		panic("timers: Start on running timer " + t.Name)
	}
	t.running = true
	t.started = time.Now()
}

// Stop ends the current interval and accumulates it.
func (t *Timer) Stop() {
	if !t.running {
		panic("timers: Stop on stopped timer " + t.Name)
	}
	t.last = time.Since(t.started)
	t.Elapsed += t.last
	t.Count++
	t.running = false
}

// Running reports whether the timer is inside a Start/Stop interval.
func (t *Timer) Running() bool { return t.running }

// Set is a registry of named timers.
type Set struct {
	byName map[string]*Timer
	order  []string // registration order, for stable reporting
	sink   SpanSink
}

// SetSink attaches a span sink receiving every completed Stop/Time
// interval; nil detaches. A no-op on a nil Set.
func (s *Set) SetSink(k SpanSink) {
	if s == nil {
		return
	}
	s.sink = k
}

// NewSet returns an empty timer registry.
func NewSet() *Set {
	return &Set{byName: make(map[string]*Timer)}
}

// Get returns the timer with the given name, creating it on first use.
func (s *Set) Get(name string) *Timer {
	if t, ok := s.byName[name]; ok {
		return t
	}
	t := &Timer{Name: name}
	s.byName[name] = t
	s.order = append(s.order, name)
	return t
}

// Start is shorthand for Get(name).Start(); a no-op on a nil Set.
func (s *Set) Start(name string) {
	if s == nil {
		return
	}
	s.Get(name).Start()
}

// Stop is shorthand for Get(name).Stop(); a no-op on a nil Set. With a
// span sink attached, the completed interval is forwarded to it.
func (s *Set) Stop(name string) {
	if s == nil {
		return
	}
	t := s.Get(name)
	t.Stop()
	if s.sink != nil {
		s.sink.Span(name, t.started, t.last)
	}
}

// Time runs fn inside a Start/Stop pair for name. On a nil Set it just
// runs fn.
func (s *Set) Time(name string, fn func()) {
	if s == nil {
		fn()
		return
	}
	s.Start(name)
	defer s.Stop(name)
	fn()
}

// Elapsed returns the accumulated time for name (zero if never started
// or on a nil Set).
func (s *Set) Elapsed(name string) time.Duration {
	if s == nil {
		return 0
	}
	if t, ok := s.byName[name]; ok {
		return t.Elapsed
	}
	return 0
}

// Count returns the number of completed intervals for name (zero on a
// nil Set).
func (s *Set) Count(name string) int64 {
	if s == nil {
		return 0
	}
	if t, ok := s.byName[name]; ok {
		return t.Count
	}
	return 0
}

// Names returns the timer names in registration order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Total returns the sum of all accumulated durations.
func (s *Set) Total() time.Duration {
	var sum time.Duration
	for _, n := range s.order {
		sum += s.byName[n].Elapsed
	}
	return sum
}

// Merge adds the accumulated durations and counts of other into s.
// Used to combine per-rank timer sets; the merged set holds the sum of
// rank times (CPU-seconds), while MergeMax holds the critical path.
func (s *Set) Merge(other *Set) {
	for _, n := range other.order {
		o := other.byName[n]
		t := s.Get(n)
		t.Elapsed += o.Elapsed
		t.Count += o.Count
	}
}

// MergeMax folds other into s keeping, per timer, the maximum elapsed
// time (the slowest rank determines wall-clock in a bulk-synchronous
// run) and the maximum count.
func (s *Set) MergeMax(other *Set) {
	for _, n := range other.order {
		o := other.byName[n]
		t := s.Get(n)
		if o.Elapsed > t.Elapsed {
			t.Elapsed = o.Elapsed
		}
		if o.Count > t.Count {
			t.Count = o.Count
		}
	}
}

// Snapshot returns name→seconds for all timers.
func (s *Set) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(s.order))
	for _, n := range s.order {
		out[n] = s.byName[n].Elapsed.Seconds()
	}
	return out
}

// Table renders the paper-style breakdown: one row per timer with
// seconds and percentage of the total, sorted by descending time.
func (s *Set) Table() string {
	total := s.Total().Seconds()
	type row struct {
		name string
		sec  float64
		cnt  int64
	}
	rows := make([]row, 0, len(s.order))
	for _, n := range s.order {
		t := s.byName[n]
		rows = append(rows, row{n, t.Elapsed.Seconds(), t.Count})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sec > rows[j].sec })
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %8s %8s\n", "kernel", "seconds", "percent", "calls")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * r.sec / total
		}
		fmt.Fprintf(&b, "%-16s %12.6f %7.1f%% %8d\n", r.name, r.sec, pct, r.cnt)
	}
	fmt.Fprintf(&b, "%-16s %12.6f\n", "total", total)
	return b.String()
}

// Abandon discards any in-flight interval on every timer, keeping the
// accumulated totals and counts. The supervised parallel driver calls
// it between recovery epochs: a rank that died mid-kernel leaves its
// timer started, and the replaying epoch must be free to Start it
// again. A no-op on a nil Set.
func (s *Set) Abandon() {
	if s == nil {
		return
	}
	for _, n := range s.order {
		s.byName[n].running = false
	}
}

// Reset zeroes all timers but keeps their registration.
func (s *Set) Reset() {
	for _, n := range s.order {
		t := s.byName[n]
		t.Elapsed = 0
		t.Count = 0
		t.running = false
	}
}
