package timers

import (
	"strings"
	"testing"
	"time"
)

func TestStartStopAccumulates(t *testing.T) {
	s := NewSet()
	s.Start("k")
	time.Sleep(2 * time.Millisecond)
	s.Stop("k")
	if s.Elapsed("k") <= 0 {
		t.Fatalf("elapsed = %v, want > 0", s.Elapsed("k"))
	}
	if s.Count("k") != 1 {
		t.Fatalf("count = %d, want 1", s.Count("k"))
	}
	first := s.Elapsed("k")
	s.Start("k")
	s.Stop("k")
	if s.Elapsed("k") < first {
		t.Fatalf("elapsed shrank: %v < %v", s.Elapsed("k"), first)
	}
	if s.Count("k") != 2 {
		t.Fatalf("count = %d, want 2", s.Count("k"))
	}
}

func TestDoubleStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	s := NewSet()
	s.Start("k")
	s.Start("k")
}

func TestStopWithoutStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stop without Start did not panic")
		}
	}()
	NewSet().Stop("k")
}

func TestTimeHelper(t *testing.T) {
	s := NewSet()
	ran := false
	s.Time("fn", func() { ran = true })
	if !ran {
		t.Fatal("Time did not run fn")
	}
	if s.Count("fn") != 1 {
		t.Fatalf("count = %d, want 1", s.Count("fn"))
	}
}

func TestUnknownTimerQueries(t *testing.T) {
	s := NewSet()
	if s.Elapsed("nope") != 0 || s.Count("nope") != 0 {
		t.Fatal("unknown timer should read as zero")
	}
}

func TestNamesOrderStable(t *testing.T) {
	s := NewSet()
	for _, n := range []string{"b", "a", "c"} {
		s.Get(n)
	}
	got := s.Names()
	want := []string{"b", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestMergeSumsAndMergeMax(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Get("k").Elapsed = 2 * time.Second
	a.Get("k").Count = 3
	b.Get("k").Elapsed = 5 * time.Second
	b.Get("k").Count = 1
	b.Get("only").Elapsed = time.Second

	sum := NewSet()
	sum.Merge(a)
	sum.Merge(b)
	if sum.Elapsed("k") != 7*time.Second {
		t.Fatalf("merged elapsed = %v, want 7s", sum.Elapsed("k"))
	}
	if sum.Count("k") != 4 {
		t.Fatalf("merged count = %d, want 4", sum.Count("k"))
	}
	if sum.Elapsed("only") != time.Second {
		t.Fatalf("merged new timer = %v, want 1s", sum.Elapsed("only"))
	}

	mx := NewSet()
	mx.MergeMax(a)
	mx.MergeMax(b)
	if mx.Elapsed("k") != 5*time.Second {
		t.Fatalf("max elapsed = %v, want 5s", mx.Elapsed("k"))
	}
	if mx.Count("k") != 3 {
		t.Fatalf("max count = %d, want 3", mx.Count("k"))
	}
}

func TestTotalAndTable(t *testing.T) {
	s := NewSet()
	s.Get("big").Elapsed = 3 * time.Second
	s.Get("small").Elapsed = time.Second
	if s.Total() != 4*time.Second {
		t.Fatalf("total = %v, want 4s", s.Total())
	}
	tab := s.Table()
	if !strings.Contains(tab, "big") || !strings.Contains(tab, "small") {
		t.Fatalf("table missing rows:\n%s", tab)
	}
	// Descending order: "big" row before "small" row.
	if strings.Index(tab, "big") > strings.Index(tab, "small") {
		t.Fatalf("table not sorted by time:\n%s", tab)
	}
	if !strings.Contains(tab, "75.0%") {
		t.Fatalf("expected 75%% share for big:\n%s", tab)
	}
}

func TestReset(t *testing.T) {
	s := NewSet()
	s.Get("k").Elapsed = time.Second
	s.Get("k").Count = 9
	s.Reset()
	if s.Elapsed("k") != 0 || s.Count("k") != 0 {
		t.Fatal("reset did not zero timer")
	}
	if len(s.Names()) != 1 {
		t.Fatal("reset dropped registration")
	}
}

func TestSnapshot(t *testing.T) {
	s := NewSet()
	s.Get("k").Elapsed = 1500 * time.Millisecond
	snap := s.Snapshot()
	if snap["k"] != 1.5 {
		t.Fatalf("snapshot = %v, want 1.5", snap["k"])
	}
}

func TestRunningFlag(t *testing.T) {
	s := NewSet()
	tm := s.Get("k")
	if tm.Running() {
		t.Fatal("new timer should not be running")
	}
	tm.Start()
	if !tm.Running() {
		t.Fatal("started timer should be running")
	}
	tm.Stop()
	if tm.Running() {
		t.Fatal("stopped timer should not be running")
	}
}

type recordedSpan struct {
	name  string
	start time.Time
	d     time.Duration
}

type spanRecorder struct{ spans []recordedSpan }

func (r *spanRecorder) Span(name string, start time.Time, d time.Duration) {
	r.spans = append(r.spans, recordedSpan{name, start, d})
}

func TestSetSinkReceivesSpans(t *testing.T) {
	s := NewSet()
	rec := &spanRecorder{}
	s.SetSink(rec)

	s.Start("phase")
	time.Sleep(time.Millisecond)
	s.Stop("phase")
	s.Time("timed", func() { time.Sleep(time.Millisecond) })

	if len(rec.spans) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(rec.spans))
	}
	if rec.spans[0].name != "phase" || rec.spans[1].name != "timed" {
		t.Fatalf("span names = %v", rec.spans)
	}
	for _, sp := range rec.spans {
		if sp.d <= 0 {
			t.Fatalf("span %q has non-positive duration %v", sp.name, sp.d)
		}
		if sp.start.IsZero() {
			t.Fatalf("span %q has zero start", sp.name)
		}
		if got := s.Elapsed(sp.name); got < sp.d {
			t.Fatalf("timer %q elapsed %v < span duration %v", sp.name, got, sp.d)
		}
	}

	// Detaching the sink stops span delivery but not timing.
	s.SetSink(nil)
	s.Time("phase", func() {})
	if len(rec.spans) != 2 {
		t.Fatal("sink still received spans after detach")
	}
	if s.Count("phase") != 2 {
		t.Fatalf("timer count = %d, want 2", s.Count("phase"))
	}
}
