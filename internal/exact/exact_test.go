package exact

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSodStarState(t *testing.T) {
	// Reference values from Toro, "Riemann Solvers and Numerical
	// Methods for Fluid Dynamics", Test 1: p* = 0.30313, u* = 0.92745.
	rp := Sod(0.5)
	p, u, err := rp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.30313) > 2e-5 {
		t.Fatalf("p* = %v, want 0.30313", p)
	}
	if math.Abs(u-0.92745) > 2e-5 {
		t.Fatalf("u* = %v, want 0.92745", u)
	}
}

func TestSodSampleRegions(t *testing.T) {
	rp := Sod(0.5)
	tEnd := 0.25
	// Far left: undisturbed left state.
	s, err := rp.Sample(0.05, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rho != 1 || s.P != 1 {
		t.Fatalf("far-left state = %+v, want left state", s)
	}
	// Far right: undisturbed right state.
	s, _ = rp.Sample(0.98, tEnd)
	if s.Rho != 0.125 || s.P != 0.1 {
		t.Fatalf("far-right state = %+v, want right state", s)
	}
	// Between contact and shock: rho ≈ 0.26557 (Toro).
	s, _ = rp.Sample(0.80, tEnd)
	if math.Abs(s.Rho-0.26557) > 2e-4 {
		t.Fatalf("post-shock rho = %v, want 0.26557", s.Rho)
	}
	// Between rarefaction tail and contact: rho ≈ 0.42632.
	s, _ = rp.Sample(0.60, tEnd)
	if math.Abs(s.Rho-0.42632) > 2e-4 {
		t.Fatalf("star-left rho = %v, want 0.42632", s.Rho)
	}
}

func TestSodShockPosition(t *testing.T) {
	rp := Sod(0.5)
	x, err := rp.ShockPosition(0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Shock speed ≈ 1.75216 -> x ≈ 0.5 + 0.43804.
	if math.Abs(x-0.93804) > 1e-3 {
		t.Fatalf("shock position = %v, want ≈0.93804", x)
	}
}

func TestSampleBeforeTimeZeroReturnsInitial(t *testing.T) {
	rp := Sod(0.5)
	s, err := rp.Sample(0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != rp.Left {
		t.Fatalf("t=0 left sample = %+v", s)
	}
	s, _ = rp.Sample(0.7, 0)
	if s != rp.Right {
		t.Fatalf("t=0 right sample = %+v", s)
	}
}

func TestRiemannVacuumDetected(t *testing.T) {
	rp := RiemannProblem{
		Left:  GasState{Rho: 1, U: -10, P: 0.01},
		Right: GasState{Rho: 1, U: 10, P: 0.01},
		Gamma: 1.4,
	}
	if _, _, err := rp.Solve(); err == nil {
		t.Fatal("vacuum-generating problem accepted")
	}
}

func TestRiemannSymmetricProblemHasZeroContactVelocity(t *testing.T) {
	rp := RiemannProblem{
		Left:  GasState{Rho: 1, U: 1, P: 1},
		Right: GasState{Rho: 1, U: -1, P: 1},
		Gamma: 1.4,
	}
	p, u, err := rp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u) > 1e-12 {
		t.Fatalf("symmetric collision u* = %v, want 0", u)
	}
	if p <= 1 {
		t.Fatalf("colliding streams p* = %v, want > 1", p)
	}
}

func TestRiemannContactConsistency(t *testing.T) {
	// Across the contact the pressure and velocity must be continuous.
	rp := Sod(0.5)
	pStar, uStar, _ := rp.Solve()
	tEnd := 0.2
	xc := 0.5 + uStar*tEnd
	l, _ := rp.Sample(xc-1e-6, tEnd)
	r, _ := rp.Sample(xc+1e-6, tEnd)
	if math.Abs(l.P-pStar) > 1e-8 || math.Abs(r.P-pStar) > 1e-8 {
		t.Fatalf("pressure not continuous at contact: %v vs %v (p*=%v)", l.P, r.P, pStar)
	}
	if math.Abs(l.U-r.U) > 1e-8 {
		t.Fatalf("velocity jump at contact: %v vs %v", l.U, r.U)
	}
	if math.Abs(l.Rho-r.Rho) < 1e-6 {
		t.Fatal("expected density jump at contact")
	}
}

func TestNohPostShockValues(t *testing.T) {
	n := NewNoh()
	if d := n.PostShockDensity(); math.Abs(d-16) > 1e-12 {
		t.Fatalf("post-shock density = %v, want 16", d)
	}
	if r := n.ShockRadius(0.6); math.Abs(r-0.2) > 1e-12 {
		t.Fatalf("shock radius at t=0.6 = %v, want 0.2", r)
	}
	if p := n.PostShockPressure(); math.Abs(p-16.0/3.0) > 1e-12 {
		t.Fatalf("post-shock pressure = %v, want 16/3", p)
	}
}

func TestNohSample(t *testing.T) {
	n := NewNoh()
	rho, ur, e, p := n.Sample(0.1, 0.6)
	if rho != 16 || ur != 0 || e != 0.5 {
		t.Fatalf("inside state = (%v,%v,%v,%v)", rho, ur, e, p)
	}
	rho, ur, e, _ = n.Sample(0.4, 0.6)
	want := 1 + 0.6/0.4
	if math.Abs(rho-want) > 1e-12 || ur != -1 || e != 0 {
		t.Fatalf("outside state rho = %v, want %v (u=%v e=%v)", rho, want, ur, e)
	}
}

func TestNohInitialState(t *testing.T) {
	n := NewNoh()
	rho, ur, e, p := n.Sample(0.3, 0)
	if rho != 1 || ur != -1 || e != 0 || p != 0 {
		t.Fatalf("t=0 state = (%v,%v,%v,%v)", rho, ur, e, p)
	}
}

func TestSedovAlphaCylindrical(t *testing.T) {
	// Literature value for gamma = 1.4, cylindrical: alpha ≈ 0.984.
	s, err := NewSedov(1.4, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Alpha()-0.984) > 0.01 {
		t.Fatalf("alpha(j=2, gamma=1.4) = %v, want ≈0.984", s.Alpha())
	}
}

func TestSedovAlphaSpherical(t *testing.T) {
	// Literature value for gamma = 1.4, spherical: alpha ≈ 0.8511.
	s, err := NewSedov(1.4, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Alpha()-0.8511) > 0.01 {
		t.Fatalf("alpha(j=3, gamma=1.4) = %v, want ≈0.8511", s.Alpha())
	}
}

func TestSedovShockRadiusScaling(t *testing.T) {
	s, err := NewSedov(1.4, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// R ∝ t^(1/2) in 2-D.
	r1 := s.ShockRadius(1)
	r4 := s.ShockRadius(4)
	if math.Abs(r4/r1-2) > 1e-12 {
		t.Fatalf("R(4)/R(1) = %v, want 2", r4/r1)
	}
}

func TestSedovPostShockJump(t *testing.T) {
	s, _ := NewSedov(1.4, 2, 1, 1)
	if d := s.PostShockDensity(); math.Abs(d-6) > 1e-12 {
		t.Fatalf("post-shock density = %v, want 6", d)
	}
	// Just inside the shock the sampled density approaches the jump value.
	R := s.ShockRadius(1)
	rho, _, _ := s.Sample(0.9999*R, 1)
	if math.Abs(rho-6) > 0.05 {
		t.Fatalf("rho just inside shock = %v, want ≈6", rho)
	}
}

func TestSedovProfileMonotoneDensity(t *testing.T) {
	// Density decreases monotonically from the shock towards the origin.
	s, _ := NewSedov(1.4, 2, 1, 1)
	R := s.ShockRadius(1)
	prev := math.Inf(1)
	for i := 100; i >= 1; i-- {
		rho, _, _ := s.Sample(float64(i)/100*R*0.999, 1)
		if rho > prev+1e-9 {
			t.Fatalf("density not monotone at lambda=%v: %v > %v", float64(i)/100, rho, prev)
		}
		prev = rho
	}
	// Near the origin the density is tiny for gamma=1.4.
	rho0, _, _ := s.Sample(0.01*R, 1)
	if rho0 > 0.1 {
		t.Fatalf("central density = %v, want ≈0", rho0)
	}
}

func TestSedovCentralPressureFinite(t *testing.T) {
	s, _ := NewSedov(1.4, 2, 1, 1)
	R := s.ShockRadius(1)
	_, _, pNear := s.Sample(0.05*R, 1)
	_, _, pShock := s.Sample(0.999*R, 1)
	if pNear <= 0 || math.IsNaN(pNear) || math.IsInf(pNear, 0) {
		t.Fatalf("central pressure = %v", pNear)
	}
	// Sedov interior pressure plateaus at ~0.3-0.5 of the shock value.
	if pNear > pShock || pNear < 0.1*pShock {
		t.Fatalf("central pressure %v vs shock pressure %v outside expected band", pNear, pShock)
	}
}

func TestSedovAheadOfShockAmbient(t *testing.T) {
	s, _ := NewSedov(1.4, 2, 1, 1)
	rho, ur, p := s.Sample(10*s.ShockRadius(1), 1)
	if rho != 1 || ur != 0 || p != 0 {
		t.Fatalf("ambient state = (%v,%v,%v)", rho, ur, p)
	}
}

func TestSedovRejectsBadInput(t *testing.T) {
	if _, err := NewSedov(1.4, 1, 1, 1); err == nil {
		t.Fatal("dim=1 accepted")
	}
	if _, err := NewSedov(1.0, 2, 1, 1); err == nil {
		t.Fatal("gamma=1 accepted")
	}
	if _, err := NewSedov(1.4, 2, -1, 1); err == nil {
		t.Fatal("negative energy accepted")
	}
}

func TestSedovEnergyConventionRoundTrip(t *testing.T) {
	// Doubling E at fixed t scales R by 2^(1/4) in 2-D.
	s1, _ := NewSedov(1.4, 2, 1, 1)
	s2, _ := NewSedov(1.4, 2, 2, 1)
	ratio := s2.ShockRadius(1) / s1.ShockRadius(1)
	if math.Abs(ratio-math.Pow(2, 0.25)) > 1e-12 {
		t.Fatalf("R ratio = %v, want 2^(1/4)", ratio)
	}
}

func TestRiemannSelfSimilarityProperty(t *testing.T) {
	// The solution depends on x and t only through x/t: scaling both
	// by the same factor leaves the state unchanged.
	rp := Sod(0)
	f := func(sRaw, kRaw float64) bool {
		s := math.Mod(sRaw, 3)
		k := 0.1 + math.Abs(math.Mod(kRaw, 10))
		a, err := rp.Sample(s*0.1, 0.1)
		if err != nil {
			return false
		}
		b, err := rp.Sample(s*0.1*k, 0.1*k)
		if err != nil {
			return false
		}
		return math.Abs(a.Rho-b.Rho) < 1e-10 &&
			math.Abs(a.U-b.U) < 1e-10 &&
			math.Abs(a.P-b.P) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRiemannSampleMonotonePressureAcrossFan(t *testing.T) {
	// Pressure decreases monotonically through the left rarefaction.
	rp := Sod(0.5)
	tEnd := 0.2
	prev := math.Inf(1)
	for x := 0.2; x < 0.7; x += 0.005 {
		s, err := rp.Sample(x, tEnd)
		if err != nil {
			t.Fatal(err)
		}
		if s.P > prev+1e-12 {
			t.Fatalf("pressure not monotone at x=%v: %v > %v", x, s.P, prev)
		}
		prev = s.P
	}
}

func TestNohSelfConsistencyMass(t *testing.T) {
	// Integrating the exact density over the domain at t recovers the
	// initial mass (the solution is an exact conservation-law weak
	// solution): integrate rho(r) * 2*pi*r dr over [0, 1+t] vs pi*(1+t)^2
	// ... the moving outer edge makes the bookkeeping awkward, so
	// instead check mass inside a Lagrangian radius: material initially
	// inside r0 is inside r0 - t at time t (pre-shock region).
	n := NewNoh()
	tEnd := 0.4
	r0 := 0.9
	rIn := r0 - tEnd
	// Numerically integrate the exact density from the shock to rIn.
	shock := n.ShockRadius(tEnd)
	var mass float64
	const steps = 20000
	dr := (rIn - shock) / steps
	for i := 0; i < steps; i++ {
		r := shock + (float64(i)+0.5)*dr
		rho, _, _, _ := n.Sample(r, tEnd)
		mass += rho * 2 * math.Pi * r * dr
	}
	// Add the post-shock disc.
	mass += n.PostShockDensity() * math.Pi * shock * shock
	want := math.Pi * r0 * r0 // initial uniform density 1
	if math.Abs(mass-want) > 0.01*want {
		t.Fatalf("exact Noh mass %v, want %v", mass, want)
	}
}
