package exact

import (
	"fmt"
	"math"
)

// Sedov is the self-similar Sedov-Taylor point-blast solution for an
// ideal gas in Dim dimensions (2 = cylindrical, BookLeaf's case; 3 =
// spherical). Construction integrates the similarity ODEs inward from
// the strong-shock Rankine-Hugoniot state and evaluates the energy
// integral to obtain the similarity constant alpha, defined by
//
//	R(t) = (E t² / (alpha rho0))^(1/(Dim+2))
//
// with E the total blast energy (per unit length in 2-D). For the
// classic cylindrical gamma = 1.4 case alpha ≈ 0.984.
type Sedov struct {
	Gamma float64
	Dim   int
	E     float64 // blast energy
	Rho0  float64 // ambient density

	alpha float64
	// Interior similarity profiles, tabulated on descending lambda.
	lam, v, g, z []float64
}

// similarity ODE right-hand side at (V, G, Z): returns d/dx of V, lnG,
// and Z, where x = ln(lambda). Solves the 3x3 linear system from the
// self-similar Euler equations.
func sedovRHS(gamma, m float64, j int, V, G, Z float64) (dV, dlnG, dZ float64, ok bool) {
	// Rows: [a11 a12 a13 | b1] for unknowns (dV, dlnG, dZ).
	a := [3][3]float64{
		{1, V - 1, 0},
		{m * (V - 1), m / gamma * Z, m / gamma},
		{0, m * (V - 1) * (1 - gamma), m * (V - 1) / Z},
	}
	b := [3]float64{
		-float64(j) * V,
		-V*(m*V-1) - 2*m/gamma*Z,
		-2 * (m*V - 1),
	}
	// Gaussian elimination with partial pivoting.
	idx := [3]int{0, 1, 2}
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[idx[r]][col]) > math.Abs(a[idx[p]][col]) {
				p = r
			}
		}
		idx[col], idx[p] = idx[p], idx[col]
		piv := a[idx[col]][col]
		if piv == 0 {
			return 0, 0, 0, false
		}
		for r := col + 1; r < 3; r++ {
			f := a[idx[r]][col] / piv
			for c := col; c < 3; c++ {
				a[idx[r]][c] -= f * a[idx[col]][c]
			}
			b[idx[r]] -= f * b[idx[col]]
		}
	}
	var sol [3]float64
	for col := 2; col >= 0; col-- {
		s := b[idx[col]]
		for c := col + 1; c < 3; c++ {
			s -= a[idx[col]][c] * sol[c]
		}
		sol[col] = s / a[idx[col]][col]
	}
	return sol[0], sol[1], sol[2], true
}

// NewSedov integrates the similarity solution. dim must be 2 or 3 and
// gamma in (1, 3]; e and rho0 positive.
func NewSedov(gamma float64, dim int, e, rho0 float64) (*Sedov, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("exact: sedov dim = %d, want 2 or 3", dim)
	}
	if gamma <= 1 || gamma > 3 {
		return nil, fmt.Errorf("exact: sedov gamma = %v out of (1,3]", gamma)
	}
	if e <= 0 || rho0 <= 0 {
		return nil, fmt.Errorf("exact: sedov needs positive E and rho0, got %v, %v", e, rho0)
	}
	s := &Sedov{Gamma: gamma, Dim: dim, E: e, Rho0: rho0}

	j := dim
	m := 2.0 / float64(j+2)
	// Strong-shock starting state at lambda = 1.
	V := 2 / (gamma + 1)
	lnG := math.Log((gamma + 1) / (gamma - 1))
	Z := 2 * gamma * (gamma - 1) / ((gamma + 1) * (gamma + 1))

	const (
		xMin  = -16.0
		steps = 32000
	)
	h := xMin / steps // negative step

	integrand := func(V, lnG, Z, x float64) float64 {
		lam := math.Exp(x)
		G := math.Exp(lnG)
		return G * (V*V/2 + Z/(gamma*(gamma-1))) * math.Pow(lam, float64(j+2))
	}

	s.lam = append(s.lam, 1)
	s.v = append(s.v, V)
	s.g = append(s.g, math.Exp(lnG))
	s.z = append(s.z, Z)

	var integral float64
	x := 0.0
	prevF := integrand(V, lnG, Z, x)
	for i := 0; i < steps; i++ {
		// RK4 step of size h (negative).
		k1v, k1g, k1z, ok1 := sedovRHS(gamma, m, j, V, math.Exp(lnG), Z)
		k2v, k2g, k2z, ok2 := sedovRHS(gamma, m, j, V+h/2*k1v, math.Exp(lnG+h/2*k1g), Z+h/2*k1z)
		k3v, k3g, k3z, ok3 := sedovRHS(gamma, m, j, V+h/2*k2v, math.Exp(lnG+h/2*k2g), Z+h/2*k2z)
		k4v, k4g, k4z, ok4 := sedovRHS(gamma, m, j, V+h*k3v, math.Exp(lnG+h*k3g), Z+h*k3z)
		if !(ok1 && ok2 && ok3 && ok4) {
			return nil, fmt.Errorf("exact: sedov ODE singular at ln(lambda)=%v", x)
		}
		V += h / 6 * (k1v + 2*k2v + 2*k3v + k4v)
		lnG += h / 6 * (k1g + 2*k2g + 2*k3g + k4g)
		Z += h / 6 * (k1z + 2*k2z + 2*k3z + k4z)
		x += h
		f := integrand(V, lnG, Z, x)
		// Trapezoid in x (note h < 0, integral over decreasing x).
		integral += -h * 0.5 * (prevF + f)
		prevF = f
		if i%40 == 0 {
			s.lam = append(s.lam, math.Exp(x))
			s.v = append(s.v, V)
			s.g = append(s.g, math.Exp(lnG))
			s.z = append(s.z, Z)
		}
	}

	var kGeom float64
	switch j {
	case 2:
		kGeom = 2 * math.Pi
	case 3:
		kGeom = 4 * math.Pi
	}
	s.alpha = m * m * kGeom * integral
	if s.alpha <= 0 || math.IsNaN(s.alpha) {
		return nil, fmt.Errorf("exact: sedov alpha integration failed (alpha=%v)", s.alpha)
	}
	return s, nil
}

// Alpha returns the similarity constant.
func (s *Sedov) Alpha() float64 { return s.alpha }

// ShockRadius returns the blast-wave radius at time t.
func (s *Sedov) ShockRadius(t float64) float64 {
	return math.Pow(s.E*t*t/(s.alpha*s.Rho0), 1/float64(s.Dim+2))
}

// ShockSpeed returns dR/dt at time t.
func (s *Sedov) ShockSpeed(t float64) float64 {
	return 2 / float64(s.Dim+2) * s.ShockRadius(t) / t
}

// PostShockDensity returns the density immediately behind the shock
// (the strong-shock limit, independent of time).
func (s *Sedov) PostShockDensity() float64 {
	return s.Rho0 * (s.Gamma + 1) / (s.Gamma - 1)
}

// Sample returns (rho, uRadial, p) at radius r, time t > 0.
func (s *Sedov) Sample(r, t float64) (rho, ur, p float64) {
	R := s.ShockRadius(t)
	if r >= R {
		return s.Rho0, 0, 0
	}
	lam := r / R
	// Binary search on descending-lambda table.
	lo, hi := 0, len(s.lam)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.lam[mid] > lam {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := s.lam[lo], s.lam[hi]
	w := 0.0
	if t0 != t1 {
		w = (lam - t0) / (t1 - t0)
	}
	V := s.v[lo] + w*(s.v[hi]-s.v[lo])
	G := s.g[lo] + w*(s.g[hi]-s.g[lo])
	Z := s.z[lo] + w*(s.z[hi]-s.z[lo])
	mfac := 2 / float64(s.Dim+2) * r / t
	rho = s.Rho0 * G
	ur = mfac * V
	p = rho * mfac * mfac * Z / s.Gamma
	return rho, ur, p
}
