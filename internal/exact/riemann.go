// Package exact provides analytic reference solutions for BookLeaf's
// four test problems: an exact ideal-gas Riemann solver (Sod's shock
// tube), the exact cylindrical Noh solution, the Sedov-Taylor
// self-similar blast wave (via numerical integration of the similarity
// ODEs), and the 1-D piston relations behind Saltzmann's problem. The
// integration tests compare simulation output against these.
package exact

import (
	"fmt"
	"math"
)

// GasState is a primitive-variable 1-D gas state.
type GasState struct {
	Rho float64 // density
	U   float64 // velocity
	P   float64 // pressure
}

// RiemannProblem is an ideal-gas Riemann problem: two half-infinite
// states separated by a diaphragm at x = X0 removed at t = 0.
type RiemannProblem struct {
	Left, Right GasState
	Gamma       float64
	X0          float64
}

// Sod returns the classic Sod shock tube (diaphragm at x0).
func Sod(x0 float64) RiemannProblem {
	return RiemannProblem{
		Left:  GasState{Rho: 1, U: 0, P: 1},
		Right: GasState{Rho: 0.125, U: 0, P: 0.1},
		Gamma: 1.4,
		X0:    x0,
	}
}

// riemannFK is the Toro "f_K" function and its derivative: the velocity
// change across the left or right wave as a function of star pressure.
func riemannFK(p float64, s GasState, gamma float64) (f, df float64) {
	a := math.Sqrt(gamma * s.P / s.Rho)
	if p > s.P {
		// Shock.
		ak := 2 / ((gamma + 1) * s.Rho)
		bk := (gamma - 1) / (gamma + 1) * s.P
		q := math.Sqrt(ak / (p + bk))
		f = (p - s.P) * q
		df = q * (1 - (p-s.P)/(2*(p+bk)))
		return f, df
	}
	// Rarefaction.
	pr := p / s.P
	f = 2 * a / (gamma - 1) * (math.Pow(pr, (gamma-1)/(2*gamma)) - 1)
	df = 1 / (s.Rho * a) * math.Pow(pr, -(gamma+1)/(2*gamma))
	return f, df
}

// Solve computes the star-region pressure and velocity by Newton
// iteration (Toro's exact solver). It returns an error for states that
// would generate vacuum.
func (rp RiemannProblem) Solve() (pStar, uStar float64, err error) {
	g := rp.Gamma
	l, r := rp.Left, rp.Right
	al := math.Sqrt(g * l.P / l.Rho)
	ar := math.Sqrt(g * r.P / r.Rho)
	if 2*al/(g-1)+2*ar/(g-1) <= r.U-l.U {
		return 0, 0, fmt.Errorf("exact: riemann problem generates vacuum")
	}
	// Initial guess: two-rarefaction approximation.
	z := (g - 1) / (2 * g)
	p := math.Pow((al+ar-0.5*(g-1)*(r.U-l.U))/(al/math.Pow(l.P, z)+ar/math.Pow(r.P, z)), 1/z)
	if p < 1e-12 {
		p = 1e-12
	}
	for iter := 0; iter < 100; iter++ {
		fl, dfl := riemannFK(p, l, g)
		fr, dfr := riemannFK(p, r, g)
		f := fl + fr + (r.U - l.U)
		df := dfl + dfr
		dp := f / df
		pNew := p - dp
		if pNew <= 0 {
			pNew = 0.5 * p
		}
		if math.Abs(pNew-p) <= 1e-14*math.Max(1, p) {
			p = pNew
			break
		}
		p = pNew
	}
	fl, _ := riemannFK(p, l, g)
	fr, _ := riemannFK(p, r, g)
	u := 0.5*(l.U+r.U) + 0.5*(fr-fl)
	return p, u, nil
}

// Sample returns the exact solution state at position x and time t > 0.
func (rp RiemannProblem) Sample(x, t float64) (GasState, error) {
	pStar, uStar, err := rp.Solve()
	if err != nil {
		return GasState{}, err
	}
	if t <= 0 {
		if x < rp.X0 {
			return rp.Left, nil
		}
		return rp.Right, nil
	}
	s := (x - rp.X0) / t
	return rp.sampleWave(s, pStar, uStar), nil
}

// sampleWave evaluates the self-similar solution at speed s = x/t.
func (rp RiemannProblem) sampleWave(s, pStar, uStar float64) GasState {
	g := rp.Gamma
	if s <= uStar {
		// Left of contact.
		l := rp.Left
		al := math.Sqrt(g * l.P / l.Rho)
		if pStar > l.P {
			// Left shock.
			sl := l.U - al*math.Sqrt((g+1)/(2*g)*pStar/l.P+(g-1)/(2*g))
			if s <= sl {
				return l
			}
			rho := l.Rho * (pStar/l.P + (g-1)/(g+1)) / ((g-1)/(g+1)*pStar/l.P + 1)
			return GasState{Rho: rho, U: uStar, P: pStar}
		}
		// Left rarefaction.
		shl := l.U - al
		aStar := al * math.Pow(pStar/l.P, (g-1)/(2*g))
		stl := uStar - aStar
		switch {
		case s <= shl:
			return l
		case s >= stl:
			rho := l.Rho * math.Pow(pStar/l.P, 1/g)
			return GasState{Rho: rho, U: uStar, P: pStar}
		default:
			// Inside the fan.
			u := 2 / (g + 1) * (al + (g-1)/2*l.U + s)
			a := 2 / (g + 1) * (al + (g-1)/2*(l.U-s))
			rho := l.Rho * math.Pow(a/al, 2/(g-1))
			p := l.P * math.Pow(a/al, 2*g/(g-1))
			return GasState{Rho: rho, U: u, P: p}
		}
	}
	// Right of contact.
	r := rp.Right
	ar := math.Sqrt(g * r.P / r.Rho)
	if pStar > r.P {
		// Right shock.
		sr := r.U + ar*math.Sqrt((g+1)/(2*g)*pStar/r.P+(g-1)/(2*g))
		if s >= sr {
			return r
		}
		rho := r.Rho * (pStar/r.P + (g-1)/(g+1)) / ((g-1)/(g+1)*pStar/r.P + 1)
		return GasState{Rho: rho, U: uStar, P: pStar}
	}
	// Right rarefaction.
	shr := r.U + ar
	aStar := ar * math.Pow(pStar/r.P, (g-1)/(2*g))
	str := uStar + aStar
	switch {
	case s >= shr:
		return r
	case s <= str:
		rho := r.Rho * math.Pow(pStar/r.P, 1/g)
		return GasState{Rho: rho, U: uStar, P: pStar}
	default:
		u := 2 / (g + 1) * (-ar + (g-1)/2*r.U + s)
		a := 2 / (g + 1) * (ar - (g-1)/2*(r.U-s))
		rho := r.Rho * math.Pow(a/ar, 2/(g-1))
		p := r.P * math.Pow(a/ar, 2*g/(g-1))
		return GasState{Rho: rho, U: u, P: p}
	}
}

// ShockPosition returns the position of the right-running shock of the
// Sod problem at time t (only meaningful when the right wave is a
// shock, as in Sod's tube).
func (rp RiemannProblem) ShockPosition(t float64) (float64, error) {
	pStar, _, err := rp.Solve()
	if err != nil {
		return 0, err
	}
	g := rp.Gamma
	r := rp.Right
	if pStar <= r.P {
		return 0, fmt.Errorf("exact: right wave is not a shock")
	}
	ar := math.Sqrt(g * r.P / r.Rho)
	sr := r.U + ar*math.Sqrt((g+1)/(2*g)*pStar/r.P+(g-1)/(2*g))
	return rp.X0 + sr*t, nil
}
