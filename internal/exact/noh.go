package exact

import "math"

// Noh evaluates the exact solution of Noh's implosion problem in dim
// dimensions (1 planar, 2 cylindrical, 3 spherical) for an ideal gas:
// initial density rho0 = 1, zero internal energy and pressure, and a
// uniform radially-inward unit velocity. A strong shock of speed
// (gamma-1)/2 reflects from the origin.
//
// BookLeaf runs the 2-D (cylindrical) case; with gamma = 5/3 the shock
// speed is 1/3 and the post-shock density is ((gamma+1)/(gamma-1))^2 = 16.
type Noh struct {
	Gamma float64
	Dim   int
}

// NewNoh returns the standard BookLeaf Noh configuration (gamma = 5/3,
// cylindrical geometry).
func NewNoh() Noh { return Noh{Gamma: 5.0 / 3.0, Dim: 2} }

// ShockRadius returns the shock position at time t.
func (n Noh) ShockRadius(t float64) float64 {
	return 0.5 * (n.Gamma - 1) * t
}

// PostShockDensity returns the constant density behind the shock.
func (n Noh) PostShockDensity() float64 {
	b := (n.Gamma + 1) / (n.Gamma - 1)
	return math.Pow(b, float64(n.Dim))
}

// PostShockPressure returns the constant pressure behind the shock.
func (n Noh) PostShockPressure() float64 {
	// p = rho_post * e_post * (gamma-1), e_post = u0^2/2 = 1/2.
	return 0.5 * (n.Gamma - 1) * n.PostShockDensity()
}

// Sample returns (rho, uRadial, e, p) at radius r and time t.
// Outside the shock the gas is still cold and converging but has been
// geometrically compressed: rho = rho0 (1 + t/r)^(dim-1).
func (n Noh) Sample(r, t float64) (rho, ur, e, p float64) {
	if t <= 0 {
		return 1, -1, 0, 0
	}
	if r <= n.ShockRadius(t) {
		rho = n.PostShockDensity()
		return rho, 0, 0.5, n.PostShockPressure()
	}
	rho = math.Pow(1+t/r, float64(n.Dim-1))
	return rho, -1, 0, 0
}
