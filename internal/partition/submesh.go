package partition

import (
	"fmt"
	"sort"

	"bookleaf/internal/mesh"
)

// SubMesh is one rank's local mesh: owned elements and nodes first,
// followed by a one-element-deep ghost layer (all elements sharing at
// least one node with an owned element, plus their nodes). With this
// ghost rule every owned node sees all of its surrounding elements
// locally, so nodal mass/force sums need no communication — only ghost
// *values* must be refreshed, which is exactly the Typhon halo-exchange
// pattern the paper describes.
type SubMesh struct {
	M    *mesh.Mesh
	Rank int

	// Element exchange lists, symmetric across ranks: ElSend[s] on
	// rank r lists local owned elements that rank s holds as ghosts,
	// in the same (global-id) order as ElRecv[r] on rank s.
	ElSend map[int][]int
	ElRecv map[int][]int
	// Node exchange lists, same convention.
	NdSend map[int][]int
	NdRecv map[int][]int

	// Neighbours is the sorted list of ranks this rank exchanges with.
	Neighbours []int
}

// Split decomposes a global mesh according to part (per-element rank)
// into nparts local sub-meshes with ghost layers and matching exchange
// lists. Every part must be non-empty.
func Split(global *mesh.Mesh, part []int, nparts int) ([]*SubMesh, error) {
	if len(part) != global.NEl {
		return nil, fmt.Errorf("partition: part length %d != NEl %d", len(part), global.NEl)
	}
	counts := make([]int, nparts)
	for e, p := range part {
		if p < 0 || p >= nparts {
			return nil, fmt.Errorf("partition: element %d assigned to invalid part %d", e, p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c == 0 {
			return nil, fmt.Errorf("partition: part %d is empty", p)
		}
	}

	// Node owner = min part over adjacent elements.
	ndOwner := make([]int, global.NNd)
	for n := range ndOwner {
		ndOwner[n] = nparts
	}
	for e := 0; e < global.NEl; e++ {
		for k := 0; k < 4; k++ {
			n := global.ElNd[e][k]
			if part[e] < ndOwner[n] {
				ndOwner[n] = part[e]
			}
		}
	}

	subs := make([]*SubMesh, nparts)
	// Global element -> local index per rank, for wiring send lists.
	elLocal := make([]map[int]int, nparts)
	ndLocal := make([]map[int]int, nparts)

	for r := 0; r < nparts; r++ {
		// Owned elements in global order.
		var owned []int
		for e := 0; e < global.NEl; e++ {
			if part[e] == r {
				owned = append(owned, e)
			}
		}
		// Ghost elements: share a node with an owned element.
		ghostSet := make(map[int]bool)
		for _, e := range owned {
			for k := 0; k < 4; k++ {
				n := global.ElNd[e][k]
				els, _ := global.ElementsAround(n)
				for _, nb := range els {
					if part[nb] != r {
						ghostSet[nb] = true
					}
				}
			}
		}
		ghosts := make([]int, 0, len(ghostSet))
		for e := range ghostSet {
			ghosts = append(ghosts, e)
		}
		sort.Slice(ghosts, func(a, b int) bool {
			if part[ghosts[a]] != part[ghosts[b]] {
				return part[ghosts[a]] < part[ghosts[b]]
			}
			return ghosts[a] < ghosts[b]
		})

		allEls := append(append([]int(nil), owned...), ghosts...)

		// Local node set: owned nodes (owner == r) then ghost nodes,
		// each sorted by (owner, global id).
		ndSet := make(map[int]bool)
		for _, e := range allEls {
			for k := 0; k < 4; k++ {
				ndSet[global.ElNd[e][k]] = true
			}
		}
		var ownNodes, ghostNodes []int
		for n := range ndSet {
			if ndOwner[n] == r {
				ownNodes = append(ownNodes, n)
			} else {
				ghostNodes = append(ghostNodes, n)
			}
		}
		sort.Ints(ownNodes)
		sort.Slice(ghostNodes, func(a, b int) bool {
			if ndOwner[ghostNodes[a]] != ndOwner[ghostNodes[b]] {
				return ndOwner[ghostNodes[a]] < ndOwner[ghostNodes[b]]
			}
			return ghostNodes[a] < ghostNodes[b]
		})
		allNds := append(append([]int(nil), ownNodes...), ghostNodes...)

		e2l := make(map[int]int, len(allEls))
		for i, e := range allEls {
			e2l[e] = i
		}
		n2l := make(map[int]int, len(allNds))
		for i, n := range allNds {
			n2l[n] = i
		}
		elLocal[r] = e2l
		ndLocal[r] = n2l

		lm := &mesh.Mesh{
			ElNd:     make([][4]int, len(allEls)),
			X:        make([]float64, len(allNds)),
			Y:        make([]float64, len(allNds)),
			Region:   make([]int, len(allEls)),
			BCs:      make([]mesh.BC, len(allNds)),
			GlobalEl: allEls,
			GlobalNd: allNds,
			NOwnEl:   len(owned),
			NOwnNd:   len(ownNodes),
		}
		for i, e := range allEls {
			for k := 0; k < 4; k++ {
				lm.ElNd[i][k] = n2l[global.ElNd[e][k]]
			}
			lm.Region[i] = global.Region[e]
		}
		for i, n := range allNds {
			lm.X[i] = global.X[n]
			lm.Y[i] = global.Y[n]
			lm.BCs[i] = global.BCs[n]
		}
		lm.BuildConnectivity()

		sm := &SubMesh{
			M:      lm,
			Rank:   r,
			ElSend: make(map[int][]int),
			ElRecv: make(map[int][]int),
			NdSend: make(map[int][]int),
			NdRecv: make(map[int][]int),
		}
		// Receive lists: ghosts grouped by owner, already in
		// (owner, global id) order.
		for i := len(owned); i < len(allEls); i++ {
			src := part[allEls[i]]
			sm.ElRecv[src] = append(sm.ElRecv[src], i)
		}
		for i := len(ownNodes); i < len(allNds); i++ {
			src := ndOwner[allNds[i]]
			sm.NdRecv[src] = append(sm.NdRecv[src], i)
		}
		subs[r] = sm
	}

	// Wire send lists to mirror each receiver's order.
	for r := 0; r < nparts; r++ {
		for src, recvIdx := range subs[r].ElRecv {
			send := make([]int, len(recvIdx))
			for i, li := range recvIdx {
				ge := subs[r].M.GlobalEl[li]
				sl, ok := elLocal[src][ge]
				if !ok || sl >= subs[src].M.NOwnEl {
					return nil, fmt.Errorf("partition: ghost element %d of rank %d not owned by rank %d", ge, r, src)
				}
				send[i] = sl
			}
			subs[src].ElSend[r] = send
		}
		for src, recvIdx := range subs[r].NdRecv {
			send := make([]int, len(recvIdx))
			for i, li := range recvIdx {
				gn := subs[r].M.GlobalNd[li]
				sl, ok := ndLocal[src][gn]
				if !ok || sl >= subs[src].M.NOwnNd {
					return nil, fmt.Errorf("partition: ghost node %d of rank %d not owned by rank %d", gn, r, src)
				}
				send[i] = sl
			}
			subs[src].NdSend[r] = send
		}
	}
	// When the global mesh is itself a renumbered view (GlobalEl
	// non-nil — see internal/order), compose the maps so every local
	// GlobalEl/GlobalNd carries the canonical generation id: everything
	// that presents global data (checkpoint gather/scatter, dumps,
	// result assembly) lands in canonical order without knowing a
	// renumbering happened. The composition must run after the
	// send-list wiring above, which keys on raw indices into global.
	if global.GlobalEl != nil {
		for r := 0; r < nparts; r++ {
			lm := subs[r].M
			for i, ge := range lm.GlobalEl {
				lm.GlobalEl[i] = global.GlobalEl[ge]
			}
			for i, gn := range lm.GlobalNd {
				lm.GlobalNd[i] = global.GlobalNd[gn]
			}
		}
	}
	for r := 0; r < nparts; r++ {
		nb := make(map[int]bool)
		for s := range subs[r].ElSend {
			nb[s] = true
		}
		for s := range subs[r].ElRecv {
			nb[s] = true
		}
		for s := range subs[r].NdSend {
			nb[s] = true
		}
		for s := range subs[r].NdRecv {
			nb[s] = true
		}
		for s := range nb {
			subs[r].Neighbours = append(subs[r].Neighbours, s)
		}
		sort.Ints(subs[r].Neighbours)
	}
	return subs, nil
}
