package partition

import (
	"math"
	"testing"
	"testing/quick"

	"bookleaf/internal/mesh"
)

func rectMesh(t testing.TB, nx, ny int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Rect(mesh.RectSpec{NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func checkPartition(t *testing.T, part []int, n, nparts int) {
	t.Helper()
	if len(part) != n {
		t.Fatalf("part length %d, want %d", len(part), n)
	}
	counts := make([]int, nparts)
	for _, p := range part {
		if p < 0 || p >= nparts {
			t.Fatalf("invalid part id %d", p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("part %d empty", p)
		}
	}
}

func TestRCBBalance(t *testing.T) {
	m := rectMesh(t, 16, 16)
	for _, nparts := range []int{1, 2, 3, 4, 7, 8, 16} {
		part, err := RCBMesh(m, nparts)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, part, m.NEl, nparts)
		if imb := Imbalance(part, nil, nparts); imb > 1.1 {
			t.Fatalf("nparts=%d RCB imbalance %v > 1.1", nparts, imb)
		}
	}
}

func TestRCBContiguousHalves(t *testing.T) {
	// For a 2-part split of a square mesh, RCB must separate space into
	// two half-planes: no element of part 0 lies right of part 1's
	// leftmost... simply check the cut is a straight coordinate split.
	m := rectMesh(t, 8, 8)
	part, err := RCBMesh(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	var max0, min1 = -math.MaxFloat64, math.MaxFloat64
	var x, y [4]float64
	for e := 0; e < m.NEl; e++ {
		m.GatherCoords(e, &x, &y)
		cx := 0.25 * (x[0] + x[1] + x[2] + x[3])
		if part[e] == 0 && cx > max0 {
			max0 = cx
		}
		if part[e] == 1 && cx < min1 {
			min1 = cx
		}
	}
	if max0 >= min1 {
		t.Fatalf("RCB 2-way split not spatially separated: max0=%v min1=%v", max0, min1)
	}
}

func TestRCBErrors(t *testing.T) {
	if _, err := RCB([]float64{1, 2}, []float64{1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RCB([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("nparts=0 accepted")
	}
	if _, err := RCB([]float64{1}, []float64{1}, 5); err == nil {
		t.Fatal("nparts > n accepted")
	}
}

func TestMultilevelBalanceAndCut(t *testing.T) {
	m := rectMesh(t, 20, 20)
	g := DualGraph(m)
	for _, nparts := range []int{2, 3, 4, 8} {
		part, err := Multilevel(g, nparts)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, part, m.NEl, nparts)
		if imb := Imbalance(part, nil, nparts); imb > 1.25 {
			t.Fatalf("nparts=%d multilevel imbalance %v > 1.25", nparts, imb)
		}
		// Edge cut must be far below total edges (random assignment
		// would cut ~ (1-1/k) of 2*20*19=760 edges).
		cut := g.EdgeCut(part)
		if cut > 300 {
			t.Fatalf("nparts=%d edge cut %d unreasonably high", nparts, cut)
		}
	}
}

func TestMultilevelBeatsOrMatchesStripesOnSquare(t *testing.T) {
	// A sane 4-way partition of a 16x16 grid has edge cut well under
	// the 3*16=48 of naive 4-striping... allow some slack but catch
	// regressions to absurd cuts.
	m := rectMesh(t, 16, 16)
	g := DualGraph(m)
	part, err := Multilevel(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cut := g.EdgeCut(part); cut > 80 {
		t.Fatalf("4-way cut = %d, want <= 80", cut)
	}
}

func TestDualGraphStructure(t *testing.T) {
	m := rectMesh(t, 3, 3)
	g := DualGraph(m)
	if g.NVerts != 9 {
		t.Fatalf("nverts = %d, want 9", g.NVerts)
	}
	// Corner element has 2 neighbours, edge 3, centre 4.
	deg := func(v int) int { return g.XAdj[v+1] - g.XAdj[v] }
	if deg(0) != 2 {
		t.Fatalf("corner degree = %d, want 2", deg(0))
	}
	if deg(4) != 4 {
		t.Fatalf("centre degree = %d, want 4", deg(4))
	}
	// Symmetry.
	for v := 0; v < g.NVerts; v++ {
		for i := g.XAdj[v]; i < g.XAdj[v+1]; i++ {
			u := g.Adj[i]
			found := false
			for j := g.XAdj[u]; j < g.XAdj[u+1]; j++ {
				if g.Adj[j] == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("dual graph asymmetric: %d->%d", v, u)
			}
		}
	}
}

func TestEdgeCutZeroForSinglePart(t *testing.T) {
	m := rectMesh(t, 5, 5)
	g := DualGraph(m)
	part := make([]int, m.NEl)
	if cut := g.EdgeCut(part); cut != 0 {
		t.Fatalf("single-part cut = %d, want 0", cut)
	}
}

func TestImbalancePerfect(t *testing.T) {
	part := []int{0, 0, 1, 1}
	if imb := Imbalance(part, nil, 2); imb != 1 {
		t.Fatalf("imbalance = %v, want 1", imb)
	}
}

func TestSplitCoversAndGhosts(t *testing.T) {
	m := rectMesh(t, 8, 8)
	part, err := RCBMesh(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := Split(m, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Owned elements cover the global mesh exactly once.
	seen := make([]int, m.NEl)
	for _, sm := range subs {
		for i := 0; i < sm.M.NOwnEl; i++ {
			seen[sm.M.GlobalEl[i]]++
		}
		if err := sm.M.Check(); err != nil {
			t.Fatalf("rank %d local mesh invalid: %v", sm.Rank, err)
		}
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("element %d owned %d times", e, c)
		}
	}
	// Owned nodes cover the global nodes exactly once.
	seenN := make([]int, m.NNd)
	for _, sm := range subs {
		for i := 0; i < sm.M.NOwnNd; i++ {
			seenN[sm.M.GlobalNd[i]]++
		}
	}
	for n, c := range seenN {
		if c != 1 {
			t.Fatalf("node %d owned %d times", n, c)
		}
	}
}

func TestSplitGhostRuleComplete(t *testing.T) {
	// Every element adjacent (via a node) to an owned element must be
	// local, so nodal sums on owned nodes are complete.
	m := rectMesh(t, 6, 6)
	part, _ := RCBMesh(m, 3)
	subs, err := Split(m, part, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range subs {
		local := make(map[int]bool)
		for _, ge := range sm.M.GlobalEl {
			local[ge] = true
		}
		for i := 0; i < sm.M.NOwnNd; i++ {
			gn := sm.M.GlobalNd[i]
			els, _ := m.ElementsAround(gn)
			for _, ge := range els {
				if !local[ge] {
					t.Fatalf("rank %d owned node %d missing adjacent element %d", sm.Rank, gn, ge)
				}
			}
		}
	}
}

func TestSplitExchangeListsMirror(t *testing.T) {
	m := rectMesh(t, 8, 4)
	part, _ := RCBMesh(m, 4)
	subs, err := Split(m, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r, sm := range subs {
		for src, recv := range sm.ElRecv {
			send := subs[src].ElSend[r]
			if len(send) != len(recv) {
				t.Fatalf("el lists mismatched: rank %d<-%d recv %d send %d", r, src, len(recv), len(send))
			}
			for i := range recv {
				if subs[src].M.GlobalEl[send[i]] != sm.M.GlobalEl[recv[i]] {
					t.Fatalf("el exchange order mismatch rank %d<-%d pos %d", r, src, i)
				}
			}
		}
		for src, recv := range sm.NdRecv {
			send := subs[src].NdSend[r]
			if len(send) != len(recv) {
				t.Fatalf("nd lists mismatched: rank %d<-%d", r, src)
			}
			for i := range recv {
				if subs[src].M.GlobalNd[send[i]] != sm.M.GlobalNd[recv[i]] {
					t.Fatalf("nd exchange order mismatch rank %d<-%d pos %d", r, src, i)
				}
			}
		}
	}
}

func TestSplitRejectsBadPart(t *testing.T) {
	m := rectMesh(t, 4, 4)
	part := make([]int, m.NEl)
	if _, err := Split(m, part[:3], 1); err == nil {
		t.Fatal("short part vector accepted")
	}
	part[0] = 5
	if _, err := Split(m, part, 2); err == nil {
		t.Fatal("invalid part id accepted")
	}
	part[0] = 0
	if _, err := Split(m, part, 2); err == nil {
		t.Fatal("empty part accepted")
	}
}

func TestSplitSinglePartIsWholeMesh(t *testing.T) {
	m := rectMesh(t, 5, 3)
	part := make([]int, m.NEl)
	subs, err := Split(m, part, 1)
	if err != nil {
		t.Fatal(err)
	}
	sm := subs[0]
	if sm.M.NEl != m.NEl || sm.M.NNd != m.NNd || sm.M.NOwnEl != m.NEl {
		t.Fatalf("single part mesh sizes wrong: %d/%d els, %d/%d nodes", sm.M.NEl, m.NEl, sm.M.NNd, m.NNd)
	}
	if len(sm.Neighbours) != 0 {
		t.Fatalf("single part has neighbours %v", sm.Neighbours)
	}
}

func TestPartitionersProperty(t *testing.T) {
	f := func(nxr, nyr, npr uint8) bool {
		nx := int(nxr%10) + 2
		ny := int(nyr%10) + 2
		nparts := int(npr%4) + 1
		if nparts > nx*ny {
			nparts = 1
		}
		m, err := mesh.Rect(mesh.RectSpec{NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
		if err != nil {
			return false
		}
		for _, mk := range []func() ([]int, error){
			func() ([]int, error) { return RCBMesh(m, nparts) },
			func() ([]int, error) { return MultilevelMesh(m, nparts) },
		} {
			part, err := mk()
			if err != nil {
				return false
			}
			counts := make([]int, nparts)
			for _, p := range part {
				if p < 0 || p >= nparts {
					return false
				}
				counts[p]++
			}
			for _, c := range counts {
				if c == 0 {
					return false
				}
			}
			if _, err := Split(m, part, nparts); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
