// Package partition implements BookLeaf's spatial domain decomposition.
// The paper offers "a simple RCB strategy or a hypergraph strategy via
// METIS"; this package provides both from scratch: recursive coordinate
// bisection over element centroids, and a multilevel k-way graph
// partitioner (heavy-edge-matching coarsening, greedy-growth initial
// partition, boundary Fiduccia-Mattheyses refinement — the METIS
// algorithm family) over the element dual graph.
//
// Both partitioners are serial, as in the reference implementation (the
// paper notes the serial partitioner comes to dominate at scale, which
// motivated its hybrid scaling study).
package partition

import (
	"fmt"
	"sort"

	"bookleaf/internal/mesh"
)

// Graph is a CSR adjacency structure with edge weights.
type Graph struct {
	XAdj   []int // length nv+1
	Adj    []int // neighbour vertex ids
	EWgt   []int // edge weights, parallel to Adj
	VWgt   []int // vertex weights, length nv
	NVerts int
}

// DualGraph builds the element dual graph of a mesh: one vertex per
// element, one unit-weight edge per shared face.
func DualGraph(m *mesh.Mesh) *Graph {
	g := &Graph{NVerts: m.NEl}
	g.XAdj = make([]int, m.NEl+1)
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			if m.ElEl[e][k] >= 0 {
				g.XAdj[e+1]++
			}
		}
	}
	for e := 0; e < m.NEl; e++ {
		g.XAdj[e+1] += g.XAdj[e]
	}
	g.Adj = make([]int, g.XAdj[m.NEl])
	g.EWgt = make([]int, g.XAdj[m.NEl])
	fill := make([]int, m.NEl)
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			if nb := m.ElEl[e][k]; nb >= 0 {
				idx := g.XAdj[e] + fill[e]
				g.Adj[idx] = nb
				g.EWgt[idx] = 1
				fill[e]++
			}
		}
	}
	g.VWgt = make([]int, m.NEl)
	for i := range g.VWgt {
		g.VWgt[i] = 1
	}
	return g
}

// EdgeCut returns the total weight of edges crossing partition
// boundaries (each edge counted once).
func (g *Graph) EdgeCut(part []int) int {
	cut := 0
	for v := 0; v < g.NVerts; v++ {
		for i := g.XAdj[v]; i < g.XAdj[v+1]; i++ {
			if u := g.Adj[i]; u > v && part[u] != part[v] {
				cut += g.EWgt[i]
			}
		}
	}
	return cut
}

// Imbalance returns max part weight / ideal part weight.
func Imbalance(part []int, weights []int, nparts int) float64 {
	sums := make([]int, nparts)
	total := 0
	for v, p := range part {
		w := 1
		if weights != nil {
			w = weights[v]
		}
		sums[p] += w
		total += w
	}
	ideal := float64(total) / float64(nparts)
	max := 0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// RCB partitions points (cx, cy) with unit weights into nparts by
// recursive coordinate bisection, splitting along the axis of larger
// spread at the weighted median. Parts are contiguous in space.
func RCB(cx, cy []float64, nparts int) ([]int, error) {
	n := len(cx)
	if len(cy) != n {
		return nil, fmt.Errorf("partition: coordinate lengths differ: %d vs %d", n, len(cy))
	}
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts = %d, want >= 1", nparts)
	}
	if nparts > n && n > 0 {
		return nil, fmt.Errorf("partition: nparts = %d exceeds element count %d", nparts, n)
	}
	part := make([]int, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rcbSplit(cx, cy, idx, 0, nparts, part)
	return part, nil
}

func rcbSplit(cx, cy []float64, idx []int, base, k int, part []int) {
	if k == 1 {
		for _, i := range idx {
			part[i] = base
		}
		return
	}
	// Axis of larger spread.
	minX, maxX := cx[idx[0]], cx[idx[0]]
	minY, maxY := cy[idx[0]], cy[idx[0]]
	for _, i := range idx {
		if cx[i] < minX {
			minX = cx[i]
		}
		if cx[i] > maxX {
			maxX = cx[i]
		}
		if cy[i] < minY {
			minY = cy[i]
		}
		if cy[i] > maxY {
			maxY = cy[i]
		}
	}
	coord := cx
	if maxY-minY > maxX-minX {
		coord = cy
	}
	kl := k / 2
	kr := k - kl
	// Sort by the chosen coordinate (ties broken by index for
	// determinism) and split proportionally to kl:kr.
	sort.Slice(idx, func(a, b int) bool {
		if coord[idx[a]] != coord[idx[b]] {
			return coord[idx[a]] < coord[idx[b]]
		}
		return idx[a] < idx[b]
	})
	split := len(idx) * kl / k
	rcbSplit(cx, cy, idx[:split], base, kl, part)
	rcbSplit(cx, cy, idx[split:], base+kl, kr, part)
}

// RCBMesh runs RCB over a mesh's element centroids.
func RCBMesh(m *mesh.Mesh, nparts int) ([]int, error) {
	cx := make([]float64, m.NEl)
	cy := make([]float64, m.NEl)
	var x, y [4]float64
	for e := 0; e < m.NEl; e++ {
		m.GatherCoords(e, &x, &y)
		cx[e] = 0.25 * (x[0] + x[1] + x[2] + x[3])
		cy[e] = 0.25 * (y[0] + y[1] + y[2] + y[3])
	}
	return RCB(cx, cy, nparts)
}

// Multilevel partitions the graph into nparts by multilevel recursive
// bisection: the graph is coarsened by heavy-edge matching, bisected by
// greedy region growing on the coarsest level, refined by FM boundary
// passes on each uncoarsening level, and the halves are recursed.
func Multilevel(g *Graph, nparts int) ([]int, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts = %d, want >= 1", nparts)
	}
	if nparts > g.NVerts && g.NVerts > 0 {
		return nil, fmt.Errorf("partition: nparts = %d exceeds vertex count %d", nparts, g.NVerts)
	}
	part := make([]int, g.NVerts)
	verts := make([]int, g.NVerts)
	for i := range verts {
		verts[i] = i
	}
	mlSplit(g, verts, 0, nparts, part)
	return part, nil
}

// MultilevelMesh runs the multilevel partitioner over a mesh dual graph.
func MultilevelMesh(m *mesh.Mesh, nparts int) ([]int, error) {
	return Multilevel(DualGraph(m), nparts)
}

// mlSplit recursively bisects the subgraph induced by verts.
func mlSplit(g *Graph, verts []int, base, k int, part []int) {
	if k == 1 {
		for _, v := range verts {
			part[v] = base
		}
		return
	}
	kl := k / 2
	kr := k - kl
	sub := induce(g, verts)
	side := bisect(sub, float64(kl)/float64(k))
	var left, right []int
	for i, v := range verts {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Guarantee each side can host its share of parts: tiny or
	// pathological graphs can leave a side undersized after refinement.
	for len(left) < kl {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	}
	for len(right) < kr {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	mlSplit(g, left, base, kl, part)
	mlSplit(g, right, base+kl, kr, part)
}

// induce extracts the subgraph on the given vertices (renumbered 0..n-1).
func induce(g *Graph, verts []int) *Graph {
	n := len(verts)
	local := make(map[int]int, n)
	for i, v := range verts {
		local[v] = i
	}
	sub := &Graph{NVerts: n, XAdj: make([]int, n+1), VWgt: make([]int, n)}
	for i, v := range verts {
		sub.VWgt[i] = g.VWgt[v]
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			if _, ok := local[g.Adj[e]]; ok {
				sub.XAdj[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		sub.XAdj[i+1] += sub.XAdj[i]
	}
	sub.Adj = make([]int, sub.XAdj[n])
	sub.EWgt = make([]int, sub.XAdj[n])
	fill := make([]int, n)
	for i, v := range verts {
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			if li, ok := local[g.Adj[e]]; ok {
				idx := sub.XAdj[i] + fill[i]
				sub.Adj[idx] = li
				sub.EWgt[idx] = g.EWgt[e]
				fill[i]++
			}
		}
	}
	return sub
}

// bisect splits g into side 0 (target weight fraction f) and side 1
// using the multilevel scheme. Returns per-vertex side labels.
func bisect(g *Graph, f float64) []int {
	const coarsestSize = 64
	if g.NVerts <= coarsestSize {
		side := growBisection(g, f)
		fmRefine(g, side, f)
		return side
	}
	cg, cmap := coarsen(g)
	if cg.NVerts >= g.NVerts {
		// Matching made no progress (e.g. star graphs): stop coarsening.
		side := growBisection(g, f)
		fmRefine(g, side, f)
		return side
	}
	cside := bisect(cg, f)
	side := make([]int, g.NVerts)
	for v := 0; v < g.NVerts; v++ {
		side[v] = cside[cmap[v]]
	}
	fmRefine(g, side, f)
	return side
}

// coarsen contracts a heavy-edge matching. Returns the coarse graph and
// the fine→coarse vertex map.
func coarsen(g *Graph) (*Graph, []int) {
	n := g.NVerts
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in order; match each unmatched vertex with its
	// heaviest unmatched neighbour.
	cmap := make([]int, n)
	nc := 0
	for v := 0; v < n; v++ {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, -1
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			u := g.Adj[e]
			if u != v && match[u] < 0 && g.EWgt[e] > bestW {
				best, bestW = u, g.EWgt[e]
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			cmap[v] = nc
			cmap[best] = nc
		} else {
			match[v] = v
			cmap[v] = nc
		}
		nc++
	}
	// Build coarse graph with aggregated weights.
	cg := &Graph{NVerts: nc, VWgt: make([]int, nc), XAdj: make([]int, nc+1)}
	type edge struct{ u, w int }
	adjLists := make([][]edge, nc)
	seen := make(map[int]int) // coarse neighbour -> position in list
	for v := 0; v < n; v++ {
		cv := cmap[v]
		cg.VWgt[cv] += g.VWgt[v]
	}
	for v := 0; v < n; v++ {
		cv := cmap[v]
		if match[v] < v && match[v] != v {
			continue // process each pair once, at the lower vertex
		}
		members := []int{v}
		if match[v] != v && match[v] >= 0 {
			members = append(members, match[v])
		}
		clear(seen)
		for _, mv := range members {
			for e := g.XAdj[mv]; e < g.XAdj[mv+1]; e++ {
				cu := cmap[g.Adj[e]]
				if cu == cv {
					continue
				}
				if pos, ok := seen[cu]; ok {
					adjLists[cv][pos].w += g.EWgt[e]
				} else {
					seen[cu] = len(adjLists[cv])
					adjLists[cv] = append(adjLists[cv], edge{cu, g.EWgt[e]})
				}
			}
		}
	}
	for cv := 0; cv < nc; cv++ {
		cg.XAdj[cv+1] = cg.XAdj[cv] + len(adjLists[cv])
	}
	cg.Adj = make([]int, cg.XAdj[nc])
	cg.EWgt = make([]int, cg.XAdj[nc])
	for cv := 0; cv < nc; cv++ {
		for i, e := range adjLists[cv] {
			cg.Adj[cg.XAdj[cv]+i] = e.u
			cg.EWgt[cg.XAdj[cv]+i] = e.w
		}
	}
	return cg, cmap
}

// growBisection seeds side 0 from a peripheral vertex and grows it by
// BFS until it holds the target weight fraction.
func growBisection(g *Graph, f float64) []int {
	n := g.NVerts
	side := make([]int, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 {
		return side
	}
	total := 0
	for _, w := range g.VWgt {
		total += w
	}
	target := int(f*float64(total) + 0.5)
	// BFS from vertex 0 to find a peripheral seed, then BFS-grow.
	seed := bfsFarthest(g, 0)
	queue := []int{seed}
	side[seed] = 0
	grown := g.VWgt[seed]
	visited := make([]bool, n)
	visited[seed] = true
	for len(queue) > 0 && grown < target {
		v := queue[0]
		queue = queue[1:]
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			u := g.Adj[e]
			if !visited[u] {
				visited[u] = true
				if grown+g.VWgt[u] <= target || grown == 0 {
					side[u] = 0
					grown += g.VWgt[u]
					queue = append(queue, u)
				}
			}
		}
	}
	// Disconnected graphs: if growth stalled short of target, absorb
	// arbitrary side-1 vertices.
	for v := 0; v < n && grown < target; v++ {
		if side[v] == 1 {
			side[v] = 0
			grown += g.VWgt[v]
		}
	}
	return side
}

func bfsFarthest(g *Graph, start int) int {
	n := g.NVerts
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	last := start
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		last = v
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			if u := g.Adj[e]; dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return last
}

// fmRefine performs Fiduccia-Mattheyses-style boundary refinement:
// repeated passes moving the boundary vertex with the best gain subject
// to a balance constraint, until a pass yields no improvement.
func fmRefine(g *Graph, side []int, f float64) {
	n := g.NVerts
	if n < 2 {
		return
	}
	total := 0
	for _, w := range g.VWgt {
		total += w
	}
	target0 := f * float64(total)
	tol := 0.04*float64(total) + float64(maxVWgt(g))
	w0 := 0
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += g.VWgt[v]
		}
	}
	gain := func(v int) int {
		gn := 0
		for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
			if side[g.Adj[e]] == side[v] {
				gn -= g.EWgt[e]
			} else {
				gn += g.EWgt[e]
			}
		}
		return gn
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		// Collect boundary vertices.
		for v := 0; v < n; v++ {
			onBoundary := false
			for e := g.XAdj[v]; e < g.XAdj[v+1]; e++ {
				if side[g.Adj[e]] != side[v] {
					onBoundary = true
					break
				}
			}
			if !onBoundary {
				continue
			}
			gn := gain(v)
			if gn <= 0 {
				continue
			}
			// Balance check for moving v to the other side.
			nw0 := w0
			if side[v] == 0 {
				nw0 -= g.VWgt[v]
			} else {
				nw0 += g.VWgt[v]
			}
			if absF(float64(nw0)-target0) > tol && absF(float64(nw0)-target0) > absF(float64(w0)-target0) {
				continue
			}
			side[v] = 1 - side[v]
			w0 = nw0
			improved = true
		}
		if !improved {
			break
		}
	}
}

func maxVWgt(g *Graph) int {
	m := 1
	for _, w := range g.VWgt {
		if w > m {
			m = w
		}
	}
	return m
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
