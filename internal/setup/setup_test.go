package setup

import (
	"math"
	"testing"

	"bookleaf/internal/mesh"
)

func TestSodRegionsAndStates(t *testing.T) {
	p, err := Sod(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sod" || p.TEnd != 0.25 || p.Gamma != 1.4 {
		t.Fatalf("metadata wrong: %+v", p)
	}
	left, right := 0, 0
	for e := 0; e < p.Mesh.NEl; e++ {
		switch p.Mesh.Region[e] {
		case 0:
			left++
			if p.Rho[e] != 1 {
				t.Fatalf("left density %v", p.Rho[e])
			}
			// p = (gamma-1) rho e = 1
			if math.Abs(0.4*p.Rho[e]*p.Ein[e]-1) > 1e-12 {
				t.Fatalf("left pressure wrong: e=%v", p.Ein[e])
			}
		case 1:
			right++
			if p.Rho[e] != 0.125 {
				t.Fatalf("right density %v", p.Rho[e])
			}
			if math.Abs(0.4*p.Rho[e]*p.Ein[e]-0.1) > 1e-12 {
				t.Fatalf("right pressure wrong: e=%v", p.Ein[e])
			}
		}
	}
	if left != right || left == 0 {
		t.Fatalf("region split %d/%d", left, right)
	}
}

func TestNohVelocityField(t *testing.T) {
	p, err := Noh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	// A free interior node moves radially inward at unit speed.
	for n := 0; n < s.Mesh.NNd; n++ {
		if s.Mesh.BCs[n] != mesh.BCNone {
			continue
		}
		sp := math.Hypot(s.U[n], s.V[n])
		if math.Abs(sp-1) > 1e-12 {
			t.Fatalf("node %d speed %v, want 1", n, sp)
		}
		if s.U[n]*s.X[n]+s.V[n]*s.Y[n] >= 0 {
			t.Fatalf("node %d not inward", n)
		}
	}
	// Axis nodes respect the reflective walls.
	for n := 0; n < s.Mesh.NNd; n++ {
		if s.Mesh.BCs[n]&mesh.FixU != 0 && s.U[n] != 0 {
			t.Fatalf("x-axis node %d has u=%v", n, s.U[n])
		}
	}
}

func TestSedovEnergyBudget(t *testing.T) {
	p, err := Sedov(40, 40, 0.311)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	// Total internal energy = quadrant share + ambient floor.
	ie := s.InternalEnergy()
	if math.Abs(ie-0.311/4) > 1e-3 {
		t.Fatalf("deposited energy %v, want ~%v", ie, 0.311/4)
	}
	// Deposit confined near the origin.
	var x, y [4]float64
	for e := 0; e < p.Mesh.NEl; e++ {
		if p.Ein[e] > 1 {
			p.Mesh.GatherCoords(e, &x, &y)
			r := math.Hypot(0.25*(x[0]+x[1]+x[2]+x[3]), 0.25*(y[0]+y[1]+y[2]+y[3]))
			if r > 0.1 {
				t.Fatalf("hot cell at r=%v", r)
			}
		}
	}
}

func TestSedovRejectsBadEnergy(t *testing.T) {
	if _, err := Sedov(10, 10, 0); err == nil {
		t.Fatal("zero energy accepted")
	}
}

func TestSaltzmannMeshAndPiston(t *testing.T) {
	p, err := Saltzmann(50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.PistonU != 1 {
		t.Fatalf("piston velocity %v", p.PistonU)
	}
	// Mesh is distorted but valid.
	if err := p.Mesh.Check(); err != nil {
		t.Fatal(err)
	}
	distorted := false
	for n := 0; n < p.Mesh.NNd; n++ {
		// Interior columns shifted off the uniform grid.
		x := p.Mesh.X[n]
		col := math.Round(x * 50)
		if math.Abs(x-col/50) > 1e-6 {
			distorted = true
		}
	}
	if !distorted {
		t.Fatal("Saltzmann mesh not distorted")
	}
	// Left wall flagged as piston; applying velocities sets it moving.
	s, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for n := 0; n < p.Mesh.NNd; n++ {
		if p.Mesh.BCs[n]&mesh.Piston != 0 {
			found = true
			if s.U[n] != 1 {
				t.Fatalf("piston node %d u=%v", n, s.U[n])
			}
		}
	}
	if !found {
		t.Fatal("no piston nodes flagged")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sod", "noh", "sedov", "saltzmann", "waterair"} {
		p, err := ByName(name, 10, 10, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("name %q != %q", p.Name, name)
		}
	}
	if _, err := ByName("bogus", 10, 10, 0); err == nil {
		t.Fatal("bogus problem accepted")
	}
}

func TestProblemsStartConsistent(t *testing.T) {
	// Every problem must produce a valid state whose initial energy is
	// finite and positive density everywhere.
	for _, name := range []string{"sod", "noh", "sedov", "saltzmann", "waterair"} {
		p, err := ByName(name, 12, 6, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.NewState()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e := s.TotalEnergy(); math.IsNaN(e) || e < 0 {
			t.Fatalf("%s: initial energy %v", name, e)
		}
		if m := s.TotalMass(); m <= 0 {
			t.Fatalf("%s: initial mass %v", name, m)
		}
	}
}

func TestWaterAirSetup(t *testing.T) {
	p, err := WaterAir(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Opt.Materials) != 2 {
		t.Fatalf("want 2 materials, got %d", len(p.Opt.Materials))
	}
	if p.Opt.Materials[0].Name() != "tait" || p.Opt.Materials[1].Name() != "ideal gas" {
		t.Fatalf("materials = %s, %s", p.Opt.Materials[0].Name(), p.Opt.Materials[1].Name())
	}
	if p.Opt.Materials[0].EnergyDependent() || !p.Opt.Materials[1].EnergyDependent() {
		t.Fatal("energy dependence flags wrong")
	}
	water, airN := 0, 0
	for e := 0; e < p.Mesh.NEl; e++ {
		if p.Mesh.Region[e] == 0 {
			water++
			if p.Rho[e] != 1.02 {
				t.Fatalf("water density %v", p.Rho[e])
			}
		} else {
			airN++
		}
	}
	if water == 0 || airN == 0 {
		t.Fatalf("region split %d/%d", water, airN)
	}
}
