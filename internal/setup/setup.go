// Package setup builds BookLeaf's four standard shock-hydrodynamics
// test problems — Sod's shock tube, the Noh problem, the Sedov problem
// and Saltzmann's piston — as ready-to-run meshes, initial fields,
// boundary conditions and material tables, mirroring the input decks
// shipped with the reference implementation.
package setup

import (
	"fmt"
	"math"

	"bookleaf/internal/eos"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
)

// Problem is a fully-specified test case.
type Problem struct {
	Name string
	Mesh *mesh.Mesh
	Opt  hydro.Options
	// Initial per-element fields.
	Rho, Ein []float64
	// InitVel gives the initial nodal velocity field (nil = at rest).
	InitVel func(x, y float64) (u, v float64)
	// Piston velocity for Piston-flagged nodes.
	PistonU, PistonV float64
	// TEnd is the standard end time.
	TEnd float64
	// Gamma of the (single-gamma) problem, for reference solutions.
	Gamma float64
	// SedovEnergy is the total blast energy for the Sedov problem
	// (zero otherwise).
	SedovEnergy float64
}

// NewState instantiates a hydro state for the problem on its mesh
// (serial use; parallel drivers restrict the fields per rank). Rho and
// Ein are kept in canonical generation order; when the mesh has been
// renumbered for locality (Mesh.GlobalEl non-nil, see internal/order)
// the fields restrict through the carried permutation, exactly as the
// parallel drivers restrict them per rank.
func (p *Problem) NewState() (*hydro.State, error) {
	rho, ein := p.Rho, p.Ein
	if p.Mesh.GlobalEl != nil {
		rho = make([]float64, p.Mesh.NEl)
		ein = make([]float64, p.Mesh.NEl)
		for i, ge := range p.Mesh.GlobalEl {
			rho[i] = p.Rho[ge]
			ein[i] = p.Ein[ge]
		}
	}
	s, err := hydro.NewState(p.Mesh, p.Opt, rho, ein)
	if err != nil {
		return nil, err
	}
	p.ApplyVelocities(s)
	return s, nil
}

// ApplyVelocities sets the initial nodal velocities and piston state.
func (p *Problem) ApplyVelocities(s *hydro.State) {
	if p.InitVel != nil {
		for n := 0; n < s.Mesh.NNd; n++ {
			s.U[n], s.V[n] = p.InitVel(s.X[n], s.Y[n])
		}
		// Respect fixed-wall conditions at t=0.
		for n := 0; n < s.Mesh.NNd; n++ {
			if s.Mesh.BCs[n]&mesh.FixU != 0 {
				s.U[n] = 0
			}
			if s.Mesh.BCs[n]&mesh.FixV != 0 {
				s.V[n] = 0
			}
		}
	}
	s.PistonU, s.PistonV = p.PistonU, p.PistonV
	if p.PistonU != 0 || p.PistonV != 0 {
		for n := 0; n < s.Mesh.NNd; n++ {
			if s.Mesh.BCs[n]&mesh.Piston != 0 {
				s.U[n], s.V[n] = p.PistonU, p.PistonV
			}
		}
	}
}

// centroids fills per-element centroid coordinates.
func centroids(m *mesh.Mesh) (cx, cy []float64) {
	cx = make([]float64, m.NEl)
	cy = make([]float64, m.NEl)
	var x, y [4]float64
	for e := 0; e < m.NEl; e++ {
		m.GatherCoords(e, &x, &y)
		cx[e] = 0.25 * (x[0] + x[1] + x[2] + x[3])
		cy[e] = 0.25 * (y[0] + y[1] + y[2] + y[3])
	}
	return cx, cy
}

// Sod builds Sod's shock tube on an nx×ny strip [0,1]×[0,0.1]: left
// half rho=1, p=1; right half rho=0.125, p=0.1; gamma=1.4; run to
// t=0.25. "Sod's shock tube tests a code's ability to model the
// fundamentals of shock hydrodynamics."
func Sod(nx, ny int) (*Problem, error) {
	const gamma = 1.4
	g, err := eos.NewIdealGas(gamma)
	if err != nil {
		return nil, err
	}
	m, err := mesh.Rect(mesh.RectSpec{
		NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 0.1,
		RegionOf: func(cx, cy float64) int {
			if cx < 0.5 {
				return 0
			}
			return 1
		},
		Walls: mesh.DefaultWalls(),
	})
	if err != nil {
		return nil, err
	}
	opt := hydro.DefaultOptions(g, g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := 0; e < m.NEl; e++ {
		if m.Region[e] == 0 {
			rho[e] = 1
			ein[e] = 1.0 / ((gamma - 1) * 1.0) // p=1
		} else {
			rho[e] = 0.125
			ein[e] = 0.1 / ((gamma - 1) * 0.125) // p=0.1
		}
	}
	return &Problem{
		Name: "sod", Mesh: m, Opt: opt, Rho: rho, Ein: ein,
		TEnd: 0.25, Gamma: gamma,
	}, nil
}

// Noh builds the cylindrical Noh implosion on a [0,1]² quadrant:
// gamma=5/3, rho=1, cold gas with a unit radially-inward velocity.
// Reflective walls on the axes; the outer boundary is free (the shock
// stays well inside by t=0.6). "Noh's problem is used to highlight the
// wall-heating issue commonly found with artificial viscosity methods."
func Noh(nx, ny int) (*Problem, error) {
	const gamma = 5.0 / 3.0
	g, err := eos.NewIdealGas(gamma)
	if err != nil {
		return nil, err
	}
	// The outer boundary carries the far-field inflow condition: the
	// exact pre-shock solution has constant velocity along node paths,
	// so outer nodes keep their initial -r̂ velocity (without this the
	// zero-pressure cold gas amplifies corner-node noise into sliver
	// cells at finer resolutions).
	m, err := mesh.Rect(mesh.RectSpec{
		NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 1,
		Walls: mesh.WallSpec{
			Left: mesh.FixU, Bottom: mesh.FixV,
			Right: mesh.FrozenVel, Top: mesh.FrozenVel,
		},
	})
	if err != nil {
		return nil, err
	}
	opt := hydro.DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 1e-9
	}
	return &Problem{
		Name: "noh", Mesh: m, Opt: opt, Rho: rho, Ein: ein,
		InitVel: func(x, y float64) (float64, float64) {
			r := math.Hypot(x, y)
			if r == 0 {
				return 0, 0
			}
			return -x / r, -y / r
		},
		TEnd: 0.6, Gamma: gamma,
	}, nil
}

// NohDisc builds the Noh problem on a quarter-disc mesh whose outer
// boundary lies exactly on the physical r=1 circle — the mesh-geometry
// ablation of Noh: compare against the Cartesian-quadrant version to
// see how much of the error is mesh alignment (the same distinction the
// paper draws by running Sedov on a Cartesian mesh "to test the code's
// capability to model non-mesh-aligned shocks").
func NohDisc(n int) (*Problem, error) {
	const gamma = 5.0 / 3.0
	g, err := eos.NewIdealGas(gamma)
	if err != nil {
		return nil, err
	}
	m, err := mesh.QuarterDisc(mesh.QuarterDiscSpec{
		N: n, R: 1,
		AxisX: mesh.FixU, AxisY: mesh.FixV, Arc: mesh.FrozenVel,
	})
	if err != nil {
		return nil, err
	}
	opt := hydro.DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 1e-9
	}
	return &Problem{
		Name: "nohdisc", Mesh: m, Opt: opt, Rho: rho, Ein: ein,
		InitVel: func(x, y float64) (float64, float64) {
			r := math.Hypot(x, y)
			if r == 0 {
				return 0, 0
			}
			return -x / r, -y / r
		},
		TEnd: 0.6, Gamma: gamma,
	}, nil
}

// Sedov builds the Sedov blast on a [0,1.2]² quadrant Cartesian mesh
// (the paper: "calculated on a Cartesian mesh to test the code's
// capability to model non-mesh-aligned shocks"): gamma=1.4, ambient
// rho=1, and blast energy eTotal deposited in the corner cell (a
// quarter of the full-plane energy, by symmetry).
func Sedov(nx, ny int, eTotal float64) (*Problem, error) {
	const gamma = 1.4
	if eTotal <= 0 {
		return nil, fmt.Errorf("setup: sedov energy %v must be positive", eTotal)
	}
	g, err := eos.NewIdealGas(gamma)
	if err != nil {
		return nil, err
	}
	m, err := mesh.Rect(mesh.RectSpec{
		NX: nx, NY: ny, X0: 0, X1: 1.2, Y0: 0, Y1: 1.2,
		Walls: mesh.DefaultWalls(),
	})
	if err != nil {
		return nil, err
	}
	opt := hydro.DefaultOptions(g)
	// The Sedov deck selects the Hancock filter: the strong point
	// blast on a Cartesian mesh excites diagonal (hourglass-adjacent)
	// distortion that the simplified sub-zonal response does not
	// suppress; the viscous filter holds the stencil together and
	// reproduces the self-similar front (peak ~6 at the exact radius).
	opt.Hourglass = hydro.HGFilter
	opt.HGKappa = 0.25
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 1e-9
	}
	// Deposit a quarter of the blast (quadrant symmetry) as a uniform
	// energy density over a small disc of radius ~2.2 cells around the
	// origin. A strict single-cell deposit on a quadrilateral mesh
	// drives the classic diagonal-cell collapse; the finite source
	// radius (still far below the measured shock radii) avoids it
	// without changing the self-similar solution.
	cx, cy := centroids(m)
	dx := 1.2 / float64(nx)
	rDep := 2.2 * dx
	var volDep float64
	for e := range cx {
		if math.Hypot(cx[e], cy[e]) < rDep {
			volDep += m.Volume(e)
		}
	}
	if volDep == 0 {
		return nil, fmt.Errorf("setup: sedov deposit region empty")
	}
	for e := range cx {
		if math.Hypot(cx[e], cy[e]) < rDep {
			ein[e] = (eTotal / 4) / (rho[e] * volDep)
		}
	}
	return &Problem{
		Name: "sedov", Mesh: m, Opt: opt, Rho: rho, Ein: ein,
		TEnd: 1.0, Gamma: gamma, SedovEnergy: eTotal,
	}, nil
}

// Saltzmann builds Saltzmann's piston: a [0,1]×[0,0.1] cold gas strip
// on the classic skewed mesh, driven by a unit-velocity piston from the
// left. "Designed to exacerbate hourglass modes and therefore test a
// code's capability to suppress such modes."
func Saltzmann(nx, ny int) (*Problem, error) {
	const gamma = 5.0 / 3.0
	g, err := eos.NewIdealGas(gamma)
	if err != nil {
		return nil, err
	}
	const h = 0.1
	m, err := mesh.Rect(mesh.RectSpec{
		NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: h,
		Distort: mesh.NewSaltzmannDistort(h, 0.01),
		Walls: mesh.WallSpec{
			Left: mesh.Piston, Right: mesh.FixU,
			Bottom: mesh.FixV, Top: mesh.FixV,
		},
	})
	if err != nil {
		return nil, err
	}
	opt := hydro.DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 1e-9
	}
	return &Problem{
		Name: "saltzmann", Mesh: m, Opt: opt, Rho: rho, Ein: ein,
		PistonU: 1, TEnd: 0.6, Gamma: gamma,
	}, nil
}

// WaterAir builds a two-material shock tube exercising the Tait EoS:
// a slightly compressed water column (Tait, left) drives a shock into
// air (ideal gas, right). This is the multi-material configuration the
// reference code's region/material machinery exists for; it validates
// pressure continuity across a material interface with a large
// impedance mismatch.
func WaterAir(nx, ny int) (*Problem, error) {
	const (
		gammaAir = 1.4
		rhoW     = 1.02 // compressed water
		taitB    = 100.0
		taitN    = 7.0
		rhoA     = 0.05
		pAir     = 0.1
	)
	water, err := eos.NewTait(1.0, taitB, taitN)
	if err != nil {
		return nil, err
	}
	air, err := eos.NewIdealGas(gammaAir)
	if err != nil {
		return nil, err
	}
	m, err := mesh.Rect(mesh.RectSpec{
		NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 0.1,
		RegionOf: func(cx, cy float64) int {
			if cx < 0.4 {
				return 0
			}
			return 1
		},
		Walls: mesh.DefaultWalls(),
	})
	if err != nil {
		return nil, err
	}
	opt := hydro.DefaultOptions(water, air)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := 0; e < m.NEl; e++ {
		if m.Region[e] == 0 {
			rho[e] = rhoW
			ein[e] = 1e-6 // Tait pressure is energy-independent
		} else {
			rho[e] = rhoA
			ein[e] = pAir / ((gammaAir - 1) * rhoA)
		}
	}
	return &Problem{
		Name: "waterair", Mesh: m, Opt: opt, Rho: rho, Ein: ein,
		TEnd: 0.08, Gamma: gammaAir,
	}, nil
}

// ByName builds a problem by its deck name with the given resolution.
// Sedov ignores sedovE <= 0 and uses the standard 0.311 (shock radius
// ~0.75 at t=1).
func ByName(name string, nx, ny int, sedovE float64) (*Problem, error) {
	switch name {
	case "sod":
		return Sod(nx, ny)
	case "noh":
		return Noh(nx, ny)
	case "sedov":
		if sedovE <= 0 {
			sedovE = 0.311
		}
		return Sedov(nx, ny, sedovE)
	case "saltzmann":
		return Saltzmann(nx, ny)
	case "waterair":
		return WaterAir(nx, ny)
	case "nohdisc":
		return NohDisc(nx)
	default:
		return nil, fmt.Errorf("setup: unknown problem %q (want sod, noh, sedov, saltzmann or waterair)", name)
	}
}
