package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// unitSquare returns a CCW unit square.
func unitSquare() ([4]float64, [4]float64) {
	return [4]float64{0, 1, 1, 0}, [4]float64{0, 0, 1, 1}
}

// randomConvexQuad maps four raw floats to a mildly perturbed unit
// square that stays convex and CCW.
func randomConvexQuad(r [8]float64) ([4]float64, [4]float64) {
	p := func(v float64) float64 { return 0.2 * math.Abs(math.Mod(v, 1)) }
	x := [4]float64{0 + p(r[0]), 1 - p(r[1]), 1 - p(r[2]), 0 + p(r[3])}
	y := [4]float64{0 + p(r[4]), 0 + p(r[5]), 1 - p(r[6]), 1 - p(r[7])}
	return x, y
}

func TestAreaUnitSquare(t *testing.T) {
	x, y := unitSquare()
	if a := Area(&x, &y); math.Abs(a-1) > 1e-15 {
		t.Fatalf("area = %v, want 1", a)
	}
}

func TestAreaSignFlipsWithOrientation(t *testing.T) {
	x, y := unitSquare()
	// Reverse to CW.
	xr := [4]float64{x[0], x[3], x[2], x[1]}
	yr := [4]float64{y[0], y[3], y[2], y[1]}
	if a := Area(&xr, &yr); math.Abs(a+1) > 1e-15 {
		t.Fatalf("CW area = %v, want -1", a)
	}
}

func TestAreaTranslationInvariant(t *testing.T) {
	f := func(dx, dy float64, r [8]float64) bool {
		dx = math.Mod(dx, 1e3)
		dy = math.Mod(dy, 1e3)
		x, y := randomConvexQuad(r)
		a0 := Area(&x, &y)
		for k := 0; k < 4; k++ {
			x[k] += dx
			y[k] += dy
		}
		return math.Abs(Area(&x, &y)-a0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroidUnitSquare(t *testing.T) {
	x, y := unitSquare()
	cx, cy := Centroid(&x, &y)
	if cx != 0.5 || cy != 0.5 {
		t.Fatalf("centroid = (%v,%v), want (0.5,0.5)", cx, cy)
	}
}

func TestBasisGradSumsToZero(t *testing.T) {
	f := func(r [8]float64) bool {
		x, y := randomConvexQuad(r)
		var ax, ay [4]float64
		BasisGrad(&x, &y, &ax, &ay)
		var sx, sy float64
		for k := 0; k < 4; k++ {
			sx += ax[k]
			sy += ay[k]
		}
		return math.Abs(sx) < 1e-14 && math.Abs(sy) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The defining property: moving node k by (h,0) changes the area by
// ax[k]*h to first order. Verified with central differences.
func TestBasisGradIsAreaGradient(t *testing.T) {
	f := func(r [8]float64) bool {
		x, y := randomConvexQuad(r)
		var ax, ay [4]float64
		BasisGrad(&x, &y, &ax, &ay)
		const h = 1e-6
		for k := 0; k < 4; k++ {
			xp, xm := x, x
			xp[k] += h
			xm[k] -= h
			dAdx := (Area(&xp, &y) - Area(&xm, &y)) / (2 * h)
			if math.Abs(dAdx-ax[k]) > 1e-8 {
				return false
			}
			yp, ym := y, y
			yp[k] += h
			ym[k] -= h
			dAdy := (Area(&x, &yp) - Area(&x, &ym)) / (2 * h)
			if math.Abs(dAdy-ay[k]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSideLengthsUnitSquare(t *testing.T) {
	x, y := unitSquare()
	var l [4]float64
	SideLengths(&x, &y, &l)
	for k := 0; k < 4; k++ {
		if math.Abs(l[k]-1) > 1e-15 {
			t.Fatalf("side %d = %v, want 1", k, l[k])
		}
	}
}

func TestMinLengthRectangle(t *testing.T) {
	// 2 x 0.5 rectangle: characteristic length is the short side 0.5.
	x := [4]float64{0, 2, 2, 0}
	y := [4]float64{0, 0, 0.5, 0.5}
	if l := MinLength(&x, &y); math.Abs(l-0.5) > 1e-14 {
		t.Fatalf("MinLength = %v, want 0.5", l)
	}
}

func TestSubVolumesTileElement(t *testing.T) {
	f := func(r [8]float64) bool {
		x, y := randomConvexQuad(r)
		var sv [4]float64
		SubVolumes(&x, &y, &sv)
		sum := sv[0] + sv[1] + sv[2] + sv[3]
		return math.Abs(sum-Area(&x, &y)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSubVolumesEqualOnSquare(t *testing.T) {
	x, y := unitSquare()
	var sv [4]float64
	SubVolumes(&x, &y, &sv)
	for k := 0; k < 4; k++ {
		if math.Abs(sv[k]-0.25) > 1e-15 {
			t.Fatalf("sv[%d] = %v, want 0.25", k, sv[k])
		}
	}
}

func TestTangled(t *testing.T) {
	x, y := unitSquare()
	if Tangled(&x, &y) {
		t.Fatal("unit square reported tangled")
	}
	// Bow-tie: swap nodes 2 and 3.
	xb := [4]float64{0, 1, 0, 1}
	yb := [4]float64{0, 0, 1, 1}
	if !Tangled(&xb, &yb) {
		t.Fatal("bow-tie not reported tangled")
	}
	// Inverted (CW).
	xc := [4]float64{0, 0, 1, 1}
	yc := [4]float64{0, 1, 1, 0}
	if !Tangled(&xc, &yc) {
		t.Fatal("inverted quad not reported tangled")
	}
}

func TestDivergenceUniformExpansion(t *testing.T) {
	x, y := unitSquare()
	// u = x - 0.5, v = y - 0.5: du/dx + dv/dy = 2.
	var u, v [4]float64
	for k := 0; k < 4; k++ {
		u[k] = x[k] - 0.5
		v[k] = y[k] - 0.5
	}
	if d := Divergence(&x, &y, &u, &v); math.Abs(d-2) > 1e-14 {
		t.Fatalf("divergence = %v, want 2", d)
	}
}

func TestDivergenceZeroForTranslation(t *testing.T) {
	f := func(r [8]float64, uu, vv float64) bool {
		uu = math.Mod(uu, 100)
		vv = math.Mod(vv, 100)
		x, y := randomConvexQuad(r)
		u := [4]float64{uu, uu, uu, uu}
		v := [4]float64{vv, vv, vv, vv}
		return math.Abs(Divergence(&x, &y, &u, &v)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDivergenceZeroForRotation(t *testing.T) {
	x, y := unitSquare()
	// Rigid rotation about centroid: u = -(y-cy), v = (x-cx).
	var u, v [4]float64
	for k := 0; k < 4; k++ {
		u[k] = -(y[k] - 0.5)
		v[k] = x[k] - 0.5
	}
	if d := Divergence(&x, &y, &u, &v); math.Abs(d) > 1e-14 {
		t.Fatalf("rotation divergence = %v, want 0", d)
	}
}

func TestHourglassModePreservesArea(t *testing.T) {
	// On a parallelogram, nodal displacement along Γ keeps area constant.
	x := [4]float64{0, 1, 1.3, 0.3}
	y := [4]float64{0, 0, 1, 1}
	a0 := Area(&x, &y)
	const h = 1e-3
	var xh, yh [4]float64
	for k := 0; k < 4; k++ {
		xh[k] = x[k] + h*HourglassVector[k]
		yh[k] = y[k] + h*HourglassVector[k]
	}
	if math.Abs(Area(&xh, &yh)-a0) > 1e-12 {
		t.Fatalf("hourglass displacement changed area by %v", Area(&xh, &yh)-a0)
	}
}

func TestDegenerateElementDivergenceSafe(t *testing.T) {
	// All nodes coincident: area zero, divergence must not blow up.
	x := [4]float64{1, 1, 1, 1}
	y := [4]float64{2, 2, 2, 2}
	u := [4]float64{1, 2, 3, 4}
	v := [4]float64{4, 3, 2, 1}
	if d := Divergence(&x, &y, &u, &v); d != 0 {
		t.Fatalf("degenerate divergence = %v, want 0", d)
	}
}
