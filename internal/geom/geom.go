// Package geom implements the bilinear isoparametric quadrilateral
// geometry used by BookLeaf's spatial discretisation: signed areas,
// centroids, the area-gradient "basis" vectors that drive the compatible
// corner forces, characteristic length scales for the CFL condition, and
// the four sub-zonal (corner) volumes that the Caramana hourglass
// control and the momentum remap are built on.
//
// Nodes of a quad are numbered 0..3 counter-clockwise; edge k joins node
// k to node (k+1) mod 4. All functions take coordinates as two 4-arrays
// so callers can gather from SoA mesh storage without allocation.
package geom

import "math"

// Area returns the signed area of the quad (positive for CCW node
// ordering) by the shoelace formula, which is exact for the bilinear
// element.
func Area(x, y *[4]float64) float64 {
	return 0.5 * ((x[2]-x[0])*(y[3]-y[1]) - (x[3]-x[1])*(y[2]-y[0]))
}

// Centroid returns the vertex-average centre of the quad. BookLeaf uses
// the vertex average (not the area centroid) for sub-zone construction.
func Centroid(x, y *[4]float64) (cx, cy float64) {
	return 0.25 * (x[0] + x[1] + x[2] + x[3]), 0.25 * (y[0] + y[1] + y[2] + y[3])
}

// BasisGrad fills ax, ay with the gradients of the element area with
// respect to each node position:
//
//	ax[k] = ∂A/∂x_k = (y_{k+1} - y_{k-1}) / 2
//	ay[k] = ∂A/∂y_k = (x_{k-1} - x_{k+1}) / 2
//
// These vectors satisfy dA/dt = Σ_k (ax[k] u_k + ay[k] v_k) for nodal
// velocities (u, v) and sum to zero over k (translation invariance), so
// the pressure corner forces F_k = (P+q)(ax[k], ay[k]) built on them
// exactly balance and conserve momentum.
func BasisGrad(x, y *[4]float64, ax, ay *[4]float64) {
	for k := 0; k < 4; k++ {
		kp := (k + 1) & 3
		km := (k + 3) & 3
		ax[k] = 0.5 * (y[kp] - y[km])
		ay[k] = 0.5 * (x[km] - x[kp])
	}
}

// SideLengths fills l with the four edge lengths.
func SideLengths(x, y *[4]float64, l *[4]float64) {
	for k := 0; k < 4; k++ {
		kp := (k + 1) & 3
		dx := x[kp] - x[k]
		dy := y[kp] - y[k]
		l[k] = math.Hypot(dx, dy)
	}
}

// MinLength returns the characteristic length scale used by the CFL
// condition: the smaller of (a) the two distances between midpoints of
// opposite edges and (b) the area divided by the longest edge. For a
// rectangle this is the shorter side. Term (b) is what keeps thin or
// nearly-degenerate quads stable: their midpoint distances stay finite
// while the true acoustic transit scale collapses with the area, and a
// CFL timestep based on midpoints alone lets the explicit update blow
// up before the timestep control can react.
func MinLength(x, y *[4]float64) float64 {
	// All candidate lengths are compared as squares and only the winner
	// is rooted: sqrt is monotone and correctly rounded, so
	// sqrt(min(a², b²)) is bit-for-bit min(sqrt(a²), sqrt(b²)) — one
	// square root per element instead of six on the timestep kernel's
	// hot path.
	dx := 0.5*(x[2]+x[3]) - 0.5*(x[0]+x[1])
	dy := 0.5*(y[2]+y[3]) - 0.5*(y[0]+y[1])
	d2 := dx*dx + dy*dy
	dx = 0.5*(x[3]+x[0]) - 0.5*(x[1]+x[2])
	dy = 0.5*(y[3]+y[0]) - 0.5*(y[1]+y[2])
	if e2 := dx*dx + dy*dy; e2 < d2 {
		d2 = e2
	}
	l := math.Sqrt(d2)
	var longest2 float64
	for k := 0; k < 4; k++ {
		kp := (k + 1) & 3
		ex := x[kp] - x[k]
		ey := y[kp] - y[k]
		if s2 := ex*ex + ey*ey; s2 > longest2 {
			longest2 = s2
		}
	}
	if longest := math.Sqrt(longest2); longest > 0 {
		if thin := Area(x, y) / longest; thin > 0 && thin < l {
			l = thin
		}
	}
	return l
}

// SubVolumes fills sv with the four corner sub-zone areas. Corner k is
// the quad (node k, midpoint of edge k, centroid, midpoint of edge k-1);
// the four corners exactly tile the element, so sum(sv) == Area to
// round-off. Negative sub-volumes indicate a tangled (non-convex past
// the diagonal) element.
func SubVolumes(x, y *[4]float64, sv *[4]float64) {
	cx, cy := Centroid(x, y)
	var mx, my [4]float64
	for k := 0; k < 4; k++ {
		kp := (k + 1) & 3
		mx[k] = 0.5 * (x[k] + x[kp])
		my[k] = 0.5 * (y[k] + y[kp])
	}
	for k := 0; k < 4; k++ {
		km := (k + 3) & 3
		// Quad: node k -> mid edge k -> centroid -> mid edge k-1.
		qx := [4]float64{x[k], mx[k], cx, mx[km]}
		qy := [4]float64{y[k], my[k], cy, my[km]}
		sv[k] = Area(&qx, &qy)
	}
}

// Tangled reports whether the quad is degenerate or inverted: the total
// area or any corner sub-volume is not strictly positive.
func Tangled(x, y *[4]float64) bool {
	if Area(x, y) <= 0 {
		return true
	}
	var sv [4]float64
	SubVolumes(x, y, &sv)
	for k := 0; k < 4; k++ {
		if sv[k] <= 0 {
			return true
		}
	}
	return false
}

// HourglassVector is the zero-energy mode pattern Γ = (+1,-1,+1,-1) for
// the bilinear quad. A nodal field proportional to Γ changes no element
// area (it is orthogonal to the basis gradients on a parallelogram) yet
// distorts the element — the "hourglass" mode the paper's filters
// suppress.
var HourglassVector = [4]float64{1, -1, 1, -1}

// Divergence returns the discrete velocity divergence of the element,
// (dA/dt)/A, given nodal velocities. Returns 0 for degenerate area.
func Divergence(x, y *[4]float64, u, v *[4]float64) float64 {
	a := Area(x, y)
	if a <= 0 {
		return 0
	}
	var ax, ay [4]float64
	BasisGrad(x, y, &ax, &ay)
	var dAdt float64
	for k := 0; k < 4; k++ {
		dAdt += ax[k]*u[k] + ay[k]*v[k]
	}
	return dAdt / a
}
