// Package order renumbers a mesh for cache locality. BookLeaf's hot
// kernels are dominated by indirect gather/scatter over the element↔node
// connectivity; the generators emit row-major numberings whose node
// reuse distance grows with the mesh width, so on wide meshes every
// corner gather of row j+1 misses on lines that row j just touched.
// Renumbering elements along a space-filling curve (Hilbert) or by
// reverse Cuthill-McKee over the dual graph — and renumbering nodes by
// first touch in the new element order — shrinks both the node reuse
// window and the index span of each gather.
//
// A reordering is applied once, to the serial global mesh, right after
// problem setup and before any partitioning. The permuted mesh carries
// the permutation in Mesh.GlobalEl/GlobalNd (new index → canonical
// generation index), the same mechanism partitioned sub-meshes already
// use, so everything downstream that presents global data — checkpoint
// gather/scatter, result assembly, error attribution — lands in
// canonical order without knowing a reordering happened. Partitioning a
// reordered mesh composes the maps; an elastic repartition re-splits the
// same reordered global mesh, so the locality order survives
// supervision-driven re-decomposition for free.
package order

import (
	"fmt"
	"math"
	"sort"

	"bookleaf/internal/mesh"
)

// Kind selects a renumbering.
type Kind string

const (
	// None leaves the mesh untouched (the generators' row-major order);
	// runs are bitwise-identical to a build without this package.
	None Kind = "none"
	// Hilbert orders elements along a Hilbert space-filling curve over
	// their centroids.
	Hilbert Kind = "hilbert"
	// RCM orders elements by reverse Cuthill-McKee over the face-
	// adjacency dual graph.
	RCM Kind = "rcm"
)

// Parse maps a -reorder / [control] reorder value onto a Kind. The
// empty string means None.
func Parse(s string) (Kind, error) {
	switch Kind(s) {
	case "", None:
		return None, nil
	case Hilbert:
		return Hilbert, nil
	case RCM:
		return RCM, nil
	}
	return None, fmt.Errorf("order: unknown reorder kind %q (want none, hilbert or rcm)", s)
}

// Perm is a mesh renumbering: El[newE] = oldE and Nd[newN] = oldN are
// the gather maps a permuted mesh is assembled through, ElInv/NdInv the
// scatter inverses (ElInv[oldE] = newE).
type Perm struct {
	El, Nd       []int
	ElInv, NdInv []int
}

// invert fills inv with the inverse of perm.
func invert(perm []int) []int {
	inv := make([]int, len(perm))
	for n, o := range perm {
		inv[o] = n
	}
	return inv
}

// withNodes completes an element order into a full Perm: nodes are
// renumbered by first touch walking the new element order corner by
// corner, so each element's corner gather lands on recently-assigned
// (cache-warm) node indices.
func withNodes(m *mesh.Mesh, el []int) *Perm {
	p := &Perm{El: el, ElInv: invert(el)}
	p.Nd = make([]int, 0, m.NNd)
	p.NdInv = make([]int, m.NNd)
	for i := range p.NdInv {
		p.NdInv[i] = -1
	}
	for _, oe := range el {
		for k := 0; k < 4; k++ {
			on := m.ElNd[oe][k]
			if p.NdInv[on] < 0 {
				p.NdInv[on] = len(p.Nd)
				p.Nd = append(p.Nd, on)
			}
		}
	}
	// Nodes untouched by any element (none on generated meshes, but a
	// Perm must be total) keep their relative order at the tail.
	for on := 0; on < m.NNd; on++ {
		if p.NdInv[on] < 0 {
			p.NdInv[on] = len(p.Nd)
			p.Nd = append(p.Nd, on)
		}
	}
	return p
}

// Compute returns the permutation of the given kind for mesh m. None
// yields the identity permutation.
func Compute(m *mesh.Mesh, k Kind) (*Perm, error) {
	switch k {
	case None:
		el := make([]int, m.NEl)
		for i := range el {
			el[i] = i
		}
		return withNodes(m, el), nil
	case Hilbert:
		return withNodes(m, hilbertOrder(m)), nil
	case RCM:
		return withNodes(m, rcmOrder(m)), nil
	}
	return nil, fmt.Errorf("order: unknown reorder kind %q", k)
}

// hilbertBits is the per-axis resolution of the Hilbert key: 16 bits
// per axis distinguishes centroids down to 1/65536 of the domain
// extent, far below any practical cell size.
const hilbertBits = 16

// hilbertOrder sorts elements by the Hilbert index of their centroid
// (ties — coincident centroids at key resolution — break on the
// original index, keeping the sort deterministic).
func hilbertOrder(m *mesh.Mesh) []int {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for n := 0; n < m.NNd; n++ {
		minX, maxX = math.Min(minX, m.X[n]), math.Max(maxX, m.X[n])
		minY, maxY = math.Min(minY, m.Y[n]), math.Max(maxY, m.Y[n])
	}
	sx, sy := maxX-minX, maxY-minY
	if sx <= 0 {
		sx = 1
	}
	if sy <= 0 {
		sy = 1
	}
	const side = 1 << hilbertBits
	keys := make([]uint64, m.NEl)
	for e := 0; e < m.NEl; e++ {
		var cx, cy float64
		for k := 0; k < 4; k++ {
			n := m.ElNd[e][k]
			cx += m.X[n]
			cy += m.Y[n]
		}
		cx, cy = cx/4, cy/4
		ix := int((cx - minX) / sx * (side - 1))
		iy := int((cy - minY) / sy * (side - 1))
		keys[e] = hilbertD(ix, iy)
	}
	el := make([]int, m.NEl)
	for i := range el {
		el[i] = i
	}
	sort.SliceStable(el, func(a, b int) bool {
		if keys[el[a]] != keys[el[b]] {
			return keys[el[a]] < keys[el[b]]
		}
		return el[a] < el[b]
	})
	return el
}

// hilbertD converts grid cell (x, y) on the 2^hilbertBits square to its
// distance along the Hilbert curve (the classic rotate-and-fold walk).
func hilbertD(x, y int) uint64 {
	var d uint64
	for s := 1 << (hilbertBits - 1); s > 0; s >>= 1 {
		var rx, ry int
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant. The reflection is about the full grid
		// width: bits at or above s are already consumed, and the
		// all-ones complement keeps the still-unconsumed low bits
		// non-negative (a reflection about s-1 would go negative for
		// coordinates with high bits set).
		if ry == 0 {
			if rx == 1 {
				x = (1 << hilbertBits) - 1 - x
				y = (1 << hilbertBits) - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// rcmOrder runs reverse Cuthill-McKee on the element dual graph (ElEl,
// faces as edges): BFS from a minimum-degree seed with neighbours
// visited in ascending (degree, index) order, the final order reversed.
// Disconnected components (which generated meshes do not have, but a
// permutation must cover) are each seeded the same way.
func rcmOrder(m *mesh.Mesh) []int {
	deg := make([]int, m.NEl)
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			if m.ElEl[e][k] >= 0 {
				deg[e]++
			}
		}
	}
	visited := make([]bool, m.NEl)
	order := make([]int, 0, m.NEl)
	queue := make([]int, 0, m.NEl)
	var nbrs [4]int
	for len(order) < m.NEl {
		// Seed: the unvisited element of minimum degree, lowest index
		// on ties — a cheap peripheral-vertex heuristic.
		seed, seedDeg := -1, 5
		for e := 0; e < m.NEl; e++ {
			if !visited[e] && deg[e] < seedDeg {
				seed, seedDeg = e, deg[e]
			}
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			order = append(order, e)
			nn := 0
			for k := 0; k < 4; k++ {
				if nb := m.ElEl[e][k]; nb >= 0 && !visited[nb] {
					visited[nb] = true
					nbrs[nn] = nb
					nn++
				}
			}
			sub := nbrs[:nn]
			sort.Slice(sub, func(a, b int) bool {
				if deg[sub[a]] != deg[sub[b]] {
					return deg[sub[a]] < deg[sub[b]]
				}
				return sub[a] < sub[b]
			})
			queue = append(queue, sub...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Apply returns a new mesh renumbered by p. The result carries the
// canonical ids in GlobalEl/GlobalNd (composed with m's own maps when m
// is itself a renumbered or partitioned view), which is what keeps
// checkpoints, dumps and results in canonical generation order. Only
// fully-owned meshes may be reordered — renumbering is a setup-time
// transform, applied before any partitioning.
func Apply(m *mesh.Mesh, p *Perm) (*mesh.Mesh, error) {
	if m.NOwnEl != m.NEl || m.NOwnNd != m.NNd {
		return nil, fmt.Errorf("order: cannot reorder a partitioned mesh (%d/%d owned elements)", m.NOwnEl, m.NEl)
	}
	if len(p.El) != m.NEl || len(p.Nd) != m.NNd {
		return nil, fmt.Errorf("order: permutation sized %d/%d for mesh %d/%d", len(p.El), len(p.Nd), m.NEl, m.NNd)
	}
	out := &mesh.Mesh{
		ElNd: make([][4]int, m.NEl),
		X:    make([]float64, m.NNd),
		Y:    make([]float64, m.NNd),
		BCs:  make([]mesh.BC, m.NNd),
	}
	if m.Region != nil {
		out.Region = make([]int, m.NEl)
	}
	out.GlobalEl = make([]int, m.NEl)
	out.GlobalNd = make([]int, m.NNd)
	for ne, oe := range p.El {
		for k := 0; k < 4; k++ {
			out.ElNd[ne][k] = p.NdInv[m.ElNd[oe][k]]
		}
		if m.Region != nil {
			out.Region[ne] = m.Region[oe]
		}
		if m.GlobalEl != nil {
			out.GlobalEl[ne] = m.GlobalEl[oe]
		} else {
			out.GlobalEl[ne] = oe
		}
	}
	for nn, on := range p.Nd {
		out.X[nn], out.Y[nn] = m.X[on], m.Y[on]
		out.BCs[nn] = m.BCs[on]
		if m.GlobalNd != nil {
			out.GlobalNd[nn] = m.GlobalNd[on]
		} else {
			out.GlobalNd[nn] = on
		}
	}
	out.BuildConnectivity()
	if err := out.Check(); err != nil {
		return nil, fmt.Errorf("order: reordered mesh invalid: %w", err)
	}
	return out, nil
}

// Reorder computes and applies the renumbering of the given kind.
// None returns m unchanged (no permutation, no GlobalEl maps — bitwise
// the pre-reorder behaviour).
func Reorder(m *mesh.Mesh, k Kind) (*mesh.Mesh, error) {
	if k == None || k == "" {
		return m, nil
	}
	p, err := Compute(m, k)
	if err != nil {
		return nil, err
	}
	return Apply(m, p)
}
