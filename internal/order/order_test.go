package order

import (
	"testing"

	"bookleaf/internal/mesh"
)

func rect(t *testing.T, nx, ny int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Rect(mesh.RectSpec{
		NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 0.1,
		Walls: mesh.DefaultWalls(),
		RegionOf: func(cx, cy float64) int {
			if cx > 0.5 {
				return 1
			}
			return 0
		},
	})
	if err != nil {
		t.Fatalf("Rect: %v", err)
	}
	return m
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", None, false}, {"none", None, false},
		{"hilbert", Hilbert, false}, {"rcm", RCM, false},
		{"zorder", None, true},
	} {
		got, err := Parse(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("Parse(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// TestPermRoundTrip: for every kind, perm ∘ inverse = identity on both
// the element and node maps, and both maps are total permutations.
func TestPermRoundTrip(t *testing.T) {
	m := rect(t, 31, 7)
	for _, k := range []Kind{None, Hilbert, RCM} {
		p, err := Compute(m, k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(p.El) != m.NEl || len(p.Nd) != m.NNd {
			t.Fatalf("%v: perm sized %d/%d, want %d/%d", k, len(p.El), len(p.Nd), m.NEl, m.NNd)
		}
		for ne, oe := range p.El {
			if p.ElInv[oe] != ne {
				t.Fatalf("%v: ElInv[El[%d]] = %d", k, ne, p.ElInv[oe])
			}
		}
		for nn, on := range p.Nd {
			if p.NdInv[on] != nn {
				t.Fatalf("%v: NdInv[Nd[%d]] = %d", k, nn, p.NdInv[on])
			}
		}
		seen := make([]bool, m.NEl)
		for _, oe := range p.El {
			if seen[oe] {
				t.Fatalf("%v: element %d appears twice", k, oe)
			}
			seen[oe] = true
		}
	}
}

// TestApplyCarriesFields: the reordered mesh passes mesh.Check, and
// every per-entity field lands where GlobalEl/GlobalNd says it should.
func TestApplyCarriesFields(t *testing.T) {
	m := rect(t, 24, 5)
	for _, k := range []Kind{Hilbert, RCM} {
		p, err := Compute(m, k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		r, err := Apply(m, p)
		if err != nil {
			t.Fatalf("%v: Apply: %v", k, err)
		}
		if r.NEl != m.NEl || r.NNd != m.NNd {
			t.Fatalf("%v: sizes changed", k)
		}
		for ne := 0; ne < r.NEl; ne++ {
			oe := r.GlobalEl[ne]
			if r.Region[ne] != m.Region[oe] {
				t.Fatalf("%v: element %d region %d, canonical %d has %d", k, ne, r.Region[ne], oe, m.Region[oe])
			}
			// Connectivity maps back: corner nodes name the same
			// canonical nodes in the same cyclic positions.
			for c := 0; c < 4; c++ {
				if r.GlobalNd[r.ElNd[ne][c]] != m.ElNd[oe][c] {
					t.Fatalf("%v: element %d corner %d maps to canonical node %d, want %d",
						k, ne, c, r.GlobalNd[r.ElNd[ne][c]], m.ElNd[oe][c])
				}
			}
		}
		for nn := 0; nn < r.NNd; nn++ {
			on := r.GlobalNd[nn]
			if r.X[nn] != m.X[on] || r.Y[nn] != m.Y[on] || r.BCs[nn] != m.BCs[on] {
				t.Fatalf("%v: node %d fields differ from canonical node %d", k, nn, on)
			}
		}
	}
}

func TestComputeDeterministic(t *testing.T) {
	m := rect(t, 20, 6)
	for _, k := range []Kind{Hilbert, RCM} {
		a, _ := Compute(m, k)
		b, _ := Compute(m, k)
		for i := range a.El {
			if a.El[i] != b.El[i] {
				t.Fatalf("%v: element order differs between runs at %d", k, i)
			}
		}
	}
}

// dualBandwidth is the maximum |i - j| over dual-graph edges — the
// quantity RCM exists to shrink.
func dualBandwidth(m *mesh.Mesh) int {
	bw := 0
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			if nb := m.ElEl[e][k]; nb >= 0 {
				if d := e - nb; d > bw {
					bw = d
				} else if -d > bw {
					bw = -d
				}
			}
		}
	}
	return bw
}

// TestRCMShrinksBandwidth: on a wide row-major mesh (bandwidth = NX)
// RCM must bring the dual bandwidth down near the short dimension.
func TestRCMShrinksBandwidth(t *testing.T) {
	m := rect(t, 64, 4)
	before := dualBandwidth(m)
	r, err := Reorder(m, RCM)
	if err != nil {
		t.Fatal(err)
	}
	after := dualBandwidth(r)
	if after >= before/4 {
		t.Fatalf("RCM bandwidth %d, want far below row-major %d", after, before)
	}
}

// TestHilbertShrinksReuseWindow: walking elements in order, a node
// access "hits" when the node was last touched within the previous W
// elements (a streaming-cache surrogate). Row-major on a square mesh
// misses on every row-to-row revisit once W < NX; Hilbert keeps
// revisits inside small tiles and must miss far less.
func TestHilbertShrinksReuseWindow(t *testing.T) {
	sq, err := mesh.Rect(mesh.RectSpec{NX: 64, NY: 64, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	// Small enough that row-major row revisits (distance NX) always
	// miss, large enough that Hilbert tiles (~sqrt(window) square) fit.
	const window = 48
	// Count re-touch misses only: a node's first touch is compulsory
	// under any ordering, so it says nothing about the ordering.
	misses := func(m *mesh.Mesh) (n int) {
		last := make([]int, m.NNd)
		for i := range last {
			last[i] = -1
		}
		for e := 0; e < m.NEl; e++ {
			for k := 0; k < 4; k++ {
				nd := m.ElNd[e][k]
				if last[nd] >= 0 && e-last[nd] > window {
					n++
				}
				last[nd] = e
			}
		}
		return n
	}
	before := misses(sq)
	r, err := Reorder(sq, Hilbert)
	if err != nil {
		t.Fatal(err)
	}
	after := misses(r)
	if after >= before/2 {
		t.Fatalf("Hilbert reuse-window misses %d, want well below row-major %d", after, before)
	}
}

// TestApplyRefusesPartitioned: reordering is a setup-time transform.
func TestApplyRefusesPartitioned(t *testing.T) {
	m := rect(t, 8, 4)
	m.NOwnEl = m.NEl - 2
	p, _ := Compute(m, RCM)
	if _, err := Apply(m, p); err == nil {
		t.Fatal("Apply accepted a partitioned mesh")
	}
}

// TestReorderNoneIsIdentity: None hands back the same mesh object with
// no GlobalEl map — the bitwise-seed guarantee.
func TestReorderNoneIsIdentity(t *testing.T) {
	m := rect(t, 8, 4)
	r, err := Reorder(m, None)
	if err != nil {
		t.Fatal(err)
	}
	if r != m || r.GlobalEl != nil {
		t.Fatal("Reorder(None) must return the mesh untouched")
	}
}
