package ale

import (
	"reflect"
	"sort"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
	"bookleaf/internal/partition"
)

// adjFromCSR expands a CSR adjacency back to per-node slices so it can
// be compared against the reference [][]int builder.
func adjFromCSR(start, list []int, nnd int) [][]int {
	adj := make([][]int, nnd)
	for n := 0; n < nnd; n++ {
		adj[n] = append([]int(nil), list[start[n]:start[n+1]]...)
	}
	return adj
}

// TestCSRMatchesReferenceOnGlobalMesh pins the flattening itself: on an
// undecomposed mesh (GlobalEl nil) the CSR builder visits elements in
// the same natural order as the [][]int reference, so the round trip
// must be exact — same neighbours, same order.
func TestCSRMatchesReferenceOnGlobalMesh(t *testing.T) {
	m, err := mesh.Rect(mesh.RectSpec{NX: 9, NY: 7, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	want := nodeAdjacency(m)
	start, list := buildAdjacency(m)
	got := adjFromCSR(start, list, m.NNd)
	for n := range want {
		w := want[n]
		if len(w) == 0 {
			w = nil
		}
		if !reflect.DeepEqual(got[n], w) {
			t.Fatalf("node %d: CSR %v != reference %v", n, got[n], want[n])
		}
	}
}

// TestCSRMatchesReferenceOnSubmeshes checks the CSR builder against the
// reference on RCB- and METIS-style partitioned submeshes. The CSR
// build deliberately reorders the element visit by global index, so the
// per-node neighbour *sets* must agree while the order may differ.
func TestCSRMatchesReferenceOnSubmeshes(t *testing.T) {
	m, err := mesh.Rect(mesh.RectSpec{NX: 12, NY: 10, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string]func(*mesh.Mesh, int) ([]int, error){
		"rcb":   partition.RCBMesh,
		"metis": partition.MultilevelMesh,
	}
	for name, splitF := range parts {
		for _, nparts := range []int{2, 4} {
			part, err := splitF(m, nparts)
			if err != nil {
				t.Fatal(err)
			}
			subs, err := partition.Split(m, part, nparts)
			if err != nil {
				t.Fatal(err)
			}
			for _, sub := range subs {
				lm := sub.M
				want := nodeAdjacency(lm)
				start, list := buildAdjacency(lm)
				got := adjFromCSR(start, list, lm.NNd)
				for n := range want {
					ws := append([]int(nil), want[n]...)
					gs := append([]int(nil), got[n]...)
					sort.Ints(ws)
					sort.Ints(gs)
					if len(ws) == 0 && len(gs) == 0 {
						continue
					}
					if !reflect.DeepEqual(gs, ws) {
						t.Fatalf("%s/%d rank %d node %d: CSR set %v != reference set %v",
							name, nparts, sub.Rank, n, got[n], want[n])
					}
				}
			}
		}
	}
}

// TestCSRDeterministic is a regression guard on neighbour ordering: the
// builder iterates a map internally, and a leak of that iteration order
// into the output would make the smoothing sum non-deterministic.
func TestCSRDeterministic(t *testing.T) {
	m, err := mesh.Rect(mesh.RectSpec{NX: 12, NY: 10, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.RCBMesh(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := partition.Split(m, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	meshes := []*mesh.Mesh{m}
	for _, sub := range subs {
		meshes = append(meshes, sub.M)
	}
	for i, lm := range meshes {
		s1, l1 := buildAdjacency(lm)
		s2, l2 := buildAdjacency(lm)
		if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(l1, l2) {
			t.Fatalf("mesh %d: two CSR builds differ", i)
		}
	}
}

// TestSmoothedTargetsRankIndependent pins the ghost-stencil fix at the
// kernel level: the smoothed target coordinates of every owned node on
// a partitioned submesh must be bitwise identical to the targets the
// undecomposed mesh computes, for any rank count. Before the fix, ghost
// and frontier nodes were smoothed with halo-truncated stencils.
func TestSmoothedTargetsRankIndependent(t *testing.T) {
	sG := testState(t, 10, 8,
		func(cx, cy float64) float64 { return 1 + 0.3*cx },
		func(cx, cy float64) float64 { return 1 + 0.2*cy })
	displaceInterior(sG, 0.02)
	opt := Options{Mode: Smoothed, SmoothWeight: 0.8}
	rG := NewRemapper(opt, sG)
	rG.ra.s = sG
	rG.kb.smooth(0, sG.Mesh.NNd)

	g, _ := eos.NewIdealGas(1.4)
	for _, nparts := range []int{2, 4} {
		part, err := partition.RCBMesh(sG.Mesh, nparts)
		if err != nil {
			t.Fatal(err)
		}
		subs, err := partition.Split(sG.Mesh, part, nparts)
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range subs {
			lm := sub.M
			rho := make([]float64, lm.NEl)
			ein := make([]float64, lm.NEl)
			for e := 0; e < lm.NEl; e++ {
				rho[e] = sG.Rho[lm.GlobalEl[e]]
				ein[e] = sG.Ein[lm.GlobalEl[e]]
			}
			sL, err := hydro.NewState(lm, hydro.DefaultOptions(g), rho, ein)
			if err != nil {
				t.Fatal(err)
			}
			// Hand the local state the displaced coordinates — ghosts
			// included, as a fresh halo exchange would.
			for n := 0; n < lm.NNd; n++ {
				sL.X[n] = sG.X[lm.GlobalNd[n]]
				sL.Y[n] = sG.Y[lm.GlobalNd[n]]
			}
			rL := NewRemapper(opt, sL)
			rL.ra.s = sL
			rL.kb.smooth(0, lm.NOwnNd)
			for n := 0; n < lm.NOwnNd; n++ {
				gn := lm.GlobalNd[n]
				if rL.xT[n] != rG.xT[gn] || rL.yT[n] != rG.yT[gn] {
					t.Fatalf("ranks=%d rank=%d: owned node %d (global %d) target (%v,%v) != global (%v,%v)",
						nparts, sub.Rank, n, gn, rL.xT[n], rL.yT[n], rG.xT[gn], rG.yT[gn])
				}
			}
		}
	}
}
