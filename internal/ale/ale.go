// Package ale implements BookLeaf's optional advection (remap) step:
// ALEGETMESH selects the target mesh (full Eulerian restore or a
// relaxation-smoothed mesh), ALEGETFVOL computes swept volumes from the
// Lagrangian to the target mesh, ALEADVECT transports the independent
// variables (corner/cell mass, cell internal energy, nodal momentum)
// with a second-order van Leer/Barth-limited donor-cell scheme in
// swept-volume form (Benson), and ALEUPDATE rebuilds the dependent
// variables (density, specific energy, velocity) on the target mesh.
//
// The corner (sub-zonal) control volumes make the staggered remap
// conservative by construction: every sub-face flux is added to one
// corner and subtracted from its neighbour, so total mass, internal
// energy and momentum are conserved to round-off — invariants the
// tests assert.
package ale

import (
	"fmt"
	"math"

	"bookleaf/internal/geom"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
	"bookleaf/internal/timers"
)

// Mode selects the ALE target-mesh strategy.
type Mode int

const (
	// Eulerian remaps back to the generated initial mesh every step
	// (the mesh never accumulates Lagrangian drift).
	Eulerian Mode = iota
	// Smoothed relaxes interior nodes towards the average of their
	// edge neighbours, the classic ALE mesh-quality strategy.
	Smoothed
)

func (m Mode) String() string {
	switch m {
	case Eulerian:
		return "eulerian"
	case Smoothed:
		return "smoothed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure the remap.
type Options struct {
	Mode Mode
	// SmoothWeight in (0,1] blends node positions towards the
	// neighbour average in Smoothed mode.
	SmoothWeight float64
	// FirstOrder disables the limited linear reconstruction (ablation).
	FirstOrder bool
}

// DefaultOptions returns an Eulerian second-order remap.
func DefaultOptions() Options {
	return Options{Mode: Eulerian, SmoothWeight: 0.5}
}

// Hooks extend the remap to distributed meshes: ExchangeCellFields must
// refresh ghost-element entries of the given element-indexed fields.
// Nil (or a nil field) means serial operation.
type Hooks struct {
	ExchangeCellFields func(fields ...[]float64)
}

// ErrRemap reports a remap failure (a flux emptied a corner mass, which
// means the mesh moved more than a cell width in one remap).
type ErrRemap struct {
	Element int
	Corner  int
	Mass    float64
}

func (e *ErrRemap) Error() string {
	return fmt.Sprintf("ale: corner %d of element %d left with mass %v after remap", e.Corner, e.Element, e.Mass)
}

// Remapper holds scratch storage for repeated remaps of one state.
type Remapper struct {
	Opt Options

	xT, yT         []float64 // target coordinates
	gradRX, gradRY []float64 // limited density gradient
	gradEX, gradEY []float64 // limited energy gradient
	cRho, cEin     []float64 // cell density/energy snapshots
	dCMass         []float64 // corner mass deltas
	dEnergy        []float64 // cell internal-energy deltas
	dPx, dPy       []float64 // nodal momentum deltas
	ndAdj          [][]int   // node -> neighbour nodes (for smoothing)
}

// NewRemapper allocates a remapper for the given state.
func NewRemapper(opt Options, s *hydro.State) *Remapper {
	nel, nnd := s.Mesh.NEl, s.Mesh.NNd
	r := &Remapper{
		Opt:     opt,
		xT:      make([]float64, nnd),
		yT:      make([]float64, nnd),
		gradRX:  make([]float64, nel),
		gradRY:  make([]float64, nel),
		gradEX:  make([]float64, nel),
		gradEY:  make([]float64, nel),
		cRho:    make([]float64, nel),
		cEin:    make([]float64, nel),
		dCMass:  make([]float64, 4*nel),
		dEnergy: make([]float64, nel),
		dPx:     make([]float64, nnd),
		dPy:     make([]float64, nnd),
	}
	if opt.Mode == Smoothed {
		r.ndAdj = nodeAdjacency(s)
	}
	return r
}

func nodeAdjacency(s *hydro.State) [][]int {
	m := s.Mesh
	adj := make([][]int, m.NNd)
	seen := make(map[[2]int]bool)
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			a := m.ElNd[e][k]
			b := m.ElNd[e][(k+1)&3]
			key := [2]int{a, b}
			if a > b {
				key = [2]int{b, a}
			}
			if !seen[key] {
				seen[key] = true
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}
	return adj
}

// Apply performs one remap of s onto the target mesh, updating
// coordinates, masses, density, energy and velocity in place. The
// phases are timed under "alestep" sub-names to mirror the paper's
// ALESTEP breakdown.
func (r *Remapper) Apply(s *hydro.State, tm *timers.Set, hooks *Hooks) error {
	m := s.Mesh
	nel, nnd := m.NEl, m.NNd

	// --- ALEGETMESH: choose target coordinates.
	tm.Start("alegetmesh")
	switch r.Opt.Mode {
	case Eulerian:
		copy(r.xT, m.X) // generated (initial) coordinates
		copy(r.yT, m.Y)
	case Smoothed:
		w := r.Opt.SmoothWeight
		for n := 0; n < nnd; n++ {
			if m.BCs[n] != 0 || len(r.ndAdj[n]) == 0 {
				r.xT[n] = s.X[n]
				r.yT[n] = s.Y[n]
				continue
			}
			var ax, ay float64
			for _, nb := range r.ndAdj[n] {
				ax += s.X[nb]
				ay += s.Y[nb]
			}
			inv := 1 / float64(len(r.ndAdj[n]))
			r.xT[n] = (1-w)*s.X[n] + w*ax*inv
			r.yT[n] = (1-w)*s.Y[n] + w*ay*inv
		}
	}
	tm.Stop("alegetmesh")

	// --- Reconstruction gradients (second order).
	tm.Start("alegetfvol")
	copy(r.cRho, s.Rho)
	copy(r.cEin, s.Ein)
	if r.Opt.FirstOrder {
		zero(r.gradRX)
		zero(r.gradRY)
		zero(r.gradEX)
		zero(r.gradEY)
	} else {
		r.gradients(s, r.cRho, r.gradRX, r.gradRY)
		r.gradients(s, r.cEin, r.gradEX, r.gradEY)
	}
	if hooks != nil && hooks.ExchangeCellFields != nil {
		hooks.ExchangeCellFields(r.cRho, r.cEin, r.gradRX, r.gradRY, r.gradEX, r.gradEY)
	}
	tm.Stop("alegetfvol")

	// --- ALEADVECT: sub-face swept-volume fluxes.
	tm.Start("aleadvect")
	zero(r.dCMass)
	zero(r.dEnergy)
	zero(r.dPx)
	zero(r.dPy)

	// Internal sub-faces (edge midpoint -> centroid) move mass and
	// momentum between the corners of one cell.
	var xo, yo, xn, yn [4]float64
	for e := 0; e < nel; e++ {
		nd := &m.ElNd[e]
		for k := 0; k < 4; k++ {
			xo[k] = s.X[nd[k]]
			yo[k] = s.Y[nd[k]]
			xn[k] = r.xT[nd[k]]
			yn[k] = r.yT[nd[k]]
		}
		cxo, cyo := geom.Centroid(&xo, &yo)
		cxn, cyn := geom.Centroid(&xn, &yn)
		for k := 0; k < 4; k++ {
			kp := (k + 1) & 3
			// Midpoint of edge k, old and new.
			mxo := 0.5 * (xo[k] + xo[kp])
			myo := 0.5 * (yo[k] + yo[kp])
			mxn := 0.5 * (xn[k] + xn[kp])
			myn := 0.5 * (yn[k] + yn[kp])
			// Segment (M_k -> C) is CCW for corner k: gain is the
			// volume corner k annexes from corner k+1.
			gain := -sweptArea(mxo, myo, cxo, cyo, mxn, myn, cxn, cyn)
			if gain == 0 {
				continue
			}
			ex := 0.25 * (mxo + cxo + mxn + cxn)
			ey := 0.25 * (myo + cyo + myn + cyn)
			rho := r.reconRho(e, ex, ey, s)
			mf := gain * rho
			r.dCMass[4*e+k] += mf
			r.dCMass[4*e+kp] -= mf
			// Upwind nodal momentum: donor node is the corner the
			// mass leaves.
			donor := nd[kp]
			if gain < 0 {
				donor = nd[k]
			}
			r.dPx[nd[k]] += mf * s.U[donor]
			r.dPy[nd[k]] += mf * s.V[donor]
			r.dPx[nd[kp]] -= mf * s.U[donor]
			r.dPy[nd[kp]] -= mf * s.V[donor]
		}
	}

	// Cell-boundary half-faces move mass and energy between cells
	// (corners of the same node in adjacent cells, so no momentum
	// transfer).
	for _, f := range m.Faces {
		if f.Right < 0 {
			continue // wall: no flux
		}
		l, rt := f.Left, f.Right
		n1, n2 := f.N1, f.N2
		x1o, y1o := s.X[n1], s.Y[n1]
		x2o, y2o := s.X[n2], s.Y[n2]
		x1n, y1n := r.xT[n1], r.yT[n1]
		x2n, y2n := r.xT[n2], r.yT[n2]
		mxo := 0.5 * (x1o + x2o)
		myo := 0.5 * (y1o + y2o)
		mxn := 0.5 * (x1n + x2n)
		myn := 0.5 * (y1n + y2n)
		// Half-face (n1 -> M) and (M -> n2), CCW for Left.
		for half := 0; half < 2; half++ {
			var axo, ayo, bxo, byo, axn, ayn, bxn, byn float64
			var node int
			if half == 0 {
				axo, ayo, bxo, byo = x1o, y1o, mxo, myo
				axn, ayn, bxn, byn = x1n, y1n, mxn, myn
				node = n1
			} else {
				axo, ayo, bxo, byo = mxo, myo, x2o, y2o
				axn, ayn, bxn, byn = mxn, myn, x2n, y2n
				node = n2
			}
			gain := -sweptArea(axo, ayo, bxo, byo, axn, ayn, bxn, byn)
			if gain == 0 {
				continue
			}
			donor := rt
			if gain < 0 {
				donor = l
			}
			ex := 0.25 * (axo + bxo + axn + bxn)
			ey := 0.25 * (ayo + byo + ayn + byn)
			rho := r.reconRho(donor, ex, ey, s)
			ein := r.reconEin(donor, ex, ey, s)
			mf := gain * rho
			kl := cornerOf(m.ElNd[l], node)
			kr := cornerOf(m.ElNd[rt], node)
			r.dCMass[4*l+kl] += mf
			r.dCMass[4*rt+kr] -= mf
			r.dEnergy[l] += mf * ein
			r.dEnergy[rt] -= mf * ein
		}
	}
	tm.Stop("aleadvect")

	// --- ALEUPDATE: apply deltas and rebuild dependent variables.
	tm.Start("aleupdate")
	for e := 0; e < nel; e++ {
		oldMass := s.Mass[e]
		var newMass float64
		for k := 0; k < 4; k++ {
			s.CMass[4*e+k] += r.dCMass[4*e+k]
			if s.CMass[4*e+k] <= 0 {
				tm.Stop("aleupdate")
				return &ErrRemap{Element: e, Corner: k, Mass: s.CMass[4*e+k]}
			}
			newMass += s.CMass[4*e+k]
		}
		energy := oldMass*s.Ein[e] + r.dEnergy[e]
		s.Mass[e] = newMass
		s.Ein[e] = energy / newMass
	}
	// Nodal masses and momentum.
	for n := 0; n < nnd; n++ {
		px := s.NdMass[n]*s.U[n] + r.dPx[n]
		py := s.NdMass[n]*s.V[n] + r.dPy[n]
		r.dPx[n] = px // stash total momentum
		r.dPy[n] = py
		s.NdMass[n] = 0
	}
	for e := 0; e < nel; e++ {
		for k := 0; k < 4; k++ {
			s.NdMass[m.ElNd[e][k]] += s.CMass[4*e+k]
		}
	}
	for n := 0; n < nnd; n++ {
		if s.NdMass[n] <= 0 {
			tm.Stop("aleupdate")
			return &ErrRemap{Element: -1, Corner: n, Mass: s.NdMass[n]}
		}
		s.U[n] = r.dPx[n] / s.NdMass[n]
		s.V[n] = r.dPy[n] / s.NdMass[n]
		bc := m.BCs[n]
		if bc&mesh.FixU != 0 {
			s.U[n] = 0
		}
		if bc&mesh.FixV != 0 {
			s.V[n] = 0
		}
	}
	// Move onto the target mesh; rebuild volumes, density, EoS.
	copy(s.X, r.xT)
	copy(s.Y, r.yT)
	var x, y [4]float64
	for e := 0; e < nel; e++ {
		for k := 0; k < 4; k++ {
			x[k] = s.X[m.ElNd[e][k]]
			y[k] = s.Y[m.ElNd[e][k]]
		}
		v := geom.Area(&x, &y)
		if v <= 0 {
			tm.Stop("aleupdate")
			return &ErrRemap{Element: e, Corner: -1, Mass: v}
		}
		s.Vol[e] = v
		s.Rho[e] = s.Mass[e] / v
	}
	s.GetPC(0, m.NOwnEl)
	tm.Stop("aleupdate")
	return nil
}

// ExchangeScratch performs (only) the cell-field exchange of Apply with
// the remapper's current scratch contents. Distributed drivers use it
// to keep the communication schedule symmetric when a rank must skip a
// remap its peers are still performing.
func (r *Remapper) ExchangeScratch(hooks *Hooks) {
	if hooks != nil && hooks.ExchangeCellFields != nil {
		hooks.ExchangeCellFields(r.cRho, r.cEin, r.gradRX, r.gradRY, r.gradEX, r.gradEY)
	}
}

// sweptArea returns the shoelace area of the quad (aOld, bOld, bNew,
// aNew) traced by segment a->b moving from old to new positions.
func sweptArea(axo, ayo, bxo, byo, axn, ayn, bxn, byn float64) float64 {
	// Shoelace over (axo,ayo) (bxo,byo) (bxn,byn) (axn,ayn).
	return 0.5 * ((bxn-axo)*(ayn-byo) - (axn-bxo)*(byn-ayo))
}

// cornerOf returns which corner of elNd holds node n.
func cornerOf(elNd [4]int, n int) int {
	for k := 0; k < 4; k++ {
		if elNd[k] == n {
			return k
		}
	}
	panic("ale: node is not a corner of element")
}

// reconRho evaluates the limited linear density reconstruction of cell
// e at point (px, py).
func (r *Remapper) reconRho(e int, px, py float64, s *hydro.State) float64 {
	cx, cy := cellCentroid(s, e)
	v := r.cRho[e] + r.gradRX[e]*(px-cx) + r.gradRY[e]*(py-cy)
	if v <= 0 {
		return r.cRho[e]
	}
	return v
}

// reconEin evaluates the limited linear energy reconstruction of cell
// e at point (px, py).
func (r *Remapper) reconEin(e int, px, py float64, s *hydro.State) float64 {
	cx, cy := cellCentroid(s, e)
	return r.cEin[e] + r.gradEX[e]*(px-cx) + r.gradEY[e]*(py-cy)
}

func cellCentroid(s *hydro.State, e int) (float64, float64) {
	nd := &s.Mesh.ElNd[e]
	return 0.25 * (s.X[nd[0]] + s.X[nd[1]] + s.X[nd[2]] + s.X[nd[3]]),
		0.25 * (s.Y[nd[0]] + s.Y[nd[1]] + s.Y[nd[2]] + s.Y[nd[3]])
}

// gradients fills (gx, gy) with least-squares cell gradients of phi
// over face neighbours, limited Barth-Jespersen style so reconstructed
// face-centroid values stay within the neighbour min/max (the
// monotonicity-enforcing limiter the paper cites via van Leer).
func (r *Remapper) gradients(s *hydro.State, phi, gx, gy []float64) {
	m := s.Mesh
	for e := 0; e < m.NEl; e++ {
		cx, cy := cellCentroid(s, e)
		// Least squares normal equations.
		var sxx, sxy, syy, sxp, syp float64
		min, max := phi[e], phi[e]
		nNb := 0
		for k := 0; k < 4; k++ {
			nb := m.ElEl[e][k]
			if nb < 0 {
				continue
			}
			nNb++
			nx, ny := cellCentroid(s, nb)
			dx, dy := nx-cx, ny-cy
			dp := phi[nb] - phi[e]
			sxx += dx * dx
			sxy += dx * dy
			syy += dy * dy
			sxp += dx * dp
			syp += dy * dp
			if phi[nb] < min {
				min = phi[nb]
			}
			if phi[nb] > max {
				max = phi[nb]
			}
		}
		det := sxx*syy - sxy*sxy
		if nNb < 2 || math.Abs(det) < 1e-300 {
			gx[e], gy[e] = 0, 0
			continue
		}
		gxe := (sxp*syy - syp*sxy) / det
		gye := (syp*sxx - sxp*sxy) / det
		// Barth-Jespersen limiting at edge midpoints.
		alpha := 1.0
		nd := &m.ElNd[e]
		for k := 0; k < 4; k++ {
			kp := (k + 1) & 3
			fx := 0.5*(s.X[nd[k]]+s.X[nd[kp]]) - cx
			fy := 0.5*(s.Y[nd[k]]+s.Y[nd[kp]]) - cy
			d := gxe*fx + gye*fy
			var a float64
			switch {
			case d > 0:
				a = (max - phi[e]) / d
			case d < 0:
				a = (min - phi[e]) / d
			default:
				continue
			}
			if a < alpha {
				alpha = a
			}
		}
		if alpha < 0 {
			alpha = 0
		}
		gx[e] = alpha * gxe
		gy[e] = alpha * gye
	}
}

func zero(a []float64) {
	for i := range a {
		a[i] = 0
	}
}
