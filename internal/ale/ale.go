// Package ale implements BookLeaf's optional advection (remap) step:
// ALEGETMESH selects the target mesh (full Eulerian restore or a
// relaxation-smoothed mesh), ALEGETFVOL computes swept volumes from the
// Lagrangian to the target mesh, ALEADVECT transports the independent
// variables (corner/cell mass, cell internal energy, nodal momentum)
// with a second-order van Leer/Barth-limited donor-cell scheme in
// swept-volume form (Benson), and ALEUPDATE rebuilds the dependent
// variables (density, specific energy, velocity) on the target mesh.
//
// The corner (sub-zonal) control volumes make the staggered remap
// conservative by construction: every sub-face flux is added to one
// corner and subtracted from its neighbour, so total mass, internal
// energy and momentum are conserved to round-off — invariants the
// tests assert.
//
// The pipeline runs on the state's worker pool. Every scatter of the
// original serial remap is restructured as a stage-then-gather pair:
// a parallel pass stages each flux once (per element edge, per face
// half), and a parallel gather replays each entity's contributions in
// the exact order the serial loop added them — ascending elements for
// nodal momentum and masses (the mesh's NdElList/NdCorner transpose),
// ascending face index for cell-boundary fluxes (ElemFaces) — so the
// result is bitwise identical to the serial remap at any thread count.
// Steady-state Apply performs no heap allocations: all scratch lives
// in the Remapper and the kernel bodies are bound once in NewRemapper.
package ale

import (
	"fmt"
	"math"
	"sort"

	"bookleaf/internal/geom"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
	"bookleaf/internal/par"
	"bookleaf/internal/timers"
)

// Mode selects the ALE target-mesh strategy.
type Mode int

const (
	// Eulerian remaps back to the generated initial mesh every step
	// (the mesh never accumulates Lagrangian drift).
	Eulerian Mode = iota
	// Smoothed relaxes interior nodes towards the average of their
	// edge neighbours, the classic ALE mesh-quality strategy.
	Smoothed
)

func (m Mode) String() string {
	switch m {
	case Eulerian:
		return "eulerian"
	case Smoothed:
		return "smoothed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure the remap.
type Options struct {
	Mode Mode
	// SmoothWeight in (0,1] blends node positions towards the
	// neighbour average in Smoothed mode.
	SmoothWeight float64
	// FirstOrder disables the limited linear reconstruction (ablation).
	FirstOrder bool
}

// DefaultOptions returns an Eulerian second-order remap.
func DefaultOptions() Options {
	return Options{Mode: Eulerian, SmoothWeight: 0.5}
}

// Hooks extend the remap to distributed meshes. The blocking variants
// refresh ghost entries of the given fields; nil (or a nil hook) means
// serial operation. When all six Start/Finish variants plus Band are
// set, Apply hides each exchange behind independent interior work (the
// phased overlap schedule).
//
// Apply performs its exchanges in a fixed order — node targets
// (Smoothed mode only), cell fields, then exactly one velocity
// exchange, which fires on every return path including failures — so
// ranks mixing success and failure stay in lockstep. ExchangeScratch
// replays the same sequence for a rank that must skip a remap its
// peers are performing.
type Hooks struct {
	// ExchangeCellFields refreshes ghost-element entries of the given
	// element-indexed fields.
	ExchangeCellFields func(fields ...[]float64)
	// ExchangeNodeFields refreshes ghost-node entries of the smoothed
	// target coordinates, fixing the halo-truncated smoothing stencils
	// ghost nodes would otherwise see.
	ExchangeNodeFields func(x, y []float64)
	// ExchangeVelocities refreshes ghost-node velocities after the
	// remap rebuilds them.
	ExchangeVelocities func(u, v []float64)

	// Phased variants: Start posts the sends, Finish blocks until
	// ghost entries have landed. All-or-nothing with Band.
	StartCellFields  func(fields ...[]float64)
	FinishCellFields func()
	StartNodeFields  func(x, y []float64)
	FinishNodeFields func()
	StartVelocities  func(u, v []float64)
	FinishVelocities func()

	// Band is the interior/boundary split (mesh.BoundaryBand of the
	// local mesh) the overlap schedule dispatches over.
	Band *mesh.Band
}

// phased reports whether the full overlap schedule is available.
func (h *Hooks) phased() bool {
	return h != nil && h.Band != nil &&
		h.StartCellFields != nil && h.FinishCellFields != nil &&
		h.StartNodeFields != nil && h.FinishNodeFields != nil &&
		h.StartVelocities != nil && h.FinishVelocities != nil
}

// ErrRemap reports a remap failure (a flux emptied a corner mass, which
// means the mesh moved more than a cell width in one remap). It is
// detected before the deltas are committed, so the state still holds
// the pre-remap fields when Apply returns it.
type ErrRemap struct {
	Element int
	Corner  int
	Mass    float64
}

func (e *ErrRemap) Error() string {
	return fmt.Sprintf("ale: corner %d of element %d left with mass %v after remap", e.Corner, e.Element, e.Mass)
}

// Transient marks remap failures as retryable: the flux overshoot is a
// function of how far the mesh drifted since the last remap, so a
// rollback that halves the timestep cap shrinks the drift and lets the
// remap succeed on replay.
func (e *ErrRemap) Transient() bool { return true }

// Remapper holds scratch storage for repeated remaps of one state.
type Remapper struct {
	Opt Options

	xT, yT         []float64 // target coordinates
	gradRX, gradRY []float64 // limited density gradient
	gradEX, gradEY []float64 // limited energy gradient
	cRho, cEin     []float64 // cell density/energy snapshots
	dCMass         []float64 // corner mass deltas
	dEnergy        []float64 // cell internal-energy deltas
	dPx, dPy       []float64 // nodal momentum deltas, then stashed totals

	// Node -> neighbour-node adjacency in CSR form (Smoothed mode),
	// built in global element order so the smoothing sum order is
	// rank-independent.
	adjStart, adjList []int

	// Element -> interior-face incidence in CSR form, ascending face
	// index (mesh.ElemFaces): the face-flux gather's replay order.
	efStart, efList []int

	// Staged fluxes: one slot per element edge (internal sub-faces)
	// and per face half (cell-boundary half-faces). A zero gain marks
	// an empty slot whose flux entries are stale and must not be read.
	eGain, ePx, ePy   []float64
	fGain, fMass, fEn []float64

	volT []float64 // target-mesh volumes, checked before commit

	uvStarted bool // a phased velocity exchange is in flight

	ra remapArgs
	kb remapBodies
}

// remapArgs carries per-dispatch kernel parameters. A single arena
// (rather than closure captures) keeps the steady-state remap free of
// heap allocations, mirroring the hydro kernels' kernelArgs.
type remapArgs struct {
	s           *hydro.State
	list        []int // element list for list-dispatched kernels
	base        int   // range offset for offset-dispatched kernels
	phi, gx, gy []float64
}

// remapBodies holds the pool bodies, bound once in NewRemapper so
// dispatching them allocates nothing.
type remapBodies struct {
	smooth       func(lo, hi int)
	pin          func(lo, hi int)
	grad         func(lo, hi int)
	subFaces     func(lo, hi int)
	subFacesList func(lo, hi int)
	faceFlux     func(lo, hi int)
	faceGather   func(lo, hi int)
	momGather    func(lo, hi int)
	massEnergy   func(lo, hi int)
	stash        func(lo, hi int)
	ndMass       func(lo, hi int)
	vel          func(lo, hi int)
	vols         func(lo, hi int)
	commit       func(lo, hi int)
	cmassAt      func(i int) float64
	ndMassAt     func(i int) float64
	volAt        func(i int) float64
}

// NewRemapper allocates a remapper for the given state.
func NewRemapper(opt Options, s *hydro.State) *Remapper {
	m := s.Mesh
	nel, nnd := m.NEl, m.NNd
	r := &Remapper{
		Opt:     opt,
		xT:      make([]float64, nnd),
		yT:      make([]float64, nnd),
		gradRX:  make([]float64, nel),
		gradRY:  make([]float64, nel),
		gradEX:  make([]float64, nel),
		gradEY:  make([]float64, nel),
		cRho:    make([]float64, nel),
		cEin:    make([]float64, nel),
		dCMass:  make([]float64, 4*nel),
		dEnergy: make([]float64, nel),
		dPx:     make([]float64, nnd),
		dPy:     make([]float64, nnd),
		eGain:   make([]float64, 4*nel),
		ePx:     make([]float64, 4*nel),
		ePy:     make([]float64, 4*nel),
		fGain:   make([]float64, 2*len(m.Faces)),
		fMass:   make([]float64, 2*len(m.Faces)),
		fEn:     make([]float64, 2*len(m.Faces)),
		volT:    make([]float64, nel),
	}
	r.efStart, r.efList = m.ElemFaces()
	if opt.Mode == Smoothed {
		r.adjStart, r.adjList = buildAdjacency(m)
	}
	r.kb = remapBodies{
		smooth:       r.smoothRange,
		pin:          r.pinRange,
		grad:         r.gradRange,
		subFaces:     r.subFacesRange,
		subFacesList: r.subFacesListBody,
		faceFlux:     r.faceFluxRange,
		faceGather:   r.faceGatherRange,
		momGather:    r.momGatherRange,
		massEnergy:   r.massEnergyRange,
		stash:        r.stashRange,
		ndMass:       r.ndMassRange,
		vel:          r.velRange,
		vols:         r.volsRange,
		commit:       r.commitRange,
		cmassAt:      r.cmassAt,
		ndMassAt:     r.ndMassAt,
		volAt:        r.volAt,
	}
	return r
}

// nodeAdjacency is the original map-deduplicated [][]int adjacency
// builder, kept as the reference the CSR flattening is tested against.
func nodeAdjacency(m *mesh.Mesh) [][]int {
	adj := make([][]int, m.NNd)
	seen := make(map[[2]int]bool)
	for e := 0; e < m.NEl; e++ {
		appendEdges(m, e, adj, seen)
	}
	return adj
}

// appendEdges records element e's four edges into adj, deduplicating
// shared edges: each undirected edge is appended only when first seen,
// so neighbour order is a pure function of the element visit order.
func appendEdges(m *mesh.Mesh, e int, adj [][]int, seen map[[2]int]bool) {
	for k := 0; k < 4; k++ {
		a := m.ElNd[e][k]
		b := m.ElNd[e][(k+1)&3]
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if !seen[key] {
			seen[key] = true
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
}

// buildAdjacency flattens the node→neighbour adjacency to CSR form
// (offsets + one flat list). Elements are visited in global index
// order, so a node's neighbour sequence — and therefore the order of
// the smoothing sum — matches the one the undecomposed mesh produces
// no matter how a partition renumbered the local elements. Combined
// with the one-element-deep ghost layer (every element around an owned
// node is local), this makes the smoothed targets of owned nodes
// bitwise rank-independent.
func buildAdjacency(m *mesh.Mesh) (start, list []int) {
	adj := make([][]int, m.NNd)
	seen := make(map[[2]int]bool)
	if m.GlobalEl == nil {
		for e := 0; e < m.NEl; e++ {
			appendEdges(m, e, adj, seen)
		}
	} else {
		order := make([]int, m.NEl)
		for e := range order {
			order[e] = e
		}
		sort.Slice(order, func(i, j int) bool {
			return m.GlobalEl[order[i]] < m.GlobalEl[order[j]]
		})
		for _, e := range order {
			appendEdges(m, e, adj, seen)
		}
	}
	start = make([]int, m.NNd+1)
	for n, nb := range adj {
		start[n+1] = start[n] + len(nb)
	}
	list = make([]int, start[m.NNd])
	for n, nb := range adj {
		copy(list[start[n]:], nb)
	}
	return start, list
}

// Apply performs one remap of s onto the target mesh, updating
// coordinates, masses, density, energy and velocity in place. The
// phases are timed under "alestep" sub-names to mirror the paper's
// ALESTEP breakdown. Failures are detected before any state is
// mutated, so an ErrRemap return leaves s on the pre-remap mesh.
func (r *Remapper) Apply(s *hydro.State, tm *timers.Set, hooks *Hooks) error {
	m := s.Mesh
	nel, nnd := m.NEl, m.NNd
	pool := s.Pool
	if pool == nil {
		pool = par.Serial
	}
	r.ra.s = s
	r.ra.base = 0
	r.uvStarted = false
	phased := hooks.phased()

	// --- ALEGETMESH: choose target coordinates.
	tm.Start("alegetmesh")
	switch r.Opt.Mode {
	case Eulerian:
		// The generated coordinates are static, so ghost entries of
		// m.X are already correct: no exchange needed.
		copy(r.xT, m.X)
		copy(r.yT, m.Y)
	case Smoothed:
		// Smooth owned nodes only: every element around an owned node
		// is local, so the stencil is complete. Ghost targets come
		// from their owning rank — smoothing them locally would use
		// halo-truncated stencils and make results rank-dependent.
		own := m.NOwnNd
		pool.For(own, r.kb.smooth)
		switch {
		case phased:
			hooks.StartNodeFields(r.xT, r.yT)
			// FinishNodeFields runs in the advect phase, after the
			// interior sub-face fluxes that need no ghost target.
		case hooks != nil && hooks.ExchangeNodeFields != nil:
			hooks.ExchangeNodeFields(r.xT, r.yT)
		default:
			// No exchange available (serial meshes have no ghosts;
			// hookless local meshes keep their stale coordinates
			// pinned rather than smoothed by a truncated stencil).
			r.ra.base = own
			pool.For(nnd-own, r.kb.pin)
			r.ra.base = 0
		}
	}
	tm.Stop("alegetmesh")

	// --- ALEGETFVOL: reconstruction gradients (second order).
	tm.Start("alegetfvol")
	copy(r.cRho, s.Rho)
	copy(r.cEin, s.Ein)
	cellExch := hooks != nil && (phased || hooks.ExchangeCellFields != nil)
	gn := nel
	if cellExch {
		// Ghost entries arrive from their owners; computing them
		// locally would be dead work (and, phased, a data race with
		// the in-flight receive).
		gn = m.NOwnEl
	}
	if r.Opt.FirstOrder {
		zero(r.gradRX)
		zero(r.gradRY)
		zero(r.gradEX)
		zero(r.gradEY)
	} else {
		r.ra.phi, r.ra.gx, r.ra.gy = r.cRho, r.gradRX, r.gradRY
		pool.For(gn, r.kb.grad)
		r.ra.phi, r.ra.gx, r.ra.gy = r.cEin, r.gradEX, r.gradEY
		pool.For(gn, r.kb.grad)
		r.ra.phi, r.ra.gx, r.ra.gy = nil, nil, nil
	}
	if !phased && cellExch {
		hooks.ExchangeCellFields(r.cRho, r.cEin, r.gradRX, r.gradRY, r.gradEX, r.gradEY)
	}
	tm.Stop("alegetfvol")

	// --- ALEADVECT: stage sub-face swept-volume fluxes, then gather.
	tm.Start("aleadvect")
	ownEl := m.NOwnEl
	switch {
	case phased && r.Opt.Mode == Smoothed:
		// Interior elements touch no ghost node: their internal
		// sub-face fluxes proceed while the smoothed ghost targets
		// travel. Boundary elements follow once the targets land,
		// hidden behind the cell-field exchange they don't read.
		r.ra.list = hooks.Band.IntEls
		pool.For(len(hooks.Band.IntEls), r.kb.subFacesList)
		hooks.FinishNodeFields()
		hooks.StartCellFields(r.cRho, r.cEin, r.gradRX, r.gradRY, r.gradEX, r.gradEY)
		r.ra.list = hooks.Band.BndEls
		pool.For(len(hooks.Band.BndEls), r.kb.subFacesList)
		r.ra.list = nil
		hooks.FinishCellFields()
		r.ra.base = ownEl
		pool.For(nel-ownEl, r.kb.subFaces)
		r.ra.base = 0
	case phased:
		// Owned elements read only their own reconstruction, so the
		// whole owned pass hides the ghost cell-field exchange.
		hooks.StartCellFields(r.cRho, r.cEin, r.gradRX, r.gradRY, r.gradEX, r.gradEY)
		pool.For(ownEl, r.kb.subFaces)
		hooks.FinishCellFields()
		r.ra.base = ownEl
		pool.For(nel-ownEl, r.kb.subFaces)
		r.ra.base = 0
	default:
		pool.For(nel, r.kb.subFaces)
	}
	pool.For(len(m.Faces), r.kb.faceFlux)
	pool.For(nel, r.kb.faceGather)
	pool.For(nnd, r.kb.momGather)
	tm.Stop("aleadvect")

	// --- ALEUPDATE: guard, apply deltas, rebuild dependent variables.
	tm.Start("aleupdate")
	// Corner-mass guard before any state is touched: a swept flux
	// exceeding its donor corner's mass (the mesh moved more than a
	// cell width, typically because the target mesh tangled) would
	// otherwise drive density negative mid-commit.
	if min, _ := pool.ReduceMin(4*nel, r.kb.cmassAt); min <= 0 {
		cs := s.CornerStride()
		for i := 0; i < 4*nel; i++ {
			if v := s.CMass[(i>>2)*cs+(i&3)] + r.dCMass[i]; v <= 0 {
				r.exchangeUV(s, hooks)
				tm.Stop("aleupdate")
				return &ErrRemap{Element: i / 4, Corner: i & 3, Mass: v}
			}
		}
	}
	pool.For(nel, r.kb.massEnergy)
	s.RefreshAux() // corner masses changed; rebuild the float32 shadow
	pool.For(nnd, r.kb.stash)
	pool.For(nnd, r.kb.ndMass)
	if min, _ := pool.ReduceMin(nnd, r.kb.ndMassAt); min <= 0 {
		for n := 0; n < nnd; n++ {
			if s.NdMass[n] <= 0 {
				r.exchangeUV(s, hooks)
				tm.Stop("aleupdate")
				return &ErrRemap{Element: -1, Corner: n, Mass: s.NdMass[n]}
			}
		}
	}
	velN := nnd
	if hooks != nil && (phased || hooks.ExchangeVelocities != nil) {
		// Ghost velocities come from their owners via the exchange.
		velN = m.NOwnNd
	}
	pool.For(velN, r.kb.vel)
	if phased {
		// Ghost velocities travel while volumes, density and EoS
		// rebuild — none of which read U or V.
		hooks.StartVelocities(s.U, s.V)
		r.uvStarted = true
	}
	pool.For(nel, r.kb.vols)
	if min, _ := pool.ReduceMin(nel, r.kb.volAt); min <= 0 {
		for e := 0; e < nel; e++ {
			if v := r.volT[e]; v <= 0 {
				r.exchangeUV(s, hooks)
				tm.Stop("aleupdate")
				return &ErrRemap{Element: e, Corner: -1, Mass: v}
			}
		}
	}
	copy(s.X, r.xT)
	copy(s.Y, r.yT)
	pool.For(nel, r.kb.commit)
	s.GetPC(0, m.NOwnEl)
	r.exchangeUV(s, hooks)
	tm.Stop("aleupdate")
	return nil
}

// exchangeUV performs the one velocity exchange Apply owes its peers:
// finishing the phased exchange if one is in flight, otherwise a
// blocking exchange of the current velocities. Every Apply (and
// ExchangeScratch) fires exactly one on every path, including error
// returns — the cross-rank remap schedule depends on it.
func (r *Remapper) exchangeUV(s *hydro.State, hooks *Hooks) {
	if hooks == nil {
		return
	}
	if r.uvStarted {
		r.uvStarted = false
		hooks.FinishVelocities()
		return
	}
	if hooks.phased() {
		hooks.StartVelocities(s.U, s.V)
		hooks.FinishVelocities()
		return
	}
	if hooks.ExchangeVelocities != nil {
		hooks.ExchangeVelocities(s.U, s.V)
	}
}

// ExchangeScratch replays Apply's full exchange sequence — node
// targets (Smoothed mode), cell fields, velocities — with the
// remapper's current scratch contents. Distributed drivers use it to
// keep the communication schedule symmetric when a rank must skip a
// remap its peers are still performing; the exchanged values are
// scratch (a collective rollback follows), only the message pattern
// matters.
func (r *Remapper) ExchangeScratch(s *hydro.State, hooks *Hooks) {
	if hooks == nil {
		return
	}
	phased := hooks.phased()
	if r.Opt.Mode == Smoothed {
		switch {
		case phased:
			hooks.StartNodeFields(r.xT, r.yT)
			hooks.FinishNodeFields()
		case hooks.ExchangeNodeFields != nil:
			hooks.ExchangeNodeFields(r.xT, r.yT)
		}
	}
	if phased {
		hooks.StartCellFields(r.cRho, r.cEin, r.gradRX, r.gradRY, r.gradEX, r.gradEY)
		hooks.FinishCellFields()
	} else if hooks.ExchangeCellFields != nil {
		hooks.ExchangeCellFields(r.cRho, r.cEin, r.gradRX, r.gradRY, r.gradEX, r.gradEY)
	}
	r.uvStarted = false
	r.exchangeUV(s, hooks)
}

// --- ALEGETMESH kernels -------------------------------------------------

func (r *Remapper) smoothRange(lo, hi int) {
	s := r.ra.s
	for n := lo; n < hi; n++ {
		r.smoothNode(s, n)
	}
}

func (r *Remapper) smoothNode(s *hydro.State, n int) {
	m := s.Mesh
	a0, a1 := r.adjStart[n], r.adjStart[n+1]
	if m.BCs[n] != 0 || a1 == a0 {
		r.xT[n] = s.X[n]
		r.yT[n] = s.Y[n]
		return
	}
	var ax, ay float64
	for _, nb := range r.adjList[a0:a1] {
		ax += s.X[nb]
		ay += s.Y[nb]
	}
	w := r.Opt.SmoothWeight
	inv := 1 / float64(a1-a0)
	r.xT[n] = (1-w)*s.X[n] + w*ax*inv
	r.yT[n] = (1-w)*s.Y[n] + w*ay*inv
}

func (r *Remapper) pinRange(lo, hi int) {
	s := r.ra.s
	for n := lo + r.ra.base; n < hi+r.ra.base; n++ {
		r.xT[n] = s.X[n]
		r.yT[n] = s.Y[n]
	}
}

// --- ALEGETFVOL kernel --------------------------------------------------

// gradRange fills the bound (gx, gy) with least-squares cell gradients
// of the bound phi over face neighbours, limited Barth-Jespersen style
// so reconstructed face-centroid values stay within the neighbour
// min/max (the monotonicity-enforcing limiter the paper cites via van
// Leer).
func (r *Remapper) gradRange(lo, hi int) {
	s := r.ra.s
	m := s.Mesh
	phi, gx, gy := r.ra.phi, r.ra.gx, r.ra.gy
	for e := lo; e < hi; e++ {
		cx, cy := cellCentroid(s, e)
		// Least squares normal equations.
		var sxx, sxy, syy, sxp, syp float64
		min, max := phi[e], phi[e]
		nNb := 0
		for k := 0; k < 4; k++ {
			nb := m.ElEl[e][k]
			if nb < 0 {
				continue
			}
			nNb++
			nx, ny := cellCentroid(s, nb)
			dx, dy := nx-cx, ny-cy
			dp := phi[nb] - phi[e]
			sxx += dx * dx
			sxy += dx * dy
			syy += dy * dy
			sxp += dx * dp
			syp += dy * dp
			if phi[nb] < min {
				min = phi[nb]
			}
			if phi[nb] > max {
				max = phi[nb]
			}
		}
		det := sxx*syy - sxy*sxy
		if nNb < 2 || math.Abs(det) < 1e-300 {
			gx[e], gy[e] = 0, 0
			continue
		}
		gxe := (sxp*syy - syp*sxy) / det
		gye := (syp*sxx - sxp*sxy) / det
		// Barth-Jespersen limiting at edge midpoints.
		alpha := 1.0
		nd := &m.ElNd[e]
		for k := 0; k < 4; k++ {
			kp := (k + 1) & 3
			fx := 0.5*(s.X[nd[k]]+s.X[nd[kp]]) - cx
			fy := 0.5*(s.Y[nd[k]]+s.Y[nd[kp]]) - cy
			d := gxe*fx + gye*fy
			var a float64
			switch {
			case d > 0:
				a = (max - phi[e]) / d
			case d < 0:
				a = (min - phi[e]) / d
			default:
				continue
			}
			if a < alpha {
				alpha = a
			}
		}
		if alpha < 0 {
			alpha = 0
		}
		gx[e] = alpha * gxe
		gy[e] = alpha * gye
	}
}

// --- ALEADVECT kernels --------------------------------------------------

func (r *Remapper) subFacesRange(lo, hi int) {
	s := r.ra.s
	for e := lo + r.ra.base; e < hi+r.ra.base; e++ {
		r.subFaceEl(s, e)
	}
}

func (r *Remapper) subFacesListBody(lo, hi int) {
	s := r.ra.s
	for _, e := range r.ra.list[lo:hi] {
		r.subFaceEl(s, e)
	}
}

// subFaceEl stages element e's internal sub-face fluxes (edge midpoint
// -> centroid), which move mass and momentum between the corners of one
// cell. The corner-mass deltas are fully element-local, so they are
// accumulated here in the serial loop's edge order and assigned; the
// momentum fluxes are staged per edge for momGatherRange to replay.
func (r *Remapper) subFaceEl(s *hydro.State, e int) {
	m := s.Mesh
	nd := &m.ElNd[e]
	var xo, yo, xn, yn [4]float64
	for k := 0; k < 4; k++ {
		xo[k] = s.X[nd[k]]
		yo[k] = s.Y[nd[k]]
		xn[k] = r.xT[nd[k]]
		yn[k] = r.yT[nd[k]]
	}
	cxo, cyo := geom.Centroid(&xo, &yo)
	cxn, cyn := geom.Centroid(&xn, &yn)
	var d [4]float64
	for k := 0; k < 4; k++ {
		kp := (k + 1) & 3
		// Midpoint of edge k, old and new.
		mxo := 0.5 * (xo[k] + xo[kp])
		myo := 0.5 * (yo[k] + yo[kp])
		mxn := 0.5 * (xn[k] + xn[kp])
		myn := 0.5 * (yn[k] + yn[kp])
		// Segment (M_k -> C) is CCW for corner k: gain is the
		// volume corner k annexes from corner k+1.
		gain := -sweptArea(mxo, myo, cxo, cyo, mxn, myn, cxn, cyn)
		r.eGain[4*e+k] = gain
		if gain == 0 {
			continue
		}
		ex := 0.25 * (mxo + cxo + mxn + cxn)
		ey := 0.25 * (myo + cyo + myn + cyn)
		rho := r.reconRho(e, ex, ey, s)
		mf := gain * rho
		d[k] += mf
		d[kp] -= mf
		// Upwind nodal momentum: donor node is the corner the mass
		// leaves.
		donor := nd[kp]
		if gain < 0 {
			donor = nd[k]
		}
		r.ePx[4*e+k] = mf * s.U[donor]
		r.ePy[4*e+k] = mf * s.V[donor]
	}
	r.dCMass[4*e+0] = d[0]
	r.dCMass[4*e+1] = d[1]
	r.dCMass[4*e+2] = d[2]
	r.dCMass[4*e+3] = d[3]
}

// faceFluxRange stages the cell-boundary half-face fluxes, which move
// mass and energy between cells (corners of the same node in adjacent
// cells, so no momentum transfer). Half 0 is (n1 -> M), half 1 is
// (M -> n2), both CCW for the Left element.
func (r *Remapper) faceFluxRange(lo, hi int) {
	s := r.ra.s
	m := s.Mesh
	for i := lo; i < hi; i++ {
		f := &m.Faces[i]
		if f.Right < 0 {
			// Wall: no flux. Clear the gains so the gather skips the
			// stale flux entries.
			r.fGain[2*i] = 0
			r.fGain[2*i+1] = 0
			continue
		}
		l, rt := f.Left, f.Right
		n1, n2 := f.N1, f.N2
		x1o, y1o := s.X[n1], s.Y[n1]
		x2o, y2o := s.X[n2], s.Y[n2]
		x1n, y1n := r.xT[n1], r.yT[n1]
		x2n, y2n := r.xT[n2], r.yT[n2]
		mxo := 0.5 * (x1o + x2o)
		myo := 0.5 * (y1o + y2o)
		mxn := 0.5 * (x1n + x2n)
		myn := 0.5 * (y1n + y2n)
		for half := 0; half < 2; half++ {
			var axo, ayo, bxo, byo, axn, ayn, bxn, byn float64
			if half == 0 {
				axo, ayo, bxo, byo = x1o, y1o, mxo, myo
				axn, ayn, bxn, byn = x1n, y1n, mxn, myn
			} else {
				axo, ayo, bxo, byo = mxo, myo, x2o, y2o
				axn, ayn, bxn, byn = mxn, myn, x2n, y2n
			}
			gain := -sweptArea(axo, ayo, bxo, byo, axn, ayn, bxn, byn)
			r.fGain[2*i+half] = gain
			if gain == 0 {
				continue
			}
			donor := rt
			if gain < 0 {
				donor = l
			}
			ex := 0.25 * (axo + bxo + axn + bxn)
			ey := 0.25 * (ayo + byo + ayn + byn)
			rho := r.reconRho(donor, ex, ey, s)
			ein := r.reconEin(donor, ex, ey, s)
			mf := gain * rho
			r.fMass[2*i+half] = mf
			r.fEn[2*i+half] = mf * ein
		}
	}
}

// faceGatherRange replays each element's staged half-face fluxes in
// ascending (face, half) order — the order the serial face loop added
// them — on top of the internal sub-face deltas, keeping every corner
// slot's accumulation sequence bitwise identical to the serial remap.
func (r *Remapper) faceGatherRange(lo, hi int) {
	s := r.ra.s
	m := s.Mesh
	for e := lo; e < hi; e++ {
		var den float64
		for idx := r.efStart[e]; idx < r.efStart[e+1]; idx++ {
			i := r.efList[idx]
			f := &m.Faces[i]
			for half := 0; half < 2; half++ {
				if r.fGain[2*i+half] == 0 {
					continue
				}
				node := f.N1
				if half == 1 {
					node = f.N2
				}
				k := cornerOf(m.ElNd[e], node)
				if e == f.Left {
					r.dCMass[4*e+k] += r.fMass[2*i+half]
					den += r.fEn[2*i+half]
				} else {
					r.dCMass[4*e+k] -= r.fMass[2*i+half]
					den -= r.fEn[2*i+half]
				}
			}
		}
		r.dEnergy[e] = den
	}
}

// momGatherRange gathers each node's staged momentum fluxes over its
// element ring (the NdElList transpose, ascending by element). Within
// one element, corner 0 receives edge 0's flux before edge 3's and
// corner k>0 receives edge k-1's before edge k's — exactly the serial
// k-loop's add order — and empty slots (gain 0) are skipped just as
// the serial loop skipped them, so the sums match bit for bit.
func (r *Remapper) momGatherRange(lo, hi int) {
	s := r.ra.s
	m := s.Mesh
	for n := lo; n < hi; n++ {
		var px, py float64
		for i := m.NdElStart[n]; i < m.NdElStart[n+1]; i++ {
			e := m.NdElList[i]
			c := m.NdElCorner[i]
			if c == 0 {
				if r.eGain[4*e+0] != 0 {
					px += r.ePx[4*e+0]
					py += r.ePy[4*e+0]
				}
				if r.eGain[4*e+3] != 0 {
					px -= r.ePx[4*e+3]
					py -= r.ePy[4*e+3]
				}
			} else {
				if r.eGain[4*e+c-1] != 0 {
					px -= r.ePx[4*e+c-1]
					py -= r.ePy[4*e+c-1]
				}
				if r.eGain[4*e+c] != 0 {
					px += r.ePx[4*e+c]
					py += r.ePy[4*e+c]
				}
			}
		}
		r.dPx[n] = px
		r.dPy[n] = py
	}
}

// --- ALEUPDATE kernels --------------------------------------------------

func (r *Remapper) massEnergyRange(lo, hi int) {
	s := r.ra.s
	cs := s.CornerStride()
	for e := lo; e < hi; e++ {
		oldMass := s.Mass[e]
		var newMass float64
		for k := 0; k < 4; k++ {
			s.CMass[cs*e+k] += r.dCMass[4*e+k]
			newMass += s.CMass[cs*e+k]
		}
		energy := oldMass*s.Ein[e] + r.dEnergy[e]
		s.Mass[e] = newMass
		s.Ein[e] = energy / newMass
	}
}

// stashRange turns the momentum deltas into total momenta using the
// pre-remap nodal masses, before ndMassRange rebuilds them.
func (r *Remapper) stashRange(lo, hi int) {
	s := r.ra.s
	for n := lo; n < hi; n++ {
		r.dPx[n] = s.NdMass[n]*s.U[n] + r.dPx[n]
		r.dPy[n] = s.NdMass[n]*s.V[n] + r.dPy[n]
	}
}

// ndMassRange rebuilds each nodal mass as the sum of its corner masses
// over the node's element ring (ascending, matching the serial
// element-scatter's accumulation order).
func (r *Remapper) ndMassRange(lo, hi int) {
	s := r.ra.s
	m := s.Mesh
	slots := s.NdSlots()
	for n := lo; n < hi; n++ {
		var sum float64
		for i := m.NdElStart[n]; i < m.NdElStart[n+1]; i++ {
			sum += s.CMass[slots[i]]
		}
		s.NdMass[n] = sum
	}
}

func (r *Remapper) velRange(lo, hi int) {
	s := r.ra.s
	m := s.Mesh
	for n := lo; n < hi; n++ {
		u := r.dPx[n] / s.NdMass[n]
		v := r.dPy[n] / s.NdMass[n]
		bc := m.BCs[n]
		if bc&mesh.FixU != 0 {
			u = 0
		}
		if bc&mesh.FixV != 0 {
			v = 0
		}
		s.U[n] = u
		s.V[n] = v
	}
}

// volsRange computes the target-mesh volumes into volT, so tangled
// targets are detected before the coordinates are committed.
func (r *Remapper) volsRange(lo, hi int) {
	s := r.ra.s
	m := s.Mesh
	var x, y [4]float64
	for e := lo; e < hi; e++ {
		nd := &m.ElNd[e]
		for k := 0; k < 4; k++ {
			x[k] = r.xT[nd[k]]
			y[k] = r.yT[nd[k]]
		}
		r.volT[e] = geom.Area(&x, &y)
	}
}

func (r *Remapper) commitRange(lo, hi int) {
	s := r.ra.s
	for e := lo; e < hi; e++ {
		s.Vol[e] = r.volT[e]
		s.Rho[e] = s.Mass[e] / r.volT[e]
	}
}

// --- guard probes (deterministic ReduceMin bodies) ----------------------

func (r *Remapper) cmassAt(i int) float64 {
	s := r.ra.s
	return s.CMass[(i>>2)*s.CornerStride()+(i&3)] + r.dCMass[i]
}
func (r *Remapper) ndMassAt(i int) float64 { return r.ra.s.NdMass[i] }
func (r *Remapper) volAt(i int) float64    { return r.volT[i] }

// --- geometry helpers ---------------------------------------------------

// sweptArea returns the shoelace area of the quad (aOld, bOld, bNew,
// aNew) traced by segment a->b moving from old to new positions.
func sweptArea(axo, ayo, bxo, byo, axn, ayn, bxn, byn float64) float64 {
	// Shoelace over (axo,ayo) (bxo,byo) (bxn,byn) (axn,ayn).
	return 0.5 * ((bxn-axo)*(ayn-byo) - (axn-bxo)*(byn-ayo))
}

// cornerOf returns which corner of elNd holds node n.
func cornerOf(elNd [4]int, n int) int {
	for k := 0; k < 4; k++ {
		if elNd[k] == n {
			return k
		}
	}
	panic("ale: node is not a corner of element")
}

// reconRho evaluates the limited linear density reconstruction of cell
// e at point (px, py).
func (r *Remapper) reconRho(e int, px, py float64, s *hydro.State) float64 {
	cx, cy := cellCentroid(s, e)
	v := r.cRho[e] + r.gradRX[e]*(px-cx) + r.gradRY[e]*(py-cy)
	if v <= 0 {
		return r.cRho[e]
	}
	return v
}

// reconEin evaluates the limited linear energy reconstruction of cell
// e at point (px, py).
func (r *Remapper) reconEin(e int, px, py float64, s *hydro.State) float64 {
	cx, cy := cellCentroid(s, e)
	return r.cEin[e] + r.gradEX[e]*(px-cx) + r.gradEY[e]*(py-cy)
}

func cellCentroid(s *hydro.State, e int) (float64, float64) {
	nd := &s.Mesh.ElNd[e]
	return 0.25 * (s.X[nd[0]] + s.X[nd[1]] + s.X[nd[2]] + s.X[nd[3]]),
		0.25 * (s.Y[nd[0]] + s.Y[nd[1]] + s.Y[nd[2]] + s.Y[nd[3]])
}

func zero(a []float64) {
	for i := range a {
		a[i] = 0
	}
}
