package ale

import (
	"math"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
)

// testState builds a box of ideal gas and optionally drags its nodes
// off the initial mesh to create a non-trivial remap.
func testState(t testing.TB, nx, ny int, rhoF, einF func(cx, cy float64) float64) *hydro.State {
	t.Helper()
	m, err := mesh.Rect(mesh.RectSpec{NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := eos.NewIdealGas(1.4)
	opt := hydro.DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	var x, y [4]float64
	for e := 0; e < m.NEl; e++ {
		m.GatherCoords(e, &x, &y)
		cx := 0.25 * (x[0] + x[1] + x[2] + x[3])
		cy := 0.25 * (y[0] + y[1] + y[2] + y[3])
		rho[e] = rhoF(cx, cy)
		ein[e] = einF(cx, cy)
	}
	s, err := hydro.NewState(m, opt, rho, ein)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// displaceInterior pushes interior nodes off the generated mesh by a
// smooth small displacement, leaving walls fixed, then rebuilds the
// mass bookkeeping so the current Rho/Ein fields describe the displaced
// mesh consistently (mass = rho*vol, corner masses, nodal masses) —
// i.e. the state a Lagrangian step would legitimately hand the remap.
func displaceInterior(s *hydro.State, amp float64) {
	m := s.Mesh
	for n := 0; n < m.NNd; n++ {
		if m.BCs[n] != mesh.BCNone {
			continue
		}
		s.X[n] += amp * math.Sin(2*math.Pi*s.Y[n]) * math.Sin(math.Pi*s.X[n])
		s.Y[n] += amp * math.Sin(2*math.Pi*s.X[n]) * math.Sin(math.Pi*s.Y[n])
	}
	rebuildMasses(s)
}

// rebuildMasses makes the mass bookkeeping consistent with the current
// coordinates and Rho field.
func rebuildMasses(s *hydro.State) {
	m := s.Mesh
	var x, y [4]float64
	var sv [4]float64
	for n := range s.NdMass {
		s.NdMass[n] = 0
	}
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			x[k] = s.X[m.ElNd[e][k]]
			y[k] = s.Y[m.ElNd[e][k]]
		}
		vol := 0.5 * ((x[2]-x[0])*(y[3]-y[1]) - (x[3]-x[1])*(y[2]-y[0]))
		s.Vol[e] = vol
		s.Mass[e] = s.Rho[e] * vol
		subVolsInto(&x, &y, &sv)
		cs := s.CornerStride()
		for k := 0; k < 4; k++ {
			s.CMass[cs*e+k] = s.Rho[e] * sv[k]
			s.NdMass[m.ElNd[e][k]] += s.CMass[cs*e+k]
		}
	}
}

func totals(s *hydro.State) (mass, energy, px, py float64) {
	for e := 0; e < s.Mesh.NEl; e++ {
		mass += s.Mass[e]
		energy += s.Mass[e] * s.Ein[e]
	}
	for n := 0; n < s.Mesh.NNd; n++ {
		px += s.NdMass[n] * s.U[n]
		py += s.NdMass[n] * s.V[n]
	}
	return
}

func TestRemapIdentityWhenMeshUnmoved(t *testing.T) {
	s := testState(t, 6, 6, func(cx, cy float64) float64 { return 1 + cx }, func(cx, cy float64) float64 { return 2 - cy })
	r := NewRemapper(DefaultOptions(), s)
	rho0 := append([]float64(nil), s.Rho...)
	ein0 := append([]float64(nil), s.Ein...)
	if err := r.Apply(s, nil, nil); err != nil {
		t.Fatal(err)
	}
	for e := range rho0 {
		if math.Abs(s.Rho[e]-rho0[e]) > 1e-13 || math.Abs(s.Ein[e]-ein0[e]) > 1e-13 {
			t.Fatalf("identity remap changed element %d: rho %v->%v ein %v->%v", e, rho0[e], s.Rho[e], ein0[e], s.Ein[e])
		}
	}
}

func TestRemapPreservesConstantField(t *testing.T) {
	// A constant state remapped across a displaced mesh must stay
	// exactly constant (free-stream preservation).
	s := testState(t, 8, 8, func(cx, cy float64) float64 { return 2.5 }, func(cx, cy float64) float64 { return 1.5 })
	displaceInterior(s, 0.02)
	r := NewRemapper(DefaultOptions(), s)
	if err := r.Apply(s, nil, nil); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < s.Mesh.NEl; e++ {
		if math.Abs(s.Rho[e]-2.5) > 1e-11 {
			t.Fatalf("constant density broken at element %d: %v", e, s.Rho[e])
		}
		if math.Abs(s.Ein[e]-1.5) > 1e-11 {
			t.Fatalf("constant energy broken at element %d: %v", e, s.Ein[e])
		}
	}
}

func TestRemapConservesMassEnergyMomentum(t *testing.T) {
	s := testState(t, 10, 10,
		func(cx, cy float64) float64 { return 1 + 0.5*math.Sin(2*math.Pi*cx)*math.Cos(math.Pi*cy) + 0.6 },
		func(cx, cy float64) float64 { return 1 + 0.3*cx*cy })
	for n := 0; n < s.Mesh.NNd; n++ {
		s.U[n] = 0.1 * math.Sin(float64(3*n))
		s.V[n] = 0.1 * math.Cos(float64(5*n))
	}
	displaceInterior(s, 0.02)
	m0, e0, px0, py0 := totals(s)
	r := NewRemapper(DefaultOptions(), s)
	if err := r.Apply(s, nil, nil); err != nil {
		t.Fatal(err)
	}
	m1, e1, px1, py1 := totals(s)
	if math.Abs(m1-m0) > 1e-12*m0 {
		t.Fatalf("mass not conserved: %v -> %v", m0, m1)
	}
	if math.Abs(e1-e0) > 1e-12*math.Abs(e0) {
		t.Fatalf("internal energy not conserved: %v -> %v", e0, e1)
	}
	// Momentum conservation before wall BCs nulls components: the
	// velocities above violate the wall BCs, so compare loosely by
	// rebuilding without BC zeroing... instead use interior-only flow.
	_ = px0
	_ = py0
	_ = px1
	_ = py1
}

func TestRemapConservesMomentumInteriorFlow(t *testing.T) {
	// Velocity field zero near the walls so BC re-application removes
	// nothing; momentum must then be conserved exactly.
	s := testState(t, 10, 10, func(cx, cy float64) float64 { return 1.5 }, func(cx, cy float64) float64 { return 1 })
	for n := 0; n < s.Mesh.NNd; n++ {
		x, y := s.X[n], s.Y[n]
		// Zero velocity within two node layers of the walls, so the
		// remap cannot advect momentum into BC-zeroed wall nodes.
		if x < 0.25 || x > 0.75 || y < 0.25 || y > 0.75 {
			continue
		}
		bump := math.Pow(math.Sin(math.Pi*x)*math.Sin(math.Pi*y), 2)
		s.U[n] = 0.2 * bump
		s.V[n] = -0.1 * bump
	}
	displaceInterior(s, 0.015)
	_, _, px0, py0 := totals(s)
	r := NewRemapper(DefaultOptions(), s)
	if err := r.Apply(s, nil, nil); err != nil {
		t.Fatal(err)
	}
	_, _, px1, py1 := totals(s)
	if math.Abs(px1-px0) > 1e-12 || math.Abs(py1-py0) > 1e-12 {
		t.Fatalf("momentum not conserved: (%v,%v) -> (%v,%v)", px0, py0, px1, py1)
	}
}

func TestRemapRestoresTargetMesh(t *testing.T) {
	s := testState(t, 6, 6, func(cx, cy float64) float64 { return 1 }, func(cx, cy float64) float64 { return 1 })
	displaceInterior(s, 0.02)
	r := NewRemapper(DefaultOptions(), s)
	if err := r.Apply(s, nil, nil); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < s.Mesh.NNd; n++ {
		if s.X[n] != s.Mesh.X[n] || s.Y[n] != s.Mesh.Y[n] {
			t.Fatalf("node %d not restored to initial position", n)
		}
	}
	// Density*volume bookkeeping consistent after remap.
	for e := 0; e < s.Mesh.NEl; e++ {
		if math.Abs(s.Rho[e]*s.Vol[e]-s.Mass[e]) > 1e-13*s.Mass[e] {
			t.Fatalf("element %d rho*vol != mass after remap", e)
		}
	}
}

func TestRemapDiscreteMaximumPrinciple(t *testing.T) {
	// Remapped cell values must stay within the min/max of the donor
	// neighbourhood: no new extrema (the van Leer/BJ limiting at work).
	s := testState(t, 12, 12,
		func(cx, cy float64) float64 {
			if cx < 0.5 {
				return 4
			}
			return 0.5
		},
		func(cx, cy float64) float64 {
			if cy < 0.5 {
				return 3
			}
			return 1
		})
	displaceInterior(s, 0.02)
	gMinR, gMaxR := 0.5, 4.0
	gMinE, gMaxE := 1.0, 3.0
	r := NewRemapper(DefaultOptions(), s)
	if err := r.Apply(s, nil, nil); err != nil {
		t.Fatal(err)
	}
	tol := 1e-10
	for e := 0; e < s.Mesh.NEl; e++ {
		if s.Rho[e] < gMinR-tol || s.Rho[e] > gMaxR+tol {
			t.Fatalf("density overshoot at element %d: %v", e, s.Rho[e])
		}
		if s.Ein[e] < gMinE-tol || s.Ein[e] > gMaxE+tol {
			t.Fatalf("energy overshoot at element %d: %v", e, s.Ein[e])
		}
	}
}

func TestSecondOrderBeatsFirstOrderOnLinearField(t *testing.T) {
	// Remapping a linear density profile across a displaced mesh:
	// the limited second-order scheme must reproduce it much more
	// accurately than first order.
	run := func(firstOrder bool) float64 {
		s := testState(t, 10, 10, func(cx, cy float64) float64 { return 1 }, func(cx, cy float64) float64 { return 1 })
		displaceInterior(s, 0.025)
		// Define the linear field on the displaced (pre-remap) mesh.
		var x, y [4]float64
		for e := 0; e < s.Mesh.NEl; e++ {
			for k := 0; k < 4; k++ {
				x[k] = s.X[s.Mesh.ElNd[e][k]]
				y[k] = s.Y[s.Mesh.ElNd[e][k]]
			}
			cx := 0.25 * (x[0] + x[1] + x[2] + x[3])
			s.Rho[e] = 1 + cx
		}
		rebuildMasses(s)
		opt := DefaultOptions()
		opt.FirstOrder = firstOrder
		r := NewRemapper(opt, s)
		if err := r.Apply(s, nil, nil); err != nil {
			t.Fatal(err)
		}
		var errSum float64
		for e := 0; e < s.Mesh.NEl; e++ {
			s.Mesh.GatherCoords(e, &x, &y)
			cx := 0.25 * (x[0] + x[1] + x[2] + x[3])
			errSum += math.Abs(s.Rho[e] - (1 + cx))
		}
		return errSum
	}
	e1 := run(true)
	e2 := run(false)
	if e2 >= e1 {
		t.Fatalf("second order (%v) not better than first order (%v)", e2, e1)
	}
	if e2 > 0.6*e1 {
		t.Fatalf("second order error %v not substantially below first order %v", e2, e1)
	}
}

func TestSmoothedModeImprovesMeshQuality(t *testing.T) {
	s := testState(t, 8, 8, func(cx, cy float64) float64 { return 1 }, func(cx, cy float64) float64 { return 1 })
	displaceInterior(s, 0.03)
	// Measure worst aspect distortion before and after one smoothing
	// remap via the min corner subvolume share.
	quality := func() float64 {
		worst := math.Inf(1)
		var x, y [4]float64
		for e := 0; e < s.Mesh.NEl; e++ {
			for k := 0; k < 4; k++ {
				x[k] = s.X[s.Mesh.ElNd[e][k]]
				y[k] = s.Y[s.Mesh.ElNd[e][k]]
			}
			var sv [4]float64
			subVolsInto(&x, &y, &sv)
			a := x[0]*0 + sv[0] + sv[1] + sv[2] + sv[3]
			for k := 0; k < 4; k++ {
				if q := sv[k] / a * 4; q < worst {
					worst = q
				}
			}
		}
		return worst
	}
	before := quality()
	opt := Options{Mode: Smoothed, SmoothWeight: 0.8}
	r := NewRemapper(opt, s)
	if err := r.Apply(s, nil, nil); err != nil {
		t.Fatal(err)
	}
	after := quality()
	if after <= before {
		t.Fatalf("smoothing did not improve mesh quality: %v -> %v", before, after)
	}
}

func TestRemapErrorOnCatastrophicTarget(t *testing.T) {
	// Force a target mesh wildly different from the current one: the
	// remap must fail loudly (negative corner mass or volume), not
	// silently produce garbage.
	s := testState(t, 4, 4, func(cx, cy float64) float64 { return 1 }, func(cx, cy float64) float64 { return 1 })
	// Drag the current mesh far away from the initial positions.
	for n := 0; n < s.Mesh.NNd; n++ {
		if s.Mesh.BCs[n] == mesh.BCNone {
			s.X[n] += 0.9
		}
	}
	r := NewRemapper(DefaultOptions(), s)
	if err := r.Apply(s, nil, nil); err == nil {
		t.Fatal("catastrophic remap did not error")
	}
}

func TestModeString(t *testing.T) {
	if Eulerian.String() != "eulerian" || Smoothed.String() != "smoothed" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode name empty")
	}
}

// subVolsInto mirrors geom.SubVolumes locally to avoid an import cycle
// in tests (ale already imports geom; this is a convenience copy used
// only by the quality metric).
func subVolsInto(x, y *[4]float64, sv *[4]float64) {
	cx := 0.25 * (x[0] + x[1] + x[2] + x[3])
	cy := 0.25 * (y[0] + y[1] + y[2] + y[3])
	var mx, my [4]float64
	for k := 0; k < 4; k++ {
		kp := (k + 1) & 3
		mx[k] = 0.5 * (x[k] + x[kp])
		my[k] = 0.5 * (y[k] + y[kp])
	}
	for k := 0; k < 4; k++ {
		km := (k + 3) & 3
		qx := [4]float64{x[k], mx[k], cx, mx[km]}
		qy := [4]float64{y[k], my[k], cy, my[km]}
		sv[k] = 0.5 * ((qx[2]-qx[0])*(qy[3]-qy[1]) - (qx[3]-qx[1])*(qy[2]-qy[0]))
	}
}
