package ale

import (
	"fmt"
	"testing"

	"bookleaf/internal/par"
	"bookleaf/internal/timers"
)

// TestRemapZeroAllocs pins the Remapper's scratch reuse: after warm-up,
// a steady-state remap cycle performs zero heap allocations, both in
// serial dispatch and on a worker pool (the pool bodies are bound once
// in NewRemapper, so dispatching them captures nothing).
func TestRemapZeroAllocs(t *testing.T) {
	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			s := testState(t, 16, 16,
				func(cx, cy float64) float64 { return 1 + 0.2*cx },
				func(cx, cy float64) float64 { return 1 + 0.1*cy })
			for n := range s.U {
				s.U[n] = -0.05 * (s.X[n] - 0.5)
				s.V[n] = -0.05 * (s.Y[n] - 0.5)
			}
			if threads > 1 {
				p := par.New(threads)
				defer p.Close()
				s.Pool = p
			}
			r := NewRemapper(DefaultOptions(), s)
			tm := timers.NewSet()
			step := func() {
				if _, err := s.Step(nil, nil); err != nil {
					t.Fatal(err)
				}
			}
			step()
			if err := r.Apply(s, tm, nil); err != nil { // warm-up: register timer names
				t.Fatal(err)
			}
			var failed error
			allocs := testing.AllocsPerRun(10, func() {
				step() // move the mesh so the remap has real fluxes (steps are
				// proven allocation-free by the hydro package's own test)
				if err := r.Apply(s, tm, nil); err != nil {
					failed = err
				}
			})
			if failed != nil {
				t.Fatal(failed)
			}
			if allocs != 0 {
				t.Errorf("steady-state step+remap cycle allocates %v per run, want 0", allocs)
			}
		})
	}
}
