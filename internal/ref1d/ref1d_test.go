package ref1d

import (
	"math"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/exact"
)

func TestSodMatchesExactRiemann(t *testing.T) {
	s, err := SodTube(400)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0.25); err != nil {
		t.Fatal(err)
	}
	rp := exact.Sod(0.5)
	cx := s.Centroids()
	var l1 float64
	for i, x := range cx {
		ref, err := rp.Sample(x, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		l1 += math.Abs(s.Rho[i] - ref.Rho)
	}
	l1 /= float64(len(cx))
	if l1 > 0.012 {
		t.Fatalf("1-D Sod L1 error %v, want < 0.012", l1)
	}
}

func TestEnergyConservedWithWalls(t *testing.T) {
	s, err := SodTube(100)
	if err != nil {
		t.Fatal(err)
	}
	e0 := s.TotalEnergy()
	if err := s.Run(0.25); err != nil {
		t.Fatal(err)
	}
	if drift := math.Abs(s.TotalEnergy()-e0) / e0; drift > 1e-11 {
		t.Fatalf("energy drift %v", drift)
	}
}

func TestMassExactlyConserved(t *testing.T) {
	s, _ := SodTube(80)
	var m0 float64
	for i := range s.Mass {
		m0 += s.Mass[i]
	}
	if err := s.Run(0.2); err != nil {
		t.Fatal(err)
	}
	var m1, mRho float64
	for i := range s.Mass {
		m1 += s.Mass[i]
		mRho += s.Rho[i] * (s.X[i+1] - s.X[i])
	}
	if m1 != m0 {
		t.Fatalf("mass changed %v -> %v", m0, m1)
	}
	if math.Abs(mRho-m0) > 1e-12*m0 {
		t.Fatalf("rho*vol inconsistent with mass: %v vs %v", mRho, m0)
	}
}

func TestPistonPostShockState(t *testing.T) {
	// Unit piston into cold gamma=5/3 gas: shock speed 4/3, post-shock
	// density 4.
	const n = 400
	g, _ := eos.NewIdealGas(5.0 / 3.0)
	x := make([]float64, n+1)
	rho := make([]float64, n)
	ein := make([]float64, n)
	mats := make([]eos.Material, n)
	for i := 0; i <= n; i++ {
		x[i] = float64(i) / float64(n)
	}
	for i := 0; i < n; i++ {
		rho[i] = 1
		ein[i] = 1e-9
		mats[i] = g
	}
	opt := DefaultOptions()
	opt.Left = Piston
	opt.PistonU = 1
	s, err := New(opt, x, rho, ein, mats)
	if err != nil {
		t.Fatal(err)
	}
	s.U[0] = 1
	if err := s.Run(0.5); err != nil {
		t.Fatal(err)
	}
	// At t=0.5 the piston is at 0.5, the shock at 2/3.
	cx := s.Centroids()
	var behind []float64
	for i, xx := range cx {
		if xx > 0.52 && xx < 0.62 {
			behind = append(behind, s.Rho[i])
		}
	}
	if len(behind) == 0 {
		t.Fatal("no post-shock samples")
	}
	var sum float64
	for _, v := range behind {
		sum += v
	}
	if m := sum / float64(len(behind)); math.Abs(m-4) > 0.25 {
		t.Fatalf("post-shock density %v, want 4", m)
	}
	// Shock position.
	front := 0.0
	for i, xx := range cx {
		if s.Rho[i] > 2 && xx > front {
			front = xx
		}
	}
	if math.Abs(front-2.0/3.0) > 0.03 {
		t.Fatalf("shock front at %v, want 2/3", front)
	}
}

func TestConvergenceWithResolution(t *testing.T) {
	rp := exact.Sod(0.5)
	errAt := func(n int) float64 {
		s, err := SodTube(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(0.25); err != nil {
			t.Fatal(err)
		}
		cx := s.Centroids()
		var l1 float64
		for i, x := range cx {
			ref, _ := rp.Sample(x, 0.25)
			l1 += math.Abs(s.Rho[i] - ref.Rho)
		}
		return l1 / float64(len(cx))
	}
	e100 := errAt(100)
	e200 := errAt(200)
	e400 := errAt(400)
	if !(e400 < e200 && e200 < e100) {
		t.Fatalf("no convergence: %v, %v, %v", e100, e200, e400)
	}
	// At least ~0.7th order on the shock-dominated profile.
	order := math.Log2(e100/e400) / 2
	if order < 0.6 {
		t.Fatalf("convergence order %v too low (errors %v %v %v)", order, e100, e200, e400)
	}
}

func TestNewValidation(t *testing.T) {
	g, _ := eos.NewIdealGas(1.4)
	mats := []eos.Material{g, g}
	if _, err := New(DefaultOptions(), []float64{0, 1}, []float64{1, 1}, []float64{1, 1}, mats); err == nil {
		t.Fatal("short node array accepted")
	}
	if _, err := New(DefaultOptions(), []float64{0, 0.5, 0.4}, []float64{1, 1}, []float64{1, 1}, mats); err == nil {
		t.Fatal("non-monotone nodes accepted")
	}
	if _, err := New(DefaultOptions(), []float64{0, 0.5, 1}, []float64{1, -1}, []float64{1, 1}, mats); err == nil {
		t.Fatal("negative density accepted")
	}
}
