// Package ref1d is an independent one-dimensional staggered Lagrangian
// hydrodynamics solver used to cross-validate the 2-D code on planar
// problems. It shares the numerical ingredients of the 2-D scheme —
// staggered mesh, predictor-corrector time integration, compatible
// energy update, monotonic-limited artificial viscosity — but is a
// separate, much simpler implementation: agreement between the two on
// Sod's tube and the piston problem is a strong consistency check,
// since a shared bug would have to be made twice.
package ref1d

import (
	"fmt"
	"math"

	"bookleaf/internal/eos"
)

// BC selects the boundary condition at one end of the tube.
type BC int

const (
	// Wall is a rigid reflective wall (node velocity zero).
	Wall BC = iota
	// Piston prescribes the node velocity (set via PistonU).
	Piston
)

// Options configure the 1-D solver.
type Options struct {
	CFL       float64
	DtInitial float64
	DtGrowth  float64
	DtMin     float64
	CQ1, CQ2  float64
	Left      BC
	Right     BC
	PistonU   float64 // velocity of Piston-flagged ends
}

// DefaultOptions mirrors the 2-D defaults.
func DefaultOptions() Options {
	return Options{
		CFL: 0.5, DtInitial: 1e-5, DtGrowth: 1.02, DtMin: 1e-12,
		CQ1: 0.5, CQ2: 0.75,
	}
}

// Solver is a 1-D staggered Lagrangian state: n cells, n+1 nodes.
type Solver struct {
	Opt Options
	Mat []eos.Material // per cell

	X, U   []float64 // node position, velocity (n+1)
	NdMass []float64 // nodal mass (n+1)

	Rho, Ein, P, Q, Cs2, Mass []float64 // cell quantities (n)

	Time, DtPrev float64
	StepCount    int

	// scratch
	x0, u0, ein0, f []float64
}

// New builds a solver from node positions and per-cell initial state.
// mats gives the material per cell (may repeat one value).
func New(opt Options, x []float64, rho, ein []float64, mats []eos.Material) (*Solver, error) {
	n := len(rho)
	if len(x) != n+1 || len(ein) != n || len(mats) != n {
		return nil, fmt.Errorf("ref1d: inconsistent sizes: %d nodes, %d cells, %d energies, %d materials",
			len(x), n, len(ein), len(mats))
	}
	for i := 0; i < n; i++ {
		if x[i+1] <= x[i] {
			return nil, fmt.Errorf("ref1d: node %d not increasing", i+1)
		}
		if rho[i] <= 0 {
			return nil, fmt.Errorf("ref1d: cell %d density %v", i, rho[i])
		}
	}
	s := &Solver{
		Opt: opt, Mat: mats,
		X:      append([]float64(nil), x...),
		U:      make([]float64, n+1),
		NdMass: make([]float64, n+1),
		Rho:    append([]float64(nil), rho...),
		Ein:    append([]float64(nil), ein...),
		P:      make([]float64, n),
		Q:      make([]float64, n),
		Cs2:    make([]float64, n),
		Mass:   make([]float64, n),
		x0:     make([]float64, n+1),
		u0:     make([]float64, n+1),
		ein0:   make([]float64, n),
		f:      make([]float64, n+1),
		DtPrev: opt.DtInitial,
	}
	for i := 0; i < n; i++ {
		s.Mass[i] = rho[i] * (x[i+1] - x[i])
		s.NdMass[i] += 0.5 * s.Mass[i]
		s.NdMass[i+1] += 0.5 * s.Mass[i]
	}
	s.eosEval()
	return s, nil
}

func (s *Solver) eosEval() {
	for i := range s.Rho {
		s.P[i] = s.Mat[i].Pressure(s.Rho[i], s.Ein[i])
		s.Cs2[i] = s.Mat[i].SoundSpeed2(s.Rho[i], s.Ein[i])
	}
}

// getQ computes the monotonic-limited artificial viscosity.
func (s *Solver) getQ() {
	n := len(s.Rho)
	for i := 0; i < n; i++ {
		du := s.U[i+1] - s.U[i]
		if du >= 0 {
			s.Q[i] = 0
			continue
		}
		// Limiter from the velocity-difference ratios of the
		// neighbouring cells (one-sided at the ends).
		r := math.Inf(1)
		if i > 0 {
			r = math.Min(r, (s.U[i]-s.U[i-1])/du)
		}
		if i < n-1 {
			r = math.Min(r, (s.U[i+2]-s.U[i+1])/du)
		}
		psi := 0.0
		if r > 0 && !math.IsInf(r, 1) {
			psi = math.Min(1, r)
		}
		cs := math.Sqrt(s.Cs2[i])
		s.Q[i] = (1 - psi) * s.Rho[i] * (s.Opt.CQ2*du*du + s.Opt.CQ1*cs*math.Abs(du))
	}
}

// forces fills the nodal force array from P+Q.
func (s *Solver) forces() {
	n := len(s.Rho)
	for i := 0; i <= n; i++ {
		var left, right float64
		if i > 0 {
			left = s.P[i-1] + s.Q[i-1]
		}
		if i < n {
			right = s.P[i] + s.Q[i]
		}
		// Interior: net force = (P+Q)_left - (P+Q)_right. End nodes
		// feel only the interior side (the wall supplies the
		// constraint force).
		switch {
		case i == 0:
			s.f[i] = -right
		case i == n:
			s.f[i] = left
		default:
			s.f[i] = left - right
		}
	}
}

// getDt returns the stable timestep.
func (s *Solver) getDt() float64 {
	dt := s.Opt.DtGrowth * s.DtPrev
	for i := range s.Rho {
		l := s.X[i+1] - s.X[i]
		sig := math.Sqrt(s.Cs2[i] + 2*s.Q[i]/s.Rho[i])
		if sig > 0 {
			if c := s.Opt.CFL * l / sig; c < dt {
				dt = c
			}
		}
	}
	return dt
}

// applyBC enforces the end conditions on a velocity array.
func (s *Solver) applyBC(u []float64) {
	switch s.Opt.Left {
	case Wall:
		u[0] = 0
	case Piston:
		u[0] = s.Opt.PistonU
	}
	switch s.Opt.Right {
	case Wall:
		u[len(u)-1] = 0
	case Piston:
		u[len(u)-1] = s.Opt.PistonU
	}
}

// Step advances one predictor-corrector step.
func (s *Solver) Step() (float64, error) {
	n := len(s.Rho)
	var dt float64
	if s.StepCount == 0 {
		dt = s.Opt.DtInitial
	} else {
		dt = s.getDt()
	}
	if dt < s.Opt.DtMin {
		return 0, fmt.Errorf("ref1d: timestep %v collapsed at step %d", dt, s.StepCount)
	}
	copy(s.x0, s.X)
	copy(s.u0, s.U)
	copy(s.ein0, s.Ein)

	// Predictor: half-step geometry with start-of-step velocities.
	s.getQ()
	s.forces()
	for i := 0; i <= n; i++ {
		s.X[i] = s.x0[i] + 0.5*dt*s.u0[i]
	}
	for i := 0; i < n; i++ {
		s.Rho[i] = s.Mass[i] / (s.X[i+1] - s.X[i])
		// Compatible: de = -dt/2 (F·u) / m with the cell's two node
		// forces taken as the pressure difference work.
		w := (s.P[i]+s.Q[i])*(s.u0[i+1]-s.u0[i]) - 0
		s.Ein[i] = s.ein0[i] - 0.5*dt*w/s.Mass[i]
		if s.Ein[i] < 0 && s.Mat[i].EnergyDependent() {
			s.Ein[i] = 0
		}
	}
	s.eosEval()

	// Corrector.
	s.getQ()
	s.forces()
	for i := 0; i <= n; i++ {
		s.U[i] = s.u0[i] + dt*s.f[i]/s.NdMass[i]
	}
	s.applyBC(s.U)
	for i := 0; i <= n; i++ {
		ubar := 0.5 * (s.u0[i] + s.U[i])
		s.X[i] = s.x0[i] + dt*ubar
	}
	for i := 0; i < n; i++ {
		vol := s.X[i+1] - s.X[i]
		if vol <= 0 {
			return 0, fmt.Errorf("ref1d: cell %d inverted at step %d", i, s.StepCount)
		}
		s.Rho[i] = s.Mass[i] / vol
		ul := 0.5 * (s.u0[i] + s.U[i])
		ur := 0.5 * (s.u0[i+1] + s.U[i+1])
		w := (s.P[i] + s.Q[i]) * (ur - ul)
		s.Ein[i] = s.ein0[i] - dt*w/s.Mass[i]
		if s.Ein[i] < 0 && s.Mat[i].EnergyDependent() {
			s.Ein[i] = 0
		}
	}
	s.eosEval()

	s.Time += dt
	s.DtPrev = dt
	s.StepCount++
	return dt, nil
}

// Run advances to tEnd.
func (s *Solver) Run(tEnd float64) error {
	for s.Time < tEnd-1e-12 {
		dtNext := tEnd - s.Time
		// Clamp the step so the run ends exactly at tEnd.
		save := s.Opt.DtGrowth
		if s.getDt() > dtNext && s.StepCount > 0 {
			s.Opt.DtGrowth = dtNext / s.DtPrev
		}
		_, err := s.Step()
		s.Opt.DtGrowth = save
		if err != nil {
			return err
		}
		if s.StepCount > 10_000_000 {
			return fmt.Errorf("ref1d: step cap reached at t=%v", s.Time)
		}
	}
	return nil
}

// Centroids returns cell-centre positions.
func (s *Solver) Centroids() []float64 {
	out := make([]float64, len(s.Rho))
	for i := range out {
		out[i] = 0.5 * (s.X[i] + s.X[i+1])
	}
	return out
}

// TotalEnergy returns internal plus kinetic energy.
func (s *Solver) TotalEnergy() float64 {
	var e float64
	for i := range s.Rho {
		e += s.Mass[i] * s.Ein[i]
	}
	for i := range s.U {
		e += 0.5 * s.NdMass[i] * s.U[i] * s.U[i]
	}
	return e
}

// SodTube builds the standard Sod problem with n cells.
func SodTube(n int) (*Solver, error) {
	g, err := eos.NewIdealGas(1.4)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n+1)
	rho := make([]float64, n)
	ein := make([]float64, n)
	mats := make([]eos.Material, n)
	for i := 0; i <= n; i++ {
		x[i] = float64(i) / float64(n)
	}
	for i := 0; i < n; i++ {
		mats[i] = g
		if 0.5*(x[i]+x[i+1]) < 0.5 {
			rho[i] = 1
			ein[i] = 1.0 / (0.4 * 1.0)
		} else {
			rho[i] = 0.125
			ein[i] = 0.1 / (0.4 * 0.125)
		}
	}
	return New(DefaultOptions(), x, rho, ein, mats)
}
