// Package hydro implements BookLeaf's Lagrangian hydrodynamics step:
// the staggered-mesh compatible finite-element discretisation of
// Euler's equations with predictor-corrector time integration,
// edge-centred artificial viscosity, and hourglass control. Kernel
// decomposition follows the paper's Algorithm 1 — getdt, getq,
// getforce, getacc, getgeom, getrho, getein, getpc — so per-kernel
// timings map one-to-one onto the paper's Table II.
package hydro

import (
	"fmt"

	"bookleaf/internal/geom"
	"bookleaf/internal/mesh"
	"bookleaf/internal/par"
)

// ErrTangled reports a non-positive element volume (mesh tangling).
type ErrTangled struct {
	Element int
	Volume  float64
}

func (e *ErrTangled) Error() string {
	return fmt.Sprintf("hydro: element %d tangled (volume %v)", e.Element, e.Volume)
}

// ErrDtCollapse reports a stable timestep below Options.DtMin.
type ErrDtCollapse struct {
	Dt      float64
	Element int
}

func (e *ErrDtCollapse) Error() string {
	return fmt.Sprintf("hydro: timestep %v collapsed below minimum (element %d)", e.Dt, e.Element)
}

// State holds the evolving hydrodynamic state on a (possibly local,
// ghost-bearing) mesh. Element arrays have length NEl, node arrays
// NNd. The corner arrays (FX/FY, CMass/QEdge) are indexed cs*e+k where
// cs is the corner stride CornerStride(): 4 in the SoA layout (each
// array dense and separate, the paper's layout), 8 in the default AoS
// layout, where each pair shares one interleaved backing — FX and FY
// are overlapping views offset by 4, so element e's record
// FX[0..3]|FY[0..3] is one contiguous 64-byte cache line, and the same
// for CMass|QEdge. Indexing is layout-uniform: FX[cs*e+k], FY[cs*e+k].
type State struct {
	Mesh *mesh.Mesh
	Opt  Options
	Pool *par.Pool

	// Node coordinates (evolving; Mesh.X/Y keep the generated initial
	// coordinates, which the Eulerian remap uses as its target).
	X, Y []float64
	// Node velocity.
	U, V []float64
	// NdMass is the fixed nodal mass (sum of adjacent corner masses).
	NdMass []float64

	// Element state.
	Rho, Ein, P, Q, Csq, Vol []float64
	// QEdge holds the per-edge viscous damper coefficients computed
	// by GetQ (edge k of element e at 4*e+k); GetForce turns them
	// into equal-and-opposite forces along each compressing edge —
	// the edge-centred Caramana force that keeps cells from being
	// splayed into slivers by an isotropic q.
	QEdge []float64
	// Mass is the fixed element mass; CMass the fixed corner
	// (sub-zonal) masses.
	Mass, CMass []float64

	// Corner forces (per corner x/y), rebuilt by GetForce.
	FX, FY []float64
	// Nodal force accumulators, scratch for the acceleration scatter.
	fxnd, fynd []float64

	// Step scratch: start-of-step state saved by Step.
	X0, Y0, U0, V0 []float64
	UBar, VBar     []float64
	Ein0           []float64

	// PistonU, PistonV is the prescribed velocity of Piston-flagged
	// nodes (Saltzmann).
	PistonU, PistonV float64

	// ExternalWork accumulates work done on the gas through
	// prescribed-velocity (piston) nodes, so total-energy audits close.
	ExternalWork float64

	// FloorEnergy accumulates internal energy added by GetEin's
	// negative-energy floor (zero on well-resolved problems);
	// conservation audits subtract it.
	FloorEnergy float64

	// Time and DtPrev track the simulation clock across steps.
	Time, DtPrev float64
	// StepCount is the number of completed Lagrangian steps.
	StepCount int
	// DtCause records which condition controlled the last timestep
	// (set by GetDt; DtCauseInitial on the first step).
	DtCause DtCause

	// ka and kb are the kernel scratch arena and the pre-bound loop
	// bodies (see kernels.go); together they make the steady-state step
	// allocation-free.
	ka kernelArgs
	kb kernelBodies

	// facing[4*e+k] is the side index of neighbour ElEl[e][k] that
	// borders e, or -1 when there is no symmetric entry (no neighbour,
	// or a ghost-fringe element whose own adjacency was trimmed by the
	// partitioner). Mesh topology is static for the life of a State, so
	// this replaces the per-edge linear search the viscosity limiter
	// used to run (sideFacing) with one precomputed byte.
	facing []int8

	// fuseTile is the tile width (elements per fused-body invocation)
	// the cache-tiled fused sweeps dispatch over: Options.FuseTile, or
	// par.TileFor(fusedBytesPerElem) when unset.
	fuseTile int

	// cmass32/qedge32 are the float32 shadow streams of the
	// Options.Float32Aux ablation: the force kernel reads corner masses
	// and edge damper coefficients from these (half the traffic), while
	// the float64 arrays keep checkpoint/migration formats unchanged.
	// qedge32 is rewritten by every GetQ before GetForce reads it;
	// cmass32 must be refreshed whenever CMass mutates outside the step
	// (see RefreshAux). Both nil unless the ablation is on. In the AoS
	// layout they share one interleaved backing exactly like their
	// float64 counterparts.
	cmass32, qedge32 []float32

	// cs is the corner stride: the distance in any corner array between
	// element e's record and element e+1's. 4 for LayoutSoA (dense
	// separate arrays), 8 for LayoutAoS (each array is a view of a
	// shared interleaved backing and only uses 4 of every 8 slots).
	cs int
	// ndSlots mirrors Mesh.NdCorner with corner ids pre-converted to
	// the layout's slot offsets: ndSlots[i] = (c>>2)*cs + (c&3) for
	// c = Mesh.NdCorner[i]. The acceleration/energy node gathers index
	// FX/FY (and band replicas) through this instead of re-deriving the
	// slot per access. Identical to NdCorner when cs == 4.
	ndSlots []int32
}

// NewState allocates a State over m with initial per-element density
// and specific internal energy, and computes masses and the initial
// EoS evaluation. rho and ein must have length m.NEl.
func NewState(m *mesh.Mesh, opt Options, rho, ein []float64) (*State, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(rho) != m.NEl || len(ein) != m.NEl {
		return nil, fmt.Errorf("hydro: initial fields sized %d/%d, mesh has %d elements", len(rho), len(ein), m.NEl)
	}
	for e := 0; e < m.NEl; e++ {
		if m.Region[e] < 0 || m.Region[e] >= len(opt.Materials) {
			return nil, fmt.Errorf("hydro: element %d region %d has no material (have %d)", e, m.Region[e], len(opt.Materials))
		}
		if rho[e] <= 0 {
			return nil, fmt.Errorf("hydro: element %d initial density %v not positive", e, rho[e])
		}
	}
	nel, nnd := m.NEl, m.NNd
	s := &State{
		Mesh: m,
		Opt:  opt,
		Pool: par.Serial,

		X: append([]float64(nil), m.X...),
		Y: append([]float64(nil), m.Y...),
		U: make([]float64, nnd),
		V: make([]float64, nnd),

		Rho: append([]float64(nil), rho...),
		Ein: append([]float64(nil), ein...),
		P:   make([]float64, nel),
		Q:   make([]float64, nel),
		Csq: make([]float64, nel),
		Vol: make([]float64, nel),

		Mass:   make([]float64, nel),
		NdMass: make([]float64, nnd),

		fxnd: make([]float64, nnd),
		fynd: make([]float64, nnd),

		X0:   make([]float64, nnd),
		Y0:   make([]float64, nnd),
		U0:   make([]float64, nnd),
		V0:   make([]float64, nnd),
		UBar: make([]float64, nnd),
		VBar: make([]float64, nnd),
		Ein0: make([]float64, nel),

		DtPrev: opt.DtInitial,
	}
	// Corner arrays, per layout. SoA: four dense stride-4 slices. AoS:
	// FX/FY are overlapping views (offset 4) of one interleaved stride-8
	// backing, so FX[8e..8e+3]|FY[8e..8e+3] is one contiguous record;
	// CMass/QEdge pair up the same way. The views alias, which is the
	// point — and is harmless, since no kernel writes one member of a
	// pair through the other's slots.
	switch opt.Layout {
	case LayoutSoA:
		s.cs = 4
		s.FX = make([]float64, 4*nel)
		s.FY = make([]float64, 4*nel)
		s.CMass = make([]float64, 4*nel)
		s.QEdge = make([]float64, 4*nel)
	default: // LayoutAoS
		s.cs = 8
		fxy := make([]float64, 8*nel)
		aux := make([]float64, 8*nel)
		s.FX, s.FY = fxy, fxy
		s.CMass, s.QEdge = aux, aux
		if nel > 0 {
			s.FY = fxy[4:]
			s.QEdge = aux[4:]
		}
	}
	cs := s.cs

	// Volumes, masses, sub-zonal corner masses.
	var x, y [4]float64
	var sv [4]float64
	for e := 0; e < nel; e++ {
		s.gatherCoords(e, &x, &y)
		vol := geom.Area(&x, &y)
		if vol <= 0 {
			return nil, &ErrTangled{Element: e, Volume: vol}
		}
		s.Vol[e] = vol
		s.Mass[e] = rho[e] * vol
		geom.SubVolumes(&x, &y, &sv)
		for k := 0; k < 4; k++ {
			s.CMass[cs*e+k] = rho[e] * sv[k]
		}
	}
	// Nodal masses from corner masses over all local elements (ghost
	// layers make these sums complete for owned nodes).
	for e := 0; e < nel; e++ {
		for k := 0; k < 4; k++ {
			s.NdMass[m.ElNd[e][k]] += s.CMass[cs*e+k]
		}
	}
	// Layout-converted NdCorner: canonical corner id c = 4*e+k becomes
	// slot cs*e+k.
	s.ndSlots = make([]int32, len(m.NdCorner))
	for i, c := range m.NdCorner {
		s.ndSlots[i] = int32((c>>2)*cs + (c & 3))
	}
	// Facing-side table: for each adjacency entry, the neighbour's side
	// that points back. Owned elements must have symmetric adjacency (a
	// partitioning invariant the viscosity kernel still asserts); ghost
	// elements may legitimately lack the back-pointer and get -1.
	s.facing = make([]int8, 4*nel)
	for e := 0; e < nel; e++ {
		for k := 0; k < 4; k++ {
			s.facing[4*e+k] = -1
			nb := m.ElEl[e][k]
			if nb < 0 {
				continue
			}
			for kk := 0; kk < 4; kk++ {
				if m.ElEl[nb][kk] == e {
					s.facing[4*e+k] = int8(kk)
					break
				}
			}
		}
	}
	if opt.Float32Aux {
		if cs == 8 {
			aux32 := make([]float32, 8*nel)
			s.cmass32, s.qedge32 = aux32, aux32
			if nel > 0 {
				s.qedge32 = aux32[4:]
			}
		} else {
			s.cmass32 = make([]float32, 4*nel)
			s.qedge32 = make([]float32, 4*nel)
		}
	}
	s.RefreshAux()
	s.fuseTile = opt.FuseTile
	if s.fuseTile == 0 {
		s.fuseTile = par.TileFor(fusedBytesPerElem)
	}
	s.bindKernels()
	s.GetPC(0, nel)
	return s, nil
}

// RefreshAux rebuilds the float32 shadow of the fixed corner masses
// after CMass mutates outside the Lagrangian step — the ALE corner-mass
// update, a checkpoint restore, or a memento rollback. A no-op unless
// the Options.Float32Aux ablation is on. (The qedge32 shadow needs no
// refresh: every GetQ rewrites it in full before GetForce reads it.)
func (s *State) RefreshAux() {
	if !s.Opt.Float32Aux {
		return
	}
	for i, v := range s.CMass {
		s.cmass32[i] = float32(v)
	}
}

// CornerStride returns the distance in the corner arrays (FX, FY,
// CMass, QEdge) between consecutive elements' records: 4 in the SoA
// layout, 8 in the AoS layout. Corner k of element e lives at
// CornerStride()*e+k in every corner array regardless of layout.
func (s *State) CornerStride() int { return s.cs }

// NdSlots returns Mesh.NdCorner with each flat corner id converted to
// the current layout's slot offset (identical to NdCorner at stride 4).
// Callers gathering corner forces per node should index FX/FY through
// this.
func (s *State) NdSlots() []int32 { return s.ndSlots }

// ForceHalo returns the corner-force arrays a ghost-element halo
// exchange must transfer, with the per-element record width. SoA: the
// FX and FY slices at 4 words each. AoS: the single interleaved
// backing (the FX view spans it in full) at 8 words — one record
// carries both components, so total traffic is identical.
func (s *State) ForceHalo() (fields [][]float64, width int) {
	if s.cs == 8 {
		return [][]float64{s.FX}, 8
	}
	return [][]float64{s.FX, s.FY}, 4
}

// gatherCoords loads the current coordinates of element e's nodes.
func (s *State) gatherCoords(e int, x, y *[4]float64) {
	nd := &s.Mesh.ElNd[e]
	for k := 0; k < 4; k++ {
		x[k] = s.X[nd[k]]
		y[k] = s.Y[nd[k]]
	}
}

// gatherVel loads velocities of element e's nodes from the given
// nodal arrays.
func (s *State) gatherVel(e int, uArr, vArr []float64, u, v *[4]float64) {
	nd := &s.Mesh.ElNd[e]
	for k := 0; k < 4; k++ {
		u[k] = uArr[nd[k]]
		v[k] = vArr[nd[k]]
	}
}

// TotalMass returns the mass of owned elements.
func (s *State) TotalMass() float64 {
	var m float64
	for e := 0; e < s.Mesh.NOwnEl; e++ {
		m += s.Mass[e]
	}
	return m
}

// InternalEnergy returns the total internal energy of owned elements.
func (s *State) InternalEnergy() float64 {
	var ie float64
	for e := 0; e < s.Mesh.NOwnEl; e++ {
		ie += s.Mass[e] * s.Ein[e]
	}
	return ie
}

// KineticEnergy returns the total kinetic energy of owned nodes.
func (s *State) KineticEnergy() float64 {
	var ke float64
	for n := 0; n < s.Mesh.NOwnNd; n++ {
		ke += 0.5 * s.NdMass[n] * (s.U[n]*s.U[n] + s.V[n]*s.V[n])
	}
	return ke
}

// TotalEnergy returns internal + kinetic energy of the owned partition.
func (s *State) TotalEnergy() float64 {
	return s.InternalEnergy() + s.KineticEnergy()
}

// Momentum returns the total (x, y) momentum of owned nodes.
func (s *State) Momentum() (px, py float64) {
	for n := 0; n < s.Mesh.NOwnNd; n++ {
		px += s.NdMass[n] * s.U[n]
		py += s.NdMass[n] * s.V[n]
	}
	return px, py
}
