package hydro

import (
	"bookleaf/internal/mesh"
	"bookleaf/internal/timers"
)

// Hooks are the distributed-memory extension points of the Lagrangian
// step. They sit exactly where the paper places BookLeaf's
// communications: one global reduction for the timestep, one halo
// exchange immediately before the acceleration calculation (ghost
// corner forces), and one refreshing ghost nodal kinematics that
// services the next viscosity calculation. Nil hooks (or nil fields)
// give serial behaviour.
type Hooks struct {
	// ReduceDt globally reduces the local stable timestep with MINLOC
	// semantics over the controlling element id.
	ReduceDt func(dt float64, elem int) (float64, int)
	// ExchangeForces refreshes ghost-element corner forces (FX, FY)
	// before the acceleration scatter.
	ExchangeForces func(s *State)
	// ExchangeVelocities refreshes ghost-node U, V, UBar, VBar after
	// the acceleration update.
	ExchangeVelocities func(s *State)

	// Phased variants for the overlapped schedule: StartForces posts
	// the ghost corner-force sends and FinishForces drains the matching
	// receives; the velocity pair does the same for ghost nodal
	// kinematics. When all four are set (plus Band), Step overlaps each
	// exchange with the interior portion of the dependent kernels
	// instead of calling the blocking pair above. A Start must always
	// be balanced by its Finish in the same step.
	StartForces      func(s *State)
	FinishForces     func(s *State)
	StartVelocities  func(s *State)
	FinishVelocities func(s *State)
	// Band is the interior/boundary split the overlapped schedule
	// dispatches over, computed once per partition by
	// mesh.BoundaryBand.
	Band *mesh.Band
}

// overlapped reports whether the phased-exchange schedule is fully
// wired. Safe on a nil receiver.
func (h *Hooks) overlapped() bool {
	return h != nil && h.Band != nil &&
		h.StartForces != nil && h.FinishForces != nil &&
		h.StartVelocities != nil && h.FinishVelocities != nil
}

// Kernel timer names, matching the paper's Table II breakdown.
const (
	TimerGetDt    = "getdt"
	TimerGetQ     = "getq"
	TimerGetForce = "getforce"
	TimerGetAcc   = "getacc"
	TimerGetGeom  = "getgeom"
	TimerGetRho   = "getrho"
	TimerGetEin   = "getein"
	TimerGetPC    = "getpc"
	TimerComms    = "comms"
	TimerALE      = "alestep"
)

// Step advances the state by one Lagrangian predictor-corrector step,
// accumulating per-kernel times into tm (a nil *timers.Set discards
// them). It returns the timestep taken. Steady-state steps perform no
// heap allocations (see kernelBodies), a property the AllocsPerRun
// regression tests pin down.
func (s *State) Step(tm *timers.Set, hooks *Hooks) (float64, error) {
	nel := s.Mesh.NOwnEl

	// Timestep: the paper's Algorithm 1 skips GETDT on the first step.
	var dt float64
	var controller int
	if s.StepCount == 0 {
		dt, controller = s.Opt.DtInitial, -1
		s.DtCause = DtCauseInitial
	} else {
		tm.Start(TimerGetDt)
		dt, controller = s.GetDt()
		tm.Stop(TimerGetDt)
	}
	if hooks != nil && hooks.ReduceDt != nil {
		tm.Start(TimerComms)
		dt, controller = hooks.ReduceDt(dt, controller)
		tm.Stop(TimerComms)
	}
	if dt < s.Opt.DtMin {
		return 0, &ErrDtCollapse{Dt: dt, Element: controller}
	}

	// Save start-of-step state.
	copy(s.X0, s.X)
	copy(s.Y0, s.Y)
	copy(s.U0, s.U)
	copy(s.V0, s.V)
	copy(s.Ein0, s.Ein)

	// --- Predictor: evolve to the half step with start-of-step
	// velocities (no acceleration, per Algorithm 1). The fused path
	// (Options.Fuse, default) runs the same per-element arithmetic as
	// two cache-tiled sweeps — q+force, then vol→rho→ein→pc — instead
	// of six kernels (see fused.go); fields are bitwise-identical.
	var err error
	if s.Opt.Fuse {
		tm.Start(TimerQForce)
		s.GetQForce(0, nel, s.U0, s.V0)
		tm.Stop(TimerQForce)

		tm.Start(TimerLagUpdate)
		_, err = s.FusedUpdate(0.5*dt, s.U0, s.V0, 0, nel) // half-step floor is transient
		tm.Stop(TimerLagUpdate)
		if err != nil {
			return 0, err
		}
	} else {
		tm.Start(TimerGetQ)
		s.GetQ(0, nel)
		tm.Stop(TimerGetQ)

		tm.Start(TimerGetForce)
		s.GetForce(0, nel, s.U0, s.V0)
		tm.Stop(TimerGetForce)

		tm.Start(TimerGetGeom)
		err = s.GetGeom(0.5*dt, s.U0, s.V0, 0, nel)
		tm.Stop(TimerGetGeom)
		if err != nil {
			return 0, err
		}

		tm.Start(TimerGetRho)
		s.GetRho(0, nel)
		tm.Stop(TimerGetRho)

		tm.Start(TimerGetEin)
		s.GetEin(0.5*dt, s.U0, s.V0, 0, nel) // half-step floor is transient
		tm.Stop(TimerGetEin)

		tm.Start(TimerGetPC)
		s.GetPC(0, nel)
		tm.Stop(TimerGetPC)
	}

	// --- Corrector: forces from the half-step state, acceleration,
	// time-centred geometry and energy. The overlapped schedule hides
	// each halo exchange behind the interior portion of the dependent
	// kernels; all four schedules (sync/overlap x fused/unfused)
	// produce bitwise-identical fields (see DESIGN.md §10, §13).
	switch {
	case s.Opt.Fuse && hooks.overlapped():
		err = s.correctorOverlapFused(tm, hooks, dt)
	case s.Opt.Fuse:
		err = s.correctorSyncFused(tm, hooks, dt)
	case hooks.overlapped():
		err = s.correctorOverlap(tm, hooks, dt)
	default:
		err = s.correctorSync(tm, hooks, dt)
	}
	if err != nil {
		return 0, err
	}

	s.Time += dt
	s.DtPrev = dt
	s.StepCount++
	return dt, nil
}

// correctorSync is the reference corrector: blocking halo exchanges at
// the paper's two communication points.
func (s *State) correctorSync(tm *timers.Set, hooks *Hooks, dt float64) error {
	nel := s.Mesh.NOwnEl

	tm.Start(TimerGetQ)
	s.GetQ(0, nel)
	tm.Stop(TimerGetQ)

	tm.Start(TimerGetForce)
	s.GetForce(0, nel, s.U0, s.V0)
	tm.Stop(TimerGetForce)

	if hooks != nil && hooks.ExchangeForces != nil {
		tm.Start(TimerComms)
		hooks.ExchangeForces(s)
		tm.Stop(TimerComms)
	}

	tm.Start(TimerGetAcc)
	s.GetAcc(dt)
	tm.Stop(TimerGetAcc)
	s.ExternalWork += -dt * s.pistonWork()

	if hooks != nil && hooks.ExchangeVelocities != nil {
		tm.Start(TimerComms)
		hooks.ExchangeVelocities(s)
		tm.Stop(TimerComms)
	}

	tm.Start(TimerGetGeom)
	err := s.GetGeom(dt, s.UBar, s.VBar, 0, nel)
	tm.Stop(TimerGetGeom)
	if err != nil {
		return err
	}

	tm.Start(TimerGetRho)
	s.GetRho(0, nel)
	tm.Stop(TimerGetRho)

	tm.Start(TimerGetEin)
	s.FloorEnergy += s.GetEin(dt, s.UBar, s.VBar, 0, nel)
	tm.Stop(TimerGetEin)

	tm.Start(TimerGetPC)
	s.GetPC(0, nel)
	tm.Stop(TimerGetPC)
	return nil
}

// correctorOverlap runs the corrector with phased halo exchanges
// hidden behind interior work. Correctness rests on two disjointness
// facts: interior nodes (Band.IntNds) read no ghost corner force, and
// interior elements (Band.IntEls) read no ghost node — so the interior
// kernels touch nothing an in-flight exchange will write. Within each
// kernel the per-entity updates are pure, so splitting the owned range
// into two band passes reproduces the synchronous values bit for bit.
// The tangle scan runs over the full owned range, ascending, after
// both volume passes, so the reported element matches the synchronous
// schedule; the floor-energy total is only committed once the scan
// passes, matching the synchronous failure semantics.
func (s *State) correctorOverlap(tm *timers.Set, hooks *Hooks, dt float64) error {
	m := s.Mesh
	nel := m.NOwnEl
	b := hooks.Band

	tm.Start(TimerGetQ)
	s.GetQ(0, nel)
	tm.Stop(TimerGetQ)

	tm.Start(TimerGetForce)
	s.GetForce(0, nel, s.U0, s.V0)
	tm.Stop(TimerGetForce)

	// Ghost corner forces travel while interior nodes accelerate.
	tm.Start(TimerComms)
	hooks.StartForces(s)
	tm.Stop(TimerComms)

	tm.Start(TimerGetAcc)
	s.GetAccList(b.IntNds, dt)
	tm.Stop(TimerGetAcc)

	tm.Start(TimerComms)
	hooks.FinishForces(s)
	tm.Stop(TimerComms)

	tm.Start(TimerGetAcc)
	s.GetAccList(b.BndNds, dt)
	tm.Stop(TimerGetAcc)
	// pistonWork reads ghost corner forces, so it must follow
	// FinishForces (it does in the synchronous schedule too).
	s.ExternalWork += -dt * s.pistonWork()

	// Ghost velocities travel while owned nodes move and interior
	// elements update geometry, density, energy and EOS.
	tm.Start(TimerComms)
	hooks.StartVelocities(s)
	tm.Stop(TimerComms)

	tm.Start(TimerGetGeom)
	s.MoveNodes(dt, s.UBar, s.VBar, 0, m.NOwnNd)
	s.VolList(b.IntEls)
	tm.Stop(TimerGetGeom)

	tm.Start(TimerGetRho)
	s.RhoList(b.IntEls)
	tm.Stop(TimerGetRho)

	tm.Start(TimerGetEin)
	fl := s.EinList(dt, s.UBar, s.VBar, b.IntEls)
	tm.Stop(TimerGetEin)

	tm.Start(TimerGetPC)
	s.PCList(b.IntEls)
	tm.Stop(TimerGetPC)

	tm.Start(TimerComms)
	hooks.FinishVelocities(s)
	tm.Stop(TimerComms)

	tm.Start(TimerGetGeom)
	s.MoveNodes(dt, s.UBar, s.VBar, m.NOwnNd, m.NNd)
	s.VolList(b.BndEls)
	err := s.scanTangled(0, nel)
	tm.Stop(TimerGetGeom)
	if err != nil {
		return err
	}

	tm.Start(TimerGetRho)
	s.RhoList(b.BndEls)
	tm.Stop(TimerGetRho)

	tm.Start(TimerGetEin)
	fl += s.EinList(dt, s.UBar, s.VBar, b.BndEls)
	tm.Stop(TimerGetEin)
	s.FloorEnergy += fl

	tm.Start(TimerGetPC)
	s.PCList(b.BndEls)
	tm.Stop(TimerGetPC)
	return nil
}

// pistonWork returns the rate of work the gas does on prescribed-
// velocity nodes — pistons and frozen far-field inflow — (negated by
// the caller to get energy injected).
func (s *State) pistonWork() float64 {
	m := s.Mesh
	var w float64
	for n := 0; n < m.NOwnNd; n++ {
		bc := m.BCs[n]
		if bc&(mesh.Piston|mesh.FrozenVel) == 0 {
			continue
		}
		var fx, fy float64
		for _, ci := range s.ndSlots[m.NdElStart[n]:m.NdElStart[n+1]] {
			fx += s.FX[ci]
			fy += s.FY[ci]
		}
		w += fx*s.UBar[n] + fy*s.VBar[n]
	}
	return w
}
