package hydro

import (
	"bookleaf/internal/mesh"
	"bookleaf/internal/timers"
)

// Hooks are the distributed-memory extension points of the Lagrangian
// step. They sit exactly where the paper places BookLeaf's
// communications: one global reduction for the timestep, one halo
// exchange immediately before the acceleration calculation (ghost
// corner forces), and one refreshing ghost nodal kinematics that
// services the next viscosity calculation. Nil hooks (or nil fields)
// give serial behaviour.
type Hooks struct {
	// ReduceDt globally reduces the local stable timestep with MINLOC
	// semantics over the controlling element id.
	ReduceDt func(dt float64, elem int) (float64, int)
	// ExchangeForces refreshes ghost-element corner forces (FX, FY)
	// before the acceleration scatter.
	ExchangeForces func(s *State)
	// ExchangeVelocities refreshes ghost-node U, V, UBar, VBar after
	// the acceleration update.
	ExchangeVelocities func(s *State)
}

// Kernel timer names, matching the paper's Table II breakdown.
const (
	TimerGetDt    = "getdt"
	TimerGetQ     = "getq"
	TimerGetForce = "getforce"
	TimerGetAcc   = "getacc"
	TimerGetGeom  = "getgeom"
	TimerGetRho   = "getrho"
	TimerGetEin   = "getein"
	TimerGetPC    = "getpc"
	TimerComms    = "comms"
	TimerALE      = "alestep"
)

// Step advances the state by one Lagrangian predictor-corrector step,
// accumulating per-kernel times into tm (a nil *timers.Set discards
// them). It returns the timestep taken. Steady-state steps perform no
// heap allocations (see kernelBodies), a property the AllocsPerRun
// regression tests pin down.
func (s *State) Step(tm *timers.Set, hooks *Hooks) (float64, error) {
	nel := s.Mesh.NOwnEl

	// Timestep: the paper's Algorithm 1 skips GETDT on the first step.
	var dt float64
	var controller int
	if s.StepCount == 0 {
		dt, controller = s.Opt.DtInitial, -1
		s.DtCause = DtCauseInitial
	} else {
		tm.Start(TimerGetDt)
		dt, controller = s.GetDt()
		tm.Stop(TimerGetDt)
	}
	if hooks != nil && hooks.ReduceDt != nil {
		tm.Start(TimerComms)
		dt, controller = hooks.ReduceDt(dt, controller)
		tm.Stop(TimerComms)
	}
	if dt < s.Opt.DtMin {
		return 0, &ErrDtCollapse{Dt: dt, Element: controller}
	}

	// Save start-of-step state.
	copy(s.X0, s.X)
	copy(s.Y0, s.Y)
	copy(s.U0, s.U)
	copy(s.V0, s.V)
	copy(s.Ein0, s.Ein)

	// --- Predictor: evolve to the half step with start-of-step
	// velocities (no acceleration, per Algorithm 1).
	tm.Start(TimerGetQ)
	s.GetQ(0, nel)
	tm.Stop(TimerGetQ)

	tm.Start(TimerGetForce)
	s.GetForce(0, nel, s.U0, s.V0)
	tm.Stop(TimerGetForce)

	tm.Start(TimerGetGeom)
	err := s.GetGeom(0.5*dt, s.U0, s.V0, 0, nel)
	tm.Stop(TimerGetGeom)
	if err != nil {
		return 0, err
	}

	tm.Start(TimerGetRho)
	s.GetRho(0, nel)
	tm.Stop(TimerGetRho)

	tm.Start(TimerGetEin)
	s.GetEin(0.5*dt, s.U0, s.V0, 0, nel) // half-step floor is transient
	tm.Stop(TimerGetEin)

	tm.Start(TimerGetPC)
	s.GetPC(0, nel)
	tm.Stop(TimerGetPC)

	// --- Corrector: forces from the half-step state, acceleration,
	// time-centred geometry and energy.
	tm.Start(TimerGetQ)
	s.GetQ(0, nel)
	tm.Stop(TimerGetQ)

	tm.Start(TimerGetForce)
	s.GetForce(0, nel, s.U0, s.V0)
	tm.Stop(TimerGetForce)

	if hooks != nil && hooks.ExchangeForces != nil {
		tm.Start(TimerComms)
		hooks.ExchangeForces(s)
		tm.Stop(TimerComms)
	}

	tm.Start(TimerGetAcc)
	s.GetAcc(dt)
	tm.Stop(TimerGetAcc)
	s.ExternalWork += -dt * s.pistonWork()

	if hooks != nil && hooks.ExchangeVelocities != nil {
		tm.Start(TimerComms)
		hooks.ExchangeVelocities(s)
		tm.Stop(TimerComms)
	}

	tm.Start(TimerGetGeom)
	err = s.GetGeom(dt, s.UBar, s.VBar, 0, nel)
	tm.Stop(TimerGetGeom)
	if err != nil {
		return 0, err
	}

	tm.Start(TimerGetRho)
	s.GetRho(0, nel)
	tm.Stop(TimerGetRho)

	tm.Start(TimerGetEin)
	s.FloorEnergy += s.GetEin(dt, s.UBar, s.VBar, 0, nel)
	tm.Stop(TimerGetEin)

	tm.Start(TimerGetPC)
	s.GetPC(0, nel)
	tm.Stop(TimerGetPC)

	s.Time += dt
	s.DtPrev = dt
	s.StepCount++
	return dt, nil
}

// pistonWork returns the rate of work the gas does on prescribed-
// velocity nodes — pistons and frozen far-field inflow — (negated by
// the caller to get energy injected).
func (s *State) pistonWork() float64 {
	m := s.Mesh
	var w float64
	for n := 0; n < m.NOwnNd; n++ {
		bc := m.BCs[n]
		if bc&(mesh.Piston|mesh.FrozenVel) == 0 {
			continue
		}
		var fx, fy float64
		for _, ci := range m.NdCorner[m.NdElStart[n]:m.NdElStart[n+1]] {
			fx += s.FX[ci]
			fy += s.FY[ci]
		}
		w += fx*s.UBar[n] + fy*s.VBar[n]
	}
	return w
}
