package hydro

import (
	"errors"
	"math"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/mesh"
	"bookleaf/internal/par"
	"bookleaf/internal/timers"
)

func boxMesh(t testing.TB, nx, ny int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Rect(mesh.RectSpec{NX: nx, NY: ny, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func uniformState(t testing.TB, m *mesh.Mesh, rho, ein float64, hg HourglassControl) *State {
	t.Helper()
	g, err := eos.NewIdealGas(1.4)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(g)
	opt.Hourglass = hg
	rhoA := make([]float64, m.NEl)
	einA := make([]float64, m.NEl)
	for e := range rhoA {
		rhoA[e] = rho
		einA[e] = ein
	}
	s, err := NewState(m, opt, rhoA, einA)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStateMassesConsistent(t *testing.T) {
	m := boxMesh(t, 4, 4)
	s := uniformState(t, m, 2.0, 1.0, HGSubzonal)
	if tm := s.TotalMass(); math.Abs(tm-2.0) > 1e-12 {
		t.Fatalf("total mass = %v, want 2", tm)
	}
	// Nodal masses sum to total mass.
	var nd float64
	for n := 0; n < m.NNd; n++ {
		nd += s.NdMass[n]
	}
	if math.Abs(nd-2.0) > 1e-12 {
		t.Fatalf("nodal mass total = %v, want 2", nd)
	}
	// Corner masses sum to element masses.
	for e := 0; e < m.NEl; e++ {
		var cm float64
		for k := 0; k < 4; k++ {
			cm += s.CMass[s.CornerStride()*e+k]
		}
		if math.Abs(cm-s.Mass[e]) > 1e-14 {
			t.Fatalf("element %d corner masses %v != mass %v", e, cm, s.Mass[e])
		}
	}
}

func TestNewStateValidation(t *testing.T) {
	m := boxMesh(t, 2, 2)
	g, _ := eos.NewIdealGas(1.4)
	opt := DefaultOptions(g)
	if _, err := NewState(m, opt, make([]float64, 3), make([]float64, m.NEl)); err == nil {
		t.Fatal("short rho accepted")
	}
	bad := make([]float64, m.NEl)
	if _, err := NewState(m, opt, bad, bad); err == nil {
		t.Fatal("zero density accepted")
	}
	// Region without material.
	rho := []float64{1, 1, 1, 1}
	m.Region[2] = 3
	if _, err := NewState(m, opt, rho, rho); err == nil {
		t.Fatal("missing material accepted")
	}
}

func TestOptionsValidate(t *testing.T) {
	g, _ := eos.NewIdealGas(1.4)
	opt := DefaultOptions(g)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := opt
	bad.CFL = 0
	if bad.Validate() == nil {
		t.Fatal("CFL=0 accepted")
	}
	bad = opt
	bad.DtGrowth = 0.5
	if bad.Validate() == nil {
		t.Fatal("DtGrowth<1 accepted")
	}
	bad = opt
	bad.Materials = nil
	if bad.Validate() == nil {
		t.Fatal("no materials accepted")
	}
}

func TestUniformGasStaysAtRest(t *testing.T) {
	m := boxMesh(t, 6, 6)
	s := uniformState(t, m, 1.0, 2.0, HGSubzonal)
	tm := timers.NewSet()
	for i := 0; i < 20; i++ {
		if _, err := s.Step(tm, nil); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < m.NNd; n++ {
		if math.Abs(s.U[n]) > 1e-12 || math.Abs(s.V[n]) > 1e-12 {
			t.Fatalf("node %d moved: u=(%v,%v)", n, s.U[n], s.V[n])
		}
	}
	for e := 0; e < m.NEl; e++ {
		if math.Abs(s.Rho[e]-1) > 1e-12 || math.Abs(s.Ein[e]-2) > 1e-12 {
			t.Fatalf("element %d drifted: rho=%v ein=%v", e, s.Rho[e], s.Ein[e])
		}
	}
}

func TestQZeroForUniformTranslationAndPositiveForCompression(t *testing.T) {
	m := boxMesh(t, 4, 4)
	s := uniformState(t, m, 1, 1, HGNone)
	// Uniform translation: no velocity differences, q must vanish.
	for n := range s.U {
		s.U[n] = 0.3
		s.V[n] = -0.2
	}
	s.GetQ(0, m.NEl)
	for e := 0; e < m.NEl; e++ {
		if s.Q[e] != 0 {
			t.Fatalf("translation q[%d] = %v, want 0", e, s.Q[e])
		}
	}
	// Uniform compression towards the centre: q must be positive.
	for n := range s.U {
		s.U[n] = -(s.X[n] - 0.5)
		s.V[n] = -(s.Y[n] - 0.5)
	}
	s.GetQ(0, m.NEl)
	pos := 0
	for e := 0; e < m.NEl; e++ {
		if s.Q[e] < 0 {
			t.Fatalf("q[%d] = %v negative", e, s.Q[e])
		}
		if s.Q[e] > 0 {
			pos++
		}
	}
	if pos == 0 {
		t.Fatal("no element produced viscosity under compression")
	}
}

func TestQZeroForUniformExpansion(t *testing.T) {
	m := boxMesh(t, 4, 4)
	s := uniformState(t, m, 1, 1, HGNone)
	for n := range s.U {
		s.U[n] = s.X[n] - 0.5
		s.V[n] = s.Y[n] - 0.5
	}
	s.GetQ(0, m.NEl)
	for e := 0; e < m.NEl; e++ {
		if s.Q[e] != 0 {
			t.Fatalf("expansion q[%d] = %v, want 0", e, s.Q[e])
		}
	}
}

func TestForcesBalancePerElement(t *testing.T) {
	// Corner forces of every element must sum to zero (momentum
	// conservation), for every hourglass scheme, even on perturbed
	// meshes with velocity noise.
	for _, hg := range []HourglassControl{HGNone, HGFilter, HGSubzonal} {
		m := boxMesh(t, 5, 5)
		// Perturb interior nodes deterministically.
		for n := 0; n < m.NNd; n++ {
			if m.BCs[n] == mesh.BCNone {
				m.X[n] += 0.02 * math.Sin(float64(7*n))
				m.Y[n] += 0.02 * math.Cos(float64(3*n))
			}
		}
		s := uniformState(t, m, 1, 1, hg)
		for n := range s.U {
			s.U[n] = 0.1 * math.Sin(float64(5*n))
			s.V[n] = 0.1 * math.Cos(float64(11*n))
		}
		copy(s.U0, s.U)
		copy(s.V0, s.V)
		s.GetQ(0, m.NEl)
		s.GetForce(0, m.NEl, s.U0, s.V0)
		for e := 0; e < m.NEl; e++ {
			var fx, fy float64
			for k := 0; k < 4; k++ {
				fx += s.FX[s.CornerStride()*e+k]
				fy += s.FY[s.CornerStride()*e+k]
			}
			if math.Abs(fx) > 1e-12 || math.Abs(fy) > 1e-12 {
				t.Fatalf("hg=%v element %d net force (%v,%v)", hg, e, fx, fy)
			}
		}
	}
}

func TestPressureForcePushesOutward(t *testing.T) {
	// A single high-pressure element in a cold surround: its corner
	// forces should point away from its centre.
	m := boxMesh(t, 3, 3)
	s := uniformState(t, m, 1, 0.001, HGNone)
	centre := 4 // middle element of 3x3
	s.Ein[centre] = 10
	s.GetPC(0, m.NEl)
	s.GetForce(0, m.NEl, s.U0, s.V0)
	var x, y [4]float64
	s.gatherCoords(centre, &x, &y)
	cx := 0.25 * (x[0] + x[1] + x[2] + x[3])
	cy := 0.25 * (y[0] + y[1] + y[2] + y[3])
	for k := 0; k < 4; k++ {
		rx := x[k] - cx
		ry := y[k] - cy
		dot := rx*s.FX[s.CornerStride()*centre+k] + ry*s.FY[s.CornerStride()*centre+k]
		if dot <= 0 {
			t.Fatalf("corner %d force not outward (dot=%v)", k, dot)
		}
	}
}

func TestEnergyConservationLagrangian(t *testing.T) {
	// Gas with an off-centre hot spot in a reflective box: total
	// energy must be conserved to round-off by the compatible update.
	for _, hg := range []HourglassControl{HGNone, HGFilter, HGSubzonal} {
		m := boxMesh(t, 8, 8)
		g, _ := eos.NewIdealGas(1.4)
		opt := DefaultOptions(g)
		opt.Hourglass = hg
		rho := make([]float64, m.NEl)
		ein := make([]float64, m.NEl)
		for e := range rho {
			rho[e] = 1
			ein[e] = 0.1
		}
		ein[9] = 5 // hot spot
		s, err := NewState(m, opt, rho, ein)
		if err != nil {
			t.Fatal(err)
		}
		e0 := s.TotalEnergy()
		for i := 0; i < 60; i++ {
			if _, err := s.Step(nil, nil); err != nil {
				t.Fatalf("hg=%v step %d: %v", hg, i, err)
			}
		}
		drift := math.Abs(s.TotalEnergy()-e0) / e0
		if drift > 1e-11 {
			t.Fatalf("hg=%v energy drift %v", hg, drift)
		}
		if s.Time <= 0 {
			t.Fatal("time did not advance")
		}
	}
}

func TestMassExactlyConserved(t *testing.T) {
	m := boxMesh(t, 6, 6)
	s := uniformState(t, m, 1, 1, HGSubzonal)
	s.Ein[10] = 4
	s.GetPC(0, m.NEl)
	m0 := s.TotalMass()
	for i := 0; i < 40; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.TotalMass() != m0 {
		t.Fatalf("mass changed: %v -> %v", m0, s.TotalMass())
	}
	// Density * volume must reproduce mass exactly per element.
	for e := 0; e < m.NEl; e++ {
		if math.Abs(s.Rho[e]*s.Vol[e]-s.Mass[e]) > 1e-14*s.Mass[e] {
			t.Fatalf("element %d rho*vol != mass", e)
		}
	}
}

func TestSymmetryPreserved(t *testing.T) {
	// A centred hot spot on a symmetric mesh must evolve with exact
	// left-right mirror symmetry.
	m := boxMesh(t, 6, 6)
	g, _ := eos.NewIdealGas(1.4)
	opt := DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 0.1
	}
	// Hot 2x2 block in the centre (elements at rows 2-3, cols 2-3).
	for _, e := range []int{14, 15, 20, 21} {
		ein[e] = 3
	}
	s, err := NewState(m, opt, rho, ein)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Mirror element: row j, col i <-> col 5-i.
	for j := 0; j < 6; j++ {
		for i := 0; i < 3; i++ {
			a := j*6 + i
			b := j*6 + (5 - i)
			if math.Abs(s.Rho[a]-s.Rho[b]) > 1e-9 {
				t.Fatalf("density symmetry broken: rho[%d]=%v rho[%d]=%v", a, s.Rho[a], b, s.Rho[b])
			}
		}
	}
}

func TestScatterAccMatchesGather(t *testing.T) {
	mk := func(scatter bool) *State {
		m := boxMesh(t, 5, 5)
		g, _ := eos.NewIdealGas(1.4)
		opt := DefaultOptions(g)
		opt.ScatterAcc = scatter
		rho := make([]float64, m.NEl)
		ein := make([]float64, m.NEl)
		for e := range rho {
			rho[e] = 1
			ein[e] = 0.1 + 0.01*float64(e%7)
		}
		s, err := NewState(m, opt, rho, ein)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(false), mk(true)
	for i := 0; i < 10; i++ {
		if _, err := a.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for n := range a.U {
		if a.U[n] != b.U[n] || a.V[n] != b.V[n] {
			t.Fatalf("gather/scatter acceleration differ at node %d", n)
		}
	}
}

func TestThreadedStepBitwiseMatchesSerial(t *testing.T) {
	mk := func(threads int) *State {
		m := boxMesh(t, 8, 8)
		g, _ := eos.NewIdealGas(1.4)
		opt := DefaultOptions(g)
		rho := make([]float64, m.NEl)
		ein := make([]float64, m.NEl)
		for e := range rho {
			rho[e] = 1
			ein[e] = 0.1 + 0.02*float64(e%5)
		}
		s, err := NewState(m, opt, rho, ein)
		if err != nil {
			t.Fatal(err)
		}
		s.Pool = par.New(threads)
		return s
	}
	a, b := mk(1), mk(4)
	for i := 0; i < 15; i++ {
		da, err := a.Step(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Step(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatalf("step %d: dt differs %v vs %v", i, da, db)
		}
	}
	for e := range a.Rho {
		if a.Rho[e] != b.Rho[e] || a.Ein[e] != b.Ein[e] {
			t.Fatalf("threaded result differs at element %d", e)
		}
	}
}

func TestPistonEnergyAudit(t *testing.T) {
	// Left wall pushes into the gas: total energy minus injected work
	// must be constant.
	m, err := mesh.Rect(mesh.RectSpec{
		NX: 20, NY: 4, X0: 0, X1: 1, Y0: 0, Y1: 0.2,
		Walls: mesh.WallSpec{Left: mesh.Piston, Right: mesh.FixU, Bottom: mesh.FixV, Top: mesh.FixV},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := eos.NewIdealGas(5.0 / 3.0)
	opt := DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 1e-6
	}
	s, err := NewState(m, opt, rho, ein)
	if err != nil {
		t.Fatal(err)
	}
	s.PistonU = 1
	for n := 0; n < m.NNd; n++ {
		if m.BCs[n]&mesh.Piston != 0 {
			s.U[n] = 1
		}
	}
	e0 := s.TotalEnergy()
	for i := 0; i < 200; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
		if s.Time > 0.2 {
			break
		}
	}
	if s.ExternalWork <= 0 {
		t.Fatalf("piston injected no work: %v", s.ExternalWork)
	}
	balance := math.Abs(s.TotalEnergy() - e0 - s.ExternalWork)
	if balance > 1e-10*(e0+s.ExternalWork) {
		t.Fatalf("energy audit off by %v (E=%v W=%v)", balance, s.TotalEnergy(), s.ExternalWork)
	}
}

func TestDtGrowthCapAndFirstStep(t *testing.T) {
	m := boxMesh(t, 4, 4)
	s := uniformState(t, m, 1, 1, HGSubzonal)
	dt0, err := s.Step(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dt0 != s.Opt.DtInitial {
		t.Fatalf("first dt = %v, want DtInitial %v", dt0, s.Opt.DtInitial)
	}
	dt1, err := s.Step(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dt1 > s.Opt.DtGrowth*dt0+1e-18 {
		t.Fatalf("dt grew too fast: %v after %v", dt1, dt0)
	}
}

func TestDtCollapseReported(t *testing.T) {
	m := boxMesh(t, 4, 4)
	s := uniformState(t, m, 1, 1, HGSubzonal)
	s.Opt.DtMin = 1 // impossible to satisfy
	s.StepCount = 1 // force a GetDt call
	_, err := s.Step(nil, nil)
	var collapse *ErrDtCollapse
	if !errors.As(err, &collapse) {
		t.Fatalf("expected ErrDtCollapse, got %v", err)
	}
}

func TestTangledMeshReported(t *testing.T) {
	m := boxMesh(t, 3, 3)
	s := uniformState(t, m, 1, 1, HGNone)
	// A huge prescribed velocity on one interior node tangles the mesh
	// within one step.
	for n := 0; n < m.NNd; n++ {
		if m.BCs[n] == mesh.BCNone {
			s.U[n] = 1e6
			break
		}
	}
	var tangled *ErrTangled
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		_, err = s.Step(nil, nil)
	}
	if !errors.As(err, &tangled) {
		t.Fatalf("expected ErrTangled, got %v", err)
	}
}

func TestGetDtControllerIsSmallestCell(t *testing.T) {
	// Refine one region by shrinking... instead: raise sound speed of
	// one element so it controls the CFL limit.
	m := boxMesh(t, 4, 4)
	s := uniformState(t, m, 1, 1, HGNone)
	s.Ein[7] = 100
	s.GetPC(0, m.NEl)
	s.DtPrev = 1 // avoid growth cap masking the CFL result
	dt, ctrl := s.GetDt()
	if ctrl != 7 {
		t.Fatalf("controller = %d, want 7", ctrl)
	}
	if dt <= 0 || dt >= 1 {
		t.Fatalf("dt = %v out of range", dt)
	}
}

func TestHooksAreInvoked(t *testing.T) {
	m := boxMesh(t, 3, 3)
	s := uniformState(t, m, 1, 1, HGNone)
	var reduced, forces, vels int
	hooks := &Hooks{
		ReduceDt: func(dt float64, e int) (float64, int) {
			reduced++
			return dt, e
		},
		ExchangeForces:     func(*State) { forces++ },
		ExchangeVelocities: func(*State) { vels++ },
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Step(nil, hooks); err != nil {
			t.Fatal(err)
		}
	}
	if reduced != 3 || forces != 3 || vels != 3 {
		t.Fatalf("hook calls = (%d,%d,%d), want (3,3,3)", reduced, forces, vels)
	}
}

func TestTimersPopulated(t *testing.T) {
	// The fused schedule reports merged kernels under merged names; the
	// unfused ablation keeps the paper's Table II breakdown.
	cases := []struct {
		name   string
		fuse   bool
		timers []string
	}{
		{"fused", true, []string{TimerQForce, TimerLagUpdate, TimerGetAcc}},
		{"unfused", false, []string{TimerGetQ, TimerGetForce, TimerGetAcc, TimerGetGeom, TimerGetRho, TimerGetEin, TimerGetPC}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := boxMesh(t, 4, 4)
			s := uniformState(t, m, 1, 1, HGSubzonal)
			s.Opt.Fuse = tc.fuse
			tm := timers.NewSet()
			for i := 0; i < 3; i++ {
				if _, err := s.Step(tm, nil); err != nil {
					t.Fatal(err)
				}
			}
			for _, name := range tc.timers {
				if tm.Count(name) == 0 {
					t.Fatalf("timer %q never recorded", name)
				}
			}
			// getdt skipped on the first step only.
			if tm.Count(TimerGetDt) != 2 {
				t.Fatalf("getdt count = %d, want 2", tm.Count(TimerGetDt))
			}
		})
	}
}

func TestHourglassControlSuppressesModes(t *testing.T) {
	// Excite a pure hourglass velocity pattern on one element of a
	// mesh; with control enabled the pattern's kinetic energy must
	// decay faster than without.
	run := func(hg HourglassControl) float64 {
		m := boxMesh(t, 4, 4)
		s := uniformState(t, m, 1, 1, hg)
		// Alternate corner velocities on interior nodes (hourglass-like).
		for j := 0; j <= 4; j++ {
			for i := 0; i <= 4; i++ {
				n := j*5 + i
				if m.BCs[n] == mesh.BCNone {
					s.U[n] = 0.05 * float64(1-2*((i+j)%2))
				}
			}
		}
		for i := 0; i < 25; i++ {
			if _, err := s.Step(nil, nil); err != nil {
				t.Fatalf("hg=%v: %v", hg, err)
			}
		}
		return s.KineticEnergy()
	}
	keNone := run(HGNone)
	keFilter := run(HGFilter)
	keSub := run(HGSubzonal)
	if keFilter >= keNone {
		t.Fatalf("filter did not damp hourglass: %v >= %v", keFilter, keNone)
	}
	if keSub >= keNone {
		t.Fatalf("subzonal did not damp hourglass: %v >= %v", keSub, keNone)
	}
}

func TestHourglassStrings(t *testing.T) {
	if HGNone.String() != "none" || HGFilter.String() != "filter" || HGSubzonal.String() != "subzonal" {
		t.Fatal("hourglass names wrong")
	}
	if HourglassControl(42).String() == "" {
		t.Fatal("unknown hourglass name empty")
	}
}
