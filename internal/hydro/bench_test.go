package hydro

import (
	"fmt"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/mesh"
	"bookleaf/internal/par"
)

func benchState(b *testing.B, n, threads int) *State {
	return benchStateFuse(b, n, threads, true)
}

func benchStateFuse(b *testing.B, n, threads int, fuse bool) *State {
	b.Helper()
	m, err := mesh.Rect(mesh.RectSpec{NX: n, NY: n, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		b.Fatal(err)
	}
	g, _ := eos.NewIdealGas(1.4)
	opt := DefaultOptions(g)
	opt.Fuse = fuse
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 0.1 + 0.001*float64(e%13)
	}
	s, err := NewState(m, opt, rho, ein)
	if err != nil {
		b.Fatal(err)
	}
	s.Pool = par.New(threads)
	b.Cleanup(s.Pool.Close)
	// Develop a flow so kernels do real work.
	for n := range s.U {
		s.U[n] = -0.1 * (s.X[n] - 0.5)
		s.V[n] = -0.1 * (s.Y[n] - 0.5)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	copy(s.U0, s.U)
	copy(s.V0, s.V)
	copy(s.Ein0, s.Ein)
	copy(s.X0, s.X)
	copy(s.Y0, s.Y)
	return s
}

func BenchmarkGetQ(b *testing.B) {
	s := benchState(b, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GetQ(0, s.Mesh.NEl)
	}
}

func BenchmarkGetForcePerHourglass(b *testing.B) {
	for _, hg := range []HourglassControl{HGNone, HGFilter, HGSubzonal} {
		b.Run(hg.String(), func(b *testing.B) {
			s := benchState(b, 64, 1)
			s.Opt.Hourglass = hg
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.GetForce(0, s.Mesh.NEl, s.U0, s.V0)
			}
		})
	}
}

func BenchmarkGetAccScatterVsGather(b *testing.B) {
	for _, scatter := range []bool{true, false} {
		name := "gather"
		if scatter {
			name = "scatter"
		}
		b.Run(name, func(b *testing.B) {
			s := benchState(b, 64, 1)
			s.Opt.ScatterAcc = scatter
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.GetAcc(1e-7)
			}
		})
	}
}

// BenchmarkStepThreads measures the full Lagrangian step on a 120×120
// Noh-like converging flow across pool widths — the intra-rank scaling
// experiment. With the persistent pool and the gather-parallel
// acceleration every kernel in the step threads; speedup is then bounded
// only by the hardware (GOMAXPROCS / available cores).
func BenchmarkStepThreads(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			s := benchState(b, 120, threads)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Step(nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGetDt(b *testing.B) {
	s := benchState(b, 96, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GetDt()
	}
}

// BenchmarkStepFusion measures the whole Lagrangian step with the
// fused element passes on and off — the headline fused-vs-unfused
// delta EXPERIMENTS.md pairs with the roofline prediction
// (bleaf-tables -roofline). Both variants run the same arithmetic on
// bitwise-identical states, so the gap is pure scheduling and memory
// traffic.
func BenchmarkStepFusion(b *testing.B) {
	for _, fuse := range []bool{true, false} {
		name := "unfused"
		if fuse {
			name = "fused"
		}
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/threads-%d", name, threads), func(b *testing.B) {
				s := benchStateFuse(b, 120, threads, fuse)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Step(nil, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkQForceFusion isolates the q+force fusion: one merged sweep
// against the getq/getforce kernel pair over the same state.
func BenchmarkQForceFusion(b *testing.B) {
	b.Run("fused", func(b *testing.B) {
		s := benchStateFuse(b, 120, 1, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.GetQForce(0, s.Mesh.NEl, s.U0, s.V0)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		s := benchStateFuse(b, 120, 1, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.GetQ(0, s.Mesh.NEl)
			s.GetForce(0, s.Mesh.NEl, s.U0, s.V0)
		}
	})
}

// BenchmarkLagUpdateFusion isolates the vol→rho→ein→pc fusion. dt=0
// keeps the sweep idempotent across iterations while still paying the
// full gather, geometry, energy and EOS traffic.
func BenchmarkLagUpdateFusion(b *testing.B) {
	b.Run("fused", func(b *testing.B) {
		s := benchStateFuse(b, 120, 1, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.FusedUpdate(0, s.U0, s.V0, 0, s.Mesh.NEl); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unfused", func(b *testing.B) {
		s := benchStateFuse(b, 120, 1, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.GetGeom(0, s.U0, s.V0, 0, s.Mesh.NEl); err != nil {
				b.Fatal(err)
			}
			s.GetRho(0, s.Mesh.NEl)
			s.GetEin(0, s.U0, s.V0, 0, s.Mesh.NEl)
			s.GetPC(0, s.Mesh.NEl)
		}
	})
}

// BenchmarkDtReduceFusion isolates the timestep fusion: the paired
// CFL+divergence reduction in one sweep against two separate
// reductions over the same data.
func BenchmarkDtReduceFusion(b *testing.B) {
	for _, fuse := range []bool{true, false} {
		name := "unfused"
		if fuse {
			name = "fused"
		}
		b.Run(name, func(b *testing.B) {
			s := benchStateFuse(b, 120, 1, fuse)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.GetDt()
			}
		})
	}
}
