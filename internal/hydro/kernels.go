package hydro

import (
	"math"

	"bookleaf/internal/geom"
	"bookleaf/internal/mesh"
)

// kernelArgs is the scratch arena for the pre-bound kernel bodies: the
// per-call arguments a body needs are written here immediately before
// the pool dispatch that reads them, and are never read across steps.
// Keeping arguments in State fields (instead of closure captures) is
// what lets the bodies be created once, so steady-state steps allocate
// nothing — see kernelBodies.
type kernelArgs struct {
	// lo is the element offset of the current [lo, hi) kernel call;
	// bodies receive chunk-relative ranges and add it back.
	lo int
	// dt is the timestep operand of the acc/geom/ein bodies.
	dt float64
	// u, v are the nodal velocity operands of the force/geom/ein
	// bodies (U0 in the predictor, UBar in the corrector).
	u, v []float64
	// nlo is the node offset of the current move call; the move body
	// receives chunk-relative ranges and adds it back.
	nlo int
	// list is the index-list operand of the band-dispatch bodies used
	// by the overlapped schedule (see band.go).
	list []int
	// floors holds per-chunk floor-energy partials at stride
	// floorStride (cache-line padded); sized lazily to the pool width.
	floors []float64
}

// floorStride pads the per-chunk floor-energy partials to a cache line
// (8 float64s) so chunks never false-share.
const floorStride = 8

// kernelBodies holds the loop bodies dispatched to the pool. They are
// bound to the State once in NewState: a closure passed to Pool.For
// escapes to the heap, so creating bodies per call would allocate on
// every kernel invocation — pre-binding plus the kernelArgs arena is
// what makes the Lagrangian step zero-allocation at any thread count
// (asserted by the AllocsPerRun regression tests).
type kernelBodies struct {
	q, force, acc      func(lo, hi int)
	move, vol, rho, pc func(lo, hi int)
	ein                func(chunk, lo, hi int)
	cfl, div           func(e int) float64
	// List-dispatch twins of acc/vol/rho/pc/ein for the overlapped
	// schedule's interior/boundary bands (see band.go).
	accList, volList, rhoList, pcList func(lo, hi int)
	einList                           func(chunk, lo, hi int)
	// Fused-path bodies (see fused.go): the q+force sweep, the
	// vol→rho→ein→pc update sweep and its list twin (all dispatched
	// over the cache-tiled schedule), and the single-sweep operand of
	// the fused CFL/divergence timestep reduction.
	qforce, update, updateList func(chunk, lo, hi int)
	cflDiv                     func(e int) (float64, float64)
}

// bindKernels creates the pre-bound kernel bodies. Called once from
// NewState.
func (s *State) bindKernels() {
	s.kb.cfl = func(e int) float64 {
		var x, y [4]float64
		s.gatherCoords(e, &x, &y)
		l := geom.MinLength(&x, &y)
		sig2 := s.Csq[e] + 2*s.Q[e]/s.Rho[e]
		if sig2 <= 0 {
			return math.Inf(1)
		}
		return s.Opt.CFL * l / math.Sqrt(sig2)
	}
	s.kb.div = func(e int) float64 {
		var x, y, u, v [4]float64
		s.gatherCoords(e, &x, &y)
		s.gatherVel(e, s.U, s.V, &u, &v)
		d := math.Abs(geom.Divergence(&x, &y, &u, &v))
		if d == 0 {
			return math.Inf(1)
		}
		return s.Opt.DivSafety / d
	}
	// Fused CFL + divergence operand: one coordinate/velocity gather
	// feeds both conditions. Each component's expression matches its
	// unfused body exactly, so ReduceMin2 returns the same (min, argmin)
	// pairs as the two separate ReduceMin sweeps.
	s.kb.cflDiv = func(e int) (float64, float64) {
		var x, y, u, v [4]float64
		s.gatherCoords(e, &x, &y)
		s.gatherVel(e, s.U, s.V, &u, &v)
		l := geom.MinLength(&x, &y)
		sig2 := s.Csq[e] + 2*s.Q[e]/s.Rho[e]
		cfl := math.Inf(1)
		if sig2 > 0 {
			cfl = s.Opt.CFL * l / math.Sqrt(sig2)
		}
		d := math.Abs(geom.Divergence(&x, &y, &u, &v))
		div := math.Inf(1)
		if d != 0 {
			div = s.Opt.DivSafety / d
		}
		return cfl, div
	}
	s.kb.q = s.qBody
	s.kb.force = s.forceBody
	s.kb.acc = s.accBody
	s.kb.move = s.moveBody
	s.kb.vol = s.volBody
	s.kb.rho = s.rhoBody
	s.kb.pc = s.pcBody
	s.kb.ein = s.einBody
	s.kb.accList = s.accListBody
	s.kb.volList = s.volListBody
	s.kb.rhoList = s.rhoListBody
	s.kb.pcList = s.pcListBody
	s.kb.einList = s.einListBody
	s.kb.qforce = s.qforceBody
	s.kb.update = s.updateBody
	s.kb.updateList = s.updateListBody
}

// DtCause identifies which condition controlled the last GetDt result
// — the dt-controller dynamics the paper's evaluation tracks. The
// observability layer counts steps per cause.
type DtCause uint8

const (
	// DtCauseInitial is the prescribed first-step timestep.
	DtCauseInitial DtCause = iota
	// DtCauseCFL is the sound-speed (CFL) condition.
	DtCauseCFL
	// DtCauseDivergence is the volume-change (divergence) limit.
	DtCauseDivergence
	// DtCauseGrowth is the growth cap relative to the previous step.
	DtCauseGrowth
	// DtCauseMax is the absolute DtMax ceiling.
	DtCauseMax
)

// String returns the metric-friendly name of the cause.
func (c DtCause) String() string {
	switch c {
	case DtCauseInitial:
		return "initial"
	case DtCauseCFL:
		return "cfl"
	case DtCauseDivergence:
		return "divergence"
	case DtCauseGrowth:
		return "growth"
	case DtCauseMax:
		return "max"
	}
	return "unknown"
}

// GetDt computes the stable timestep over owned elements and the
// element controlling it. It applies, in order: the CFL sound-speed
// condition (with the viscosity correction 2q/rho in the signal speed),
// the volume-change (divergence) limit, the growth cap relative to the
// previous step, and DtMax. In a distributed run the caller reduces
// (dt, element) globally with MINLOC, exactly as the paper's single
// global reduction. The winning condition is left in s.DtCause (local
// to this rank; the global controller's cause lives on the rank that
// wins the MINLOC).
func (s *State) GetDt() (dt float64, controller int) {
	nel := s.Mesh.NOwnEl
	// CFL condition: dt_e = CFL * L / sqrt(c² + 2q/rho), and the
	// divergence condition dt_e = DivSafety / |div u| — each an
	// explicit parallel min-reduction (the expanded MINVAL/MINLOC loop
	// the paper describes). The fused path evaluates both conditions
	// from one coordinate/velocity gather per element (ReduceMin2);
	// the unfused ablation keeps the two separate sweeps.
	var cflMin, divMin float64
	var cflArg, divArg int
	if s.Opt.Fuse {
		cflMin, cflArg, divMin, divArg = s.Pool.ReduceMin2(nel, s.kb.cflDiv)
	} else {
		cflMin, cflArg = s.Pool.ReduceMin(nel, s.kb.cfl)
		divMin, divArg = s.Pool.ReduceMin(nel, s.kb.div)
	}
	dt, controller = cflMin, cflArg
	s.DtCause = DtCauseCFL
	if divMin < dt {
		dt, controller = divMin, divArg
		s.DtCause = DtCauseDivergence
	}
	if g := s.Opt.DtGrowth * s.DtPrev; g < dt {
		dt, controller = g, -1
		s.DtCause = DtCauseGrowth
	}
	if s.Opt.DtMax < dt {
		dt, controller = s.Opt.DtMax, -1
		s.DtCause = DtCauseMax
	}
	return dt, controller
}

// GetQ computes the edge-centred artificial viscosity of elements
// [lo, hi) following Caramana et al.: each compressive edge contributes
// a quadratic + linear term scaled by a monotonic limiter built from
// velocity-difference ratios against the neighbouring element across
// the edge and the element's own opposite edge. The element q is the
// mean of its edge contributions. This is the most expensive kernel in
// BookLeaf (~70% of flat-MPI runtime in the paper's Table II): per
// element it gathers two neighbour rings, takes square roots and
// evaluates limiters.
func (s *State) GetQ(lo, hi int) {
	s.ka.lo = lo
	s.Pool.For(hi-lo, s.kb.q)
}

func (s *State) qBody(plo, phi int) {
	m := s.Mesh
	cq1, cq2 := s.Opt.CQ1, s.Opt.CQ2
	lo := s.ka.lo
	f32 := s.Opt.Float32Aux
	stride := s.cs
	var x, y, u, v [4]float64
	for e := lo + plo; e < lo+phi; e++ {
		s.gatherCoords(e, &x, &y)
		s.gatherVel(e, s.U, s.V, &u, &v)
		rho := s.Rho[e]
		cs := math.Sqrt(s.Csq[e])
		base := stride * e
		var qsum float64
		for k := 0; k < 4; k++ {
			kp := (k + 1) & 3
			dux := u[kp] - u[k]
			duy := v[kp] - v[k]
			dxx := x[kp] - x[k]
			dxy := y[kp] - y[k]
			// Only compressive edges (shortening) contribute.
			if dux*dxx+duy*dxy >= 0 {
				s.putQEdge(base+k, 0, f32)
				continue
			}
			du2 := dux*dux + duy*duy
			if du2 == 0 {
				s.putQEdge(base+k, 0, f32)
				continue
			}
			du := math.Sqrt(du2)
			// Limiter: ratios of the projections of the
			// cross-edge velocity differences onto this edge's,
			// from (a) the neighbour across this edge and (b)
			// this element's own opposite edge. Smooth fields
			// give ratios near 1 (q off); extrema give negative
			// ratios (full q). At boundaries only the one-sided
			// (own-edge) ratio is available — using it keeps
			// smoothly compressing boundary cells viscosity-free
			// (a hard zero there seeds spurious boundary jets in
			// cold converging flow).
			// Own opposite edge, negated for orientation.
			ko2 := (k + 2) & 3
			ko2p := (ko2 + 1) & 3
			odux := -(u[ko2p] - u[ko2])
			oduy := -(v[ko2p] - v[ko2])
			r := (odux*dux + oduy*duy) / du2
			if nb := m.ElEl[e][k]; nb >= 0 {
				// Neighbour's matching edge: the side of nb
				// facing e, traversed in nb's CCW order, runs
				// opposite to ours; its opposite edge (k'+2)
				// runs parallel to ours again after negation. The
				// side comes from the precomputed facing table
				// (static topology), and only the two nodes of
				// that edge are loaded — the limiter never needs
				// the neighbour's other corners.
				kk := int(s.facing[4*e+k])
				if kk < 0 {
					// Asymmetric adjacency on an owned element
					// would be a partitioning bug.
					panic("hydro: element adjacency not symmetric")
				}
				ko := (kk + 2) & 3
				kop := (ko + 1) & 3
				nbnd := &m.ElNd[nb]
				ndux := -(s.U[nbnd[kop]] - s.U[nbnd[ko]])
				nduy := -(s.V[nbnd[kop]] - s.V[nbnd[ko]])
				rNb := (ndux*dux + nduy*duy) / du2
				r = min(rNb, r)
			}
			psi := 0.0
			if r > 0 {
				psi = min(1.0, r)
			}
			qEdge := (1 - psi) * rho * (cq2*du2 + cq1*cs*du)
			qsum += qEdge
			// Damper coefficient: force = QEdge * Δu along the
			// edge pair, i.e. an edge pressure q acting over the
			// edge length.
			edgeLen := math.Sqrt(dxx*dxx + dxy*dxy)
			s.putQEdge(base+k, qEdge*edgeLen/du, f32)
		}
		s.Q[e] = 0.25 * qsum
	}
}

// putQEdge stores an edge damper coefficient into the active QEdge
// stream — the float32 shadow under the Float32Aux ablation (f32),
// the float64 array otherwise. The flag is passed in so callers hoist
// the Options load out of their loops.
func (s *State) putQEdge(i int, v float64, f32 bool) {
	if f32 {
		s.qedge32[i] = float32(v)
	} else {
		s.QEdge[i] = v
	}
}

// getQEdge loads an edge damper coefficient from the active stream.
func (s *State) getQEdge(i int, f32 bool) float64 {
	if f32 {
		return float64(s.qedge32[i])
	}
	return s.QEdge[i]
}

// GetForce assembles corner forces for elements [lo, hi): the
// compatible pressure + viscosity force (P+q)·∇A plus the selected
// hourglass-control force. uArr, vArr supply the velocity field the
// hourglass terms act on.
func (s *State) GetForce(lo, hi int, uArr, vArr []float64) {
	s.ka.lo = lo
	s.ka.u, s.ka.v = uArr, vArr
	s.Pool.For(hi-lo, s.kb.force)
}

func (s *State) forceBody(plo, phi int) {
	lo := s.ka.lo
	uArr, vArr := s.ka.u, s.ka.v
	f32 := s.Opt.Float32Aux
	stride := s.cs
	// Only the edge-damper ablation and the hourglass filter act on
	// nodal velocities; the default sub-zonal path never reads them, so
	// the gather is skipped (values are unchanged either way).
	needVel := s.Opt.EdgeQForces || s.Opt.Hourglass == HGFilter
	var x, y, u, v [4]float64
	var ax, ay [4]float64
	for e := lo + plo; e < lo+phi; e++ {
		s.gatherCoords(e, &x, &y)
		geom.BasisGrad(&x, &y, &ax, &ay)
		pq := s.P[e] + s.Q[e]
		base := stride * e
		for k := 0; k < 4; k++ {
			s.FX[base+k] = pq * ax[k]
			s.FY[base+k] = pq * ay[k]
		}
		if needVel {
			s.gatherVel(e, uArr, vArr, &u, &v)
		}
		if s.Opt.EdgeQForces {
			// Ablation: apply the viscosity as equal-and-opposite
			// dampers along each compressing edge instead of the
			// isotropic contribution above (subtract it back).
			for k := 0; k < 4; k++ {
				s.FX[base+k] -= s.Q[e] * ax[k]
				s.FY[base+k] -= s.Q[e] * ay[k]
			}
			for k := 0; k < 4; k++ {
				kappa := s.getQEdge(base+k, f32)
				if kappa == 0 {
					continue
				}
				kp := (k + 1) & 3
				fx := kappa * (u[kp] - u[k])
				fy := kappa * (v[kp] - v[k])
				s.FX[base+k] += fx
				s.FY[base+k] += fy
				s.FX[base+kp] -= fx
				s.FY[base+kp] -= fy
			}
		}
		switch s.Opt.Hourglass {
		case HGFilter:
			// Hancock-style viscous filter: damp the velocity
			// component along the hourglass pattern Γ.
			var hu, hv float64
			for k := 0; k < 4; k++ {
				hu += geom.HourglassVector[k] * u[k]
				hv += geom.HourglassVector[k] * v[k]
			}
			hu *= 0.25
			hv *= 0.25
			area := s.Vol[e]
			coef := s.Opt.HGKappa * s.Rho[e] * (math.Sqrt(s.Csq[e]) + math.Sqrt(hu*hu+hv*hv)) * math.Sqrt(area)
			for k := 0; k < 4; k++ {
				s.FX[base+k] -= coef * hu * geom.HourglassVector[k]
				s.FY[base+k] -= coef * hv * geom.HourglassVector[k]
			}
		case HGSubzonal:
			s.subzonalForce(e, &x, &y, s.Rho[e], s.Csq[e], s.Q[e], f32)
		}
	}
}

// subzonalForce adds the Caramana sub-zonal pressure forces of element
// e to its corner forces: each corner carries a pressure perturbation
// dp = c²·(ρ_corner - ρ) from its fixed sub-zonal mass and current
// sub-zone volume, and exerts dp·∇(sub-zone volume) on every node of
// the element — the exact force of Caramana & Shashkov's formulation,
// which resists hourglass and sliver distortions that leave the total
// element volume unchanged. Momentum conserving by construction (each
// ∇ sums to zero over nodes).
//
// Shared by the unfused forceBody and the fused qforceBody so the two
// paths provably run identical floating-point sequences. The sub-zone
// quad's basis gradients are expanded algebraically: for the quad
// (node k, edge-k midpoint, centroid, edge-(k-1) midpoint) the four
// ∂A/∂ values collapse onto ±two independent components per axis
// (negation and power-of-two scaling are exact in IEEE, so the
// expansion is bit-identical to calling geom.BasisGrad on the
// constructed quad), and the chain-rule weights — midpoints couple to
// their two edge nodes with 1/2, the centroid to all four with 1/4 —
// fold into four fused per-corner updates.
func (s *State) subzonalForce(e int, x, y *[4]float64, rho, csq, q float64, f32 bool) {
	base := s.cs * e
	cx, cy := geom.Centroid(x, y)
	var mx, my [4]float64
	for k := 0; k < 4; k++ {
		kp := (k + 1) & 3
		mx[k] = 0.5 * (x[k] + x[kp])
		my[k] = 0.5 * (y[k] + y[kp])
	}
	// Floor crushed corners: a corner at (or through) zero volume
	// feels the maximal restoring pressure.
	svFloor := 0.01 * s.Vol[e]
	// Stiffness scales with the full signal speed — including the
	// viscous 2q/ρ term — so sub-zonal pressures keep restoring shape
	// in cold shocked gas where the bare sound speed vanishes.
	sig2 := csq + 2*q/rho
	for k := 0; k < 4; k++ {
		km := (k + 3) & 3
		// Sub-zone area by the same shoelace expression
		// geom.SubVolumes evaluates on the constructed quad.
		svk := 0.5 * ((cx-x[k])*(my[km]-my[k]) - (mx[km]-mx[k])*(cy-y[k]))
		if svk < svFloor {
			svk = svFloor
		}
		cm := s.CMass[base+k]
		if f32 {
			cm = float64(s.cmass32[base+k])
		}
		dp := s.Opt.HGSubMerit * sig2 * (cm/svk - rho)
		if dp == 0 {
			continue
		}
		kp := (k + 1) & 3
		ko := (k + 2) & 3
		// Independent basis components: bx0/by0 belong to node k's
		// own ∂, bx1/by1 to the centroid direction; the other two
		// quad gradients are their exact negations.
		bx0 := 0.5 * (my[k] - my[km])
		by0 := 0.5 * (mx[km] - mx[k])
		bx1 := 0.5 * (cy - y[k])
		by1 := 0.5 * (x[k] - cx)
		s.FX[base+k] += dp * (bx0 - 0.25*bx0)
		s.FY[base+k] += dp * (by0 - 0.25*by0)
		s.FX[base+kp] += dp * (0.5*bx1 - 0.25*bx0)
		s.FY[base+kp] += dp * (0.5*by1 - 0.25*by0)
		s.FX[base+km] += dp * (-0.5*bx1 - 0.25*bx0)
		s.FY[base+km] += dp * (-0.5*by1 - 0.25*by0)
		s.FX[base+ko] -= dp * 0.25 * bx0
		s.FY[base+ko] -= dp * 0.25 * by0
	}
}

// GetAcc is the acceleration calculation: corner forces are summed to
// nodes, divided by nodal mass, boundary conditions applied, and
// velocities advanced by dt; UBar receives the time-centred velocity.
//
// The default formulation is a parallel gather: every node sums its
// incident corner forces through the node→corner CSR transpose
// (Mesh.NdCorner), so nodes are independent and the loop threads with
// no data dependency. Because each node's ring ascends in (element,
// corner) order — the exact order the reference element-ordered
// scatter adds contributions — the sums are bitwise-identical to the
// scatter at any thread count.
//
// Options.ScatterAcc restores the reference implementation's
// corner-force→node scatter, whose multiple-elements-per-node data
// dependency forces it onto one thread regardless of the pool ("it has
// currently been left unchanged, adversely affecting OpenMP
// performance" — the paper). It exists as the paper-fidelity ablation.
func (s *State) GetAcc(dt float64) {
	m := s.Mesh
	nnd := m.NOwnNd
	if !s.Opt.ScatterAcc {
		s.ka.dt = dt
		s.Pool.For(nnd, s.kb.acc)
		return
	}
	// Reference scatter formulation over all local elements (ghost
	// corner forces included so owned-node sums are complete).
	fxn, fyn := s.fxnd, s.fynd
	for n := range fxn {
		fxn[n] = 0
		fyn[n] = 0
	}
	s.Pool.Serial(m.NEl, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			nd := &m.ElNd[e]
			base := s.cs * e
			for k := 0; k < 4; k++ {
				fxn[nd[k]] += s.FX[base+k]
				fyn[nd[k]] += s.FY[base+k]
			}
		}
	})
	s.Pool.For(nnd, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			s.applyAccel(n, fxn[n], fyn[n], dt)
		}
	})
}

func (s *State) accBody(lo, hi int) {
	m := s.Mesh
	dt := s.ka.dt
	start, slots := m.NdElStart, s.ndSlots
	for n := lo; n < hi; n++ {
		var fx, fy float64
		for _, ci := range slots[start[n]:start[n+1]] {
			fx += s.FX[ci]
			fy += s.FY[ci]
		}
		s.applyAccel(n, fx, fy, dt)
	}
}

// applyAccel advances node n by force (fx, fy) over dt with boundary
// conditions, filling U, V and UBar, VBar.
func (s *State) applyAccel(n int, fx, fy, dt float64) {
	bc := s.Mesh.BCs[n]
	if bc&mesh.Piston != 0 {
		// Prescribed wall: velocity pinned; work done on the gas is
		// accounted by Step via ExternalWork.
		s.U[n] = s.PistonU
		s.V[n] = s.PistonV
		s.UBar[n] = s.PistonU
		s.VBar[n] = s.PistonV
		return
	}
	if bc&mesh.FrozenVel != 0 {
		// Far-field inflow: velocity frozen at its current value.
		s.U[n] = s.U0[n]
		s.V[n] = s.V0[n]
		s.UBar[n] = s.U0[n]
		s.VBar[n] = s.V0[n]
		return
	}
	ax := fx / s.NdMass[n]
	ay := fy / s.NdMass[n]
	if bc&mesh.FixU != 0 {
		ax = 0
		s.U[n] = 0
		s.U0[n] = 0
	}
	if bc&mesh.FixV != 0 {
		ay = 0
		s.V[n] = 0
		s.V0[n] = 0
	}
	u1 := s.U0[n] + dt*ax
	v1 := s.V0[n] + dt*ay
	s.U[n] = u1
	s.V[n] = v1
	s.UBar[n] = 0.5 * (s.U0[n] + u1)
	s.VBar[n] = 0.5 * (s.V0[n] + v1)
}

// GetGeom moves nodes [0, nnd) to x0 + dt*u and recomputes the volumes
// of elements [lo, hi), returning an ErrTangled if any element inverts.
func (s *State) GetGeom(dt float64, uArr, vArr []float64, lo, hi int) error {
	s.ka.dt = dt
	s.ka.u, s.ka.v = uArr, vArr
	s.ka.nlo = 0
	s.Pool.For(s.Mesh.NNd, s.kb.move)
	s.ka.lo = lo
	s.Pool.For(hi-lo, s.kb.vol)
	return s.scanTangled(lo, hi)
}

// scanTangled checks elements [lo, hi) for inversion. The scan is
// serial and ascending so the first (lowest-index) tangled element is
// reported deterministically regardless of thread count or schedule.
func (s *State) scanTangled(lo, hi int) error {
	for e := lo; e < hi; e++ {
		if s.Vol[e] <= 0 {
			return &ErrTangled{Element: e, Volume: s.Vol[e]}
		}
	}
	return nil
}

func (s *State) moveBody(plo, phi int) {
	dt := s.ka.dt
	uArr, vArr := s.ka.u, s.ka.v
	nlo := s.ka.nlo
	for n := nlo + plo; n < nlo+phi; n++ {
		s.X[n] = s.X0[n] + dt*uArr[n]
		s.Y[n] = s.Y0[n] + dt*vArr[n]
	}
}

func (s *State) volBody(plo, phi int) {
	lo := s.ka.lo
	var x, y [4]float64
	for e := lo + plo; e < lo+phi; e++ {
		s.gatherCoords(e, &x, &y)
		s.Vol[e] = geom.Area(&x, &y)
	}
}

// GetRho recomputes density of elements [lo, hi) from fixed mass and
// current volume — exact mass conservation by construction.
func (s *State) GetRho(lo, hi int) {
	s.ka.lo = lo
	s.Pool.For(hi-lo, s.kb.rho)
}

func (s *State) rhoBody(plo, phi int) {
	lo := s.ka.lo
	for e := lo + plo; e < lo+phi; e++ {
		s.Rho[e] = s.Mass[e] / s.Vol[e]
	}
}

// GetEin performs the compatible internal-energy update for elements
// [lo, hi): de = -dt · ΣF·u / m with the full corner forces and the
// given nodal velocities. Together with the same forces accelerating
// the nodes this conserves total energy to round-off.
//
// The update floors the energy at zero: an explicit step can overshoot
// the adiabatic cooling of a cold expanding cell past e = 0, and the
// resulting negative pressure puts the cell in unphysical tension that
// implodes it (tested failure mode on Noh). The energy the floor adds
// is returned; the step driver accumulates the corrector's (full-step)
// amount into FloorEnergy so conservation audits stay closed — it is
// identically zero on well-resolved problems. (Per-chunk partials are
// combined in chunk order, so on the rare runs where the floor fires
// the returned total — a diagnostic, never a field — can differ in the
// last bit across thread counts; the evolved fields themselves stay
// bitwise-identical because the flooring decision is per-element.)
func (s *State) GetEin(dt float64, uArr, vArr []float64, lo, hi int) float64 {
	t := s.Pool.NumChunks(hi - lo)
	if t < 1 {
		return 0
	}
	if cap(s.ka.floors) < floorStride*t {
		s.ka.floors = make([]float64, floorStride*t)
	}
	s.ka.floors = s.ka.floors[:floorStride*t]
	s.ka.lo, s.ka.dt = lo, dt
	s.ka.u, s.ka.v = uArr, vArr
	s.Pool.ForChunks(hi-lo, s.kb.ein)
	var total float64
	for c := 0; c < t; c++ {
		total += s.ka.floors[floorStride*c]
	}
	return total
}

func (s *State) einBody(chunk, plo, phi int) {
	m := s.Mesh
	mats := s.Opt.Materials
	lo, dt := s.ka.lo, s.ka.dt
	uArr, vArr := s.ka.u, s.ka.v
	var added float64
	for e := lo + plo; e < lo+phi; e++ {
		nd := &m.ElNd[e]
		base := s.cs * e
		var w float64
		for k := 0; k < 4; k++ {
			w += s.FX[base+k]*uArr[nd[k]] + s.FY[base+k]*vArr[nd[k]]
		}
		ein := s.Ein0[e] - dt*w/s.Mass[e]
		// Floor only energy-dependent materials: for barotropic
		// forms (Tait, void) a negative tracked energy is elastic
		// bookkeeping, not a pressure pathology.
		if ein < 0 && mats[m.Region[e]].EnergyDependent() {
			added += -ein * s.Mass[e]
			ein = 0
		}
		s.Ein[e] = ein
	}
	s.ka.floors[floorStride*chunk] = added
}

// GetPC evaluates the equation of state of elements [lo, hi): pressure
// and squared sound speed from density and internal energy.
func (s *State) GetPC(lo, hi int) {
	s.ka.lo = lo
	s.Pool.For(hi-lo, s.kb.pc)
}

func (s *State) pcBody(plo, phi int) {
	mats := s.Opt.Materials
	reg := s.Mesh.Region
	lo := s.ka.lo
	for e := lo + plo; e < lo+phi; e++ {
		mat := mats[reg[e]]
		s.P[e] = mat.Pressure(s.Rho[e], s.Ein[e])
		s.Csq[e] = mat.SoundSpeed2(s.Rho[e], s.Ein[e])
	}
}
