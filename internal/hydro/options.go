package hydro

import (
	"fmt"

	"bookleaf/internal/eos"
)

// HourglassControl selects the zero-energy-mode suppression scheme. The
// paper provides "a filter following Hancock and sub-zonal pressures
// following Caramana et al."; both are implemented, plus none for
// ablation runs.
type HourglassControl int

const (
	// HGNone disables hourglass control.
	HGNone HourglassControl = iota
	// HGFilter is the Hancock-style viscous hourglass filter.
	HGFilter
	// HGSubzonal is the Caramana sub-zonal pressure method.
	HGSubzonal
)

func (h HourglassControl) String() string {
	switch h {
	case HGNone:
		return "none"
	case HGFilter:
		return "filter"
	case HGSubzonal:
		return "subzonal"
	default:
		return fmt.Sprintf("HourglassControl(%d)", int(h))
	}
}

// Layout selects the memory layout of the hot corner-indexed arrays
// (the FX/FY force pair and the CMass/QEdge auxiliary pair).
type Layout int

const (
	// LayoutAoS interleaves each pair into one per-element record
	// (FX[0..3]|FY[0..3], CMass[0..3]|QEdge[0..3] — a 64-byte line per
	// element per pair), so the force writes, the acceleration gather
	// and the energy dot products touch one cache line where SoA
	// touches two. The default: results are bitwise-identical to SoA
	// because only addressing changes, never the arithmetic order.
	LayoutAoS Layout = iota
	// LayoutSoA keeps the paper's parallel-array layout (stride 4),
	// retained as the ablation baseline for the layout benchmarks.
	LayoutSoA
)

func (l Layout) String() string {
	switch l {
	case LayoutAoS:
		return "aos"
	case LayoutSoA:
		return "soa"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ParseLayout maps a -layout / [control] layout value onto a Layout.
// The empty string selects the AoS default.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "aos":
		return LayoutAoS, nil
	case "soa":
		return LayoutSoA, nil
	}
	return LayoutAoS, fmt.Errorf("hydro: unknown layout %q (want aos or soa)", s)
}

// Options are the numerical controls of the Lagrangian step; the zero
// value is not usable — call DefaultOptions and override.
type Options struct {
	// CFL is the Courant safety factor on the sound-speed timestep.
	CFL float64
	// DivSafety limits the relative volume change per step.
	DivSafety float64
	// DtInitial is the first timestep.
	DtInitial float64
	// DtMax caps the timestep; DtMin aborts the run when the stable
	// timestep collapses below it.
	DtMax, DtMin float64
	// DtGrowth caps dt growth per step (the paper's 1.02-style factor).
	DtGrowth float64

	// CQ1, CQ2 are the linear and quadratic artificial-viscosity
	// coefficients (Caramana et al. forms).
	CQ1, CQ2 float64

	// Hourglass selects the anti-hourglass scheme; HGKappa scales the
	// filter, HGSubMerit scales the sub-zonal pressure response.
	Hourglass  HourglassControl
	HGKappa    float64
	HGSubMerit float64

	// Materials maps region index to equation of state.
	Materials []eos.Material

	// ScatterAcc switches the acceleration kernel from the default
	// race-free node-gather formulation (bitwise-identical to the
	// scatter, parallel at any thread count) back to the reference
	// implementation's corner-force→node scatter, whose data dependency
	// serialises it — the OpenMP limitation discussed in the paper,
	// kept as a paper-fidelity ablation.
	ScatterAcc bool

	// EdgeQForces applies the artificial viscosity as equal-and-
	// opposite dampers along each compressing edge instead of an
	// isotropic addition to the pressure — an ablation of the force
	// formulation.
	EdgeQForces bool

	// Fuse runs the step on the fused element passes: the viscosity +
	// corner-force pair and the geometry→density→energy→EOS update
	// chain each become a single cache-tiled pool sweep that streams
	// X/Y/U/V once per element instead of re-gathering them per kernel
	// (see DESIGN.md §13). Bitwise-identical to the unfused kernels at
	// any thread count; on by default (DefaultOptions) — switching it
	// off selects the paper's one-kernel-per-phase structure as the
	// ablation.
	Fuse bool
	// FuseTile overrides the fused sweeps' tile width in elements per
	// body invocation; 0 derives it from par.TileFor and the fused
	// working-set estimate. A tunable for machines whose per-core cache
	// differs from the par.L2PerCore assumption.
	FuseTile int
	// Float32Aux stores the widest auxiliary element streams — the
	// fixed corner masses (CMass) and the per-edge viscous damper
	// coefficients (QEdge) — as float32, halving their memory traffic
	// in the force kernel. An opt-in accuracy/bandwidth ablation: the
	// evolved fields stay float64, but forces see rounded inputs, so
	// results are no longer bitwise-comparable to the float64 runs.
	Float32Aux bool
	// Layout selects the corner-array memory layout: interleaved AoS
	// records (the zero value, the default) or the parallel SoA slices
	// (the ablation). Bitwise-identical either way.
	Layout Layout
}

// DefaultOptions returns the standard BookLeaf-style controls for the
// given region materials.
func DefaultOptions(materials ...eos.Material) Options {
	return Options{
		CFL:        0.5,
		DivSafety:  0.25,
		DtInitial:  1e-5,
		DtMax:      1e-1,
		DtMin:      1e-12,
		DtGrowth:   1.02,
		CQ1:        0.5,
		CQ2:        0.75,
		Hourglass:  HGSubzonal,
		HGKappa:    0.1,
		HGSubMerit: 1.0,
		Materials:  materials,
		Fuse:       true,
	}
}

// Validate reports configuration errors.
func (o *Options) Validate() error {
	switch {
	case o.CFL <= 0 || o.CFL > 1:
		return fmt.Errorf("hydro: CFL = %v out of (0,1]", o.CFL)
	case o.DtInitial <= 0:
		return fmt.Errorf("hydro: DtInitial = %v, must be positive", o.DtInitial)
	case o.DtMax < o.DtInitial:
		return fmt.Errorf("hydro: DtMax = %v below DtInitial = %v", o.DtMax, o.DtInitial)
	case o.DtMin <= 0 || o.DtMin > o.DtMax:
		return fmt.Errorf("hydro: DtMin = %v out of (0, DtMax]", o.DtMin)
	case o.DtGrowth < 1:
		return fmt.Errorf("hydro: DtGrowth = %v, must be >= 1", o.DtGrowth)
	case o.CQ1 < 0 || o.CQ2 < 0:
		return fmt.Errorf("hydro: viscosity coefficients must be non-negative (cq1=%v cq2=%v)", o.CQ1, o.CQ2)
	case len(o.Materials) == 0:
		return fmt.Errorf("hydro: no materials configured")
	case o.FuseTile < 0:
		return fmt.Errorf("hydro: FuseTile = %v, must be non-negative", o.FuseTile)
	}
	for i, m := range o.Materials {
		if m == nil {
			return fmt.Errorf("hydro: material for region %d is nil", i)
		}
	}
	return nil
}
