package hydro

import (
	"math"

	"bookleaf/internal/eos"
	"bookleaf/internal/geom"
	"bookleaf/internal/timers"
)

// Fused element passes (Options.Fuse, the default): the predictor and
// corrector each stream the element arrays twice instead of six times.
//
// The fusion follows the Lagrange-flux observation (De Vuyst et al.)
// that Lagrange-remap kernels are memory-bound because consecutive
// passes re-gather the same nodal and element arrays: in the unfused
// chain, getq and getforce each gather X/Y/U/V through ElNd, and
// getgeom/getrho/getein/getpc re-read ElNd, Vol, Rho, Mass and the
// corner forces that a neighbouring kernel just produced. Both fusions
// are valid per element because no kernel in either pair reads another
// element's output: getforce consumes only its own element's Q/QEdge
// (just computed), and vol→rho→ein→pc is a straight-line dataflow on
// element-local values once the nodes have moved. Each fused body
// therefore performs the exact per-element floating-point sequence of
// its unfused kernels back to back — same gathered operands, same
// operation order — which is what makes the fused path bitwise-
// identical to the unfused one at every thread count (pinned by the
// fused-vs-unfused battery in fuse_test.go).
//
// The sweeps dispatch over par.ForChunksTiled: each body invocation
// covers at most fuseTile elements, so the slab of every streamed
// array a tile touches stays L2-resident across the fused phases. The
// tile width is Options.FuseTile or par.TileFor(fusedBytesPerElem).

// fusedBytesPerElem is the working-set estimate the default tile width
// is derived from: the fused update streams ElNd (32 B) + 4 nodes of
// X/Y/U/V (amortised ~64 B), FX/FY (64 B), and ~10 element-scalar
// streams (80 B) ≈ 256 B per element; the fused q+force pass is the
// same order (QEdge + neighbour touches in place of Ein0/Mass).
const fusedBytesPerElem = 256

// Fused-path timer names. The fused step deliberately reports the
// merged kernels under merged names instead of attributing shares back
// to the paper's Table II names — a per-kernel split of a fused sweep
// would be fiction. The unfused ablation still reports the paper's
// breakdown.
const (
	TimerQForce    = "qforce"
	TimerLagUpdate = "lagupdate"
)

// GetQForce computes artificial viscosity and corner forces for
// elements [lo, hi) in one sweep — the fusion of GetQ and GetForce.
// uArr, vArr supply the velocity field (U0 in both the predictor and
// the corrector, where U is still bitwise-equal to its start-of-step
// copy — nothing writes U between the copy and GetAcc).
func (s *State) GetQForce(lo, hi int, uArr, vArr []float64) {
	s.ka.lo = lo
	s.ka.u, s.ka.v = uArr, vArr
	s.Pool.ForChunksTiled(hi-lo, s.fuseTile, s.kb.qforce)
}

func (s *State) qforceBody(_, plo, phi int) {
	m := s.Mesh
	cq1, cq2 := s.Opt.CQ1, s.Opt.CQ2
	lo := s.ka.lo
	uArr, vArr := s.ka.u, s.ka.v
	f32 := s.Opt.Float32Aux
	var x, y, u, v [4]float64
	var ax, ay [4]float64
	var qe [4]float64
	for e := lo + plo; e < lo+phi; e++ {
		nd := &m.ElNd[e]
		for k := 0; k < 4; k++ {
			x[k] = s.X[nd[k]]
			y[k] = s.Y[nd[k]]
			u[k] = uArr[nd[k]]
			v[k] = vArr[nd[k]]
		}
		rho := s.Rho[e]
		csq := s.Csq[e]
		cs := math.Sqrt(csq)
		// Corner-array record of e (stride s.cs, layout-dependent); the
		// facing table stays at stride 4 — it is topology, not state.
		base := s.cs * e

		// --- getq: edge viscosity with the two-ring limiter (the
		// per-element body of qBody, on the shared gathers).
		var qsum float64
		for k := 0; k < 4; k++ {
			kp := (k + 1) & 3
			dux := u[kp] - u[k]
			duy := v[kp] - v[k]
			dxx := x[kp] - x[k]
			dxy := y[kp] - y[k]
			if dux*dxx+duy*dxy >= 0 {
				qe[k] = 0
				continue
			}
			du2 := dux*dux + duy*duy
			if du2 == 0 {
				qe[k] = 0
				continue
			}
			du := math.Sqrt(du2)
			ko2 := (k + 2) & 3
			ko2p := (ko2 + 1) & 3
			odux := -(u[ko2p] - u[ko2])
			oduy := -(v[ko2p] - v[ko2])
			r := (odux*dux + oduy*duy) / du2
			if nb := m.ElEl[e][k]; nb >= 0 {
				kk := int(s.facing[4*e+k])
				if kk < 0 {
					panic("hydro: element adjacency not symmetric")
				}
				ko := (kk + 2) & 3
				kop := (ko + 1) & 3
				nbnd := &m.ElNd[nb]
				ndux := -(uArr[nbnd[kop]] - uArr[nbnd[ko]])
				nduy := -(vArr[nbnd[kop]] - vArr[nbnd[ko]])
				rNb := (ndux*dux + nduy*duy) / du2
				r = min(rNb, r)
			}
			psi := 0.0
			if r > 0 {
				psi = min(1.0, r)
			}
			qEdge := (1 - psi) * rho * (cq2*du2 + cq1*cs*du)
			qsum += qEdge
			edgeLen := math.Sqrt(dxx*dxx + dxy*dxy)
			qe[k] = qEdge * edgeLen / du
		}
		q := 0.25 * qsum
		s.Q[e] = q
		if f32 {
			for k := 0; k < 4; k++ {
				s.qedge32[base+k] = float32(qe[k])
				qe[k] = float64(s.qedge32[base+k])
			}
		} else {
			for k := 0; k < 4; k++ {
				s.QEdge[base+k] = qe[k]
			}
		}

		// --- getforce: pressure + viscosity force and hourglass
		// control (the per-element body of forceBody), reusing the
		// gathered x/y/u/v and the q just computed.
		geom.BasisGrad(&x, &y, &ax, &ay)
		pq := s.P[e] + q
		for k := 0; k < 4; k++ {
			s.FX[base+k] = pq * ax[k]
			s.FY[base+k] = pq * ay[k]
		}
		if s.Opt.EdgeQForces {
			for k := 0; k < 4; k++ {
				s.FX[base+k] -= q * ax[k]
				s.FY[base+k] -= q * ay[k]
			}
			for k := 0; k < 4; k++ {
				kappa := qe[k]
				if kappa == 0 {
					continue
				}
				kp := (k + 1) & 3
				fx := kappa * (u[kp] - u[k])
				fy := kappa * (v[kp] - v[k])
				s.FX[base+k] += fx
				s.FY[base+k] += fy
				s.FX[base+kp] -= fx
				s.FY[base+kp] -= fy
			}
		}
		switch s.Opt.Hourglass {
		case HGFilter:
			var hu, hv float64
			for k := 0; k < 4; k++ {
				hu += geom.HourglassVector[k] * u[k]
				hv += geom.HourglassVector[k] * v[k]
			}
			hu *= 0.25
			hv *= 0.25
			area := s.Vol[e]
			coef := s.Opt.HGKappa * rho * (cs + math.Sqrt(hu*hu+hv*hv)) * math.Sqrt(area)
			for k := 0; k < 4; k++ {
				s.FX[base+k] -= coef * hu * geom.HourglassVector[k]
				s.FY[base+k] -= coef * hv * geom.HourglassVector[k]
			}
		case HGSubzonal:
			s.subzonalForce(e, &x, &y, rho, csq, q, f32)
		}
	}
}

// floorsFor sizes and zeroes the per-chunk floor-energy partials for a
// t-chunk dispatch. The fused update accumulates into the slots per
// element (the launcher cannot, because a chunk spans several tiles),
// so they must start at zero.
func (s *State) floorsFor(t int) {
	if cap(s.ka.floors) < floorStride*t {
		s.ka.floors = make([]float64, floorStride*t)
	}
	s.ka.floors = s.ka.floors[:floorStride*t]
	for c := 0; c < t; c++ {
		s.ka.floors[floorStride*c] = 0
	}
}

// FusedUpdate advances geometry, density, internal energy and the EOS
// of elements [lo, hi) in one sweep — the fusion of GetGeom, GetRho,
// GetEin and GetPC: nodes move, then each element recomputes volume,
// density, compatible energy and pressure/sound speed from values still
// in cache. The tangle scan runs after the sweep, serial and ascending,
// so the first reported offender matches the unfused schedule; the
// floor-energy total is returned only on success (the unfused path
// never reaches GetEin when GetGeom tangles, so a tangled fused step
// must not commit floors either — rollback restores the extra fields
// the fused sweep wrote past the tangle).
func (s *State) FusedUpdate(dt float64, uArr, vArr []float64, lo, hi int) (float64, error) {
	s.ka.dt = dt
	s.ka.u, s.ka.v = uArr, vArr
	s.ka.nlo = 0
	s.Pool.For(s.Mesh.NNd, s.kb.move)
	t := s.Pool.NumChunks(hi - lo)
	if t < 1 {
		return 0, nil
	}
	s.floorsFor(t)
	s.ka.lo = lo
	s.Pool.ForChunksTiled(hi-lo, s.fuseTile, s.kb.update)
	if err := s.scanTangled(lo, hi); err != nil {
		return 0, err
	}
	var total float64
	for c := 0; c < t; c++ {
		total += s.ka.floors[floorStride*c]
	}
	return total, nil
}

func (s *State) updateBody(chunk, plo, phi int) {
	mats := s.Opt.Materials
	reg := s.Mesh.Region
	lo, dt := s.ka.lo, s.ka.dt
	uArr, vArr := s.ka.u, s.ka.v
	fl := &s.ka.floors[floorStride*chunk]
	var x, y [4]float64
	for e := lo + plo; e < lo+phi; e++ {
		s.fusedElem(e, dt, uArr, vArr, &x, &y, mats, reg, fl)
	}
}

// FusedUpdateList is FusedUpdate's list-dispatch twin for the
// overlapped schedule's interior/boundary bands: no node move (the
// caller interleaves MoveNodes with the exchange phases) and no tangle
// scan (deferred to the caller, after both bands). Returns the
// floor-energy partial for the listed elements.
func (s *State) FusedUpdateList(dt float64, uArr, vArr []float64, list []int) float64 {
	t := s.Pool.NumChunks(len(list))
	if t < 1 {
		return 0
	}
	s.floorsFor(t)
	s.ka.list, s.ka.dt = list, dt
	s.ka.u, s.ka.v = uArr, vArr
	s.Pool.ForChunksTiled(len(list), s.fuseTile, s.kb.updateList)
	var total float64
	for c := 0; c < t; c++ {
		total += s.ka.floors[floorStride*c]
	}
	return total
}

func (s *State) updateListBody(chunk, plo, phi int) {
	mats := s.Opt.Materials
	reg := s.Mesh.Region
	dt := s.ka.dt
	list := s.ka.list
	uArr, vArr := s.ka.u, s.ka.v
	fl := &s.ka.floors[floorStride*chunk]
	var x, y [4]float64
	for i := plo; i < phi; i++ {
		s.fusedElem(list[i], dt, uArr, vArr, &x, &y, mats, reg, fl)
	}
}

// fusedElem is the per-element vol→rho→ein→pc chain both fused update
// bodies share: the exact floating-point sequence of volBody, rhoBody,
// einBody and pcBody back to back. The floor partial accumulates into
// the chunk's padded slot per element (not via a tile-local temporary)
// so the addition order matches the unfused einBody's local
// accumulator bit for bit.
func (s *State) fusedElem(e int, dt float64, uArr, vArr []float64, x, y *[4]float64, mats []eos.Material, reg []int, fl *float64) {
	nd := &s.Mesh.ElNd[e]
	base := s.cs * e
	for k := 0; k < 4; k++ {
		x[k] = s.X[nd[k]]
		y[k] = s.Y[nd[k]]
	}
	vol := geom.Area(x, y)
	s.Vol[e] = vol
	mass := s.Mass[e]
	rho := mass / vol
	s.Rho[e] = rho
	var w float64
	for k := 0; k < 4; k++ {
		w += s.FX[base+k]*uArr[nd[k]] + s.FY[base+k]*vArr[nd[k]]
	}
	ein := s.Ein0[e] - dt*w/mass
	mat := mats[reg[e]]
	if ein < 0 && mat.EnergyDependent() {
		*fl += -ein * mass
		ein = 0
	}
	s.Ein[e] = ein
	s.P[e] = mat.Pressure(rho, ein)
	s.Csq[e] = mat.SoundSpeed2(rho, ein)
}

// correctorSyncFused is correctorSync on the fused passes: the same two
// blocking communication points, with q+force and the update chain each
// a single sweep.
func (s *State) correctorSyncFused(tm *timers.Set, hooks *Hooks, dt float64) error {
	nel := s.Mesh.NOwnEl

	tm.Start(TimerQForce)
	s.GetQForce(0, nel, s.U0, s.V0)
	tm.Stop(TimerQForce)

	if hooks != nil && hooks.ExchangeForces != nil {
		tm.Start(TimerComms)
		hooks.ExchangeForces(s)
		tm.Stop(TimerComms)
	}

	tm.Start(TimerGetAcc)
	s.GetAcc(dt)
	tm.Stop(TimerGetAcc)
	s.ExternalWork += -dt * s.pistonWork()

	if hooks != nil && hooks.ExchangeVelocities != nil {
		tm.Start(TimerComms)
		hooks.ExchangeVelocities(s)
		tm.Stop(TimerComms)
	}

	tm.Start(TimerLagUpdate)
	fl, err := s.FusedUpdate(dt, s.UBar, s.VBar, 0, nel)
	tm.Stop(TimerLagUpdate)
	if err != nil {
		return err
	}
	s.FloorEnergy += fl
	return nil
}

// correctorOverlapFused is correctorOverlap on the fused passes. The
// band disjointness argument is unchanged — interior elements read no
// ghost node, interior nodes no ghost corner force — and within each
// band the fused update is per-element pure, so the interior sweep can
// run while ghost velocities are in flight exactly as the unfused list
// kernels do. The tangle scan still covers the full owned range,
// ascending, after both bands; the floor total commits only if it
// passes.
func (s *State) correctorOverlapFused(tm *timers.Set, hooks *Hooks, dt float64) error {
	m := s.Mesh
	nel := m.NOwnEl
	b := hooks.Band

	tm.Start(TimerQForce)
	s.GetQForce(0, nel, s.U0, s.V0)
	tm.Stop(TimerQForce)

	tm.Start(TimerComms)
	hooks.StartForces(s)
	tm.Stop(TimerComms)

	tm.Start(TimerGetAcc)
	s.GetAccList(b.IntNds, dt)
	tm.Stop(TimerGetAcc)

	tm.Start(TimerComms)
	hooks.FinishForces(s)
	tm.Stop(TimerComms)

	tm.Start(TimerGetAcc)
	s.GetAccList(b.BndNds, dt)
	tm.Stop(TimerGetAcc)
	s.ExternalWork += -dt * s.pistonWork()

	tm.Start(TimerComms)
	hooks.StartVelocities(s)
	tm.Stop(TimerComms)

	tm.Start(TimerLagUpdate)
	s.MoveNodes(dt, s.UBar, s.VBar, 0, m.NOwnNd)
	fl := s.FusedUpdateList(dt, s.UBar, s.VBar, b.IntEls)
	tm.Stop(TimerLagUpdate)

	tm.Start(TimerComms)
	hooks.FinishVelocities(s)
	tm.Stop(TimerComms)

	tm.Start(TimerLagUpdate)
	s.MoveNodes(dt, s.UBar, s.VBar, m.NOwnNd, m.NNd)
	fl += s.FusedUpdateList(dt, s.UBar, s.VBar, b.BndEls)
	err := s.scanTangled(0, nel)
	tm.Stop(TimerLagUpdate)
	if err != nil {
		return err
	}
	s.FloorEnergy += fl
	return nil
}
