package hydro

import (
	"errors"
	"math"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/mesh"
)

func healthyState(t *testing.T) *State {
	t.Helper()
	g, err := eos.NewIdealGas(1.4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.Rect(mesh.RectSpec{NX: 4, NY: 4, X0: 0, X1: 1, Y0: 0, Y1: 1, Walls: mesh.DefaultWalls()})
	if err != nil {
		t.Fatal(err)
	}
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e], ein[e] = 1, 1
	}
	s, err := NewState(m, DefaultOptions(g, g), rho, ein)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckFiniteCleanState(t *testing.T) {
	s := healthyState(t)
	if err := s.CheckFinite(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
}

func TestCheckFiniteFlagsNaNAndInf(t *testing.T) {
	s := healthyState(t)
	s.Rho[3] = math.NaN()
	err := s.CheckFinite()
	var nf *ErrNonFinite
	if !errors.As(err, &nf) || nf.Field != "rho" || nf.Index != 3 {
		t.Fatalf("NaN rho not flagged: %v", err)
	}
	s.Rho[3] = 1
	s.U[5] = math.Inf(1)
	err = s.CheckFinite()
	if !errors.As(err, &nf) || nf.Field != "u" || nf.Index != 5 {
		t.Fatalf("Inf velocity not flagged: %v", err)
	}
	if !Retryable(err) {
		t.Fatal("non-finite error not classified retryable")
	}
}

func TestRetryableClassification(t *testing.T) {
	if !Retryable(&ErrDtCollapse{Dt: 1e-14, Element: 2}) {
		t.Fatal("dt collapse not retryable")
	}
	if !Retryable(&ErrTangled{Element: 1, Volume: -1}) {
		t.Fatal("tangling not retryable")
	}
	if Retryable(errors.New("disk on fire")) {
		t.Fatal("arbitrary error retryable")
	}
}

// Save/Load must round-trip the evolving state bit-exactly: run, save,
// run further, load, re-run — the replay must match the original.
func TestMementoRollbackIsBitExact(t *testing.T) {
	s := healthyState(t)
	// Give it something to do: a converging velocity field.
	for n := 0; n < s.Mesh.NNd; n++ {
		s.U[n] = -0.1 * s.X[n]
		s.V[n] = -0.1 * s.Y[n]
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	var m Memento
	if m.Valid() {
		t.Fatal("empty memento claims validity")
	}
	s.Save(&m)

	record := func() []float64 {
		out := append([]float64(nil), s.Rho...)
		out = append(out, s.U...)
		out = append(out, s.X...)
		out = append(out, s.Time, s.DtPrev, float64(s.StepCount))
		return out
	}
	for i := 0; i < 7; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	first := record()

	s.Load(&m)
	if s.StepCount != 5 {
		t.Fatalf("rollback step count = %d, want 5", s.StepCount)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	second := record()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at slot %d: %v vs %v", i, first[i], second[i])
		}
	}
}
