package hydro

import (
	"math"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/mesh"
)

func TestFrozenVelBoundaryHoldsVelocity(t *testing.T) {
	m, err := mesh.Rect(mesh.RectSpec{
		NX: 6, NY: 6, X0: 0, X1: 1, Y0: 0, Y1: 1,
		Walls: mesh.WallSpec{Left: mesh.FixU, Bottom: mesh.FixV,
			Right: mesh.FrozenVel, Top: mesh.FrozenVel},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := uniformState(t, m, 1, 0.5, HGSubzonal)
	// Give the frozen boundary a velocity that forces would otherwise
	// change (pressure gradient towards the boundary).
	for n := 0; n < m.NNd; n++ {
		if m.BCs[n]&mesh.FrozenVel != 0 {
			s.U[n] = -0.05
			s.V[n] = -0.03
		}
	}
	s.Ein[35] = 5 // hot cell next to the corner
	s.GetPC(0, m.NEl)
	for i := 0; i < 20; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < m.NNd; n++ {
		if m.BCs[n]&mesh.FrozenVel == 0 {
			continue
		}
		if s.U[n] != -0.05 || s.V[n] != -0.03 {
			t.Fatalf("frozen node %d drifted to (%v,%v)", n, s.U[n], s.V[n])
		}
	}
}

func TestFrozenVelWorkAccounted(t *testing.T) {
	// Frozen inflow nodes do work on the gas; the audit must close.
	m, err := mesh.Rect(mesh.RectSpec{
		NX: 10, NY: 4, X0: 0, X1: 1, Y0: 0, Y1: 0.4,
		Walls: mesh.WallSpec{Left: mesh.FixU, Right: mesh.FrozenVel,
			Bottom: mesh.FixV, Top: mesh.FixV},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := eos.NewIdealGas(1.4)
	opt := DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 0.5
	}
	s, err := NewState(m, opt, rho, ein)
	if err != nil {
		t.Fatal(err)
	}
	// Right boundary pushes inward.
	for n := 0; n < m.NNd; n++ {
		if m.BCs[n]&mesh.FrozenVel != 0 {
			s.U[n] = -0.2
		}
	}
	e0 := s.TotalEnergy()
	for i := 0; i < 100; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	balance := math.Abs(s.TotalEnergy() - e0 - s.ExternalWork - s.FloorEnergy)
	if balance > 1e-10*math.Max(1, e0) {
		t.Fatalf("frozen-wall energy audit off by %v (W=%v)", balance, s.ExternalWork)
	}
	if s.ExternalWork <= 0 {
		t.Fatalf("compressing frozen wall should inject energy, got %v", s.ExternalWork)
	}
}

func TestEnergyFloorNeverNegative(t *testing.T) {
	// A violently expanding cold corner: energy must be floored at
	// zero and the floored energy accounted.
	m := boxMesh(t, 6, 6)
	g, _ := eos.NewIdealGas(5.0 / 3.0)
	opt := DefaultOptions(g)
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 1e-9
	}
	ein[0] = 50 // corner blast into cold gas
	s, err := NewState(m, opt, rho, ein)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			break // tangling acceptable here; we check invariants below
		}
	}
	for e := 0; e < m.NEl; e++ {
		if s.Ein[e] < 0 {
			t.Fatalf("element %d has negative energy %v", e, s.Ein[e])
		}
		if s.P[e] < 0 {
			t.Fatalf("element %d has negative pressure %v", e, s.P[e])
		}
	}
	if s.FloorEnergy < 0 {
		t.Fatalf("floor energy negative: %v", s.FloorEnergy)
	}
}

func TestEnergyFloorZeroOnHealthyRun(t *testing.T) {
	m := boxMesh(t, 8, 8)
	s := uniformState(t, m, 1, 0.5, HGSubzonal)
	s.Ein[20] = 2
	s.GetPC(0, m.NEl)
	for i := 0; i < 50; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.FloorEnergy != 0 {
		t.Fatalf("healthy run used the energy floor: %v", s.FloorEnergy)
	}
}

func TestEdgeQForcesConserve(t *testing.T) {
	// The edge-damper ablation must still balance forces per element
	// and conserve energy through the compatible update.
	m := boxMesh(t, 6, 6)
	g, _ := eos.NewIdealGas(1.4)
	opt := DefaultOptions(g)
	opt.EdgeQForces = true
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := range rho {
		rho[e] = 1
		ein[e] = 0.2
	}
	s, err := NewState(m, opt, rho, ein)
	if err != nil {
		t.Fatal(err)
	}
	// Converging flow so dampers engage; BC-consistent (vanishes at
	// the walls so the constraints remove no pre-existing energy).
	for n := range s.U {
		bump := math.Sin(math.Pi*s.X[n]) * math.Sin(math.Pi*s.Y[n])
		s.U[n] = -0.3 * (s.X[n] - 0.5) * bump
		s.V[n] = -0.3 * (s.Y[n] - 0.5) * bump
	}
	e0 := s.TotalEnergy()
	for i := 0; i < 40; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	drift := math.Abs(s.TotalEnergy()-e0-s.FloorEnergy) / e0
	if drift > 1e-11 {
		t.Fatalf("edge-q energy drift %v", drift)
	}
	// Per-element force balance.
	s.GetQ(0, m.NEl)
	copy(s.U0, s.U)
	copy(s.V0, s.V)
	s.GetForce(0, m.NEl, s.U0, s.V0)
	for e := 0; e < m.NEl; e++ {
		var fx, fy float64
		for k := 0; k < 4; k++ {
			fx += s.FX[s.CornerStride()*e+k]
			fy += s.FY[s.CornerStride()*e+k]
		}
		if math.Abs(fx) > 1e-12 || math.Abs(fy) > 1e-12 {
			t.Fatalf("edge-q element %d net force (%v,%v)", e, fx, fy)
		}
	}
}

func TestQEdgeZeroWithoutCompression(t *testing.T) {
	m := boxMesh(t, 4, 4)
	s := uniformState(t, m, 1, 1, HGNone)
	for n := range s.U {
		s.U[n] = 0.2 * (s.X[n] - 0.5) // expansion
	}
	s.GetQ(0, m.NEl)
	cs := s.CornerStride()
	for e := 0; e < m.NEl; e++ {
		for k := 0; k < 4; k++ {
			if q := s.QEdge[cs*e+k]; q != 0 {
				t.Fatalf("expansion produced edge damper %d/%d = %v", e, k, q)
			}
		}
	}
}
