package hydro

import (
	"fmt"
	"testing"

	"bookleaf/internal/eos"
	"bookleaf/internal/par"
	"bookleaf/internal/timers"
)

// TestStepZeroAllocs pins the scratch-arena guarantee: after the first
// (warm-up) step, a steady-state Lagrangian step performs zero heap
// allocations at any thread count. Every regression here is a
// per-step cost multiplied by the whole run, so this fails hard rather
// than tolerating "a few".
func TestStepZeroAllocs(t *testing.T) {
	for _, fuse := range []bool{true, false} {
		for _, threads := range []int{1, 4} {
			name := "unfused"
			if fuse {
				name = "fused"
			}
			t.Run(fmt.Sprintf("%s/pool-%d", name, threads), func(t *testing.T) {
				testStepZeroAllocs(t, fuse, threads)
			})
		}
	}
}

func testStepZeroAllocs(t *testing.T, fuse bool, threads int) {
	{
		m := boxMesh(t, 16, 16)
		g, _ := eos.NewIdealGas(1.4)
		opt := DefaultOptions(g)
		opt.Fuse = fuse
		rho := make([]float64, m.NEl)
		ein := make([]float64, m.NEl)
		for e := range rho {
			rho[e] = 1
			ein[e] = 0.1 + 0.001*float64(e%13)
		}
		s, err := NewState(m, opt, rho, ein)
		if err != nil {
			t.Fatal(err)
		}
		s.Pool = par.New(threads)
		for n := range s.U {
			s.U[n] = -0.1 * (s.X[n] - 0.5)
			s.V[n] = -0.1 * (s.Y[n] - 0.5)
		}
		tm := timers.NewSet()
		// Warm-up: spawns pool workers, registers timer names, sizes
		// the floor-partial scratch.
		if _, err := s.Step(tm, nil); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := s.Step(tm, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("threads=%d: steady-state Step allocates %v per call, want 0", threads, allocs)
		}
		// A nil timer set must be equally allocation-free.
		allocs = testing.AllocsPerRun(10, func() {
			if _, err := s.Step(nil, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("threads=%d: Step with nil timers allocates %v per call, want 0", threads, allocs)
		}
		s.Pool.Close()
	}
}
