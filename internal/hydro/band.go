package hydro

import "bookleaf/internal/geom"

// List-dispatch kernel variants for the overlapped corrector schedule:
// each runs the same per-entity update as its range-based twin, but
// over an explicit (ascending) index list — the interior or boundary
// band of a partition (mesh.Band). Because every update writes only its
// own entity, splitting a range kernel into two list passes changes
// nothing about the values produced; the bands exist purely so the
// interior pass can run while halo messages are in flight. The bodies
// are pre-bound like all other kernels, so the overlapped step stays
// zero-allocation.

// GetAccList accelerates the listed owned nodes: corner-force gather,
// nodal mass division, boundary conditions, dt advance (see GetAcc).
func (s *State) GetAccList(list []int, dt float64) {
	s.ka.list = list
	s.ka.dt = dt
	s.Pool.For(len(list), s.kb.accList)
}

func (s *State) accListBody(plo, phi int) {
	m := s.Mesh
	dt := s.ka.dt
	list := s.ka.list
	start, slots := m.NdElStart, s.ndSlots
	for i := plo; i < phi; i++ {
		n := list[i]
		var fx, fy float64
		for _, ci := range slots[start[n]:start[n+1]] {
			fx += s.FX[ci]
			fy += s.FY[ci]
		}
		s.applyAccel(n, fx, fy, dt)
	}
}

// MoveNodes advances nodes [lo, hi) to x0 + dt*u — the node-move half
// of GetGeom, split out so owned nodes can move while ghost velocities
// are still in flight.
func (s *State) MoveNodes(dt float64, uArr, vArr []float64, lo, hi int) {
	s.ka.dt = dt
	s.ka.u, s.ka.v = uArr, vArr
	s.ka.nlo = lo
	s.Pool.For(hi-lo, s.kb.move)
}

// VolList recomputes the volumes of the listed elements. Tangle
// detection is the caller's job (scanTangled over the full owned range,
// after both bands) so the first reported element matches the
// synchronous schedule.
func (s *State) VolList(list []int) {
	s.ka.list = list
	s.Pool.For(len(list), s.kb.volList)
}

func (s *State) volListBody(plo, phi int) {
	list := s.ka.list
	var x, y [4]float64
	for i := plo; i < phi; i++ {
		e := list[i]
		s.gatherCoords(e, &x, &y)
		s.Vol[e] = geom.Area(&x, &y)
	}
}

// RhoList recomputes density of the listed elements from fixed mass and
// current volume.
func (s *State) RhoList(list []int) {
	s.ka.list = list
	s.Pool.For(len(list), s.kb.rhoList)
}

func (s *State) rhoListBody(plo, phi int) {
	list := s.ka.list
	for i := plo; i < phi; i++ {
		e := list[i]
		s.Rho[e] = s.Mass[e] / s.Vol[e]
	}
}

// EinList performs the compatible internal-energy update for the listed
// elements and returns the energy added by the floor (see GetEin; the
// same chunk-order caveat applies to the returned diagnostic).
func (s *State) EinList(dt float64, uArr, vArr []float64, list []int) float64 {
	t := s.Pool.NumChunks(len(list))
	if t < 1 {
		return 0
	}
	if cap(s.ka.floors) < floorStride*t {
		s.ka.floors = make([]float64, floorStride*t)
	}
	s.ka.floors = s.ka.floors[:floorStride*t]
	s.ka.list, s.ka.dt = list, dt
	s.ka.u, s.ka.v = uArr, vArr
	s.Pool.ForChunks(len(list), s.kb.einList)
	var total float64
	for c := 0; c < t; c++ {
		total += s.ka.floors[floorStride*c]
	}
	return total
}

func (s *State) einListBody(chunk, plo, phi int) {
	m := s.Mesh
	mats := s.Opt.Materials
	dt := s.ka.dt
	list := s.ka.list
	uArr, vArr := s.ka.u, s.ka.v
	var added float64
	for i := plo; i < phi; i++ {
		e := list[i]
		nd := &m.ElNd[e]
		base := s.cs * e
		var w float64
		for k := 0; k < 4; k++ {
			w += s.FX[base+k]*uArr[nd[k]] + s.FY[base+k]*vArr[nd[k]]
		}
		ein := s.Ein0[e] - dt*w/s.Mass[e]
		if ein < 0 && mats[m.Region[e]].EnergyDependent() {
			added += -ein * s.Mass[e]
			ein = 0
		}
		s.Ein[e] = ein
	}
	s.ka.floors[floorStride*chunk] = added
}

// PCList evaluates the equation of state of the listed elements.
func (s *State) PCList(list []int) {
	s.ka.list = list
	s.Pool.For(len(list), s.kb.pcList)
}

func (s *State) pcListBody(plo, phi int) {
	mats := s.Opt.Materials
	reg := s.Mesh.Region
	list := s.ka.list
	for i := plo; i < phi; i++ {
		e := list[i]
		mat := mats[reg[e]]
		s.P[e] = mat.Pressure(s.Rho[e], s.Ein[e])
		s.Csq[e] = mat.SoundSpeed2(s.Rho[e], s.Ein[e])
	}
}
