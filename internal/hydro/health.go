package hydro

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonFinite reports a NaN or Inf detected in an evolving field by
// the per-step health sentinel — the signature of a corrupted message,
// a bad remap, or a blow-up that would otherwise silently poison the
// whole run.
type ErrNonFinite struct {
	// Field names the offending array (rho, ein, p, u, v).
	Field string
	// Element or node index; Global is the global id on partitioned
	// meshes (equal to Index on serial ones).
	Index, Global int
	Value         float64
}

func (e *ErrNonFinite) Error() string {
	return fmt.Sprintf("hydro: non-finite %s = %v at %s %d (global %d)",
		e.Field, e.Value, e.kind(), e.Index, e.Global)
}

func (e *ErrNonFinite) kind() string {
	switch e.Field {
	case "u", "v":
		return "node"
	}
	return "element"
}

// CheckFinite scans the owned thermodynamic and kinematic fields for
// NaN/Inf and returns an *ErrNonFinite describing the first offender,
// or nil. Drivers run it after every step as the health sentinel that
// triggers rollback-retry.
func (s *State) CheckFinite() error {
	m := s.Mesh
	elFields := []struct {
		name string
		a    []float64
	}{{"rho", s.Rho}, {"ein", s.Ein}, {"p", s.P}}
	for _, f := range elFields {
		for e := 0; e < m.NOwnEl; e++ {
			if v := f.a[e]; math.IsNaN(v) || math.IsInf(v, 0) {
				ge := e
				if m.GlobalEl != nil {
					ge = m.GlobalEl[e]
				}
				return &ErrNonFinite{Field: f.name, Index: e, Global: ge, Value: v}
			}
		}
	}
	ndFields := []struct {
		name string
		a    []float64
	}{{"u", s.U}, {"v", s.V}}
	for _, f := range ndFields {
		for n := 0; n < m.NOwnNd; n++ {
			if v := f.a[n]; math.IsNaN(v) || math.IsInf(v, 0) {
				gn := n
				if m.GlobalNd != nil {
					gn = m.GlobalNd[n]
				}
				return &ErrNonFinite{Field: f.name, Index: n, Global: gn, Value: v}
			}
		}
	}
	return nil
}

// Retryable reports whether err is a failure the driver may attempt to
// recover from by rolling back to an earlier snapshot and retrying with
// a reduced timestep: a timestep collapse, a tangled element, a
// non-finite field, or any error that classifies itself as transient
// via a Transient() method (the ALE remap's flux-overshoot failure,
// which shrinks with the timestep, reports that way — hydro cannot
// name the type without an import cycle). Communication faults and
// setup errors are not retryable.
func Retryable(err error) bool {
	var (
		dc *ErrDtCollapse
		tg *ErrTangled
		nf *ErrNonFinite
	)
	if errors.As(err, &dc) || errors.As(err, &tg) || errors.As(err, &nf) {
		return true
	}
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// Memento is an in-memory copy of the evolving fields of a State —
// owned and ghost entities alike — taken by Save and reinstated by
// Load. The parallel driver keeps one per rank as its rolling rollback
// snapshot: because ghosts are saved too, a Load needs no halo refresh
// and is bit-exact.
type Memento struct {
	x, y, u, v, ndMass        []float64
	rho, ein, p, q, csq, vol  []float64
	qEdge                     []float64
	mass, cMass               []float64
	time, dtPrev              float64
	stepCount                 int
	externalWork, floorEnergy float64
	valid                     bool
}

// Valid reports whether the memento holds a saved state.
func (m *Memento) Valid() bool { return m.valid }

// Save copies the evolving state of s into m, reusing m's storage
// after the first call.
func (s *State) Save(m *Memento) {
	cp := func(dst *[]float64, src []float64) {
		if len(*dst) != len(src) {
			*dst = make([]float64, len(src))
		}
		copy(*dst, src)
	}
	cp(&m.x, s.X)
	cp(&m.y, s.Y)
	cp(&m.u, s.U)
	cp(&m.v, s.V)
	cp(&m.ndMass, s.NdMass)
	cp(&m.rho, s.Rho)
	cp(&m.ein, s.Ein)
	cp(&m.p, s.P)
	cp(&m.q, s.Q)
	// In the AoS layout qEdge and cMass are overlapping views of one
	// interleaved backing, so these two copies overlap; both are taken
	// at the same instant, so restoring both rewrites the shared slots
	// with identical values.
	cp(&m.qEdge, s.QEdge)
	cp(&m.csq, s.Csq)
	cp(&m.vol, s.Vol)
	cp(&m.mass, s.Mass)
	cp(&m.cMass, s.CMass)
	m.time, m.dtPrev = s.Time, s.DtPrev
	m.stepCount = s.StepCount
	m.externalWork, m.floorEnergy = s.ExternalWork, s.FloorEnergy
	m.valid = true
}

// Load reinstates the state saved by Save. It panics if m is empty or
// sized for a different mesh.
func (s *State) Load(m *Memento) {
	if !m.valid {
		panic("hydro: Load from empty Memento")
	}
	if len(m.x) != len(s.X) || len(m.rho) != len(s.Rho) {
		panic("hydro: Load from Memento of a different mesh")
	}
	copy(s.X, m.x)
	copy(s.Y, m.y)
	copy(s.U, m.u)
	copy(s.V, m.v)
	copy(s.NdMass, m.ndMass)
	copy(s.Rho, m.rho)
	copy(s.Ein, m.ein)
	copy(s.P, m.p)
	copy(s.Q, m.q)
	copy(s.QEdge, m.qEdge)
	copy(s.Csq, m.csq)
	copy(s.Vol, m.vol)
	copy(s.Mass, m.mass)
	copy(s.CMass, m.cMass)
	s.Time, s.DtPrev = m.time, m.dtPrev
	s.StepCount = m.stepCount
	s.ExternalWork, s.FloorEnergy = m.externalWork, m.floorEnergy
	s.RefreshAux()
}
