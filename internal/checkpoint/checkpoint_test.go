package checkpoint

import (
	"bytes"
	"testing"

	"bookleaf/internal/setup"
)

func TestRoundTrip(t *testing.T) {
	p, err := setup.Sod(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	snap := Capture(s, "sod", 32, 2)

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Restore(s2, "sod", 32, 2); err != nil {
		t.Fatal(err)
	}
	if s2.Time != s.Time || s2.StepCount != s.StepCount || s2.DtPrev != s.DtPrev {
		t.Fatalf("clock mismatch after restore: %v/%d vs %v/%d", s2.Time, s2.StepCount, s.Time, s.StepCount)
	}
	for e := range s.Rho {
		if s2.Rho[e] != s.Rho[e] || s2.Ein[e] != s.Ein[e] {
			t.Fatalf("element %d state mismatch", e)
		}
	}
	for n := range s.U {
		if s2.U[n] != s.U[n] || s2.X[n] != s.X[n] {
			t.Fatalf("node %d state mismatch", n)
		}
	}
}

func TestResumeBitwiseIdentical(t *testing.T) {
	p1, _ := setup.Sod(48, 2)
	continuous, _ := p1.NewState()
	for i := 0; i < 60; i++ {
		if _, err := continuous.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	p2, _ := setup.Sod(48, 2)
	first, _ := p2.NewState()
	for i := 0; i < 25; i++ {
		if _, err := first.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Capture(first, "sod", 48, 2).Write(&buf); err != nil {
		t.Fatal(err)
	}

	p3, _ := setup.Sod(48, 2)
	resumed, _ := p3.NewState()
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Restore(resumed, "sod", 48, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if _, err := resumed.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	if resumed.Time != continuous.Time || resumed.StepCount != continuous.StepCount {
		t.Fatalf("clock diverged: %v/%d vs %v/%d", resumed.Time, resumed.StepCount, continuous.Time, continuous.StepCount)
	}
	for e := range continuous.Rho {
		if resumed.Rho[e] != continuous.Rho[e] {
			t.Fatalf("resume not bitwise identical at element %d: %v vs %v", e, resumed.Rho[e], continuous.Rho[e])
		}
	}
	for n := range continuous.U {
		if resumed.U[n] != continuous.U[n] || resumed.X[n] != continuous.X[n] {
			t.Fatalf("resume not bitwise identical at node %d", n)
		}
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	p, _ := setup.Sod(16, 2)
	s, _ := p.NewState()
	snap := Capture(s, "sod", 16, 2)
	if err := snap.Restore(s, "noh", 16, 2); err == nil {
		t.Fatal("problem mismatch accepted")
	}
	if err := snap.Restore(s, "sod", 20, 2); err == nil {
		t.Fatal("resolution mismatch accepted")
	}
	snap.Version = 99
	if err := snap.Restore(s, "sod", 16, 2); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadGarbageFails(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage decoded")
	}
}
