package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"bookleaf/internal/hydro"
	"bookleaf/internal/partition"
	"bookleaf/internal/setup"
)

func TestRoundTrip(t *testing.T) {
	p, err := setup.Sod(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	snap := Capture(s, "sod", 32, 2)

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Restore(s2, "sod", 32, 2); err != nil {
		t.Fatal(err)
	}
	if s2.Time != s.Time || s2.StepCount != s.StepCount || s2.DtPrev != s.DtPrev {
		t.Fatalf("clock mismatch after restore: %v/%d vs %v/%d", s2.Time, s2.StepCount, s.Time, s.StepCount)
	}
	for e := range s.Rho {
		if s2.Rho[e] != s.Rho[e] || s2.Ein[e] != s.Ein[e] {
			t.Fatalf("element %d state mismatch", e)
		}
	}
	for n := range s.U {
		if s2.U[n] != s.U[n] || s2.X[n] != s.X[n] {
			t.Fatalf("node %d state mismatch", n)
		}
	}
}

func TestResumeBitwiseIdentical(t *testing.T) {
	p1, _ := setup.Sod(48, 2)
	continuous, _ := p1.NewState()
	for i := 0; i < 60; i++ {
		if _, err := continuous.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	p2, _ := setup.Sod(48, 2)
	first, _ := p2.NewState()
	for i := 0; i < 25; i++ {
		if _, err := first.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Capture(first, "sod", 48, 2).Write(&buf); err != nil {
		t.Fatal(err)
	}

	p3, _ := setup.Sod(48, 2)
	resumed, _ := p3.NewState()
	snap, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Restore(resumed, "sod", 48, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if _, err := resumed.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	if resumed.Time != continuous.Time || resumed.StepCount != continuous.StepCount {
		t.Fatalf("clock diverged: %v/%d vs %v/%d", resumed.Time, resumed.StepCount, continuous.Time, continuous.StepCount)
	}
	for e := range continuous.Rho {
		if resumed.Rho[e] != continuous.Rho[e] {
			t.Fatalf("resume not bitwise identical at element %d: %v vs %v", e, resumed.Rho[e], continuous.Rho[e])
		}
	}
	for n := range continuous.U {
		if resumed.U[n] != continuous.U[n] || resumed.X[n] != continuous.X[n] {
			t.Fatalf("resume not bitwise identical at node %d", n)
		}
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	p, _ := setup.Sod(16, 2)
	s, _ := p.NewState()
	snap := Capture(s, "sod", 16, 2)
	if err := snap.Restore(s, "noh", 16, 2); err == nil {
		t.Fatal("problem mismatch accepted")
	}
	if err := snap.Restore(s, "sod", 20, 2); err == nil {
		t.Fatal("resolution mismatch accepted")
	}
	snap.Version = 99
	if err := snap.Restore(s, "sod", 16, 2); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadGarbageFails(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	p, _ := setup.Sod(8, 2)
	s, _ := p.NewState()
	snap := Capture(s, "sod", 8, 2)
	snap.Version = 1
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Read(&buf)
	if err == nil {
		t.Fatal("version-1 snapshot accepted")
	}
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("error %v does not match ErrVersion", err)
	}
}

func TestReadTruncatedFails(t *testing.T) {
	p, _ := setup.Sod(16, 2)
	s, _ := p.NewState()
	var buf bytes.Buffer
	if err := Capture(s, "sod", 16, 2).Write(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated snapshot decoded")
	}
}

func TestValidateChecksIdentityAndSizes(t *testing.T) {
	p, _ := setup.Sod(16, 2)
	s, _ := p.NewState()
	snap := Capture(s, "sod", 16, 2)
	if err := snap.Validate("sod", 16, 2, p.Mesh.NEl, p.Mesh.NNd); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate("noh", 16, 2, p.Mesh.NEl, p.Mesh.NNd); err == nil {
		t.Fatal("problem mismatch accepted")
	}
	if err := snap.Validate("sod", 16, 2, p.Mesh.NEl+1, p.Mesh.NNd); err == nil {
		t.Fatal("element-count mismatch accepted")
	}
	snap.Rho = snap.Rho[:len(snap.Rho)-1]
	if err := snap.Validate("sod", 16, 2, p.Mesh.NEl, p.Mesh.NNd); err == nil {
		t.Fatal("internally inconsistent snapshot accepted")
	}
}

// A snapshot assembled rank-by-rank through Gather must equal a serial
// Capture of the same global state, and Restore must restrict it back
// onto any sub-mesh exactly.
func TestDistributedGatherMatchesSerialCapture(t *testing.T) {
	p, err := setup.Sod(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := p.NewState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if _, err := serial.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := Capture(serial, "sod", 32, 4)

	// Build 3 local states and copy the evolved serial fields onto
	// them (owned and ghost), as a converged parallel run would hold.
	part, err := partition.RCBMesh(p.Mesh, 3)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := partition.Split(p.Mesh, part, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := New("sod", 32, 4, p.Mesh.NEl, p.Mesh.NNd)
	for _, sm := range subs {
		lm := sm.M
		rho := make([]float64, lm.NEl)
		ein := make([]float64, lm.NEl)
		for i, ge := range lm.GlobalEl {
			rho[i] = p.Rho[ge]
			ein[i] = p.Ein[ge]
		}
		ls, err := hydro.NewState(lm, p.Opt, rho, ein)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Restore(ls, "sod", 32, 4); err != nil {
			t.Fatal(err)
		}
		if err := got.Gather(ls); err != nil {
			t.Fatal(err)
		}
	}
	got.SetClock(want.Time, want.DtPrev, want.StepCount, want.ExternalWork, want.FloorEnergy)

	for e := 0; e < want.NEl; e++ {
		if got.Rho[e] != want.Rho[e] || got.Ein[e] != want.Ein[e] || got.Mass[e] != want.Mass[e] {
			t.Fatalf("gathered element %d differs from serial capture", e)
		}
		for k := 0; k < 4; k++ {
			if got.CMass[4*e+k] != want.CMass[4*e+k] {
				t.Fatalf("gathered corner mass %d/%d differs", e, k)
			}
		}
	}
	for n := 0; n < want.NNd; n++ {
		if got.X[n] != want.X[n] || got.U[n] != want.U[n] || got.NdMass[n] != want.NdMass[n] {
			t.Fatalf("gathered node %d differs from serial capture", n)
		}
	}
}
