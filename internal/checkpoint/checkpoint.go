// Package checkpoint serialises and restores the evolving hydrodynamic
// state — the mini-app's restart-dump facility (the reference
// implementation writes Silo dumps; this one uses encoding/gob, which
// keeps the repository dependency-free).
//
// Format v2 snapshots are partition-independent: all fields are stored
// in global mesh order, so a run checkpointed at N ranks can resume at
// any other rank count with any partitioner. Each rank Gathers its
// owned entities into the global arrays through the mesh's
// GlobalEl/GlobalNd maps; Restore restricts the global arrays back onto
// an arbitrary local (owned + ghost) sub-mesh. A Snapshot captures
// everything a Lagrangian run needs to continue bit-for-bit:
// coordinates, velocities, thermodynamic state, the (remap-mutable)
// mass distribution, the simulation clock and the audit accumulators.
package checkpoint

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"bookleaf/internal/hydro"
)

// FormatVersion identifies the snapshot layout. Version 2 introduced
// the partition-independent global layout (and the NEl/NNd size
// fields); version 1 snapshots are rejected.
const FormatVersion = 2

// ErrVersion is matched (via errors.Is) by errors reporting a snapshot
// whose format version this build cannot read.
var ErrVersion = errors.New("checkpoint: unsupported snapshot format version")

// Snapshot is a serialisable restart dump in global mesh order.
type Snapshot struct {
	Version int

	// Identity of the run: problem name, mesh resolution and global
	// mesh sizes. Restore refuses mismatched targets.
	Problem  string
	NX, NY   int
	NEl, NNd int

	// Clock and audits. ExternalWork and FloorEnergy are the global
	// (rank-summed) accumulators.
	Time, DtPrev              float64
	StepCount                 int
	ExternalWork, FloorEnergy float64

	// Node fields, indexed by global node id.
	X, Y, U, V, NdMass []float64
	// Element fields, indexed by global element id.
	Rho, Ein, P, Q, Csq, Vol, Mass []float64
	// Corner masses, corner k of global element e at 4*e+k.
	CMass []float64
}

// New allocates an empty snapshot sized for the global mesh.
func New(problem string, nx, ny, nel, nnd int) *Snapshot {
	return &Snapshot{
		Version: FormatVersion,
		Problem: problem, NX: nx, NY: ny, NEl: nel, NNd: nnd,
		X: make([]float64, nnd), Y: make([]float64, nnd),
		U: make([]float64, nnd), V: make([]float64, nnd),
		NdMass: make([]float64, nnd),
		Rho:    make([]float64, nel), Ein: make([]float64, nel),
		P: make([]float64, nel), Q: make([]float64, nel),
		Csq: make([]float64, nel), Vol: make([]float64, nel),
		Mass: make([]float64, nel), CMass: make([]float64, 4*nel),
	}
}

// globalEl returns the global id of local element i on s's mesh.
func globalEl(s *hydro.State, i int) int {
	if s.Mesh.GlobalEl == nil {
		return i
	}
	return s.Mesh.GlobalEl[i]
}

// globalNd returns the global id of local node i on s's mesh.
func globalNd(s *hydro.State, i int) int {
	if s.Mesh.GlobalNd == nil {
		return i
	}
	return s.Mesh.GlobalNd[i]
}

// Gather writes the owned entities of s into their global slots. On a
// partitioned run every rank Gathers into a shared snapshot (the owned
// slots are disjoint); a serial state fills the whole snapshot.
func (sn *Snapshot) Gather(s *hydro.State) error {
	m := s.Mesh
	cs := s.CornerStride()
	for i := 0; i < m.NOwnEl; i++ {
		ge := globalEl(s, i)
		if ge < 0 || ge >= sn.NEl {
			return fmt.Errorf("checkpoint: local element %d maps to global %d outside [0,%d)", i, ge, sn.NEl)
		}
		sn.Rho[ge] = s.Rho[i]
		sn.Ein[ge] = s.Ein[i]
		sn.P[ge] = s.P[i]
		sn.Q[ge] = s.Q[i]
		sn.Csq[ge] = s.Csq[i]
		sn.Vol[ge] = s.Vol[i]
		sn.Mass[ge] = s.Mass[i]
		// The snapshot keeps the fixed stride-4 corner format whatever
		// the in-memory layout — the on-disk format is layout-blind.
		for k := 0; k < 4; k++ {
			sn.CMass[4*ge+k] = s.CMass[cs*i+k]
		}
	}
	for i := 0; i < m.NOwnNd; i++ {
		gn := globalNd(s, i)
		if gn < 0 || gn >= sn.NNd {
			return fmt.Errorf("checkpoint: local node %d maps to global %d outside [0,%d)", i, gn, sn.NNd)
		}
		sn.X[gn] = s.X[i]
		sn.Y[gn] = s.Y[i]
		sn.U[gn] = s.U[i]
		sn.V[gn] = s.V[i]
		sn.NdMass[gn] = s.NdMass[i]
	}
	return nil
}

// SetClock records the simulation clock and the global audit
// accumulators (rank-summed on parallel runs).
func (sn *Snapshot) SetClock(time, dtPrev float64, step int, work, floor float64) {
	sn.Time = time
	sn.DtPrev = dtPrev
	sn.StepCount = step
	sn.ExternalWork = work
	sn.FloorEnergy = floor
}

// Capture builds a complete snapshot from a serial (global-mesh) state.
func Capture(s *hydro.State, problem string, nx, ny int) *Snapshot {
	sn := New(problem, nx, ny, s.Mesh.NEl, s.Mesh.NNd)
	// A serial state owns every entity, so Gather cannot fail.
	if err := sn.Gather(s); err != nil {
		panic(err)
	}
	sn.SetClock(s.Time, s.DtPrev, s.StepCount, s.ExternalWork, s.FloorEnergy)
	return sn
}

// Validate checks the snapshot against the identity and global sizes of
// the run about to consume it; drivers call it before any ranks spawn.
func (sn *Snapshot) Validate(problem string, nx, ny, nel, nnd int) error {
	if sn.Version != FormatVersion {
		return fmt.Errorf("%w: snapshot is version %d, this build reads version %d",
			ErrVersion, sn.Version, FormatVersion)
	}
	if sn.Problem != problem || sn.NX != nx || sn.NY != ny {
		return fmt.Errorf("checkpoint: snapshot is %s %dx%d, run is %s %dx%d",
			sn.Problem, sn.NX, sn.NY, problem, nx, ny)
	}
	if sn.NEl != nel || sn.NNd != nnd {
		return fmt.Errorf("checkpoint: snapshot mesh has %d elements / %d nodes, run has %d / %d",
			sn.NEl, sn.NNd, nel, nnd)
	}
	if len(sn.Rho) != sn.NEl || len(sn.X) != sn.NNd || len(sn.CMass) != 4*sn.NEl {
		return fmt.Errorf("checkpoint: snapshot field sizes inconsistent with declared mesh (%d elements, %d nodes) — truncated or corrupted dump?",
			sn.NEl, sn.NNd)
	}
	return nil
}

// Restore loads the snapshot into s, restricting the global fields to
// s's local entities — owned and ghost alike, so no post-restore halo
// refresh is needed (ghosts receive exactly the owner's values). s may
// live on the global mesh (serial) or on any sub-mesh of the same
// global problem, regardless of the rank count or partitioner that
// wrote the snapshot.
func (sn *Snapshot) Restore(s *hydro.State, problem string, nx, ny int) error {
	if sn.Version != FormatVersion {
		return fmt.Errorf("%w: snapshot is version %d, this build reads version %d",
			ErrVersion, sn.Version, FormatVersion)
	}
	if sn.Problem != problem || sn.NX != nx || sn.NY != ny {
		return fmt.Errorf("checkpoint: snapshot is %s %dx%d, run is %s %dx%d",
			sn.Problem, sn.NX, sn.NY, problem, nx, ny)
	}
	m := s.Mesh
	cs := s.CornerStride()
	if m.GlobalEl == nil && (m.NEl != sn.NEl || m.NNd != sn.NNd) {
		return fmt.Errorf("checkpoint: field sizes do not match the state (nodes %d vs %d, elements %d vs %d)",
			sn.NNd, m.NNd, sn.NEl, m.NEl)
	}
	for i := 0; i < m.NEl; i++ {
		ge := globalEl(s, i)
		if ge < 0 || ge >= sn.NEl {
			return fmt.Errorf("checkpoint: local element %d maps to global %d outside [0,%d)", i, ge, sn.NEl)
		}
		s.Rho[i] = sn.Rho[ge]
		s.Ein[i] = sn.Ein[ge]
		s.P[i] = sn.P[ge]
		s.Q[i] = sn.Q[ge]
		s.Csq[i] = sn.Csq[ge]
		s.Vol[i] = sn.Vol[ge]
		s.Mass[i] = sn.Mass[ge]
		for k := 0; k < 4; k++ {
			s.CMass[cs*i+k] = sn.CMass[4*ge+k]
		}
	}
	for i := 0; i < m.NNd; i++ {
		gn := globalNd(s, i)
		if gn < 0 || gn >= sn.NNd {
			return fmt.Errorf("checkpoint: local node %d maps to global %d outside [0,%d)", i, gn, sn.NNd)
		}
		s.X[i] = sn.X[gn]
		s.Y[i] = sn.Y[gn]
		s.U[i] = sn.U[gn]
		s.V[i] = sn.V[gn]
		s.NdMass[i] = sn.NdMass[gn]
	}
	s.Time = sn.Time
	s.DtPrev = sn.DtPrev
	s.StepCount = sn.StepCount
	s.ExternalWork = sn.ExternalWork
	s.FloorEnergy = sn.FloorEnergy
	s.RefreshAux()
	return nil
}

// Write encodes the snapshot to w.
func (sn *Snapshot) Write(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(sn); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Read decodes a snapshot from r. A short or garbled stream returns a
// wrapped decode error; a snapshot from an incompatible format version
// returns an error matching ErrVersion.
func Read(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	if err := gob.NewDecoder(r).Decode(&sn); err != nil {
		return nil, fmt.Errorf("checkpoint: decode (truncated or corrupted dump?): %w", err)
	}
	if sn.Version != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot is version %d, this build reads version %d",
			ErrVersion, sn.Version, FormatVersion)
	}
	return &sn, nil
}
