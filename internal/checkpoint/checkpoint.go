// Package checkpoint serialises and restores the evolving hydrodynamic
// state — the mini-app's restart-dump facility (the reference
// implementation writes Silo dumps; this one uses encoding/gob, which
// keeps the repository dependency-free). A Snapshot captures everything
// a Lagrangian run needs to continue bit-for-bit: coordinates,
// velocities, thermodynamic state, the (remap-mutable) mass
// distribution, the simulation clock and the audit accumulators.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"

	"bookleaf/internal/hydro"
)

// FormatVersion identifies the snapshot layout.
const FormatVersion = 1

// Snapshot is a serialisable restart dump.
type Snapshot struct {
	Version int

	// Identity of the run: problem name and mesh resolution. Restore
	// refuses mismatched targets.
	Problem string
	NX, NY  int

	// Clock and audits.
	Time, DtPrev              float64
	StepCount                 int
	ExternalWork, FloorEnergy float64

	// Node fields.
	X, Y, U, V, NdMass []float64
	// Element fields.
	Rho, Ein, P, Q, Csq, Vol, Mass []float64
	// Corner masses.
	CMass []float64
}

// Capture copies the evolving state of s into a Snapshot.
func Capture(s *hydro.State, problem string, nx, ny int) *Snapshot {
	cp := func(a []float64) []float64 { return append([]float64(nil), a...) }
	return &Snapshot{
		Version: FormatVersion,
		Problem: problem, NX: nx, NY: ny,
		Time: s.Time, DtPrev: s.DtPrev, StepCount: s.StepCount,
		ExternalWork: s.ExternalWork, FloorEnergy: s.FloorEnergy,
		X: cp(s.X), Y: cp(s.Y), U: cp(s.U), V: cp(s.V), NdMass: cp(s.NdMass),
		Rho: cp(s.Rho), Ein: cp(s.Ein), P: cp(s.P), Q: cp(s.Q),
		Csq: cp(s.Csq), Vol: cp(s.Vol), Mass: cp(s.Mass), CMass: cp(s.CMass),
	}
}

// Restore loads the snapshot into s, which must have been built for the
// same problem and resolution.
func (sn *Snapshot) Restore(s *hydro.State, problem string, nx, ny int) error {
	if sn.Version != FormatVersion {
		return fmt.Errorf("checkpoint: format version %d, want %d", sn.Version, FormatVersion)
	}
	if sn.Problem != problem || sn.NX != nx || sn.NY != ny {
		return fmt.Errorf("checkpoint: snapshot is %s %dx%d, run is %s %dx%d",
			sn.Problem, sn.NX, sn.NY, problem, nx, ny)
	}
	if len(sn.X) != len(s.X) || len(sn.Rho) != len(s.Rho) || len(sn.CMass) != len(s.CMass) {
		return fmt.Errorf("checkpoint: field sizes do not match the state (nodes %d vs %d, elements %d vs %d)",
			len(sn.X), len(s.X), len(sn.Rho), len(s.Rho))
	}
	copy(s.X, sn.X)
	copy(s.Y, sn.Y)
	copy(s.U, sn.U)
	copy(s.V, sn.V)
	copy(s.NdMass, sn.NdMass)
	copy(s.Rho, sn.Rho)
	copy(s.Ein, sn.Ein)
	copy(s.P, sn.P)
	copy(s.Q, sn.Q)
	copy(s.Csq, sn.Csq)
	copy(s.Vol, sn.Vol)
	copy(s.Mass, sn.Mass)
	copy(s.CMass, sn.CMass)
	s.Time = sn.Time
	s.DtPrev = sn.DtPrev
	s.StepCount = sn.StepCount
	s.ExternalWork = sn.ExternalWork
	s.FloorEnergy = sn.FloorEnergy
	return nil
}

// Write encodes the snapshot to w.
func (sn *Snapshot) Write(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(sn); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Read decodes a snapshot from r.
func Read(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	if err := gob.NewDecoder(r).Decode(&sn); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &sn, nil
}
