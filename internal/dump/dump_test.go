package dump

import (
	"strings"
	"testing"
)

func TestColumns(t *testing.T) {
	var b strings.Builder
	err := Columns(&b, []string{"x", "rho"}, []float64{0, 1}, []float64{2.5, 3.5})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,rho\n0,2.5\n1,3.5\n"
	if b.String() != want {
		t.Fatalf("got %q want %q", b.String(), want)
	}
}

func TestColumnsErrors(t *testing.T) {
	var b strings.Builder
	if err := Columns(&b, []string{"x"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("name/column count mismatch accepted")
	}
	if err := Columns(&b, []string{"x", "y"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("ragged columns accepted")
	}
	if err := Columns(&b, nil); err == nil {
		t.Fatal("empty columns accepted")
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	if err := Series(&b, "noh", []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# noh\n") || !strings.Contains(out, "1 3\n2 4\n") {
		t.Fatalf("series output %q", out)
	}
	if err := Series(&b, "bad", []float64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
