package dump

import (
	"bufio"
	"fmt"
	"io"
)

// VTKField is one named field attached to a VTK dump.
type VTKField struct {
	Name string
	// Values has one entry per cell (cell-centred) or per point
	// (node-centred); which one is inferred from its length.
	Values []float64
}

// WriteVTK writes a legacy-format VTK unstructured-grid file of a quad
// mesh with cell and point data — loadable by ParaView/VisIt, the
// mini-app's stand-in for the reference code's visualisation dumps.
// x, y are node coordinates; elNd the per-element node quadruples.
func WriteVTK(w io.Writer, title string, x, y []float64, elNd [][4]int, fields ...VTKField) error {
	if len(x) != len(y) {
		return fmt.Errorf("dump: coordinate lengths differ: %d vs %d", len(x), len(y))
	}
	nnd := len(x)
	nel := len(elNd)
	for e, nd := range elNd {
		for k := 0; k < 4; k++ {
			if nd[k] < 0 || nd[k] >= nnd {
				return fmt.Errorf("dump: element %d references node %d outside [0,%d)", e, nd[k], nnd)
			}
		}
	}
	for _, f := range fields {
		if len(f.Values) != nel && len(f.Values) != nnd {
			return fmt.Errorf("dump: field %q has %d values, want %d (cells) or %d (points)",
				f.Name, len(f.Values), nel, nnd)
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", nnd)
	for n := 0; n < nnd; n++ {
		fmt.Fprintf(bw, "%.10g %.10g 0\n", x[n], y[n])
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", nel, 5*nel)
	for _, nd := range elNd {
		fmt.Fprintf(bw, "4 %d %d %d %d\n", nd[0], nd[1], nd[2], nd[3])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", nel)
	for e := 0; e < nel; e++ {
		fmt.Fprintln(bw, 9) // VTK_QUAD
	}

	wroteCellHeader, wrotePointHeader := false, false
	for _, f := range fields {
		if len(f.Values) == nel {
			if !wroteCellHeader {
				fmt.Fprintf(bw, "CELL_DATA %d\n", nel)
				wroteCellHeader = true
			}
			writeScalars(bw, f)
		}
	}
	for _, f := range fields {
		if len(f.Values) == nnd && (nel != nnd || !wroteCellHeader) {
			if !wrotePointHeader {
				fmt.Fprintf(bw, "POINT_DATA %d\n", nnd)
				wrotePointHeader = true
			}
			writeScalars(bw, f)
		}
	}
	return bw.Flush()
}

func writeScalars(w io.Writer, f VTKField) {
	fmt.Fprintf(w, "SCALARS %s double 1\nLOOKUP_TABLE default\n", f.Name)
	for _, v := range f.Values {
		fmt.Fprintf(w, "%.10g\n", v)
	}
}
