package dump

import (
	"strings"
	"testing"
)

func unitQuadMesh() ([]float64, []float64, [][4]int) {
	x := []float64{0, 1, 2, 0, 1, 2}
	y := []float64{0, 0, 0, 1, 1, 1}
	el := [][4]int{{0, 1, 4, 3}, {1, 2, 5, 4}}
	return x, y, el
}

func TestWriteVTKStructure(t *testing.T) {
	x, y, el := unitQuadMesh()
	var b strings.Builder
	err := WriteVTK(&b, "test dump", x, y, el,
		VTKField{Name: "rho", Values: []float64{1.5, 2.5}},
		VTKField{Name: "u", Values: []float64{0, 1, 2, 3, 4, 5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET UNSTRUCTURED_GRID",
		"POINTS 6 double",
		"CELLS 2 10",
		"4 0 1 4 3",
		"CELL_TYPES 2",
		"CELL_DATA 2",
		"SCALARS rho double 1",
		"POINT_DATA 6",
		"SCALARS u double 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VTK output missing %q:\n%s", want, out)
		}
	}
	// Both quads typed VTK_QUAD (9).
	if !strings.Contains(out, "CELL_TYPES 2\n9\n9\n") {
		t.Fatalf("cell types wrong:\n%s", out)
	}
}

func TestWriteVTKValidation(t *testing.T) {
	x, y, el := unitQuadMesh()
	var b strings.Builder
	if err := WriteVTK(&b, "t", x, y[:3], el); err == nil {
		t.Fatal("mismatched coords accepted")
	}
	bad := [][4]int{{0, 1, 99, 3}}
	if err := WriteVTK(&b, "t", x, y, bad); err == nil {
		t.Fatal("bad node index accepted")
	}
	if err := WriteVTK(&b, "t", x, y, el, VTKField{Name: "z", Values: []float64{1}}); err == nil {
		t.Fatal("wrong-length field accepted")
	}
}

func TestWriteVTKNoFields(t *testing.T) {
	x, y, el := unitQuadMesh()
	var b strings.Builder
	if err := WriteVTK(&b, "bare", x, y, el); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "CELL_DATA") {
		t.Fatal("unexpected data section")
	}
}
