// Package dump writes simulation output as CSV/gnuplot-friendly
// columns — the mini-app's stand-in for the reference code's
// visualisation dumps.
package dump

import (
	"fmt"
	"io"
	"strings"
)

// Columns writes named columns of equal length as CSV.
func Columns(w io.Writer, names []string, cols ...[]float64) error {
	if len(names) != len(cols) {
		return fmt.Errorf("dump: %d names for %d columns", len(names), len(cols))
	}
	if len(cols) == 0 {
		return fmt.Errorf("dump: no columns")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("dump: column %q has %d rows, want %d", names[i], len(c), n)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	for row := 0; row < n; row++ {
		for i := range cols {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%.10g", cols[i][row]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Series writes one labelled (x, y) series block in gnuplot style.
func Series(w io.Writer, label string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("dump: series %q length mismatch %d vs %d", label, len(xs), len(ys))
	}
	if _, err := fmt.Fprintf(w, "# %s\n", label); err != nil {
		return err
	}
	for i := range xs {
		if _, err := fmt.Fprintf(w, "%.10g %.10g\n", xs[i], ys[i]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
