package serve

import (
	"errors"
	"math"
	"strings"
	"testing"

	"bookleaf/internal/machine"
)

// Admission-control unit tests: the 429 boundary is exact and
// Retry-After reflects the predicted drain time. AdmitOnly keeps the
// scheduler from actually running anything, so these are pure
// arithmetic checks against the same predictor the server uses.

const admitDeck = "[control]\nproblem = sod\nnx = 200\nny = 4\ntend = 0.25\n"

func admitEst(threads int) machine.Estimate {
	return machine.PredictRun(machine.RunShape{
		Problem: "sod", NX: 200, NY: 4, TEnd: 0.25, Threads: threads,
	})
}

func TestAdmissionExactBoundary(t *testing.T) {
	est := admitEst(1)

	// Budget exactly the estimate: the deck fits, boundary inclusive.
	s := New(Options{Workers: 1, Threads: 1, BudgetSeconds: est.Seconds, AdmitOnly: true})
	defer s.Close()
	j, err := s.Submit(strings.NewReader(admitDeck), 0)
	if err != nil {
		t.Fatalf("deck at exact budget rejected: %v", err)
	}
	if j.Est.Seconds != est.Seconds {
		t.Fatalf("server estimate %g, test estimate %g", j.Est.Seconds, est.Seconds)
	}

	// One ulp below the estimate: 429 fires.
	s2 := New(Options{Workers: 1, Threads: 1,
		BudgetSeconds: math.Nextafter(est.Seconds, 0), AdmitOnly: true})
	defer s2.Close()
	_, err = s2.Submit(strings.NewReader(admitDeck), 0)
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("deck one ulp over budget admitted (err=%v)", err)
	}
	if over.RetryAfter < 1 {
		t.Fatalf("Retry-After %d < 1", over.RetryAfter)
	}
}

func TestAdmissionRetryAfterDrainTime(t *testing.T) {
	// A deliberately enormous deck: the excess over a tiny budget is
	// essentially the whole estimate, so Retry-After must scale as
	// ceil(excess / workers).
	bigDeck := "[control]\nproblem = sod\nnx = 5000\nny = 100\ntend = 0.25\n"
	bigEst := machine.PredictRun(machine.RunShape{
		Problem: "sod", NX: 5000, NY: 100, TEnd: 0.25, Threads: 1,
	})
	if bigEst.Seconds < 10 {
		t.Fatalf("test deck too cheap to measure drain time: %g s", bigEst.Seconds)
	}
	for _, workers := range []int{1, 4} {
		s := New(Options{Workers: workers, Threads: 1, BudgetSeconds: 1, AdmitOnly: true})
		_, err := s.Submit(strings.NewReader(bigDeck), 0)
		var over *OverloadedError
		if !errors.As(err, &over) {
			t.Fatalf("workers=%d: giant deck admitted (err=%v)", workers, err)
		}
		want := int(math.Ceil((bigEst.Seconds - 1) / float64(workers)))
		if over.RetryAfter != want {
			t.Fatalf("workers=%d: Retry-After %d, want ceil(%g/%d)=%d",
				workers, over.RetryAfter, bigEst.Seconds-1, workers, want)
		}
		s.Close()
	}
}

func TestAdmissionBacklogAccounting(t *testing.T) {
	est := admitEst(1)
	// Room for exactly two decks. AdmitOnly completes jobs instantly,
	// releasing their backlog, so submit under the lock-free public API
	// and check the counter returns to zero.
	s := New(Options{Workers: 1, Threads: 1, BudgetSeconds: 2 * est.Seconds, AdmitOnly: true})
	defer s.Close()
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(strings.NewReader(admitDeck), 0); err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
		if got := s.Stats().Backlog; got != 0 {
			t.Fatalf("backlog %g after instant completion, want 0", got)
		}
	}
}

func TestSubmitRejectsFileIO(t *testing.T) {
	s := New(Options{Workers: 1, AdmitOnly: true})
	defer s.Close()
	for _, deck := range []string{
		admitDeck + "checkpoint = /tmp/evil.ckpt\n",
		admitDeck + "resume = /etc/passwd\n",
		admitDeck + "[obs]\ntrace = /tmp/evil\n",
		admitDeck + "[obs]\nmetrics = /tmp/evil.json\n",
	} {
		_, err := s.Submit(strings.NewReader(deck), 0)
		var bad *BadDeckError
		if !errors.As(err, &bad) {
			t.Fatalf("file-io deck accepted (err=%v):\n%s", err, deck)
		}
	}
}

func TestSubmitRejectsOversizedDeck(t *testing.T) {
	s := New(Options{Workers: 1, MaxDeckBytes: 64, AdmitOnly: true})
	defer s.Close()
	_, err := s.Submit(strings.NewReader(admitDeck+strings.Repeat("# padding\n", 32)), 0)
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("oversized deck accepted (err=%v)", err)
	}
}

func TestClosedServerRejects(t *testing.T) {
	s := New(Options{Workers: 1, AdmitOnly: true})
	s.Close()
	if _, err := s.Submit(strings.NewReader(admitDeck), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed server accepted a job (err=%v)", err)
	}
}
