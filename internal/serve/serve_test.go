package serve

import (
	"errors"
	"math"
	"strings"
	"testing"

	"bookleaf/internal/machine"
)

// Admission-control unit tests: the 429 boundary is exact and
// Retry-After reflects the predicted drain time. AdmitOnly keeps the
// scheduler from actually running anything, so these are pure
// arithmetic checks against the same predictor the server uses.

const admitDeck = "[control]\nproblem = sod\nnx = 200\nny = 4\ntend = 0.25\n"

func admitEst(threads int) machine.Estimate {
	return machine.PredictRun(machine.RunShape{
		Problem: "sod", NX: 200, NY: 4, TEnd: 0.25, Threads: threads,
	})
}

func TestAdmissionExactBoundary(t *testing.T) {
	est := admitEst(1)

	// Budget exactly the estimate: the deck fits, boundary inclusive.
	s := New(Options{Workers: 1, Threads: 1, BudgetSeconds: est.Seconds, AdmitOnly: true})
	defer s.Close()
	j, err := s.Submit(strings.NewReader(admitDeck), 0, "")
	if err != nil {
		t.Fatalf("deck at exact budget rejected: %v", err)
	}
	if j.Est.Seconds != est.Seconds {
		t.Fatalf("server estimate %g, test estimate %g", j.Est.Seconds, est.Seconds)
	}

	// One ulp below the estimate: 429 fires.
	s2 := New(Options{Workers: 1, Threads: 1,
		BudgetSeconds: math.Nextafter(est.Seconds, 0), AdmitOnly: true})
	defer s2.Close()
	_, err = s2.Submit(strings.NewReader(admitDeck), 0, "")
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("deck one ulp over budget admitted (err=%v)", err)
	}
	if over.RetryAfter < 1 {
		t.Fatalf("Retry-After %d < 1", over.RetryAfter)
	}
}

func TestAdmissionRetryAfterDrainTime(t *testing.T) {
	// A deliberately enormous deck: the excess over a tiny budget is
	// essentially the whole estimate, so Retry-After must scale as
	// ceil(excess / workers).
	bigDeck := "[control]\nproblem = sod\nnx = 5000\nny = 100\ntend = 0.25\n"
	bigEst := machine.PredictRun(machine.RunShape{
		Problem: "sod", NX: 5000, NY: 100, TEnd: 0.25, Threads: 1,
	})
	if bigEst.Seconds < 10 {
		t.Fatalf("test deck too cheap to measure drain time: %g s", bigEst.Seconds)
	}
	for _, workers := range []int{1, 4} {
		s := New(Options{Workers: workers, Threads: 1, BudgetSeconds: 1, AdmitOnly: true})
		_, err := s.Submit(strings.NewReader(bigDeck), 0, "")
		var over *OverloadedError
		if !errors.As(err, &over) {
			t.Fatalf("workers=%d: giant deck admitted (err=%v)", workers, err)
		}
		want := int(math.Ceil((bigEst.Seconds - 1) / float64(workers)))
		if over.RetryAfter != want {
			t.Fatalf("workers=%d: Retry-After %d, want ceil(%g/%d)=%d",
				workers, over.RetryAfter, bigEst.Seconds-1, workers, want)
		}
		s.Close()
	}
}

func TestAdmissionBacklogAccounting(t *testing.T) {
	est := admitEst(1)
	// Room for exactly two decks. AdmitOnly completes jobs instantly,
	// releasing their backlog, so submit under the lock-free public API
	// and check the counter returns to zero.
	s := New(Options{Workers: 1, Threads: 1, BudgetSeconds: 2 * est.Seconds, AdmitOnly: true})
	defer s.Close()
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(strings.NewReader(admitDeck), 0, ""); err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
		if got := s.Stats().Backlog; got != 0 {
			t.Fatalf("backlog %g after instant completion, want 0", got)
		}
	}
}

func TestSubmitRejectsFileIO(t *testing.T) {
	s := New(Options{Workers: 1, AdmitOnly: true})
	defer s.Close()
	for _, deck := range []string{
		admitDeck + "checkpoint = /tmp/evil.ckpt\n",
		admitDeck + "resume = /etc/passwd\n",
		admitDeck + "[obs]\ntrace = /tmp/evil\n",
		admitDeck + "[obs]\nmetrics = /tmp/evil.json\n",
	} {
		_, err := s.Submit(strings.NewReader(deck), 0, "")
		var bad *BadDeckError
		if !errors.As(err, &bad) {
			t.Fatalf("file-io deck accepted (err=%v):\n%s", err, deck)
		}
	}
}

// TestSubmitRejectsResourceBombs: deck-declared parallelism and mesh
// size are capped at admission — ranks/threads spawn goroutines and
// pools, NX*NY allocates mesh, so an untrusted deck past the caps must
// die as a typed 400 before any of that exists. The budget is set huge
// so the caps, not admission arithmetic, are what reject.
func TestSubmitRejectsResourceBombs(t *testing.T) {
	s := New(Options{Workers: 1, BudgetSeconds: 1e300, AdmitOnly: true})
	defer s.Close()
	for _, deck := range []string{
		admitDeck + "ranks = 100000\n",
		admitDeck + "threads = 1000000\n",
		"[control]\nproblem = sod\nnx = 100000000\nny = 100000000\n", // nx, ny over the cap
		"[control]\nproblem = sod\nnx = 4096\nny = 4096\n",           // product over the 4Mi cap
	} {
		_, err := s.Submit(strings.NewReader(deck), 0, "")
		var bad *BadDeckError
		if !errors.As(err, &bad) {
			t.Fatalf("resource-bomb deck admitted (err=%v):\n%s", err, deck)
		}
	}
	// Parallelism inside the caps still admits.
	if _, err := s.Submit(strings.NewReader(admitDeck+"ranks = 2\nthreads = 2\n"), 0, ""); err != nil {
		t.Fatalf("in-cap parallel deck rejected: %v", err)
	}
}

// TestRanksChargedInAdmission: a ranks=2 deck occupies twice the CPU of
// the serial deck, so its admission estimate must double — and the
// deck's own thread declaration must not discount it (a thread count
// may never lower the price of an identical deck).
func TestRanksChargedInAdmission(t *testing.T) {
	s := New(Options{Workers: 1, Threads: 1, AdmitOnly: true})
	defer s.Close()
	serial, err := s.Submit(strings.NewReader(admitDeck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	ranks2, err := s.Submit(strings.NewReader(admitDeck+"ranks = 2\n"), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if ranks2.Est.Seconds != 2*serial.Est.Seconds {
		t.Fatalf("ranks=2 estimate %g, want 2x serial %g",
			ranks2.Est.Seconds, 2*serial.Est.Seconds)
	}
	threaded, err := s.Submit(strings.NewReader(admitDeck+"ranks = 2\nthreads = 8\n"), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if threaded.Est.Seconds < ranks2.Est.Seconds {
		t.Fatalf("deck-declared threads discounted the estimate: %g < %g",
			threaded.Est.Seconds, ranks2.Est.Seconds)
	}
}

// TestTerminalJobRetention: terminal jobs (and their result arrays) are
// retained only up to MaxTerminalJobs; the oldest evict from the job
// table so a long-running daemon's memory stays bounded.
func TestTerminalJobRetention(t *testing.T) {
	s := New(Options{Workers: 1, MaxTerminalJobs: 2, AdmitOnly: true})
	defer s.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit(strings.NewReader(admitDeck), 0, "")
		if err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids[:3] {
		if _, ok := s.Get(id); ok {
			t.Fatalf("job %s should have been evicted from retention", id)
		}
	}
	for _, id := range ids[3:] {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("job %s evicted while inside the retention window", id)
		}
	}
}

func TestSubmitRejectsOversizedDeck(t *testing.T) {
	s := New(Options{Workers: 1, MaxDeckBytes: 64, AdmitOnly: true})
	defer s.Close()
	_, err := s.Submit(strings.NewReader(admitDeck+strings.Repeat("# padding\n", 32)), 0, "")
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("oversized deck accepted (err=%v)", err)
	}
}

func TestClosedServerRejects(t *testing.T) {
	s := New(Options{Workers: 1, AdmitOnly: true})
	s.Close()
	if _, err := s.Submit(strings.NewReader(admitDeck), 0, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed server accepted a job (err=%v)", err)
	}
}

// TestCalibrationRefinesEstimates: a completed job's measured wall
// seconds feed the online calibrator, and the next submission of the
// same deck is priced at the raw model estimate times the learned
// scale. Disabling calibration pins the scale at 1.
func TestCalibrationRefinesEstimates(t *testing.T) {
	deck := "[control]\nproblem = sod\nnx = 24\nny = 4\nmaxsteps = 5\n"
	raw := machine.PredictRun(machine.RunShape{
		Problem: "sod", NX: 24, NY: 4, MaxSteps: 5, Threads: 1,
	})

	s := New(Options{Workers: 1, Threads: 1, BudgetSeconds: 1e9})
	defer s.Close()
	if st := s.Stats(); st.CalibrationScale != 1 || st.CalibrationN != 0 {
		t.Fatalf("fresh server calibration %+v, want scale 1, n 0", st)
	}
	j1, err := s.Submit(strings.NewReader(deck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if j1.Est.Seconds != raw.Seconds {
		t.Fatalf("uncalibrated estimate %g, want model %g", j1.Est.Seconds, raw.Seconds)
	}
	j1.Wait()
	st := s.Stats()
	if st.CalibrationN != 1 {
		t.Fatalf("calibration observations %d after one completion, want 1", st.CalibrationN)
	}
	if !(st.CalibrationScale > 0) || math.IsInf(st.CalibrationScale, 0) {
		t.Fatalf("degenerate calibration scale %g", st.CalibrationScale)
	}
	j2, err := s.Submit(strings.NewReader(deck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	want := raw.Seconds * st.CalibrationScale
	if math.Abs(j2.Est.Seconds-want)/want > 1e-9 {
		t.Fatalf("calibrated estimate %g, want model %g x scale %g = %g",
			j2.Est.Seconds, raw.Seconds, st.CalibrationScale, want)
	}
	j2.Wait()

	off := New(Options{Workers: 1, Threads: 1, BudgetSeconds: 1e9, CalibrateAlpha: -1})
	defer off.Close()
	jo, err := off.Submit(strings.NewReader(deck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	jo.Wait()
	if st := off.Stats(); st.CalibrationScale != 1 || st.CalibrationN != 0 {
		t.Fatalf("disabled calibration moved: %+v", st)
	}
	if jo.Est.Seconds != raw.Seconds {
		t.Fatalf("disabled calibration scaled the estimate: %g vs %g", jo.Est.Seconds, raw.Seconds)
	}
}
