// Package serve turns the bookleaf library into a simulation service:
// a priority job queue and scheduler multiplexing many concurrent runs
// over a fixed fleet of warm par.Pools, with admission control driven
// by the internal/machine cost predictor and preemption/resume of
// running jobs through the checkpoint-v2 in-memory gather.
//
// The design splits in two layers. This file is the scheduler: jobs,
// the queue, the pool fleet, admission and preemption — all plain Go
// behind one mutex, no HTTP. http.go maps it onto the /v1/jobs wire
// API. Tests drive either layer directly.
//
// Invariants the tests pin down:
//
//   - A pool is leased to at most one job at a time; a slot returns to
//     the free list before its job's terminal state is observable.
//   - A job's admission estimate joins the backlog at admit time and
//     leaves it exactly once, at the job's terminal state.
//   - A preempted job loses no steps: its next leg resumes from the
//     collective in-memory snapshot, and the per-leg obs snapshots
//     merge into the totals an uninterrupted run would report.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bookleaf"
	"bookleaf/internal/checkpoint"
	"bookleaf/internal/config"
	"bookleaf/internal/machine"
	"bookleaf/internal/obs"
	"bookleaf/internal/par"
)

// Options configures a Server.
type Options struct {
	// Workers is the number of simulations run concurrently — the size
	// of the warm pool fleet (default 2).
	Workers int
	// Threads is the par.Pool width leased to each serial job
	// (default 1). Multi-rank decks spawn their own pools and only
	// occupy a worker slot.
	Threads int
	// BudgetSeconds is the admission budget: a deck is rejected when
	// the predicted backlog (admitted-but-unfinished seconds) plus its
	// own estimate would exceed it (default 600).
	BudgetSeconds float64
	// MaxDeckBytes bounds a submitted deck (default 1 MiB).
	MaxDeckBytes int64
	// MaxRanks and MaxThreads cap the parallelism a deck may declare
	// for itself (defaults 8 and 16): an untrusted ranks=10^5 or
	// threads=10^6 deck is a goroutine bomb, rejected 400 at admission.
	MaxRanks   int
	MaxThreads int
	// MaxElements caps the mesh a deck may request — NX, NY, and their
	// product (default 4 Mi elements). Rejected 400 at admission.
	MaxElements int
	// MaxTerminalJobs bounds how many finished jobs (and their result
	// field arrays) are retained for GET after reaching a terminal
	// state (default 512). The oldest terminal job is evicted first;
	// an evicted ID answers 404.
	MaxTerminalJobs int
	// SnapshotEvery is the mid-run metrics cadence handed to each
	// job's Control (0 = the Control default).
	SnapshotEvery int
	// AdmitOnly short-circuits execution: submissions are parsed,
	// predicted and admitted, then complete immediately without
	// running. The fuzz harness uses it to hammer the submission path
	// without paying for hydrodynamics.
	AdmitOnly bool
	// CalibrateAlpha is the EWMA weight of the online cost calibrator:
	// every completed job's measured wall seconds refine the
	// machine-model estimates priced into subsequent admissions
	// (0 = the machine.NewCalibrator default; negative disables
	// calibration, freezing the scale at 1).
	CalibrateAlpha float64
	// StateDir, when non-empty, makes the server durable: every
	// submission, state transition and terminal outcome is appended to
	// an fsynced NDJSON journal in the directory, preemption snapshots
	// spill to disk next to it, and Open replays it all on restart —
	// queued work re-admits, interrupted jobs resume from their last
	// spill, and the calibrator's learned scale survives. Durable
	// servers must be built with Open (which can fail on an unusable
	// directory); New ignores StateDir.
	StateDir string
	// SpillInterval is the cadence at which a durable server
	// checkpoints long-running legs: a leg that has run this long is
	// preempted at its next step boundary, its snapshot spills to the
	// state dir, and the job immediately resumes — bounding how much
	// work a crash can lose (0 = default 60s; negative disables the
	// periodic spill, leaving only preemption and shutdown spills).
	// Each spill costs one checkpoint gather+restore and increments
	// the job's preemption count. Ignored without StateDir.
	SpillInterval time.Duration
	// ClientBudgetSeconds caps one client's admitted-but-unfinished
	// predicted seconds, so a single client cannot fill the whole
	// admission budget: a deck past the cap is rejected with a typed
	// *QuotaError (HTTP 429 client_over_quota) while other clients'
	// decks still admit (0 = no per-client cap).
	ClientBudgetSeconds float64
	// ClientWeights gives named clients a weighted fair share of the
	// queue within a priority band (see pushLocked); absent clients
	// weigh 1. A weight-2 client's backlog drains twice as fast
	// relative to a weight-1 client's under contention.
	ClientWeights map[string]float64
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.BudgetSeconds <= 0 {
		o.BudgetSeconds = 600
	}
	if o.MaxDeckBytes <= 0 {
		o.MaxDeckBytes = 1 << 20
	}
	if o.MaxRanks < 1 {
		o.MaxRanks = 8
	}
	if o.MaxThreads < 1 {
		o.MaxThreads = 16
	}
	if o.MaxElements < 1 {
		o.MaxElements = 4 << 20
	}
	if o.MaxTerminalJobs < 1 {
		o.MaxTerminalJobs = 512
	}
	if o.SpillInterval == 0 {
		o.SpillInterval = 60 * time.Second
	}
	return o
}

// DefaultClient is the identity of submissions that carry no X-Client
// header.
const DefaultClient = "anon"

// maxClientLen bounds a client identity; names are printable ASCII so
// they journal and log cleanly.
const maxClientLen = 64

// canonClient validates and canonicalises a client identity: empty
// maps to DefaultClient, anything over maxClientLen bytes or outside
// printable non-space ASCII is a typed 400.
func canonClient(c string) (string, error) {
	if c == "" {
		return DefaultClient, nil
	}
	if len(c) > maxClientLen {
		return "", &BadClientError{Reason: fmt.Sprintf("client name over %d bytes", maxClientLen)}
	}
	for i := 0; i < len(c); i++ {
		if c[i] <= 0x20 || c[i] >= 0x7f {
			return "", &BadClientError{Reason: "client name must be printable ASCII without spaces"}
		}
	}
	return c, nil
}

// Job states, as reported on the wire.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// BadDeckError rejects a submission whose deck cannot be turned into a
// runnable config. The wire layer maps it to 400.
type BadDeckError struct{ Reason string }

func (e *BadDeckError) Error() string { return "bad deck: " + e.Reason }

// BadClientError rejects a submission whose X-Client identity is
// unusable. The wire layer maps it to 400.
type BadClientError struct{ Reason string }

func (e *BadClientError) Error() string { return "bad client: " + e.Reason }

// QuotaError rejects an admissible deck because its client's backlog
// quota has no room — distinct from *OverloadedError so a 429 tells a
// client whether the server is full or it alone is over quota.
// RetryAfter predicts the seconds until this client's backlog has
// drained enough to fit the estimate.
type QuotaError struct {
	Client     string
	RetryAfter int
	EstSeconds float64
	Backlog    float64
	Quota      float64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("client %q over quota: backlog %.1fs + job %.1fs exceeds quota %.1fs (retry after %ds)",
		e.Client, e.Backlog, e.EstSeconds, e.Quota, e.RetryAfter)
}

// OverloadedError rejects an admissible deck the budget has no room
// for. RetryAfter is the predicted seconds until the backlog has
// drained enough to fit the estimate, given the fleet drains Workers
// jobs' worth of predicted seconds per wall-clock second.
type OverloadedError struct {
	RetryAfter int
	EstSeconds float64
	Backlog    float64
	Budget     float64
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("overloaded: predicted backlog %.1fs + job %.1fs exceeds budget %.1fs (retry after %ds)",
		e.Backlog, e.EstSeconds, e.Budget, e.RetryAfter)
}

// ErrClosed rejects submissions to a shut-down server.
var ErrClosed = errors.New("serve: server closed")

// Job is one admitted simulation.
type Job struct {
	ID       string
	Priority int
	// Client is the submitting identity (X-Client header, default
	// "anon"): the unit of backlog quotas and fair queue ordering.
	Client string
	// Est is the admission estimate, calibrated by the measured wall
	// clocks of previously completed jobs; modelSecs keeps the raw
	// uncalibrated model seconds so each completion is observed
	// against the model, not against its own calibration.
	Est       machine.Estimate
	modelSecs float64

	seq int
	// fairKey is the job's start-time-fair-queuing virtual finish tag,
	// assigned at admission and kept across preemptions: within a
	// priority band the queue orders by it, interleaving clients
	// instead of serving one client's flood FIFO.
	fairKey float64

	// Everything below is guarded by the server mutex.
	state        string
	cfg          bookleaf.Config
	deckRaw      []byte               // original deck bytes; durable servers journal and compact them
	legStart     time.Time            // when the current leg started; drives the periodic spill
	ctl          *bookleaf.Control    // current leg; nil unless running
	pool         *par.Pool            // leased slot; nil unless running
	resumeSnap   *checkpoint.Snapshot // snapshot the next leg resumes from
	prevObs      *obs.Snapshot        // merged metrics of finished legs
	lastStatus   bookleaf.RunStatus
	preemptions  int
	wallSeconds  float64 // measured run time summed over finished legs
	preemptAsked bool
	cancelAsked  bool
	result       *bookleaf.Result
	err          error
	done         chan struct{} // closed at terminal state
}

// Server is the scheduler.
type Server struct {
	opt Options
	cal *machine.Calibrator

	mu       sync.Mutex
	wg       sync.WaitGroup
	jobs     map[string]*Job
	queue    []*Job // pending, highest priority first, fairKey then FIFO within
	free     []*par.Pool
	pools    []*par.Pool
	backlog  float64  // predicted seconds of admitted unfinished work
	terminal []string // terminal job IDs, oldest first — retention FIFO
	seq      int
	closed   bool

	// Durability (nil / zero on an in-memory server).
	jl        *journal
	stopSpill chan struct{}

	// Fairness. clientBacklog mirrors backlog per client for the quota
	// gate; vnow and clientVTime implement start-time fair queuing: vnow
	// is the virtual clock (advanced to the fair tag of each dispatched
	// job), clientVTime[c] the virtual finish tag of client c's last
	// admitted job. A new job's fairKey = max(vnow, clientVTime[c]) +
	// est/weight(c), so a client's flood lines up serially in virtual
	// time while a fresh client starts at vnow and interleaves.
	clientBacklog map[string]float64
	clientVTime   map[string]float64
	vnow          float64
}

// New builds an in-memory Server and warms its pool fleet. StateDir is
// ignored; durable servers come from Open.
func New(opt Options) *Server {
	opt.StateDir = ""
	s, _ := Open(opt) // cannot fail without a state dir
	return s
}

// Open builds a Server, and — when opt.StateDir is set — makes it
// durable: the directory is created if needed, the journal replayed
// (queued work re-admitted, interrupted jobs set to resume from their
// last spilled snapshot, terminal outcomes and the calibrator's learned
// scale restored), then rewritten compacted. The only errors are
// environmental — an uncreatable directory or unopenable journal;
// journal corruption never fails Open, recovery keeps what parses.
func Open(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:           opt,
		jobs:          make(map[string]*Job),
		clientBacklog: make(map[string]float64),
		clientVTime:   make(map[string]float64),
	}
	if opt.CalibrateAlpha >= 0 {
		s.cal = machine.NewCalibrator(opt.CalibrateAlpha)
	}
	for i := 0; i < opt.Workers; i++ {
		p := par.New(opt.Threads)
		s.pools = append(s.pools, p)
		s.free = append(s.free, p)
	}
	if opt.StateDir != "" {
		if err := s.recover(); err != nil {
			for _, p := range s.pools {
				p.Close()
			}
			return nil, err
		}
		if opt.SpillInterval > 0 {
			s.stopSpill = make(chan struct{})
			s.wg.Add(1)
			go s.spillLoop()
		}
		s.mu.Lock()
		s.dispatchLocked()
		s.mu.Unlock()
	}
	return s, nil
}

// recover replays the journal in StateDir into the fresh server and
// compacts it. Called once from Open, before any concurrency exists.
func (s *Server) recover() error {
	if err := os.MkdirAll(s.opt.StateDir, 0o755); err != nil {
		return fmt.Errorf("serve: state dir: %w", err)
	}
	st := replayJournal(s.opt.StateDir)
	jl, err := openJournalFile(s.opt.StateDir)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	s.jl = jl
	if s.cal != nil && st.calN > 0 {
		s.cal.Restore(st.calScale, st.calN)
	}
	if st.maxSeq > s.seq {
		s.seq = st.maxSeq
	}
	// Terminal jobs first, in their recorded retention order: status and
	// error survive a restart, result field arrays do not (the snapshot
	// files that could rebuild them are deleted at terminal state).
	for _, id := range st.terminalOrder {
		rj := st.jobs[id]
		if rj == nil || rj.terminal == "" || s.jobs[id] != nil {
			continue
		}
		j := &Job{
			ID: rj.id, Priority: rj.priority, Client: rj.client,
			seq: rj.seq, state: rj.terminal,
			done: make(chan struct{}),
		}
		if rj.errMsg != "" {
			j.err = errors.New(rj.errMsg)
		} else if rj.terminal == StateCanceled {
			j.err = bookleaf.ErrCanceled
		}
		close(j.done)
		s.jobs[id] = j
		s.terminal = append(s.terminal, id)
	}
	for len(s.terminal) > s.opt.MaxTerminalJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	// Live jobs in submission order, so fair tags rebuild the same way
	// they were first assigned.
	for _, id := range st.order {
		rj := st.jobs[id]
		if rj == nil || rj.terminal != "" || s.jobs[id] != nil {
			continue
		}
		s.readmit(rj)
	}
	if err := s.compactJournal(); err != nil {
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	// Anything .ckpt not owned by a live job is an orphan from a
	// crashed spill or a compacted-away job.
	if ents, err := os.ReadDir(s.opt.StateDir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if !strings.HasSuffix(name, snapSuffix) && !strings.HasSuffix(name, ".tmp") {
				continue
			}
			id := strings.TrimSuffix(name, snapSuffix)
			if j := s.jobs[id]; j != nil && j.resumeSnap != nil {
				continue
			}
			os.Remove(filepath.Join(s.opt.StateDir, name))
		}
	}
	return nil
}

// readmit reconstructs one live (queued or interrupted) job from the
// journal: the deck is re-validated exactly like a fresh submission —
// server caps may have changed across the restart, in which case the
// job fails rather than runs oversized — and an interrupted job's last
// spill is loaded so its next leg resumes bitwise where it left off. A
// missing or corrupt spill restarts the job from scratch, dropping the
// spilled leg bookkeeping with it so obs counters are not double-merged.
func (s *Server) readmit(rj *replayJob) {
	j := &Job{
		ID: rj.id, Priority: rj.priority, Client: rj.client,
		seq: rj.seq, state: StateQueued,
		deckRaw: rj.deck,
		done:    make(chan struct{}),
	}
	if j.Client == "" {
		j.Client = DefaultClient
	}
	s.jobs[j.ID] = j
	fail := func(reason string) {
		s.terminalLocked(j, StateFailed, &BadDeckError{Reason: reason})
	}
	deck, err := config.ParseLimit(bytes.NewReader(rj.deck), s.opt.MaxDeckBytes)
	if err != nil {
		fail("journaled deck no longer parses: " + err.Error())
		return
	}
	cfg, err := bookleaf.ConfigFromDeck(deck)
	if err != nil {
		fail("journaled deck no longer parses: " + err.Error())
		return
	}
	if err := s.serverSafe(&cfg); err != nil {
		fail("journaled deck no longer admissible: " + err.Error())
		return
	}
	if err := cfg.Validate(); err != nil {
		fail("journaled deck no longer admissible: " + err.Error())
		return
	}
	j.cfg = cfg
	j.Est = machine.Estimate{Seconds: rj.est}
	j.modelSecs = rj.model
	if !(j.Est.Seconds > 0) || math.IsInf(j.Est.Seconds, 0) {
		// A tampered journal must not poison the backlog accounting.
		j.Est.Seconds = 0
	}
	s.backlog += j.Est.Seconds
	s.clientBacklog[j.Client] += j.Est.Seconds
	s.fairTagLocked(j)
	if rj.snapFile != "" {
		snap, err := readSnapFile(filepath.Join(s.opt.StateDir, filepath.Base(rj.snapFile)))
		if err == nil && snap.Validate(cfg.Problem, cfg.NX, cfg.NY,
			cfg.NX*cfg.NY, (cfg.NX+1)*(cfg.NY+1)) == nil {
			j.resumeSnap = snap
			if rj.obs != nil {
				// Re-materialise through a merge so a journal line with
				// absent maps cannot leave nil ones for a later Merge to
				// write into.
				j.prevObs = mergeSnapshots(rj.obs)
			}
			j.preemptions = rj.preemptions
			j.wallSeconds = rj.wall
			j.lastStatus = bookleaf.RunStatus{Step: rj.step, Time: rj.time, TEnd: cfg.TEnd}
		}
	}
	if s.opt.AdmitOnly {
		s.terminalLocked(j, StateDone, nil)
		return
	}
	s.pushLocked(j)
}

// compactJournal rewrites the journal as its minimal equivalent — one
// calibration record, one submit (+ optional spill) per live job, one
// self-describing terminal record per retained terminal job — writing
// to a temp file then renaming over, so a crash mid-compaction leaves
// the old journal intact. The append handle is reopened on the new
// file. Called under no concurrency (from recover) or under s.mu.
func (s *Server) compactJournal() error {
	tmp := filepath.Join(s.opt.StateDir, journalName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	write := func(rec *journalRecord) {
		if err == nil {
			err = enc.Encode(rec)
		}
	}
	if s.cal != nil {
		if scale, n := s.cal.State(); n > 0 {
			write(&journalRecord{Op: opCalib, Scale: scale, N: n})
		}
	}
	for _, id := range s.terminal {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		rec := &journalRecord{Op: j.state, ID: j.ID, Seq: j.seq, Client: j.Client}
		if j.err != nil && j.state == StateFailed {
			rec.Error = j.err.Error()
		}
		write(rec)
	}
	live := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].seq < live[b].seq })
	for _, j := range live {
		write(&journalRecord{
			Op: opSubmit, ID: j.ID, Seq: j.seq,
			Priority: j.Priority, Client: j.Client, Deck: j.deckRaw,
			EstSeconds: j.Est.Seconds, ModelSeconds: j.modelSecs,
		})
		if j.resumeSnap != nil {
			write(&journalRecord{
				Op: opSpill, ID: j.ID, Snap: s.jl.snapName(j.ID),
				Step: j.lastStatus.Step, Time: j.lastStatus.Time,
				Preemptions: j.preemptions, WallSeconds: j.wallSeconds,
				Obs: j.prevObs,
			})
			// The spilled snapshot itself must exist on disk for the
			// record to mean anything after the next crash.
			if _, werr := s.jl.writeSnap(j.ID, j.resumeSnap); werr != nil && err == nil {
				err = werr
			}
		}
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.opt.StateDir, journalName)); err != nil {
		os.Remove(tmp)
		return err
	}
	s.jl.close()
	jl, err := openJournalFile(s.opt.StateDir)
	if err != nil {
		return err
	}
	s.jl = jl
	return nil
}

// spillLoop periodically checkpoints long-running legs of a durable
// server by preempting them: the snapshot hand-back routes through
// legDone, which spills it to disk and requeues the job, and dispatch
// restarts it immediately — the same bitwise-safe path priority
// preemption uses, so a crash between spills loses at most
// SpillInterval of work.
func (s *Server) spillLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opt.SpillInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSpill:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				for _, j := range s.jobs {
					if j.state == StateRunning && !j.preemptAsked &&
						time.Since(j.legStart) >= s.opt.SpillInterval {
						j.preemptAsked = true
						j.ctl.Preempt()
					}
				}
			}
			s.mu.Unlock()
		}
	}
}

// fairTagLocked assigns j its start-time-fair-queuing tag and advances
// the client's virtual time.
func (s *Server) fairTagLocked(j *Job) {
	w := 1.0
	if cw, ok := s.opt.ClientWeights[j.Client]; ok && cw > 0 {
		w = cw
	}
	start := s.vnow
	if v := s.clientVTime[j.Client]; v > start {
		start = v
	}
	j.fairKey = start + j.Est.Seconds/w
	s.clientVTime[j.Client] = j.fairKey
}

// Submit parses a deck from r, predicts its cost, and either admits it
// into the queue or rejects it with a typed error (*BadDeckError,
// *BadClientError, *OverloadedError, *QuotaError, config.ErrTooLarge
// wrapped, or ErrClosed). client is the submitting identity ("" maps
// to DefaultClient): the unit of backlog quotas and fair ordering.
func (s *Server) Submit(r io.Reader, priority int, client string) (*Job, error) {
	client, err := canonClient(client)
	if err != nil {
		return nil, err
	}
	// Read the raw bytes first — a durable server journals exactly what
	// the client sent — then parse through the same limited path an
	// io.Reader submission always took (one byte over the cap still
	// wraps config.ErrTooLarge).
	raw, err := io.ReadAll(io.LimitReader(r, s.opt.MaxDeckBytes+1))
	if err != nil {
		return nil, &BadDeckError{Reason: err.Error()}
	}
	deck, err := config.ParseLimit(bytes.NewReader(raw), s.opt.MaxDeckBytes)
	if err != nil {
		if errors.Is(err, config.ErrTooLarge) {
			return nil, err
		}
		return nil, &BadDeckError{Reason: err.Error()}
	}
	cfg, err := bookleaf.ConfigFromDeck(deck)
	if err != nil {
		return nil, &BadDeckError{Reason: err.Error()}
	}
	if err := s.serverSafe(&cfg); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, &BadDeckError{Reason: err.Error()}
	}
	// Threads here is the pool width the server grants, never the
	// deck-declared count: a hostile deck must not be able to inflate
	// the predicted platform bandwidth and price itself cheaper. The
	// deck's own parallelism is charged through Ranks instead.
	est := machine.PredictRun(machine.RunShape{
		Problem: cfg.Problem, NX: cfg.NX, NY: cfg.NY,
		TEnd: cfg.TEnd, MaxSteps: cfg.MaxSteps,
		Threads: s.opt.Threads, Ranks: cfg.Ranks,
	})
	if math.IsNaN(est.Seconds) || math.IsInf(est.Seconds, 0) || est.Seconds <= 0 {
		// PredictRun saturates rather than producing this, but a
		// degenerate estimate must never slip under the budget gate.
		return nil, &BadDeckError{Reason: "cost prediction produced a degenerate estimate"}
	}
	modelSecs := est.Seconds
	if s.cal != nil {
		// Refine the model's absolute scale with what completed jobs
		// actually measured; the calibrator clamps per observation, so
		// the scaled estimate stays finite and positive.
		est = s.cal.Apply(est)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.backlog+est.Seconds > s.opt.BudgetSeconds {
		excess := s.backlog + est.Seconds - s.opt.BudgetSeconds
		retry := int(math.Ceil(excess / float64(s.opt.Workers)))
		if retry < 1 {
			retry = 1
		}
		return nil, &OverloadedError{
			RetryAfter: retry, EstSeconds: est.Seconds,
			Backlog: s.backlog, Budget: s.opt.BudgetSeconds,
		}
	}
	if q := s.opt.ClientBudgetSeconds; q > 0 {
		if cb := s.clientBacklog[client]; cb+est.Seconds > q {
			// The quota drains on one worker at worst (the client's jobs
			// may all be queued behind others), so predict pessimistically
			// against a single-slot drain of this client's own backlog.
			excess := cb + est.Seconds - q
			retry := int(math.Ceil(excess))
			if retry < 1 {
				retry = 1
			}
			return nil, &QuotaError{
				Client: client, RetryAfter: retry,
				EstSeconds: est.Seconds, Backlog: cb, Quota: q,
			}
		}
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.seq),
		Priority:  priority,
		Client:    client,
		Est:       est,
		modelSecs: modelSecs,
		seq:       s.seq,
		state:     StateQueued,
		cfg:       cfg,
		deckRaw:   raw,
		done:      make(chan struct{}),
	}
	s.fairTagLocked(j)
	if s.jl != nil {
		// An unjournalable submission is rejected, not half-admitted: an
		// acknowledged job must survive a crash.
		rec := &journalRecord{
			Op: opSubmit, ID: j.ID, Seq: j.seq,
			Priority: j.Priority, Client: j.Client, Deck: raw,
			EstSeconds: est.Seconds, ModelSeconds: modelSecs,
		}
		if err := s.jl.append(rec); err != nil {
			s.seq--
			return nil, fmt.Errorf("serve: journal append: %w", err)
		}
	}
	s.jobs[j.ID] = j
	s.backlog += est.Seconds
	s.clientBacklog[client] += est.Seconds
	if s.opt.AdmitOnly {
		s.terminalLocked(j, StateDone, nil)
		return j, nil
	}
	s.pushLocked(j)
	s.dispatchLocked()
	return j, nil
}

// serverSafe rejects deck keys that would touch the server's
// filesystem — a remote client must not be able to write checkpoint,
// trace or metrics files, or read arbitrary paths as restart dumps —
// and deck-declared resource demands past the server's caps: ranks
// and threads spawn goroutines and pools, NX*NY allocates mesh, so an
// untrusted deck gets a typed 400 here before any of that exists.
func (s *Server) serverSafe(cfg *bookleaf.Config) error {
	switch cfg.Problem {
	case "sod", "noh", "sedov", "saltzmann", "waterair", "nohdisc":
	default:
		// Run would also reject this, but at admission it is a typed
		// 400 instead of a failed job.
		return &BadDeckError{Reason: fmt.Sprintf("unknown problem %q", cfg.Problem)}
	}
	switch {
	case cfg.Checkpoint != "":
		return &BadDeckError{Reason: "served decks may not set [control] checkpoint (no server-side file output)"}
	case cfg.Resume != "":
		return &BadDeckError{Reason: "served decks may not set [control] resume (no server-side file input)"}
	case cfg.Trace != "":
		return &BadDeckError{Reason: "served decks may not set [obs] trace (no server-side file output)"}
	case cfg.Metrics != "":
		return &BadDeckError{Reason: "served decks may not set [obs] metrics (use GET /v1/jobs/{id}/metrics)"}
	}
	if cfg.Ranks > s.opt.MaxRanks {
		return &BadDeckError{Reason: fmt.Sprintf("ranks %d exceeds the server cap %d", cfg.Ranks, s.opt.MaxRanks)}
	}
	if cfg.Threads > s.opt.MaxThreads {
		return &BadDeckError{Reason: fmt.Sprintf("threads %d exceeds the server cap %d", cfg.Threads, s.opt.MaxThreads)}
	}
	// Individual caps first so the int64 product below cannot overflow.
	if cfg.NX > s.opt.MaxElements || cfg.NY > s.opt.MaxElements {
		return &BadDeckError{Reason: fmt.Sprintf("mesh %dx%d exceeds the server cap of %d elements", cfg.NX, cfg.NY, s.opt.MaxElements)}
	}
	if int64(cfg.NX)*int64(cfg.NY) > int64(s.opt.MaxElements) {
		return &BadDeckError{Reason: fmt.Sprintf("mesh %dx%d exceeds the server cap of %d elements", cfg.NX, cfg.NY, s.opt.MaxElements)}
	}
	return nil
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests a job stop. Queued jobs cancel immediately; running
// jobs stop at their next step boundary. Terminal jobs are left alone.
// The second return is false when the ID is unknown.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	switch j.state {
	case StateQueued:
		s.removeQueuedLocked(j)
		s.terminalLocked(j, StateCanceled, bookleaf.ErrCanceled)
	case StateRunning:
		j.cancelAsked = true
		j.ctl.Cancel()
	}
	return j, true
}

// Wait blocks until the job reaches a terminal state.
func (j *Job) Wait() { <-j.done }

// Done exposes the terminal-state channel for select loops.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is a point-in-time view of a job, safe to serialise.
type Status struct {
	ID          string  `json:"id"`
	State       string  `json:"state"`
	Priority    int     `json:"priority"`
	Client      string  `json:"client"`
	EstSeconds  float64 `json:"est_seconds"`
	Preemptions int     `json:"preemptions"`
	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	TEnd        float64 `json:"tend"`
	Error       string  `json:"error,omitempty"`
}

// Status snapshots the job under the scheduler lock; live progress
// comes from the running leg's Control.
func (s *Server) Status(j *Job) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Priority: j.Priority, Client: j.Client,
		EstSeconds: j.Est.Seconds, Preemptions: j.preemptions,
		Step: j.lastStatus.Step, Time: j.lastStatus.Time, TEnd: j.lastStatus.TEnd,
	}
	if j.state == StateRunning && j.ctl != nil {
		if rs, ok := j.ctl.Status(); ok {
			st.Step, st.Time, st.TEnd = rs.Step, rs.Time, rs.TEnd
		}
	}
	if j.state == StateDone && j.result != nil {
		st.Step, st.Time = j.result.Steps, j.result.Time
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result returns the completed run, or nil before StateDone.
func (s *Server) Result(j *Job) *bookleaf.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.result
}

// Metrics assembles the job's current merged obs snapshot: finished
// legs plus the running leg's latest published snapshot. Nil when
// nothing has been published yet.
func (s *Server) Metrics(j *Job) *obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var parts []*obs.Snapshot
	if j.prevObs != nil {
		parts = append(parts, j.prevObs)
	}
	if j.state == StateRunning && j.ctl != nil {
		if live := j.ctl.Metrics(); live != nil {
			parts = append(parts, live)
		}
	}
	if j.state == StateDone && j.result != nil && j.result.Obs != nil {
		// The final merge already happened at completion.
		return j.result.Obs
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		// Copy-on-read: callers must never see a snapshot that a later
		// leg merge will mutate.
		return mergeSnapshots(parts[0])
	default:
		return mergeSnapshots(parts...)
	}
}

// Stats is the server-wide view the wire layer exposes on /v1/status.
type Stats struct {
	Workers       int     `json:"workers"`
	FreeWorkers   int     `json:"free_workers"`
	Queued        int     `json:"queued"`
	Running       int     `json:"running"`
	Backlog       float64 `json:"backlog_seconds"`
	BudgetSeconds float64 `json:"budget_seconds"`
	// CalibrationScale is the online cost calibrator's current
	// measured/modelled ratio (1 until a job completes, or with
	// calibration disabled); CalibrationN its observation count.
	CalibrationScale float64 `json:"calibration_scale"`
	CalibrationN     int     `json:"calibration_n"`
	// ClientBacklog is each client's admitted-but-unfinished predicted
	// seconds — the quantity the per-client quota gates on.
	ClientBacklog map[string]float64 `json:"client_backlog,omitempty"`
}

// Stats snapshots the scheduler.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	running := 0
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running++
		}
	}
	st := Stats{
		Workers: s.opt.Workers, FreeWorkers: len(s.free),
		Queued: len(s.queue), Running: running,
		Backlog: s.backlog, BudgetSeconds: s.opt.BudgetSeconds,
		CalibrationScale: 1,
	}
	if s.cal != nil {
		st.CalibrationScale = s.cal.Scale()
		st.CalibrationN = s.cal.Observations()
	}
	if len(s.clientBacklog) > 0 {
		st.ClientBacklog = make(map[string]float64, len(s.clientBacklog))
		for c, b := range s.clientBacklog {
			st.ClientBacklog[c] = b
		}
	}
	return st
}

// Close stops admissions and releases the pool fleet. An in-memory
// server cancels everything in flight; a durable server parks instead —
// running jobs are preempted and their final snapshots spill to the
// state dir, queued jobs stay journaled — so the next Open resumes all
// of it.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.stopSpill != nil {
		close(s.stopSpill)
	}
	if s.jl == nil {
		for _, j := range s.queue {
			s.terminalLocked(j, StateCanceled, bookleaf.ErrCanceled)
		}
		s.queue = nil
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancelAsked = true
				j.ctl.Cancel()
			}
		}
	} else {
		for _, j := range s.jobs {
			if j.state == StateRunning && !j.preemptAsked {
				j.preemptAsked = true
				j.ctl.Preempt()
			}
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, p := range s.pools {
		p.Close()
	}
	s.mu.Lock()
	if s.jl != nil {
		// One last compaction so the journal on disk is minimal and the
		// parked queue replays without scanning the whole history.
		s.compactJournal()
		s.jl.close()
		s.jl = nil
	}
	s.mu.Unlock()
}

// pushLocked inserts j into the queue: highest priority first, then
// fair tag (start-time fair queuing — clients interleave in proportion
// to their weights instead of one client's flood running FIFO), then
// admission sequence as the deterministic tiebreak. A preempted job
// keeps its original tag and sequence, so it re-enters ahead of later
// arrivals of the same priority and fair position.
func (s *Server) pushLocked(j *Job) {
	i := sort.Search(len(s.queue), func(i int) bool {
		q := s.queue[i]
		if q.Priority != j.Priority {
			return q.Priority < j.Priority
		}
		if q.fairKey != j.fairKey {
			return q.fairKey > j.fairKey
		}
		return q.seq > j.seq
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
}

func (s *Server) removeQueuedLocked(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// dispatchLocked starts queued jobs on free pools, then — if work is
// still waiting — preempts the weakest running job when the queue head
// strictly outranks it. One preemption request per victim leg; the
// snapshot hand-back re-enters through legDone.
func (s *Server) dispatchLocked() {
	if s.closed {
		// A durable shutdown parks queued work for the next Open; nothing
		// may start once close begins.
		return
	}
	for len(s.free) > 0 && len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		pool := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.startLocked(j, pool)
	}
	if len(s.queue) == 0 {
		return
	}
	head := s.queue[0]
	var victim *Job
	for _, j := range s.jobs {
		if j.state != StateRunning || j.preemptAsked {
			continue
		}
		if victim == nil || j.Priority < victim.Priority ||
			(j.Priority == victim.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim != nil && victim.Priority < head.Priority {
		victim.preemptAsked = true
		victim.ctl.Preempt()
	}
}

// startLocked leases pool to j and launches the leg goroutine.
func (s *Server) startLocked(j *Job, pool *par.Pool) {
	ctl := &bookleaf.Control{SnapshotEvery: s.opt.SnapshotEvery}
	j.state = StateRunning
	j.ctl = ctl
	j.pool = pool
	j.preemptAsked = false
	j.legStart = time.Now()
	if j.fairKey > s.vnow {
		// Virtual time advances to each dispatched job's finish tag, so a
		// client idle through the flood re-enters at the current front
		// rather than with ancient credit.
		s.vnow = j.fairKey
	}
	if s.jl != nil {
		// Best-effort: a lost start record replays as still-queued, which
		// re-runs the job from its last spill — correct either way.
		s.jl.append(&journalRecord{Op: opStart, ID: j.ID, Seq: j.seq})
	}
	cfg := j.cfg
	cfg.Control = ctl
	cfg.ResumeFrom = j.resumeSnap
	if cfg.Ranks <= 1 {
		cfg.Pool = pool
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t0 := time.Now()
		res, err := bookleaf.Run(cfg)
		s.legDone(j, res, err, time.Since(t0).Seconds())
	}()
}

// legDone retires a finished leg: the pool returns to the free list
// first (slots are reclaimed before the terminal state is observable),
// then the outcome routes to completion, requeue-with-snapshot, or a
// terminal error.
func (s *Server) legDone(j *Job, res *bookleaf.Result, err error, wall float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.pool != nil {
		s.free = append(s.free, j.pool)
		j.pool = nil
	}
	j.ctl = nil
	j.preemptAsked = false
	j.wallSeconds += wall

	var pe *bookleaf.PreemptedError
	switch {
	case err == nil:
		if s.cal != nil {
			// Only completed jobs calibrate: the legs' summed wall
			// clock is the measured cost of exactly the work the
			// admission estimate priced. Failed and canceled runs
			// stopped at an unknown fraction of it.
			s.cal.Observe(j.modelSecs, j.wallSeconds)
			if s.jl != nil {
				if scale, n := s.cal.State(); n > 0 {
					s.jl.append(&journalRecord{Op: opCalib, Scale: scale, N: n})
				}
			}
		}
		if j.prevObs != nil && res.Obs != nil {
			j.prevObs.Merge(res.Obs)
			res.Obs = j.prevObs
		}
		j.result = res
		// TEnd is the deck's configured end time as the run resolved it,
		// not the time reached: a MaxSteps-limited run reports how far
		// short of tend it stopped.
		j.lastStatus = bookleaf.RunStatus{Step: res.Steps, Time: res.Time, TEnd: res.TEnd}
		s.terminalLocked(j, StateDone, nil)
	case errors.As(err, &pe):
		if j.cancelAsked || (s.closed && s.jl == nil) {
			// A cancel raced the preemption — or an in-memory server is
			// shutting down; the snapshot is discarded like any other
			// canceled state. A durable shutdown instead falls through to
			// the spill below: the parked job resumes at the next Open.
			s.terminalLocked(j, StateCanceled, bookleaf.ErrCanceled)
			break
		}
		j.resumeSnap = pe.Snapshot
		if j.prevObs == nil {
			j.prevObs = pe.Obs
		} else {
			j.prevObs.Merge(pe.Obs)
		}
		j.preemptions++
		j.lastStatus = bookleaf.RunStatus{Step: pe.Step, Time: pe.Time, TEnd: j.lastStatus.TEnd}
		j.state = StateQueued
		if s.jl != nil {
			// Spill the snapshot and its leg bookkeeping: after a crash
			// the job resumes from here instead of from scratch. A failed
			// spill only costs durability — the in-memory resume still has
			// the snapshot.
			if name, werr := s.jl.writeSnap(j.ID, j.resumeSnap); werr == nil {
				s.jl.append(&journalRecord{
					Op: opSpill, ID: j.ID, Snap: name,
					Step: pe.Step, Time: pe.Time,
					Preemptions: j.preemptions, WallSeconds: j.wallSeconds,
					Obs: j.prevObs,
				})
			}
		}
		s.pushLocked(j)
	case errors.Is(err, bookleaf.ErrCanceled):
		s.terminalLocked(j, StateCanceled, err)
	default:
		s.terminalLocked(j, StateFailed, err)
	}
	s.dispatchLocked()
}

// terminalLocked moves j to a terminal state exactly once: the
// admission estimate leaves the backlog, waiters unblock, and the job
// joins the retention FIFO. Retention is what bounds the daemon's
// memory under sustained traffic — a done job pins seven result field
// arrays, so only the newest MaxTerminalJobs terminal jobs stay
// addressable; older ones leave s.jobs entirely and answer 404.
func (s *Server) terminalLocked(j *Job, state string, err error) {
	j.state = state
	j.err = err
	s.backlog -= j.Est.Seconds
	if s.backlog < 0 {
		s.backlog = 0
	}
	if s.clientBacklog != nil {
		cb := s.clientBacklog[j.Client] - j.Est.Seconds
		if cb <= 1e-9 {
			delete(s.clientBacklog, j.Client)
		} else {
			s.clientBacklog[j.Client] = cb
		}
	}
	// A terminal job sits in the retention FIFO for up to
	// MaxTerminalJobs more completions; a preempted-then-finished job
	// must not pin its mesh-sized resume snapshot (or the journaled raw
	// deck) for all that time.
	j.resumeSnap = nil
	j.prevObs = nil
	j.cfg.ResumeFrom = nil
	j.deckRaw = nil
	if s.jl != nil {
		rec := &journalRecord{Op: state, ID: j.ID, Seq: j.seq, Client: j.Client}
		if err != nil && state == StateFailed {
			rec.Error = err.Error()
		}
		s.jl.append(rec)
		s.jl.removeSnap(j.ID)
	}
	close(j.done)
	s.terminal = append(s.terminal, j.ID)
	for len(s.terminal) > s.opt.MaxTerminalJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// mergeSnapshots folds the parts into a fresh snapshot without
// mutating any of them.
func mergeSnapshots(parts ...*obs.Snapshot) *obs.Snapshot {
	out := &obs.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]obs.HistSnapshot{},
	}
	for _, p := range parts {
		out.Merge(p)
	}
	return out
}
