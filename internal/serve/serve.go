// Package serve turns the bookleaf library into a simulation service:
// a priority job queue and scheduler multiplexing many concurrent runs
// over a fixed fleet of warm par.Pools, with admission control driven
// by the internal/machine cost predictor and preemption/resume of
// running jobs through the checkpoint-v2 in-memory gather.
//
// The design splits in two layers. This file is the scheduler: jobs,
// the queue, the pool fleet, admission and preemption — all plain Go
// behind one mutex, no HTTP. http.go maps it onto the /v1/jobs wire
// API. Tests drive either layer directly.
//
// Invariants the tests pin down:
//
//   - A pool is leased to at most one job at a time; a slot returns to
//     the free list before its job's terminal state is observable.
//   - A job's admission estimate joins the backlog at admit time and
//     leaves it exactly once, at the job's terminal state.
//   - A preempted job loses no steps: its next leg resumes from the
//     collective in-memory snapshot, and the per-leg obs snapshots
//     merge into the totals an uninterrupted run would report.
package serve

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"bookleaf"
	"bookleaf/internal/checkpoint"
	"bookleaf/internal/config"
	"bookleaf/internal/machine"
	"bookleaf/internal/obs"
	"bookleaf/internal/par"
)

// Options configures a Server.
type Options struct {
	// Workers is the number of simulations run concurrently — the size
	// of the warm pool fleet (default 2).
	Workers int
	// Threads is the par.Pool width leased to each serial job
	// (default 1). Multi-rank decks spawn their own pools and only
	// occupy a worker slot.
	Threads int
	// BudgetSeconds is the admission budget: a deck is rejected when
	// the predicted backlog (admitted-but-unfinished seconds) plus its
	// own estimate would exceed it (default 600).
	BudgetSeconds float64
	// MaxDeckBytes bounds a submitted deck (default 1 MiB).
	MaxDeckBytes int64
	// MaxRanks and MaxThreads cap the parallelism a deck may declare
	// for itself (defaults 8 and 16): an untrusted ranks=10^5 or
	// threads=10^6 deck is a goroutine bomb, rejected 400 at admission.
	MaxRanks   int
	MaxThreads int
	// MaxElements caps the mesh a deck may request — NX, NY, and their
	// product (default 4 Mi elements). Rejected 400 at admission.
	MaxElements int
	// MaxTerminalJobs bounds how many finished jobs (and their result
	// field arrays) are retained for GET after reaching a terminal
	// state (default 512). The oldest terminal job is evicted first;
	// an evicted ID answers 404.
	MaxTerminalJobs int
	// SnapshotEvery is the mid-run metrics cadence handed to each
	// job's Control (0 = the Control default).
	SnapshotEvery int
	// AdmitOnly short-circuits execution: submissions are parsed,
	// predicted and admitted, then complete immediately without
	// running. The fuzz harness uses it to hammer the submission path
	// without paying for hydrodynamics.
	AdmitOnly bool
	// CalibrateAlpha is the EWMA weight of the online cost calibrator:
	// every completed job's measured wall seconds refine the
	// machine-model estimates priced into subsequent admissions
	// (0 = the machine.NewCalibrator default; negative disables
	// calibration, freezing the scale at 1).
	CalibrateAlpha float64
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.BudgetSeconds <= 0 {
		o.BudgetSeconds = 600
	}
	if o.MaxDeckBytes <= 0 {
		o.MaxDeckBytes = 1 << 20
	}
	if o.MaxRanks < 1 {
		o.MaxRanks = 8
	}
	if o.MaxThreads < 1 {
		o.MaxThreads = 16
	}
	if o.MaxElements < 1 {
		o.MaxElements = 4 << 20
	}
	if o.MaxTerminalJobs < 1 {
		o.MaxTerminalJobs = 512
	}
	return o
}

// Job states, as reported on the wire.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// BadDeckError rejects a submission whose deck cannot be turned into a
// runnable config. The wire layer maps it to 400.
type BadDeckError struct{ Reason string }

func (e *BadDeckError) Error() string { return "bad deck: " + e.Reason }

// OverloadedError rejects an admissible deck the budget has no room
// for. RetryAfter is the predicted seconds until the backlog has
// drained enough to fit the estimate, given the fleet drains Workers
// jobs' worth of predicted seconds per wall-clock second.
type OverloadedError struct {
	RetryAfter int
	EstSeconds float64
	Backlog    float64
	Budget     float64
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("overloaded: predicted backlog %.1fs + job %.1fs exceeds budget %.1fs (retry after %ds)",
		e.Backlog, e.EstSeconds, e.Budget, e.RetryAfter)
}

// ErrClosed rejects submissions to a shut-down server.
var ErrClosed = errors.New("serve: server closed")

// Job is one admitted simulation.
type Job struct {
	ID       string
	Priority int
	// Est is the admission estimate, calibrated by the measured wall
	// clocks of previously completed jobs; modelSecs keeps the raw
	// uncalibrated model seconds so each completion is observed
	// against the model, not against its own calibration.
	Est       machine.Estimate
	modelSecs float64

	seq int

	// Everything below is guarded by the server mutex.
	state        string
	cfg          bookleaf.Config
	ctl          *bookleaf.Control    // current leg; nil unless running
	pool         *par.Pool            // leased slot; nil unless running
	resumeSnap   *checkpoint.Snapshot // snapshot the next leg resumes from
	prevObs      *obs.Snapshot        // merged metrics of finished legs
	lastStatus   bookleaf.RunStatus
	preemptions  int
	wallSeconds  float64 // measured run time summed over finished legs
	preemptAsked bool
	cancelAsked  bool
	result       *bookleaf.Result
	err          error
	done         chan struct{} // closed at terminal state
}

// Server is the scheduler.
type Server struct {
	opt Options
	cal *machine.Calibrator

	mu       sync.Mutex
	wg       sync.WaitGroup
	jobs     map[string]*Job
	queue    []*Job // pending, highest priority first, FIFO within
	free     []*par.Pool
	pools    []*par.Pool
	backlog  float64  // predicted seconds of admitted unfinished work
	terminal []string // terminal job IDs, oldest first — retention FIFO
	seq      int
	closed   bool
}

// New builds a Server and warms its pool fleet.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:  opt,
		jobs: make(map[string]*Job),
	}
	if opt.CalibrateAlpha >= 0 {
		s.cal = machine.NewCalibrator(opt.CalibrateAlpha)
	}
	for i := 0; i < opt.Workers; i++ {
		p := par.New(opt.Threads)
		s.pools = append(s.pools, p)
		s.free = append(s.free, p)
	}
	return s
}

// Submit parses a deck from r, predicts its cost, and either admits it
// into the queue or rejects it with a typed error (*BadDeckError,
// *OverloadedError, config.ErrTooLarge wrapped, or ErrClosed).
func (s *Server) Submit(r io.Reader, priority int) (*Job, error) {
	deck, err := config.ParseLimit(r, s.opt.MaxDeckBytes)
	if err != nil {
		if errors.Is(err, config.ErrTooLarge) {
			return nil, err
		}
		return nil, &BadDeckError{Reason: err.Error()}
	}
	cfg, err := bookleaf.ConfigFromDeck(deck)
	if err != nil {
		return nil, &BadDeckError{Reason: err.Error()}
	}
	if err := s.serverSafe(&cfg); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, &BadDeckError{Reason: err.Error()}
	}
	// Threads here is the pool width the server grants, never the
	// deck-declared count: a hostile deck must not be able to inflate
	// the predicted platform bandwidth and price itself cheaper. The
	// deck's own parallelism is charged through Ranks instead.
	est := machine.PredictRun(machine.RunShape{
		Problem: cfg.Problem, NX: cfg.NX, NY: cfg.NY,
		TEnd: cfg.TEnd, MaxSteps: cfg.MaxSteps,
		Threads: s.opt.Threads, Ranks: cfg.Ranks,
	})
	if math.IsNaN(est.Seconds) || math.IsInf(est.Seconds, 0) || est.Seconds <= 0 {
		// PredictRun saturates rather than producing this, but a
		// degenerate estimate must never slip under the budget gate.
		return nil, &BadDeckError{Reason: "cost prediction produced a degenerate estimate"}
	}
	modelSecs := est.Seconds
	if s.cal != nil {
		// Refine the model's absolute scale with what completed jobs
		// actually measured; the calibrator clamps per observation, so
		// the scaled estimate stays finite and positive.
		est = s.cal.Apply(est)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.backlog+est.Seconds > s.opt.BudgetSeconds {
		excess := s.backlog + est.Seconds - s.opt.BudgetSeconds
		retry := int(math.Ceil(excess / float64(s.opt.Workers)))
		if retry < 1 {
			retry = 1
		}
		return nil, &OverloadedError{
			RetryAfter: retry, EstSeconds: est.Seconds,
			Backlog: s.backlog, Budget: s.opt.BudgetSeconds,
		}
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.seq),
		Priority:  priority,
		Est:       est,
		modelSecs: modelSecs,
		seq:       s.seq,
		state:     StateQueued,
		cfg:       cfg,
		done:      make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.backlog += est.Seconds
	if s.opt.AdmitOnly {
		s.terminalLocked(j, StateDone, nil)
		return j, nil
	}
	s.pushLocked(j)
	s.dispatchLocked()
	return j, nil
}

// serverSafe rejects deck keys that would touch the server's
// filesystem — a remote client must not be able to write checkpoint,
// trace or metrics files, or read arbitrary paths as restart dumps —
// and deck-declared resource demands past the server's caps: ranks
// and threads spawn goroutines and pools, NX*NY allocates mesh, so an
// untrusted deck gets a typed 400 here before any of that exists.
func (s *Server) serverSafe(cfg *bookleaf.Config) error {
	switch cfg.Problem {
	case "sod", "noh", "sedov", "saltzmann", "waterair", "nohdisc":
	default:
		// Run would also reject this, but at admission it is a typed
		// 400 instead of a failed job.
		return &BadDeckError{Reason: fmt.Sprintf("unknown problem %q", cfg.Problem)}
	}
	switch {
	case cfg.Checkpoint != "":
		return &BadDeckError{Reason: "served decks may not set [control] checkpoint (no server-side file output)"}
	case cfg.Resume != "":
		return &BadDeckError{Reason: "served decks may not set [control] resume (no server-side file input)"}
	case cfg.Trace != "":
		return &BadDeckError{Reason: "served decks may not set [obs] trace (no server-side file output)"}
	case cfg.Metrics != "":
		return &BadDeckError{Reason: "served decks may not set [obs] metrics (use GET /v1/jobs/{id}/metrics)"}
	}
	if cfg.Ranks > s.opt.MaxRanks {
		return &BadDeckError{Reason: fmt.Sprintf("ranks %d exceeds the server cap %d", cfg.Ranks, s.opt.MaxRanks)}
	}
	if cfg.Threads > s.opt.MaxThreads {
		return &BadDeckError{Reason: fmt.Sprintf("threads %d exceeds the server cap %d", cfg.Threads, s.opt.MaxThreads)}
	}
	// Individual caps first so the int64 product below cannot overflow.
	if cfg.NX > s.opt.MaxElements || cfg.NY > s.opt.MaxElements {
		return &BadDeckError{Reason: fmt.Sprintf("mesh %dx%d exceeds the server cap of %d elements", cfg.NX, cfg.NY, s.opt.MaxElements)}
	}
	if int64(cfg.NX)*int64(cfg.NY) > int64(s.opt.MaxElements) {
		return &BadDeckError{Reason: fmt.Sprintf("mesh %dx%d exceeds the server cap of %d elements", cfg.NX, cfg.NY, s.opt.MaxElements)}
	}
	return nil
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests a job stop. Queued jobs cancel immediately; running
// jobs stop at their next step boundary. Terminal jobs are left alone.
// The second return is false when the ID is unknown.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	switch j.state {
	case StateQueued:
		s.removeQueuedLocked(j)
		s.terminalLocked(j, StateCanceled, bookleaf.ErrCanceled)
	case StateRunning:
		j.cancelAsked = true
		j.ctl.Cancel()
	}
	return j, true
}

// Wait blocks until the job reaches a terminal state.
func (j *Job) Wait() { <-j.done }

// Done exposes the terminal-state channel for select loops.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is a point-in-time view of a job, safe to serialise.
type Status struct {
	ID          string  `json:"id"`
	State       string  `json:"state"`
	Priority    int     `json:"priority"`
	EstSeconds  float64 `json:"est_seconds"`
	Preemptions int     `json:"preemptions"`
	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	TEnd        float64 `json:"tend"`
	Error       string  `json:"error,omitempty"`
}

// Status snapshots the job under the scheduler lock; live progress
// comes from the running leg's Control.
func (s *Server) Status(j *Job) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Priority: j.Priority,
		EstSeconds: j.Est.Seconds, Preemptions: j.preemptions,
		Step: j.lastStatus.Step, Time: j.lastStatus.Time, TEnd: j.lastStatus.TEnd,
	}
	if j.state == StateRunning && j.ctl != nil {
		if rs, ok := j.ctl.Status(); ok {
			st.Step, st.Time, st.TEnd = rs.Step, rs.Time, rs.TEnd
		}
	}
	if j.state == StateDone && j.result != nil {
		st.Step, st.Time = j.result.Steps, j.result.Time
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result returns the completed run, or nil before StateDone.
func (s *Server) Result(j *Job) *bookleaf.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.result
}

// Metrics assembles the job's current merged obs snapshot: finished
// legs plus the running leg's latest published snapshot. Nil when
// nothing has been published yet.
func (s *Server) Metrics(j *Job) *obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var parts []*obs.Snapshot
	if j.prevObs != nil {
		parts = append(parts, j.prevObs)
	}
	if j.state == StateRunning && j.ctl != nil {
		if live := j.ctl.Metrics(); live != nil {
			parts = append(parts, live)
		}
	}
	if j.state == StateDone && j.result != nil && j.result.Obs != nil {
		// The final merge already happened at completion.
		return j.result.Obs
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		// Copy-on-read: callers must never see a snapshot that a later
		// leg merge will mutate.
		return mergeSnapshots(parts[0])
	default:
		return mergeSnapshots(parts...)
	}
}

// Stats is the server-wide view the wire layer exposes on /v1/status.
type Stats struct {
	Workers       int     `json:"workers"`
	FreeWorkers   int     `json:"free_workers"`
	Queued        int     `json:"queued"`
	Running       int     `json:"running"`
	Backlog       float64 `json:"backlog_seconds"`
	BudgetSeconds float64 `json:"budget_seconds"`
	// CalibrationScale is the online cost calibrator's current
	// measured/modelled ratio (1 until a job completes, or with
	// calibration disabled); CalibrationN its observation count.
	CalibrationScale float64 `json:"calibration_scale"`
	CalibrationN     int     `json:"calibration_n"`
}

// Stats snapshots the scheduler.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	running := 0
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running++
		}
	}
	st := Stats{
		Workers: s.opt.Workers, FreeWorkers: len(s.free),
		Queued: len(s.queue), Running: running,
		Backlog: s.backlog, BudgetSeconds: s.opt.BudgetSeconds,
		CalibrationScale: 1,
	}
	if s.cal != nil {
		st.CalibrationScale = s.cal.Scale()
		st.CalibrationN = s.cal.Observations()
	}
	return st
}

// Close stops admissions, cancels everything in flight, waits for the
// legs to drain and releases the pool fleet.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, j := range s.queue {
		s.terminalLocked(j, StateCanceled, bookleaf.ErrCanceled)
	}
	s.queue = nil
	for _, j := range s.jobs {
		if j.state == StateRunning {
			j.cancelAsked = true
			j.ctl.Cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, p := range s.pools {
		p.Close()
	}
}

// pushLocked inserts j into the queue: highest priority first, FIFO
// (by admission sequence) among equals. A preempted job keeps its
// original sequence number, so it re-enters ahead of later arrivals of
// the same priority.
func (s *Server) pushLocked(j *Job) {
	i := sort.Search(len(s.queue), func(i int) bool {
		q := s.queue[i]
		if q.Priority != j.Priority {
			return q.Priority < j.Priority
		}
		return q.seq > j.seq
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
}

func (s *Server) removeQueuedLocked(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// dispatchLocked starts queued jobs on free pools, then — if work is
// still waiting — preempts the weakest running job when the queue head
// strictly outranks it. One preemption request per victim leg; the
// snapshot hand-back re-enters through legDone.
func (s *Server) dispatchLocked() {
	for len(s.free) > 0 && len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		pool := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.startLocked(j, pool)
	}
	if len(s.queue) == 0 {
		return
	}
	head := s.queue[0]
	var victim *Job
	for _, j := range s.jobs {
		if j.state != StateRunning || j.preemptAsked {
			continue
		}
		if victim == nil || j.Priority < victim.Priority ||
			(j.Priority == victim.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim != nil && victim.Priority < head.Priority {
		victim.preemptAsked = true
		victim.ctl.Preempt()
	}
}

// startLocked leases pool to j and launches the leg goroutine.
func (s *Server) startLocked(j *Job, pool *par.Pool) {
	ctl := &bookleaf.Control{SnapshotEvery: s.opt.SnapshotEvery}
	j.state = StateRunning
	j.ctl = ctl
	j.pool = pool
	j.preemptAsked = false
	cfg := j.cfg
	cfg.Control = ctl
	cfg.ResumeFrom = j.resumeSnap
	if cfg.Ranks <= 1 {
		cfg.Pool = pool
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t0 := time.Now()
		res, err := bookleaf.Run(cfg)
		s.legDone(j, res, err, time.Since(t0).Seconds())
	}()
}

// legDone retires a finished leg: the pool returns to the free list
// first (slots are reclaimed before the terminal state is observable),
// then the outcome routes to completion, requeue-with-snapshot, or a
// terminal error.
func (s *Server) legDone(j *Job, res *bookleaf.Result, err error, wall float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.pool != nil {
		s.free = append(s.free, j.pool)
		j.pool = nil
	}
	j.ctl = nil
	j.preemptAsked = false
	j.wallSeconds += wall

	var pe *bookleaf.PreemptedError
	switch {
	case err == nil:
		if s.cal != nil {
			// Only completed jobs calibrate: the legs' summed wall
			// clock is the measured cost of exactly the work the
			// admission estimate priced. Failed and canceled runs
			// stopped at an unknown fraction of it.
			s.cal.Observe(j.modelSecs, j.wallSeconds)
		}
		if j.prevObs != nil && res.Obs != nil {
			j.prevObs.Merge(res.Obs)
			res.Obs = j.prevObs
		}
		j.result = res
		j.lastStatus = bookleaf.RunStatus{Step: res.Steps, Time: res.Time, TEnd: res.Time}
		s.terminalLocked(j, StateDone, nil)
	case errors.As(err, &pe):
		if j.cancelAsked || s.closed {
			// A cancel (or shutdown) raced the preemption; the snapshot
			// is discarded like any other canceled state.
			s.terminalLocked(j, StateCanceled, bookleaf.ErrCanceled)
			break
		}
		j.resumeSnap = pe.Snapshot
		if j.prevObs == nil {
			j.prevObs = pe.Obs
		} else {
			j.prevObs.Merge(pe.Obs)
		}
		j.preemptions++
		j.lastStatus = bookleaf.RunStatus{Step: pe.Step, Time: pe.Time, TEnd: j.lastStatus.TEnd}
		j.state = StateQueued
		s.pushLocked(j)
	case errors.Is(err, bookleaf.ErrCanceled):
		s.terminalLocked(j, StateCanceled, err)
	default:
		s.terminalLocked(j, StateFailed, err)
	}
	s.dispatchLocked()
}

// terminalLocked moves j to a terminal state exactly once: the
// admission estimate leaves the backlog, waiters unblock, and the job
// joins the retention FIFO. Retention is what bounds the daemon's
// memory under sustained traffic — a done job pins seven result field
// arrays, so only the newest MaxTerminalJobs terminal jobs stay
// addressable; older ones leave s.jobs entirely and answer 404.
func (s *Server) terminalLocked(j *Job, state string, err error) {
	j.state = state
	j.err = err
	s.backlog -= j.Est.Seconds
	if s.backlog < 0 {
		s.backlog = 0
	}
	close(j.done)
	s.terminal = append(s.terminal, j.ID)
	for len(s.terminal) > s.opt.MaxTerminalJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// mergeSnapshots folds the parts into a fresh snapshot without
// mutating any of them.
func mergeSnapshots(parts ...*obs.Snapshot) *obs.Snapshot {
	out := &obs.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]obs.HistSnapshot{},
	}
	for _, p := range parts {
		out.Merge(p)
	}
	return out
}
