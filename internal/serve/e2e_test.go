package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bookleaf"
	"bookleaf/internal/config"
	"bookleaf/internal/machine"
	"bookleaf/internal/par"
)

// End-to-end battery: the full HTTP surface over a live scheduler.
// The load-bearing assertion throughout is bitwise equality — a deck
// submitted over the wire must produce exactly the floats a direct
// bookleaf.Run of the same deck produces, because JSON round-trips
// float64 exactly and the served path shares every numerical kernel.

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submitDeck(t *testing.T, ts *httptest.Server, deck string, priority int) SubmitResponse {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if priority != 0 {
		req.Header.Set("X-Priority", fmt.Sprint(priority))
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("get %s: status %d: %s", id, resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		jr := getJob(t, ts, id)
		for _, w := range want {
			if jr.State == w {
				return jr
			}
		}
		if jr.State == StateFailed || jr.State == StateCanceled || jr.State == StateDone {
			t.Fatalf("job %s reached terminal state %q (error %q), wanted %v",
				id, jr.State, jr.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %v", id, jr.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func directRun(t *testing.T, deck string) *bookleaf.Result {
	t.Helper()
	d, err := config.ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := bookleaf.ConfigFromDeck(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bookleaf.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertFieldsBitwise(t *testing.T, got *ResultJSON, want *bookleaf.Result) {
	t.Helper()
	if got.Steps != want.Steps || got.Time != want.Time {
		t.Fatalf("clock differs: served %d/%v, direct %d/%v",
			got.Steps, got.Time, want.Steps, want.Time)
	}
	if got.E0 != want.E0 || got.EFinal != want.EFinal ||
		got.ExternalWork != want.ExternalWork ||
		got.Mass0 != want.Mass0 || got.MassFinal != want.MassFinal {
		t.Fatalf("audit scalars differ: served %+v vs direct E0=%v EFinal=%v",
			got, want.E0, want.EFinal)
	}
	fields := []struct {
		name     string
		got, ref []float64
	}{
		{"x", got.X, want.X}, {"y", got.Y, want.Y},
		{"rho", got.Rho, want.Rho}, {"p", got.P, want.P},
		{"ein", got.Ein, want.Ein}, {"u", got.U, want.U}, {"v", got.V, want.V},
	}
	for _, f := range fields {
		if len(f.got) != len(f.ref) {
			t.Fatalf("field %s: length %d vs %d", f.name, len(f.got), len(f.ref))
		}
		for i := range f.got {
			if f.got[i] != f.ref[i] {
				t.Fatalf("field %s[%d]: served %v != direct %v (bitwise)",
					f.name, i, f.got[i], f.ref[i])
			}
		}
	}
}

func readRepoDeck(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("../../decks/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeHappyPathBitwise is the submit→poll→result happy path on
// the repository's sod deck, with the result compared bitwise against
// a direct in-process run.
func TestServeHappyPathBitwise(t *testing.T) {
	deck := readRepoDeck(t, "sod.deck")
	_, ts := newTestServer(t, Options{Workers: 2, Threads: 1})

	sub := submitDeck(t, ts, deck, 0)
	if sub.EstSeconds <= 0 || sub.EstSteps <= 0 {
		t.Fatalf("degenerate admission estimate: %+v", sub)
	}
	jr := waitState(t, ts, sub.ID, StateDone)
	if jr.Result == nil {
		t.Fatal("done job has no result")
	}
	assertFieldsBitwise(t, jr.Result, directRun(t, deck))
}

// TestServeMalformedDeck: parse failures, type errors and server-unsafe
// keys all come back as 400 with the typed error body.
func TestServeMalformedDeck(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, AdmitOnly: true})
	for _, tc := range []struct {
		deck string
		code string
	}{
		{"problem = sod\n", CodeBadDeck},                                // key outside section
		{"[control\nproblem = sod\n", CodeBadDeck},                      // malformed header
		{"[control]\nproblem = sod\nnx = lots\n", CodeBadDeck},          // type error
		{"[control]\nproblem = sod\ncheckpoint = /x\n", CodeBadDeck},    // server-unsafe
		{"[control]\nproblem = nosuch\nnx = 10\nny = 4\n", CodeBadDeck}, // unknown problem
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "text/plain", strings.NewReader(tc.deck))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if derr := json.NewDecoder(resp.Body).Decode(&eb); derr != nil {
			t.Fatalf("error body not JSON: %v", derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != tc.code {
			t.Fatalf("deck %q: got status %d code %q, want 400 %q",
				tc.deck, resp.StatusCode, eb.Error.Code, tc.code)
		}
	}
	// Unknown job IDs are typed too.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestServeCancelReclaimsSlots: cancel a running job mid-flight and
// check it lands in canceled with every pool slot back on the free
// list.
func TestServeCancelReclaimsSlots(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, Threads: 1})
	// A deck that runs for a long time but stays cheap: noh at modest
	// resolution has thousands of steps to tend.
	deck := "[control]\nproblem = noh\nnx = 50\nny = 50\ntend = 0.6\n"
	sub := submitDeck(t, ts, deck, 0)
	waitState(t, ts, sub.ID, StateRunning)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		jr := getJob(t, ts, sub.ID)
		if jr.State == StateCanceled {
			break
		}
		if jr.State == StateDone || jr.State == StateFailed {
			t.Fatalf("canceled job reached %q", jr.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", jr.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s.Stats()
	if st.FreeWorkers != st.Workers || st.Running != 0 {
		t.Fatalf("pool slots not reclaimed after cancel: %+v", st)
	}
	// The fleet still works: a fresh job completes.
	sub2 := submitDeck(t, ts, "[control]\nproblem = sod\nnx = 40\nny = 4\nmaxsteps = 20\n", 0)
	waitState(t, ts, sub2.ID, StateDone)
}

// TestConcurrentJobsIsolated is the tier2-serve core: N concurrent
// submissions over a 2-pool fleet under -race. Every job must
// complete, no two running jobs may ever hold the same pool, and each
// job's deterministic obs counters must match a per-deck serial run —
// any registry cross-contamination shows up as a counter mismatch.
func TestConcurrentJobsIsolated(t *testing.T) {
	const n = 6
	decks := make([]string, n)
	for i := range decks {
		// Distinct step counts (and one eulerian remap variant) so a
		// cross-contaminated counter cannot accidentally match.
		deck := fmt.Sprintf("[control]\nproblem = sod\nnx = 60\nny = 4\nmaxsteps = %d\n", 30+10*i)
		if i%2 == 1 {
			deck += "[ale]\nmode = eulerian\n"
		}
		decks[i] = deck
	}
	want := make([]*bookleaf.Result, n)
	for i, deck := range decks {
		want[i] = directRun(t, deck)
	}

	s, ts := newTestServer(t, Options{Workers: 2, Threads: 1})

	// Whitebox invariant probe: while jobs fly, no pool may be leased
	// to two running jobs at once, and every leased pool must belong
	// to the fleet.
	stop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		fleet := map[*par.Pool]bool{}
		for _, p := range s.pools {
			fleet[p] = true
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.mu.Lock()
			seen := map[*par.Pool]string{}
			for id, j := range s.jobs {
				if j.state == StateRunning && j.pool != nil {
					if !fleet[j.pool] {
						t.Errorf("job %s runs on a pool outside the fleet", id)
					}
					if other, dup := seen[j.pool]; dup {
						t.Errorf("jobs %s and %s share a pool", id, other)
					}
					seen[j.pool] = id
				}
			}
			s.mu.Unlock()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := range decks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submitDeck(t, ts, decks[i], 0).ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		jr := waitState(t, ts, id, StateDone)
		if jr.Result == nil {
			t.Fatalf("job %d has no result", i)
		}
		assertFieldsBitwise(t, jr.Result, want[i])
		assertCountersMatch(t, ts, id, want[i])
	}
	close(stop)
	probeWG.Wait()
}

// deterministicCounters are the obs counters whose totals are a pure
// function of the deck (wall-time counters like *_ns are excluded).
var deterministicCounters = []string{
	"steps_total", "remaps_total", "rollbacks_total",
	"dt_cause_initial", "dt_cause_cfl", "dt_cause_divergence",
	"dt_cause_growth", "dt_cause_max",
}

func assertCountersMatch(t *testing.T, ts *httptest.Server, id string, want *bookleaf.Result) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Metrics == nil {
		t.Fatalf("job %s: no metrics snapshot", id)
	}
	for _, name := range deterministicCounters {
		if got, ref := mr.Metrics.Counters[name], want.Obs.Counters[name]; got != ref {
			t.Fatalf("job %s: counter %s = %d, direct run %d (registry cross-contamination?)",
				id, name, got, ref)
		}
	}
}

// TestPreemptResumeBitwise: a high-priority Noh submission evicts a
// running Sod job at an arbitrary step; the Sod job resumes from the
// in-memory checkpoint and its final state must be bitwise identical
// to an uninterrupted run, counters included.
func TestPreemptResumeBitwise(t *testing.T) {
	// Big enough that the preemption reliably lands mid-run: ~900
	// steps at ~sub-millisecond each.
	sodDeck := "[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\n"
	nohDeck := "[control]\nproblem = noh\nnx = 24\nny = 24\nmaxsteps = 60\n"
	want := directRun(t, sodDeck)

	_, ts := newTestServer(t, Options{Workers: 1, Threads: 1})
	sod := submitDeck(t, ts, sodDeck, 0)

	// Let it make some progress, then submit the usurper.
	deadline := time.Now().Add(60 * time.Second)
	for {
		jr := getJob(t, ts, sod.ID)
		if jr.State == StateRunning && jr.Step >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sod job made no progress: %+v", jr)
		}
		time.Sleep(time.Millisecond)
	}
	noh := submitDeck(t, ts, nohDeck, 10)

	// The noh job must run to completion while sod is parked.
	nohDone := waitState(t, ts, noh.ID, StateDone)
	if nohDone.Result == nil {
		t.Fatal("noh job has no result")
	}

	sodDone := waitState(t, ts, sod.ID, StateDone)
	if sodDone.Preemptions < 1 {
		t.Fatalf("sod job was never preempted (preemptions=%d)", sodDone.Preemptions)
	}
	if sodDone.Result == nil {
		t.Fatal("sod job has no result")
	}
	assertFieldsBitwise(t, sodDone.Result, want)
	// The merged per-leg counters must equal the uninterrupted run's.
	assertCountersMatch(t, ts, sod.ID, want)
}

// TestParallelDeckPreemptResume drives the multi-rank preemption path:
// a ranks=2 deck is evicted at a collective healthy point by a
// high-priority submission, resumes through the partition-independent
// snapshot, and must still match an uninterrupted ranks=2 run bitwise.
func TestParallelDeckPreemptResume(t *testing.T) {
	sodDeck := "[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\nranks = 2\n"
	nohDeck := "[control]\nproblem = noh\nnx = 24\nny = 24\nmaxsteps = 60\n"
	want := directRun(t, sodDeck)

	_, ts := newTestServer(t, Options{Workers: 1, Threads: 1})
	sod := submitDeck(t, ts, sodDeck, 0)
	deadline := time.Now().Add(60 * time.Second)
	for {
		jr := getJob(t, ts, sod.ID)
		if jr.State == StateRunning && jr.Step >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("parallel sod job made no progress: %+v", jr)
		}
		time.Sleep(time.Millisecond)
	}
	noh := submitDeck(t, ts, nohDeck, 10)
	waitState(t, ts, noh.ID, StateDone)
	sodDone := waitState(t, ts, sod.ID, StateDone)
	if sodDone.Preemptions < 1 {
		t.Fatalf("parallel sod job was never preempted (preemptions=%d)", sodDone.Preemptions)
	}
	assertFieldsBitwise(t, sodDone.Result, want)
	assertCountersMatch(t, ts, sod.ID, want)
}

// TestParallelDeckCancel drives the multi-rank collective-cancel path.
func TestParallelDeckCancel(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, Threads: 1})
	deck := "[control]\nproblem = noh\nnx = 40\nny = 40\ntend = 0.6\nranks = 2\n"
	sub := submitDeck(t, ts, deck, 0)
	waitState(t, ts, sub.ID, StateRunning)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		jr := getJob(t, ts, sub.ID)
		if jr.State == StateCanceled {
			break
		}
		if jr.State == StateDone || jr.State == StateFailed {
			t.Fatalf("canceled parallel job reached %q (%s)", jr.State, jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("parallel job stuck in %q after cancel", jr.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := s.Stats(); st.FreeWorkers != st.Workers {
		t.Fatalf("worker slot not reclaimed after parallel cancel: %+v", st)
	}
}

// TestServeMetricsWatch: the streaming metrics endpoint emits parseable
// NDJSON documents with non-decreasing steps, ending at a terminal
// state.
func TestServeMetricsWatch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Threads: 1, SnapshotEvery: 8})
	// Big enough (~1ms/step) that the watcher reliably attaches while
	// the job is still running — a finished job streams exactly one
	// document, which TestServeMetricsWatchTerminal covers.
	deck := "[control]\nproblem = sod\nnx = 400\nny = 4\nmaxsteps = 300\n"
	sub := submitDeck(t, ts, deck, 0)

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sub.ID + "/metrics?watch=1&interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	lastStep := -1
	docs := 0
	var last MetricsResponse
	for dec.More() {
		var mr MetricsResponse
		if err := dec.Decode(&mr); err != nil {
			t.Fatalf("stream document %d: %v", docs, err)
		}
		if mr.Step < lastStep {
			t.Fatalf("steps went backwards: %d after %d", mr.Step, lastStep)
		}
		lastStep = mr.Step
		last = mr
		docs++
	}
	if docs < 2 {
		t.Fatalf("stream produced %d document(s), want at least 2", docs)
	}
	if last.State != StateDone {
		t.Fatalf("stream ended in state %q", last.State)
	}
	if last.Metrics == nil || last.Metrics.Counters["steps_total"] != 300 {
		t.Fatalf("final stream document lacks merged counters: %+v", last.Metrics)
	}
}

// TestServeMetricsWatchTerminal: watching a job that is already in a
// terminal state yields exactly one final document — the terminal check
// precedes the periodic encode, so clients never see the closing record
// duplicated.
func TestServeMetricsWatchTerminal(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Threads: 1})
	sub := submitDeck(t, ts, "[control]\nproblem = sod\nnx = 40\nny = 4\nmaxsteps = 10\n", 0)
	waitState(t, ts, sub.ID, StateDone)

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sub.ID + "/metrics?watch=1&interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	docs := 0
	var last MetricsResponse
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatalf("stream document %d: %v", docs, err)
		}
		docs++
	}
	if docs != 1 {
		t.Fatalf("watch of a finished job produced %d documents, want exactly 1", docs)
	}
	if last.State != StateDone {
		t.Fatalf("final document state %q, want %q", last.State, StateDone)
	}
}

// TestServeMetricsWatchHostileInterval is the handler-panic regression
// test: interval_ms is attacker-controlled, and values that overflow
// time.Duration(v) * time.Millisecond into a non-positive duration
// used to panic time.NewTicker inside the handler. Every hostile value
// must clamp into [10ms, 60s] and stream normally.
func TestServeMetricsWatchHostileInterval(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Threads: 1, AdmitOnly: true})
	sub := submitDeck(t, ts, "[control]\nproblem = sod\nnx = 40\nny = 4\nmaxsteps = 10\n", 0)

	for _, ms := range []string{
		"9223372036854775807", // MaxInt64: *1e6 wraps negative
		"1152921504606846976", // 1<<60: *1e6 wraps to exactly zero
		"-5",
		"60001", // over the cap: clamps to 60s, must not stall the final doc
		"2147483648",
		"not-a-number",
	} {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sub.ID +
			"/metrics?watch=1&interval_ms=" + ms)
		if err != nil {
			t.Fatalf("interval_ms=%s: request failed (handler panicked?): %v", ms, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("interval_ms=%s: status %d", ms, resp.StatusCode)
		}
		// The job is terminal, so the stream must deliver exactly one
		// final document and close — promptly, whatever the interval.
		dec := json.NewDecoder(resp.Body)
		docs := 0
		var last MetricsResponse
		for dec.More() {
			if err := dec.Decode(&last); err != nil {
				t.Fatalf("interval_ms=%s: document %d: %v", ms, docs, err)
			}
			docs++
		}
		resp.Body.Close()
		if docs != 1 || last.State != StateDone {
			t.Fatalf("interval_ms=%s: %d docs ending %q, want 1 doc done", ms, docs, last.State)
		}
	}
}

// TestServeQuotaOverHTTP: the wire shape of the per-client quota — a
// 429 whose code distinguishes client_over_quota from overloaded, with
// Retry-After set, while another client's identical deck still admits.
func TestServeQuotaOverHTTP(t *testing.T) {
	longDeck := "[control]\nproblem = noh\nnx = 50\nny = 50\ntend = 0.6\n"
	longEst := machine.PredictRun(machine.RunShape{
		Problem: "noh", NX: 50, NY: 50, TEnd: 0.6, Threads: 1,
	})
	// Room for alice's long job but not the small one on top of it.
	_, ts := newTestServer(t, Options{
		Workers: 1, BudgetSeconds: 1e9,
		ClientBudgetSeconds: longEst.Seconds + admitEst(1).Seconds/2,
		CalibrateAlpha:      -1,
	})
	// One long (but cancelable) job fills alice's quota; AdmitOnly
	// would drain it instantly, so use a real run.
	a1 := submitDeckAs(t, ts, longDeck, 0, "alice")

	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(admitDeck))
	req.Header.Set("X-Client", "alice")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || eb.Error.Code != CodeOverQuota {
		t.Fatalf("over-quota alice: status %d code %q, want 429 %q",
			resp.StatusCode, eb.Error.Code, CodeOverQuota)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}
	// bob admits the identical deck: the server is not full.
	bob := submitDeckAs(t, ts, admitDeck, 0, "bob")

	// Hostile client name is a typed 400.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(admitDeck))
	req.Header.Set("X-Client", strings.Repeat("x", 65))
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	eb = errorBody{}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != CodeBadClient {
		t.Fatalf("hostile client: status %d code %q, want 400 %q",
			resp.StatusCode, eb.Error.Code, CodeBadClient)
	}

	// Cleanup: cancel the runners so server Close is quick.
	for _, id := range []string{a1.ID, bob.ID} {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := ts.Client().Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func submitDeckAs(t *testing.T, ts *httptest.Server, deck string, priority int, client string) SubmitResponse {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if priority != 0 {
		req.Header.Set("X-Priority", fmt.Sprint(priority))
	}
	if client != "" {
		req.Header.Set("X-Client", client)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit as %q: status %d: %s", client, resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// TestServeStatusEndpoint sanity-checks /v1/status wiring.
func TestServeStatusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, Threads: 1, AdmitOnly: true})
	resp, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.FreeWorkers != 3 {
		t.Fatalf("stats wrong: %+v", st)
	}
}
