package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzSubmitDeck hammers the HTTP deck-submission path — headers plus
// body — with mutated decks seeded from decks/. The server runs in
// AdmitOnly mode: every submission is parsed, predicted, and admitted
// or rejected, but nothing executes, so the fuzzer explores the
// untrusted-input surface (parser, deck→config mapping, admission
// arithmetic) at full speed. The invariant: any input yields a typed
// JSON response with a known status, never a panic or a hang.
func FuzzSubmitDeck(f *testing.F) {
	files, _ := filepath.Glob("../../decks/*.deck")
	for _, p := range files {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(b, "0", "")
			f.Add(b, "10", "alice")
		}
	}
	f.Add([]byte("[control]\nproblem = sod\nnx = 1000000000\nny = 1000000\n"), "1", "")
	f.Add([]byte("[control]\nproblem = sod\nranks = 100000\nthreads = 1000000\n"), "0", "bob")
	f.Add([]byte("[control]\nproblem = sod\nnx = 200\nny = 4\ntend = 1e300\n"), "0", "")
	f.Add([]byte("[control]\nproblem = sod\nnx = 4000000000\nny = 4000000000\n"), "0", "")
	f.Add([]byte("[control]\nproblem = sod\nnx = -7\nny = 0\n"), "-3", "")
	f.Add([]byte("[control]\nproblem = sod\ncheckpoint = /etc/passwd\n"), "", "")
	f.Add([]byte("garbage\n"), "2147483648", "x")
	f.Add([]byte("[supervise]\nenabled = maybe\n"), "0", "")
	f.Add([]byte(""), "not-a-number", "")
	// Hostile client identities: oversized, control bytes, spaces,
	// non-ASCII — each must be a typed 400, never a panic or a journaled
	// garbage name.
	f.Add([]byte("[control]\nproblem = sod\nnx = 40\nny = 4\n"), "0", strings.Repeat("a", 65))
	f.Add([]byte("[control]\nproblem = sod\nnx = 40\nny = 4\n"), "0", "evil\x01name")
	f.Add([]byte("[control]\nproblem = sod\nnx = 40\nny = 4\n"), "0", "two words")
	f.Add([]byte("[control]\nproblem = sod\nnx = 40\nny = 4\n"), "0", "naïve")
	f.Add([]byte("[control]\nproblem = sod\nnx = 40\nny = 4\n"), "0", "../../etc/passwd")
	f.Add([]byte("[control]\nproblem = sod\nnx = 40\nny = 4\n"), "0", "a\tb")

	srv := New(Options{Workers: 1, BudgetSeconds: 3600, AdmitOnly: true})
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	f.Fuzz(func(t *testing.T, deck []byte, priority, client string) {
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(deck))
		if err != nil {
			t.Skip() // header-invalid priority strings can't even build a request
		}
		if priority != "" {
			req.Header.Set("X-Priority", priority)
		}
		if client != "" {
			req.Header.Set("X-Client", client)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			// The transport rejects some hostile header bytes before the
			// server sees them; that is not a server defect.
			t.Skip()
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusBadRequest,
			http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d for deck %q priority %q",
				resp.StatusCode, deck, priority)
		}
		// Every response — success or error — must be well-formed JSON.
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("status %d body is not JSON: %v", resp.StatusCode, err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
		if resp.StatusCode == http.StatusAccepted {
			id, _ := doc["id"].(string)
			if id == "" {
				t.Fatalf("202 without job id: %v", doc)
			}
			// The admitted job must be immediately visible.
			jr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			jr.Body.Close()
			if jr.StatusCode != http.StatusOK {
				t.Fatalf("admitted job %s not retrievable: %d", id, jr.StatusCode)
			}
		}
	})
}

// FuzzJournalReplay feeds arbitrary bytes to the durable server as its
// on-disk journal: a crash can tear the final line, an operator can
// truncate or corrupt the file, and neither replay nor a full Open over
// the wreckage may panic or fail — recovery keeps whatever parses. The
// seeds cover a well-formed journal, the same journal torn mid-line,
// records out of order, and assorted non-JSON garbage.
func FuzzJournalReplay(f *testing.F) {
	valid := `{"op":"submit","id":"j000001","seq":1,"priority":0,"client":"alice","deck":"W2NvbnRyb2xdCnByb2JsZW0gPSBzb2QKbnggPSA0MApueSA9IDQK","est_seconds":0.5,"model_seconds":0.5}
{"op":"start","id":"j000001","seq":1}
{"op":"done","id":"j000001","seq":1,"client":"alice"}
{"op":"calib","scale":1.5,"n":3}
`
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)/2])) // torn mid-line
	f.Add([]byte(`{"op":"spill","id":"jX","snap":"../../../etc/passwd","step":3}` + "\n"))
	f.Add([]byte(`{"op":"done","id":"j9"}` + "\n" + `{"op":"done","id":"j9"}` + "\n"))
	f.Add([]byte(`{"op":"submit"}` + "\n{not json}\n\x00\x01\x02\n"))
	f.Add([]byte(`{"op":"calib","scale":-7,"n":-1}` + "\n"))
	f.Add([]byte(`{"op":"submit","id":"j1","seq":999999,"est_seconds":1e308}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, journal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		st := replayJournal(dir)
		if st == nil {
			t.Fatal("replayJournal returned nil")
		}
		// A full Open over the same wreckage must also survive: replayed
		// live jobs re-validate their decks, corrupt ones fail typed, and
		// the compacted journal it leaves behind must itself replay clean.
		srv, err := Open(Options{
			Workers: 1, AdmitOnly: true, StateDir: dir, SpillInterval: -1,
		})
		if err != nil {
			t.Fatalf("Open over corrupt journal: %v", err)
		}
		srv.Close()
		st2 := replayJournal(dir)
		if st2.skipped != 0 {
			t.Fatalf("compacted journal has %d unparseable lines", st2.skipped)
		}
	})
}
