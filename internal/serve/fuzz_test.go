package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSubmitDeck hammers the HTTP deck-submission path — headers plus
// body — with mutated decks seeded from decks/. The server runs in
// AdmitOnly mode: every submission is parsed, predicted, and admitted
// or rejected, but nothing executes, so the fuzzer explores the
// untrusted-input surface (parser, deck→config mapping, admission
// arithmetic) at full speed. The invariant: any input yields a typed
// JSON response with a known status, never a panic or a hang.
func FuzzSubmitDeck(f *testing.F) {
	files, _ := filepath.Glob("../../decks/*.deck")
	for _, p := range files {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(b, "0")
			f.Add(b, "10")
		}
	}
	f.Add([]byte("[control]\nproblem = sod\nnx = 1000000000\nny = 1000000\n"), "1")
	f.Add([]byte("[control]\nproblem = sod\nranks = 100000\nthreads = 1000000\n"), "0")
	f.Add([]byte("[control]\nproblem = sod\nnx = 200\nny = 4\ntend = 1e300\n"), "0")
	f.Add([]byte("[control]\nproblem = sod\nnx = 4000000000\nny = 4000000000\n"), "0")
	f.Add([]byte("[control]\nproblem = sod\nnx = -7\nny = 0\n"), "-3")
	f.Add([]byte("[control]\nproblem = sod\ncheckpoint = /etc/passwd\n"), "")
	f.Add([]byte("garbage\n"), "2147483648")
	f.Add([]byte("[supervise]\nenabled = maybe\n"), "0")
	f.Add([]byte(""), "not-a-number")

	srv := New(Options{Workers: 1, BudgetSeconds: 3600, AdmitOnly: true})
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	f.Fuzz(func(t *testing.T, deck []byte, priority string) {
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(deck))
		if err != nil {
			t.Skip() // header-invalid priority strings can't even build a request
		}
		if priority != "" {
			req.Header.Set("X-Priority", priority)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			// The transport rejects some hostile header bytes before the
			// server sees them; that is not a server defect.
			t.Skip()
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusBadRequest,
			http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d for deck %q priority %q",
				resp.StatusCode, deck, priority)
		}
		// Every response — success or error — must be well-formed JSON.
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("status %d body is not JSON: %v", resp.StatusCode, err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
		if resp.StatusCode == http.StatusAccepted {
			id, _ := doc["id"].(string)
			if id == "" {
				t.Fatalf("202 without job id: %v", doc)
			}
			// The admitted job must be immediately visible.
			jr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			jr.Body.Close()
			if jr.StatusCode != http.StatusOK {
				t.Fatalf("admitted job %s not retrievable: %d", id, jr.StatusCode)
			}
		}
	})
}
