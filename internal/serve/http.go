package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bookleaf"
	"bookleaf/internal/config"
	"bookleaf/internal/obs"
)

// The wire layer: a stdlib ServeMux over the scheduler.
//
//	POST   /v1/jobs              submit a deck body; X-Priority header
//	GET    /v1/jobs/{id}         status, and the full result when done
//	GET    /v1/jobs/{id}/metrics merged obs snapshot (+ ?watch=1 NDJSON stream)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/status            scheduler stats
//
// Errors are a typed JSON body {"error":{"code":..., "message":...}}
// so clients can switch on the code without parsing prose.

// errorBody is the typed error envelope.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes on the wire.
const (
	CodeBadDeck      = "bad_deck"
	CodeBadPriority  = "bad_priority"
	CodeBadClient    = "bad_client"
	CodeDeckTooLarge = "deck_too_large"
	CodeNotFound     = "not_found"
	CodeOverloaded   = "overloaded"
	CodeOverQuota    = "client_over_quota"
	CodeClosed       = "shutting_down"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorBody{Error: errorInfo{Code: code, Message: msg}})
}

// SubmitResponse acknowledges an admitted job.
type SubmitResponse struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Priority   int     `json:"priority"`
	EstSeconds float64 `json:"est_seconds"`
	EstSteps   int     `json:"est_steps"`
}

// JobResponse is the status document; Result is present once done.
type JobResponse struct {
	Status
	Result *ResultJSON `json:"result,omitempty"`
}

// ResultJSON is the deck-to-result payload. Field arrays are raw
// float64s: Go's encoder emits the shortest decimal that round-trips,
// so a decoded result compares bitwise against an in-process run.
type ResultJSON struct {
	Problem      string    `json:"problem"`
	NEl          int       `json:"nel"`
	NNd          int       `json:"nnd"`
	Steps        int       `json:"steps"`
	Time         float64   `json:"time"`
	E0           float64   `json:"e0"`
	EFinal       float64   `json:"efinal"`
	ExternalWork float64   `json:"external_work"`
	Mass0        float64   `json:"mass0"`
	MassFinal    float64   `json:"mass_final"`
	Rollbacks    int       `json:"rollbacks"`
	X            []float64 `json:"x"`
	Y            []float64 `json:"y"`
	Rho          []float64 `json:"rho"`
	P            []float64 `json:"p"`
	Ein          []float64 `json:"ein"`
	U            []float64 `json:"u"`
	V            []float64 `json:"v"`
}

// MetricsResponse carries progress plus the merged obs snapshot.
type MetricsResponse struct {
	ID          string        `json:"id"`
	State       string        `json:"state"`
	Step        int           `json:"step"`
	Time        float64       `json:"time"`
	TEnd        float64       `json:"tend"`
	Preemptions int           `json:"preemptions"`
	Metrics     *obs.Snapshot `json:"metrics,omitempty"`
}

func resultJSON(res *bookleaf.Result) *ResultJSON {
	return &ResultJSON{
		Problem: res.Problem, NEl: res.NEl, NNd: res.NNd,
		Steps: res.Steps, Time: res.Time,
		E0: res.E0, EFinal: res.EFinal, ExternalWork: res.ExternalWork,
		Mass0: res.Mass0, MassFinal: res.MassFinal,
		Rollbacks: res.Rollbacks,
		X:         res.X, Y: res.Y, Rho: res.Rho, P: res.P, Ein: res.Ein,
		U: res.U, V: res.V,
	}
}

// Handler returns the daemon's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/status", s.handleStats)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	priority := 0
	if p := r.Header.Get("X-Priority"); p != "" {
		v, err := strconv.Atoi(p)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadPriority,
				fmt.Sprintf("X-Priority %q is not an integer", p))
			return
		}
		priority = v
	}
	j, err := s.Submit(r.Body, priority, r.Header.Get("X-Client"))
	if err != nil {
		var bad *BadDeckError
		var badc *BadClientError
		var over *OverloadedError
		var quota *QuotaError
		switch {
		case errors.Is(err, config.ErrTooLarge):
			writeErr(w, http.StatusRequestEntityTooLarge, CodeDeckTooLarge, err.Error())
		case errors.As(err, &bad):
			writeErr(w, http.StatusBadRequest, CodeBadDeck, bad.Reason)
		case errors.As(err, &badc):
			writeErr(w, http.StatusBadRequest, CodeBadClient, badc.Reason)
		case errors.As(err, &quota):
			// Same status as overloaded, distinct code: this client alone
			// is over its backlog quota — other clients still admit.
			w.Header().Set("Retry-After", strconv.Itoa(quota.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, CodeOverQuota, quota.Error())
		case errors.As(err, &over):
			w.Header().Set("Retry-After", strconv.Itoa(over.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, CodeOverloaded, over.Error())
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, CodeClosed, err.Error())
		default:
			writeErr(w, http.StatusBadRequest, CodeBadDeck, err.Error())
		}
		return
	}
	st := s.Status(j)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: j.ID, State: st.State, Priority: j.Priority,
		EstSeconds: j.Est.Seconds, EstSteps: j.Est.Steps,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	resp := JobResponse{Status: s.Status(j)}
	if res := s.Result(j); res != nil {
		resp.Result = resultJSON(res)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusAccepted, s.Status(j))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) metricsResponse(j *Job) MetricsResponse {
	st := s.Status(j)
	return MetricsResponse{
		ID: j.ID, State: st.State,
		Step: st.Step, Time: st.Time, TEnd: st.TEnd,
		Preemptions: st.Preemptions,
		Metrics:     s.Metrics(j),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, s.metricsResponse(j))
		return
	}
	// Streaming mode: one NDJSON document per interval until the job
	// reaches a terminal state (a final document included) or the
	// client goes away.
	// The interval clamps to [10ms, 60s]. The upper bound matters for
	// more than politeness: interval_ms is attacker-controlled, and
	// time.Duration(v) * time.Millisecond overflows int64 for huge v —
	// a non-positive product would panic time.NewTicker.
	interval := 250 * time.Millisecond
	if ms := r.URL.Query().Get("interval_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v >= 10 {
			if v > 60_000 {
				v = 60_000
			}
			interval = time.Duration(v) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		// Terminal-state check comes before the encode so the final
		// document is emitted exactly once — a job that is already done
		// at connect time (or finishes between ticks) gets one closing
		// record, not a mid-loop copy plus a terminal copy.
		select {
		case <-j.Done():
			enc.Encode(s.metricsResponse(j))
			if flusher != nil {
				flusher.Flush()
			}
			return
		default:
		}
		if err := enc.Encode(s.metricsResponse(j)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-j.Done():
			// Loop around: the top select emits the final document.
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}
