package serve

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bookleaf"
	"bookleaf/internal/machine"
)

// Restart-recovery battery for the durable server. The crash is
// simulated by cloning the state directory while the first server is
// live — the clone is taken under the scheduler mutex, which every
// journal append and snapshot spill also holds, so it is exactly the
// on-disk state an abrupt kill at that instant would leave — and then
// opening a second server over the clone. The load-bearing assertion
// is the same one the preemption tests make: a recovered run must be
// bitwise identical to an uninterrupted run of the same deck.

// cloneStateDir copies dir's files into a fresh temp dir under s.mu,
// freezing a crash-consistent image of the journal and spills.
func cloneStateDir(t *testing.T, s *Server, dir string) string {
	t.Helper()
	clone := t.TempDir()
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(clone, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return clone
}

func assertResultBitwise(t *testing.T, got, want *bookleaf.Result) {
	t.Helper()
	if got == nil {
		t.Fatal("no result")
	}
	if got.Steps != want.Steps || got.Time != want.Time {
		t.Fatalf("clock differs: recovered %d/%v, direct %d/%v",
			got.Steps, got.Time, want.Steps, want.Time)
	}
	if got.E0 != want.E0 || got.EFinal != want.EFinal ||
		got.ExternalWork != want.ExternalWork ||
		got.Mass0 != want.Mass0 || got.MassFinal != want.MassFinal {
		t.Fatalf("audit scalars differ: EFinal %v vs %v", got.EFinal, want.EFinal)
	}
	fields := []struct {
		name     string
		got, ref []float64
	}{
		{"x", got.X, want.X}, {"y", got.Y, want.Y},
		{"rho", got.Rho, want.Rho}, {"p", got.P, want.P},
		{"ein", got.Ein, want.Ein}, {"u", got.U, want.U}, {"v", got.V, want.V},
	}
	for _, f := range fields {
		if len(f.got) != len(f.ref) {
			t.Fatalf("field %s: length %d vs %d", f.name, len(f.got), len(f.ref))
		}
		for i := range f.got {
			if f.got[i] != f.ref[i] {
				t.Fatalf("field %s[%d]: recovered %v != direct %v (bitwise)",
					f.name, i, f.got[i], f.ref[i])
			}
		}
	}
	for _, name := range deterministicCounters {
		if got.Obs == nil || want.Obs == nil {
			t.Fatal("missing obs snapshot")
		}
		if g, r := got.Obs.Counters[name], want.Obs.Counters[name]; g != r {
			t.Fatalf("counter %s = %d, direct run %d (legs merged wrong?)", name, g, r)
		}
	}
}

// waitProgress polls until the job is running and past minStep.
func waitProgress(t *testing.T, s *Server, j *Job, minStep int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := s.Status(j)
		if st.State == StateRunning && st.Step >= minStep {
			return
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCanceled {
			t.Fatalf("job reached %q before making progress", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDurableCrashMidRunResumesBitwise is the acceptance core: a
// daemon crashes while a job runs (after at least one periodic spill),
// a fresh daemon opens the same state dir, and the job completes from
// its last spilled snapshot with a result — field arrays and merged
// obs counters — bitwise identical to an uninterrupted run. Both the
// serial and the ranks=2 (partition-independent snapshot) paths.
func TestDurableCrashMidRunResumesBitwise(t *testing.T) {
	for _, tc := range []struct {
		name, deck string
	}{
		{"serial", "[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\n"},
		{"ranks2", "[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\nranks = 2\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := directRun(t, tc.deck)
			dir := t.TempDir()
			s, err := Open(Options{
				Workers: 1, Threads: 1, StateDir: dir,
				SpillInterval: 25 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			j, err := s.Submit(strings.NewReader(tc.deck), 0, "alice")
			if err != nil {
				t.Fatal(err)
			}
			// Wait for the periodic spill to have parked-and-resumed the
			// job at least once: the clone must carry a mid-run snapshot.
			deadline := time.Now().Add(60 * time.Second)
			for s.Status(j).Preemptions < 1 {
				if st := s.Status(j); st.State == StateDone {
					t.Skip("machine too fast: job finished before the first spill")
				}
				if time.Now().After(deadline) {
					t.Fatalf("no spill happened: %+v", s.Status(j))
				}
				time.Sleep(time.Millisecond)
			}
			clone := cloneStateDir(t, s, dir)
			s.Close() // the first daemon is dead to us; release its pools

			s2, err := Open(Options{
				Workers: 1, Threads: 1, StateDir: clone, SpillInterval: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			j2, ok := s2.Get(j.ID)
			if !ok {
				t.Fatalf("job %s lost across the crash", j.ID)
			}
			if j2.Client != "alice" {
				t.Fatalf("client %q lost across the crash", j2.Client)
			}
			j2.Wait()
			if st := s2.Status(j2); st.State != StateDone {
				t.Fatalf("recovered job ended %q (%s)", st.State, st.Error)
			} else if st.Preemptions < 1 {
				t.Fatalf("recovered job reports %d preemptions, expected the spill to count", st.Preemptions)
			}
			assertResultBitwise(t, s2.Result(j2), want)
		})
	}
}

// TestDurableRestartQueuedJobs: a crash with one job running (no spill
// yet) and two queued. All three must survive into the new daemon and
// complete bitwise — the running one restarted from scratch, the
// queued ones in their journaled order.
func TestDurableRestartQueuedJobs(t *testing.T) {
	decks := []string{
		"[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\n",
		"[control]\nproblem = sod\nnx = 60\nny = 4\nmaxsteps = 40\n",
		"[control]\nproblem = sod\nnx = 60\nny = 4\nmaxsteps = 50\n",
	}
	want := make([]*bookleaf.Result, len(decks))
	for i, d := range decks {
		want[i] = directRun(t, d)
	}
	dir := t.TempDir()
	s, err := Open(Options{Workers: 1, Threads: 1, StateDir: dir, SpillInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*Job, len(decks))
	for i, d := range decks {
		if jobs[i], err = s.Submit(strings.NewReader(d), 0, ""); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Status(jobs[2]); st.State != StateQueued {
		t.Fatalf("third job is %q, wanted a queued crash victim", st.State)
	}
	clone := cloneStateDir(t, s, dir)
	s.Close()

	s2, err := Open(Options{Workers: 1, Threads: 1, StateDir: clone, SpillInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, j := range jobs {
		j2, ok := s2.Get(j.ID)
		if !ok {
			t.Fatalf("job %d (%s) lost across the crash", i, j.ID)
		}
		j2.Wait()
		if st := s2.Status(j2); st.State != StateDone {
			t.Fatalf("job %d ended %q (%s)", i, st.State, st.Error)
		}
		assertResultBitwise(t, s2.Result(j2), want[i])
	}
}

// TestDurableGracefulShutdownParks: Close on a durable server is a
// park, not a massacre — the running job is preempted and spilled, the
// queued job stays journaled, and the next Open resumes both to
// bitwise-correct completion.
func TestDurableGracefulShutdownParks(t *testing.T) {
	runDeck := "[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\n"
	queueDeck := "[control]\nproblem = sod\nnx = 60\nny = 4\nmaxsteps = 40\n"
	wantRun := directRun(t, runDeck)
	wantQueue := directRun(t, queueDeck)

	dir := t.TempDir()
	s, err := Open(Options{Workers: 1, Threads: 1, StateDir: dir, SpillInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(strings.NewReader(runDeck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Submit(strings.NewReader(queueDeck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, s, j, 10)
	s.Close()
	// The park is observable: the job is still live (queued, not
	// canceled) and its snapshot sits on disk.
	if st := s.Status(j); st.State != StateQueued {
		t.Fatalf("running job ended %q on durable Close, want parked (queued)", st.State)
	}
	if _, err := os.Stat(filepath.Join(dir, j.ID+snapSuffix)); err != nil {
		t.Fatalf("no spilled snapshot after graceful shutdown: %v", err)
	}

	s2, err := Open(Options{Workers: 1, Threads: 1, StateDir: dir, SpillInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, tc := range []struct {
		id   string
		want *bookleaf.Result
	}{{j.ID, wantRun}, {q.ID, wantQueue}} {
		j2, ok := s2.Get(tc.id)
		if !ok {
			t.Fatalf("job %s lost across graceful restart", tc.id)
		}
		j2.Wait()
		if st := s2.Status(j2); st.State != StateDone {
			t.Fatalf("job %s ended %q (%s)", tc.id, st.State, st.Error)
		}
		assertResultBitwise(t, s2.Result(j2), tc.want)
	}
	if st := s2.Status(mustGet(t, s2, j.ID)); st.Preemptions < 1 {
		t.Fatalf("parked job reports %d preemptions", st.Preemptions)
	}
}

func mustGet(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	j, ok := s.Get(id)
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	return j
}

// TestDurableCalibrationAndTerminalSurviveRestart: the calibrator's
// learned scale and the terminal record of finished jobs both outlive
// the daemon. Result field arrays deliberately do not (their snapshot
// files are deleted at terminal state) — the status document is the
// durable artifact.
func TestDurableCalibrationAndTerminalSurviveRestart(t *testing.T) {
	deck := "[control]\nproblem = sod\nnx = 40\nny = 4\nmaxsteps = 10\n"
	dir := t.TempDir()
	s, err := Open(Options{Workers: 1, Threads: 1, StateDir: dir, SpillInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(strings.NewReader(deck), 0, "carol")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	st0 := s.Stats()
	if st0.CalibrationN != 1 || !(st0.CalibrationScale > 0) {
		t.Fatalf("no calibration after completion: %+v", st0)
	}
	s.Close()

	s2, err := Open(Options{Workers: 1, Threads: 1, StateDir: dir, SpillInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st1 := s2.Stats()
	if st1.CalibrationScale != st0.CalibrationScale || st1.CalibrationN != st0.CalibrationN {
		t.Fatalf("calibration did not survive the restart: %+v vs %+v", st1, st0)
	}
	j2, ok := s2.Get(j.ID)
	if !ok {
		t.Fatal("terminal job evicted by the restart")
	}
	st := s2.Status(j2)
	if st.State != StateDone || st.Client != "carol" || st.Error != "" {
		t.Fatalf("terminal job recovered wrong: %+v", st)
	}
	if s2.Result(j2) != nil {
		t.Fatal("result arrays are documented not to survive a restart")
	}
	// And the next submission is priced with the restored scale.
	raw := machine.PredictRun(machine.RunShape{
		Problem: "sod", NX: 40, NY: 4, MaxSteps: 10, Threads: 1,
	})
	j3, err := s2.Submit(strings.NewReader(deck), 0, "carol")
	if err != nil {
		t.Fatal(err)
	}
	want := raw.Seconds * st0.CalibrationScale
	if math.Abs(j3.Est.Seconds-want)/want > 1e-9 {
		t.Fatalf("post-restart estimate %g, want model %g x restored scale %g",
			j3.Est.Seconds, raw.Seconds, st0.CalibrationScale)
	}
	j3.Wait()
}

// TestDurableJournalCorruptionRecovery: garbage appended to a valid
// journal — a torn final line is the realistic case — must cost
// nothing: Open succeeds and every journaled job recovers and runs.
func TestDurableJournalCorruptionRecovery(t *testing.T) {
	decks := []string{
		"[control]\nproblem = sod\nnx = 60\nny = 4\nmaxsteps = 40\n",
		"[control]\nproblem = sod\nnx = 60\nny = 4\nmaxsteps = 50\n",
	}
	want := make([]*bookleaf.Result, len(decks))
	for i, d := range decks {
		want[i] = directRun(t, d)
	}
	dir := t.TempDir()
	s, err := Open(Options{
		Workers: 1, Threads: 1, StateDir: dir, SpillInterval: -1,
		// A long head job keeps the two victims safely queued (never
		// started) until the clone.
	})
	if err != nil {
		t.Fatal(err)
	}
	head, err := s.Submit(strings.NewReader("[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\n"), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = head
	jobs := make([]*Job, len(decks))
	for i, d := range decks {
		if jobs[i], err = s.Submit(strings.NewReader(d), 0, ""); err != nil {
			t.Fatal(err)
		}
	}
	clone := cloneStateDir(t, s, dir)
	s.Close()

	// Corrupt the clone: a torn JSON line, plain garbage, and a record
	// with an op nobody knows.
	jp := filepath.Join(clone, journalName)
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, `{"op":"submit","id":"j9","se`+"\n")
	io.WriteString(f, "complete garbage \x00\x01\n")
	io.WriteString(f, `{"op":"timewarp","id":"j000002"}`+"\n")
	f.Close()

	s2, err := Open(Options{Workers: 1, Threads: 1, StateDir: clone, SpillInterval: -1})
	if err != nil {
		t.Fatalf("Open failed on a corrupt journal: %v", err)
	}
	defer s2.Close()
	for i, j := range jobs {
		j2, ok := s2.Get(j.ID)
		if !ok {
			t.Fatalf("job %d lost to unrelated corruption", i)
		}
		j2.Wait()
		if st := s2.Status(j2); st.State != StateDone {
			t.Fatalf("job %d ended %q (%s)", i, st.State, st.Error)
		}
		assertResultBitwise(t, s2.Result(j2), want[i])
	}

	// Truncating the journal mid-file is also survivable: Open keeps the
	// parseable prefix and never errors.
	b, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, journalName), b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Workers: 1, AdmitOnly: true, StateDir: dir3, SpillInterval: -1})
	if err != nil {
		t.Fatalf("Open failed on a truncated journal: %v", err)
	}
	s3.Close()
}

// TestClientQuotaTyped429: a client at its backlog quota is rejected
// with *QuotaError — carrying a positive Retry-After — while another
// client's identical deck still admits, and the global overload error
// stays distinct.
func TestClientQuotaTyped429(t *testing.T) {
	longDeck := "[control]\nproblem = noh\nnx = 50\nny = 50\ntend = 0.6\n"
	longEst := machine.PredictRun(machine.RunShape{
		Problem: "noh", NX: 50, NY: 50, TEnd: 0.6, Threads: 1,
	})
	smallEst := admitEst(1)
	quota := longEst.Seconds + smallEst.Seconds/2

	s, err := Open(Options{
		Workers: 1, Threads: 1, BudgetSeconds: 1e9,
		ClientBudgetSeconds: quota, CalibrateAlpha: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	long, err := s.Submit(strings.NewReader(longDeck), 0, "alice")
	if err != nil {
		t.Fatalf("first alice deck rejected: %v", err)
	}
	_, err = s.Submit(strings.NewReader(admitDeck), 0, "alice")
	var quotaErr *QuotaError
	if !errors.As(err, &quotaErr) {
		t.Fatalf("over-quota alice deck: got %v, want *QuotaError", err)
	}
	if quotaErr.Client != "alice" || quotaErr.RetryAfter < 1 || quotaErr.Quota != quota {
		t.Fatalf("quota error misdescribes itself: %+v", quotaErr)
	}
	// The server is NOT full: bob's identical deck admits.
	bob, err := s.Submit(strings.NewReader(admitDeck), 0, "bob")
	if err != nil {
		t.Fatalf("bob rejected while only alice is over quota: %v", err)
	}
	st := s.Stats()
	if st.ClientBacklog["alice"] <= 0 || st.ClientBacklog["bob"] <= 0 {
		t.Fatalf("per-client backlog not tracked: %+v", st.ClientBacklog)
	}
	// Drain: cancel the long job; alice's quota frees and she admits.
	s.Cancel(long.ID)
	long.Wait()
	if st := s.Stats(); st.ClientBacklog["alice"] != 0 {
		t.Fatalf("alice backlog %g after her job's terminal state", st.ClientBacklog["alice"])
	}
	a2, err := s.Submit(strings.NewReader(admitDeck), 0, "alice")
	if err != nil {
		t.Fatalf("alice rejected after her backlog drained: %v", err)
	}
	a2.Wait()
	bob.Wait()
}

// TestFairOrderingInterleavesClients: whitebox check of the queue
// order under start-time fair queuing. One client floods four equal
// jobs, another submits two; within the same priority band the queue
// must interleave them instead of serving the flood FIFO, and a
// weighted client must advance proportionally faster.
func TestFairOrderingInterleavesClients(t *testing.T) {
	order := func(weights map[string]float64, submits []struct {
		id     string
		client string
	}) []string {
		s := New(Options{Workers: 1, ClientWeights: weights, AdmitOnly: true})
		defer s.Close()
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, sub := range submits {
			j := &Job{
				ID: sub.id, Client: sub.client, seq: i + 1,
				Est: machine.Estimate{Seconds: 10},
			}
			s.fairTagLocked(j)
			s.pushLocked(j)
		}
		ids := make([]string, len(s.queue))
		for i, j := range s.queue {
			ids[i] = j.ID
		}
		s.queue = nil
		return ids
	}

	got := order(nil, []struct{ id, client string }{
		{"a1", "alice"}, {"a2", "alice"}, {"a3", "alice"}, {"a4", "alice"},
		{"b1", "bob"}, {"b2", "bob"},
	})
	want := []string{"a1", "b1", "a2", "b2", "a3", "a4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("unweighted fair order %v, want %v", got, want)
	}

	// bob at weight 2 drains twice as fast: his first job outruns
	// alice's flood entirely.
	got = order(map[string]float64{"bob": 2}, []struct{ id, client string }{
		{"a1", "alice"}, {"a2", "alice"}, {"a3", "alice"}, {"a4", "alice"},
		{"b1", "bob"}, {"b2", "bob"},
	})
	want = []string{"b1", "a1", "b2", "a2", "a3", "a4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("weighted fair order %v, want %v", got, want)
	}
}

// TestBadClientRejected: hostile X-Client identities die as typed
// *BadClientError before touching the queue or the journal.
func TestBadClientRejected(t *testing.T) {
	s := New(Options{Workers: 1, AdmitOnly: true})
	defer s.Close()
	for _, client := range []string{
		strings.Repeat("a", 65),
		"two words",
		"ctrl\x01byte",
		"naïve",
		"tab\tseparated",
	} {
		_, err := s.Submit(strings.NewReader(admitDeck), 0, client)
		var bad *BadClientError
		if !errors.As(err, &bad) {
			t.Fatalf("hostile client %q accepted (err=%v)", client, err)
		}
	}
	// The default and a normal name both pass.
	j, err := s.Submit(strings.NewReader(admitDeck), 0, "")
	if err != nil || j.Client != DefaultClient {
		t.Fatalf("empty client: job %+v err %v, want default %q", j, err, DefaultClient)
	}
	if j2, err := s.Submit(strings.NewReader(admitDeck), 0, "alice-42"); err != nil || j2.Client != "alice-42" {
		t.Fatalf("plain client rejected: %v", err)
	}
}

// TestTerminalJobPinsNoSnapshot is the memory-leak regression test: a
// job that was preempted (and so held a mesh-sized resume snapshot)
// must drop it — and the merged leg obs, the leg config's ResumeFrom,
// and the journaled deck bytes — the moment it reaches a terminal
// state, instead of pinning them for its whole retention-FIFO stay.
func TestTerminalJobPinsNoSnapshot(t *testing.T) {
	sodDeck := "[control]\nproblem = sod\nnx = 400\nny = 4\ntend = 0.25\n"
	nohDeck := "[control]\nproblem = noh\nnx = 24\nny = 24\nmaxsteps = 60\n"
	s := New(Options{Workers: 1, Threads: 1})
	defer s.Close()
	sod, err := s.Submit(strings.NewReader(sodDeck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, s, sod, 10)
	noh, err := s.Submit(strings.NewReader(nohDeck), 10, "")
	if err != nil {
		t.Fatal(err)
	}
	noh.Wait()
	sod.Wait()
	st := s.Status(sod)
	if st.State != StateDone || st.Preemptions < 1 {
		t.Fatalf("scenario broke: sod ended %+v, want done with >=1 preemption", st)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sod.resumeSnap != nil {
		t.Error("terminal job still pins its resume snapshot")
	}
	if sod.prevObs != nil {
		t.Error("terminal job still pins its merged leg obs")
	}
	if sod.cfg.ResumeFrom != nil {
		t.Error("terminal job's config still pins a snapshot through ResumeFrom")
	}
	if sod.deckRaw != nil {
		t.Error("terminal job still pins its raw deck bytes")
	}
	// The result itself must be unharmed by the cleanup.
	if sod.result == nil || sod.result.Obs == nil {
		t.Fatal("cleanup destroyed the result")
	}
}

// TestDoneStatusReportsDeckTEnd is the wrong-status-field regression
// test: a MaxSteps-limited run stops short of the deck's configured
// end time, and the done status must report that configured tend — not
// echo the reached time into both fields.
func TestDoneStatusReportsDeckTEnd(t *testing.T) {
	deck := "[control]\nproblem = sod\nnx = 40\nny = 4\ntend = 0.25\nmaxsteps = 10\n"
	s := New(Options{Workers: 1, Threads: 1})
	defer s.Close()
	j, err := s.Submit(strings.NewReader(deck), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	st := s.Status(j)
	if st.State != StateDone {
		t.Fatalf("job ended %q (%s)", st.State, st.Error)
	}
	if st.TEnd != 0.25 {
		t.Fatalf("done status tend = %v, want the deck's configured 0.25", st.TEnd)
	}
	if st.Time >= st.TEnd {
		t.Fatalf("scenario broke: maxsteps run reached time %v >= tend %v", st.Time, st.TEnd)
	}
}
