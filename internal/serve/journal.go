// The durability layer: an append-only NDJSON job journal plus
// per-job checkpoint-v2 spill files inside the server's state
// directory (Options.StateDir). Every admission, state transition and
// terminal outcome is one JSON line, fsynced as it is appended; each
// preemption's in-memory snapshot (priority eviction, periodic spill
// of a long-running leg, or the final park on graceful shutdown) is
// written next to it as <id>.ckpt in the existing
// partition/order-independent checkpoint-v2 gob format. A restarted
// daemon replays the journal — re-admitting queued work, resuming
// interrupted jobs from their last spilled snapshot through
// Config.ResumeFrom (bitwise-identical to an uninterrupted run, the
// per-leg obs snapshots merged), restoring per-client backlogs and
// the calibrator's learned scale — then rewrites the journal
// compacted so it does not grow across restarts.
//
// The journal is written under the scheduler mutex, so a mid-write
// crash can tear at most the final line. Replay is correspondingly
// paranoid: any line that does not parse, or that references a job or
// snapshot that does not exist, is skipped — recovery keeps whatever
// parses and never fails on a corrupt journal (FuzzJournalReplay pins
// this down). The only errors Open surfaces are environmental: an
// uncreatable state directory or an unwritable journal file.
package serve

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"bookleaf/internal/checkpoint"
	"bookleaf/internal/obs"
)

// journalName is the NDJSON job log inside the state directory.
const journalName = "journal.ndjson"

// snapSuffix names the per-job checkpoint spill files (<id>.ckpt).
const snapSuffix = ".ckpt"

// Journal operations. Terminal records use the job-state strings
// (StateDone / StateFailed / StateCanceled) directly as their op, so a
// terminal line is self-describing without a second field.
const (
	opSubmit = "submit"
	opStart  = "start"
	opSpill  = "spill"
	opCalib  = "calib"
)

func terminalOp(op string) bool {
	return op == StateDone || op == StateFailed || op == StateCanceled
}

// journalRecord is one NDJSON line of the job journal. A single
// struct covers every op; irrelevant fields stay at their zero value
// and are omitted on the wire.
type journalRecord struct {
	Op string `json:"op"`
	ID string `json:"id,omitempty"`

	// submit: the admission facts needed to re-admit the job —
	// including the raw deck bytes, so a restarted server re-parses
	// exactly what the client sent (base64 in the JSON).
	Seq          int     `json:"seq,omitempty"`
	Priority     int     `json:"priority,omitempty"`
	Client       string  `json:"client,omitempty"`
	Deck         []byte  `json:"deck,omitempty"`
	EstSeconds   float64 `json:"est_seconds,omitempty"`
	ModelSeconds float64 `json:"model_seconds,omitempty"`

	// spill: the snapshot file (relative to the state dir) and the
	// leg bookkeeping a resumed job needs — the preemption point, the
	// merged finished-leg obs snapshot, and the measured wall seconds
	// the calibrator will be fed at completion.
	Snap        string        `json:"snap,omitempty"`
	Step        int           `json:"step,omitempty"`
	Time        float64       `json:"time,omitempty"`
	Preemptions int           `json:"preemptions,omitempty"`
	WallSeconds float64       `json:"wall_seconds,omitempty"`
	Obs         *obs.Snapshot `json:"obs,omitempty"`

	// terminal: the failure message (empty for done/canceled-by-user).
	Error string `json:"error,omitempty"`

	// calib: the calibrator's scale and observation count after an
	// Observe; replay restores the last record seen.
	Scale float64 `json:"scale,omitempty"`
	N     int     `json:"n,omitempty"`
}

// journal is the open append handle. All writes happen under the
// server mutex; every append is fsynced so an acknowledged submission
// survives a crash.
type journal struct {
	dir string
	f   *os.File
	enc *json.Encoder
}

func openJournalFile(dir string) (*journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, f: f, enc: json.NewEncoder(f)}, nil
}

func (jl *journal) append(rec *journalRecord) error {
	if err := jl.enc.Encode(rec); err != nil {
		return err
	}
	return jl.f.Sync()
}

func (jl *journal) close() {
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
}

func (jl *journal) snapName(id string) string { return id + snapSuffix }

func (jl *journal) snapPath(id string) string {
	return filepath.Join(jl.dir, jl.snapName(id))
}

// writeSnap spills a snapshot atomically (write-temp-then-rename): a
// crash mid-spill leaves the previous spill intact, never a torn file.
func (jl *journal) writeSnap(id string, sn *checkpoint.Snapshot) (string, error) {
	name := jl.snapName(id)
	tmp := filepath.Join(jl.dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	if err := sn.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, filepath.Join(jl.dir, name)); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return name, nil
}

func (jl *journal) removeSnap(id string) { os.Remove(jl.snapPath(id)) }

// readSnapFile loads one spill; callers treat any error as "no spill"
// and restart the job from scratch.
func readSnapFile(path string) (*checkpoint.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return checkpoint.Read(f)
}

// replayJob is the reconstruction of one job from the journal.
type replayJob struct {
	id       string
	seq      int
	priority int
	client   string
	deck     []byte
	est      float64
	model    float64

	terminal string // "", or the terminal state op
	errMsg   string

	snapFile    string
	step        int
	time        float64
	preemptions int
	wall        float64
	obs         *obs.Snapshot
}

// replayState is everything a journal scan recovers.
type replayState struct {
	jobs          map[string]*replayJob
	order         []string // first-seen (submission) order
	terminalOrder []string // terminal-record order — the retention FIFO
	calScale      float64
	calN          int
	maxSeq        int
	skipped       int // lines dropped: unparseable or inconsistent
}

// journalScanBuf bounds one journal line: the largest legitimate line
// is a submit record carrying a MaxDeckBytes deck (1 MiB default)
// base64-expanded, so 16 MiB is generous. A longer line stops the
// scan; everything before it is kept.
const journalScanBuf = 16 << 20

// replayJournal scans the journal and reduces it to per-job state.
// It never fails: a missing journal is an empty one, and corrupt or
// inconsistent lines are counted and skipped.
func replayJournal(dir string) *replayState {
	st := &replayState{jobs: map[string]*replayJob{}}
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		return st
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), journalScanBuf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			st.skipped++
			continue
		}
		if rec.Seq > st.maxSeq {
			st.maxSeq = rec.Seq
		}
		switch {
		case rec.Op == opSubmit:
			if rec.ID == "" || st.jobs[rec.ID] != nil {
				st.skipped++ // anonymous or duplicate submission
				continue
			}
			st.jobs[rec.ID] = &replayJob{
				id: rec.ID, seq: rec.Seq, priority: rec.Priority,
				client: rec.Client, deck: rec.Deck,
				est: rec.EstSeconds, model: rec.ModelSeconds,
			}
			st.order = append(st.order, rec.ID)
		case rec.Op == opStart:
			if st.jobs[rec.ID] == nil {
				st.skipped++
			}
			// A start without a later spill or terminal record replays
			// the same as queued: the job re-runs from scratch.
		case rec.Op == opSpill:
			rj := st.jobs[rec.ID]
			if rj == nil || rj.terminal != "" {
				st.skipped++
				continue
			}
			// Later spills supersede earlier ones for the same job.
			rj.snapFile = rec.Snap
			rj.step, rj.time = rec.Step, rec.Time
			rj.preemptions, rj.wall = rec.Preemptions, rec.WallSeconds
			rj.obs = rec.Obs
		case terminalOp(rec.Op):
			rj := st.jobs[rec.ID]
			if rj == nil {
				if rec.ID == "" {
					st.skipped++
					continue
				}
				// A compacted journal carries terminal jobs as a single
				// self-describing record with no preceding submit.
				rj = &replayJob{id: rec.ID, seq: rec.Seq, client: rec.Client}
				st.jobs[rec.ID] = rj
			}
			if rj.terminal != "" {
				st.skipped++ // double terminal
				continue
			}
			rj.terminal = rec.Op
			rj.errMsg = rec.Error
			st.terminalOrder = append(st.terminalOrder, rec.ID)
		case rec.Op == opCalib:
			st.calScale, st.calN = rec.Scale, rec.N
		default:
			st.skipped++
		}
	}
	// A scan error (torn final line past the buffer, I/O fault) stops
	// the replay at the last good line; that prefix is what we keep.
	return st
}
