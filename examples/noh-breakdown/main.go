// Noh per-kernel breakdown: the paper's Table II experiment at host
// scale. Runs the Noh implosion flat (one goroutine rank per core-slot)
// and hybrid (one rank, threaded kernels with the acceleration scatter
// left serial, as in the reference OpenMP port), prints both per-kernel
// breakdowns, and checks the simulation against the exact Noh solution.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"

	"bookleaf"
	"bookleaf/internal/exact"
)

func main() {
	ncpu := runtime.NumCPU()
	par := ncpu
	if par > 8 {
		par = 8
	}

	configs := []struct {
		label          string
		ranks, threads int
	}{
		{"flat", par, 1},
		{"hybrid", 1, par},
	}

	var results []*bookleaf.Result
	for _, c := range configs {
		// NoFuse: this example reproduces the paper's per-kernel
		// hybrid/flat ratios, which need the unfused timer breakdown.
		res, err := bookleaf.Run(bookleaf.Config{
			Problem: "noh", NX: 80, NY: 80,
			Ranks: c.ranks, Threads: c.threads,
			NoFuse: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("== %s: %d rank(s) x %d thread(s), %d steps ==\n",
			c.label, c.ranks, c.threads, res.Steps)
		printBreakdown(res)
		fmt.Println()
	}

	// The paper's single-node story: the viscosity kernel threads
	// well, the acceleration scatter does not.
	flat, hyb := results[0], results[1]
	fmt.Printf("hybrid/flat ratios:  getq %.2fx   getacc %.2fx   getdt %.2fx\n",
		hyb.Timers["getq"]/flat.Timers["getq"],
		hyb.Timers["getacc"]/flat.Timers["getacc"],
		hyb.Timers["getdt"]/flat.Timers["getdt"])

	// Validate the physics against the exact solution.
	noh := exact.NewNoh()
	rs, rho := flat.RadialProfile(flat.Rho)
	peak := 0.0
	for _, v := range rho {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("\nexact post-shock density %.1f, simulated peak %.2f\n", noh.PostShockDensity(), peak)
	fmt.Printf("exact shock radius %.3f; density at that radius %.2f\n",
		noh.ShockRadius(flat.Time), at(rs, rho, noh.ShockRadius(flat.Time)))
}

func at(rs, vals []float64, r float64) float64 {
	best, dist := 0.0, 1e300
	for i := range rs {
		d := rs[i] - r
		if d < 0 {
			d = -d
		}
		if d < dist {
			dist, best = d, vals[i]
		}
	}
	return best
}

func printBreakdown(res *bookleaf.Result) {
	type kv struct {
		name string
		sec  float64
	}
	var rows []kv
	total := 0.0
	for k, v := range res.Timers {
		rows = append(rows, kv{k, v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sec > rows[j].sec })
	for _, r := range rows {
		fmt.Printf("  %-10s %8.3fs (%4.1f%%)\n", r.name, r.sec, 100*r.sec/total)
	}
}
