// Sedov blast: runs the point-blast problem on a Cartesian mesh (the
// paper: "to test the code's capability to model non-mesh-aligned
// shocks") and compares the computed front against the Sedov-Taylor
// self-similar solution, whose similarity constant is integrated from
// the blast-wave ODEs in internal/exact.
package main

import (
	"fmt"
	"log"
	"math"

	"bookleaf"
	"bookleaf/internal/exact"
)

func main() {
	res, err := bookleaf.Run(bookleaf.Config{
		Problem: "sedov",
		NX:      80,
		NY:      80,
	})
	if err != nil {
		log.Fatal(err)
	}
	sed, err := exact.NewSedov(res.Gamma, 2, res.SedovEnergy, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Sedov blast: E=%.3f, %d steps to t=%.2f, energy drift %.1e\n",
		res.SedovEnergy, res.Steps, res.Time, res.EnergyDrift())
	fmt.Printf("similarity constant alpha = %.4f (literature ~0.984 for cylindrical gamma=1.4)\n\n",
		sed.Alpha())

	rs, rho := res.RadialProfile(res.Rho)
	peakR, peak := 0.0, 0.0
	for i, r := range rs {
		if rho[i] > peak {
			peak, peakR = rho[i], r
		}
	}
	rShock := sed.ShockRadius(res.Time)
	fmt.Printf("shock front:   exact R = %.3f     simulated peak at R = %.3f (%.1f%% off)\n",
		rShock, peakR, 100*math.Abs(peakR-rShock)/rShock)
	fmt.Printf("peak density:  exact jump = %.2f  simulated = %.2f\n\n",
		sed.PostShockDensity(), peak)

	fmt.Println("radial density profile vs self-similar solution:")
	fmt.Printf("%8s %10s %10s\n", "r", "simulated", "exact")
	for _, target := range []float64{0.1, 0.25, 0.4, 0.55, 0.65, 0.7, 0.73, 0.76, 0.8, 0.9} {
		sim := at(rs, rho, target)
		ex, _, _ := sed.Sample(target, res.Time)
		fmt.Printf("%8.2f %10.3f %10.3f\n", target, sim, ex)
	}
}

func at(rs, vals []float64, r float64) float64 {
	// Average the values of elements within a window of radius r; near
	// the evacuated origin the Lagrangian cells are huge, so fall back
	// to the nearest element when the window is empty.
	const h = 0.012
	var sum float64
	var n int
	nearest, dist := 0.0, math.Inf(1)
	for i := range rs {
		d := math.Abs(rs[i] - r)
		if d < h {
			sum += vals[i]
			n++
		}
		if d < dist {
			dist, nearest = d, vals[i]
		}
	}
	if n == 0 {
		return nearest
	}
	return sum / float64(n)
}
