// Saltzmann hourglass ablation: the piston problem on the skewed mesh
// is "designed to exacerbate hourglass modes and therefore test a
// code's capability to suppress such modes" (the paper). This example
// runs it with no hourglass control, the Hancock-style filter, and
// Caramana sub-zonal pressures, comparing post-shock accuracy and mesh
// quality.
package main

import (
	"fmt"
	"math"

	"bookleaf"
)

func main() {
	fmt.Println("Saltzmann piston (100x10 skewed mesh, t=0.5; exact post-shock density = 4)")
	fmt.Printf("%-10s %10s %12s %12s %14s\n",
		"hourglass", "steps", "rho behind", "worst cell", "piston work")
	for _, hg := range []string{"none", "filter", "subzonal"} {
		res, err := bookleaf.Run(bookleaf.Config{
			Problem:   "saltzmann",
			NX:        100,
			NY:        10,
			TEnd:      0.5,
			Hourglass: hg,
		})
		if err != nil {
			// Without hourglass control the skewed mesh may tangle —
			// that outcome is the point of the experiment.
			fmt.Printf("%-10s failed: %v\n", hg, err)
			continue
		}
		xs, rho := res.XProfile(res.Rho)
		var behind []float64
		for i, x := range xs {
			if x > 0.52 && x < 0.62 {
				behind = append(behind, rho[i])
			}
		}
		fmt.Printf("%-10s %10d %12.3f %12.4f %14.5f\n",
			hg, res.Steps, mean(behind), worstAspect(res), res.ExternalWork)
	}
	fmt.Println("\nworst cell = smallest corner-volume share (0.25 is a perfect")
	fmt.Println("parallelogram corner; values near 0 mean a nearly-tangled cell)")
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// worstAspect returns the minimum corner sub-volume share over the
// final mesh — a direct hourglass-distortion metric.
func worstAspect(res *bookleaf.Result) float64 {
	worst := math.Inf(1)
	for e := 0; e < res.Mesh.NEl; e++ {
		nd := res.Mesh.ElNd[e]
		var x, y [4]float64
		for k := 0; k < 4; k++ {
			x[k] = res.X[nd[k]]
			y[k] = res.Y[nd[k]]
		}
		cx := 0.25 * (x[0] + x[1] + x[2] + x[3])
		cy := 0.25 * (y[0] + y[1] + y[2] + y[3])
		var mx, my [4]float64
		for k := 0; k < 4; k++ {
			kp := (k + 1) & 3
			mx[k] = 0.5 * (x[k] + x[kp])
			my[k] = 0.5 * (y[k] + y[kp])
		}
		area := 0.5 * ((x[2]-x[0])*(y[3]-y[1]) - (x[3]-x[1])*(y[2]-y[0]))
		for k := 0; k < 4; k++ {
			km := (k + 3) & 3
			qx := [4]float64{x[k], mx[k], cx, mx[km]}
			qy := [4]float64{y[k], my[k], cy, my[km]}
			sv := 0.5 * ((qx[2]-qx[0])*(qy[3]-qy[1]) - (qx[3]-qx[1])*(qy[2]-qy[0]))
			if share := sv / area; share < worst {
				worst = share
			}
		}
	}
	return worst * 4 // normalise: 1.0 = perfectly uniform corners
}
