// Scaling: the paper's Figure 3 experiment in both of this repo's
// forms. First a real strong-scaling run of the Sod solver over
// goroutine ranks on this host (partition -> ghost layers -> halo
// exchanges per step, exactly the structure of the Cray runs), then the
// machine-model projection of the 8-64 node Cray XC50 study with the
// paper's read-off values alongside.
package main

import (
	"fmt"
	"log"
	"runtime"

	"bookleaf"
	"bookleaf/internal/machine"
)

func main() {
	fmt.Printf("== Real strong scaling on this host (%d CPUs): Sod 384x8 ==\n", runtime.NumCPU())
	fmt.Printf("%-6s %6s %12s %10s %12s\n", "ranks", "steps", "kernel-sec", "speedup", "efficiency")
	maxRanks := runtime.NumCPU()
	if maxRanks > 8 {
		maxRanks = 8
	}
	if maxRanks < 4 {
		// Oversubscribed on small hosts: still exercises the partition
		// + halo-exchange structure, just without real speedup.
		maxRanks = 4
		fmt.Println("(few CPUs: rank scaling demonstrates structure, not speedup)")
	}
	var base float64
	for r := 1; r <= maxRanks; r *= 2 {
		res, err := bookleaf.Run(bookleaf.Config{
			Problem: "sod", NX: 384, NY: 8, MaxSteps: 200, Ranks: r,
		})
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, s := range res.Timers {
			total += s
		}
		if r == 1 {
			base = total
		}
		fmt.Printf("%-6d %6d %12.3f %9.2fx %11.0f%%\n",
			r, res.Steps, total, base/total, 100*base/total/float64(r))
	}

	fmt.Println("\n== Modelled Cray XC50 study (paper Figure 3), hybrid Sod ==")
	w := machine.Fig3Workload()
	for _, p := range machine.Platforms() {
		if p.Exec != machine.Hybrid {
			continue
		}
		cpu := "Skylake"
		if p.Name == "Broadwell Hybrid" {
			cpu = "Broadwell"
		}
		fmt.Printf("%s:\n%-6s %10s %10s\n", cpu, "nodes", "model(s)", "paper(s)")
		pts := p.StrongScaling(w, []int{8, 16, 32, 64})
		for i, pt := range pts {
			fmt.Printf("%-6d %10.0f %10.0f\n", pt.Nodes, pt.Overall, machine.PaperFig3[cpu][i].Secs)
		}
		fmt.Println()
	}
	fmt.Println("note the superlinear 8->16 step: the per-node working set drops")
	fmt.Println("into last-level cache, the effect the paper attributes it to.")
}
