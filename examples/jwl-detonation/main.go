// JWL detonation products: a disc of hot Jones-Wilkins-Lee detonation
// products expands into low-density ideal-gas air — exercising the
// third of BookLeaf's equations of state on a custom, non-deck problem
// built directly against the library packages (mesh + hydro).
package main

import (
	"fmt"
	"log"
	"math"

	"bookleaf/internal/eos"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
)

func main() {
	const (
		n     = 80
		rHE   = 0.1 // initial products radius
		eHE   = 4.0 // specific detonation energy
		tEnd  = 0.12
		gamma = 1.4
	)
	products := eos.LX14()
	air, err := eos.NewIdealGas(gamma)
	if err != nil {
		log.Fatal(err)
	}

	m, err := mesh.Rect(mesh.RectSpec{
		NX: n, NY: n, X0: 0, X1: 1, Y0: 0, Y1: 1,
		RegionOf: func(cx, cy float64) int {
			if math.Hypot(cx, cy) < rHE {
				return 0 // JWL products
			}
			return 1 // air
		},
		Walls: mesh.DefaultWalls(),
	})
	if err != nil {
		log.Fatal(err)
	}

	opt := hydro.DefaultOptions(products, air)
	opt.Hourglass = hydro.HGFilter
	opt.HGKappa = 0.25
	rho := make([]float64, m.NEl)
	ein := make([]float64, m.NEl)
	for e := 0; e < m.NEl; e++ {
		if m.Region[e] == 0 {
			rho[e] = 1.0 // solid-density products
			ein[e] = eHE
		} else {
			rho[e] = 0.1
			ein[e] = 0.5 // ambient air
		}
	}
	s, err := hydro.NewState(m, opt, rho, ein)
	if err != nil {
		log.Fatal(err)
	}

	e0 := s.TotalEnergy()
	hooks := &hydro.Hooks{ReduceDt: func(dt float64, e int) (float64, int) {
		if s.Time+dt > tEnd {
			dt = tEnd - s.Time
		}
		return dt, e
	}}
	for s.Time < tEnd-1e-12 {
		if _, err := s.Step(nil, hooks); err != nil {
			log.Fatalf("step %d (t=%.4f): %v", s.StepCount, s.Time, err)
		}
	}

	fmt.Printf("JWL products expansion: %d steps to t=%.2f\n", s.StepCount, s.Time)
	fmt.Printf("energy drift %.2e (floor %.2e)\n",
		math.Abs(s.TotalEnergy()-e0-s.FloorEnergy)/e0, s.FloorEnergy)

	// Blast front: the outermost radius where pressure exceeds twice
	// the ambient air pressure.
	pAmb := air.Pressure(0.1, 0.5)
	front := 0.0
	var xq, yq [4]float64
	for e := 0; e < m.NEl; e++ {
		if s.P[e] > 2*pAmb {
			for k := 0; k < 4; k++ {
				xq[k] = s.X[m.ElNd[e][k]]
				yq[k] = s.Y[m.ElNd[e][k]]
			}
			r := math.Hypot(0.25*(xq[0]+xq[1]+xq[2]+xq[3]), 0.25*(yq[0]+yq[1]+yq[2]+yq[3]))
			if r > front {
				front = r
			}
		}
	}
	fmt.Printf("blast front at r = %.3f (products started at r = %.1f)\n", front, rHE)

	// Products have expanded and cooled: interface density far below
	// the initial solid density.
	var prodRho, prodN float64
	for e := 0; e < m.NEl; e++ {
		if m.Region[e] == 0 {
			prodRho += s.Rho[e]
			prodN++
		}
	}
	fmt.Printf("mean products density: %.3f (initial 1.0) — expanded %.1fx\n",
		prodRho/prodN, prodN/prodRho)
}
