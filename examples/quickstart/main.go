// Quickstart: run Sod's shock tube through the public bookleaf API,
// print the run summary, the conservation audit, and an ASCII density
// profile against the exact Riemann solution.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"bookleaf"
	"bookleaf/internal/exact"
)

func main() {
	res, err := bookleaf.Run(bookleaf.Config{
		Problem: "sod",
		NX:      200,
		NY:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Sod shock tube: %d elements, %d steps to t=%.3f\n", res.NEl, res.Steps, res.Time)
	fmt.Printf("energy drift: %.2e   mass drift: %.2e\n\n",
		res.EnergyDrift(), math.Abs(res.MassFinal-res.Mass0)/res.Mass0)

	xs, rho := res.XProfile(res.Rho)
	rp := exact.Sod(0.5)

	fmt.Println("density profile (s = simulation, e = exact):")
	const rows = 16
	for r := rows; r >= 0; r-- {
		level := 0.125 + (1.0-0.125)*float64(r)/rows
		var line strings.Builder
		for i := 0; i < len(xs); i += len(xs) / 64 {
			sim := rho[i]
			ex, _ := rp.Sample(xs[i], res.Time)
			simHit := math.Abs(sim-level) < 0.45/rows
			exHit := math.Abs(ex.Rho-level) < 0.45/rows
			switch {
			case simHit && exHit:
				line.WriteByte('*')
			case simHit:
				line.WriteByte('s')
			case exHit:
				line.WriteByte('e')
			default:
				line.WriteByte(' ')
			}
		}
		fmt.Printf("%5.2f |%s\n", level, line.String())
	}
	fmt.Printf("      +%s\n", strings.Repeat("-", 64))
	fmt.Printf("       x = 0%sx = 1\n", strings.Repeat(" ", 54))

	l1 := bookleaf.L1Error(xs, rho, func(x float64) float64 {
		s, err := rp.Sample(x, res.Time)
		if err != nil {
			log.Fatal(err)
		}
		return s.Rho
	})
	fmt.Printf("\nL1 density error vs exact Riemann solution: %.4f\n", l1)
}
