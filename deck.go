package bookleaf

import "bookleaf/internal/config"

// ConfigFromDeck maps a parsed input deck onto a Config. It is the
// single deck→Config translation both front ends share: the bookleaf
// CLI and the bleaf-served job API, so a deck submitted over HTTP means
// exactly what the same file means on the command line. Unknown keys
// are not an error here — callers that care (the CLI warns, the server
// rejects nothing) consult d.Unused afterwards.
func ConfigFromDeck(d *config.Deck) (Config, error) {
	var cfg Config
	var err error
	cfg.Problem = d.String("control", "problem", "sod")
	if cfg.NX, err = d.Int("control", "nx", 100); err != nil {
		return cfg, err
	}
	if cfg.NY, err = d.Int("control", "ny", 10); err != nil {
		return cfg, err
	}
	if cfg.TEnd, err = d.Float("control", "tend", 0); err != nil {
		return cfg, err
	}
	if cfg.MaxSteps, err = d.Int("control", "maxsteps", 0); err != nil {
		return cfg, err
	}
	if cfg.Ranks, err = d.Int("control", "ranks", 1); err != nil {
		return cfg, err
	}
	if cfg.Threads, err = d.Int("control", "threads", 1); err != nil {
		return cfg, err
	}
	cfg.Partitioner = d.String("control", "partitioner", "rcb")
	cfg.Reorder = d.String("control", "reorder", "")
	cfg.Layout = d.String("control", "layout", "")
	if cfg.Overlap, err = d.Bool("control", "overlap", false); err != nil {
		return cfg, err
	}
	fuseOn, err := d.Bool("control", "fuse", true)
	if err != nil {
		return cfg, err
	}
	cfg.NoFuse = !fuseOn
	if cfg.FuseTile, err = d.Int("control", "fuse_tile", 0); err != nil {
		return cfg, err
	}
	if cfg.Float32Aux, err = d.Bool("hydro", "float32aux", false); err != nil {
		return cfg, err
	}
	cfg.Checkpoint = d.String("control", "checkpoint", "")
	if cfg.CheckpointEvery, err = d.Int("control", "checkpoint_every", 0); err != nil {
		return cfg, err
	}
	cfg.Resume = d.String("control", "resume", "")
	if cfg.RollbackEvery, err = d.Int("control", "rollback_every", 0); err != nil {
		return cfg, err
	}
	if cfg.RetryBudget, err = d.Int("control", "retry_budget", 0); err != nil {
		return cfg, err
	}
	cfg.ALE = d.String("ale", "mode", "")
	if cfg.ALE == "lagrangian" || cfg.ALE == "off" {
		cfg.ALE = ""
	}
	if cfg.ALEFreq, err = d.Int("ale", "freq", 1); err != nil {
		return cfg, err
	}
	if cfg.FirstOrderRemap, err = d.Bool("ale", "firstorder", false); err != nil {
		return cfg, err
	}
	cfg.Trace = d.String("obs", "trace", "")
	cfg.Metrics = d.String("obs", "metrics", "")
	if cfg.ProbeEvery, err = d.Int("obs", "probe_every", 0); err != nil {
		return cfg, err
	}
	if cfg.ProbeMaxDrift, err = d.Float("obs", "probe_maxdrift", 0); err != nil {
		return cfg, err
	}
	if d.Has("supervise") {
		sc := &SuperviseConfig{}
		if sc.Enabled, err = d.Bool("supervise", "enabled", false); err != nil {
			return cfg, err
		}
		if sc.RetryBudget, err = d.Int("supervise", "retry_budget", 0); err != nil {
			return cfg, err
		}
		if sc.ReplaceBudget, err = d.Int("supervise", "replace_budget", 0); err != nil {
			return cfg, err
		}
		if sc.PersistAfter, err = d.Int("supervise", "persist_after", 0); err != nil {
			return cfg, err
		}
		if sc.BackoffBase, err = d.Duration("supervise", "backoff_base", 0); err != nil {
			return cfg, err
		}
		if sc.BackoffMax, err = d.Duration("supervise", "backoff_max", 0); err != nil {
			return cfg, err
		}
		if sc.BackoffJitter, err = d.Float("supervise", "backoff_jitter", 0); err != nil {
			return cfg, err
		}
		if sc.RecvTimeout, err = d.Duration("supervise", "recv_timeout", 0); err != nil {
			return cfg, err
		}
		if sc.DtBackoff, err = d.Float("supervise", "dt_backoff", 0); err != nil {
			return cfg, err
		}
		if sc.RepartCheckEvery, err = d.Int("supervise", "repart_check_every", 0); err != nil {
			return cfg, err
		}
		if sc.RepartThreshold, err = d.Float("supervise", "repart_threshold", 0); err != nil {
			return cfg, err
		}
		if sc.RepartMinGap, err = d.Int("supervise", "repart_min_gap", 0); err != nil {
			return cfg, err
		}
		if sc.RepartAtStep, err = d.Int("supervise", "repart_at", 0); err != nil {
			return cfg, err
		}
		if sc.RepartRanks, err = d.Int("supervise", "repart_ranks", 0); err != nil {
			return cfg, err
		}
		if sc.RanksMax, err = d.Int("supervise", "ranks_max", 0); err != nil {
			return cfg, err
		}
		seed, err := d.Int("supervise", "seed", 0)
		if err != nil {
			return cfg, err
		}
		sc.Seed = uint64(seed)
		cfg.Supervise = sc
	}
	cfg.Hourglass = d.String("hydro", "hourglass", "")
	if cfg.ScatterAcc, err = d.Bool("hydro", "scatteracc", false); err != nil {
		return cfg, err
	}
	if cfg.SedovEnergy, err = d.Float("hydro", "sedov_energy", 0); err != nil {
		return cfg, err
	}
	return cfg, nil
}
