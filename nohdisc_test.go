package bookleaf_test

import (
	"testing"

	"bookleaf"
)

// Noh on the quarter-disc mesh: the mesh-alignment ablation. The arc
// boundary lies exactly on the physical r=1 circle and the converging
// flow is better aligned with the cell layout, so the post-shock
// plateau should be at least as good as on the Cartesian quadrant.
func TestNohDiscMeshAblation(t *testing.T) {
	plateau := func(cfg bookleaf.Config) float64 {
		res := run(t, cfg)
		rs, rho := res.RadialProfile(res.Rho)
		var vals []float64
		for i, r := range rs {
			if r > 0.05 && r < 0.15 {
				vals = append(vals, rho[i])
			}
		}
		if len(vals) < 5 {
			t.Fatalf("too few plateau samples")
		}
		return median(vals)
	}
	disc := plateau(bookleaf.Config{Problem: "nohdisc", NX: 40, NY: 40})
	cart := plateau(bookleaf.Config{Problem: "noh", NX: 40, NY: 40})
	// Both must capture a strong shock (exact plateau 16).
	if disc < 11.5 || cart < 11.5 {
		t.Fatalf("plateaus too low: disc %v cart %v", disc, cart)
	}
	if disc < cart-0.8 {
		t.Fatalf("disc mesh (%v) notably worse than Cartesian (%v)", disc, cart)
	}
}

func TestNohDiscEnergyConserved(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "nohdisc", NX: 32, NY: 32, TEnd: 0.3})
	if drift := res.EnergyDrift(); drift > 1e-9 {
		t.Fatalf("energy drift %v", drift)
	}
}
