package bookleaf_test

import (
	"math"
	"testing"

	"bookleaf"
)

// The water-air tube validates the multi-material machinery with the
// Tait EoS: compressed water (barotropic) drives a shock into ideal-gas
// air across a large impedance mismatch.
func TestWaterAirMultiMaterial(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "waterair", NX: 200, NY: 2})

	if drift := res.EnergyDrift(); drift > 1e-10 {
		t.Fatalf("energy drift %v", drift)
	}
	if math.Abs(res.MassFinal-res.Mass0) > 1e-12*res.Mass0 {
		t.Fatalf("mass drift %v -> %v", res.Mass0, res.MassFinal)
	}

	xs, rho := res.XProfile(res.Rho)
	_, p := res.XProfile(res.P)

	// The material interface (density jump from ~1 to <0.2) must have
	// moved right of its initial x=0.4 as the water expands.
	iface := 0.0
	for i := 1; i < len(xs); i++ {
		if rho[i-1] > 0.5 && rho[i] < 0.5 {
			iface = 0.5 * (xs[i-1] + xs[i])
			break
		}
	}
	// Stiff water unloads to the interface pressure almost instantly,
	// so the displacement is small but must be rightward.
	if iface <= 0.403 {
		t.Fatalf("interface at %v, want > 0.403 (moved right)", iface)
	}

	// Pressure is continuous across the interface: compare averages
	// just left and just right of it.
	// Sample tightly around the interface: a rarefaction oscillation
	// trails the contact a few cells behind it in the air.
	var pl, pr []float64
	for i, x := range xs {
		if x > iface-0.03 && x < iface-0.005 {
			pl = append(pl, p[i])
		}
		if x > iface+0.005 && x < iface+0.03 {
			pr = append(pr, p[i])
		}
	}
	if len(pl) == 0 || len(pr) == 0 {
		t.Fatal("no samples straddling the interface")
	}
	ml, mr := mean(pl), mean(pr)
	if math.Abs(ml-mr) > 0.35*math.Max(ml, mr) {
		t.Fatalf("pressure jump across interface: %v vs %v", ml, mr)
	}

	// A compression wave is running in the air: peak air pressure
	// clearly above the 0.1 ambient, and the far field undisturbed.
	peakAir, farField := 0.0, 0.0
	for i, x := range xs {
		if x > iface+0.02 && p[i] > peakAir {
			peakAir = p[i]
		}
		if x > 0.9 {
			farField = math.Max(farField, math.Abs(p[i]-0.1))
		}
	}
	if peakAir < 0.13 {
		t.Fatalf("no compression wave in the air: peak pressure %v", peakAir)
	}
	if farField > 1e-6 {
		t.Fatalf("far-field air disturbed by %v", farField)
	}

	// The water has relaxed towards its reference density.
	var wRho []float64
	for i, x := range xs {
		if x < 0.2 {
			wRho = append(wRho, rho[i])
		}
	}
	if m := mean(wRho); m < 0.99 || m > 1.02 {
		t.Fatalf("water density %v outside [0.99, 1.02]", m)
	}
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
