package bookleaf

import (
	"errors"
	"fmt"
	"sync/atomic"

	"bookleaf/internal/checkpoint"
	"bookleaf/internal/obs"
)

// ErrCanceled is matched (via errors.Is) by the error Run returns when
// an attached Control's Cancel request was observed: the run stopped at
// a step boundary and its state was discarded.
var ErrCanceled = errors.New("run canceled")

// PreemptedError is the error Run returns when an attached Control's
// Preempt request was observed. It is not a failure: the run stopped at
// a step boundary (a collective healthy point on parallel runs) and
// carries everything needed to continue later — an in-memory
// checkpoint-v2 snapshot (partition-independent, so the resumed leg may
// use any rank count) and the metrics the interrupted leg accumulated.
// Resuming via Config.ResumeFrom reproduces the uninterrupted run
// bit for bit.
type PreemptedError struct {
	// Snapshot is the in-memory restart dump; pass it to
	// Config.ResumeFrom to continue the run.
	Snapshot *checkpoint.Snapshot
	// Step and Time locate the preemption point.
	Step int
	Time float64
	// Obs is the interrupted leg's merged metrics snapshot; merge it
	// with the resumed leg's Result.Obs to recover the totals an
	// uninterrupted run would have reported.
	Obs *obs.Snapshot
}

func (e *PreemptedError) Error() string {
	return fmt.Sprintf("run preempted at step %d (t=%v)", e.Step, e.Time)
}

// Control request codes, ordered by strength: a Cancel always wins
// over a pending Preempt.
const (
	ctlNone int32 = iota
	ctlPreempt
	ctlCancel
)

// RunStatus is a point-in-time progress report of a running simulation.
type RunStatus struct {
	Step int
	Time float64
	TEnd float64
}

// Control is the live handle a supervisor (cmd/bleaf-served) holds on a
// running simulation: per-step progress and periodic metrics snapshots
// flow out, Cancel/Preempt requests flow in. Attach one via
// Config.Control before calling Run; a Control is single-use — make a
// fresh one for every Run (including resumed legs).
//
// All methods are safe for concurrent use and nil-safe, so the drivers
// wire them unconditionally: with no Control attached the steady-state
// step stays allocation-free.
//
// Requests are observed at step boundaries — on parallel runs at the
// next collective healthy point, so every rank stops at the same step.
// Cancel makes Run return an error matching ErrCanceled; Preempt makes
// it return a *PreemptedError carrying an in-memory checkpoint-v2
// snapshot to resume from.
type Control struct {
	// SnapshotEvery is the step cadence of mid-run metrics snapshots
	// published through Metrics (0 = default 16; negative = off). On
	// parallel runs the published snapshot is rank 0's registry — the
	// rank that also owns the probe records — not the cross-rank merge,
	// which only exists after the run. Set before Run; read-only after.
	SnapshotEvery int

	action  atomic.Int32
	status  atomic.Pointer[RunStatus]
	metrics obs.Live
}

// Cancel requests the run stop at the next step boundary, discarding
// its state. Overrides a pending Preempt.
func (c *Control) Cancel() {
	if c == nil {
		return
	}
	c.action.Store(ctlCancel)
}

// Preempt requests the run stop at the next step boundary and hand back
// an in-memory checkpoint to resume from. A pending Cancel wins.
func (c *Control) Preempt() {
	if c == nil {
		return
	}
	c.action.CompareAndSwap(ctlNone, ctlPreempt)
}

// Status returns the latest progress report, or ok=false before the
// run publishes its first one.
func (c *Control) Status() (st RunStatus, ok bool) {
	if c == nil {
		return RunStatus{}, false
	}
	p := c.status.Load()
	if p == nil {
		return RunStatus{}, false
	}
	return *p, true
}

// Metrics returns the most recent mid-run metrics snapshot (nil before
// the first cadence point). The returned snapshot is immutable.
func (c *Control) Metrics() *obs.Snapshot {
	if c == nil {
		return nil
	}
	return c.metrics.Load()
}

// poll returns the pending request code.
func (c *Control) poll() int32 {
	if c == nil {
		return ctlNone
	}
	return c.action.Load()
}

// noteProgress publishes a progress report; called by the drivers after
// each completed step (rank 0 at the healthy point on parallel runs).
func (c *Control) noteProgress(step int, t, tEnd float64) {
	if c == nil {
		return
	}
	c.status.Store(&RunStatus{Step: step, Time: t, TEnd: tEnd})
}

// snapshotDue reports whether a metrics snapshot should be published
// after the given completed step.
func (c *Control) snapshotDue(step int) bool {
	if c == nil {
		return false
	}
	every := c.SnapshotEvery
	if every < 0 {
		return false
	}
	if every == 0 {
		every = 16
	}
	return step%every == 0
}

// publishMetrics publishes a mid-run snapshot; the caller must own the
// registry the snapshot came from (drivers call it from the goroutine
// that owns reg, so the export itself never races).
func (c *Control) publishMetrics(s *obs.Snapshot) {
	if c == nil {
		return
	}
	c.metrics.Publish(s)
}
