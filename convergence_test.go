package bookleaf_test

import (
	"math"
	"testing"

	"bookleaf"
	"bookleaf/internal/exact"
)

// Mesh convergence of the 2-D code on Sod: L1 error against the exact
// Riemann solution must drop at ~first order (the expected rate for a
// shock-dominated L1 norm).
func TestSodMeshConvergence(t *testing.T) {
	rp := exact.Sod(0.5)
	refRho := func(x float64) float64 {
		s, err := rp.Sample(x, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return s.Rho
	}
	errAt := func(n int) float64 {
		res := run(t, bookleaf.Config{Problem: "sod", NX: n, NY: 2})
		xs, rho := res.XProfile(res.Rho)
		return bookleaf.L1Error(xs, rho, refRho)
	}
	e50 := errAt(50)
	e100 := errAt(100)
	e200 := errAt(200)
	if !(e200 < e100 && e100 < e50) {
		t.Fatalf("errors not decreasing: %v %v %v", e50, e100, e200)
	}
	order := math.Log2(e50/e200) / 2
	if order < 0.8 || order > 1.6 {
		t.Fatalf("convergence order %v outside [0.8, 1.6] (errors %v %v %v)", order, e50, e100, e200)
	}
}
