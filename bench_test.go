// Benchmarks regenerating the paper's evaluation at this-host scale.
// Every table and figure has a counterpart:
//
//	Table I   -> BenchmarkTable1MachineModel (platform registry eval)
//	Table II  -> BenchmarkTable2Kernel/* (per-kernel costs, Noh state)
//	Figure 1  -> BenchmarkFig1Noh/flat vs hybrid (overall step time)
//	Figure 2a -> BenchmarkFig2aViscosity
//	Figure 2b -> BenchmarkFig2bAcceleration (scatter vs gather ablation)
//	Figure 3  -> BenchmarkFig3SodScaling/ranks-N (real strong scaling)
//	Figure 4  -> BenchmarkFig4Kernels/ranks-N (per-kernel under scaling)
//
// cmd/bleaf-tables prints the corresponding full-scale modelled numbers
// next to the paper's values.
package bookleaf

import (
	"fmt"
	"testing"

	"bookleaf/internal/ale"
	"bookleaf/internal/hydro"
	"bookleaf/internal/machine"
	"bookleaf/internal/order"
	"bookleaf/internal/par"
	"bookleaf/internal/partition"
	"bookleaf/internal/setup"
	"bookleaf/internal/timers"
)

// nohState builds a developed Noh state (a few steps in, so the shock
// exists and the viscosity kernel has real work).
func nohState(b *testing.B, n int) *hydro.State {
	b.Helper()
	p, err := setup.Noh(n, n)
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.NewState()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Step(nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkTable1MachineModel(b *testing.B) {
	w := machine.Table2Workload()
	for i := 0; i < b.N; i++ {
		for _, p := range machine.Platforms() {
			_ = machine.ModelRow(p, w)
		}
	}
}

func BenchmarkTable2Kernel(b *testing.B) {
	s := nohState(b, 64)
	nel := s.Mesh.NEl
	kernels := []struct {
		name string
		fn   func()
	}{
		{"getq", func() { s.GetQ(0, nel) }},
		{"getforce", func() { s.GetForce(0, nel, s.U, s.V) }},
		{"getacc", func() { s.GetAcc(1e-6) }},
		{"getdt", func() { s.GetDt() }},
		{"getgeom", func() { _ = s.GetGeom(1e-9, s.U, s.V, 0, nel) }},
		{"getrho", func() { s.GetRho(0, nel) }},
		{"getein", func() { s.GetEin(1e-9, s.U, s.V, 0, nel) }},
		{"getpc", func() { s.GetPC(0, nel) }},
	}
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			copy(s.U0, s.U)
			copy(s.V0, s.V)
			copy(s.Ein0, s.Ein)
			copy(s.X0, s.X)
			copy(s.Y0, s.Y)
			b.ReportMetric(float64(nel), "elements")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.fn()
			}
		})
	}
}

func BenchmarkFig1Noh(b *testing.B) {
	for _, mode := range []struct {
		name           string
		ranks, threads int
	}{
		{"flat-4ranks", 4, 1},
		{"hybrid-4threads", 1, 4},
		{"serial", 1, 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(Config{
					Problem: "noh", NX: 48, NY: 48, MaxSteps: 40,
					Ranks: mode.ranks, Threads: mode.threads,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig2aViscosity(b *testing.B) {
	s := nohState(b, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GetQ(0, s.Mesh.NEl)
	}
}

func BenchmarkFig2bAcceleration(b *testing.B) {
	// The paper's acceleration story: the reference scatter with its
	// data dependency vs the (default) race-free gather.
	for _, scatter := range []bool{true, false} {
		name := "gather"
		if scatter {
			name = "scatter"
		}
		b.Run(name, func(b *testing.B) {
			s := nohState(b, 96)
			s.Opt.ScatterAcc = scatter
			copy(s.U0, s.U)
			copy(s.V0, s.V)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.GetAcc(1e-7)
			}
		})
	}
}

func BenchmarkFig3SodScaling(b *testing.B) {
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(Config{
					Problem: "sod", NX: 256, NY: 8, MaxSteps: 60, Ranks: ranks,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig4Kernels(b *testing.B) {
	// Per-kernel times under rank scaling (Figures 4a/4b at host
	// scale): reported as custom metrics from the run's timer set.
	for _, ranks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// NoFuse: the per-kernel metrics below exist only in
				// the paper-structure timer breakdown.
				res, err := Run(Config{
					Problem: "sod", NX: 192, NY: 8, MaxSteps: 50, Ranks: ranks,
					NoFuse: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Timers["getq"]*1e3, "getq-ms")
				b.ReportMetric(res.Timers["getacc"]*1e3, "getacc-ms")
			}
		})
	}
}

func BenchmarkLagrangianStep(b *testing.B) {
	s := nohState(b, 64)
	tm := timers.NewSet()
	// Warm the timer registry so steady-state steps allocate nothing
	// (first use of each name inserts into the Set).
	if _, err := s.Step(tm, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Mesh.NEl), "elements")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(tm, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemap records the remap cost across the target-mesh mode and
// the intra-rank thread count (BENCH_step.json via make bench). Each
// iteration times one Apply on a freshly stepped state, so the remap
// sees real fluxes; the interleaved step runs off the clock.
func BenchmarkRemap(b *testing.B) {
	for _, mode := range []struct {
		name string
		opt  ale.Options
	}{
		{"eulerian", ale.DefaultOptions()},
		{"smoothed", ale.Options{Mode: ale.Smoothed, SmoothWeight: 0.5}},
	} {
		for _, threads := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("mode-%s/threads-%d", mode.name, threads), func(b *testing.B) {
				p, err := setup.Sod(128, 8)
				if err != nil {
					b.Fatal(err)
				}
				s, err := p.NewState()
				if err != nil {
					b.Fatal(err)
				}
				if threads > 1 {
					s.Pool = par.New(threads)
					defer s.Pool.Close()
				}
				for i := 0; i < 5; i++ {
					if _, err := s.Step(nil, nil); err != nil {
						b.Fatal(err)
					}
				}
				r := ale.NewRemapper(mode.opt, s)
				b.ReportMetric(float64(s.Mesh.NEl), "elements")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := r.Apply(s, nil, nil); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if _, err := s.Step(nil, nil); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkStepGrid sweeps the full reorder×layout grid and reports ns
// per element-step — the record headline (step_ns_per_el in
// BENCH_step.json) is the best point of this grid.
// reorder=none/layout=soa is the seed configuration; hilbert/aos is the
// locality overhaul the roofline's reuse proxy predicts.
//
// The mesh is a wide Sod strong-scaling geometry (8192×8): at that
// width the generator's row-major sweep streams ~4 MB of element state
// between consecutive touches of a node row, so the node gathers fall
// out of L2 and the numbering is what decides whether they come back
// from cache or memory. On small square meshes (a 192-wide row fits
// L1) row-major is already near-optimal and the grid is flat — see
// bleaf-tables -reorder for the model-side version of both regimes.
func BenchmarkStepGrid(b *testing.B) {
	for _, ro := range []string{"none", "hilbert", "rcm"} {
		for _, lay := range []string{"soa", "aos"} {
			b.Run("reorder="+ro+"/layout="+lay, func(b *testing.B) {
				p, err := setup.Sod(8192, 8)
				if err != nil {
					b.Fatal(err)
				}
				kind, err := order.Parse(ro)
				if err != nil {
					b.Fatal(err)
				}
				if p.Mesh, err = order.Reorder(p.Mesh, kind); err != nil {
					b.Fatal(err)
				}
				if p.Opt.Layout, err = hydro.ParseLayout(lay); err != nil {
					b.Fatal(err)
				}
				s, err := p.NewState()
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < 5; i++ {
					if _, err := s.Step(nil, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Step(nil, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(
					float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(s.Mesh.NEl),
					"ns/el")
			})
		}
	}
}

func BenchmarkPartitioners(b *testing.B) {
	p, err := setup.Noh(96, 96)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rcb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.RCBMesh(p.Mesh, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.MultilevelMesh(p.Mesh, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStrongScalingModel(b *testing.B) {
	w := machine.Fig3Workload()
	ps := machine.Platforms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ps {
			if ps[j].Exec == machine.Hybrid {
				_ = ps[j].StrongScaling(w, []int{8, 16, 32, 64})
			}
		}
	}
}
