package bookleaf_test

// Golden-snapshot tests for the observability artefacts: a fixed
// 2-rank deck must reproduce metrics.json and the merged trace
// byte-for-byte modulo wall-clock fields. The goldens live in
// testdata/ and are refreshed with
//
//	go test -run TestGolden -update
//
// Everything in the snapshot is deterministic by construction: the
// run itself is bit-reproducible (see determinism_test.go), counters
// and probe gauges derive from it, JSON map keys are sorted by
// encoding/json, and the trace merge preserves per-rank event order.
// Wall-clock leaks through exactly two channels — meta.wall_seconds
// and the timers section in metrics.json, timestamps/durations in the
// trace — and the test zeroes those before comparing.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bookleaf"
	"bookleaf/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden observability snapshots")

func goldenConfig(dir string) bookleaf.Config {
	return bookleaf.Config{
		Problem: "sod", NX: 32, NY: 4, Ranks: 2, MaxSteps: 12,
		ALE:        "eulerian", // remap every step: exercises the remap halo phase
		ProbeEvery: 4, ProbeMaxDrift: 1e-9,
		Trace:   filepath.Join(dir, "golden"),
		Metrics: filepath.Join(dir, "metrics.json"),
	}
}

func compareOrUpdate(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden snapshot; rerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}

func TestGoldenMetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig(dir)
	if _, err := bookleaf.Run(cfg); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(cfg.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.MetricsFile
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics.json is not valid JSON: %v", err)
	}
	// Zero the wall-clock fields; keep the keys so the snapshot still
	// pins which timers and duration counters exist. Counters ending in
	// _ns are wall-clock by convention (halo_wait_ns, halo_overlap_ns).
	m.Meta.WallSeconds = 0
	for k := range m.Timers {
		m.Timers[k] = 0
	}
	for k := range m.Counters {
		if strings.HasSuffix(k, "_ns") {
			m.Counters[k] = 0
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteMetrics(&buf, &m); err != nil {
		t.Fatal(err)
	}
	compareOrUpdate(t, filepath.Join("testdata", "golden_metrics.json"), buf.Bytes())
}

// TestGoldenMetricsSnapshotSupervised pins the metrics schema of a
// supervised run: the supervise_* counters and backoff histograms must
// appear (at zero — the run is fault-free) alongside the unsupervised
// snapshot's metrics, whose values must be unchanged by supervision.
func TestGoldenMetricsSnapshotSupervised(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig(dir)
	cfg.Supervise = &bookleaf.SuperviseConfig{Enabled: true}
	if _, err := bookleaf.Run(cfg); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(cfg.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.MetricsFile
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics.json is not valid JSON: %v", err)
	}
	m.Meta.WallSeconds = 0
	for k := range m.Timers {
		m.Timers[k] = 0
	}
	for k := range m.Counters {
		if strings.HasSuffix(k, "_ns") {
			m.Counters[k] = 0
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteMetrics(&buf, &m); err != nil {
		t.Fatal(err)
	}
	compareOrUpdate(t, filepath.Join("testdata", "golden_metrics_supervised.json"), buf.Bytes())
}

func TestGoldenMergedTraceSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := goldenConfig(dir)
	if _, err := bookleaf.Run(cfg); err != nil {
		t.Fatal(err)
	}

	files := make([]*obs.TraceFile, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		tf, err := obs.ReadTraceFile(obs.TracePath(cfg.Trace, r))
		if err != nil {
			t.Fatal(err)
		}
		files[r] = tf
	}
	merged := obs.MergeTraces(files...)
	obs.NormalizeTrace(merged)
	got, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	compareOrUpdate(t, filepath.Join("testdata", "golden_trace.json"), got)
}
