package bookleaf_test

import (
	"math"
	"testing"

	"bookleaf"
	"bookleaf/internal/eos"
	"bookleaf/internal/ref1d"
)

// The 2-D code on a quasi-1-D strip must agree with the independent
// 1-D reference solver — the same numerical ingredients implemented
// twice, so agreement is a strong consistency check on both.
func TestTwoDMatchesOneDReference(t *testing.T) {
	const n = 200
	res := run(t, bookleaf.Config{Problem: "sod", NX: n, NY: 2})

	ref, err := ref1d.SodTube(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(0.25); err != nil {
		t.Fatal(err)
	}

	xs2, rho2 := res.XProfile(res.Rho)
	cx1 := ref.Centroids()

	// Compare the 2-D profile against the 1-D solution by nearest
	// cell (the Lagrangian meshes drift differently, so interpolate).
	var diff float64
	count := 0
	for i := 0; i < len(xs2); i += 2 { // one sample per column
		x := xs2[i]
		// nearest 1-D cell
		best, dist := 0, math.Inf(1)
		for j, xx := range cx1 {
			if d := math.Abs(xx - x); d < dist {
				dist, best = d, j
			}
		}
		diff += math.Abs(rho2[i] - ref.Rho[best])
		count++
	}
	diff /= float64(count)
	if diff > 0.01 {
		t.Fatalf("2-D vs 1-D mean density difference %v, want < 0.01", diff)
	}
}

// Saltzmann's piston (undistorted-mesh equivalent) against the 1-D
// piston: the 2-D skewed-mesh run must land on the same post-shock
// state the 1-D solver computes.
func TestSaltzmannMatchesOneDPiston(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "saltzmann", NX: 100, NY: 10, TEnd: 0.5})
	xs2, rho2 := res.XProfile(res.Rho)

	// 1-D piston at the same resolution.
	opt := ref1d.DefaultOptions()
	opt.Left = ref1d.Piston
	opt.PistonU = 1
	ref := build1DPiston(t, opt, 100)
	if err := ref.Run(0.5); err != nil {
		t.Fatal(err)
	}
	cx1 := ref.Centroids()

	var diff float64
	count := 0
	for i := 0; i < len(xs2); i += 10 {
		x := xs2[i]
		best, dist := 0, math.Inf(1)
		for j, xx := range cx1 {
			if d := math.Abs(xx - x); d < dist {
				dist, best = d, j
			}
		}
		diff += math.Abs(rho2[i] - ref.Rho[best])
		count++
	}
	diff /= float64(count)
	// The skewed 2-D mesh smears the front more than 1-D; allow a
	// moderate band that still pins the post-shock plateau.
	if diff > 0.25 {
		t.Fatalf("2-D Saltzmann vs 1-D piston mean difference %v", diff)
	}
}

// The obs registry counts messages at the same send site as the
// communicator's own Stats() accounting, so the two independent
// totals must agree exactly — and the per-phase halo counters must
// partition the total with nothing left over.
func TestObsCountersCrossCheckCommStats(t *testing.T) {
	res := run(t, bookleaf.Config{Problem: "sod", NX: 64, NY: 4, Ranks: 4, MaxSteps: 30})
	if res.Obs == nil {
		t.Fatal("no obs snapshot on result")
	}
	if got := res.Obs.Counters["comm_msgs_total"]; got != res.CommMsgs {
		t.Fatalf("obs comm_msgs_total = %d, typhon Stats = %d", got, res.CommMsgs)
	}
	if got := res.Obs.Counters["comm_words_total"]; got != res.CommWords {
		t.Fatalf("obs comm_words_total = %d, typhon Stats = %d", got, res.CommWords)
	}
	phases := res.Obs.Counters["halo_msgs_forces"] +
		res.Obs.Counters["halo_msgs_velocities"] +
		res.Obs.Counters["halo_msgs_remap"]
	if phases != res.CommMsgs {
		t.Fatalf("phase msg counters sum to %d, total is %d", phases, res.CommMsgs)
	}
	words := res.Obs.Counters["halo_words_forces"] +
		res.Obs.Counters["halo_words_velocities"] +
		res.Obs.Counters["halo_words_remap"]
	if words != res.CommWords {
		t.Fatalf("phase word counters sum to %d, total is %d", words, res.CommWords)
	}
	// The message-size histogram sees every message too.
	h, ok := res.Obs.Histograms["halo_msg_words"]
	if !ok {
		t.Fatal("halo_msg_words histogram missing")
	}
	if h.Count != res.CommMsgs || int64(h.Sum) != res.CommWords {
		t.Fatalf("histogram count/sum = %d/%v, Stats = %d/%d", h.Count, h.Sum, res.CommMsgs, res.CommWords)
	}
}

// The phased (overlapped) exchange path routes through the same send
// site as the blocking one, so the obs-vs-Stats cross-check must hold
// with overlap on — and the phased schedule must move exactly the same
// messages and words as the blocking schedule, since it only changes
// when the receives complete, not what travels.
func TestObsCountersCrossCheckCommStatsOverlap(t *testing.T) {
	base := bookleaf.Config{Problem: "sod", NX: 64, NY: 4, Ranks: 4, MaxSteps: 30}
	ref := run(t, base)
	cfg := base
	cfg.Overlap = true
	res := run(t, cfg)
	if res.Obs == nil {
		t.Fatal("no obs snapshot on result")
	}
	if res.CommMsgs != ref.CommMsgs || res.CommWords != ref.CommWords {
		t.Fatalf("overlap traffic %d msgs / %d words, blocking %d / %d — schedules must move identical data",
			res.CommMsgs, res.CommWords, ref.CommMsgs, ref.CommWords)
	}
	if got := res.Obs.Counters["comm_msgs_total"]; got != res.CommMsgs {
		t.Fatalf("obs comm_msgs_total = %d, typhon Stats = %d", got, res.CommMsgs)
	}
	if got := res.Obs.Counters["comm_words_total"]; got != res.CommWords {
		t.Fatalf("obs comm_words_total = %d, typhon Stats = %d", got, res.CommWords)
	}
	phases := res.Obs.Counters["halo_msgs_forces"] +
		res.Obs.Counters["halo_msgs_velocities"] +
		res.Obs.Counters["halo_msgs_remap"]
	if phases != res.CommMsgs {
		t.Fatalf("phase msg counters sum to %d, total is %d", phases, res.CommMsgs)
	}
	words := res.Obs.Counters["halo_words_forces"] +
		res.Obs.Counters["halo_words_velocities"] +
		res.Obs.Counters["halo_words_remap"]
	if words != res.CommWords {
		t.Fatalf("phase word counters sum to %d, total is %d", words, res.CommWords)
	}
	// The duration split exists and the overlapped schedule actually
	// recorded in-flight windows.
	if _, ok := res.Obs.Counters["halo_wait_ns"]; !ok {
		t.Fatal("halo_wait_ns counter missing")
	}
	if v := res.Obs.Counters["halo_overlap_ns"]; v <= 0 {
		t.Fatalf("halo_overlap_ns = %d, want > 0 on an overlapped run", v)
	}
	if v, ok := ref.Obs.Counters["halo_overlap_ns"]; ok && v != 0 {
		t.Fatalf("blocking run recorded halo_overlap_ns = %d, want absent or zero", v)
	}
}

func build1DPiston(t *testing.T, opt ref1d.Options, n int) *ref1d.Solver {
	t.Helper()
	g, err := eos.NewIdealGas(5.0 / 3.0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n+1)
	rho := make([]float64, n)
	ein := make([]float64, n)
	mats := make([]eos.Material, n)
	for i := 0; i <= n; i++ {
		x[i] = float64(i) / float64(n)
	}
	for i := 0; i < n; i++ {
		rho[i] = 1
		ein[i] = 1e-9
		mats[i] = g
	}
	s, err := ref1d.New(opt, x, rho, ein, mats)
	if err != nil {
		t.Fatal(err)
	}
	s.U[0] = 1
	return s
}
