// Command bleaf-converge runs a mesh-convergence study: Sod's shock
// tube at a sweep of resolutions, with the L1 density error against the
// exact Riemann solution and the observed convergence order between
// consecutive levels — the standard verification exercise for a shock
// hydrodynamics code (first-order at shocks, approaching second order
// in smooth regions).
//
// Usage:
//
//	bleaf-converge                 # 2-D code, 50..400 cells
//	bleaf-converge -max 800        # up to 800 cells
//	bleaf-converge -ale eulerian   # the Eulerian (remapped) variant
//	bleaf-converge -ref1d          # additionally run the 1-D reference
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"bookleaf"
	"bookleaf/internal/exact"
	"bookleaf/internal/ref1d"
)

func main() {
	var (
		maxN = flag.Int("max", 400, "finest resolution")
		ale  = flag.String("ale", "", "ALE mode for the 2-D runs")
		do1d = flag.Bool("ref1d", false, "also run the 1-D reference solver")
	)
	flag.Parse()

	rp := exact.Sod(0.5)
	refRho := func(x float64) float64 {
		s, err := rp.Sample(x, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		return s.Rho
	}

	var ns []int
	for n := 50; n <= *maxN; n *= 2 {
		ns = append(ns, n)
	}

	fmt.Println("== Sod mesh convergence: L1 density error vs exact Riemann ==")
	mode := "lagrangian"
	if *ale != "" {
		mode = *ale
	}
	fmt.Printf("2-D code (%s):\n%-8s %12s %8s\n", mode, "cells", "L1 error", "order")
	prev := 0.0
	for _, n := range ns {
		res, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: n, NY: 2, ALE: *ale})
		if err != nil {
			log.Fatal(err)
		}
		xs, rho := res.XProfile(res.Rho)
		l1 := bookleaf.L1Error(xs, rho, refRho)
		order := "-"
		if prev > 0 {
			order = fmt.Sprintf("%.2f", math.Log2(prev/l1))
		}
		fmt.Printf("%-8d %12.5f %8s\n", n, l1, order)
		prev = l1
	}

	if *do1d {
		fmt.Printf("\n1-D reference solver:\n%-8s %12s %8s\n", "cells", "L1 error", "order")
		prev = 0.0
		for _, n := range ns {
			s, err := ref1d.SodTube(n)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.Run(0.25); err != nil {
				log.Fatal(err)
			}
			cx := s.Centroids()
			var l1 float64
			for i, x := range cx {
				l1 += math.Abs(s.Rho[i] - refRho(x))
			}
			l1 /= float64(len(cx))
			order := "-"
			if prev > 0 {
				order = fmt.Sprintf("%.2f", math.Log2(prev/l1))
			}
			fmt.Printf("%-8d %12.5f %8s\n", n, l1, order)
			prev = l1
		}
	}
}
