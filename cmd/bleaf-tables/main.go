// Command bleaf-tables regenerates every table and figure of the
// paper's evaluation section:
//
//	-table1   experimental configurations (platform registry)
//	-table2   per-kernel breakdown, model vs paper (Noh, single node)
//	-fig1     overall single-node Noh times across the 7 configs
//	-fig2a    viscosity kernel times (single node)
//	-fig2b    acceleration kernel times (single node)
//	-fig3     Sod hybrid strong scaling 8-64 nodes, overall
//	-fig4a    viscosity kernel strong scaling
//	-fig4b    acceleration kernel strong scaling
//	-real     additionally run the real Go implementation on this host
//	          (reduced-size Noh) and print its measured flat-vs-hybrid
//	          per-kernel breakdown — the same experiment at laptop scale
//	-all      everything
//
// Platform seconds come from internal/machine: a roofline +
// execution-model performance model of the paper's hardware (see
// DESIGN.md for the substitution rationale); the paper's numbers are
// printed alongside so shape agreement is visible directly.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"strings"

	"bookleaf"
	"bookleaf/internal/machine"
	"bookleaf/internal/order"
	"bookleaf/internal/setup"
)

func main() {
	var (
		t1     = flag.Bool("table1", false, "print Table I")
		t2     = flag.Bool("table2", false, "print Table II (model vs paper)")
		f1     = flag.Bool("fig1", false, "print Figure 1 series")
		f2a    = flag.Bool("fig2a", false, "print Figure 2a series")
		f2b    = flag.Bool("fig2b", false, "print Figure 2b series")
		f3     = flag.Bool("fig3", false, "print Figure 3 series")
		f4a    = flag.Bool("fig4a", false, "print Figure 4a series")
		f4b    = flag.Bool("fig4b", false, "print Figure 4b series")
		real   = flag.Bool("real", false, "run the real implementation at reduced scale")
		whatif = flag.Bool("whatif", false, "model the paper's future-work CUB scenario")
		roofl  = flag.Bool("roofline", false, "print the kernel-fusion roofline readout")
		reord  = flag.Bool("reorder", false, "print the mesh-renumbering locality readout")
		all    = flag.Bool("all", false, "print everything")
	)
	flag.Parse()
	if *all {
		*t1, *t2, *f1, *f2a, *f2b, *f3, *f4a, *f4b, *real, *whatif, *roofl, *reord = true, true, true, true, true, true, true, true, true, true, true, true
	}
	if !(*t1 || *t2 || *f1 || *f2a || *f2b || *f3 || *f4a || *f4b || *real || *whatif || *roofl || *reord) {
		flag.Usage()
		return
	}

	if *t1 {
		table1()
	}
	if *t2 {
		table2()
	}
	if *f1 {
		figure1()
	}
	if *f2a {
		figure2("a", "viscosity (getq)", func(r machine.PaperRow) float64 { return r.Visc })
	}
	if *f2b {
		figure2("b", "acceleration (getacc)", func(r machine.PaperRow) float64 { return r.Acc })
	}
	if *f3 || *f4a || *f4b {
		figures34(*f3, *f4a, *f4b)
	}
	if *whatif {
		whatIf()
	}
	if *roofl {
		roofline()
	}
	if *reord {
		reorderReadout()
	}
	if *real {
		realRuns()
	}
}

// roofline prints the kernel-fusion readout: per-element off-chip
// bytes and weighted ops of each fused pass against the kernels it
// replaces, the bandwidth-bound speedup limit, and the predicted
// roofline gain on the CPU platforms. EXPERIMENTS.md pairs these
// predictions with the measured fused-vs-unfused benchmark deltas
// (BenchmarkStepFusion and the per-fusion micro-benchmarks).
func roofline() {
	fmt.Println("== Kernel-fusion roofline (per element, -fuse vs unfused) ==")
	fmt.Printf("%-10s %-32s %7s %7s %7s %7s %9s %9s %9s\n",
		"fusion", "replaces", "bytes", "fused", "ops", "fused", "bw-bound", "Skylake", "Broadwell")
	var skl, bdw machine.Platform
	for _, p := range machine.Platforms() {
		switch p.Name {
		case "Skylake MPI":
			skl = p
		case "Broadwell MPI":
			bdw = p
		}
	}
	for _, f := range machine.Fusions {
		uo, ub := f.Unfused()
		fo, fb := f.Fused()
		fmt.Printf("%-10s %-32s %7.0f %7.0f %7.0f %7.0f %8.2fx %8.2fx %8.2fx\n",
			f.Name, strings.Join(f.Replaces, "+"), ub, fb, uo, fo,
			f.BandwidthBound(), f.GainOn(&skl), f.GainOn(&bdw))
	}
	w := machine.Table2Workload()
	fmt.Printf("%-10s modelled step speedup: Skylake %.2fx, Broadwell %.2fx (Table II workload)\n",
		"overall", skl.Overall(w)/skl.OverallOf(machine.FusedKernels(), w),
		bdw.Overall(w)/bdw.OverallOf(machine.FusedKernels(), w))
	fmt.Println()
}

// reorderReadout prints the mesh-renumbering locality readout on the
// BenchmarkStepGrid mesh (Noh 192x192, the same mesh BENCH_step.json's
// reorder x layout grid measures): the reuse-distance proxy of each
// numbering, the gather derate it implies against the generator's
// row-major sweep, and the predicted step speedup on the
// bandwidth-bound CPU platforms. EXPERIMENTS.md pairs these with the
// measured ns/el from the grid benchmark.
func reorderReadout() {
	var skl, bdw machine.Platform
	for _, pl := range machine.Platforms() {
		switch pl.Name {
		case "Skylake MPI":
			skl = pl
		case "Broadwell MPI":
			bdw = pl
		}
	}
	// Two regimes. On the wide Sod strong-scaling mesh (the
	// BenchmarkStepGrid geometry) the row-major sweep re-touches a node
	// row only after streaming the whole 8192-element row between — far
	// past any cache — so the numbering decides whether gathers hit;
	// this is where the renumbering pays and where the measured grid in
	// BENCH_step.json is recorded. On a laptop-scale square mesh the
	// ~194-node row-to-row working set already fits L1 and the proxy
	// correctly predicts (and measurement confirms) roughly nothing.
	for _, mesh := range []struct {
		name   string
		nx, ny int
		gen    func(int, int) (*setup.Problem, error)
	}{
		{"Sod 8192x8 (grid-benchmark mesh)", 8192, 8, setup.Sod},
		{"Noh 192x192 (square, row fits cache)", 192, 192, setup.Noh},
	} {
		p, err := mesh.gen(mesh.nx, mesh.ny)
		if err != nil {
			fmt.Printf("  mesh generation failed: %v\n", err)
			return
		}
		fmt.Printf("== Mesh renumbering locality readout (%s, reuse window %d) ==\n",
			mesh.name, machine.DefaultReuseWindow)
		base := machine.MeshReuse(p.Mesh.ElNd, p.Mesh.NNd, 0)
		fmt.Printf("%-10s %10s %10s %8s %10s %10s\n",
			"reorder", "miss-rate", "span", "derate", "Skylake", "Broadwell")
		for _, kind := range []order.Kind{order.None, order.Hilbert, order.RCM} {
			m, err := order.Reorder(p.Mesh, kind)
			if err != nil {
				fmt.Printf("  %s: %v\n", kind, err)
				continue
			}
			loc := machine.MeshReuse(m.ElNd, m.NNd, 0)
			fmt.Printf("%-10s %10.4f %10.1f %7.3fx %9.3fx %9.3fx\n",
				kind, loc.MissRate, loc.Span, machine.GatherDerate(loc, base),
				machine.PredictReorderGain(&skl, machine.FusedKernels(), m.NEl, base, loc),
				machine.PredictReorderGain(&bdw, machine.FusedKernels(), m.NEl, base, loc))
		}
		fmt.Println()
	}
}

// whatIf prints the paper's future-work scenario: CUDA with proper
// device-side reductions (CUB), removing the host-bound time
// differential kernel.
func whatIf() {
	w := machine.Table2Workload()
	fmt.Println("== What-if (paper future work): CUDA with CUB device reductions ==")
	fmt.Printf("%-14s %12s %12s %10s %12s %12s\n",
		"config", "overall now", "with CUB", "speedup", "getdt now", "getdt CUB")
	for _, p := range machine.Platforms() {
		if p.Exec != machine.CUDA {
			continue
		}
		base := machine.ModelRow(p, w)
		fixed := machine.CUDAFixedDtRow(p, w)
		fmt.Printf("%-14s %12.1f %12.1f %9.2fx %12.1f %12.1f\n",
			p.Name, base.Overall, fixed.Overall, base.Overall/fixed.Overall,
			base.GetDt, fixed.GetDt)
	}
	fmt.Println()
}

func table1() {
	fmt.Println("== Table I: experimental configuration ==")
	fmt.Printf("%-18s %-22s %-9s %s\n", "Hardware", "System", "Compiler", "Compiler Flags")
	seen := map[string]bool{}
	for _, p := range machine.Platforms() {
		key := p.Name + p.System
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("%-18s %-22s %-9s %s\n", p.Name, p.System, p.Compiler, p.Flags)
	}
	fmt.Println()
}

func table2() {
	w := machine.Table2Workload()
	fmt.Println("== Table II: per-kernel breakdown, Noh, single node (seconds) ==")
	fmt.Printf("modelled workload: %d elements, %d steps\n", w.NEl, w.Steps)
	fmt.Printf("%-18s %9s %9s %9s %9s %9s %9s %9s\n",
		"config", "overall", "visc", "accel", "getdt", "getgeom", "getforce", "getpc")
	for i, p := range machine.Platforms() {
		m := machine.ModelRow(p, w)
		r := machine.PaperTable2[i]
		fmt.Printf("%-18s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f   <- model\n",
			m.Name, m.Overall, m.Visc, m.Acc, m.GetDt, m.GetGeom, m.GetForce, m.GetPC)
		fmt.Printf("%-18s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f   <- paper\n",
			"", r.Overall, r.Visc, r.Acc, r.GetDt, r.GetGeom, r.GetForce, r.GetPC)
	}
	fmt.Println()
}

func figure1() {
	w := machine.Table2Workload()
	fmt.Println("== Figure 1: overall Noh single-node execution time (s) ==")
	fmt.Printf("%-18s %9s %9s\n", "config", "model", "paper")
	for i, p := range machine.Platforms() {
		m := machine.ModelRow(p, w)
		fmt.Printf("%-18s %9.1f %9.1f\n", m.Name, m.Overall, machine.PaperTable2[i].Overall)
	}
	fmt.Println()
}

func figure2(sub, title string, get func(machine.PaperRow) float64) {
	w := machine.Table2Workload()
	fmt.Printf("== Figure 2%s: %s kernel time, Noh single node (s) ==\n", sub, title)
	fmt.Printf("%-18s %9s %9s\n", "config", "model", "paper")
	for i, p := range machine.Platforms() {
		m := machine.ModelRow(p, w)
		fmt.Printf("%-18s %9.1f %9.1f\n", m.Name, get(m), get(machine.PaperTable2[i]))
	}
	fmt.Println()
}

func figures34(f3, f4a, f4b bool) {
	w := machine.Fig3Workload()
	nodes := []int{8, 16, 32, 64}
	for _, p := range machine.Platforms() {
		if p.Exec != machine.Hybrid {
			continue
		}
		pts := p.StrongScaling(w, nodes)
		cpu := "Skylake"
		if p.Name == "Broadwell Hybrid" {
			cpu = "Broadwell"
		}
		if f3 {
			fmt.Printf("== Figure 3: Sod hybrid strong scaling, %s, overall (s) ==\n", cpu)
			fmt.Printf("%-6s %10s %10s %10s\n", "nodes", "model", "paper", "speedup")
			prev := 0.0
			for i, pt := range pts {
				paper := machine.PaperFig3[cpu][i].Secs
				sp := "-"
				if prev > 0 {
					sp = fmt.Sprintf("%.2fx", prev/pt.Overall)
				}
				fmt.Printf("%-6d %10.0f %10.0f %10s\n", pt.Nodes, pt.Overall, paper, sp)
				prev = pt.Overall
			}
			fmt.Println()
		}
		if f4a {
			fmt.Printf("== Figure 4a: viscosity kernel strong scaling, %s (s) ==\n", cpu)
			for _, pt := range pts {
				fmt.Printf("%-6d %10.0f\n", pt.Nodes, pt.Viscosity)
			}
			fmt.Println()
		}
		if f4b {
			fmt.Printf("== Figure 4b: acceleration kernel strong scaling, %s (s) ==\n", cpu)
			for _, pt := range pts {
				fmt.Printf("%-6d %10.0f\n", pt.Nodes, pt.Acceleration)
			}
			fmt.Println()
		}
	}
}

// realRuns executes the actual Go implementation at reduced scale on
// this host: flat goroutine-ranks versus one rank with threads, the
// same single-node contrast the paper measures, plus a rank-scaling
// sweep (the real analogue of Figure 3).
func realRuns() {
	ncpu := runtime.NumCPU()
	ranks := ncpu
	if ranks > 8 {
		ranks = 8
	}
	if ranks < 4 {
		ranks = 4
	}
	fmt.Printf("== Real runs on this host (%d CPUs): Noh %dx%d ==\n", ncpu, 96, 96)
	if ncpu < ranks {
		fmt.Printf("note: only %d CPU(s) available — goroutine ranks oversubscribe the core,\n", ncpu)
		fmt.Println("so these runs demonstrate the communication structure and correctness")
		fmt.Println("rather than speedup; see the machine model for the full-scale numbers.")
	}
	for _, mode := range []struct {
		name   string
		ranks  int
		thread int
	}{
		{"flat", ranks, 1},
		{"hybrid", 1, ranks},
	} {
		// NoFuse: this experiment reproduces the paper's per-kernel
		// breakdown, which only the unfused schedule reports.
		res, err := bookleaf.Run(bookleaf.Config{
			Problem: "noh", NX: 96, NY: 96,
			Ranks: mode.ranks, Threads: mode.thread,
			NoFuse: true,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		total := 0.0
		for _, s := range res.Timers {
			total += s
		}
		fmt.Printf("%-8s (%d ranks x %d threads): overall %.2fs  getq %.2fs (%.0f%%)  getacc %.2fs  getdt %.2fs\n",
			mode.name, mode.ranks, mode.thread, total,
			res.Timers["getq"], 100*res.Timers["getq"]/total,
			res.Timers["getacc"], res.Timers["getdt"])
	}
	fmt.Println()
	fmt.Println("== Real strong scaling on this host: Sod 256x8, Lagrangian ==")
	fmt.Printf("%-6s %10s %10s\n", "ranks", "wall(s)", "speedup")
	base := 0.0
	for _, r := range []int{1, 2, 4, ranks} {
		res, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 256, NY: 8, Ranks: r})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		total := 0.0
		for _, s := range res.Timers {
			total += s
		}
		if base == 0 {
			base = total
		}
		fmt.Printf("%-6d %10.2f %9.2fx\n", r, total, base/total)
	}
	fmt.Println()
}
