// Command bookleaf runs the BookLeaf mini-app: one of the four standard
// shock-hydrodynamics problems on a 2-D unstructured quadrilateral
// mesh, serial, threaded ("hybrid") or across goroutine ranks (the
// flat-MPI analogue), printing the per-kernel timing breakdown the
// paper reports in Table II plus a conservation audit.
//
// Usage:
//
//	bookleaf -problem noh -nx 100 -ny 100
//	bookleaf -deck decks/sod.deck -profile sod.csv
//	bookleaf -problem sod -nx 400 -ny 4 -ranks 8 -partitioner metis
//	bookleaf -problem sod -nx 400 -ny 4 -ranks 4 -checkpoint sod.ckpt -checkpoint-every 100
//	bookleaf -problem sod -nx 400 -ny 4 -ranks 8 -resume sod.ckpt
//	bookleaf -problem noh -nx 120 -ny 120 -threads 4 -cpuprofile cpu.out -memprofile mem.out
//
// Checkpoints are partition-independent: a dump written at one rank
// count resumes at any other. Transient failures (timestep collapse,
// tangled element, non-finite field) are retried from a rolling
// in-memory snapshot; tune with -rollback-every and -retry-budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"bookleaf"
	"bookleaf/internal/config"
	"bookleaf/internal/dump"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bookleaf:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		deckPath    = flag.String("deck", "", "input deck file (overrides problem flags)")
		problem     = flag.String("problem", "sod", "problem: sod, noh, sedov, saltzmann")
		nx          = flag.Int("nx", 100, "cells in x")
		ny          = flag.Int("ny", 10, "cells in y")
		tend        = flag.Float64("tend", 0, "end time (0 = problem default)")
		maxSteps    = flag.Int("maxsteps", 0, "step cap (0 = none)")
		ranks       = flag.Int("ranks", 1, "goroutine ranks (flat-MPI analogue)")
		threads     = flag.Int("threads", 1, "threads per rank (OpenMP analogue)")
		partitioner = flag.String("partitioner", "rcb", "rcb or metis")
		reorder     = flag.String("reorder", "", "mesh renumbering for locality: none, hilbert, rcm (default none)")
		layout      = flag.String("layout", "", "corner-array layout: aos (interleaved, default) or soa (paper ablation)")
		aleMode     = flag.String("ale", "", "ALE mode: eulerian, smoothed (default Lagrangian)")
		aleFreq     = flag.Int("alefreq", 1, "remap every n steps")
		hourglass   = flag.String("hourglass", "", "override: none, filter, subzonal")
		scatterAcc  = flag.Bool("scatteracc", false, "reference serial acceleration scatter (paper-fidelity ablation)")
		overlap     = flag.Bool("overlap", false, "phased halo exchanges overlapped with interior computation (multi-rank runs)")
		fuse        = flag.Bool("fuse", true, "fused element passes (bitwise-identical; -fuse=false selects the paper's one-kernel-per-phase ablation)")
		fuseTile    = flag.Int("fuse-tile", 0, "fused-sweep tile width in elements (0 = derive from the per-core cache budget)")
		f32aux      = flag.Bool("f32aux", false, "store corner-mass/edge-viscosity streams as float32 (accuracy/bandwidth ablation)")
		sedovE      = flag.Float64("sedov-energy", 0, "Sedov blast energy override")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		profileOut  = flag.String("profile", "", "write final 1-D profile CSV to this file")
		vtkOut      = flag.String("vtk", "", "write the final state as a legacy VTK file")
		ckpt        = flag.String("checkpoint", "", "write a restart dump to this file")
		ckptEvery   = flag.Int("checkpoint-every", 0, "also dump every n steps")
		resume      = flag.String("resume", "", "restore a restart dump before running")
		rollEvery   = flag.Int("rollback-every", 0, "rolling-snapshot cadence for rollback-retry (0 = default 10, negative = off)")
		retryBudget = flag.Int("retry-budget", 0, "rollback-retries before aborting (0 = default 3, negative = off)")
		superviseOn = flag.Bool("supervise", false, "enable the rank-supervision ladder (retry / replace / checkpoint-then-abort)")
		recvTimeout = flag.Duration("recv-timeout", 0, "typhon receive timeout (0 = wait forever)")
		dtBackoff   = flag.Float64("dt-backoff", 0, "timestep-cap division factor per rollback (0 = default 2)")
		repartAt    = flag.Int("repart-at", 0, "force one online repartition at this step (0 = off)")
		repartRanks = flag.Int("repart-ranks", 0, "rank count after the next repartition (0 = keep)")
		ranksMax    = flag.Int("ranks-max", 0, "cap on the elastic rank count (0 = no cap)")
		history     = flag.Int("history", 0, "print a step record every n steps")
		tracePfx    = flag.String("trace", "", "write per-rank Chrome trace files <prefix>.rank<N>.trace.json (merge with bleaf-trace)")
		metricsOut  = flag.String("metrics", "", "write a machine-readable metrics.json to this file")
		probeEvery  = flag.Int("probe-every", 0, "sample mass/energy conservation probes every n steps (0 = off)")
		probeDrift  = flag.Float64("probe-maxdrift", 0, "per-step relative drift flagged as a violation (0 = default)")
		quiet       = flag.Bool("quiet", false, "suppress the kernel breakdown")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bookleaf: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bookleaf: memprofile:", err)
			}
		}()
	}

	var cfg bookleaf.Config
	if *deckPath != "" {
		f, err := os.Open(*deckPath)
		if err != nil {
			return err
		}
		deck, err := config.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg, err = bookleaf.ConfigFromDeck(deck)
		if err != nil {
			return err
		}
		if unused := deck.Unused(); len(unused) > 0 {
			fmt.Fprintf(os.Stderr, "warning: unused deck keys: %v\n", unused)
		}
	} else {
		cfg = bookleaf.Config{
			Problem: *problem, NX: *nx, NY: *ny, TEnd: *tend, MaxSteps: *maxSteps,
			Ranks: *ranks, Threads: *threads, Partitioner: *partitioner,
			Reorder: *reorder, Layout: *layout,
			ALE: *aleMode, ALEFreq: *aleFreq, Hourglass: *hourglass,
			ScatterAcc: *scatterAcc, Overlap: *overlap, SedovEnergy: *sedovE,
			NoFuse: !*fuse, FuseTile: *fuseTile, Float32Aux: *f32aux,
			Checkpoint: *ckpt, CheckpointEvery: *ckptEvery, Resume: *resume,
			RollbackEvery: *rollEvery, RetryBudget: *retryBudget,
			HistoryEvery: *history,
		}
	}
	// -overlap composes with decks the same way the observability flags
	// do: setting it on the command line wins over the deck key.
	if *overlap {
		cfg.Overlap = true
	}
	// -fuse defaults to true, so only an explicit command-line setting
	// may override the deck's [control] fuse key.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fuse":
			cfg.NoFuse = !*fuse
		case "fuse-tile":
			cfg.FuseTile = *fuseTile
		case "f32aux":
			cfg.Float32Aux = *f32aux
		case "reorder":
			cfg.Reorder = *reorder
		case "layout":
			cfg.Layout = *layout
		}
	})
	// Observability flags compose with decks: a flag set on the command
	// line wins over the deck's [obs] keys.
	if *tracePfx != "" {
		cfg.Trace = *tracePfx
	}
	if *metricsOut != "" {
		cfg.Metrics = *metricsOut
	}
	if *probeEvery != 0 {
		cfg.ProbeEvery = *probeEvery
	}
	if *probeDrift != 0 {
		cfg.ProbeMaxDrift = *probeDrift
	}
	// Supervision flags also compose with the deck's [supervise] keys.
	if *superviseOn || *recvTimeout != 0 || *dtBackoff != 0 ||
		*repartAt != 0 || *repartRanks != 0 || *ranksMax != 0 {
		if cfg.Supervise == nil {
			cfg.Supervise = &bookleaf.SuperviseConfig{}
		}
		if *superviseOn {
			cfg.Supervise.Enabled = true
		}
		if *recvTimeout != 0 {
			cfg.Supervise.RecvTimeout = *recvTimeout
		}
		if *dtBackoff != 0 {
			cfg.Supervise.DtBackoff = *dtBackoff
		}
		if *repartAt != 0 {
			cfg.Supervise.RepartAtStep = *repartAt
		}
		if *repartRanks != 0 {
			cfg.Supervise.RepartRanks = *repartRanks
		}
		if *ranksMax != 0 {
			cfg.Supervise.RanksMax = *ranksMax
		}
	}

	start := time.Now()
	res, err := bookleaf.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("problem    %s (%dx%d cells, %d elements, %d nodes)\n",
		res.Problem, cfg.NX, cfg.NY, res.NEl, res.NNd)
	fmt.Printf("parallel   %d rank(s) x %d thread(s)\n", res.Ranks, res.Threads)
	fmt.Printf("steps      %d to t=%.6f\n", res.Steps, res.Time)
	fmt.Printf("wall       %.3fs\n", wall.Seconds())
	fmt.Printf("energy     E0=%.8g E=%.8g work=%.8g drift=%.3g\n",
		res.E0, res.EFinal, res.ExternalWork, res.EnergyDrift())
	fmt.Printf("mass       M0=%.8g M=%.8g\n", res.Mass0, res.MassFinal)
	if res.Rollbacks > 0 {
		fmt.Printf("rollbacks  %d transient failure(s) recovered\n", res.Rollbacks)
	}
	if res.SupRetries > 0 || res.Replacements > 0 || res.Repartitions > 0 {
		fmt.Printf("supervise  %d retry(ies), %d replacement(s), %d repartition(s)\n",
			res.SupRetries, res.Replacements, res.Repartitions)
	}
	if res.FinalRanks != res.Ranks {
		fmt.Printf("elastic    finished on %d rank(s) (started on %d)\n", res.FinalRanks, res.Ranks)
	}
	if cfg.ProbeEvery > 0 {
		fmt.Printf("probes     %d sample(s), %d violation(s)\n", len(res.Probes), res.ProbeViolations)
	}
	if cfg.Metrics != "" {
		fmt.Printf("metrics    written to %s\n", cfg.Metrics)
	}
	if cfg.Trace != "" {
		fmt.Printf("traces     %s.rank*.trace.json (merge with bleaf-trace)\n", cfg.Trace)
	}

	if len(res.History) > 0 {
		fmt.Println("\nstep history:")
		fmt.Printf("  %8s %12s %12s %14s %14s\n", "step", "time", "dt", "energy", "kinetic")
		for _, h := range res.History {
			fmt.Printf("  %8d %12.6f %12.3e %14.8g %14.8g\n", h.Step, h.Time, h.Dt, h.Energy, h.Kinetic)
		}
	}

	if !*quiet {
		fmt.Println("\nper-kernel breakdown (max across ranks):")
		printBreakdown(res)
	}

	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		defer f.Close()
		var xs, rho, p, ein []float64
		switch res.Problem {
		case "noh", "sedov":
			xs, rho = res.RadialProfile(res.Rho)
			_, p = res.RadialProfile(res.P)
			_, ein = res.RadialProfile(res.Ein)
			if err := dump.Columns(f, []string{"r", "rho", "p", "ein"}, xs, rho, p, ein); err != nil {
				return err
			}
		default:
			xs, rho = res.XProfile(res.Rho)
			_, p = res.XProfile(res.P)
			_, ein = res.XProfile(res.Ein)
			if err := dump.Columns(f, []string{"x", "rho", "p", "ein"}, xs, rho, p, ein); err != nil {
				return err
			}
		}
		fmt.Printf("\nprofile written to %s\n", *profileOut)
	}
	if *vtkOut != "" {
		f, err := os.Create(*vtkOut)
		if err != nil {
			return err
		}
		defer f.Close()
		err = dump.WriteVTK(f, "bookleaf "+res.Problem, res.X, res.Y, res.Mesh.ElNd,
			dump.VTKField{Name: "rho", Values: res.Rho},
			dump.VTKField{Name: "pressure", Values: res.P},
			dump.VTKField{Name: "ein", Values: res.Ein},
			dump.VTKField{Name: "u", Values: res.U},
			dump.VTKField{Name: "v", Values: res.V},
		)
		if err != nil {
			return err
		}
		fmt.Printf("VTK dump written to %s\n", *vtkOut)
	}
	return nil
}

func printBreakdown(res *bookleaf.Result) {
	type row struct {
		name string
		sec  float64
	}
	var rows []row
	var total float64
	for name, sec := range res.Timers {
		rows = append(rows, row{name, sec})
		total += sec
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sec > rows[j].sec })
	fmt.Printf("  %-12s %10s %8s %8s\n", "kernel", "seconds", "percent", "calls")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * r.sec / total
		}
		fmt.Printf("  %-12s %10.4f %7.1f%% %8d\n", r.name, r.sec, pct, res.Calls[r.name])
	}
	fmt.Printf("  %-12s %10.4f\n", "total", total)
}
