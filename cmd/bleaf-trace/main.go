// Command bleaf-trace merges the per-rank Chrome trace_event dumps a
// -trace run emits onto one timeline and prints the paper-style
// per-phase summary (max-rank seconds = the bulk-synchronous wall
// estimate, rank-summed CPU seconds, event counts) — the same
// breakdown the paper's Fig. 2 reports per phase.
//
// Usage:
//
//	bookleaf -problem noh -nx 64 -ny 64 -ranks 4 -trace noh
//	bleaf-trace -o noh.merged.trace.json noh.rank*.trace.json
//
// The merged file loads directly in chrome://tracing or
// https://ui.perfetto.dev; each rank appears as one process lane.
// -normalize zeroes timestamps and durations, leaving only the
// deterministic event structure (used by golden-snapshot tests and
// useful for diffing two runs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bookleaf/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bleaf-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "write the merged trace JSON to this file")
	normalize := flag.Bool("normalize", false, "zero timestamps/durations in the merged output (deterministic structure only)")
	quiet := flag.Bool("quiet", false, "suppress the per-phase summary table")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: bleaf-trace [-o merged.json] [-normalize] <rank trace files...>")
	}

	files := make([]*obs.TraceFile, 0, flag.NArg())
	for _, path := range flag.Args() {
		tf, err := obs.ReadTraceFile(path)
		if err != nil {
			return err
		}
		files = append(files, tf)
	}
	merged := obs.MergeTraces(files...)

	if !*quiet {
		fmt.Printf("merged %d rank trace(s), %d events\n\n", len(files), len(merged.TraceEvents))
		if err := obs.WriteSummaryTable(os.Stdout, obs.Summarise(merged)); err != nil {
			return err
		}
	}

	if *out != "" {
		if *normalize {
			obs.NormalizeTrace(merged)
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(merged); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("\nmerged trace written to %s\n", *out)
		}
	}
	return nil
}
