// Command bleaf-bench turns `go test -bench` output into the
// BENCH_step.json perf-trajectory record: it reads benchmark result
// lines on stdin, aggregates repeated runs of the same benchmark
// (-count=N) by keeping the minimum ns/op (the least-noise estimate of
// the true cost on a time-shared machine) and the maximum allocs/op
// (the conservative regression bound), and writes a JSON object mapping
// benchmark name to {ns_op, allocs_op, runs}.
//
// Usage:
//
//	go test -bench 'BenchmarkLagrangianStep' -benchmem -count=5 . | bleaf-bench -o BENCH_step.json
//
// With -merge, entries already present in the -o file are loaded first
// and the new results overlaid on top (same name → replaced, new name →
// added), so a bench run that adds an axis — say BenchmarkParallelStep
// gaining a ranks dimension — extends the record instead of erasing the
// benchmarks it didn't re-run.
//
// Names are recorded exactly as go test emits them (including any
// GOMAXPROCS suffix): stripping the "-N" suffix would collide with
// sub-benchmark names that legitimately end in "-N" ("threads-4") on
// single-core machines, where go test appends no suffix at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// resultLine matches e.g.
//
//	BenchmarkLagrangianStep-8   50   2715986 ns/op   0 B/op   0 allocs/op
//	BenchmarkStepThreads/threads-4   20   123 ns/op
var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

// Entry is one benchmark's aggregated record.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	merge := flag.Bool("merge", false, "keep entries already in the -o file that this run does not replace")
	flag.Parse()
	entries, err := aggregate(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "bleaf-bench: no benchmark results on stdin")
		os.Exit(1)
	}
	if *merge {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "bleaf-bench: -merge requires -o")
			os.Exit(1)
		}
		if err := mergePrevious(*out, entries); err != nil {
			fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
			os.Exit(1)
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
		os.Exit(1)
	}
	if *out != "" {
		names := make([]string, 0, len(entries))
		for n := range entries {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e := entries[n]
			fmt.Printf("%-48s %14.0f ns/op %8.0f allocs/op (%d runs)\n", n, e.NsOp, e.AllocsOp, e.Runs)
		}
	}
}

// mergePrevious folds entries from an existing record file into the
// freshly aggregated set. Fresh results win name collisions; a missing
// file is not an error (first run with -merge behaves like plain -o).
func mergePrevious(path string, entries map[string]*Entry) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var prev map[string]*Entry
	if err := json.Unmarshal(raw, &prev); err != nil {
		return fmt.Errorf("existing %s is not a benchmark record: %v", path, err)
	}
	for name, e := range prev {
		if _, ok := entries[name]; !ok {
			entries[name] = e
		}
	}
	return nil
}

func aggregate(sc *bufio.Scanner) (map[string]*Entry, error) {
	entries := map[string]*Entry{}
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		allocs := 0.0
		if am := allocsField.FindStringSubmatch(m[4]); am != nil {
			allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		e, ok := entries[name]
		if !ok {
			entries[name] = &Entry{NsOp: ns, AllocsOp: allocs, Runs: 1}
			continue
		}
		if ns < e.NsOp {
			e.NsOp = ns
		}
		if allocs > e.AllocsOp {
			e.AllocsOp = allocs
		}
		e.Runs++
	}
	return entries, sc.Err()
}
